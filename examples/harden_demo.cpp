//===- examples/harden_demo.cpp - Analyze -> harden -> validate loop ------===//
///
/// \file
/// The selective-hardening subsystem on the paper's motivating example
/// (Section III, Fig. 1): the 4-bit leap-year counting loop, driven
/// through the AnalysisSession API. The demo runs the full closed loop:
///
///   1. analyze   — BEC classes + the live-fault-site vulnerability;
///   2. harden    — BEC-guided protection under a 20% dynamic-instruction
///                  budget (shadow registers + compare-and-trap checks,
///                  live-range narrowing); the session caches every trial
///                  measurement of the greedy loop;
///   3. validate  — re-analyze, re-execute, and fire the fault-injection
///                  oracle at the protected windows to show the faults
///                  are actually detected.
///
/// Build and run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/examples/harden_demo
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "ir/AsmParser.h"
#include "sim/Interpreter.h"
#include "support/Debug.h"

#include <cstdio>

using namespace bec;

int main() {
  // The paper's Fig. 1 loop: count years in 7..1 that are divisible by
  // two but not by four, on a 4-bit register file.
  const char *Source = R"(
.width 4
main:
  li   a0, 0          # count
  li   a1, 7          # year
loop:
  andi a2, a1, 1
  andi a3, a1, 3
  addi a1, a1, -1
  seqz a2, a2
  snez a3, a3
  and  a2, a2, a3
  add  a0, a0, a2
  bnez a1, loop
  ret                 # returns the count (2)
)";
  AnalysisSession S;
  AnalysisSession::TargetId T =
      S.addProgram("motivating", parseAsmOrDie(Source, "motivating"));

  // -- 1. Analyze -------------------------------------------------------
  std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(T);
  uint64_t Vuln = *S.get<VulnQuery>(T);
  std::shared_ptr<const VulnerabilityRank> Rank = S.get<RankQuery>(T);
  std::printf("baseline: %llu cycles, vulnerability %llu live fault sites\n",
              static_cast<unsigned long long>(Golden->Cycles),
              static_cast<unsigned long long>(Vuln));
  std::printf("hottest registers by carried fault sites:\n");
  for (Reg R = 0; R < NumRegs; ++R)
    if (Rank->regScore(R) != 0)
      std::printf("  %-4s %6llu\n", regName(R).data(),
                  static_cast<unsigned long long>(Rank->regScore(R)));

  // -- 2. Harden --------------------------------------------------------
  HardenOptions Opts;
  Opts.BudgetPercent = 20.0;
  const HardenPoint &Point = *S.get<HardenQuery>(T, Opts);
  const HardenResult &R = Point.Harden;
  std::printf("\nhardened under a 20%% budget: %u duplicated, %u narrowed\n",
              R.NumDuplicated, R.NumNarrowed);
  std::printf("  cost     %+.2f%% dynamic instructions\n", R.costPercent());
  std::printf("  residual %llu live fault sites (-%.2f%%)\n",
              static_cast<unsigned long long>(R.ResidualVuln),
              100.0 * R.reduction());
  std::printf("\nhardened program:\n%s\n", R.HP.Prog.toString().c_str());

  // -- 3. Validate ------------------------------------------------------
  // HardenQuery already ran the closed loop; the check rides along.
  const HardenValidation &V = Point.Check;
  std::printf("verifier clean: %s, outputs bit-identical: %s\n",
              V.VerifierClean ? "yes" : "NO",
              V.OutputsMatch ? "yes" : "NO");
  std::printf("fault-injection oracle: %llu/%llu probes detected or masked\n",
              static_cast<unsigned long long>(V.DetectionsCaught),
              static_cast<unsigned long long>(V.DetectionProbes));
  if (!V.ok())
    reportFatalError("hardening validation failed");

  // One concrete run, narrated: flip the protected accumulator mid-loop
  // and watch the check divert into the detector instead of silently
  // corrupting the result. The hardened program's golden trace is a
  // session query too (cache hit: the loop measured it already).
  for (const ProtectedSite &Site : R.HP.Sites) {
    if (Site.Kind == ProtectKind::Narrow)
      continue;
    std::shared_ptr<const Trace> Hardened =
        S.get<TraceQuery>(S.intern(R.HP.Prog));
    uint64_t Mid = Hardened->Cycles / 2;
    Trace Faulty = simulateWithInjection(R.HP.Prog, {Mid, Site.Orig, 0});
    std::printf("\nflip %s bit 0 after cycle %llu -> %s\n",
                regName(Site.Orig).data(),
                static_cast<unsigned long long>(Mid),
                Faulty.End == Outcome::Trap ? "detector trap (detected)"
                : Faulty.TraceHash == Hardened->TraceHash
                    ? "identical trace (masked)"
                    : "reached the halt detector");
    break;
  }
  return 0;
}
