//===- examples/quickstart.cpp - Five-minute tour of the BEC library ------===//
///
/// \file
/// Assembles a small RISC-V program, loads it into an AnalysisSession
/// (the library API, api/Api.h), and walks the results: abstract bit
/// values, masked fault sites, equivalence classes, and the
/// fault-injection pruning the classes buy on a concrete run. Along the
/// way it shows the session's caching and invalidation contract — the
/// parts you rely on when embedding the analysis in a bigger tool.
///
/// Build and run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "ir/AsmParser.h"

#include <cstdio>

using namespace bec;

int main() {
  // A toy checksum kernel: mixes a secret with a counter and reports one
  // parity-ish bit per iteration. Plenty of known bits for BEC to chew on.
  const char *Source = R"(
main:
  li   s0, 0xC0FFEE      # secret
  li   s1, 8             # iterations
  li   s2, 0             # checksum
loop:
  xor  t0, s0, s1        # mix
  andi t0, t0, 1         # keep the parity bit
  seqz t0, t0
  add  s2, s2, t0
  srli s0, s0, 1
  addi s1, s1, -1
  bnez s1, loop
  out  s2
  mv   a0, s2
  ret
)";

  // 1. Load a session and a target. Programs can come from bundled
  //    workloads (S.addWorkload("crc32")), external files (S.addAsmFile)
  //    or, as here, assembled in memory.
  AnalysisSession S;
  AnalysisSession::TargetId T =
      S.addProgram("quickstart", parseAsmOrDie(Source, "quickstart"));
  std::printf("bec api %s: loaded %u instructions, %zu basic blocks\n\n",
              BEC_API_VERSION_STRING, S.program(T).size(),
              S.program(T).blocks().size());

  // 2. Ask for the analysis. get<>() computes on demand and caches: the
  //    second call returns the identical object for free.
  std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(T);
  std::printf("coalescing reached its fixed point after %u rounds, "
              "%u merges\n",
              A->iterations(), A->mergeCount());
  std::printf("(cached: second get<BECQuery> is the same object: %s)\n\n",
              S.get<BECQuery>(T).get() == A.get() ? "yes" : "no");

  // 3. Inspect a few results. k(p,v) is the abstract value of v after p.
  std::printf("abstract bits of t0 after `andi t0, t0, 1` (instr 4): %s\n",
              A->bitValues().after(4, 5).toString().c_str());
  const FaultSpace &FS = A->space();
  int32_t Ap = FS.pointId(4, 5); // (p=andi, v=t0)
  std::printf("masked bits of that fault site: %u of %u\n",
              popCount(A->summary(Ap).MaskedMask, S.program(T).Width),
              S.program(T).Width);
  std::printf("fault-injection probes it needs: %u\n",
              A->summary(Ap).NumProbes);
  // Class lookups take untrusted coordinates and answer with nullopt
  // instead of aborting when they are off the program.
  std::printf("class of (p4, t0^0) exists: %s; of (p999, t0^0): %s\n\n",
              A->classOf(4, 5, 0) ? "yes" : "no",
              A->classOf(999, 5, 0) ? "yes" : "no");

  // 4. Execute and count what the classes save on this very trace. The
  //    golden run and the Table III counts are session queries too.
  std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(T);
  std::printf("golden run: %llu cycles, checksum output = %llu\n",
              static_cast<unsigned long long>(Golden->Cycles),
              static_cast<unsigned long long>(Golden->outputValues()[0]));
  std::shared_ptr<const FaultInjectionCounts> C = S.get<CountsQuery>(T);
  std::printf("inject-on-read (value level) would need %llu runs\n",
              static_cast<unsigned long long>(C->ValueLevelRuns));
  std::printf("BEC needs %llu runs (%.2f%% pruned: %llu masked, %llu "
              "inferrable)\n\n",
              static_cast<unsigned long long>(C->BitLevelRuns),
              C->prunedFraction() * 100.0,
              static_cast<unsigned long long>(C->MaskedBits),
              static_cast<unsigned long long>(C->InferrableBits));

  // 5. Mutate the program through the session: the epoch bumps and every
  //    dependent result is invalidated — and only those; other targets
  //    (none here) would keep their caches. Results you already hold
  //    (A, Golden) stay valid for the pre-mutation program.
  S.mutate(T, [](Program &P) { P.Instrs[1].Imm = 12; }); // 8 -> 12 rounds.
  std::printf("after raising the iteration count (epoch %llu): old "
              "vulnerability %llu, recomputed %llu\n",
              static_cast<unsigned long long>(S.epoch(T)),
              static_cast<unsigned long long>(
                  computeVulnerability(*A, Golden->Executed)),
              static_cast<unsigned long long>(*S.get<VulnQuery>(T)));
  return 0;
}
