//===- examples/quickstart.cpp - Five-minute tour of the BEC library ------===//
///
/// \file
/// Assembles a small RISC-V program, runs the BEC analysis, and walks the
/// results: abstract bit values, masked fault sites, equivalence classes,
/// and the fault-injection pruning the classes buy on a concrete run.
///
/// Build and run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/BECAnalysis.h"
#include "core/Metrics.h"
#include "ir/AsmParser.h"
#include "sim/Interpreter.h"

#include <cstdio>

using namespace bec;

int main() {
  // A toy checksum kernel: mixes a secret with a counter and reports one
  // parity-ish bit per iteration. Plenty of known bits for BEC to chew on.
  const char *Source = R"(
main:
  li   s0, 0xC0FFEE      # secret
  li   s1, 8             # iterations
  li   s2, 0             # checksum
loop:
  xor  t0, s0, s1        # mix
  andi t0, t0, 1         # keep the parity bit
  seqz t0, t0
  add  s2, s2, t0
  srli s0, s0, 1
  addi s1, s1, -1
  bnez s1, loop
  out  s2
  mv   a0, s2
  ret
)";

  // 1. Assemble. Diagnostics carry line numbers; parseAsm returns them
  //    instead of dying, parseAsmOrDie is the known-good-input shortcut.
  Program Prog = parseAsmOrDie(Source, "quickstart");
  std::printf("assembled %u instructions, %zu basic blocks\n\n", Prog.size(),
              Prog.blocks().size());

  // 2. Run the analysis: global abstract bit values + fault-index
  //    coalescing (the two phases of the paper's Section IV).
  BECAnalysis A = BECAnalysis::run(Prog);
  std::printf("coalescing reached its fixed point after %u rounds, "
              "%u merges\n\n",
              A.iterations(), A.mergeCount());

  // 3. Inspect a few results. k(p,v) is the abstract value of v after p.
  std::printf("abstract bits of t0 after `andi t0, t0, 1` (instr 4): %s\n",
              A.bitValues().after(4, 5).toString().c_str());
  const FaultSpace &FS = A.space();
  int32_t Ap = FS.pointId(4, 5); // (p=andi, v=t0)
  std::printf("masked bits of that fault site: %u of %u\n",
              popCount(A.summary(Ap).MaskedMask, Prog.Width), Prog.Width);
  std::printf("fault-injection probes it needs: %u\n\n",
              A.summary(Ap).NumProbes);

  // 4. Execute and count what the classes save on this very trace.
  Trace Golden = simulate(Prog);
  std::printf("golden run: %llu cycles, checksum output = %llu\n",
              static_cast<unsigned long long>(Golden.Cycles),
              static_cast<unsigned long long>(Golden.outputValues()[0]));
  FaultInjectionCounts C = countFaultInjectionRuns(A, Golden.Executed);
  std::printf("inject-on-read (value level) would need %llu runs\n",
              static_cast<unsigned long long>(C.ValueLevelRuns));
  std::printf("BEC needs %llu runs (%.2f%% pruned: %llu masked, %llu "
              "inferrable)\n",
              static_cast<unsigned long long>(C.BitLevelRuns),
              C.prunedFraction() * 100.0,
              static_cast<unsigned long long>(C.MaskedBits),
              static_cast<unsigned long long>(C.InferrableBits));
  return 0;
}
