//===- examples/fi_campaign.cpp - Pruned fault-injection campaign ---------===//
///
/// \file
/// Use case 1 of the paper on a real benchmark: plans the value-level
/// (inject-on-read) and the BEC-pruned campaigns for a chosen workload,
/// executes both against the simulator, and shows that the pruned
/// campaign reaches the same outcome statistics with fewer runs.
///
/// Usage: fi_campaign [workload] [max-cycles]     (default: CRC32 400)
///
//===----------------------------------------------------------------------===//

#include "fi/Campaign.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace bec;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "CRC32";
  uint64_t MaxCycles = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 400;
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'; available:", Name);
    for (const Workload &Each : allWorkloads())
      std::fprintf(stderr, " %s", Each.Name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  Program Prog = loadWorkload(*W);
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::printf("%s: %u instructions, %llu cycles (campaign window: %llu)\n\n",
              W->Name.c_str(), Prog.size(),
              static_cast<unsigned long long>(Golden.Cycles),
              static_cast<unsigned long long>(MaxCycles));

  Table T({"plan", "runs", "masked", "benign", "sdc", "trap", "hang",
           "time"});
  auto RunPlan = [&](const char *Label, PlanKind Kind) {
    std::vector<PlannedRun> Plan = planCampaign(A, Golden, Kind, MaxCycles);
    CampaignResult R = runCampaign(Prog, Golden, std::move(Plan));
    char TimeBuf[32];
    std::snprintf(TimeBuf, sizeof(TimeBuf), "%.2f s", R.Seconds);
    T.row()
        .cell(Label)
        .cell(R.Runs)
        .cell(R.EffectCounts[0])
        .cell(R.EffectCounts[1])
        .cell(R.EffectCounts[2])
        .cell(R.EffectCounts[3])
        .cell(R.EffectCounts[4])
        .cell(std::string(TimeBuf));
    return R;
  };

  CampaignResult Value = RunPlan("inject-on-read", PlanKind::ValueLevel);
  CampaignResult Bec = RunPlan("BEC-pruned", PlanKind::BitLevel);
  std::printf("%s\n", T.render().c_str());
  std::printf("runs saved by BEC: %.2f%%\n",
              100.0 * (1.0 - static_cast<double>(Bec.Runs) /
                                 static_cast<double>(Value.Runs)));
  std::printf("(each pruned run is provably masked or has an effect "
              "identical to a run that was kept)\n");
  return 0;
}
