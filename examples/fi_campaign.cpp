//===- examples/fi_campaign.cpp - Pruned fault-injection campaign ---------===//
///
/// \file
/// Use case 1 of the paper on a real benchmark: plans the value-level
/// (inject-on-read) and the BEC-pruned campaigns for a chosen workload,
/// executes both against the simulator, and shows that the pruned
/// campaign reaches the same outcome statistics with fewer runs. Both
/// plans are CampaignQuery results of one AnalysisSession, so they share
/// the cached BEC analysis and golden trace.
///
/// Usage: fi_campaign [workload] [max-cycles]     (default: CRC32 400)
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace bec;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "CRC32";
  uint64_t MaxCycles = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 400;

  AnalysisSession S;
  std::optional<AnalysisSession::TargetId> T = S.addWorkload(Name);
  if (!T) {
    std::fprintf(stderr, "unknown workload '%s'; available:", Name);
    for (const Workload &Each : allWorkloads())
      std::fprintf(stderr, " %s", Each.Name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(*T);
  std::printf("%s: %u instructions, %llu cycles (campaign window: %llu)\n\n",
              S.name(*T).c_str(), S.program(*T).size(),
              static_cast<unsigned long long>(Golden->Cycles),
              static_cast<unsigned long long>(MaxCycles));

  Table Tb({"plan", "runs", "masked", "benign", "sdc", "trap", "hang",
            "time"});
  auto RunPlan = [&](const char *Label, PlanKind Kind) {
    std::shared_ptr<const CampaignResult> R =
        S.get<CampaignQuery>(*T, {Kind, MaxCycles});
    char TimeBuf[32];
    std::snprintf(TimeBuf, sizeof(TimeBuf), "%.2f s", R->Seconds);
    Tb.row()
        .cell(Label)
        .cell(R->Runs)
        .cell(R->EffectCounts[0])
        .cell(R->EffectCounts[1])
        .cell(R->EffectCounts[2])
        .cell(R->EffectCounts[3])
        .cell(R->EffectCounts[4])
        .cell(std::string(TimeBuf));
    return R;
  };

  auto Value = RunPlan("inject-on-read", PlanKind::ValueLevel);
  auto Bec = RunPlan("BEC-pruned", PlanKind::BitLevel);
  std::printf("%s\n", Tb.render().c_str());
  std::printf("runs saved by BEC: %.2f%%\n",
              100.0 * (1.0 - static_cast<double>(Bec->Runs) /
                                 static_cast<double>(Value->Runs)));
  std::printf("(each pruned run is provably masked or has an effect "
              "identical to a run that was kept)\n");
  return 0;
}
