//===- examples/schedule_for_reliability.cpp - Use case 2 on a benchmark --===//
///
/// \file
/// Vulnerability-aware instruction scheduling (the paper's Algorithm 4)
/// applied to a chosen workload: reorders independent instructions within
/// every basic block to retire live fault bits as early as possible,
/// verifies observational equivalence, and reports the change in the
/// program's fault surface. The scheduled programs are interned into the
/// same AnalysisSession, so their vulnerability numbers come from the
/// shared cache.
///
/// Usage: schedule_for_reliability [workload]     (default: SHA)
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include <cstdio>

using namespace bec;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "SHA";
  AnalysisSession S;
  std::optional<AnalysisSession::TargetId> T = S.addWorkload(Name);
  if (!T) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name);
    return 1;
  }
  const Program &Prog = S.program(*T);

  std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(*T);
  std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(*T);

  Program Best = scheduleProgram(*A, SchedulePolicy::BestReliability);
  Program Worst = scheduleProgram(*A, SchedulePolicy::WorstReliability);
  CachedProgramPtr BestP = S.intern(Best);
  CachedProgramPtr WorstP = S.intern(Worst);
  std::shared_ptr<const Trace> TB = S.get<TraceQuery>(BestP);
  std::shared_ptr<const Trace> TW = S.get<TraceQuery>(WorstP);
  if (TB->ObservableHash != Golden->ObservableHash ||
      TW->ObservableHash != Golden->ObservableHash) {
    std::fprintf(stderr, "scheduling changed program behaviour -- bug\n");
    return 1;
  }
  std::printf("%s: outputs unchanged under both schedules; %llu cycles "
              "either way\n\n",
              S.name(*T).c_str(),
              static_cast<unsigned long long>(TB->Cycles));

  uint64_t VOrig = *S.get<VulnQuery>(*T);
  uint64_t VBest = *S.get<VulnQuery>(BestP);
  uint64_t VWorst = *S.get<VulnQuery>(WorstP);
  std::printf("live fault sites over the run (lower = more reliable):\n");
  std::printf("  original order:        %llu\n",
              static_cast<unsigned long long>(VOrig));
  std::printf("  best-reliability:      %llu  (%.2f%% fewer than worst)\n",
              static_cast<unsigned long long>(VBest),
              100.0 * (1.0 - static_cast<double>(VBest) /
                                 static_cast<double>(VWorst)));
  std::printf("  worst-reliability:     %llu\n\n",
              static_cast<unsigned long long>(VWorst));

  // Show what the scheduler did to the hottest block (the largest one).
  const BasicBlock *Biggest = &Prog.blocks()[0];
  for (const BasicBlock &B : Prog.blocks())
    if (B.size() > Biggest->size())
      Biggest = &B;
  std::printf("largest block before/after (first 8 instructions):\n");
  for (uint32_t K = 0; K < Biggest->size() && K < 8; ++K)
    std::printf("  %-28s | %s\n",
                Prog.instr(Biggest->First + K).toString().c_str(),
                Best.instr(Biggest->First + K).toString().c_str());
  return 0;
}
