//===- examples/asm_explorer.cpp - Analyze your own assembly file ---------===//
///
/// \file
/// Reads a program in the project's RISC-V dialect from a file (or runs a
/// built-in demo), and prints the per-instruction analysis view: abstract
/// bit values of every accessed register, liveness, masked bits, and the
/// fault-injection probes each access point needs. Loading and analysis
/// go through the AnalysisSession, so exploring the same file twice in a
/// bigger tool would be free.
///
/// Usage: asm_explorer [file.s]
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "ir/AsmParser.h"
#include "support/Table.h"

#include <cstdio>

using namespace bec;

static const char *DemoSource = R"(
# demo: saturating accumulator over a byte table
.memsize 8192
.data
bytes:
  .byte 3, 200, 14, 250, 77, 255, 1, 96
.text
main:
  la   s0, bytes
  li   s1, 8
  li   s2, 0             # accumulator
loop:
  lbu  t0, 0(s0)
  add  s2, s2, t0
  li   t1, 255
  ble  s2, t1, no_sat
  mv   s2, t1            # saturate at 255
no_sat:
  addi s0, s0, 1
  addi s1, s1, -1
  bnez s1, loop
  out  s2
  mv   a0, s2
  ret
)";

int main(int Argc, char **Argv) {
  AnalysisSession S;
  std::optional<AnalysisSession::TargetId> T;
  if (Argc > 1) {
    std::string Error;
    T = S.addAsmFile(Argv[1], Error);
    if (!T) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 1;
    }
  } else {
    AsmParseResult Parsed = parseAsm(DemoSource, "demo");
    if (!Parsed.succeeded()) {
      std::fprintf(stderr, "%s", Parsed.diagText().c_str());
      return 1;
    }
    T = S.addProgram("demo", std::move(*Parsed.Prog));
  }

  const Program &Prog = S.program(*T);
  std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(*T);
  const FaultSpace &FS = A->space();

  Table Tb({"p", "instruction", "reg", "k(p,v)", "live", "masked",
            "probes"});
  for (uint32_t P = 0; P < Prog.size(); ++P) {
    auto [Begin, End] = FS.pointsOfInstr(P);
    if (Begin == End) {
      Tb.row().cell("p" + std::to_string(P)).cell(Prog.instr(P).toString());
      continue;
    }
    for (uint32_t Ap = Begin; Ap < End; ++Ap) {
      Reg V = FS.point(Ap).R;
      const auto &Sum = A->summary(Ap);
      Tb.row()
          .cell("p" + std::to_string(P))
          .cell(Ap == Begin ? Prog.instr(P).toString() : "")
          .cell(std::string(regName(V)))
          .cell(A->bitValues().after(P, V).toString())
          .cell(Sum.LiveAfter ? "yes" : "no")
          .cell(static_cast<uint64_t>(popCount(Sum.MaskedMask, Prog.Width)))
          .cell(static_cast<uint64_t>(Sum.NumProbes));
    }
  }
  std::printf("%s\n", Tb.render().c_str());

  std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(*T);
  std::printf("run: %s in %llu cycles", outcomeName(Golden->End),
              static_cast<unsigned long long>(Golden->Cycles));
  if (!Golden->outputValues().empty()) {
    std::printf(", outputs:");
    for (uint64_t V : Golden->outputValues())
      std::printf(" %llu", static_cast<unsigned long long>(V));
  }
  std::printf("\n");
  return 0;
}
