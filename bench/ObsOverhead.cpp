//===- bench/ObsOverhead.cpp - Observability layer overhead budget --------===//
///
/// \file
/// Measures what the obs instrumentation costs on the hottest path it
/// touches: the campaign engine's per-run loop (one histogram observe
/// per shard, five counter adds per worker exit, plus the per-call-site
/// enabled() load). The same binary runs the same campaign with metrics
/// enabled, with metrics enabled plus the structured logger armed at
/// Info (the deployed daemon shape: per-shard Debug lines gate but never
/// emit), and with the runtime kill switch off (setMetricsEnabled), so
/// all sides share code generation and the only delta is the obs work.
///
/// Method: alternate enabled/disabled repetitions (soaking up thermal /
/// cache drift evenly), take the best throughput of each side, and
/// report overhead = enabled_best vs disabled_best. The acceptance
/// budget is <3% (docs/observability.md quotes the measured number);
/// the bench fails loudly beyond a 5% hard ceiling so CI noise on tiny
/// runners does not flap the job, while real regressions (a lock on the
/// hot path, a dirty cache line) still fail — those show up as 2x, not
/// 1.05x.
///
/// Emits BENCH_obs.json (path = argv[1], default ./BENCH_obs.json).
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "fi/Engine.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "support/Debug.h"
#include "support/Json.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace bec;

namespace {

constexpr const char *WorkloadName = "CRC32";
constexpr uint64_t WindowCycles = 256;
constexpr unsigned Reps = 5;
constexpr double SoftBudget = 0.03; ///< The documented target.
constexpr double HardCeiling = 0.05; ///< Fails the bench.

struct Side {
  const char *Label;
  bool Enabled;        ///< Metrics on/off (the runtime kill switch).
  obs::LogLevel Level; ///< Logger gate during the run.
  std::vector<double> RunsPerSec;
  double best() const {
    return RunsPerSec.empty()
               ? 0.0
               : *std::max_element(RunsPerSec.begin(), RunsPerSec.end());
  }
};

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_obs.json";
  std::printf("obs overhead: instrumented vs. runtime-disabled campaign "
              "engine, %u reps each, best-of\n\n",
              Reps);

  AnalysisSession S;
  auto T = S.addWorkload(WorkloadName);
  if (!T)
    reportFatalError("unknown benchmark workload");
  std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(*T);
  std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(*T);
  const Program &Prog = S.program(*T);

  PlanOptions PO;
  PO.Kind = PlanKind::Exhaustive; // Maximum runs => maximum obs pressure.
  PO.MaxCycles = WindowCycles;
  CampaignPlan Plan = CampaignPlan::build(*A, *Golden, PO);

  // "logging-quiet" is the deployed daemon shape: metrics on AND the
  // logger armed at Info, so the engine's per-shard Debug lines pay the
  // logEnabled() gate on every shard but never render or write. The
  // same hard ceiling applies — logging must stay off-path when quiet.
  Side Sides[] = {{"enabled", true, obs::LogLevel::Off, {}},
                  {"logging-quiet", true, obs::LogLevel::Info, {}},
                  {"disabled", false, obs::LogLevel::Off, {}}};

  // One warmup campaign so first-touch effects (page faults, snapshot
  // pools) land outside the measurement.
  {
    CampaignExecOptions Exec;
    Exec.Threads = 1;
    runCampaign(Prog, *Golden, Plan, Exec);
  }

  for (unsigned Rep = 0; Rep < Reps; ++Rep)
    for (Side &Sd : Sides) {
      obs::setMetricsEnabled(Sd.Enabled);
      obs::setLogLevel(Sd.Level);
      CampaignExecOptions Exec;
      Exec.Threads = 1;
      CampaignResult R = runCampaign(Prog, *Golden, Plan, Exec);
      if (!R.Error.empty())
        reportFatalError("campaign engine failed");
      Sd.RunsPerSec.push_back(R.Seconds > 0 ? double(R.Runs) / R.Seconds
                                            : 0.0);
    }
  obs::setMetricsEnabled(true);
  obs::setLogLevel(obs::LogLevel::Off);

  double EnabledBest = Sides[0].best();
  double QuietLogBest = Sides[1].best();
  double DisabledBest = Sides[2].best();
  double Overhead =
      DisabledBest > 0 ? 1.0 - EnabledBest / DisabledBest : 0.0;
  if (Overhead < 0)
    Overhead = 0; // Enabled measured faster: noise, not a speedup.
  double LogOverhead =
      DisabledBest > 0 ? 1.0 - QuietLogBest / DisabledBest : 0.0;
  if (LogOverhead < 0)
    LogOverhead = 0;

  Table Tbl({"side", "best runs/s", "reps"});
  for (const Side &Sd : Sides) {
    char Thr[32];
    std::snprintf(Thr, sizeof Thr, "%.0f", Sd.best());
    Tbl.row().cell(Sd.Label).cell(std::string(Thr)).cell(uint64_t(Reps));
  }
  std::printf("%s\n", Tbl.render().c_str());
  std::printf("runs per campaign: %llu\n",
              (unsigned long long)Plan.runs().size());
  std::printf("instrumentation overhead: %.2f%% (budget %.0f%%, hard "
              "ceiling %.0f%%)\n",
              Overhead * 100, SoftBudget * 100, HardCeiling * 100);
  std::printf("logging-quiet overhead:   %.2f%% (same ceiling; gate-only "
              "cost of an armed logger)\n",
              LogOverhead * 100);
  if (Overhead >= SoftBudget)
    std::printf("WARNING: over the documented %.0f%% budget\n",
                SoftBudget * 100);
  if (Overhead >= HardCeiling)
    reportFatalError("obs instrumentation overhead exceeds the hard "
                     "ceiling — a lock or shared cache line crept into "
                     "the hot path");
  if (LogOverhead >= HardCeiling)
    reportFatalError("quiet logging overhead exceeds the hard ceiling — "
                     "an armed-but-silent logger must cost one load and "
                     "a branch per gated site");

  JsonWriter J;
  J.beginObject();
  J.key("bench").value("ObsOverhead");
  J.key("api_version").value(BEC_API_VERSION_STRING);
  J.key("workload").value(WorkloadName);
  J.key("window_cycles").value(WindowCycles);
  J.key("runs_per_campaign").value(uint64_t(Plan.runs().size()));
  J.key("reps").value(uint64_t(Reps));
  J.key("sides").beginArray();
  for (const Side &Sd : Sides) {
    J.beginObject();
    J.key("side").value(Sd.Label);
    J.key("best_runs_s").value(Sd.best());
    J.key("all_runs_s").beginArray();
    for (double V : Sd.RunsPerSec)
      J.value(V);
    J.endArray();
    J.endObject();
  }
  J.endArray();
  J.key("asserts").beginObject();
  J.key("overhead_fraction").value(Overhead);
  J.key("log_quiet_overhead_fraction").value(LogOverhead);
  J.key("soft_budget").value(SoftBudget);
  J.key("hard_ceiling").value(HardCeiling);
  J.key("within_budget").value(Overhead < SoftBudget);
  J.key("log_quiet_within_ceiling").value(LogOverhead < HardCeiling);
  J.endObject();
  J.endObject();

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath);
    return 1;
  }
  Out << J.take() << "\n";
  std::printf("wrote %s\n", OutPath);
  return 0;
}
