//===- bench/SessionReuse.cpp - What the session cache buys the hardener --===//
///
/// \file
/// The headline measurement of the AnalysisSession redesign: the selective
/// hardener's measure-and-accept loop, cold versus cached.
///
///   * cold  — AnalysisSession with Caching=false: every get() recomputes,
///             reproducing the PR-2 loop that re-ran the full pipeline
///             (verify + simulate + BEC) after every candidate transform
///             and at every round top.
///   * warm  — a caching session: the accepted candidate's measurement
///             becomes the next round's baseline, the final re-analysis
///             and the closed-loop validation hit the cache.
///   * sweep — five budgets per workload on one shared session: budgets
///             share the baseline pipeline and every trial measured
///             before their greedy paths diverge.
///   * hot   — re-asking an already-answered HardenQuery (the library
///             use case: interactive tools, dashboards, CI re-checks).
///
/// Cold and warm must agree bit-for-bit on every result (asserted here);
/// only the time may differ. Emits BENCH_session.json (path = argv[1],
/// default ./BENCH_session.json), seeding the perf trajectory.
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "support/Debug.h"
#include "support/Json.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <fstream>

using namespace bec;

namespace {

constexpr double SingleBudget = 10.0;
constexpr double SweepBudgets[] = {2, 5, 10, 20, 30};
constexpr int Reps = 3; ///< Best-of-N to damp scheduler noise.

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

AnalysisSession::Config coldConfig() {
  AnalysisSession::Config C;
  C.Caching = false;
  return C;
}

/// One full `bec harden` unit of work for one target: the greedy loop
/// plus the closed-loop validation (what the driver always runs).
HardenPoint hardenOnce(AnalysisSession &S, const CachedProgramPtr &P,
                       double Budget) {
  HardenOptions HO;
  HO.BudgetPercent = Budget;
  HardenPoint Point;
  Point.Harden = hardenProgram(S, P, HO);
  Point.Check = validateHardening(S, P, Point.Harden);
  return Point;
}

/// Best-of-Reps wall time of \p Fn (called exactly Reps times).
template <class Fn> double timeBest(Fn &&F) {
  double Best = 1e100;
  for (int R = 0; R < Reps; ++R) {
    double T0 = now();
    F();
    Best = std::min(Best, now() - T0);
  }
  return Best;
}

struct TargetTimes {
  std::string Name;
  double ColdS = 0, WarmS = 0;
  double SweepColdS = 0, SweepWarmS = 0;
  double HotS = 0;
  uint64_t ResidualVuln = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_session.json";
  std::printf("Session reuse: the harden loop cold (PR-2 re-analysis) vs. "
              "cached, %d-rep best-of\n\n", Reps);

  std::vector<TargetTimes> Rows;
  for (const Workload &W : allWorkloads()) {
    TargetTimes Row;
    Row.Name = W.Name;

    // Cold: caching off; every measurement re-runs the pipeline.
    HardenPoint Cold;
    Row.ColdS = timeBest([&] {
      AnalysisSession S(coldConfig());
      Cold = hardenOnce(S, S.intern(loadWorkload(W)), SingleBudget);
    });

    // Warm: a fresh caching session per run (intra-run reuse only).
    HardenPoint Warm;
    Row.WarmS = timeBest([&] {
      AnalysisSession S;
      Warm = hardenOnce(S, S.intern(loadWorkload(W)), SingleBudget);
    });

    // Caching must never change an answer.
    if (Cold.Harden.ResidualVuln != Warm.Harden.ResidualVuln ||
        Cold.Harden.HardenedCycles != Warm.Harden.HardenedCycles ||
        Cold.Harden.HP.Prog.toString() != Warm.Harden.HP.Prog.toString() ||
        !Cold.Check.ok() || !Warm.Check.ok())
      reportFatalError("cold and warm hardening disagree");
    Row.ResidualVuln = Warm.Harden.ResidualVuln;

    // Budget sweep: five budgets, cold vs. one shared warm session.
    Row.SweepColdS = timeBest([&] {
      AnalysisSession S(coldConfig());
      CachedProgramPtr P = S.intern(loadWorkload(W));
      for (double B : SweepBudgets)
        hardenOnce(S, P, B);
    });
    Row.SweepWarmS = timeBest([&] {
      AnalysisSession S;
      CachedProgramPtr P = S.intern(loadWorkload(W));
      for (double B : SweepBudgets)
        hardenOnce(S, P, B);
    });

    // Hot: the query result itself is cached.
    {
      AnalysisSession S;
      AnalysisSession::TargetId T = *S.addWorkload(W.Name);
      HardenOptions HO;
      HO.BudgetPercent = SingleBudget;
      S.get<HardenQuery>(T, HO); // Fill.
      Row.HotS = timeBest([&] { S.get<HardenQuery>(T, HO); });
    }
    Rows.push_back(Row);
  }

  auto Speedup = [](double Cold, double Warm) {
    return Warm > 0 ? Cold / Warm : 0.0;
  };

  Table Tbl({"benchmark", "cold", "warm", "speedup", "sweep cold",
             "sweep warm", "speedup", "hot query"});
  double TCold = 0, TWarm = 0, TSwCold = 0, TSwWarm = 0;
  for (const TargetTimes &R : Rows) {
    TCold += R.ColdS;
    TWarm += R.WarmS;
    TSwCold += R.SweepColdS;
    TSwWarm += R.SweepWarmS;
    char Buf[5][32];
    std::snprintf(Buf[0], 32, "%.3f s", R.ColdS);
    std::snprintf(Buf[1], 32, "%.3f s", R.WarmS);
    std::snprintf(Buf[2], 32, "%.2fx", Speedup(R.ColdS, R.WarmS));
    std::snprintf(Buf[3], 32, "%.3f s", R.SweepColdS);
    std::snprintf(Buf[4], 32, "%.3f s", R.SweepWarmS);
    char Buf2[2][32];
    std::snprintf(Buf2[0], 32, "%.2fx", Speedup(R.SweepColdS, R.SweepWarmS));
    std::snprintf(Buf2[1], 32, "%.1f us", R.HotS * 1e6);
    Tbl.row()
        .cell(R.Name)
        .cell(std::string(Buf[0]))
        .cell(std::string(Buf[1]))
        .cell(std::string(Buf[2]))
        .cell(std::string(Buf[3]))
        .cell(std::string(Buf[4]))
        .cell(std::string(Buf2[0]))
        .cell(std::string(Buf2[1]));
  }
  std::printf("%s\n", Tbl.render().c_str());
  std::printf("totals: harden --budget 10 --all  %.3f s cold -> %.3f s "
              "cached (%.2fx); sweep %.3f s -> %.3f s (%.2fx)\n",
              TCold, TWarm, Speedup(TCold, TWarm), TSwCold, TSwWarm,
              Speedup(TSwCold, TSwWarm));

  JsonWriter J;
  J.beginObject();
  J.key("bench").value("SessionReuse");
  J.key("api_version").value(BEC_API_VERSION_STRING);
  J.key("budget_percent").value(SingleBudget);
  J.key("sweep_budgets").beginArray();
  for (double B : SweepBudgets)
    J.value(B);
  J.endArray();
  J.key("targets").beginArray();
  for (const TargetTimes &R : Rows) {
    J.beginObject();
    J.key("name").value(R.Name);
    J.key("residual_vulnerability").value(R.ResidualVuln);
    J.key("cold_seconds").value(R.ColdS);
    J.key("warm_seconds").value(R.WarmS);
    J.key("speedup").value(Speedup(R.ColdS, R.WarmS));
    J.key("sweep_cold_seconds").value(R.SweepColdS);
    J.key("sweep_warm_seconds").value(R.SweepWarmS);
    J.key("sweep_speedup").value(Speedup(R.SweepColdS, R.SweepWarmS));
    J.key("hot_query_seconds").value(R.HotS);
    J.endObject();
  }
  J.endArray();
  J.key("total").beginObject();
  J.key("cold_seconds").value(TCold);
  J.key("warm_seconds").value(TWarm);
  J.key("speedup").value(Speedup(TCold, TWarm));
  J.key("sweep_cold_seconds").value(TSwCold);
  J.key("sweep_warm_seconds").value(TSwWarm);
  J.key("sweep_speedup").value(Speedup(TSwCold, TSwWarm));
  J.endObject();
  J.endObject();

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath);
    return 1;
  }
  Out << J.take() << "\n";
  std::printf("wrote %s\n", OutPath);
  return 0;
}
