//===- bench/Table3Pruning.cpp - Reproduces paper Table III ---------------===//
///
/// \file
/// "Results of fault injection pruning by the proposed static analysis":
/// for each benchmark, the number of fault sites that need injection under
/// value-level analysis (inject-on-read) and under BEC, with the
/// masked/inferrable breakdown and the total pruning rate.
///
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "sim/Interpreter.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace bec;

int main() {
  std::printf("Table III: fault injection pruning by the BEC analysis\n");
  std::printf("(paper: up to 30.04%% pruned, 13.71%% on average; AES prunes "
              "most, RSA least)\n\n");
  Table T({"benchmark", "Live in values", "Live in bits", "Masked bits",
           "Inferrable bits", "FI runs pruned"});
  double Sum = 0;
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);
    FaultInjectionCounts C = countFaultInjectionRuns(A, Golden.Executed);
    T.row()
        .cell(W.Name)
        .cell(C.ValueLevelRuns)
        .cell(C.BitLevelRuns)
        .cell(C.MaskedBits)
        .cell(C.InferrableBits)
        .cell(Table::percent(C.prunedFraction()));
    Sum += C.prunedFraction();
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("average FI runs pruned: %s\n",
              Table::percent(Sum / allWorkloads().size()).c_str());
  return 0;
}
