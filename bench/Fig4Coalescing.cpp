//===- bench/Fig4Coalescing.cpp - Reproduces paper Fig. 4 ------------------===//
///
/// \file
/// The fork-after-join coalescing example of Section IV-C: a value with
/// two unknown definitions is tested with `andi v,1` / `beqz`, then
/// shifted by 3 on the even path and by 2 on the odd path. The expected
/// fixed point (Fig. 4c):
///   * v's bits 2 and 3 after the join are masked (shifted out on both
///     paths and masked by the andi) -> class s0;
///   * v's bits 0 and 1 stay in their own classes (the uses disagree);
///   * m's bits 1..3 at the branch coalesce into one class (any flip of a
///     known-zero bit diverts the branch the same way);
///   * the shift results inherit the input classes bit-for-bit.
///
//===----------------------------------------------------------------------===//

#include "core/BECAnalysis.h"
#include "ir/AsmParser.h"
#include "support/Table.h"

#include <cstdio>

using namespace bec;

// a -> s0 (unknown), b -> s1 (unknown), v -> t0, m -> t1,
// v8 -> t2, v4 -> t3. The s-registers are deliberately read uninitialized:
// the analysis models them as Top, exactly like the paper's "a = ...".
static const char *Fig4Asm = R"(
.width 4
main:
  beqz s2, take_b
  mv   t0, s0           # p2a: v = a
  j    join
take_b:
  mv   t0, s1           # p2b: v = b
join:
  andi t1, t0, 1        # p3: m = andi v, 1
  beqz t1, even         # p4
  slli t3, t0, 2        # p6: v4 = shl v, 2
  out  t3
  halt
even:
  slli t2, t0, 3        # p5: v8 = shl v, 3
  out  t2
  halt
)";

int main() {
  Program Prog = parseAsmOrDie(Fig4Asm, "fig4");
  BECAnalysis A = BECAnalysis::run(Prog);
  const FaultSpace &FS = A.space();

  std::printf("Fig. 4: iterative fault index coalescing on a "
              "fork-after-join snippet (4-bit)\n\n");
  Table T({"p", "instruction", "reg", "k(p,v)", "class of bit 3..0"});
  for (uint32_t P = 0; P < Prog.size(); ++P) {
    auto [Begin, End] = FS.pointsOfInstr(P);
    for (uint32_t Ap = Begin; Ap < End; ++Ap) {
      Reg V = FS.point(Ap).R;
      std::string Classes;
      for (unsigned B = Prog.Width; B-- > 0;) {
        uint32_t Rep = A.classOf(FS.faultIndex(Ap, B));
        Classes += Rep == 0 ? std::string("s0") : std::to_string(Rep);
        if (B)
          Classes += " ";
      }
      T.row()
          .cell("p" + std::to_string(P))
          .cell(Prog.instr(P).toString())
          .cell(std::string(regName(V)))
          .cell(A.bitValues().after(P, V).toString())
          .cell(Classes);
    }
  }
  std::printf("%s\n", T.render().c_str());

  // The checks corresponding to Fig. 4c's final state. Instruction 4 is
  // `andi t1, t0, 1` (the join); t0 = x5 holds v, t1 = x6 holds m.
  uint32_t JoinAndi = 4;
  bool Bit3Masked = A.classOf(JoinAndi, 5, 3) == 0u;
  bool Bit2Masked = A.classOf(JoinAndi, 5, 2) == 0u;
  bool Bit0Live = A.classOf(JoinAndi, 5, 0) != 0u;
  // m is consumed by the branch; its pre-branch segment starts at the andi.
  uint32_t C1 = A.classOf(JoinAndi, 6, 1).value_or(0);
  bool MBitsCoalesced = C1 != 0 && C1 == A.classOf(JoinAndi, 6, 2) &&
                        C1 == A.classOf(JoinAndi, 6, 3);
  std::printf("v bits 2,3 masked after the join (paper: coalesced to s0): "
              "%s\n",
              Bit3Masked && Bit2Masked ? "yes" : "NO");
  std::printf("v bit 0 stays live (uses disagree): %s\n",
              Bit0Live ? "yes" : "NO");
  std::printf("m bits 1..3 coalesce into one class at the branch: %s\n",
              MBitsCoalesced ? "yes" : "NO");
  return Bit3Masked && Bit2Masked && Bit0Live && MBitsCoalesced ? 0 : 1;
}
