//===- bench/AblationRules.cpp - Ablation of the analysis components ------===//
///
/// \file
/// Quantifies what each piece of the analysis contributes to fault
/// injection pruning (the design choices DESIGN.md calls out):
///
///   full       -- the complete BEC analysis;
///   -eval      -- without the slt/branch eval() rule family;
///   -bitwise   -- without the mv/xor/and/or/shift rule family;
///   -inter     -- without inter-instruction coalescing (Algorithm 2
///                 line 12): only liveness masking remains;
///   -global    -- bit values restricted to Top (no global KnownBits),
///                 isolating the value of the dataflow analysis.
///
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "sim/Interpreter.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace bec;

static double prunedWith(const Program &Prog, const Trace &Golden,
                         const BECOptions &Opts) {
  BECAnalysis A = BECAnalysis::run(Prog, Opts);
  return countFaultInjectionRuns(A, Golden.Executed).prunedFraction();
}

int main() {
  std::printf("Ablation: FI runs pruned under disabled analysis "
              "components\n\n");
  Table T({"benchmark", "full", "-eval", "-bitwise", "-inter", "-global"});
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    Trace Golden = simulate(Prog);

    BECOptions Full;
    BECOptions NoEval;
    NoEval.Fates.EvalRules = false;
    BECOptions NoBitwise;
    NoBitwise.Fates.BitwiseRules = false;
    BECOptions NoInter;
    NoInter.InterInstruction = false;
    BECOptions NoGlobal;
    NoGlobal.GlobalBitValues = false;

    T.row()
        .cell(W.Name)
        .cell(Table::percent(prunedWith(Prog, Golden, Full)))
        .cell(Table::percent(prunedWith(Prog, Golden, NoEval)))
        .cell(Table::percent(prunedWith(Prog, Golden, NoBitwise)))
        .cell(Table::percent(prunedWith(Prog, Golden, NoInter)))
        .cell(Table::percent(prunedWith(Prog, Golden, NoGlobal)));
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("expected shape: AES keeps most pruning without global bit "
              "values (xor rules are value-oblivious);\nadpcm collapses "
              "without them (its pruning rides on constant bit patterns)\n");
  return 0;
}
