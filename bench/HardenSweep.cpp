//===- bench/HardenSweep.cpp - Cost vs. residual vulnerability sweep ------===//
///
/// \file
/// The selective-hardening Pareto frontier per benchmark: for each bundled
/// workload and a ladder of dynamic-instruction budgets, the cost the
/// budgeted selector actually spent and the residual (silent) live
/// fault-site vulnerability it reached. A second table closes the loop
/// with the fault-injection oracle: bounded bit-level campaigns against
/// the baseline and the 10%-budget hardened program, showing silent data
/// corruptions converting into detector traps.
///
/// The whole sweep runs on one AnalysisSession: budgets share the
/// baseline pipeline and all trial measurements up to their greedy
/// divergence point, and the closed-loop campaigns reuse the cached
/// analyses of the baseline and hardened programs (bench_SessionReuse
/// quantifies the saving).
///
/// Output feeds the BENCH trajectory: one (cost, residual) point per
/// workload/budget pair.
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "support/Debug.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace bec;

namespace {

constexpr double Budgets[] = {2, 5, 10, 20, 30};
/// Campaign window for the closed-loop table (keeps the bench fast).
constexpr uint64_t CampaignCycles = 1200;

CampaignResult boundedBitLevelCampaign(AnalysisSession &S,
                                       const CachedProgramPtr &P) {
  if (S.get<TraceQuery>(P)->End != Outcome::Finished)
    reportFatalError("golden run did not finish");
  return *S.get<CampaignQuery>(P, {PlanKind::BitLevel, CampaignCycles});
}

} // namespace

int main() {
  std::printf("Selective hardening sweep: cost vs. residual vulnerability\n");
  std::printf("(budget = max extra dynamic instructions; residual = live "
              "fault sites not covered by a detector)\n\n");

  AnalysisSession S;
  S.addAllWorkloads();

  Table Sweep({"benchmark", "budget", "cost", "base vuln", "residual vuln",
               "reduction", "dup", "narrow"});
  std::vector<HardenResult> TenPercent;
  for (size_t T = 0; T < S.numTargets(); ++T) {
    for (double Budget : Budgets) {
      HardenOptions Opts;
      Opts.BudgetPercent = Budget;
      const HardenPoint &P =
          *S.get<HardenQuery>(static_cast<uint32_t>(T), Opts);
      if (!P.Check.ok())
        reportFatalError("hardening failed validation on a workload");
      const HardenResult &R = P.Harden;
      Sweep.row()
          .cell(S.name(T))
          .cell(Table::percent(Budget / 100.0))
          .cell(Table::percent(R.costPercent() / 100.0))
          .cell(R.BaselineVuln)
          .cell(R.ResidualVuln)
          .cell(Table::percent(R.reduction()))
          .cell(uint64_t(R.NumDuplicated))
          .cell(uint64_t(R.NumNarrowed));
      if (Budget == 10.0)
        TenPercent.push_back(R);
    }
  }
  std::printf("%s\n", Sweep.render().c_str());

  std::printf("Closed loop at the 10%% budget: bit-level campaigns over the "
              "first %llu cycles\n",
              static_cast<unsigned long long>(CampaignCycles));
  std::printf("(hardening converts silent data corruptions into detector "
              "traps)\n\n");
  Table Loop({"benchmark", "runs", "SDC", "SDC rate", "trap", "hardened runs",
              "SDC", "SDC rate", "trap"});
  for (size_t I = 0; I < TenPercent.size(); ++I) {
    CampaignResult Base =
        boundedBitLevelCampaign(S, S.cached(static_cast<uint32_t>(I)));
    CampaignResult Hard =
        boundedBitLevelCampaign(S, S.intern(TenPercent[I].HP.Prog));
    auto SDC = [](const CampaignResult &C) {
      return C.EffectCounts[size_t(FaultEffect::SDC)];
    };
    auto Trap = [](const CampaignResult &C) {
      return C.EffectCounts[size_t(FaultEffect::Trap)];
    };
    auto Rate = [&](const CampaignResult &C) {
      return C.Runs == 0 ? 0.0
                         : static_cast<double>(SDC(C)) /
                               static_cast<double>(C.Runs);
    };
    Loop.row()
        .cell(S.name(I))
        .cell(Base.Runs)
        .cell(SDC(Base))
        .cell(Table::percent(Rate(Base)))
        .cell(Trap(Base))
        .cell(Hard.Runs)
        .cell(SDC(Hard))
        .cell(Table::percent(Rate(Hard)))
        .cell(Trap(Hard));
  }
  std::printf("%s", Loop.render().c_str());
  return 0;
}
