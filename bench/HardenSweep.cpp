//===- bench/HardenSweep.cpp - Cost vs. residual vulnerability sweep ------===//
///
/// \file
/// The selective-hardening Pareto frontier per benchmark: for each bundled
/// workload and a ladder of dynamic-instruction budgets, the cost the
/// budgeted selector actually spent and the residual (silent) live
/// fault-site vulnerability it reached. A second table closes the loop
/// with the fault-injection oracle: bounded bit-level campaigns against
/// the baseline and the 10%-budget hardened program, showing silent data
/// corruptions converting into detector traps.
///
/// Output feeds the BENCH trajectory: one (cost, residual) point per
/// workload/budget pair.
///
//===----------------------------------------------------------------------===//

#include "fi/Campaign.h"
#include "harden/Harden.h"
#include "sim/Interpreter.h"
#include "support/Debug.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace bec;

namespace {

constexpr double Budgets[] = {2, 5, 10, 20, 30};
/// Campaign window for the closed-loop table (keeps the bench fast).
constexpr uint64_t CampaignCycles = 1200;

CampaignResult boundedBitLevelCampaign(const Program &Prog) {
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  if (Golden.End != Outcome::Finished)
    reportFatalError("golden run did not finish");
  std::vector<PlannedRun> Plan =
      planCampaign(A, Golden, PlanKind::BitLevel, CampaignCycles);
  return runCampaign(Prog, Golden, std::move(Plan));
}

} // namespace

int main() {
  std::printf("Selective hardening sweep: cost vs. residual vulnerability\n");
  std::printf("(budget = max extra dynamic instructions; residual = live "
              "fault sites not covered by a detector)\n\n");

  Table Sweep({"benchmark", "budget", "cost", "base vuln", "residual vuln",
               "reduction", "dup", "narrow"});
  std::vector<HardenResult> TenPercent;
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    for (double Budget : Budgets) {
      HardenOptions Opts;
      Opts.BudgetPercent = Budget;
      HardenResult R = hardenProgram(Prog, Opts);
      HardenValidation V = validateHardening(R, Prog);
      if (!V.ok())
        reportFatalError("hardening failed validation on a workload");
      Sweep.row()
          .cell(W.Name)
          .cell(Table::percent(Budget / 100.0))
          .cell(Table::percent(R.costPercent() / 100.0))
          .cell(R.BaselineVuln)
          .cell(R.ResidualVuln)
          .cell(Table::percent(R.reduction()))
          .cell(uint64_t(R.NumDuplicated))
          .cell(uint64_t(R.NumNarrowed));
      if (Budget == 10.0)
        TenPercent.push_back(std::move(R));
    }
  }
  std::printf("%s\n", Sweep.render().c_str());

  std::printf("Closed loop at the 10%% budget: bit-level campaigns over the "
              "first %llu cycles\n",
              static_cast<unsigned long long>(CampaignCycles));
  std::printf("(hardening converts silent data corruptions into detector "
              "traps)\n\n");
  Table Loop({"benchmark", "runs", "SDC", "SDC rate", "trap", "hardened runs",
              "SDC", "SDC rate", "trap"});
  for (size_t I = 0; I < TenPercent.size(); ++I) {
    const Workload &W = allWorkloads()[I];
    Program Prog = loadWorkload(W);
    CampaignResult Base = boundedBitLevelCampaign(Prog);
    CampaignResult Hard = boundedBitLevelCampaign(TenPercent[I].HP.Prog);
    auto SDC = [](const CampaignResult &C) {
      return C.EffectCounts[size_t(FaultEffect::SDC)];
    };
    auto Trap = [](const CampaignResult &C) {
      return C.EffectCounts[size_t(FaultEffect::Trap)];
    };
    auto Rate = [&](const CampaignResult &C) {
      return C.Runs == 0 ? 0.0
                         : static_cast<double>(SDC(C)) /
                               static_cast<double>(C.Runs);
    };
    Loop.row()
        .cell(W.Name)
        .cell(Base.Runs)
        .cell(SDC(Base))
        .cell(Table::percent(Rate(Base)))
        .cell(Trap(Base))
        .cell(Hard.Runs)
        .cell(SDC(Hard))
        .cell(Table::percent(Rate(Hard)))
        .cell(Trap(Hard));
  }
  std::printf("%s", Loop.render().c_str());
  return 0;
}
