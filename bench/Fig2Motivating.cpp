//===- bench/Fig2Motivating.cpp - Reproduces paper Figs. 1 and 2 ----------===//
///
/// \file
/// Prints the motivating example's abstract bit values and fault-site
/// classification (the content of Fig. 2), and the headline numbers of
/// Section III: 288 vs 225 fault-injection runs (21.8 % saved) and
/// 681 vs 576 live fault sites after rescheduling (15.4 % reduction).
///
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "ir/AsmParser.h"
#include "sched/ListScheduler.h"
#include "sim/Interpreter.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace bec;

static const char *MotivatingAsm = R"(
.width 4
main:
  li   a0, 0
  li   a1, 7
loop:
  andi a2, a1, 1
  andi a3, a1, 3
  addi a1, a1, -1
  seqz a2, a2
  snez a3, a3
  and  a2, a2, a3
  add  a0, a0, a2
  bnez a1, loop
  ret
)";

int main() {
  Program Prog = parseAsmOrDie(MotivatingAsm, "motivating");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);

  std::printf("Fig. 2: motivating example (4-bit architecture)\n\n");
  std::printf("abstract bit values k(p,v) and probed fault sites per "
              "access point:\n\n");
  Table T({"p", "instruction", "reg", "k(p,v)", "live after", "masked bits",
           "probes (bit-level)"});
  const FaultSpace &FS = A.space();
  for (uint32_t P = 0; P < Prog.size(); ++P) {
    auto [Begin, End] = FS.pointsOfInstr(P);
    for (uint32_t Ap = Begin; Ap < End; ++Ap) {
      Reg V = FS.point(Ap).R;
      const auto &S = A.summary(Ap);
      T.row()
          .cell("p" + std::to_string(P))
          .cell(Prog.instr(P).toString())
          .cell(std::string(regName(V)))
          .cell(A.bitValues().after(P, V).toString())
          .cell(S.LiveAfter ? "yes" : "no")
          .cell(static_cast<uint64_t>(popCount(S.MaskedMask, Prog.Width)))
          .cell(static_cast<uint64_t>(S.NumProbes));
    }
  }
  std::printf("%s\n", T.render().c_str());

  FaultInjectionCounts C = countFaultInjectionRuns(A, Golden.Executed);
  uint64_t Vuln = computeVulnerability(A, Golden.Executed);
  std::printf("fault-injection runs, value-level analysis: %llu (paper: "
              "288)\n",
              static_cast<unsigned long long>(C.ValueLevelRuns));
  std::printf("fault-injection runs, BEC bit-level:        %llu (paper: "
              "225)\n",
              static_cast<unsigned long long>(C.BitLevelRuns));
  std::printf("runs saved: %s (paper: 21.8%%)\n",
              Table::percent(C.prunedFraction()).c_str());
  std::printf("live fault sites (original schedule): %llu (paper: 681)\n",
              static_cast<unsigned long long>(Vuln));

  Program Best = scheduleProgram(A, SchedulePolicy::BestReliability);
  BECAnalysis AB = BECAnalysis::run(Best);
  Trace TB = simulate(Best);
  uint64_t VulnBest = computeVulnerability(AB, TB.Executed);
  std::printf("live fault sites (vulnerability-aware schedule): %llu "
              "(paper's hand schedule: 576)\n",
              static_cast<unsigned long long>(VulnBest));
  std::printf("reduction: %s (paper: 15.4%%)\n",
              Table::percent(1.0 - static_cast<double>(VulnBest) /
                                       static_cast<double>(Vuln))
                  .c_str());
  return 0;
}
