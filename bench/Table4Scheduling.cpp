//===- bench/Table4Scheduling.cpp - Reproduces paper Table IV -------------===//
///
/// \file
/// "Changes in the reliability against soft errors from bit-level
/// vulnerability-aware instruction scheduling": for each benchmark the
/// total fault space and the vulnerability (live fault sites over the
/// trace) under the best- and worst-reliability scheduling policies.
/// Output equivalence with the original program is asserted for both.
///
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "sched/ListScheduler.h"
#include "sim/Interpreter.h"
#include "support/Debug.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace bec;

static uint64_t vulnerabilityOf(const Program &Prog, const Trace &Golden) {
  BECAnalysis A = BECAnalysis::run(Prog);
  return computeVulnerability(A, Golden.Executed);
}

int main() {
  std::printf("Table IV: bit-level vulnerability-aware instruction "
              "scheduling\n");
  std::printf("(paper: up to 13.11%% improvement, 4.94%% on average; CRC32 "
              "and bitcount improve most)\n\n");
  Table T({"benchmark", "Total fault space", "Best reliability",
           "Worst reliability", "Worst/Best"});
  double Sum = 0;
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);

    Program Best = scheduleProgram(A, SchedulePolicy::BestReliability);
    Program Worst = scheduleProgram(A, SchedulePolicy::WorstReliability);
    Trace TB = simulate(Best), TW = simulate(Worst);
    if (TB.ObservableHash != Golden.ObservableHash ||
        TW.ObservableHash != Golden.ObservableHash)
      reportFatalError("scheduling changed observable behaviour");

    uint64_t VB = vulnerabilityOf(Best, TB);
    uint64_t VW = vulnerabilityOf(Worst, TW);
    uint64_t Space = TB.Cycles * NumRegs * Prog.Width;
    double Ratio = static_cast<double>(VW) / static_cast<double>(VB);
    T.row()
        .cell(W.Name)
        .cell(Space)
        .cell(VB)
        .cell(VW)
        .cell(Table::percent(Ratio));
    Sum += Ratio - 1.0;
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("average worst-to-best reliability headroom: +%s\n",
              Table::percent(Sum / allWorkloads().size()).c_str());
  return 0;
}
