//===- bench/Table1Exhaustive.cpp - Reproduces paper Table I --------------===//
///
/// \file
/// "Time and disk space requirements for the exhaustive fault injection
/// campaign": runs a truly exhaustive campaign (every bit of the register
/// file at every cycle) over a window of each benchmark's trace, measures
/// wall-clock time and the archive size of distinguishable traces, and
/// extrapolates to the full trace. The paper's point -- exhaustive
/// injection is brutally expensive and scales with trace length x register
/// file size -- is reproduced in shape; our simulator and scaled inputs
/// make the absolute numbers seconds instead of hours.
///
//===----------------------------------------------------------------------===//

#include "fi/Campaign.h"
#include "sim/Interpreter.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace bec;

int main() {
  // The paper's Table I covers the five benchmarks where the exhaustive
  // baseline was tractable.
  const char *Names[] = {"bitcount", "AES", "CRC32", "SHA", "RSA"};
  constexpr uint64_t WindowCycles = 64;

  std::printf("Table I: exhaustive fault-injection campaign cost\n");
  std::printf("(window of %llu cycles x 32 regs x 32 bits, then "
              "extrapolated to the full trace)\n\n",
              static_cast<unsigned long long>(WindowCycles));
  Table T({"benchmark", "trace cycles", "window runs", "time",
           "distinct traces", "archive", "full-campaign est."});
  for (const char *Name : Names) {
    const Workload *W = findWorkload(Name);
    Program Prog = loadWorkload(*W);
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);
    std::vector<PlannedRun> Plan =
        planCampaign(A, Golden, PlanKind::Exhaustive, WindowCycles);
    CampaignResult R = runCampaign(Prog, Golden, std::move(Plan));

    // The cost of one run is the trace suffix after its injection cycle;
    // extrapolate the measured per-instruction cost to the full campaign
    // (sum over all cycles c of 1024 x (N - c) executed instructions).
    double WindowInstrs = 0;
    for (uint64_t C = 0; C < WindowCycles && C < Golden.Cycles; ++C)
      WindowInstrs += static_cast<double>(Golden.Cycles - C);
    double FullInstrs = static_cast<double>(Golden.Cycles) *
                        static_cast<double>(Golden.Cycles + 1) / 2.0;
    double FullSeconds = R.Seconds * (FullInstrs / WindowInstrs);
    double FullBytes = static_cast<double>(R.ArchiveBytes) *
                       (static_cast<double>(Golden.Cycles) / WindowCycles);

    char TimeBuf[32], EstBuf[64];
    std::snprintf(TimeBuf, sizeof(TimeBuf), "%.2f s", R.Seconds);
    std::snprintf(EstBuf, sizeof(EstBuf), "%.1f s / ~%.1f MB", FullSeconds,
                  FullBytes / 1e6);
    T.row()
        .cell(W->Name)
        .cell(Golden.Cycles)
        .cell(R.Runs)
        .cell(std::string(TimeBuf))
        .cell(R.DistinctTraces)
        .cell(Table::withSeparators(R.ArchiveBytes) + " B")
        .cell(std::string(EstBuf));
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("(paper, authors' testbed: bitcount 0.5h/1GB ... RSA "
              "50h/700GB; ordering by cost is the reproduced shape)\n");
  return 0;
}
