//===- bench/ServeLoad.cpp - becd throughput / latency load generator -----===//
///
/// \file
/// Load-generates a real becd server (in-process, ephemeral port, TCP
/// loopback) at 1 / 4 / 16 concurrent clients and measures per-request
/// latency (mean, p50, p99) and throughput for two request mixes:
///
///   * cold — every request analyzes a program the server has never seen
///     (a freshly generated loop kernel interned via `intern`, then
///     `analyze`d): the full verify + trace + BEC pipeline runs on the
///     shared pool with zero reuse.
///   * warm — requests analyze the bundled workloads, which some client
///     has already analyzed: the server answers from the shared
///     content-addressed session cache, so every request is a
///     cross-client warm hit paying only wire + routing cost.
///
/// The server under load is the net/ event-loop engine (what `bec serve`
/// runs by default). Three claims are asserted:
///
///   * warm requests are >= 5x faster than cold ones (the shared session
///     pool turns repeat traffic into cache traffic);
///   * cold throughput *scales* with clients: on a machine with >= 8
///     cores, 16 cold clients must clear >= 3x the single-client
///     throughput (the event loop + worker pool runs independent
///     analyses concurrently). On smaller machines only a no-collapse
///     bound is enforced — cold analyses are CPU-bound, so a 1-core
///     container cannot scale them no matter the architecture — and the
///     core count is recorded in the JSON;
///   * a 1000-connection soak (mostly-idle sockets, then a burst of one
///     request each) completes with zero dropped or garbled frames:
///     connection count is decoupled from thread count.
///
/// Emits BENCH_serve.json (path = argv[1], default ./BENCH_serve.json)
/// next to the session bench's BENCH_session.json.
///
//===----------------------------------------------------------------------===//

#include "net/EventLoop.h"
#include "serve/Client.h"
#include "serve/Service.h"
#include "serve/Socket.h"

#include "api/Api.h"
#include "support/Debug.h"
#include "support/Json.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace bec;
using namespace bec::serve;

namespace {

constexpr unsigned Levels[] = {1, 4, 16};
constexpr unsigned ColdOpsPerClient = 6;
constexpr unsigned WarmOpsPerClient = 24;

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A unique analysis-worthy kernel per seed: ~1500 iterations of a mixing
/// loop, so a cold request pays a realistic trace + BEC cost and every
/// seed yields distinct program content.
std::string coldAsm(unsigned Seed) {
  char Buf[512];
  std::snprintf(Buf, sizeof Buf, R"(main:
  li   s0, %u
  li   s1, 0
  li   s2, 1500
loop:
  andi t0, s0, 1
  add  s1, s1, t0
  slli t1, s0, 1
  srli t2, s0, 3
  xor  s0, t1, t2
  xori s0, s0, %u
  addi s2, s2, -1
  bnez s2, loop
  out  s1
  ret
)",
                (Seed * 2654435761u) % 100000, Seed % 64 + 1);
  return Buf;
}

std::string jsonString(std::string_view S) {
  JsonWriter W;
  W.value(S);
  return W.take();
}

struct LatencyStats {
  size_t Ops = 0;
  double Seconds = 0; ///< Wall time of the whole phase.
  double MeanUs = 0, P50Us = 0, P99Us = 0;

  static LatencyStats of(std::vector<double> &LatenciesUs, double WallS) {
    LatencyStats St;
    St.Ops = LatenciesUs.size();
    St.Seconds = WallS;
    if (LatenciesUs.empty())
      return St;
    std::sort(LatenciesUs.begin(), LatenciesUs.end());
    double Sum = 0;
    for (double L : LatenciesUs)
      Sum += L;
    St.MeanUs = Sum / double(St.Ops);
    auto Pct = [&](double P) {
      size_t Idx = size_t(P * double(St.Ops - 1) + 0.5);
      return LatenciesUs[std::min(Idx, St.Ops - 1)];
    };
    St.P50Us = Pct(0.50);
    St.P99Us = Pct(0.99);
    return St;
  }

  double throughput() const { return Seconds > 0 ? Ops / Seconds : 0; }
};

struct LevelResult {
  unsigned Clients = 0;
  LatencyStats Cold, Warm;
};

std::atomic<unsigned> NextSeed{1};

/// One client's cold ops: intern a unique kernel, then analyze it. The
/// latency of one "op" covers both round-trips (what a real consumer
/// submitting new code pays).
void coldClient(uint16_t Port, unsigned Ops, std::vector<double> &Out) {
  std::string Err;
  std::optional<Client> C = Client::connect("127.0.0.1", Port, Err);
  if (!C)
    reportFatalError("bench client connect failed");
  for (unsigned I = 0; I < Ops; ++I) {
    unsigned Seed = NextSeed.fetch_add(1);
    std::string Name = "cold-" + std::to_string(Seed) + ".s";
    std::string Params = "{\"name\":" + jsonString(Name) +
                         ",\"asm\":" + jsonString(coldAsm(Seed)) + "}";
    std::string Analyze =
        "{\"targets\":[" + jsonString(Name) + "],\"format\":\"json\"}";
    double T0 = nowSeconds();
    Reply R1 = C->call("intern", Params);
    Reply R2 = C->call("analyze", Analyze);
    double T1 = nowSeconds();
    if (!R1.Ok || !R2.Ok)
      reportFatalError("cold request failed");
    Out.push_back((T1 - T0) * 1e6);
  }
}

/// One client's warm ops: analyze bundled workloads round-robin (all
/// pre-warmed, so every request is a cross-client cache hit).
void warmClient(uint16_t Port, unsigned Ops, unsigned Stagger,
                std::vector<double> &Out) {
  std::string Err;
  std::optional<Client> C = Client::connect("127.0.0.1", Port, Err);
  if (!C)
    reportFatalError("bench client connect failed");
  const std::vector<Workload> &All = allWorkloads();
  for (unsigned I = 0; I < Ops; ++I) {
    const Workload &W = All[(I + Stagger) % All.size()];
    std::string Analyze =
        "{\"targets\":[" + jsonString(W.Name) + "],\"format\":\"json\"}";
    double T0 = nowSeconds();
    Reply R = C->call("analyze", Analyze);
    double T1 = nowSeconds();
    if (!R.Ok)
      reportFatalError("warm request failed");
    Out.push_back((T1 - T0) * 1e6);
  }
}

/// The 1000-connection soak: open \p Count connections, leave them idle,
/// then burst one `version` request through every one and account for
/// every response byte. Returns false (with counts in \p Dropped /
/// \p Garbled) when any frame was lost or corrupted.
bool soak(uint16_t Port, unsigned Count, unsigned &Dropped,
          unsigned &Garbled) {
  Dropped = Garbled = 0;
  std::vector<serve::Socket> Conns;
  Conns.reserve(Count);
  std::string Err;
  for (unsigned I = 0; I < Count; ++I) {
    std::optional<serve::Socket> S = serve::connectTo("127.0.0.1", Port, Err);
    if (!S) {
      ++Dropped;
      continue;
    }
    std::string Line;
    if (S->recvLine(Line, MaxFrameBytes, Err) !=
        serve::Socket::RecvStatus::Line) {
      ++Dropped;
      continue;
    }
    Conns.push_back(std::move(*S));
  }
  // Idle: the loop must carry them all without spending a thread each.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  for (size_t I = 0; I < Conns.size(); ++I)
    if (!Conns[I].sendAll(makeRequestFrame(uint64_t(I + 1), "version", ""),
                          Err))
      ++Dropped;
  for (size_t I = 0; I < Conns.size(); ++I) {
    std::string Line;
    if (Conns[I].recvLine(Line, MaxFrameBytes, Err) !=
        serve::Socket::RecvStatus::Line) {
      ++Dropped;
      continue;
    }
    std::optional<Response> R = parseResponseFrame(Line, Err);
    if (!R || R->IsError || R->Id != uint64_t(I + 1))
      ++Garbled;
  }
  return Dropped == 0 && Garbled == 0;
}

template <class Fn>
LatencyStats runPhase(unsigned Clients, Fn &&Body) {
  std::vector<std::vector<double>> PerClient(Clients);
  std::vector<std::thread> Threads;
  double T0 = nowSeconds();
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back(
        [&, C] { Body(C, PerClient[C]); });
  for (std::thread &T : Threads)
    T.join();
  double Wall = nowSeconds() - T0;
  std::vector<double> All;
  for (std::vector<double> &L : PerClient)
    All.insert(All.end(), L.begin(), L.end());
  return LatencyStats::of(All, Wall);
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_serve.json";
  std::printf("becd load generator: cold (new program per request) vs. warm "
              "(cross-client cache hits) over TCP loopback\n\n");

  Service Svc;
  net::EventServer::Options EO;
  EO.Port = 0;
  EO.Workers = 0; // One per core: cold analyses are CPU-bound.
  // The soak bursts one request per connection at once; size the admission
  // queue so backpressure (a correctness feature, benched elsewhere) does
  // not turn the burst into typed 105 rejections.
  EO.QueueDepth = 2048;
  net::EventServer Srv(
      [&Svc](std::string_view Line, const net::FrameSink &Sink) {
        return Svc.handleFrameStreaming(Line, Sink);
      },
      Svc.handshakeFrame(), EO);
  Srv.setDrainCheck([&Svc] { return Svc.isShuttingDown(); });
  std::string Err;
  if (!Srv.start(Err)) {
    std::fprintf(stderr, "server start failed: %s\n", Err.c_str());
    return 1;
  }
  std::thread ServerThread([&] { Srv.run(); });
  uint16_t Port = Srv.port();

  // Pre-warm every bundled workload once so each warm-phase request is a
  // cross-client hit (the first client to touch a workload would
  // otherwise absorb one compute into its latency sample).
  {
    std::optional<Client> C = Client::connect("127.0.0.1", Port, Err);
    if (!C)
      reportFatalError("warm-up connect failed");
    Reply R = C->call("analyze", "{\"format\":\"json\"}");
    if (!R.Ok)
      reportFatalError("warm-up analyze failed");
  }

  std::vector<LevelResult> Results;
  for (unsigned Clients : Levels) {
    LevelResult L;
    L.Clients = Clients;
    L.Cold = runPhase(Clients, [&](unsigned, std::vector<double> &Out) {
      coldClient(Port, ColdOpsPerClient, Out);
    });
    L.Warm = runPhase(Clients, [&](unsigned C, std::vector<double> &Out) {
      warmClient(Port, WarmOpsPerClient, C, Out);
    });
    Results.push_back(L);
  }

  // The soak: 1000 mostly-idle connections plus a burst, every frame
  // accounted for.
  const unsigned SoakConns = 1000;
  unsigned Dropped = 0, Garbled = 0;
  bool SoakOk = soak(Port, SoakConns, Dropped, Garbled);
  std::printf("soak: %u connections, %u dropped, %u garbled\n\n", SoakConns,
              Dropped, Garbled);
  if (!SoakOk)
    reportFatalError("soak dropped or garbled frames");

  // Shut the server down through the protocol (exercising the drain).
  {
    std::optional<Client> C = Client::connect("127.0.0.1", Port, Err);
    if (C)
      C->call("shutdown");
  }
  ServerThread.join();

  Table Tbl({"clients", "mix", "ops", "thrpt (op/s)", "mean", "p50", "p99"});
  auto Row = [&](unsigned Clients, const char *Mix, const LatencyStats &St) {
    char B[4][32];
    std::snprintf(B[0], 32, "%.0f", St.throughput());
    std::snprintf(B[1], 32, "%.0f us", St.MeanUs);
    std::snprintf(B[2], 32, "%.0f us", St.P50Us);
    std::snprintf(B[3], 32, "%.0f us", St.P99Us);
    Tbl.row()
        .cell(uint64_t(Clients))
        .cell(Mix)
        .cell(uint64_t(St.Ops))
        .cell(std::string(B[0]))
        .cell(std::string(B[1]))
        .cell(std::string(B[2]))
        .cell(std::string(B[3]));
  };
  double ColdMeanSum = 0, WarmMeanSum = 0;
  for (const LevelResult &L : Results) {
    Row(L.Clients, "cold", L.Cold);
    Row(L.Clients, "warm", L.Warm);
    ColdMeanSum += L.Cold.MeanUs;
    WarmMeanSum += L.Warm.MeanUs;
  }
  std::printf("%s\n", Tbl.render().c_str());

  double Speedup = WarmMeanSum > 0 ? ColdMeanSum / WarmMeanSum : 0;
  std::printf("aggregate warm speedup over cold: %.1fx (mean latency, all "
              "levels)\n",
              Speedup);
  // The subsystem's contract: shared-pool warm hits are at least 5x
  // cheaper than cold analyses. Fail loudly if caching ever degrades.
  if (Speedup < 5.0)
    reportFatalError("warm requests are less than 5x faster than cold");

  // Cold scaling: 16 clients vs 1. Cold analyses are CPU-bound, so the
  // achievable scaling is bounded by the core count — require the 3x
  // only where the hardware can deliver it, and a no-collapse bound
  // (concurrency must never make aggregate throughput worse) elsewhere.
  unsigned Cores = std::thread::hardware_concurrency();
  double Cold1 = Results.front().Cold.throughput();
  double Cold16 = Results.back().Cold.throughput();
  double ColdScaling = Cold1 > 0 ? Cold16 / Cold1 : 0;
  std::printf("cold scaling 16-vs-1 clients: %.2fx on %u cores\n",
              ColdScaling, Cores);
  if (Cores >= 8) {
    if (ColdScaling < 3.0)
      reportFatalError("16 cold clients are not >= 3x one client");
  } else if (ColdScaling < 0.6) {
    reportFatalError("cold throughput collapsed under concurrency");
  }

  JsonWriter J;
  J.beginObject();
  J.key("bench").value("ServeLoad");
  J.key("api_version").value(BEC_API_VERSION_STRING);
  J.key("protocol").value(int64_t(ProtocolVersion));
  J.key("engine").value("loop");
  J.key("cores").value(uint64_t(Cores));
  J.key("cold_ops_per_client").value(uint64_t(ColdOpsPerClient));
  J.key("warm_ops_per_client").value(uint64_t(WarmOpsPerClient));
  J.key("levels").beginArray();
  for (const LevelResult &L : Results) {
    J.beginObject();
    J.key("clients").value(uint64_t(L.Clients));
    for (const char *Mix : {"cold", "warm"}) {
      const LatencyStats &St = Mix == std::string("cold") ? L.Cold : L.Warm;
      J.key(Mix).beginObject();
      J.key("ops").value(uint64_t(St.Ops));
      J.key("seconds").value(St.Seconds);
      J.key("throughput_ops_s").value(St.throughput());
      J.key("mean_us").value(St.MeanUs);
      J.key("p50_us").value(St.P50Us);
      J.key("p99_us").value(St.P99Us);
      J.endObject();
    }
    J.key("warm_speedup_mean").value(
        L.Warm.MeanUs > 0 ? L.Cold.MeanUs / L.Warm.MeanUs : 0.0);
    J.endObject();
  }
  J.endArray();
  J.key("aggregate").beginObject();
  J.key("warm_speedup_mean").value(Speedup);
  J.key("cold_scaling_16_vs_1").value(ColdScaling);
  J.endObject();
  J.key("soak").beginObject();
  J.key("connections").value(uint64_t(SoakConns));
  J.key("dropped").value(uint64_t(Dropped));
  J.key("garbled").value(uint64_t(Garbled));
  J.endObject();
  J.endObject();

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath);
    return 1;
  }
  Out << J.take() << "\n";
  std::printf("wrote %s\n", OutPath);
  return 0;
}
