//===- bench/Fig3Lattice.cpp - Reproduces paper Fig. 3 ---------------------===//
///
/// \file
/// Prints the bit-value lattice's meet operator (Fig. 3b) and abstract
/// bit-wise and (Fig. 3c), generated from the implementation so any drift
/// between code and paper is visible.
///
//===----------------------------------------------------------------------===//

#include "analysis/KnownBits.h"
#include "support/Table.h"

#include <cstdio>

using namespace bec;

static const char *name(BitValue V) {
  switch (V) {
  case BitValue::Bottom:
    return "_|_";
  case BitValue::Zero:
    return "0";
  case BitValue::One:
    return "1";
  case BitValue::Top:
    return "T";
  }
  return "?";
}

int main() {
  const BitValue All[4] = {BitValue::Bottom, BitValue::Zero, BitValue::One,
                           BitValue::Top};

  std::printf("Fig. 3a: lattice  _|_  <  {0, 1}  <  T\n\n");

  std::printf("Fig. 3b: meet operator\n");
  Table Meet({"meet", "_|_", "0", "1", "T"});
  for (BitValue A : All) {
    Meet.row().cell(name(A));
    for (BitValue B : All)
      Meet.cell(name(meetBits(A, B)));
  }
  std::printf("%s\n", Meet.render().c_str());

  std::printf("Fig. 3c: abstract bit-wise and (paper's table, verbatim)\n");
  Table And({"and", "_|_", "0", "1", "T"});
  for (BitValue A : All) {
    And.row().cell(name(A));
    for (BitValue B : All)
      And.cell(name(fig3And(A, B)));
  }
  std::printf("%s\n", And.render().c_str());

  std::printf("normalized abstract and over full words (as used by the "
              "analysis):\n");
  KnownBits X = KnownBits::constant(0b1100, 4);
  KnownBits Y = KnownBits::top(4);
  std::printf("  and(%s, %s) = %s\n", X.toString().c_str(),
              Y.toString().c_str(), KnownBits::and_(X, Y).toString().c_str());
  return 0;
}
