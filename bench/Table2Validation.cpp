//===- bench/Table2Validation.cpp - Reproduces paper Table II + Section V -===//
///
/// \file
/// Empirical validation of the analysis against fault-injection ground
/// truth: every register bit of every dynamic segment in a window of each
/// benchmark's trace is injected, and trace equality is compared with the
/// static equivalence classes. The paper's soundness claim is "no unsound
/// case was observed"; this harness fails loudly if one appears.
///
//===----------------------------------------------------------------------===//

#include "fi/Validation.h"
#include "sim/Interpreter.h"
#include "support/Debug.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace bec;

int main() {
  // Window sizes keep each campaign around a second; validation coverage
  // still spans every instruction of every benchmark's steady state.
  constexpr uint64_t WindowCycles = 260;

  std::printf("Table II: classification of trace comparisons\n");
  std::printf("(sound+precise / sound+imprecise / unsound; the analysis "
              "must produce zero unsound pairs)\n\n");
  Table T({"benchmark", "runs", "segments", "sound precise",
           "sound imprecise", "unsound", "masked ok", "masked bad",
           "cross ok", "cross bad"});
  bool AllSound = true;
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);
    ValidationResult R = validateAnalysis(A, Golden, WindowCycles);
    T.row()
        .cell(W.Name)
        .cell(R.RunsExecuted)
        .cell(R.SegmentsChecked)
        .cell(R.SoundPrecisePairs)
        .cell(R.SoundImprecisePairs)
        .cell(R.UnsoundPairs)
        .cell(R.MaskedChecked - R.MaskedViolations)
        .cell(R.MaskedViolations)
        .cell(R.CrossChecked - R.CrossViolations)
        .cell(R.CrossViolations);
    AllSound = AllSound && R.sound();
  }
  std::printf("%s\n", T.render().c_str());
  if (!AllSound)
    reportFatalError("validation found an unsound classification");
  std::printf("verdict: no unsound classification observed (matches the "
              "paper's Section V)\n");
  return 0;
}
