//===- bench/CampaignScale.cpp - Campaign engine scaling benchmark --------===//
///
/// \file
/// Measures the three levers the campaign engine offers over the naive
/// exhaustive baseline, on a fixed golden-trace window so the exhaustive
/// mode stays tractable:
///
///   * exhaustive — every bit of the register file at every window cycle
///     (the Table I baseline);
///   * pruned     — the BEC bit-level plan over the same window: one run
///     per non-masked equivalence class per dynamic segment;
///   * sampled    — a stratified 2048-run sample of the exhaustive
///     window with Wilson confidence intervals.
///
/// Each mode runs at 1 / 4 / 16 engine threads through the work-stealing
/// scheduler. Two invariants are asserted, matching the acceptance bar of
/// the engine:
///
///   * equal verdicts: every run the pruned plan keeps classifies
///     identically to the exhaustive run at the same (cycle, reg, bit)
///     site — pruning changes cost, never outcomes;
///   * pruned is >= 5x faster than exhaustive at equal thread count.
///
/// Emits BENCH_campaign.json (path = argv[1], default ./BENCH_campaign
/// .json) next to BENCH_session.json and BENCH_serve.json.
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "fi/Engine.h"
#include "support/Debug.h"
#include "support/Json.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace bec;

namespace {

constexpr const char *Names[] = {"bitcount", "CRC32"};
constexpr uint64_t WindowCycles = 64;
constexpr uint64_t SampleRuns = 2048;
constexpr uint64_t SampleSeed = 42;
constexpr unsigned ThreadLevels[] = {1, 4, 16};

struct ModeRun {
  std::string Mode;
  unsigned Threads = 0;
  uint64_t Runs = 0;
  double Seconds = 0;
  double SpeedupVsExhaustive = 0; ///< Same thread count.
};

uint64_t siteKey(const PlannedRun &R) {
  return (R.AfterCycle << 16) | (uint64_t(R.R) << 8) | R.Bit;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_campaign.json";
  std::printf("campaign engine scaling: exhaustive vs. BEC-pruned vs. "
              "sampled over a %llu-cycle window, 1/4/16 threads\n\n",
              (unsigned long long)WindowCycles);

  AnalysisSession S;
  Table Tbl({"workload", "mode", "threads", "runs", "seconds", "runs/s",
             "vs exhaustive"});
  JsonWriter J;
  J.beginObject();
  J.key("bench").value("CampaignScale");
  J.key("api_version").value(BEC_API_VERSION_STRING);
  J.key("window_cycles").value(WindowCycles);
  J.key("sample_runs").value(SampleRuns);
  J.key("workloads").beginArray();

  double WorstPrunedSpeedup1T = 1e100;
  bool VerdictsEqual = true;
  // Engine scaling profile of the first workload's pruned plan at the
  // top thread level (ROADMAP open item 1: why is scaling flat?).
  std::string ProfileJson;
  std::string ProfileDiagnosis;

  for (const char *Name : Names) {
    auto T = S.addWorkload(Name);
    if (!T)
      reportFatalError("unknown benchmark workload");
    std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(*T);
    std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(*T);
    const Program &Prog = S.program(*T);

    // The three plans. The pruned window is one cycle shorter because
    // segment plans inject *after* the accessing cycle: every pruned
    // site then has an exhaustive twin for the verdict comparison.
    PlanOptions ExhaustiveOpts;
    ExhaustiveOpts.Kind = PlanKind::Exhaustive;
    ExhaustiveOpts.MaxCycles = WindowCycles;
    PlanOptions PrunedOpts;
    PrunedOpts.Kind = PlanKind::BitLevel;
    PrunedOpts.MaxCycles = WindowCycles - 1;
    PlanOptions SampledOpts = ExhaustiveOpts;
    SampledOpts.SampleSize = SampleRuns;
    SampledOpts.SampleSeed = SampleSeed;

    struct Mode {
      const char *Label;
      CampaignPlan Plan;
    } Modes[] = {
        {"exhaustive", CampaignPlan::build(*A, *Golden, ExhaustiveOpts)},
        {"pruned", CampaignPlan::build(*A, *Golden, PrunedOpts)},
        {"sampled", CampaignPlan::build(*A, *Golden, SampledOpts)},
    };

    std::vector<ModeRun> Results;
    std::map<unsigned, double> ExhaustiveSeconds;
    std::map<uint64_t, FaultEffect> ExhaustiveVerdicts;

    for (const Mode &M : Modes) {
      for (unsigned Threads : ThreadLevels) {
        CampaignExecOptions Exec;
        Exec.Threads = Threads;
        CampaignResult R = runCampaign(Prog, *Golden, M.Plan, Exec);
        if (!R.Error.empty())
          reportFatalError("campaign engine failed");

        ModeRun MR;
        MR.Mode = M.Label;
        MR.Threads = Threads;
        MR.Runs = R.Runs;
        MR.Seconds = R.Seconds;
        if (M.Label == std::string("exhaustive")) {
          ExhaustiveSeconds[Threads] = R.Seconds;
          MR.SpeedupVsExhaustive = 1.0;
          if (Threads == 1)
            for (size_t I = 0; I < M.Plan.runs().size(); ++I)
              ExhaustiveVerdicts[siteKey(M.Plan.runs()[I])] = R.Effects[I];
        } else {
          MR.SpeedupVsExhaustive =
              R.Seconds > 0 ? ExhaustiveSeconds[Threads] / R.Seconds : 0;
        }
        if (M.Label == std::string("pruned")) {
          if (Threads == 1 && MR.SpeedupVsExhaustive < WorstPrunedSpeedup1T)
            WorstPrunedSpeedup1T = MR.SpeedupVsExhaustive;
          // Equal verdicts: a kept representative classifies exactly as
          // the exhaustive run at the same fault site did.
          for (size_t I = 0; I < M.Plan.runs().size(); ++I) {
            auto It = ExhaustiveVerdicts.find(siteKey(M.Plan.runs()[I]));
            if (It == ExhaustiveVerdicts.end() ||
                It->second != R.Effects[I]) {
              VerdictsEqual = false;
              break;
            }
          }
        }

        char Sec[32], Thr[32], Speed[32];
        std::snprintf(Sec, sizeof Sec, "%.3f", MR.Seconds);
        std::snprintf(Thr, sizeof Thr, "%.0f",
                      MR.Seconds > 0 ? double(MR.Runs) / MR.Seconds : 0);
        std::snprintf(Speed, sizeof Speed, "%.1fx", MR.SpeedupVsExhaustive);
        Tbl.row()
            .cell(Name)
            .cell(MR.Mode)
            .cell(uint64_t(MR.Threads))
            .cell(MR.Runs)
            .cell(std::string(Sec))
            .cell(std::string(Thr))
            .cell(std::string(Speed));
        Results.push_back(MR);
      }
    }

    if (Name == std::string(Names[0])) {
      // One extra profiled run (its own cache-free engine invocation, so
      // the timing rows above stay unperturbed): per-worker wall time
      // split into run / snapshot-rebuild / steal / idle, plus the
      // bottleneck verdict. CollectProfile never changes the verdicts.
      CampaignExecOptions Exec;
      Exec.Threads = ThreadLevels[2];
      Exec.CollectProfile = true;
      CampaignResult R = runCampaign(Prog, *Golden, Modes[1].Plan, Exec);
      if (R.Error.empty()) {
        ProfileJson = renderCampaignProfileJson(R.Profile);
        ProfileDiagnosis = diagnoseCampaignScaling(R.Profile).Verdict;
      }
    }

    J.beginObject();
    J.key("name").value(Name);
    J.key("trace_cycles").value(Golden->Cycles);
    J.key("modes").beginArray();
    for (const ModeRun &MR : Results) {
      J.beginObject();
      J.key("mode").value(MR.Mode);
      J.key("threads").value(uint64_t(MR.Threads));
      J.key("runs").value(MR.Runs);
      J.key("seconds").value(MR.Seconds);
      J.key("throughput_runs_s")
          .value(MR.Seconds > 0 ? double(MR.Runs) / MR.Seconds : 0.0);
      J.key("speedup_vs_exhaustive").value(MR.SpeedupVsExhaustive);
      J.endObject();
    }
    J.endArray();
    J.endObject();
  }

  std::printf("%s\n", Tbl.render().c_str());
  std::printf("pruned verdicts equal exhaustive at every kept site: %s\n",
              VerdictsEqual ? "yes" : "NO");
  std::printf("worst pruned-vs-exhaustive speedup at 1 thread: %.1fx\n",
              WorstPrunedSpeedup1T);
  if (!ProfileDiagnosis.empty())
    std::printf("scaling diagnosis (%s, pruned, %u threads): %s\n", Names[0],
                ThreadLevels[2], ProfileDiagnosis.c_str());

  // The engine's contract (ISSUE 5 acceptance): pruning must buy at
  // least 5x at equal verdicts. Fail loudly if either ever regresses.
  if (!VerdictsEqual)
    reportFatalError("pruned campaign verdicts diverge from exhaustive");
  if (WorstPrunedSpeedup1T < 5.0)
    reportFatalError("pruned campaign is less than 5x faster than "
                     "exhaustive");

  J.endArray();
  J.key("asserts").beginObject();
  J.key("verdicts_equal").value(VerdictsEqual);
  J.key("worst_pruned_speedup_1t").value(WorstPrunedSpeedup1T);
  J.endObject();
  J.endObject();

  std::string Doc = J.take();
  if (!ProfileJson.empty()) {
    // Splice the pre-rendered profile as one more top-level member
    // (JsonWriter cannot embed raw JSON).
    Doc.pop_back();
    Doc += ",\"scaling_profile\":";
    Doc += ProfileJson;
    Doc += '}';
  }

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath);
    return 1;
  }
  Out << Doc << "\n";
  std::printf("wrote %s\n", OutPath);
  return 0;
}
