//===- bench/CampaignScale.cpp - Campaign engine scaling benchmark --------===//
///
/// \file
/// Measures the levers the campaign engine offers over the naive
/// exhaustive baseline, on a fixed golden-trace window so the exhaustive
/// mode stays tractable:
///
///   * exhaustive — every bit of the register file at every window cycle
///     (the Table I baseline);
///   * pruned     — the BEC bit-level plan over the same window: one run
///     per non-masked equivalence class per dynamic segment;
///   * sampled    — a stratified 2048-run sample of the exhaustive
///     window with Wilson confidence intervals;
///
/// each with prefix checkpointing off (the from-zero suffix replay the
/// engine shipped with) and — for exhaustive and pruned — on (fork every
/// run from a golden snapshot and splice memoized suffixes).
///
/// Each mode runs at 1 / 4 / 16 engine threads through the work-stealing
/// scheduler. Invariants asserted, matching the engine's acceptance bars:
///
///   * equal verdicts: every run the pruned plan keeps classifies
///     identically to the exhaustive run at the same (cycle, reg, bit)
///     site — pruning changes cost, never outcomes;
///   * pruned is >= 5x faster than exhaustive at equal thread count
///     (both with checkpointing off: the plan-level win on its own);
///   * prefix checkpointing changes no result byte, and buys >= 5x
///     wall clock on the single-thread exhaustive campaign;
///   * on hosts with >= 8 cores, 16 threads are >= 6x faster than one
///     on the pruned plan (skipped elsewhere: a scaling assert on an
///     oversubscribed host measures the scheduler, not the engine).
///
/// Emits BENCH_campaign.json (path = argv[1], default ./BENCH_campaign
/// .json) next to BENCH_session.json and BENCH_serve.json.
///
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "fi/Engine.h"
#include "support/Debug.h"
#include "support/Json.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace bec;

namespace {

constexpr const char *Names[] = {"bitcount", "CRC32"};
constexpr uint64_t WindowCycles = 64;
constexpr uint64_t SampleRuns = 2048;
constexpr uint64_t SampleSeed = 42;
constexpr unsigned ThreadLevels[] = {1, 4, 16};

struct ModeRun {
  std::string Mode;
  bool PrefixCk = false;
  unsigned Threads = 0;
  uint64_t Runs = 0;
  double Seconds = 0;
  double SpeedupVsExhaustive = 0; ///< Same thread count, checkpointing off.
};

uint64_t siteKey(const PlannedRun &R) {
  return (R.AfterCycle << 16) | (uint64_t(R.R) << 8) | R.Bit;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_campaign.json";
  std::printf("campaign engine scaling: exhaustive vs. BEC-pruned vs. "
              "sampled over a %llu-cycle window, prefix checkpointing "
              "off/on, 1/4/16 threads\n\n",
              (unsigned long long)WindowCycles);

  AnalysisSession S;
  Table Tbl({"workload", "mode", "ckpt", "threads", "runs", "seconds",
             "runs/s", "vs exhaustive"});
  JsonWriter J;
  J.beginObject();
  J.key("bench").value("CampaignScale");
  J.key("api_version").value(BEC_API_VERSION_STRING);
  J.key("window_cycles").value(WindowCycles);
  J.key("sample_runs").value(SampleRuns);
  J.key("workloads").beginArray();

  double WorstPrunedSpeedup1T = 1e100;
  double WorstCkSpeedup1T = 1e100; ///< Exhaustive wall clock, off / on.
  double Best16TScaling = 0;       ///< Pruned wall clock, 1T / 16T.
  bool VerdictsEqual = true;
  bool CkResultsEqual = true;
  // Engine scaling profile of the first workload's checkpointed pruned
  // plan at the top thread level (ROADMAP open item 1).
  std::string ProfileJson;
  std::string ProfileDiagnosis;

  for (const char *Name : Names) {
    auto T = S.addWorkload(Name);
    if (!T)
      reportFatalError("unknown benchmark workload");
    std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(*T);
    std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(*T);
    const Program &Prog = S.program(*T);

    // The plans. The pruned window is one cycle shorter because segment
    // plans inject *after* the accessing cycle: every pruned site then
    // has an exhaustive twin for the verdict comparison. The *Off plans
    // replay every suffix from the injection point; the *On twins use
    // the default auto-tuned checkpoint placement.
    PlanOptions ExhaustiveOpts;
    ExhaustiveOpts.Kind = PlanKind::Exhaustive;
    ExhaustiveOpts.MaxCycles = WindowCycles;
    ExhaustiveOpts.PrefixCheckpoint = false;
    PlanOptions PrunedOpts;
    PrunedOpts.Kind = PlanKind::BitLevel;
    PrunedOpts.MaxCycles = WindowCycles - 1;
    PrunedOpts.PrefixCheckpoint = false;
    PlanOptions SampledOpts = ExhaustiveOpts;
    SampledOpts.SampleSize = SampleRuns;
    SampledOpts.SampleSeed = SampleSeed;
    PlanOptions ExhaustiveCkOpts = ExhaustiveOpts;
    ExhaustiveCkOpts.PrefixCheckpoint = true;
    PlanOptions PrunedCkOpts = PrunedOpts;
    PrunedCkOpts.PrefixCheckpoint = true;

    struct Mode {
      const char *Label;
      bool PrefixCk;
      CampaignPlan Plan;
    } Modes[] = {
        {"exhaustive", false,
         CampaignPlan::build(*A, *Golden, ExhaustiveOpts)},
        {"pruned", false, CampaignPlan::build(*A, *Golden, PrunedOpts)},
        {"sampled", false, CampaignPlan::build(*A, *Golden, SampledOpts)},
        {"exhaustive", true,
         CampaignPlan::build(*A, *Golden, ExhaustiveCkOpts)},
        {"pruned", true, CampaignPlan::build(*A, *Golden, PrunedCkOpts)},
    };

    std::vector<ModeRun> Results;
    std::map<unsigned, double> ExhaustiveSeconds; ///< Checkpointing off.
    std::map<uint64_t, FaultEffect> ExhaustiveVerdicts;
    // 1-thread results with checkpointing off, by mode label: the
    // reference the checkpointed twins must match byte for byte.
    std::map<std::string, CampaignResult> OffReference;
    std::map<unsigned, double> PrunedSeconds; ///< By thread count.

    for (const Mode &M : Modes) {
      for (unsigned Threads : ThreadLevels) {
        CampaignExecOptions Exec;
        Exec.Threads = Threads;
        CampaignResult R = runCampaign(Prog, *Golden, M.Plan, Exec);
        if (!R.Error.empty())
          reportFatalError("campaign engine failed");

        ModeRun MR;
        MR.Mode = M.Label;
        MR.PrefixCk = M.PrefixCk;
        MR.Threads = Threads;
        MR.Runs = R.Runs;
        MR.Seconds = R.Seconds;
        if (!M.PrefixCk && M.Label == std::string("exhaustive")) {
          ExhaustiveSeconds[Threads] = R.Seconds;
          MR.SpeedupVsExhaustive = 1.0;
          if (Threads == 1)
            for (size_t I = 0; I < M.Plan.runs().size(); ++I)
              ExhaustiveVerdicts[siteKey(M.Plan.runs()[I])] = R.Effects[I];
        } else {
          MR.SpeedupVsExhaustive =
              R.Seconds > 0 ? ExhaustiveSeconds[Threads] / R.Seconds : 0;
        }
        if (Threads == 1 && !M.PrefixCk)
          OffReference[M.Label] = R;
        if (Threads == 1 && M.PrefixCk) {
          // Checkpointing must be invisible in the result.
          const CampaignResult &Ref = OffReference[M.Label];
          if (R.Effects != Ref.Effects || R.TraceHashes != Ref.TraceHashes ||
              R.EffectCounts != Ref.EffectCounts ||
              R.DistinctTraces != Ref.DistinctTraces ||
              R.ArchiveBytes != Ref.ArchiveBytes)
            CkResultsEqual = false;
          if (M.Label == std::string("exhaustive")) {
            double Speedup =
                R.Seconds > 0 ? ExhaustiveSeconds[1] / R.Seconds : 0;
            if (Speedup < WorstCkSpeedup1T)
              WorstCkSpeedup1T = Speedup;
          }
        }
        if (!M.PrefixCk && M.Label == std::string("pruned")) {
          if (Threads == 1 && MR.SpeedupVsExhaustive < WorstPrunedSpeedup1T)
            WorstPrunedSpeedup1T = MR.SpeedupVsExhaustive;
          PrunedSeconds[Threads] = R.Seconds;
          if (Threads == 16 && R.Seconds > 0) {
            double Scaling = PrunedSeconds[1] / R.Seconds;
            if (Scaling > Best16TScaling)
              Best16TScaling = Scaling;
          }
          // Equal verdicts: a kept representative classifies exactly as
          // the exhaustive run at the same fault site did.
          for (size_t I = 0; I < M.Plan.runs().size(); ++I) {
            auto It = ExhaustiveVerdicts.find(siteKey(M.Plan.runs()[I]));
            if (It == ExhaustiveVerdicts.end() ||
                It->second != R.Effects[I]) {
              VerdictsEqual = false;
              break;
            }
          }
        }

        char Sec[32], Thr[32], Speed[32];
        std::snprintf(Sec, sizeof Sec, "%.3f", MR.Seconds);
        std::snprintf(Thr, sizeof Thr, "%.0f",
                      MR.Seconds > 0 ? double(MR.Runs) / MR.Seconds : 0);
        std::snprintf(Speed, sizeof Speed, "%.1fx", MR.SpeedupVsExhaustive);
        Tbl.row()
            .cell(Name)
            .cell(MR.Mode)
            .cell(MR.PrefixCk ? "on" : "off")
            .cell(uint64_t(MR.Threads))
            .cell(MR.Runs)
            .cell(std::string(Sec))
            .cell(std::string(Thr))
            .cell(std::string(Speed));
        Results.push_back(MR);
      }
    }

    if (Name == std::string(Names[0])) {
      // One extra profiled run (its own cache-free engine invocation, so
      // the timing rows above stay unperturbed): per-worker wall time
      // split into run / snapshot-rebuild (incl. checkpoint restores) /
      // steal / idle, plus the bottleneck verdict. CollectProfile never
      // changes the verdicts.
      CampaignExecOptions Exec;
      Exec.Threads = ThreadLevels[2];
      Exec.CollectProfile = true;
      CampaignResult R = runCampaign(Prog, *Golden, Modes[4].Plan, Exec);
      if (R.Error.empty()) {
        ProfileJson = renderCampaignProfileJson(R.Profile);
        ProfileDiagnosis = diagnoseCampaignScaling(R.Profile).Verdict;
      }
    }

    J.beginObject();
    J.key("name").value(Name);
    J.key("trace_cycles").value(Golden->Cycles);
    J.key("modes").beginArray();
    for (const ModeRun &MR : Results) {
      J.beginObject();
      J.key("mode").value(MR.Mode);
      J.key("prefix_checkpoint").value(MR.PrefixCk);
      J.key("threads").value(uint64_t(MR.Threads));
      J.key("runs").value(MR.Runs);
      J.key("seconds").value(MR.Seconds);
      J.key("throughput_runs_s")
          .value(MR.Seconds > 0 ? double(MR.Runs) / MR.Seconds : 0.0);
      J.key("speedup_vs_exhaustive").value(MR.SpeedupVsExhaustive);
      J.endObject();
    }
    J.endArray();
    J.endObject();
  }

  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("%s\n", Tbl.render().c_str());
  std::printf("pruned verdicts equal exhaustive at every kept site: %s\n",
              VerdictsEqual ? "yes" : "NO");
  std::printf("checkpointed results byte-equal from-zero replay: %s\n",
              CkResultsEqual ? "yes" : "NO");
  std::printf("worst pruned-vs-exhaustive speedup at 1 thread: %.1fx\n",
              WorstPrunedSpeedup1T);
  std::printf("worst checkpoint-on-vs-off exhaustive speedup at 1 thread: "
              "%.1fx\n",
              WorstCkSpeedup1T);
  std::printf("best pruned 16-thread-vs-1-thread scaling: %.1fx "
              "(%u hardware threads)\n",
              Best16TScaling, Cores);
  if (!ProfileDiagnosis.empty())
    std::printf("scaling diagnosis (%s, pruned+ckpt, %u threads): %s\n",
                Names[0], ThreadLevels[2], ProfileDiagnosis.c_str());

  // The engine's contracts. Fail loudly if any ever regresses.
  if (!VerdictsEqual)
    reportFatalError("pruned campaign verdicts diverge from exhaustive");
  if (WorstPrunedSpeedup1T < 5.0)
    reportFatalError("pruned campaign is less than 5x faster than "
                     "exhaustive");
  if (!CkResultsEqual)
    reportFatalError("prefix-checkpointed results diverge from from-zero "
                     "replay");
  if (WorstCkSpeedup1T < 5.0)
    reportFatalError("prefix checkpointing buys less than 5x on the "
                     "single-thread exhaustive campaign");
  if (Cores >= 8 && Best16TScaling < 6.0)
    reportFatalError("16 threads are less than 6x faster than one on the "
                     "pruned plan");

  J.endArray();
  J.key("asserts").beginObject();
  J.key("verdicts_equal").value(VerdictsEqual);
  J.key("worst_pruned_speedup_1t").value(WorstPrunedSpeedup1T);
  J.key("checkpoint_results_equal").value(CkResultsEqual);
  J.key("worst_checkpoint_speedup_1t").value(WorstCkSpeedup1T);
  J.key("pruned_16t_scaling").value(Best16TScaling);
  J.key("hardware_threads").value(uint64_t(Cores));
  J.endObject();
  J.endObject();

  std::string Doc = J.take();
  if (!ProfileJson.empty()) {
    // Splice the pre-rendered profile as one more top-level member
    // (JsonWriter cannot embed raw JSON).
    Doc.pop_back();
    Doc += ",\"scaling_profile\":";
    Doc += ProfileJson;
    Doc += '}';
  }

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath);
    return 1;
  }
  Out << Doc << "\n";
  std::printf("wrote %s\n", OutPath);
  return 0;
}
