//===- bench/FuzzThroughput.cpp - Differential fuzzing throughput ---------===//
///
/// \file
/// Measures the `bec fuzz` pipeline at scale (docs/fuzzing.md): how many
/// generated programs per second the differential oracle stack sustains,
/// and how the campaign scales across worker threads. Three stages are
/// timed separately:
///
///   * generate — the seeded program generator alone;
///   * oracles  — one program through the full oracle stack (round trip,
///     exhaustive-vs-pruned differential, fates, engine, harden, session);
///   * campaign — the end-to-end fuzz run at 1 / 4 / 8 threads.
///
/// The campaign stage doubles as a soundness gate: any oracle mismatch on
/// the seeded corpus aborts the benchmark, so a perf run can never paper
/// over a pruning bug. Emits BENCH_fuzz.json (path = argv[1], default
/// ./BENCH_fuzz.json) next to the other BENCH_*.json artifacts.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "support/Debug.h"
#include "support/Json.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <fstream>

using namespace bec;
using namespace bec::fuzz;

namespace {

constexpr uint64_t CorpusSeed = 1;
constexpr uint64_t GenOnlyCount = 2000;
constexpr uint64_t CampaignCount = 64;
constexpr unsigned ThreadLevels[] = {1, 4, 8};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_fuzz.json";
  std::printf("differential fuzzing throughput: %llu-program campaign "
              "(seed %llu), 1/4/8 threads\n\n",
              (unsigned long long)CampaignCount,
              (unsigned long long)CorpusSeed);

  JsonWriter J;
  J.beginObject();
  J.key("bench").value("FuzzThroughput");
  J.key("corpus_seed").value(CorpusSeed);

  // Stage 1: the generator alone.
  auto GenStart = std::chrono::steady_clock::now();
  uint64_t GenInstrs = 0;
  for (uint64_t I = 0; I < GenOnlyCount; ++I) {
    GeneratedProgram G = generateProgram(programSeed(CorpusSeed, I));
    if (!G.Error.empty())
      reportFatalError("generator emitted an illegal program");
    GenInstrs += G.Prog.size();
  }
  double GenSeconds = secondsSince(GenStart);
  std::printf("generate: %llu programs (%llu instrs) in %.3fs — %.0f "
              "programs/s\n",
              (unsigned long long)GenOnlyCount,
              (unsigned long long)GenInstrs, GenSeconds,
              GenOnlyCount / GenSeconds);
  J.key("generate").beginObject();
  J.key("programs").value(GenOnlyCount);
  J.key("instructions").value(GenInstrs);
  J.key("seconds").value(GenSeconds);
  J.key("programs_per_s").value(GenOnlyCount / GenSeconds);
  J.endObject();

  // Stage 2: one program through the full oracle stack, serially.
  auto OrStart = std::chrono::steady_clock::now();
  uint64_t OrPrograms = 16, OrRuns = 0;
  for (uint64_t I = 0; I < OrPrograms; ++I) {
    GeneratedProgram G = generateProgram(programSeed(CorpusSeed, I));
    OracleReport R = runOracles(G.Prog);
    if (!R.ok())
      reportFatalError("oracle mismatch on the seeded corpus");
    OrRuns += R.ExhaustiveRuns + R.PrunedRuns;
  }
  double OrSeconds = secondsSince(OrStart);
  std::printf("oracles:  %llu programs (%llu injection runs) in %.3fs — "
              "%.1f programs/s\n",
              (unsigned long long)OrPrograms, (unsigned long long)OrRuns,
              OrSeconds, OrPrograms / OrSeconds);
  J.key("oracles").beginObject();
  J.key("programs").value(OrPrograms);
  J.key("injection_runs").value(OrRuns);
  J.key("seconds").value(OrSeconds);
  J.key("programs_per_s").value(OrPrograms / OrSeconds);
  J.endObject();

  // Stage 3: the end-to-end campaign across thread levels. The report
  // must be identical at every level; only Seconds may move.
  Table Tbl({"threads", "programs", "exhaustive", "pruned", "mismatches",
             "seconds", "programs/s"});
  J.key("campaign").beginArray();
  FuzzResult Reference;
  for (unsigned Threads : ThreadLevels) {
    FuzzOptions O;
    O.Seed = CorpusSeed;
    O.Count = CampaignCount;
    O.Threads = Threads;
    FuzzResult R = runFuzz(O);
    if (!R.Error.empty())
      reportFatalError("fuzz campaign failed");
    if (!R.Mismatches.empty())
      reportFatalError("oracle mismatch on the seeded corpus");
    if (Threads == ThreadLevels[0])
      Reference = R;
    else if (R.ExhaustiveRuns != Reference.ExhaustiveRuns ||
             R.PrunedRuns != Reference.PrunedRuns ||
             R.PrunedEffects != Reference.PrunedEffects)
      reportFatalError("fuzz report varies with thread count");

    char Sec[32], Thr[32];
    std::snprintf(Sec, sizeof Sec, "%.3f", R.Seconds);
    std::snprintf(Thr, sizeof Thr, "%.1f",
                  R.Seconds > 0 ? CampaignCount / R.Seconds : 0);
    Tbl.row()
        .cell(uint64_t(Threads))
        .cell(R.Programs)
        .cell(R.ExhaustiveRuns)
        .cell(R.PrunedRuns)
        .cell(uint64_t(R.Mismatches.size()))
        .cell(std::string(Sec))
        .cell(std::string(Thr));

    J.beginObject();
    J.key("threads").value(uint64_t(Threads));
    J.key("programs").value(R.Programs);
    J.key("exhaustive_runs").value(R.ExhaustiveRuns);
    J.key("pruned_runs").value(R.PrunedRuns);
    J.key("mismatches").value(uint64_t(R.Mismatches.size()));
    J.key("seconds").value(R.Seconds);
    J.key("programs_per_s")
        .value(R.Seconds > 0 ? CampaignCount / R.Seconds : 0.0);
    J.endObject();
  }
  J.endArray();
  std::printf("\n%s\n", Tbl.render().c_str());
  std::printf("pruning ratio over the corpus: %.1fx fewer runs than "
              "exhaustive\n",
              Reference.PrunedRuns
                  ? double(Reference.ExhaustiveRuns) / Reference.PrunedRuns
                  : 0.0);

  J.key("pruning_ratio")
      .value(Reference.PrunedRuns
                 ? double(Reference.ExhaustiveRuns) / Reference.PrunedRuns
                 : 0.0);
  J.endObject();

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath);
    return 1;
  }
  Out << J.take() << "\n";
  std::printf("wrote %s\n", OutPath);
  return 0;
}
