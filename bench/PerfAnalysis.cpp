//===- bench/PerfAnalysis.cpp - Compile-time overhead microbenchmarks -----===//
///
/// \file
/// google-benchmark measurements backing the paper's claim that "the BEC
/// analysis was tractable for all benchmarks, and no significant compile
/// time overhead was observed": per-benchmark timings of the component
/// analyses, the full BEC pipeline, the scheduler, and (for scale) one
/// golden simulation.
///
//===----------------------------------------------------------------------===//

#include "core/BECAnalysis.h"
#include "core/Metrics.h"
#include "sched/ListScheduler.h"
#include "sim/Interpreter.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace bec;

static const Workload &workloadArg(const benchmark::State &State) {
  return allWorkloads()[static_cast<size_t>(State.range(0))];
}

static void applyNames(benchmark::internal::Benchmark *B) {
  for (size_t I = 0; I < allWorkloads().size(); ++I)
    B->Arg(static_cast<int>(I));
}

static void BM_BitValueAnalysis(benchmark::State &State) {
  Program Prog = loadWorkload(workloadArg(State));
  for (auto _ : State)
    benchmark::DoNotOptimize(BitValueAnalysis::run(Prog));
  State.SetLabel(workloadArg(State).Name);
}
BENCHMARK(BM_BitValueAnalysis)->Apply(applyNames);

static void BM_Liveness(benchmark::State &State) {
  Program Prog = loadWorkload(workloadArg(State));
  for (auto _ : State)
    benchmark::DoNotOptimize(Liveness::run(Prog));
  State.SetLabel(workloadArg(State).Name);
}
BENCHMARK(BM_Liveness)->Apply(applyNames);

static void BM_UseDef(benchmark::State &State) {
  Program Prog = loadWorkload(workloadArg(State));
  for (auto _ : State)
    benchmark::DoNotOptimize(UseDef::run(Prog));
  State.SetLabel(workloadArg(State).Name);
}
BENCHMARK(BM_UseDef)->Apply(applyNames);

static void BM_FullBECAnalysis(benchmark::State &State) {
  Program Prog = loadWorkload(workloadArg(State));
  for (auto _ : State) {
    BECAnalysis A = BECAnalysis::run(Prog);
    benchmark::DoNotOptimize(A.mergeCount());
  }
  State.SetLabel(workloadArg(State).Name);
}
BENCHMARK(BM_FullBECAnalysis)->Apply(applyNames);

static void BM_Scheduler(benchmark::State &State) {
  Program Prog = loadWorkload(workloadArg(State));
  BECAnalysis A = BECAnalysis::run(Prog);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        scheduleProgram(A, SchedulePolicy::BestReliability));
  State.SetLabel(workloadArg(State).Name);
}
BENCHMARK(BM_Scheduler)->Apply(applyNames);

static void BM_GoldenSimulation(benchmark::State &State) {
  Program Prog = loadWorkload(workloadArg(State));
  for (auto _ : State)
    benchmark::DoNotOptimize(simulate(Prog));
  State.SetLabel(workloadArg(State).Name);
}
BENCHMARK(BM_GoldenSimulation)->Apply(applyNames);

static void BM_TraceMetrics(benchmark::State &State) {
  Program Prog = loadWorkload(workloadArg(State));
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  for (auto _ : State)
    benchmark::DoNotOptimize(countFaultInjectionRuns(A, Golden.Executed));
  State.SetLabel(workloadArg(State).Name);
}
BENCHMARK(BM_TraceMetrics)->Apply(applyNames);

BENCHMARK_MAIN();
