#!/usr/bin/env python3
"""Documentation link checker (CI: the `docs` job).

Two gates over the repository's markdown:

  1. every relative link in *.md / docs/*.md resolves to a real file
     (fragments are stripped; absolute http(s)/mailto links are not
     fetched);
  2. every file under docs/ is reachable from README.md by following
     relative markdown links — no orphaned documentation.

Exit code 0 = clean, 1 = broken links or orphans (each printed).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — target up to the first ')' or whitespace.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def md_files():
    files = [f for f in os.listdir(REPO) if f.endswith(".md")]
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        files += [
            os.path.join("docs", f) for f in os.listdir(docs)
            if f.endswith(".md")
        ]
    return sorted(files)


def links_of(relpath):
    text = open(os.path.join(REPO, relpath), encoding="utf-8").read()
    # Fenced code blocks hold shell/JSON samples, not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    return LINK_RE.findall(text)


def is_external(target):
    return target.startswith(("http://", "https://", "mailto:"))


def resolve(relpath, target):
    """Repo-relative path a link points at, or None for externals."""
    if is_external(target):
        return None
    target = target.split("#", 1)[0]
    if not target:  # Pure fragment: same file.
        return relpath
    base = os.path.dirname(os.path.join(REPO, relpath))
    return os.path.relpath(os.path.normpath(os.path.join(base, target)), REPO)


def main():
    failures = []

    # Gate 1: every relative link resolves.
    resolved = {}  # file -> [repo-relative link targets]
    for f in md_files():
        resolved[f] = []
        for target in links_of(f):
            dest = resolve(f, target)
            if dest is None:
                continue
            if not os.path.exists(os.path.join(REPO, dest)):
                failures.append(f"{f}: broken link -> {target}")
            else:
                resolved[f].append(dest)

    # Gate 2: docs/*.md all reachable from README.md.
    reachable = set()
    frontier = ["README.md"]
    while frontier:
        cur = frontier.pop()
        if cur in reachable:
            continue
        reachable.add(cur)
        for dest in resolved.get(cur, []):
            if dest.endswith(".md") and dest not in reachable:
                frontier.append(dest)
    for f in md_files():
        if f.startswith("docs") and f not in reachable:
            failures.append(
                f"{f}: not reachable from README.md via markdown links")

    for f in failures:
        print(f"check_docs: {f}", file=sys.stderr)
    checked = sum(len(v) for v in resolved.values())
    print(f"check_docs: {len(resolved)} files, {checked} relative links, "
          f"{len(failures)} problem(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
