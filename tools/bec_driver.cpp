//===- tools/bec_driver.cpp - main() of the `bec` binary -------------------===//

#include "Driver.h"

#include <iostream>
#include <string>
#include <vector>

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  return bec::tool::runDriver(Args, std::cout, std::cerr);
}
