//===- tools/Driver.cpp - The `bec` pipeline driver ------------------------===//

#include "Driver.h"

#include "core/BECAnalysis.h"
#include "core/Metrics.h"
#include "fi/Campaign.h"
#include "fi/Validation.h"
#include "harden/Harden.h"
#include "ir/AsmParser.h"
#include "sched/ListScheduler.h"
#include "sim/Interpreter.h"
#include "support/Json.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

using namespace bec;
using namespace bec::tool;

namespace {

//===----------------------------------------------------------------------===//
// Command line
//===----------------------------------------------------------------------===//

const char *const UsageText = R"(usage: bec <subcommand> [options]

Subcommands:
  analyze    Static fault-space metrics per target (Table III shape).
  campaign   Plan and execute a fault-injection campaign per target.
  schedule   Vulnerability-aware list scheduling; vulnerability per policy.
  harden     BEC-guided selective hardening under a dynamic-instruction
             budget; per target the reached cost/vulnerability Pareto
             point plus closed-loop validation. Exits 3 if any hardened
             program fails validation.
  report     Full pipeline: metrics + bit-level campaign + soundness
             validation. Exits 3 if any target validates unsound.

Target selection (default: all bundled workloads):
  --workload NAME   Add one bundled workload (case-insensitive; repeatable).
  --asm FILE        Add an external assembly file in the bec dialect.
  --all             Add every bundled workload.
  --list-workloads  Print the bundled workload names and exit.

Options:
  --jobs N          Evaluate independent targets on N pool threads
                    (default 1; 0 = hardware concurrency).
  --plan KIND       campaign plan: exhaustive | value | bit (default bit).
  --policy KIND     schedule policy for --emit: best | worst | source
                    (default best).
  --emit FILE       schedule: write the scheduled program of the single
                    selected target to FILE as assembly.
                    harden: write the hardened program instead.
  --budget P        harden only: max extra dynamic instructions in percent
                    of the baseline run (default 10).
  --sweep A,B,..    harden only: evaluate several budgets per target and
                    print the full cost-vs-vulnerability table.
  --format KIND     analyze/report/harden output: text | json
                    (default text).
  --max-cycles N    Truncate campaign/validation windows to N cycles
                    (0 = whole trace; default 0).
  -h, --help        Print this help and exit.

Exit codes: 0 success, 1 usage error, 2 bad input, 3 unsound validation.
)";

enum class Command { Analyze, Campaign, Schedule, Harden, Report };
enum class OutputFormat { Text, Json };

struct DriverOptions {
  Command Cmd = Command::Analyze;
  std::vector<std::string> WorkloadNames;
  std::vector<std::string> AsmFiles;
  bool AllWorkloads = false;
  unsigned Jobs = 1;
  PlanKind Plan = PlanKind::BitLevel;
  SchedulePolicy EmitPolicy = SchedulePolicy::BestReliability;
  std::string EmitPath;
  uint64_t MaxCycles = 0;
  /// harden: budgets to evaluate (one entry unless --sweep is given).
  std::vector<double> Budgets = {10.0};
  OutputFormat Format = OutputFormat::Text;
};

/// Parses a full-string unsigned decimal; nullopt on any trailing garbage.
std::optional<uint64_t> parseUnsigned(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  char *End = nullptr;
  uint64_t V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size())
    return std::nullopt;
  return V;
}

/// Parses a full-string non-negative finite decimal (strtod's "nan"/"inf"
/// spellings would silently disable the budget gate).
std::optional<double> parseBudget(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || !std::isfinite(V) || V < 0)
    return std::nullopt;
  return V;
}

std::string toLower(std::string_view S) {
  std::string Out(S);
  std::transform(Out.begin(), Out.end(), Out.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return Out;
}

/// One analyzable target: a named, verified program.
struct Target {
  std::string Name;
  Program Prog;
};

/// Everything one pipeline job produces; rendered after the pool drains.
struct TargetResult {
  std::string Error; ///< Non-empty on failure; row fields are then unset.

  // analyze / report
  uint32_t Instrs = 0;
  uint64_t Cycles = 0;
  FaultInjectionCounts Counts;
  uint64_t Vulnerability = 0;

  // campaign / report
  CampaignResult Campaign;

  // schedule: vulnerability per policy [source, best, worst]
  uint64_t PolicyVuln[3] = {0, 0, 0};
  // schedule/harden --emit: assembly of the transformed program.
  std::string EmittedAsm;

  // report
  ValidationResult Validation;

  // harden: one Pareto point per requested budget, parallel to
  // DriverOptions::Budgets.
  std::vector<HardenResult> Harden;
  std::vector<HardenValidation> HardenChecks;
};

int parseArgs(const std::vector<std::string> &Args, DriverOptions &Opts,
              std::ostream &Out, std::ostream &Err) {
  if (Args.empty()) {
    Err << UsageText;
    return ExitUsage;
  }
  size_t I = 0;
  std::string Sub = Args[I++];
  if (Sub == "-h" || Sub == "--help") {
    Out << UsageText;
    return -1; // Sentinel: handled, exit 0.
  }
  if (Sub == "analyze")
    Opts.Cmd = Command::Analyze;
  else if (Sub == "campaign")
    Opts.Cmd = Command::Campaign;
  else if (Sub == "schedule")
    Opts.Cmd = Command::Schedule;
  else if (Sub == "harden")
    Opts.Cmd = Command::Harden;
  else if (Sub == "report")
    Opts.Cmd = Command::Report;
  else {
    Err << "bec: unknown subcommand '" << Sub << "'\n" << UsageText;
    return ExitUsage;
  }

  auto Value = [&](const std::string &Flag) -> std::optional<std::string> {
    if (I >= Args.size()) {
      Err << "bec: " << Flag << " requires a value\n";
      return std::nullopt;
    }
    return Args[I++];
  };

  while (I < Args.size()) {
    std::string Arg = Args[I++];
    if (Arg == "-h" || Arg == "--help") {
      Out << UsageText;
      return -1;
    } else if (Arg == "--workload") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.WorkloadNames.push_back(*V);
    } else if (Arg == "--asm") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.AsmFiles.push_back(*V);
    } else if (Arg == "--all") {
      Opts.AllWorkloads = true;
    } else if (Arg == "--list-workloads") {
      for (const Workload &W : allWorkloads())
        Out << W.Name << "\n";
      return -1;
    } else if (Arg == "--jobs") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N) {
        Err << "bec: --jobs wants a number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.Jobs = ThreadPool::clampJobs(static_cast<unsigned>(*N));
    } else if (Arg == "--max-cycles") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N) {
        Err << "bec: --max-cycles wants a number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.MaxCycles = *N;
    } else if (Arg == "--plan") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLower(*V);
      if (K == "exhaustive")
        Opts.Plan = PlanKind::Exhaustive;
      else if (K == "value")
        Opts.Plan = PlanKind::ValueLevel;
      else if (K == "bit")
        Opts.Plan = PlanKind::BitLevel;
      else {
        Err << "bec: unknown --plan '" << *V
            << "' (want exhaustive | value | bit)\n";
        return ExitUsage;
      }
    } else if (Arg == "--policy") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLower(*V);
      if (K == "best")
        Opts.EmitPolicy = SchedulePolicy::BestReliability;
      else if (K == "worst")
        Opts.EmitPolicy = SchedulePolicy::WorstReliability;
      else if (K == "source")
        Opts.EmitPolicy = SchedulePolicy::SourceOrder;
      else {
        Err << "bec: unknown --policy '" << *V
            << "' (want best | worst | source)\n";
        return ExitUsage;
      }
    } else if (Arg == "--emit") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.EmitPath = *V;
    } else if (Arg == "--budget") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<double> B = parseBudget(*V);
      if (!B) {
        Err << "bec: --budget wants a non-negative number, got '" << *V
            << "'\n";
        return ExitUsage;
      }
      Opts.Budgets = {*B};
    } else if (Arg == "--sweep") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.Budgets.clear();
      std::string Item;
      std::stringstream Stream(*V);
      while (std::getline(Stream, Item, ',')) {
        std::optional<double> B = parseBudget(Item);
        if (!B) {
          Err << "bec: --sweep wants comma-separated budgets, got '" << *V
              << "'\n";
          return ExitUsage;
        }
        Opts.Budgets.push_back(*B);
      }
      if (Opts.Budgets.empty()) {
        Err << "bec: --sweep needs at least one budget\n";
        return ExitUsage;
      }
    } else if (Arg == "--format") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLower(*V);
      if (K == "text")
        Opts.Format = OutputFormat::Text;
      else if (K == "json")
        Opts.Format = OutputFormat::Json;
      else {
        Err << "bec: unknown --format '" << *V << "' (want text | json)\n";
        return ExitUsage;
      }
    } else {
      Err << "bec: unknown option '" << Arg << "'\n" << UsageText;
      return ExitUsage;
    }
  }
  if (!Opts.EmitPath.empty() && Opts.Cmd != Command::Schedule &&
      Opts.Cmd != Command::Harden) {
    Err << "bec: --emit is only valid with schedule or harden\n";
    return ExitUsage;
  }
  if (Opts.Format == OutputFormat::Json && Opts.Cmd != Command::Analyze &&
      Opts.Cmd != Command::Report && Opts.Cmd != Command::Harden) {
    Err << "bec: --format json supports analyze, report and harden\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Harden && !Opts.EmitPath.empty() &&
      Opts.Budgets.size() != 1) {
    Err << "bec: harden --emit requires a single --budget\n";
    return ExitUsage;
  }
  return ExitSuccess;
}

//===----------------------------------------------------------------------===//
// Target loading
//===----------------------------------------------------------------------===//

int collectTargets(const DriverOptions &Opts, std::vector<Target> &Targets,
                   std::ostream &Err) {
  bool Selected = Opts.AllWorkloads || !Opts.WorkloadNames.empty() ||
                  !Opts.AsmFiles.empty();
  if (Opts.AllWorkloads || !Selected)
    for (const Workload &W : allWorkloads())
      Targets.push_back({W.Name, loadWorkload(W)});

  for (const std::string &Name : Opts.WorkloadNames) {
    const Workload *W = findWorkload(Name);
    if (!W) {
      // Bundled names use mixed case (CRC32, AES, ...); accept any casing.
      std::string Lower = toLower(Name);
      for (const Workload &Cand : allWorkloads())
        if (toLower(Cand.Name) == Lower)
          W = &Cand;
    }
    if (!W) {
      Err << "bec: unknown workload '" << Name
          << "'; --list-workloads prints the bundled names\n";
      return ExitBadInput;
    }
    Targets.push_back({W->Name, loadWorkload(*W)});
  }

  for (const std::string &Path : Opts.AsmFiles) {
    std::ifstream In(Path);
    if (!In) {
      Err << "bec: cannot open '" << Path << "'\n";
      return ExitBadInput;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    AsmParseResult R = parseAsm(Buf.str(), Path);
    if (!R.succeeded()) {
      Err << "bec: " << Path << " failed to assemble:\n" << R.diagText();
      return ExitBadInput;
    }
    Targets.push_back({Path, std::move(*R.Prog)});
  }

  // --all plus an explicit --workload (or a repeated name in any casing)
  // would otherwise run and report the same target twice.
  std::vector<Target> Unique;
  for (Target &T : Targets) {
    bool Seen = false;
    for (const Target &U : Unique)
      Seen = Seen || U.Name == T.Name;
    if (!Seen)
      Unique.push_back(std::move(T));
  }
  Targets = std::move(Unique);
  return ExitSuccess;
}

//===----------------------------------------------------------------------===//
// Per-target pipeline stages
//===----------------------------------------------------------------------===//

/// Runs the static pipeline and the golden simulation; the common prefix of
/// every subcommand. Returns false (with R.Error set) if the golden run
/// does not terminate normally.
bool runCommonPipeline(const Target &T, BECAnalysis &A, Trace &Golden,
                       TargetResult &R) {
  A = BECAnalysis::run(T.Prog);
  Golden = simulate(T.Prog);
  if (Golden.End != Outcome::Finished) {
    R.Error = "golden run ended with " + std::string(outcomeName(Golden.End));
    return false;
  }
  R.Instrs = T.Prog.size();
  R.Cycles = Golden.Cycles;
  return true;
}

void runAnalyze(const Target &T, TargetResult &R) {
  BECAnalysis A;
  Trace Golden;
  if (!runCommonPipeline(T, A, Golden, R))
    return;
  R.Counts = countFaultInjectionRuns(A, Golden.Executed);
  R.Vulnerability = computeVulnerability(A, Golden.Executed);
}

void runCampaignCmd(const Target &T, const DriverOptions &Opts,
                    TargetResult &R) {
  BECAnalysis A;
  Trace Golden;
  if (!runCommonPipeline(T, A, Golden, R))
    return;
  std::vector<PlannedRun> Plan =
      planCampaign(A, Golden, Opts.Plan, Opts.MaxCycles);
  R.Campaign = runCampaign(T.Prog, Golden, std::move(Plan));
}

void runScheduleCmd(const Target &T, const DriverOptions &Opts,
                    TargetResult &R) {
  BECAnalysis A;
  Trace Golden;
  if (!runCommonPipeline(T, A, Golden, R))
    return;
  R.PolicyVuln[0] = computeVulnerability(A, Golden.Executed);
  bool Emit = !Opts.EmitPath.empty();
  if (Emit && Opts.EmitPolicy == SchedulePolicy::SourceOrder)
    R.EmittedAsm = scheduleProgram(A, SchedulePolicy::SourceOrder).toString();
  const SchedulePolicy Policies[] = {SchedulePolicy::BestReliability,
                                     SchedulePolicy::WorstReliability};
  for (unsigned P = 0; P < 2; ++P) {
    Program Sched = scheduleProgram(A, Policies[P]);
    if (Emit && Opts.EmitPolicy == Policies[P])
      R.EmittedAsm = Sched.toString();
    BECAnalysis SA = BECAnalysis::run(Sched);
    Trace SG = simulate(Sched);
    if (SG.End != Outcome::Finished) {
      R.Error = "scheduled run ended with " +
                std::string(outcomeName(SG.End));
      return;
    }
    R.PolicyVuln[1 + P] = computeVulnerability(SA, SG.Executed);
  }
}

void runHardenCmd(const Target &T, const DriverOptions &Opts,
                  TargetResult &R) {
  BECAnalysis A;
  Trace Golden;
  if (!runCommonPipeline(T, A, Golden, R))
    return;
  for (double Budget : Opts.Budgets) {
    HardenOptions HO;
    HO.BudgetPercent = Budget;
    HardenResult H = hardenProgram(T.Prog, HO);
    R.HardenChecks.push_back(validateHardening(H, T.Prog));
    if (!Opts.EmitPath.empty())
      R.EmittedAsm = H.HP.Prog.toString();
    R.Harden.push_back(std::move(H));
  }
}

void runReportCmd(const Target &T, const DriverOptions &Opts,
                  TargetResult &R) {
  BECAnalysis A;
  Trace Golden;
  if (!runCommonPipeline(T, A, Golden, R))
    return;
  R.Counts = countFaultInjectionRuns(A, Golden.Executed);
  R.Vulnerability = computeVulnerability(A, Golden.Executed);
  std::vector<PlannedRun> Plan =
      planCampaign(A, Golden, PlanKind::BitLevel, Opts.MaxCycles);
  R.Campaign = runCampaign(T.Prog, Golden, std::move(Plan));
  R.Validation = validateAnalysis(A, Golden, Opts.MaxCycles);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

void renderAnalyze(const std::vector<Target> &Targets,
                   const std::vector<TargetResult> &Results,
                   std::ostream &Out) {
  Table Tbl({"Workload", "Instrs", "Cycles", "Fault space", "Value-level",
             "Bit-level", "Masked", "Inferrable", "Pruned", "Vuln (bits)"});
  for (size_t I = 0; I < Targets.size(); ++I) {
    const TargetResult &R = Results[I];
    if (!R.Error.empty())
      continue;
    Tbl.row()
        .cell(Targets[I].Name)
        .cell(uint64_t(R.Instrs))
        .cell(R.Cycles)
        .cell(R.Counts.TotalFaultSpace)
        .cell(R.Counts.ValueLevelRuns)
        .cell(R.Counts.BitLevelRuns)
        .cell(R.Counts.MaskedBits)
        .cell(R.Counts.InferrableBits)
        .cell(Table::percent(R.Counts.prunedFraction()))
        .cell(R.Vulnerability);
  }
  Out << Tbl.render();
}

void renderCampaign(const std::vector<Target> &Targets,
                    const std::vector<TargetResult> &Results,
                    const DriverOptions &Opts, std::ostream &Out) {
  const char *PlanName = Opts.Plan == PlanKind::Exhaustive ? "exhaustive"
                         : Opts.Plan == PlanKind::ValueLevel
                             ? "value-level"
                             : "bit-level";
  Out << "Campaign plan: " << PlanName << "\n";
  Table Tbl({"Workload", "Runs", "Masked", "Benign", "SDC", "Trap", "Hang",
             "Distinct", "Seconds"});
  for (size_t I = 0; I < Targets.size(); ++I) {
    const TargetResult &R = Results[I];
    if (!R.Error.empty())
      continue;
    const auto &E = R.Campaign.EffectCounts;
    Tbl.row()
        .cell(Targets[I].Name)
        .cell(R.Campaign.Runs)
        .cell(E[size_t(FaultEffect::Masked)])
        .cell(E[size_t(FaultEffect::Benign)])
        .cell(E[size_t(FaultEffect::SDC)])
        .cell(E[size_t(FaultEffect::Trap)])
        .cell(E[size_t(FaultEffect::Hang)])
        .cell(R.Campaign.DistinctTraces)
        .cell(R.Campaign.Seconds, 2);
  }
  Out << Tbl.render();
}

void renderSchedule(const std::vector<Target> &Targets,
                    const std::vector<TargetResult> &Results,
                    std::ostream &Out) {
  Table Tbl({"Workload", "Source vuln", "Best vuln", "Worst vuln",
             "Best vs source"});
  for (size_t I = 0; I < Targets.size(); ++I) {
    const TargetResult &R = Results[I];
    if (!R.Error.empty())
      continue;
    // Positive delta = the best-reliability schedule shrinks the surface.
    double Delta =
        R.PolicyVuln[0] == 0
            ? 0.0
            : 1.0 - double(R.PolicyVuln[1]) / double(R.PolicyVuln[0]);
    Tbl.row()
        .cell(Targets[I].Name)
        .cell(R.PolicyVuln[0])
        .cell(R.PolicyVuln[1])
        .cell(R.PolicyVuln[2])
        .cell((Delta >= 0 ? "-" : "+") + Table::percent(std::fabs(Delta)));
  }
  Out << Tbl.render();
}

void renderHarden(const std::vector<Target> &Targets,
                  const std::vector<TargetResult> &Results,
                  const DriverOptions &Opts, std::ostream &Out) {
  Table Tbl({"Workload", "Budget", "Cost", "Base vuln", "Residual vuln",
             "Reduction", "Dup", "Narrow", "Probes", "Valid"});
  for (size_t I = 0; I < Targets.size(); ++I) {
    const TargetResult &R = Results[I];
    if (!R.Error.empty())
      continue;
    for (size_t B = 0; B < Opts.Budgets.size(); ++B) {
      const HardenResult &H = R.Harden[B];
      const HardenValidation &V = R.HardenChecks[B];
      Tbl.row()
          .cell(Targets[I].Name)
          .cell(Table::percent(Opts.Budgets[B] / 100.0))
          .cell(Table::percent(H.costPercent() / 100.0))
          .cell(H.BaselineVuln)
          .cell(H.ResidualVuln)
          .cell("-" + Table::percent(H.reduction()))
          .cell(uint64_t(H.NumDuplicated))
          .cell(uint64_t(H.NumNarrowed))
          .cell(std::to_string(V.DetectionsCaught) + "/" +
                std::to_string(V.DetectionProbes))
          .cell(V.ok() ? "ok" : "FAIL");
    }
  }
  Out << Tbl.render();
}

//===----------------------------------------------------------------------===//
// JSON rendering
//===----------------------------------------------------------------------===//

void jsonCounts(JsonWriter &W, const TargetResult &R) {
  W.key("instrs").value(uint64_t(R.Instrs));
  W.key("cycles").value(R.Cycles);
  W.key("fault_space").value(R.Counts.TotalFaultSpace);
  W.key("value_level_runs").value(R.Counts.ValueLevelRuns);
  W.key("bit_level_runs").value(R.Counts.BitLevelRuns);
  W.key("masked_bits").value(R.Counts.MaskedBits);
  W.key("inferrable_bits").value(R.Counts.InferrableBits);
  W.key("pruned_fraction").value(R.Counts.prunedFraction());
  W.key("vulnerability").value(R.Vulnerability);
}

void jsonCampaign(JsonWriter &W, const CampaignResult &C) {
  W.key("campaign").beginObject();
  W.key("runs").value(C.Runs);
  W.key("effects").beginObject();
  for (unsigned E = 0; E < NumFaultEffects; ++E)
    W.key(toLower(faultEffectName(FaultEffect(E))))
        .value(C.EffectCounts[E]);
  W.endObject();
  W.key("distinct_traces").value(C.DistinctTraces);
  W.key("seconds").value(C.Seconds);
  W.endObject();
}

void jsonValidation(JsonWriter &W, const ValidationResult &V) {
  W.key("validation").beginObject();
  W.key("sound_precise_pairs").value(V.SoundPrecisePairs);
  W.key("sound_imprecise_pairs").value(V.SoundImprecisePairs);
  W.key("unsound_pairs").value(V.UnsoundPairs);
  W.key("masked_violations").value(V.MaskedViolations);
  W.key("cross_violations").value(V.CrossViolations);
  W.key("runs_executed").value(V.RunsExecuted);
  W.key("sound").value(V.sound());
  W.endObject();
}

void jsonHarden(JsonWriter &W, const TargetResult &R,
                const DriverOptions &Opts) {
  W.key("points").beginArray();
  for (size_t B = 0; B < Opts.Budgets.size(); ++B) {
    const HardenResult &H = R.Harden[B];
    const HardenValidation &V = R.HardenChecks[B];
    W.beginObject();
    W.key("budget_percent").value(Opts.Budgets[B]);
    W.key("cost_percent").value(H.costPercent());
    W.key("baseline_vulnerability").value(H.BaselineVuln);
    W.key("residual_vulnerability").value(H.ResidualVuln);
    W.key("hardened_raw_vulnerability").value(H.HardenedRawVuln);
    W.key("reduction").value(H.reduction());
    W.key("baseline_cycles").value(H.BaselineCycles);
    W.key("hardened_cycles").value(H.HardenedCycles);
    W.key("duplicated").value(uint64_t(H.NumDuplicated));
    W.key("narrowed").value(uint64_t(H.NumNarrowed));
    W.key("validation").beginObject();
    W.key("verifier_clean").value(V.VerifierClean);
    W.key("outputs_match").value(V.OutputsMatch);
    W.key("vulnerability_reduced").value(V.VulnerabilityReduced);
    W.key("detection_probes").value(V.DetectionProbes);
    W.key("detections_caught").value(V.DetectionsCaught);
    W.key("ok").value(V.ok());
    W.endObject();
    W.endObject();
  }
  W.endArray();
}

void renderJson(const std::vector<Target> &Targets,
                const std::vector<TargetResult> &Results,
                const DriverOptions &Opts, std::ostream &Out) {
  const char *Cmd = Opts.Cmd == Command::Analyze  ? "analyze"
                    : Opts.Cmd == Command::Report ? "report"
                                                  : "harden";
  JsonWriter W;
  W.beginObject();
  W.key("command").value(Cmd);
  W.key("targets").beginArray();
  for (size_t I = 0; I < Targets.size(); ++I) {
    const TargetResult &R = Results[I];
    W.beginObject();
    W.key("name").value(Targets[I].Name);
    if (!R.Error.empty()) {
      W.key("error").value(R.Error);
      W.endObject();
      continue;
    }
    switch (Opts.Cmd) {
    case Command::Analyze:
      jsonCounts(W, R);
      break;
    case Command::Report:
      jsonCounts(W, R);
      jsonCampaign(W, R.Campaign);
      jsonValidation(W, R.Validation);
      break;
    case Command::Harden:
      W.key("instrs").value(uint64_t(R.Instrs));
      W.key("cycles").value(R.Cycles);
      jsonHarden(W, R, Opts);
      break;
    default:
      break;
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  Out << W.take() << "\n";
}

void renderReport(const std::vector<Target> &Targets,
                  const std::vector<TargetResult> &Results,
                  std::ostream &Out) {
  Table Tbl({"Workload", "Bit-level runs", "Pruned", "SDC", "Trap", "Hang",
             "Sound+precise", "Sound+imprecise", "Unsound", "Verdict"});
  for (size_t I = 0; I < Targets.size(); ++I) {
    const TargetResult &R = Results[I];
    if (!R.Error.empty())
      continue;
    const auto &E = R.Campaign.EffectCounts;
    const ValidationResult &V = R.Validation;
    Tbl.row()
        .cell(Targets[I].Name)
        .cell(R.Counts.BitLevelRuns)
        .cell(Table::percent(R.Counts.prunedFraction()))
        .cell(E[size_t(FaultEffect::SDC)])
        .cell(E[size_t(FaultEffect::Trap)])
        .cell(E[size_t(FaultEffect::Hang)])
        .cell(V.SoundPrecisePairs)
        .cell(V.SoundImprecisePairs)
        .cell(V.UnsoundPairs + V.MaskedViolations + V.CrossViolations)
        .cell(V.sound() ? "sound" : "UNSOUND");
  }
  Out << Tbl.render();
}

int emitScheduled(const TargetResult &R, const DriverOptions &Opts,
                  std::ostream &Err) {
  std::ofstream OutFile(Opts.EmitPath);
  if (!OutFile) {
    Err << "bec: cannot write '" << Opts.EmitPath << "'\n";
    return ExitBadInput;
  }
  OutFile << R.EmittedAsm;
  return ExitSuccess;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

int bec::tool::runDriver(const std::vector<std::string> &Args,
                         std::ostream &Out, std::ostream &Err) {
  DriverOptions Opts;
  int ParseStatus = parseArgs(Args, Opts, Out, Err);
  if (ParseStatus == -1)
    return ExitSuccess; // --help / --list-workloads.
  if (ParseStatus != ExitSuccess)
    return ParseStatus;

  std::vector<Target> Targets;
  if (int Status = collectTargets(Opts, Targets, Err))
    return Status;
  if (!Opts.EmitPath.empty() && Targets.size() != 1) {
    Err << "bec: --emit requires exactly one selected target\n";
    return ExitUsage;
  }

  // Fan the per-target pipelines out on the pool; rows render afterwards so
  // output order is deterministic regardless of completion order.
  std::vector<TargetResult> Results(Targets.size());
  {
    ThreadPool Pool(Opts.Jobs);
    for (size_t I = 0; I < Targets.size(); ++I)
      Pool.submit([&, I] {
        switch (Opts.Cmd) {
        case Command::Analyze:
          runAnalyze(Targets[I], Results[I]);
          break;
        case Command::Campaign:
          runCampaignCmd(Targets[I], Opts, Results[I]);
          break;
        case Command::Schedule:
          runScheduleCmd(Targets[I], Opts, Results[I]);
          break;
        case Command::Harden:
          runHardenCmd(Targets[I], Opts, Results[I]);
          break;
        case Command::Report:
          runReportCmd(Targets[I], Opts, Results[I]);
          break;
        }
      });
    Pool.wait();
  }

  if (Opts.Format == OutputFormat::Json) {
    renderJson(Targets, Results, Opts, Out);
  } else {
    switch (Opts.Cmd) {
    case Command::Analyze:
      renderAnalyze(Targets, Results, Out);
      break;
    case Command::Campaign:
      renderCampaign(Targets, Results, Opts, Out);
      break;
    case Command::Schedule:
      renderSchedule(Targets, Results, Out);
      break;
    case Command::Harden:
      renderHarden(Targets, Results, Opts, Out);
      break;
    case Command::Report:
      renderReport(Targets, Results, Out);
      break;
    }
  }

  int Status = ExitSuccess;
  for (size_t I = 0; I < Targets.size(); ++I)
    if (!Results[I].Error.empty()) {
      Err << "bec: " << Targets[I].Name << ": " << Results[I].Error << "\n";
      Status = ExitBadInput;
    }
  if (Status == ExitSuccess && Opts.Cmd == Command::Report)
    for (const TargetResult &R : Results)
      if (!R.Validation.sound())
        Status = ExitUnsound;
  if (Status == ExitSuccess && Opts.Cmd == Command::Harden)
    for (size_t I = 0; I < Targets.size(); ++I)
      for (const HardenValidation &V : Results[I].HardenChecks)
        if (!V.ok()) {
          Err << "bec: " << Targets[I].Name
              << ": hardened program failed validation\n";
          Status = ExitUnsound;
        }
  if (Status == ExitSuccess &&
      (Opts.Cmd == Command::Schedule || Opts.Cmd == Command::Harden) &&
      !Opts.EmitPath.empty())
    Status = emitScheduled(Results[0], Opts, Err);
  return Status;
}
