//===- tools/Driver.cpp - The `bec` pipeline driver ------------------------===//
//
// The driver is a thin shell over api/Api.h: it parses the command line,
// loads targets into an AnalysisSession, fans the per-target subcommand
// queries out on a thread pool (Session::evaluateAll), and renders the
// result objects as tables or — through the shared api/Serialize.h
// serializer — as JSON. All pipeline logic lives behind the session.
//
//===----------------------------------------------------------------------===//

#include "Driver.h"

#include "api/Api.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

using namespace bec;
using namespace bec::tool;

namespace {

//===----------------------------------------------------------------------===//
// Command line
//===----------------------------------------------------------------------===//

const char *const UsageText = R"(usage: bec <subcommand> [options]

Subcommands:
  analyze    Static fault-space metrics per target (Table III shape).
  campaign   Plan and execute a fault-injection campaign per target.
  schedule   Vulnerability-aware list scheduling; vulnerability per policy.
  harden     BEC-guided selective hardening under a dynamic-instruction
             budget; per target the reached cost/vulnerability Pareto
             point plus closed-loop validation. Exits 3 if any hardened
             program fails validation.
  report     Full pipeline: metrics + bit-level campaign + soundness
             validation. Exits 3 if any target validates unsound.

Target selection (default: all bundled workloads):
  --workload NAME   Add one bundled workload (case-insensitive; repeatable).
  --asm FILE        Add an external assembly file in the bec dialect.
  --all             Add every bundled workload.
  --list-workloads  Print the bundled workload names and exit.

Options:
  --jobs N          Evaluate independent targets on N pool threads
                    (default 1; 0 = hardware concurrency).
  --plan KIND       campaign plan: exhaustive | value | bit (default bit).
  --policy KIND     schedule policy for --emit: best | worst | source
                    (default best).
  --emit FILE       schedule: write the scheduled program of the single
                    selected target to FILE as assembly.
                    harden: write the hardened program instead.
  --budget P        harden only: max extra dynamic instructions in percent
                    of the baseline run (default 10).
  --sweep A,B,..    harden only: evaluate several budgets per target and
                    print the full cost-vs-vulnerability table.
  --format KIND     output format of any subcommand: text | json
                    (default text).
  --max-cycles N    Truncate campaign/validation windows to N cycles
                    (0 = whole trace; default 0).
  -h, --help        Print this help and exit.

Exit codes: 0 success, 1 usage error, 2 bad input, 3 unsound validation.
)";

enum class Command { Analyze, Campaign, Schedule, Harden, Report };
enum class OutputFormat { Text, Json };

struct DriverOptions {
  Command Cmd = Command::Analyze;
  std::vector<std::string> WorkloadNames;
  std::vector<std::string> AsmFiles;
  bool AllWorkloads = false;
  unsigned Jobs = 1;
  PlanKind Plan = PlanKind::BitLevel;
  SchedulePolicy EmitPolicy = SchedulePolicy::BestReliability;
  std::string EmitPath;
  uint64_t MaxCycles = 0;
  /// harden: budgets to evaluate (one entry unless --sweep is given).
  std::vector<double> Budgets = {10.0};
  OutputFormat Format = OutputFormat::Text;
};

/// Parses a full-string unsigned decimal; nullopt on any trailing garbage.
std::optional<uint64_t> parseUnsigned(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  char *End = nullptr;
  uint64_t V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size())
    return std::nullopt;
  return V;
}

/// Parses a full-string non-negative finite decimal (strtod's "nan"/"inf"
/// spellings would silently disable the budget gate).
std::optional<double> parseBudget(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || !std::isfinite(V) || V < 0)
    return std::nullopt;
  return V;
}

int parseArgs(const std::vector<std::string> &Args, DriverOptions &Opts,
              std::ostream &Out, std::ostream &Err) {
  if (Args.empty()) {
    Err << UsageText;
    return ExitUsage;
  }
  size_t I = 0;
  std::string Sub = Args[I++];
  if (Sub == "-h" || Sub == "--help") {
    Out << UsageText;
    return -1; // Sentinel: handled, exit 0.
  }
  if (Sub == "analyze")
    Opts.Cmd = Command::Analyze;
  else if (Sub == "campaign")
    Opts.Cmd = Command::Campaign;
  else if (Sub == "schedule")
    Opts.Cmd = Command::Schedule;
  else if (Sub == "harden")
    Opts.Cmd = Command::Harden;
  else if (Sub == "report")
    Opts.Cmd = Command::Report;
  else {
    Err << "bec: unknown subcommand '" << Sub << "'\n" << UsageText;
    return ExitUsage;
  }

  auto Value = [&](const std::string &Flag) -> std::optional<std::string> {
    if (I >= Args.size()) {
      Err << "bec: " << Flag << " requires a value\n";
      return std::nullopt;
    }
    return Args[I++];
  };

  while (I < Args.size()) {
    std::string Arg = Args[I++];
    if (Arg == "-h" || Arg == "--help") {
      Out << UsageText;
      return -1;
    } else if (Arg == "--workload") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.WorkloadNames.push_back(*V);
    } else if (Arg == "--asm") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.AsmFiles.push_back(*V);
    } else if (Arg == "--all") {
      Opts.AllWorkloads = true;
    } else if (Arg == "--list-workloads") {
      for (const Workload &W : allWorkloads())
        Out << W.Name << "\n";
      return -1;
    } else if (Arg == "--jobs") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N) {
        Err << "bec: --jobs wants a number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.Jobs = ThreadPool::clampJobs(static_cast<unsigned>(*N));
    } else if (Arg == "--max-cycles") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N) {
        Err << "bec: --max-cycles wants a number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.MaxCycles = *N;
    } else if (Arg == "--plan") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLowerAscii(*V);
      if (K == "exhaustive")
        Opts.Plan = PlanKind::Exhaustive;
      else if (K == "value")
        Opts.Plan = PlanKind::ValueLevel;
      else if (K == "bit")
        Opts.Plan = PlanKind::BitLevel;
      else {
        Err << "bec: unknown --plan '" << *V
            << "' (want exhaustive | value | bit)\n";
        return ExitUsage;
      }
    } else if (Arg == "--policy") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLowerAscii(*V);
      if (K == "best")
        Opts.EmitPolicy = SchedulePolicy::BestReliability;
      else if (K == "worst")
        Opts.EmitPolicy = SchedulePolicy::WorstReliability;
      else if (K == "source")
        Opts.EmitPolicy = SchedulePolicy::SourceOrder;
      else {
        Err << "bec: unknown --policy '" << *V
            << "' (want best | worst | source)\n";
        return ExitUsage;
      }
    } else if (Arg == "--emit") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.EmitPath = *V;
    } else if (Arg == "--budget") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<double> B = parseBudget(*V);
      if (!B) {
        Err << "bec: --budget wants a non-negative number, got '" << *V
            << "'\n";
        return ExitUsage;
      }
      Opts.Budgets = {*B};
    } else if (Arg == "--sweep") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.Budgets.clear();
      std::string Item;
      std::stringstream Stream(*V);
      while (std::getline(Stream, Item, ',')) {
        std::optional<double> B = parseBudget(Item);
        if (!B) {
          Err << "bec: --sweep wants comma-separated budgets, got '" << *V
              << "'\n";
          return ExitUsage;
        }
        Opts.Budgets.push_back(*B);
      }
      if (Opts.Budgets.empty()) {
        Err << "bec: --sweep needs at least one budget\n";
        return ExitUsage;
      }
    } else if (Arg == "--format") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLowerAscii(*V);
      if (K == "text")
        Opts.Format = OutputFormat::Text;
      else if (K == "json")
        Opts.Format = OutputFormat::Json;
      else {
        Err << "bec: unknown --format '" << *V << "' (want text | json)\n";
        return ExitUsage;
      }
    } else {
      Err << "bec: unknown option '" << Arg << "'\n" << UsageText;
      return ExitUsage;
    }
  }
  if (!Opts.EmitPath.empty() && Opts.Cmd != Command::Schedule &&
      Opts.Cmd != Command::Harden) {
    Err << "bec: --emit is only valid with schedule or harden\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Harden && !Opts.EmitPath.empty() &&
      Opts.Budgets.size() != 1) {
    Err << "bec: harden --emit requires a single --budget\n";
    return ExitUsage;
  }
  return ExitSuccess;
}

//===----------------------------------------------------------------------===//
// Target loading
//===----------------------------------------------------------------------===//

int collectTargets(const DriverOptions &Opts, AnalysisSession &S,
                   std::ostream &Err) {
  // --all plus an explicit --workload (or a repeated name in any casing)
  // would otherwise run and report the same target twice; skip names the
  // session already has.
  bool Selected = Opts.AllWorkloads || !Opts.WorkloadNames.empty() ||
                  !Opts.AsmFiles.empty();
  if (Opts.AllWorkloads || !Selected)
    S.addAllWorkloads();

  for (const std::string &Name : Opts.WorkloadNames) {
    const Workload *W = findWorkloadAnyCase(Name);
    if (!W) {
      Err << "bec: unknown workload '" << Name
          << "'; --list-workloads prints the bundled names\n";
      return ExitBadInput;
    }
    if (!S.findTarget(W->Name))
      S.addProgram(W->Name, loadWorkload(*W));
  }

  for (const std::string &Path : Opts.AsmFiles) {
    if (S.findTarget(Path))
      continue;
    std::string Error;
    if (!S.addAsmFile(Path, Error)) {
      Err << "bec: " << Error << "\n";
      return ExitBadInput;
    }
  }
  return ExitSuccess;
}

//===----------------------------------------------------------------------===//
// Table rendering
//===----------------------------------------------------------------------===//

template <class R> using ResultVec = std::vector<std::shared_ptr<const R>>;

void renderAnalyze(const AnalysisSession &S,
                   const ResultVec<AnalyzeResult> &Results,
                   std::ostream &Out) {
  Table Tbl({"Workload", "Instrs", "Cycles", "Fault space", "Value-level",
             "Bit-level", "Masked", "Inferrable", "Pruned", "Vuln (bits)"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const AnalyzeResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    Tbl.row()
        .cell(S.name(I))
        .cell(uint64_t(R.Instrs))
        .cell(R.Cycles)
        .cell(R.Counts.TotalFaultSpace)
        .cell(R.Counts.ValueLevelRuns)
        .cell(R.Counts.BitLevelRuns)
        .cell(R.Counts.MaskedBits)
        .cell(R.Counts.InferrableBits)
        .cell(Table::percent(R.Counts.prunedFraction()))
        .cell(R.Vulnerability);
  }
  Out << Tbl.render();
}

void renderCampaign(const AnalysisSession &S,
                    const ResultVec<CampaignCmdResult> &Results,
                    const DriverOptions &Opts, std::ostream &Out) {
  const char *PlanName = Opts.Plan == PlanKind::Exhaustive ? "exhaustive"
                         : Opts.Plan == PlanKind::ValueLevel
                             ? "value-level"
                             : "bit-level";
  Out << "Campaign plan: " << PlanName << "\n";
  Table Tbl({"Workload", "Runs", "Masked", "Benign", "SDC", "Trap", "Hang",
             "Distinct", "Seconds"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const CampaignCmdResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    const auto &E = R.Campaign.EffectCounts;
    Tbl.row()
        .cell(S.name(I))
        .cell(R.Campaign.Runs)
        .cell(E[size_t(FaultEffect::Masked)])
        .cell(E[size_t(FaultEffect::Benign)])
        .cell(E[size_t(FaultEffect::SDC)])
        .cell(E[size_t(FaultEffect::Trap)])
        .cell(E[size_t(FaultEffect::Hang)])
        .cell(R.Campaign.DistinctTraces)
        .cell(R.Campaign.Seconds, 2);
  }
  Out << Tbl.render();
}

void renderSchedule(const AnalysisSession &S,
                    const ResultVec<ScheduleCmdResult> &Results,
                    std::ostream &Out) {
  Table Tbl({"Workload", "Source vuln", "Best vuln", "Worst vuln",
             "Best vs source"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const ScheduleCmdResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    // Positive delta = the best-reliability schedule shrinks the surface.
    double Delta =
        R.PolicyVuln[0] == 0
            ? 0.0
            : 1.0 - double(R.PolicyVuln[1]) / double(R.PolicyVuln[0]);
    Tbl.row()
        .cell(S.name(I))
        .cell(R.PolicyVuln[0])
        .cell(R.PolicyVuln[1])
        .cell(R.PolicyVuln[2])
        .cell((Delta >= 0 ? "-" : "+") + Table::percent(std::fabs(Delta)));
  }
  Out << Tbl.render();
}

void renderHarden(const AnalysisSession &S,
                  const ResultVec<HardenCmdResult> &Results,
                  const DriverOptions &Opts, std::ostream &Out) {
  Table Tbl({"Workload", "Budget", "Cost", "Base vuln", "Residual vuln",
             "Reduction", "Dup", "Narrow", "Probes", "Valid"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const HardenCmdResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    for (size_t B = 0; B < Opts.Budgets.size(); ++B) {
      const HardenResult &H = R.Points[B].Harden;
      const HardenValidation &V = R.Points[B].Check;
      Tbl.row()
          .cell(S.name(I))
          .cell(Table::percent(Opts.Budgets[B] / 100.0))
          .cell(Table::percent(H.costPercent() / 100.0))
          .cell(H.BaselineVuln)
          .cell(H.ResidualVuln)
          .cell("-" + Table::percent(H.reduction()))
          .cell(uint64_t(H.NumDuplicated))
          .cell(uint64_t(H.NumNarrowed))
          .cell(std::to_string(V.DetectionsCaught) + "/" +
                std::to_string(V.DetectionProbes))
          .cell(V.ok() ? "ok" : "FAIL");
    }
  }
  Out << Tbl.render();
}

void renderReport(const AnalysisSession &S,
                  const ResultVec<ReportCmdResult> &Results,
                  std::ostream &Out) {
  Table Tbl({"Workload", "Bit-level runs", "Pruned", "SDC", "Trap", "Hang",
             "Sound+precise", "Sound+imprecise", "Unsound", "Verdict"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const ReportCmdResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    const auto &E = R.Campaign.EffectCounts;
    const ValidationResult &V = R.Validation;
    Tbl.row()
        .cell(S.name(I))
        .cell(R.Counts.BitLevelRuns)
        .cell(Table::percent(R.Counts.prunedFraction()))
        .cell(E[size_t(FaultEffect::SDC)])
        .cell(E[size_t(FaultEffect::Trap)])
        .cell(E[size_t(FaultEffect::Hang)])
        .cell(V.SoundPrecisePairs)
        .cell(V.SoundImprecisePairs)
        .cell(V.UnsoundPairs + V.MaskedViolations + V.CrossViolations)
        .cell(V.sound() ? "sound" : "UNSOUND");
  }
  Out << Tbl.render();
}

//===----------------------------------------------------------------------===//
// Shared epilogue
//===----------------------------------------------------------------------===//

std::vector<std::string> targetNames(const AnalysisSession &S) {
  std::vector<std::string> Names;
  for (size_t I = 0; I < S.numTargets(); ++I)
    Names.push_back(S.name(I));
  return Names;
}

/// Reports per-target errors; ExitBadInput if any target failed.
template <class R>
int reportErrors(const AnalysisSession &S, const ResultVec<R> &Results,
                 std::ostream &Err) {
  int Status = ExitSuccess;
  for (size_t I = 0; I < Results.size(); ++I)
    if (!Results[I]->Error.empty()) {
      Err << "bec: " << S.name(I) << ": " << Results[I]->Error << "\n";
      Status = ExitBadInput;
    }
  return Status;
}

int emitAssembly(const std::string &Asm, const DriverOptions &Opts,
                 std::ostream &Err) {
  std::ofstream OutFile(Opts.EmitPath);
  if (!OutFile) {
    Err << "bec: cannot write '" << Opts.EmitPath << "'\n";
    return ExitBadInput;
  }
  OutFile << Asm;
  return ExitSuccess;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

int bec::tool::runDriver(const std::vector<std::string> &Args,
                         std::ostream &Out, std::ostream &Err) {
  DriverOptions Opts;
  int ParseStatus = parseArgs(Args, Opts, Out, Err);
  if (ParseStatus == -1)
    return ExitSuccess; // --help / --list-workloads.
  if (ParseStatus != ExitSuccess)
    return ParseStatus;

  AnalysisSession S;
  if (int Status = collectTargets(Opts, S, Err))
    return Status;
  if (!Opts.EmitPath.empty() && S.numTargets() != 1) {
    Err << "bec: --emit requires exactly one selected target\n";
    return ExitUsage;
  }

  std::vector<std::string> Names = targetNames(S);
  bool Json = Opts.Format == OutputFormat::Json;
  ThreadPool Pool(Opts.Jobs);
  int Status = ExitSuccess;

  switch (Opts.Cmd) {
  case Command::Analyze: {
    auto Results = S.evaluateAll<AnalyzeQuery>({}, Pool);
    if (Json)
      Out << renderAnalyzeJson(Names, Results);
    else
      renderAnalyze(S, Results, Out);
    Status = reportErrors(S, Results, Err);
    break;
  }
  case Command::Campaign: {
    auto Results =
        S.evaluateAll<CampaignCmdQuery>({Opts.Plan, Opts.MaxCycles}, Pool);
    if (Json)
      Out << renderCampaignJson(Names, Results, Opts.Plan);
    else
      renderCampaign(S, Results, Opts, Out);
    Status = reportErrors(S, Results, Err);
    break;
  }
  case Command::Schedule: {
    auto Results = S.evaluateAll<ScheduleCmdQuery>({}, Pool);
    if (Json)
      Out << renderScheduleJson(Names, Results);
    else
      renderSchedule(S, Results, Out);
    Status = reportErrors(S, Results, Err);
    if (Status == ExitSuccess && !Opts.EmitPath.empty()) {
      size_t Policy = Opts.EmitPolicy == SchedulePolicy::SourceOrder ? 0
                      : Opts.EmitPolicy == SchedulePolicy::BestReliability
                          ? 1
                          : 2;
      Status = emitAssembly(Results[0]->PolicyAsm[Policy], Opts, Err);
    }
    break;
  }
  case Command::Harden: {
    HardenCmdQuery::Options HO;
    HO.Budgets = Opts.Budgets;
    auto Results = S.evaluateAll<HardenCmdQuery>(HO, Pool);
    if (Json)
      Out << renderHardenJson(Names, Results, Opts.Budgets);
    else
      renderHarden(S, Results, Opts, Out);
    Status = reportErrors(S, Results, Err);
    if (Status == ExitSuccess)
      for (size_t I = 0; I < Results.size(); ++I)
        for (const HardenPoint &P : Results[I]->Points)
          if (!P.Check.ok()) {
            Err << "bec: " << S.name(I)
                << ": hardened program failed validation\n";
            Status = ExitUnsound;
          }
    if (Status == ExitSuccess && !Opts.EmitPath.empty())
      Status = emitAssembly(Results[0]->Points[0].Harden.HP.Prog.toString(),
                            Opts, Err);
    break;
  }
  case Command::Report: {
    auto Results = S.evaluateAll<ReportCmdQuery>({Opts.MaxCycles}, Pool);
    if (Json)
      Out << renderReportJson(Names, Results);
    else
      renderReport(S, Results, Out);
    Status = reportErrors(S, Results, Err);
    if (Status == ExitSuccess)
      for (const auto &R : Results)
        if (!R->Validation.sound())
          Status = ExitUnsound;
    break;
  }
  }
  return Status;
}
