//===- tools/Driver.cpp - The `bec` pipeline driver ------------------------===//
//
// The driver is a thin shell over api/Api.h: it parses the command line,
// loads targets into an AnalysisSession, fans the per-target subcommand
// queries out on a thread pool (Session::evaluateAll), and renders the
// result objects through the shared api/Serialize.h serializer (tables or
// JSON). All pipeline logic lives behind the session.
//
// With `--remote host:port` the analysis subcommands offload to a becd
// server (src/serve/) instead: local argument parsing, remote execution
// against the server's shared session pool, byte-identical output. `bec
// serve` runs that server; `bec client` speaks the raw method table.
//
//===----------------------------------------------------------------------===//

#include "Driver.h"

#include "api/Api.h"
#include "fuzz/Fuzzer.h"
#include "net/EventLoop.h"
#include "net/Gateway.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Prometheus.h"
#include "obs/SpanRing.h"
#include "obs/Trace.h"
#include "serve/Client.h"
#include "serve/Service.h"
#include "support/Json.h"
#include "support/JsonParse.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>
#include <thread>

using namespace bec;
using namespace bec::tool;

namespace {

//===----------------------------------------------------------------------===//
// Command line
//===----------------------------------------------------------------------===//

const char *const UsageText = R"(usage: bec <subcommand> [options]

Subcommands:
  analyze    Static fault-space metrics per target (Table III shape).
  campaign   Plan and execute a fault-injection campaign per target.
  schedule   Vulnerability-aware list scheduling; vulnerability per policy.
  harden     BEC-guided selective hardening under a dynamic-instruction
             budget; per target the reached cost/vulnerability Pareto
             point plus closed-loop validation. Exits 3 if any hardened
             program fails validation.
  report     Full pipeline: metrics + bit-level campaign + soundness
             validation. Exits 3 if any target validates unsound.
  fuzz       Differential soundness fuzzing: generate a seeded corpus of
             verifier-legal programs and cross-check the BEC-pruned
             campaign against exhaustive injection, plus print/parse
             round-trip, fate-validation, engine-determinism, harden and
             session oracles. Mismatching programs are delta-debugged to
             1-minimal reproducers. Takes no targets; local only.
             Exits 3 on any mismatch.
  serve      Run the becd analysis server: a shared, cached session pool
             behind a newline-delimited JSON-RPC protocol over TCP.
             Default engine: a poll() event loop with a bounded worker
             pool (connections decoupled from threads, pipelining, typed
             overload errors); --engine threads keeps the legacy
             thread-per-connection server.
  gateway    Front N becd backends behind one becd-indistinguishable
             endpoint: requests route by consistent hashing of their
             program name, so each backend's session cache holds a
             stable shard of the program space. Health-checks, drains
             (gateway/drain) and fails over between backends; `stats
             --remote` through it aggregates every backend.
  client     Speak the becd method table directly:
               bec client [--remote H:P] <method> [targets...] [options]
             Methods: version stats metrics shutdown counts intern
             analyze campaign campaign/run schedule harden report,
             trace/dump [trace-id], log/level [level].
             Against a gateway also: gateway/backends,
             gateway/drain H:P, gateway/undrain H:P.
  stats      Print this process's observability metrics, or — with
             --remote H:P — a live becd server's counters, per-method
             latency percentiles, cache hit rates and gauges.
  version    Print the API version and build type (also: --version).

Target selection (default: all bundled workloads):
  --workload NAME   Add one bundled workload (case-insensitive; repeatable).
  --asm FILE        Add an external assembly file in the bec dialect.
  --all             Add every bundled workload.
  --list-workloads  Print the bundled workload names and exit.

Options:
  --jobs N          Evaluate independent targets on N pool threads
                    (default 1; 0 = hardware concurrency).
  --plan KIND       campaign plan: exhaustive | value | bit (default bit).
  --sample N        campaign: execute a stratified sample of N runs of
                    the planned fault space and report 95% confidence
                    intervals on the effect rates (0 = run everything;
                    default 0).
  --seed S          campaign: PRNG seed of --sample (default 1; same
                    plan + same seed = same sample).
                    fuzz: the corpus seed — same seed + same options =
                    byte-identical corpus and report.
  --threads N       campaign: worker threads of the sharded injection
                    engine, per target (default 1; 0 = hardware
                    concurrency). Never changes the report.
                    fuzz: oracle workers, same guarantee.
  --shard-size N    campaign: runs per engine shard (default: picked
                    from the plan size). Checkpoints record it.
  --prefix-checkpoint[=K|=off]
                    campaign: fork runs from periodic golden snapshots
                    and splice reconverged suffixes (default: on, period
                    auto-tuned; =K snapshots every K cycles; =off
                    replays every suffix). Never changes the report.
  --checkpoint FILE campaign: stream per-shard result batches to FILE
                    (JSONL) so an interrupted campaign can be resumed.
                    Requires exactly one selected target; local only.
                    fuzz: per-program result records, same conventions.
  --resume          campaign: load completed shards from --checkpoint
                    and execute only the remainder. The final report is
                    byte-identical to an uninterrupted run.
                    fuzz: skip programs the checkpoint already settled.
  --progress        campaign: print shard progress to stderr while the
                    engine runs (works with --remote via the streaming
                    campaign/run method).
                    fuzz: print per-program progress to stderr.
  --count N         fuzz: number of generated programs (default 100).
  --bank DIR        fuzz: write minimized reproducers of mismatching
                    programs into DIR as repro_<seed>.s files.
  --emit-corpus DIR fuzz: write the selected corpus into DIR as
                    seed_<seed>.s files and exit without running any
                    oracle (regenerates tests/corpus/).
  --policy KIND     schedule policy for --emit: best | worst | source
                    (default best).
  --emit FILE       schedule: write the scheduled program of the single
                    selected target to FILE as assembly.
                    harden: write the hardened program instead.
  --budget P        harden: max extra dynamic instructions in percent
                    of the baseline run (default 10).
                    fuzz: cap on the cumulative exhaustive fault-space
                    size of the corpus; programs are kept in index
                    order until the budget is spent (0 = unlimited;
                    the CI smoke job bounds its cost this way).
  --sweep A,B,..    harden only: evaluate several budgets per target and
                    print the full cost-vs-vulnerability table.
  --format KIND     output format of any subcommand: text | json
                    (default text).
  --max-cycles N    Truncate campaign/validation windows to N cycles
                    (0 = whole trace; default 0). fuzz: the oracle
                    injection window (0 keeps the default of 48).
  --remote H:P      Run this subcommand on a becd server instead of
                    in-process (output is byte-identical). Also selects
                    the server for `bec client` and `bec stats`
                    (default 127.0.0.1:4690).
  --trace-out FILE  Write a Chrome trace_event JSON file covering this
                    invocation (load in Perfetto or chrome://tracing):
                    session query evaluation, engine workers (runs,
                    steals, snapshot rebuilds, idle time), serve request
                    handling, fuzz oracle stages. Combined with --remote
                    (or `bec client`) the request carries a distributed
                    trace context; the servers' spans are collected via
                    trace/dump and stitched into the same file, so one
                    timeline shows client -> gateway -> backend
                    (failover retries included). Valid with every
                    subcommand; never changes the printed output.
  --profile FILE    campaign: write the engine scaling profile to FILE
                    as JSON — per-worker wall-time split into run /
                    snapshot-rebuild / steal / idle phases, per-shard
                    records, and a machine-readable bottleneck
                    diagnosis. Requires exactly one selected target;
                    local only (profiles this process's engine). Never
                    changes the report.
  --watch SEC       stats: re-print every SEC seconds until interrupted.
                    With --remote, iterations after the first print
                    per-interval deltas (req/s, errors/s, window cache
                    hit rate) instead of repeating cumulative totals.
  --metrics         stats: print the raw Prometheus text exposition
                    instead of the human table (the scrape format the
                    becd `metrics` method returns).
  --host ADDR       serve/gateway: bind address (default 127.0.0.1).
  --port N          serve/gateway: TCP port; 0 picks an ephemeral port
                    (default 4690).
  --port-file FILE  serve/gateway: write the bound port to FILE once
                    listening (for scripts using --port 0).
  --engine KIND     serve: loop (poll() event loop + worker pool, the
                    default) | threads (legacy thread-per-connection).
  --queue-depth N   serve --engine loop: admitted requests that may wait
                    for a worker before the next is answered with error
                    105 `overloaded` (default 256).
  --backends LIST   gateway only (required): comma-separated becd
                    backends, host:port each.
  --health-interval SEC
                    gateway: seconds between per-backend `version`
                    health probes (default 2).
  --log-level LVL   serve/gateway: structured-log verbosity, one of
                    debug | info | warn | error | off (default off —
                    logging is disabled unless this is given). The
                    running daemon's level can be changed later with
                    the log/level method.
  --log-file FILE   serve/gateway: append log lines to FILE instead of
                    stderr.
  --log-format KIND serve/gateway: log line shape, jsonl (default) or
                    logfmt.
  -h, --help        Print this help and exit.

Exit codes: 0 success, 1 usage error, 2 bad input, 3 unsound validation.
)";

enum class Command { Analyze, Campaign, Schedule, Harden, Report, Fuzz,
                     Serve, Gateway, Client, Stats };
enum class ServeEngine { Loop, Threads };
enum class OutputFormat { Text, Json };

struct DriverOptions {
  Command Cmd = Command::Analyze;
  std::vector<std::string> WorkloadNames;
  std::vector<std::string> AsmFiles;
  bool AllWorkloads = false;
  unsigned Jobs = 1;
  bool JobsExplicit = false;
  PlanKind Plan = PlanKind::BitLevel;
  /// campaign: sampling, engine parallelism, checkpointing, progress.
  uint64_t SampleSize = 0;
  uint64_t SampleSeed = 1;
  unsigned CampaignThreads = 1;
  bool CampaignThreadsExplicit = false;
  uint64_t ShardSize = 0;
  bool PrefixCheckpoint = true;
  uint64_t CheckpointEveryK = 0;
  bool PrefixCheckpointExplicit = false;
  std::string CheckpointPath;
  bool Resume = false;
  bool Progress = false;
  bool SeedExplicit = false;
  SchedulePolicy EmitPolicy = SchedulePolicy::BestReliability;
  std::string EmitPath;
  uint64_t MaxCycles = 0;
  /// harden: budgets to evaluate (one entry unless --sweep is given).
  std::vector<double> Budgets = {10.0};
  /// fuzz: corpus size, exhaustive-run budget, reproducer bank,
  /// corpus-emission directory.
  uint64_t FuzzCount = 100;
  uint64_t FuzzBudget = 0;
  std::string BankDir;
  std::string EmitCorpusDir;
  bool FuzzFlagsUsed = false;
  OutputFormat Format = OutputFormat::Text;
  /// --remote: offload to a becd server.
  bool Remote = false;
  std::string RemoteHost = "127.0.0.1";
  uint16_t RemotePort = serve::DefaultPort;
  /// serve/gateway options (--host/--port/--port-file are shared; the
  /// engine and queue knobs are serve-only, the backend list and health
  /// cadence gateway-only).
  std::string ServeHost = "127.0.0.1";
  uint16_t ServePort = serve::DefaultPort;
  std::string PortFile;
  bool ServeFlagsUsed = false;
  ServeEngine Engine = ServeEngine::Loop;
  size_t QueueDepth = 256;
  bool EngineFlagsUsed = false;
  std::vector<std::string> GatewayBackends;
  unsigned HealthIntervalMs = 2000;
  bool GatewayFlagsUsed = false;
  /// serve/gateway structured logging (--log-level/--log-file/
  /// --log-format). Level Off keeps the logger disabled.
  obs::LogLevel LogLevel = obs::LogLevel::Off;
  obs::LogFormat LogFmt = obs::LogFormat::Jsonl;
  std::string LogFilePath;
  bool LogFlagsUsed = false;
  /// client: method name followed by its positional arguments.
  std::vector<std::string> ClientArgs;
  /// --trace-out: write a Chrome trace of this invocation to FILE.
  std::string TraceOutPath;
  /// campaign --profile: write the engine scaling profile to FILE.
  std::string ProfilePath;
  /// stats options.
  uint64_t WatchSeconds = 0;
  bool StatsMetrics = false;
  bool StatsFlagsUsed = false;
};

/// Parses "host:port" (the --remote spelling). False on bad input.
bool parseHostPort(const std::string &S, std::string &Host, uint16_t &Port) {
  size_t Colon = S.rfind(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 >= S.size())
    return false;
  char *End = nullptr;
  unsigned long P = std::strtoul(S.c_str() + Colon + 1, &End, 10);
  if (End != S.c_str() + S.size() || P == 0 || P > 65535)
    return false;
  Host = S.substr(0, Colon);
  Port = static_cast<uint16_t>(P);
  return true;
}

/// Parses a full-string unsigned decimal; nullopt on any trailing garbage.
std::optional<uint64_t> parseUnsigned(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  char *End = nullptr;
  uint64_t V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size())
    return std::nullopt;
  return V;
}

/// Parses a full-string non-negative finite decimal (strtod's "nan"/"inf"
/// spellings would silently disable the budget gate).
std::optional<double> parseBudget(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || !std::isfinite(V) || V < 0)
    return std::nullopt;
  return V;
}

int parseArgs(const std::vector<std::string> &Args, DriverOptions &Opts,
              std::ostream &Out, std::ostream &Err) {
  if (Args.empty()) {
    Err << UsageText;
    return ExitUsage;
  }
  size_t I = 0;
  std::string Sub = Args[I++];
  if (Sub == "-h" || Sub == "--help") {
    Out << UsageText;
    return -1; // Sentinel: handled, exit 0.
  }
  if (Sub == "version" || Sub == "--version") {
    Out << "bec " << BEC_API_VERSION_STRING << " (" << buildType()
        << ", protocol " << serve::ProtocolVersion << ")\n";
    return -1;
  }
  if (Sub == "analyze")
    Opts.Cmd = Command::Analyze;
  else if (Sub == "campaign")
    Opts.Cmd = Command::Campaign;
  else if (Sub == "schedule")
    Opts.Cmd = Command::Schedule;
  else if (Sub == "harden")
    Opts.Cmd = Command::Harden;
  else if (Sub == "report")
    Opts.Cmd = Command::Report;
  else if (Sub == "fuzz")
    Opts.Cmd = Command::Fuzz;
  else if (Sub == "serve")
    Opts.Cmd = Command::Serve;
  else if (Sub == "gateway")
    Opts.Cmd = Command::Gateway;
  else if (Sub == "client")
    Opts.Cmd = Command::Client;
  else if (Sub == "stats")
    Opts.Cmd = Command::Stats;
  else {
    Err << "bec: unknown subcommand '" << Sub << "'\n" << UsageText;
    return ExitUsage;
  }

  // Both `--flag value` and `--flag=value` are accepted: InlineValue
  // holds the part after '=' until the flag's branch consumes it.
  std::optional<std::string> InlineValue;
  auto Value = [&](const std::string &Flag) -> std::optional<std::string> {
    if (InlineValue) {
      std::string V = std::move(*InlineValue);
      InlineValue.reset();
      return V;
    }
    if (I >= Args.size()) {
      Err << "bec: " << Flag << " requires a value\n";
      return std::nullopt;
    }
    return Args[I++];
  };

  while (I < Args.size()) {
    std::string Arg = Args[I++];
    InlineValue.reset();
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-') {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        InlineValue = Arg.substr(Eq + 1);
        Arg.resize(Eq);
      }
    }
    if (Arg == "-h" || Arg == "--help") {
      Out << UsageText;
      return -1;
    } else if (Arg == "--workload") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.WorkloadNames.push_back(*V);
    } else if (Arg == "--asm") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.AsmFiles.push_back(*V);
    } else if (Arg == "--all") {
      Opts.AllWorkloads = true;
    } else if (Arg == "--list-workloads") {
      for (const Workload &W : allWorkloads())
        Out << W.Name << "\n";
      return -1;
    } else if (Arg == "--jobs") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N) {
        Err << "bec: --jobs wants a number, got '" << *V << "'\n";
        return ExitUsage;
      }
      // Kept unclamped: CPU pools clamp to the core count at use sites,
      // while `serve` sizes an I/O-bound connection pool from it.
      Opts.Jobs = static_cast<unsigned>(*N);
      Opts.JobsExplicit = true;
    } else if (Arg == "--max-cycles") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N) {
        Err << "bec: --max-cycles wants a number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.MaxCycles = *N;
    } else if (Arg == "--plan") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLowerAscii(*V);
      if (K == "exhaustive")
        Opts.Plan = PlanKind::Exhaustive;
      else if (K == "value")
        Opts.Plan = PlanKind::ValueLevel;
      else if (K == "bit")
        Opts.Plan = PlanKind::BitLevel;
      else {
        Err << "bec: unknown --plan '" << *V
            << "' (want exhaustive | value | bit)\n";
        return ExitUsage;
      }
    } else if (Arg == "--sample") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N) {
        Err << "bec: --sample wants a number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.SampleSize = *N;
    } else if (Arg == "--seed") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N) {
        Err << "bec: --seed wants a number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.SampleSeed = *N;
      Opts.SeedExplicit = true;
    } else if (Arg == "--threads") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N || *N > 1u << 16) {
        Err << "bec: --threads wants a small number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.CampaignThreads = static_cast<unsigned>(*N);
      Opts.CampaignThreadsExplicit = true;
    } else if (Arg == "--shard-size") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N || *N == 0) {
        Err << "bec: --shard-size wants a positive number, got '" << *V
            << "'\n";
        return ExitUsage;
      }
      Opts.ShardSize = *N;
    } else if (Arg == "--prefix-checkpoint") {
      // Value is optional: bare = on with the auto-tuned period.
      Opts.PrefixCheckpoint = true;
      Opts.CheckpointEveryK = 0;
      Opts.PrefixCheckpointExplicit = true;
      if (InlineValue) {
        auto V = Value(Arg);
        std::string K = toLowerAscii(*V);
        if (K == "off") {
          Opts.PrefixCheckpoint = false;
        } else {
          std::optional<uint64_t> N = parseUnsigned(*V);
          if (!N || *N == 0) {
            Err << "bec: --prefix-checkpoint wants 'off' or a positive "
                   "cycle period, got '" << *V << "'\n";
            return ExitUsage;
          }
          Opts.CheckpointEveryK = *N;
        }
      }
    } else if (Arg == "--checkpoint") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.CheckpointPath = *V;
    } else if (Arg == "--resume") {
      Opts.Resume = true;
    } else if (Arg == "--progress") {
      Opts.Progress = true;
    } else if (Arg == "--policy") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLowerAscii(*V);
      if (K == "best")
        Opts.EmitPolicy = SchedulePolicy::BestReliability;
      else if (K == "worst")
        Opts.EmitPolicy = SchedulePolicy::WorstReliability;
      else if (K == "source")
        Opts.EmitPolicy = SchedulePolicy::SourceOrder;
      else {
        Err << "bec: unknown --policy '" << *V
            << "' (want best | worst | source)\n";
        return ExitUsage;
      }
    } else if (Arg == "--emit") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.EmitPath = *V;
    } else if (Arg == "--budget") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      // The subcommand is parsed before any flag, so --budget can mean
      // two things: harden's percentage and fuzz's run count.
      if (Opts.Cmd == Command::Fuzz) {
        std::optional<uint64_t> N = parseUnsigned(*V);
        if (!N) {
          Err << "bec: fuzz --budget wants a number of exhaustive runs, "
                 "got '" << *V << "'\n";
          return ExitUsage;
        }
        Opts.FuzzBudget = *N;
        Opts.FuzzFlagsUsed = true;
      } else {
        std::optional<double> B = parseBudget(*V);
        if (!B) {
          Err << "bec: --budget wants a non-negative number, got '" << *V
              << "'\n";
          return ExitUsage;
        }
        Opts.Budgets = {*B};
      }
    } else if (Arg == "--count") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N || *N == 0) {
        Err << "bec: --count wants a positive number, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.FuzzCount = *N;
      Opts.FuzzFlagsUsed = true;
    } else if (Arg == "--bank") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.BankDir = *V;
      Opts.FuzzFlagsUsed = true;
    } else if (Arg == "--emit-corpus") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.EmitCorpusDir = *V;
      Opts.FuzzFlagsUsed = true;
    } else if (Arg == "--sweep") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.Budgets.clear();
      std::string Item;
      std::stringstream Stream(*V);
      while (std::getline(Stream, Item, ',')) {
        std::optional<double> B = parseBudget(Item);
        if (!B) {
          Err << "bec: --sweep wants comma-separated budgets, got '" << *V
              << "'\n";
          return ExitUsage;
        }
        Opts.Budgets.push_back(*B);
      }
      if (Opts.Budgets.empty()) {
        Err << "bec: --sweep needs at least one budget\n";
        return ExitUsage;
      }
    } else if (Arg == "--format") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLowerAscii(*V);
      if (K == "text")
        Opts.Format = OutputFormat::Text;
      else if (K == "json")
        Opts.Format = OutputFormat::Json;
      else {
        Err << "bec: unknown --format '" << *V << "' (want text | json)\n";
        return ExitUsage;
      }
    } else if (Arg == "--remote") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      if (!parseHostPort(*V, Opts.RemoteHost, Opts.RemotePort)) {
        Err << "bec: --remote wants host:port, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.Remote = true;
    } else if (Arg == "--host") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.ServeHost = *V;
      Opts.ServeFlagsUsed = true;
    } else if (Arg == "--port") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N || *N > 65535) {
        Err << "bec: --port wants a number in 0..65535, got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.ServePort = static_cast<uint16_t>(*N);
      Opts.ServeFlagsUsed = true;
    } else if (Arg == "--port-file") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.PortFile = *V;
      Opts.ServeFlagsUsed = true;
    } else if (Arg == "--engine") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string K = toLowerAscii(*V);
      if (K == "loop")
        Opts.Engine = ServeEngine::Loop;
      else if (K == "threads")
        Opts.Engine = ServeEngine::Threads;
      else {
        Err << "bec: unknown --engine '" << *V << "' (want loop | threads)\n";
        return ExitUsage;
      }
      Opts.EngineFlagsUsed = true;
    } else if (Arg == "--queue-depth") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N || *N > 1u << 20) {
        Err << "bec: --queue-depth wants a number in 0..1048576, got '" << *V
            << "'\n";
        return ExitUsage;
      }
      Opts.QueueDepth = static_cast<size_t>(*N);
      Opts.EngineFlagsUsed = true;
    } else if (Arg == "--backends") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::string Item;
      std::stringstream Stream(*V);
      while (std::getline(Stream, Item, ',')) {
        std::string H;
        uint16_t P = 0;
        if (!parseHostPort(Item, H, P)) {
          Err << "bec: --backends wants comma-separated host:port entries, "
                 "got '" << Item << "'\n";
          return ExitUsage;
        }
        Opts.GatewayBackends.push_back(Item);
      }
      if (Opts.GatewayBackends.empty()) {
        Err << "bec: --backends needs at least one host:port\n";
        return ExitUsage;
      }
      Opts.GatewayFlagsUsed = true;
    } else if (Arg == "--health-interval") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N || *N == 0 || *N > 3600) {
        Err << "bec: --health-interval wants seconds in 1..3600, got '" << *V
            << "'\n";
        return ExitUsage;
      }
      Opts.HealthIntervalMs = static_cast<unsigned>(*N * 1000);
      Opts.GatewayFlagsUsed = true;
    } else if (Arg == "--trace-out") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.TraceOutPath = *V;
    } else if (Arg == "--profile") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.ProfilePath = *V;
    } else if (Arg == "--log-level") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<obs::LogLevel> L = obs::parseLogLevel(*V);
      if (!L) {
        Err << "bec: --log-level wants debug | info | warn | error | off, "
               "got '" << *V << "'\n";
        return ExitUsage;
      }
      Opts.LogLevel = *L;
      Opts.LogFlagsUsed = true;
    } else if (Arg == "--log-file") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      Opts.LogFilePath = *V;
      Opts.LogFlagsUsed = true;
    } else if (Arg == "--log-format") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<obs::LogFormat> F = obs::parseLogFormat(*V);
      if (!F) {
        Err << "bec: --log-format wants jsonl or logfmt, got '" << *V
            << "'\n";
        return ExitUsage;
      }
      Opts.LogFmt = *F;
      Opts.LogFlagsUsed = true;
    } else if (Arg == "--watch") {
      auto V = Value(Arg);
      if (!V)
        return ExitUsage;
      std::optional<uint64_t> N = parseUnsigned(*V);
      if (!N || *N == 0 || *N > 86400) {
        Err << "bec: --watch wants seconds in 1..86400, got '" << *V
            << "'\n";
        return ExitUsage;
      }
      Opts.WatchSeconds = *N;
      Opts.StatsFlagsUsed = true;
    } else if (Arg == "--metrics") {
      Opts.StatsMetrics = true;
      Opts.StatsFlagsUsed = true;
    } else if (Opts.Cmd == Command::Client && !Arg.empty() && Arg[0] != '-') {
      // Client grammar: the method, then its positional target names.
      Opts.ClientArgs.push_back(Arg);
    } else {
      Err << "bec: unknown option '" << Arg << "'\n" << UsageText;
      return ExitUsage;
    }
    if (InlineValue) {
      // A flag that takes no value left the `=value` unconsumed.
      Err << "bec: " << Arg << " takes no value\n";
      return ExitUsage;
    }
  }
  if (!Opts.EmitPath.empty() && Opts.Cmd != Command::Schedule &&
      Opts.Cmd != Command::Harden) {
    Err << "bec: --emit is only valid with schedule or harden\n";
    return ExitUsage;
  }
  // Campaign-engine flags: --sample/--seed/--threads/--shard-size and
  // --progress shape campaign execution (and are forwarded by `client`
  // for campaign methods — silently ignoring them on other methods
  // would run a different campaign than the user asked for); `fuzz`
  // reuses the seed/threads/progress/checkpoint vocabulary with the
  // same determinism contract.
  bool ClientCampaign =
      Opts.Cmd == Command::Client && !Opts.ClientArgs.empty() &&
      (Opts.ClientArgs[0] == "campaign" ||
       Opts.ClientArgs[0] == "campaign/run");
  if ((Opts.SampleSize || Opts.ShardSize) &&
      Opts.Cmd != Command::Campaign && !ClientCampaign) {
    Err << "bec: --sample/--shard-size are only valid with campaign "
           "(or client campaign methods)\n";
    return ExitUsage;
  }
  if (Opts.PrefixCheckpointExplicit && Opts.Cmd != Command::Campaign) {
    Err << "bec: --prefix-checkpoint is only valid with campaign\n";
    return ExitUsage;
  }
  if ((Opts.SeedExplicit || Opts.CampaignThreadsExplicit || Opts.Progress) &&
      Opts.Cmd != Command::Campaign && Opts.Cmd != Command::Fuzz &&
      !ClientCampaign) {
    Err << "bec: --seed/--threads/--progress are only valid with campaign "
           "or fuzz (or client campaign methods)\n";
    return ExitUsage;
  }
  if ((!Opts.CheckpointPath.empty() || Opts.Resume) &&
      Opts.Cmd != Command::Campaign && Opts.Cmd != Command::Fuzz) {
    Err << "bec: --checkpoint/--resume are only valid with campaign or "
           "fuzz\n";
    return ExitUsage;
  }
  if (Opts.FuzzFlagsUsed && Opts.Cmd != Command::Fuzz) {
    Err << "bec: --count/--bank/--emit-corpus are only valid with fuzz\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Fuzz &&
      (Opts.AllWorkloads || !Opts.WorkloadNames.empty() ||
       !Opts.AsmFiles.empty())) {
    // The fuzzer generates its own corpus from the seed; target flags
    // would silently select nothing.
    Err << "bec: fuzz generates its own programs and takes no "
           "--workload/--all/--asm targets\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Fuzz && Opts.Remote) {
    Err << "bec: fuzz runs locally; drop --remote\n";
    return ExitUsage;
  }
  if (Opts.Resume && Opts.CheckpointPath.empty()) {
    Err << "bec: --resume requires --checkpoint FILE\n";
    return ExitUsage;
  }
  if (!Opts.CheckpointPath.empty() && Opts.Remote) {
    // The checkpoint would describe a campaign executing on the server;
    // resuming it locally later would silently re-run everything.
    Err << "bec: --checkpoint/--resume run locally; drop --remote\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Harden && !Opts.EmitPath.empty() &&
      Opts.Budgets.size() != 1) {
    Err << "bec: harden --emit requires a single --budget\n";
    return ExitUsage;
  }
  if ((Opts.Cmd == Command::Serve || Opts.Cmd == Command::Gateway) &&
      Opts.Remote) {
    Err << "bec: --remote does not combine with serve or gateway\n";
    return ExitUsage;
  }
  if (Opts.Cmd != Command::Serve && Opts.Cmd != Command::Gateway &&
      Opts.ServeFlagsUsed) {
    // Silently ignoring these would let `bec client shutdown --port N`
    // address a different server than the user meant; --remote host:port
    // is the client-side spelling.
    Err << "bec: --host/--port/--port-file are only valid with serve or "
           "gateway (clients use --remote host:port)\n";
    return ExitUsage;
  }
  if (Opts.Cmd != Command::Serve && Opts.EngineFlagsUsed) {
    Err << "bec: --engine/--queue-depth are only valid with serve\n";
    return ExitUsage;
  }
  if (Opts.Cmd != Command::Gateway && Opts.GatewayFlagsUsed) {
    Err << "bec: --backends/--health-interval are only valid with gateway\n";
    return ExitUsage;
  }
  if (Opts.LogFlagsUsed && Opts.Cmd != Command::Serve &&
      Opts.Cmd != Command::Gateway) {
    Err << "bec: --log-level/--log-file/--log-format are only valid with "
           "serve or gateway\n";
    return ExitUsage;
  }
  if (!Opts.ProfilePath.empty() && Opts.Cmd != Command::Campaign) {
    Err << "bec: --profile is only valid with campaign\n";
    return ExitUsage;
  }
  if (!Opts.ProfilePath.empty() && Opts.Remote) {
    // The profile describes this process's engine workers; a remote
    // campaign runs them in the server.
    Err << "bec: --profile profiles the local engine; drop --remote\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Gateway && Opts.GatewayBackends.empty()) {
    Err << "bec: gateway requires --backends H:P[,H:P...]\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Gateway &&
      (Opts.AllWorkloads || !Opts.WorkloadNames.empty() ||
       !Opts.AsmFiles.empty())) {
    // The gateway forwards; its backends own the targets.
    Err << "bec: gateway takes no --workload/--all/--asm targets\n";
    return ExitUsage;
  }
  if (Opts.StatsFlagsUsed && Opts.Cmd != Command::Stats) {
    Err << "bec: --watch/--metrics are only valid with stats\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Stats &&
      (Opts.AllWorkloads || !Opts.WorkloadNames.empty() ||
       !Opts.AsmFiles.empty())) {
    // Stats describes a process (this one or a server), not targets.
    Err << "bec: stats takes no --workload/--all/--asm targets\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Client && Opts.ClientArgs.empty()) {
    Err << "bec: client needs a method, e.g. `bec client analyze bitcount`\n";
    return ExitUsage;
  }
  if (Opts.Cmd == Command::Client &&
      (Opts.AllWorkloads || !Opts.WorkloadNames.empty() ||
       !Opts.AsmFiles.empty())) {
    // These select targets for local sessions; silently ignoring them
    // would run the wrong scope on the server.
    Err << "bec: client takes positional target names, not "
           "--workload/--all/--asm\n";
    return ExitUsage;
  }
  return ExitSuccess;
}

//===----------------------------------------------------------------------===//
// Target loading
//===----------------------------------------------------------------------===//

int collectTargets(const DriverOptions &Opts, AnalysisSession &S,
                   std::ostream &Err) {
  // --all plus an explicit --workload (or a repeated name in any casing)
  // would otherwise run and report the same target twice; skip names the
  // session already has.
  bool Selected = Opts.AllWorkloads || !Opts.WorkloadNames.empty() ||
                  !Opts.AsmFiles.empty();
  if (Opts.AllWorkloads || !Selected)
    S.addAllWorkloads();

  for (const std::string &Name : Opts.WorkloadNames) {
    const Workload *W = findWorkloadAnyCase(Name);
    if (!W) {
      Err << "bec: unknown workload '" << Name
          << "'; --list-workloads prints the bundled names\n";
      return ExitBadInput;
    }
    if (!S.findTarget(W->Name))
      S.addProgram(W->Name, loadWorkload(*W));
  }

  for (const std::string &Path : Opts.AsmFiles) {
    if (S.findTarget(Path))
      continue;
    std::string Error;
    if (!S.addAsmFile(Path, Error)) {
      Err << "bec: " << Error << "\n";
      return ExitBadInput;
    }
  }
  return ExitSuccess;
}

//===----------------------------------------------------------------------===//
// Shared epilogue
//===----------------------------------------------------------------------===//

template <class R> using ResultVec = std::vector<std::shared_ptr<const R>>;

std::vector<std::string> targetNames(const AnalysisSession &S) {
  std::vector<std::string> Names;
  for (size_t I = 0; I < S.numTargets(); ++I)
    Names.push_back(S.name(I));
  return Names;
}

/// Reports per-target errors; ExitBadInput if any target failed.
template <class R>
int reportErrors(const AnalysisSession &S, const ResultVec<R> &Results,
                 std::ostream &Err) {
  int Status = ExitSuccess;
  for (size_t I = 0; I < Results.size(); ++I)
    if (!Results[I]->Error.empty()) {
      Err << "bec: " << S.name(I) << ": " << Results[I]->Error << "\n";
      Status = ExitBadInput;
    }
  return Status;
}

/// One --progress line, shared verbatim by the local engine callback and
/// the remote campaign/run progress-frame printer. The base counts are
/// followed by live engine telemetry (throughput from the monotonic
/// clock, ETA, and the steal/rebuild counts that explain flat thread
/// scaling); the telemetry block is omitted when the frame carries none
/// (an older remote server).
std::string progressLine(const std::string &Target, uint64_t ShardsDone,
                         uint64_t Shards, uint64_t RunsDone, uint64_t Runs,
                         uint64_t ExecutedRuns, double ElapsedSeconds,
                         uint64_t Steals, uint64_t Rebuilds) {
  std::string Line = "bec: campaign: " + Target + ": " +
                     std::to_string(ShardsDone) + "/" +
                     std::to_string(Shards) + " shards, " +
                     std::to_string(RunsDone) + "/" + std::to_string(Runs) +
                     " runs";
  if (ElapsedSeconds > 0 && ExecutedRuns) {
    double Rate = double(ExecutedRuns) / ElapsedSeconds;
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), " | %.0f runs/s, %.1fs elapsed", Rate,
                  ElapsedSeconds);
    Line += Buf;
    if (Runs > RunsDone && Rate > 0) {
      std::snprintf(Buf, sizeof(Buf), ", eta %.1fs",
                    double(Runs - RunsDone) / Rate);
      Line += Buf;
    }
    Line += ", " + std::to_string(Steals) + " steals, " +
            std::to_string(Rebuilds) + " rebuilds";
  }
  return Line + "\n";
}

int emitAssembly(const std::string &Asm, const DriverOptions &Opts,
                 std::ostream &Err) {
  std::ofstream OutFile(Opts.EmitPath);
  if (!OutFile) {
    Err << "bec: cannot write '" << Opts.EmitPath << "'\n";
    return ExitBadInput;
  }
  OutFile << Asm;
  return ExitSuccess;
}

//===----------------------------------------------------------------------===//
// bec fuzz
//===----------------------------------------------------------------------===//

/// Program seeds render as fixed-width hex everywhere (reports, banked
/// reproducer names, checkpoints) so they can be grepped across all
/// three.
std::string seedHex(uint64_t Seed) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(Seed));
  return Buf;
}

std::string renderFuzzText(const fuzz::FuzzResult &R, uint64_t Seed) {
  std::string Out = "Fuzz corpus: seed " + std::to_string(Seed) + ", " +
                    std::to_string(R.Programs) + " programs";
  if (R.SkippedByBudget)
    Out += " (" + std::to_string(R.SkippedByBudget) + " beyond --budget)";
  if (R.Interrupted)
    Out += " [interrupted]";
  Out += "\n";

  Table Tbl({"Programs", "Exhaustive", "Pruned", "Masked", "Benign", "SDC",
             "Trap", "Hang", "Mismatches", "Seconds"});
  Tbl.row()
      .cell(R.Programs)
      .cell(R.ExhaustiveRuns)
      .cell(R.PrunedRuns)
      .cell(R.PrunedEffects[size_t(FaultEffect::Masked)])
      .cell(R.PrunedEffects[size_t(FaultEffect::Benign)])
      .cell(R.PrunedEffects[size_t(FaultEffect::SDC)])
      .cell(R.PrunedEffects[size_t(FaultEffect::Trap)])
      .cell(R.PrunedEffects[size_t(FaultEffect::Hang)])
      .cell(uint64_t(R.Mismatches.size()))
      .cell(R.Seconds, 2);
  Out += Tbl.render();

  Out += "Idiom coverage:";
  for (size_t I = 0; I < fuzz::NumIdioms; ++I)
    Out += std::string(" ") + fuzz::idiomName(fuzz::Idiom(I)) + " " +
           std::to_string(R.IdiomCount[I]);
  Out += "\n";

  for (const fuzz::FuzzMismatch &M : R.Mismatches) {
    Out += "mismatch: program " + std::to_string(M.Index) + " (seed " +
           seedHex(M.Seed) + "): [" + M.Oracle + "] " + M.Detail + "\n";
    if (!M.BankedPath.empty())
      Out += "  reproducer: " + M.BankedPath + "\n";
  }
  return Out;
}

std::string renderFuzzJson(const fuzz::FuzzResult &R, uint64_t Seed) {
  JsonWriter W;
  W.beginObject();
  W.key("fuzz").beginObject();
  W.key("seed").value(Seed);
  W.key("programs").value(R.Programs);
  W.key("skipped_by_budget").value(R.SkippedByBudget);
  W.key("executed").value(R.Executed);
  W.key("resumed").value(R.Resumed);
  W.key("interrupted").value(R.Interrupted);
  W.key("exhaustive_runs").value(R.ExhaustiveRuns);
  W.key("pruned_runs").value(R.PrunedRuns);
  W.key("pruned_effects").beginObject();
  for (size_t I = 0; I < NumFaultEffects; ++I)
    W.key(toLowerAscii(faultEffectName(FaultEffect(I))))
        .value(R.PrunedEffects[I]);
  W.endObject();
  W.key("idioms").beginObject();
  for (size_t I = 0; I < fuzz::NumIdioms; ++I)
    W.key(fuzz::idiomName(fuzz::Idiom(I))).value(R.IdiomCount[I]);
  W.endObject();
  W.key("mismatches").beginArray();
  for (const fuzz::FuzzMismatch &M : R.Mismatches) {
    W.beginObject();
    W.key("program").value(M.Index);
    W.key("seed").value(seedHex(M.Seed));
    W.key("oracle").value(M.Oracle);
    W.key("detail").value(M.Detail);
    W.key("num_mismatches").value(M.NumMismatches);
    if (!M.BankedPath.empty())
      W.key("reproducer").value(M.BankedPath);
    W.endObject();
  }
  W.endArray();
  W.key("seconds").value(R.Seconds);
  W.endObject();
  W.endObject();
  std::string Out = W.take();
  Out += "\n";
  return Out;
}

/// `bec fuzz`: run (or emit) the differential fuzzing corpus.
int runFuzzCommand(const DriverOptions &Opts, std::ostream &Out,
                   std::ostream &Err) {
  fuzz::FuzzOptions FO;
  FO.Seed = Opts.SampleSeed;
  FO.Count = Opts.FuzzCount;
  FO.Budget = Opts.FuzzBudget;
  FO.Threads = ThreadPool::clampJobs(Opts.CampaignThreads);
  FO.CheckpointPath = Opts.CheckpointPath;
  FO.Resume = Opts.Resume;
  FO.BankDir = Opts.BankDir;
  if (Opts.MaxCycles)
    FO.Oracle.MaxCycles = Opts.MaxCycles;

  if (!Opts.EmitCorpusDir.empty()) {
    std::string Error = fuzz::emitCorpus(FO, Opts.EmitCorpusDir);
    if (!Error.empty()) {
      Err << "bec: fuzz: " << Error << "\n";
      return ExitBadInput;
    }
    Out << "bec: fuzz: corpus written to '" << Opts.EmitCorpusDir << "'\n";
    return ExitSuccess;
  }

  if (Opts.Progress)
    FO.OnProgress = [&Err](const fuzz::FuzzProgress &P) {
      // Called under the fuzzer's aggregation lock; no extra mutex.
      Err << "bec: fuzz: " << P.Done << "/" << P.Total << " programs, "
          << P.Mismatches << " mismatches\n";
    };

  fuzz::FuzzResult R = fuzz::runFuzz(FO);
  if (!R.Error.empty()) {
    Err << "bec: fuzz: " << R.Error << "\n";
    return ExitBadInput;
  }
  Out << (Opts.Format == OutputFormat::Json ? renderFuzzJson(R, FO.Seed)
                                            : renderFuzzText(R, FO.Seed));
  if (Opts.Resume)
    Err << "bec: fuzz: resumed " << R.Resumed << " of " << R.Programs
        << " programs from '" << Opts.CheckpointPath << "'\n";
  return R.Mismatches.empty() ? ExitSuccess : ExitUnsound;
}

//===----------------------------------------------------------------------===//
// becd: serve, client, --remote
//===----------------------------------------------------------------------===//

const char *commandMethod(Command C) {
  switch (C) {
  case Command::Analyze:
    return "analyze";
  case Command::Campaign:
    return "campaign";
  case Command::Schedule:
    return "schedule";
  case Command::Harden:
    return "harden";
  case Command::Report:
    return "report";
  default:
    return "";
  }
}

std::optional<Command> subcommandForMethod(const std::string &M) {
  if (M == "analyze")
    return Command::Analyze;
  if (M == "campaign" || M == "campaign/run")
    return Command::Campaign;
  if (M == "schedule")
    return Command::Schedule;
  if (M == "harden")
    return Command::Harden;
  if (M == "report")
    return Command::Report;
  return std::nullopt;
}

/// Serializes the params of one subcommand method from the parsed command
/// line, for \p Targets (empty = the server's default, all workloads).
std::string subcommandParams(Command Which, const DriverOptions &Opts,
                             const std::vector<std::string> &Targets,
                             bool WithEmit) {
  JsonWriter W;
  W.beginObject();
  if (!Targets.empty()) {
    W.key("targets").beginArray();
    for (const std::string &T : Targets)
      W.value(T);
    W.endArray();
  }
  W.key("format").value(Opts.Format == OutputFormat::Json ? "json" : "text");
  if (Opts.Jobs != 1)
    W.key("jobs").value(uint64_t(std::min(Opts.Jobs, 1u << 16)));
  switch (Which) {
  case Command::Campaign:
    W.key("plan").value(Opts.Plan == PlanKind::Exhaustive    ? "exhaustive"
                        : Opts.Plan == PlanKind::ValueLevel  ? "value"
                                                             : "bit");
    W.key("max_cycles").value(Opts.MaxCycles);
    if (Opts.SampleSize) {
      W.key("sample").value(Opts.SampleSize);
      W.key("seed").value(Opts.SampleSeed);
    }
    if (Opts.CampaignThreadsExplicit)
      W.key("threads").value(uint64_t(Opts.CampaignThreads));
    if (Opts.ShardSize)
      W.key("shard_size").value(Opts.ShardSize);
    if (Opts.PrefixCheckpointExplicit) {
      W.key("prefix_checkpoint").value(Opts.PrefixCheckpoint);
      if (Opts.CheckpointEveryK)
        W.key("checkpoint_every_k").value(Opts.CheckpointEveryK);
    }
    if (Opts.Progress)
      W.key("progress").value(true);
    break;
  case Command::Schedule:
    if (WithEmit)
      W.key("emit").value(
          Opts.EmitPolicy == SchedulePolicy::SourceOrder        ? "source"
          : Opts.EmitPolicy == SchedulePolicy::BestReliability  ? "best"
                                                                : "worst");
    break;
  case Command::Harden:
    W.key("budgets").beginArray();
    for (double B : Opts.Budgets)
      W.value(B);
    W.endArray();
    if (WithEmit)
      W.key("emit").value(true);
    break;
  case Command::Report:
    W.key("max_cycles").value(Opts.MaxCycles);
    break;
  default:
    break;
  }
  W.endObject();
  return W.take();
}

/// Prints a server error reply as CLI diagnostics (expanding structured
/// assembler diagnostics the way the local path prints them).
void reportReplyError(const serve::Reply &R, const std::string &AsmPath,
                      std::ostream &Err) {
  if (R.Code == serve::ErrorCode::BadAsm) {
    if (const JsonValue *Diags = R.ErrorData.member("diags")) {
      // Mirrors AnalysisSession::addAsmFile's local diagnostic shape.
      Err << "bec: " << AsmPath << " failed to assemble:\n";
      if (const auto *Arr = Diags->asArray())
        for (const JsonValue &D : *Arr) {
          uint64_t Line = D.memberU64("line").value_or(0);
          uint64_t Col = D.memberU64("col").value_or(0);
          const std::string *Msg = D.memberString("message");
          Err << "line " << Line;
          if (Col != 0)
            Err << ", col " << Col;
          Err << ": " << (Msg ? *Msg : std::string()) << "\n";
        }
      // The local path prints "bec: <error>\n" where the error itself
      // ends in a newline; keep the trailing blank line identical.
      Err << "\n";
      return;
    }
  }
  Err << "bec: " << R.errorText() << "\n";
}

/// The canonical target list the local path would have produced: deduped
/// workload canonical names, then external asm file paths.
int remoteTargetList(const DriverOptions &Opts,
                     std::vector<std::string> &Targets, std::ostream &Err) {
  auto Add = [&](const std::string &Name) {
    for (const std::string &T : Targets)
      if (T == Name)
        return;
    Targets.push_back(Name);
  };
  bool Selected = Opts.AllWorkloads || !Opts.WorkloadNames.empty() ||
                  !Opts.AsmFiles.empty();
  if (Opts.AllWorkloads || !Selected)
    for (const Workload &W : allWorkloads())
      Add(W.Name);
  for (const std::string &Name : Opts.WorkloadNames) {
    const Workload *W = findWorkloadAnyCase(Name);
    if (!W) {
      Err << "bec: unknown workload '" << Name
          << "'; --list-workloads prints the bundled names\n";
      return ExitBadInput;
    }
    Add(W->Name);
  }
  for (const std::string &Path : Opts.AsmFiles)
    Add(Path);
  return ExitSuccess;
}

/// Reads \p Path into `intern` method params ({"name","asm"}); nullopt
/// with a diagnostic when the file cannot be read.
std::optional<std::string> internParamsForFile(const std::string &Path,
                                               std::ostream &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err << "bec: cannot open '" << Path << "'\n";
    return std::nullopt;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  JsonWriter P;
  P.beginObject();
  P.key("name").value(Path);
  P.key("asm").value(Buf.str());
  P.endObject();
  return P.take();
}

/// Pools \p Path on the server under its path name.
int internAsmFile(serve::Client &C, const std::string &Path,
                  std::ostream &Err) {
  std::optional<std::string> Params = internParamsForFile(Path, Err);
  if (!Params)
    return ExitBadInput;
  serve::Reply R = C.call("intern", *Params);
  if (!R.Ok) {
    reportReplyError(R, Path, Err);
    return ExitBadInput;
  }
  return ExitSuccess;
}

/// Executes one already-parsed subcommand method reply: print output and
/// diagnostics, honor --emit, adopt the server's exit code.
int consumeSubcommandReply(const serve::Reply &R, const DriverOptions &Opts,
                           bool WithEmit, std::ostream &Out,
                           std::ostream &Err) {
  const std::string *Output = R.Result.memberString("output");
  std::optional<uint64_t> Exit = R.Result.memberU64("exit");
  if (!Output || !Exit || *Exit > ExitUnsound) {
    Err << "bec: malformed result from server\n";
    return ExitBadInput;
  }
  Out << *Output;
  if (const std::string *Diag = R.Result.memberString("diag"))
    Err << *Diag;
  int Status = static_cast<int>(*Exit);
  if (Status == ExitSuccess && WithEmit) {
    const std::string *Emit = R.Result.memberString("emit");
    if (!Emit) {
      Err << "bec: server returned no emitted assembly\n";
      return ExitBadInput;
    }
    Status = emitAssembly(*Emit, Opts, Err);
  }
  return Status;
}

/// Prints one campaign/run progress frame exactly as the local engine's
/// --progress callback would have.
void printProgress(const JsonValue &P, std::ostream &Err) {
  const std::string *Target = P.memberString("target");
  double Elapsed = 0;
  if (const JsonValue *E = P.member("elapsed_s"))
    Elapsed = E->asDouble().value_or(0);
  Err << progressLine(Target ? *Target : std::string("?"),
                      P.memberU64("shards_done").value_or(0),
                      P.memberU64("shards").value_or(0),
                      P.memberU64("runs_done").value_or(0),
                      P.memberU64("runs").value_or(0),
                      P.memberU64("executed_runs").value_or(0), Elapsed,
                      P.memberU64("steals").value_or(0),
                      P.memberU64("snapshot_rebuilds").value_or(0));
}

//===----------------------------------------------------------------------===//
// Distributed tracing (--trace-out with --remote / client)
//===----------------------------------------------------------------------===//

/// One span fetched from a server's trace/dump ring, tagged with the
/// process label the dump gave it ("becd", "gateway", or a backend's
/// host:port when the gateway merged its backends' rings).
struct RemoteSpan {
  std::string Process;
  std::string Name;
  std::string TraceId;
  std::string SpanId;
  std::string ParentSpan;
  std::string ArgsJson; ///< Pre-rendered {"k":v,...}; empty = none.
  uint64_t StartUs = 0; ///< Wall clock, epoch microseconds.
  uint64_t DurUs = 0;
  uint64_t Tid = 0;
};

/// Distributed-trace state of one invocation. Armed (non-empty TraceId)
/// when --trace-out combines with a remote command: the remote runners
/// inject the context into every request and collect the servers' spans
/// afterwards; runDriver stitches them into the written trace file.
struct DistTrace {
  std::string TraceId;    ///< 32 hex chars; names the whole request tree.
  std::string RootSpanId; ///< The local root span, parent of every hop.
  uint64_t WallBaseUs = 0; ///< Wall clock at traceBegin (epoch us).
  std::vector<RemoteSpan> Spans;

  bool armed() const { return !TraceId.empty(); }
};

uint64_t wallNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Best-effort fetch of the server's spans of \p TraceId (a gateway
/// merges its backends' rings into the same reply). Failures are
/// swallowed: a server without trace/dump still served the command, it
/// just contributes no spans to the stitched file.
void collectRemoteSpans(serve::Client &C, const std::string &TraceId,
                        std::vector<RemoteSpan> &Out) {
  JsonWriter W;
  W.beginObject();
  W.key("trace_id").value(TraceId);
  W.endObject();
  serve::Reply R = C.call("trace/dump", W.take());
  if (!R.Ok)
    return;
  const JsonValue *Spans = R.Result.member("spans");
  const std::vector<JsonValue> *Arr = Spans ? Spans->asArray() : nullptr;
  if (!Arr)
    return;
  for (const JsonValue &V : *Arr) {
    auto Str = [&](const char *Key) {
      const std::string *M = V.memberString(Key);
      return M ? *M : std::string();
    };
    RemoteSpan S;
    S.Name = Str("name");
    S.TraceId = Str("trace_id");
    S.SpanId = Str("span_id");
    S.ParentSpan = Str("parent_span");
    S.Process = Str("process");
    S.StartUs = V.memberU64("start_us").value_or(0);
    S.DurUs = V.memberU64("dur_us").value_or(0);
    S.Tid = V.memberU64("tid").value_or(0);
    if (const JsonValue *A = V.member("args"))
      S.ArgsJson = A->toJson();
    if (S.Name.empty() || S.SpanId.empty())
      continue;
    if (S.Process.empty())
      S.Process = "server";
    Out.push_back(std::move(S));
  }
}

/// Splices the collected remote spans into \p Doc (a rendered Chrome
/// trace document, which always ends "]}\n") as B/E event pairs: one
/// synthetic pid per remote process (the local process is pid 1),
/// labeled with a process_name metadata event, timestamps re-based from
/// wall clock onto the local trace clock via WallBaseUs. The result is
/// one Perfetto-loadable timeline showing client -> gateway -> backend,
/// with each event's args carrying its span identity for tree checks.
void spliceRemoteSpans(std::string &Doc, const DistTrace &DT) {
  if (DT.Spans.empty())
    return;
  size_t Close = Doc.rfind("]}");
  if (Close == std::string::npos)
    return;
  bool NeedComma = Close > 0 && Doc[Close - 1] != '[';

  std::string Ins;
  auto Push = [&](const std::string &Obj) {
    if (NeedComma)
      Ins += ',';
    NeedComma = true;
    Ins += Obj;
  };
  // Process label -> synthetic pid (index + 2; the local tracer is 1).
  std::vector<std::string> Pids;
  auto PidOf = [&](const std::string &Process) {
    for (size_t I = 0; I < Pids.size(); ++I)
      if (Pids[I] == Process)
        return static_cast<uint64_t>(I + 2);
    Pids.push_back(Process);
    uint64_t Pid = Pids.size() + 1;
    JsonWriter MW;
    MW.beginObject();
    MW.key("name").value("process_name");
    MW.key("ph").value("M");
    MW.key("pid").value(Pid);
    MW.key("tid").value(uint64_t(0));
    MW.key("args").beginObject();
    MW.key("name").value(Process);
    MW.endObject();
    MW.endObject();
    Push(MW.take());
    return Pid;
  };

  for (const RemoteSpan &S : DT.Spans) {
    uint64_t Pid = PidOf(S.Process);
    uint64_t Ts = S.StartUs >= DT.WallBaseUs ? S.StartUs - DT.WallBaseUs : 0;

    // The span's identity rides on the B event's args, merged after any
    // args the server recorded (same pre-rendered-splice idiom as the
    // local tracer).
    JsonWriter AW;
    AW.beginObject();
    AW.key("trace_id").value(S.TraceId);
    AW.key("span_id").value(S.SpanId);
    if (!S.ParentSpan.empty())
      AW.key("parent_span").value(S.ParentSpan);
    AW.endObject();
    std::string Args = AW.take();
    if (S.ArgsJson.size() > 2) {
      std::string Merged = S.ArgsJson;
      Merged.back() = ',';
      Merged.append(Args, 1, std::string::npos);
      Args = std::move(Merged);
    }

    JsonWriter BW;
    BW.beginObject();
    BW.key("name").value(S.Name);
    BW.key("cat").value("bec");
    BW.key("ph").value("B");
    BW.key("ts").value(Ts);
    BW.key("pid").value(Pid);
    BW.key("tid").value(S.Tid);
    BW.endObject();
    std::string BObj = BW.take();
    BObj.pop_back();
    BObj += ",\"args\":";
    BObj += Args;
    BObj += '}';
    Push(BObj);

    JsonWriter EW;
    EW.beginObject();
    EW.key("name").value(S.Name);
    EW.key("cat").value("bec");
    EW.key("ph").value("E");
    EW.key("ts").value(Ts + S.DurUs);
    EW.key("pid").value(Pid);
    EW.key("tid").value(S.Tid);
    EW.endObject();
    Push(EW.take());
  }
  Doc.insert(Close, Ins);
}

/// `bec <subcommand> --remote host:port`: transparent offload.
int runRemote(const DriverOptions &Opts, DistTrace *DT, std::ostream &Out,
              std::ostream &Err) {
  std::vector<std::string> Targets;
  if (int Status = remoteTargetList(Opts, Targets, Err))
    return Status;
  bool WithEmit = !Opts.EmitPath.empty();
  if (WithEmit && Targets.size() != 1) {
    Err << "bec: --emit requires exactly one selected target\n";
    return ExitUsage;
  }

  std::string ConnErr;
  std::optional<serve::Client> C =
      serve::Client::connect(Opts.RemoteHost, Opts.RemotePort, ConnErr);
  if (!C) {
    Err << "bec: " << ConnErr << "\n";
    return ExitBadInput;
  }
  // Under --trace-out every frame of this exchange (interns included)
  // carries the distributed trace context, parented at the root span.
  if (DT && DT->armed())
    C->setTrace({DT->TraceId, DT->RootSpanId});
  for (const std::string &Path : Opts.AsmFiles)
    if (int Status = internAsmFile(*C, Path, Err))
      return Status;

  std::string Params = subcommandParams(Opts.Cmd, Opts, Targets, WithEmit);
  serve::Reply R;
  if (Opts.Cmd == Command::Campaign) {
    // Campaigns offload through the streaming method so a long remote
    // run narrates itself; without --progress no frames are sent and
    // the exchange is byte-for-byte the unary `campaign` method's.
    R = C->callStreaming("campaign/run", Params,
                         [&](const JsonValue &P) { printProgress(P, Err); });
  } else {
    R = C->call(commandMethod(Opts.Cmd), Params);
  }
  // Collect the servers' spans whether or not the command succeeded —
  // a failed hop's spans are exactly what the trace is for. The dump
  // request itself must not land in the ring as part of this trace.
  if (DT && DT->armed()) {
    C->setTrace({});
    collectRemoteSpans(*C, DT->TraceId, DT->Spans);
  }
  if (!R.Ok) {
    Err << "bec: " << R.errorText() << "\n";
    return ExitBadInput;
  }
  return consumeSubcommandReply(R, Opts, WithEmit, Out, Err);
}

/// Publishes the bound port for scripts using --port 0. Write-then-rename
/// so pollers never observe a partial file.
int writePortFile(const std::string &Path, uint16_t Port, std::ostream &Err) {
  if (Path.empty())
    return ExitSuccess;
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream PF(Tmp);
    if (!PF) {
      Err << "bec: cannot write '" << Path << "'\n";
      return ExitBadInput;
    }
    PF << Port << "\n";
  }
  std::rename(Tmp.c_str(), Path.c_str());
  return ExitSuccess;
}

/// Applies --log-level/--log-file/--log-format and labels this process's
/// span ring before a daemon starts serving. The label is what the
/// daemon's trace/dump spans carry as their "process" member.
int applyDaemonObsOptions(const DriverOptions &Opts, const char *Process,
                          std::ostream &Err) {
  obs::setSpanRingProcess(Process);
  obs::setLogFormat(Opts.LogFmt);
  if (!Opts.LogFilePath.empty()) {
    std::string LogErr;
    if (!obs::openLogFile(Opts.LogFilePath, LogErr)) {
      Err << "bec: " << LogErr << "\n";
      return ExitBadInput;
    }
  }
  obs::setLogLevel(Opts.LogLevel);
  return ExitSuccess;
}

/// `bec serve`: run the becd server until a shutdown request. The
/// default engine is the net/ event loop; --engine threads keeps the
/// legacy thread-per-connection server. Both print the same listening
/// line and answer byte-identically.
int runServe(const DriverOptions &Opts, std::ostream &Out,
             std::ostream &Err) {
  if (int Status = applyDaemonObsOptions(Opts, "becd", Err))
    return Status;
  serve::Service Svc;
  if (Opts.Engine == ServeEngine::Threads) {
    serve::Server::Options SO;
    SO.Host = Opts.ServeHost;
    SO.Port = Opts.ServePort;
    // For a server, --jobs bounds concurrent connections; default to a
    // small pool rather than the CLI's serial default.
    SO.Jobs = Opts.JobsExplicit ? Opts.Jobs : 4;
    serve::Server Srv(Svc, SO);
    std::string BindErr;
    if (!Srv.start(BindErr)) {
      Err << "bec: serve: " << BindErr << "\n";
      return ExitBadInput;
    }
    Out << "becd listening on " << SO.Host << ":" << Srv.port() << " (api "
        << BEC_API_VERSION_STRING << ", protocol " << serve::ProtocolVersion
        << ")\n";
    Out.flush();
    if (int Status = writePortFile(Opts.PortFile, Srv.port(), Err))
      return Status;
    Srv.run();
    Out << "becd: shut down\n";
    return ExitSuccess;
  }

  net::EventServer::Options EO;
  EO.Host = Opts.ServeHost;
  EO.Port = Opts.ServePort;
  // --jobs sizes the worker pool executing requests (0 = one per core);
  // connections are no longer bounded by it.
  EO.Workers = Opts.JobsExplicit ? Opts.Jobs : 0;
  EO.QueueDepth = Opts.QueueDepth;
  net::EventServer Srv(
      [&Svc](std::string_view Line, const net::FrameSink &Sink) {
        return Svc.handleFrameStreaming(Line, Sink);
      },
      Svc.handshakeFrame(), EO);
  Srv.setDrainCheck([&Svc] { return Svc.isShuttingDown(); });
  Srv.setAcceptCallback([&Svc] { Svc.noteConnection(); });
  std::string BindErr;
  if (!Srv.start(BindErr)) {
    Err << "bec: serve: " << BindErr << "\n";
    return ExitBadInput;
  }
  Out << "becd listening on " << EO.Host << ":" << Srv.port() << " (api "
      << BEC_API_VERSION_STRING << ", protocol " << serve::ProtocolVersion
      << ")\n";
  Out.flush();
  if (int Status = writePortFile(Opts.PortFile, Srv.port(), Err))
    return Status;
  Srv.run();
  Out << "becd: shut down\n";
  return ExitSuccess;
}

/// `bec gateway`: front N becd backends behind one becd-compatible
/// endpoint on the event-loop core; see net/Gateway.h.
int runGateway(const DriverOptions &Opts, std::ostream &Out,
               std::ostream &Err) {
  if (int Status = applyDaemonObsOptions(Opts, "gateway", Err))
    return Status;
  net::Gateway::Options GO;
  GO.Backends = Opts.GatewayBackends;
  GO.HealthIntervalMs = Opts.HealthIntervalMs;
  net::Gateway GW(GO);
  std::string GwErr;
  if (!GW.start(GwErr)) {
    Err << "bec: gateway: " << GwErr << "\n";
    return ExitBadInput;
  }

  net::EventServer::Options EO;
  EO.Host = Opts.ServeHost;
  EO.Port = Opts.ServePort;
  // Gateway workers block on upstream becds (I/O-bound), so default a
  // small fixed pool rather than one per core.
  EO.Workers = Opts.JobsExplicit ? Opts.Jobs : 8;
  net::EventServer Srv(
      [&GW](std::string_view Line, const net::FrameSink &Sink) {
        return GW.handleFrame(Line, Sink);
      },
      GW.handshakeFrame(), EO);
  Srv.setDrainCheck([&GW] { return GW.isDraining(); });
  std::string BindErr;
  if (!Srv.start(BindErr)) {
    Err << "bec: gateway: " << BindErr << "\n";
    return ExitBadInput;
  }
  Out << "bec gateway listening on " << EO.Host << ":" << Srv.port()
      << " (api " << BEC_API_VERSION_STRING << ", protocol "
      << serve::ProtocolVersion << ") -> " << GW.backendCount()
      << " backends\n";
  Out.flush();
  if (int Status = writePortFile(Opts.PortFile, Srv.port(), Err))
    return Status;
  Srv.run();
  GW.stop();
  Out << "gateway: shut down\n";
  return ExitSuccess;
}

//===----------------------------------------------------------------------===//
// bec stats
//===----------------------------------------------------------------------===//

/// Renders a becd `stats` reply as the human-facing summary table. A
/// gateway's aggregated reply carries a "gateway" member with per-backend
/// health, rendered first; the shared counter/latency shape follows.
std::string renderRemoteStatsText(const JsonValue &R) {
  std::string Out;
  if (const JsonValue *G = R.member("gateway")) {
    const std::vector<JsonValue> *Backends =
        G->member("backends") ? G->member("backends")->asArray() : nullptr;
    size_t Total = 0, Healthy = 0;
    std::string Lines;
    auto MemberBool = [](const JsonValue &V, std::string_view Key) {
      const JsonValue *M = V.member(Key);
      return M && M->asBool().value_or(false);
    };
    if (Backends)
      for (const JsonValue &B : *Backends) {
        ++Total;
        bool Up = MemberBool(B, "healthy");
        bool Drain = MemberBool(B, "draining");
        if (Up && !Drain)
          ++Healthy;
        const std::string *Addr = B.memberString("address");
        Lines += "  " + (Addr ? *Addr : std::string("?")) + " " +
                 (Drain ? "draining" : Up ? "healthy" : "unhealthy") +
                 ", forwarded " +
                 std::to_string(B.memberU64("forwarded").value_or(0)) +
                 ", failovers " +
                 std::to_string(B.memberU64("failovers").value_or(0)) + "\n";
      }
    Out += "gateway: " + std::to_string(Healthy) + "/" +
           std::to_string(Total) + " backends in routing\n" + Lines;
  }
  Out += "becd: " +
                    std::to_string(R.memberU64("connections").value_or(0)) +
                    " connections, " +
                    std::to_string(R.memberU64("requests").value_or(0)) +
                    " requests, " +
                    std::to_string(R.memberU64("errors").value_or(0)) +
                    " errors, " +
                    std::to_string(R.memberU64("programs").value_or(0)) +
                    " programs\n";
  if (const JsonValue *S = R.member("session")) {
    uint64_t Hits = S->memberU64("hits").value_or(0);
    uint64_t Misses = S->memberU64("misses").value_or(0);
    Out += "session: " + std::to_string(Hits) + " hits, " +
           std::to_string(Misses) + " misses";
    if (Hits + Misses)
      Out += " (hit rate " +
             Table::percent(double(Hits) / double(Hits + Misses)) + ")";
    Out += ", " + std::to_string(S->memberU64("interned").value_or(0)) +
           " interned, " +
           std::to_string(S->memberU64("shards").value_or(0)) + " shards\n";
  }

  const JsonValue *Methods = R.member("methods");
  const JsonValue *Latency = R.member("latency");
  if (Methods && !Methods->objectMembers().empty()) {
    Table Tbl({"Method", "Count", "p50 (us)", "p99 (us)", "Mean (us)"});
    for (const auto &[Method, Count] : Methods->objectMembers()) {
      Tbl.row().cell(Method).cell(Count.asU64().value_or(0));
      const JsonValue *L = Latency ? Latency->member(Method) : nullptr;
      if (L) {
        Tbl.cell(L->memberU64("p50_us").value_or(0));
        Tbl.cell(L->memberU64("p99_us").value_or(0));
        double Mean = 0;
        if (const JsonValue *M = L->member("mean_us"))
          Mean = M->asDouble().value_or(0);
        Tbl.cell(Mean, 1);
      } else {
        Tbl.cell("-").cell("-").cell("-");
      }
    }
    Out += Tbl.render();
  }

  if (const JsonValue *Gauges = R.member("gauges"))
    if (!Gauges->objectMembers().empty()) {
      Out += "gauges:";
      for (const auto &[Name, V] : Gauges->objectMembers())
        Out += " " + Name + "=" + std::to_string(V.asI64().value_or(0));
      Out += "\n";
    }
  return Out;
}

/// Renders this process's own registry (the no---remote mode; mostly
/// interesting after library code ran in-process, and the debug surface
/// for the metric catalog itself).
std::string renderLocalStatsText(const obs::MetricsSnapshot &Snap) {
  if (Snap.Metrics.empty())
    return "bec: stats: no metrics recorded in this process (build with "
           "observability enabled and run a subcommand; --remote H:P reads "
           "a live becd server)\n";
  Table Tbl({"Metric", "Kind", "Value", "p50 (us)", "p99 (us)"});
  for (const obs::MetricValue &M : Snap.Metrics) {
    switch (M.Kind) {
    case obs::MetricKind::Counter:
      Tbl.row().cell(M.Name).cell("counter").cell(M.Value).cell("-").cell(
          "-");
      break;
    case obs::MetricKind::Gauge:
      Tbl.row().cell(M.Name).cell("gauge").cell(
          std::to_string(M.GaugeValue));
      Tbl.cell("-").cell("-");
      break;
    case obs::MetricKind::Histogram:
      Tbl.row().cell(M.Name).cell("histogram").cell(M.Hist.Count);
      Tbl.cell(M.Hist.quantileUs(0.50)).cell(M.Hist.quantileUs(0.99));
      break;
    }
  }
  return Tbl.render();
}

/// Counters sampled from one remote stats reply, kept across --watch
/// iterations so later polls can print deltas instead of re-dumping the
/// cumulative table.
struct StatsSample {
  bool Valid = false;
  uint64_t Requests = 0;
  uint64_t Errors = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

StatsSample sampleRemoteStats(const JsonValue &R) {
  StatsSample S;
  S.Valid = true;
  S.Requests = R.memberU64("requests").value_or(0);
  S.Errors = R.memberU64("errors").value_or(0);
  if (const JsonValue *Sess = R.member("session")) {
    S.Hits = Sess->memberU64("hits").value_or(0);
    S.Misses = Sess->memberU64("misses").value_or(0);
  }
  return S;
}

/// One --watch interval as rates: what changed in the last \p Sec
/// seconds. Counters are monotone, so plain differences are safe.
std::string renderStatsDelta(const StatsSample &Prev, const StatsSample &Cur,
                             uint64_t Sec) {
  uint64_t DReq = Cur.Requests - Prev.Requests;
  uint64_t DErr = Cur.Errors - Prev.Errors;
  uint64_t DHits = Cur.Hits - Prev.Hits;
  uint64_t DMiss = Cur.Misses - Prev.Misses;
  char Rate[32];
  std::snprintf(Rate, sizeof(Rate), "%.1f",
                double(DReq) / double(Sec ? Sec : 1));
  std::string Out = "+" + std::to_string(DReq) + " requests (" + Rate +
                    "/s), +" + std::to_string(DErr) + " errors";
  if (DHits + DMiss)
    Out += ", window hit rate " +
           Table::percent(double(DHits) / double(DHits + DMiss)) + " (" +
           std::to_string(DHits) + " hits, " + std::to_string(DMiss) +
           " misses)";
  return Out + "\n";
}

/// One `bec stats` poll (one iteration of --watch).
int statsOnce(const DriverOptions &Opts, StatsSample &Prev, std::ostream &Out,
              std::ostream &Err) {
  if (!Opts.Remote) {
    obs::MetricsSnapshot Snap = obs::snapshotMetrics();
    Out << (Opts.StatsMetrics ? obs::renderPrometheus(Snap)
                              : renderLocalStatsText(Snap));
    return ExitSuccess;
  }
  std::string ConnErr;
  std::optional<serve::Client> C =
      serve::Client::connect(Opts.RemoteHost, Opts.RemotePort, ConnErr);
  if (!C) {
    Err << "bec: " << ConnErr << "\n";
    return ExitBadInput;
  }
  serve::Reply R = C->call(Opts.StatsMetrics ? "metrics" : "stats");
  if (!R.Ok) {
    Err << "bec: " << R.errorText() << "\n";
    return ExitBadInput;
  }
  if (Opts.StatsMetrics) {
    const std::string *Text = R.Result.memberString("text");
    if (!Text) {
      Err << "bec: malformed metrics reply from server\n";
      return ExitBadInput;
    }
    Out << *Text;
    return ExitSuccess;
  }
  // --watch: the first poll prints the full cumulative table (the
  // baseline); every later poll prints one per-interval delta line.
  StatsSample Cur = sampleRemoteStats(R.Result);
  if (Opts.WatchSeconds && Prev.Valid)
    Out << renderStatsDelta(Prev, Cur, Opts.WatchSeconds);
  else
    Out << renderRemoteStatsText(R.Result);
  Prev = Cur;
  return ExitSuccess;
}

/// `bec stats [--remote H:P] [--metrics] [--watch SEC]`.
int runStats(const DriverOptions &Opts, std::ostream &Out,
             std::ostream &Err) {
  StatsSample Prev;
  for (;;) {
    if (int Status = statsOnce(Opts, Prev, Out, Err))
      return Status;
    if (!Opts.WatchSeconds)
      return ExitSuccess;
    Out.flush();
    std::this_thread::sleep_for(std::chrono::seconds(Opts.WatchSeconds));
  }
}

/// `bec client <method> ...`: one raw method call.
int runClient(const DriverOptions &Opts, DistTrace *DT, std::ostream &Out,
              std::ostream &Err) {
  const std::string &Method = Opts.ClientArgs[0];
  std::vector<std::string> Positional(Opts.ClientArgs.begin() + 1,
                                      Opts.ClientArgs.end());

  // Build params before connecting so usage errors stay local.
  std::string Params;
  std::optional<Command> Sub = subcommandForMethod(Method);
  std::string AsmPath;
  if (Sub) {
    Params = subcommandParams(*Sub, Opts, Positional, /*WithEmit=*/false);
  } else if (Method == "version" || Method == "stats" ||
             Method == "metrics" || Method == "shutdown" ||
             Method == "gateway/backends") {
    if (!Positional.empty()) {
      Err << "bec: client " << Method << " takes no arguments\n";
      return ExitUsage;
    }
  } else if (Method == "gateway/drain" || Method == "gateway/undrain") {
    if (Positional.size() != 1) {
      Err << "bec: client " << Method
          << " needs exactly one backend host:port\n";
      return ExitUsage;
    }
    JsonWriter W;
    W.beginObject();
    W.key("backend").value(Positional[0]);
    W.endObject();
    Params = W.take();
  } else if (Method == "trace/dump") {
    if (Positional.size() > 1) {
      Err << "bec: client trace/dump takes at most one trace id\n";
      return ExitUsage;
    }
    if (Positional.size() == 1) {
      JsonWriter W;
      W.beginObject();
      W.key("trace_id").value(Positional[0]);
      W.endObject();
      Params = W.take();
    }
  } else if (Method == "log/level") {
    if (Positional.size() > 1) {
      Err << "bec: client log/level takes at most one level "
             "(debug | info | warn | error | off)\n";
      return ExitUsage;
    }
    if (Positional.size() == 1) {
      JsonWriter W;
      W.beginObject();
      W.key("level").value(Positional[0]);
      W.endObject();
      Params = W.take();
    }
  } else if (Method == "counts") {
    if (Positional.size() != 1) {
      Err << "bec: client counts needs exactly one target\n";
      return ExitUsage;
    }
    JsonWriter W;
    W.beginObject();
    W.key("target").value(Positional[0]);
    W.endObject();
    Params = W.take();
  } else if (Method == "intern") {
    if (Positional.size() != 1) {
      Err << "bec: client intern needs exactly one assembly file\n";
      return ExitUsage;
    }
    AsmPath = Positional[0];
    std::optional<std::string> InternParams =
        internParamsForFile(AsmPath, Err);
    if (!InternParams)
      return ExitBadInput;
    Params = *InternParams;
  } else {
    Err << "bec: unknown client method '" << Method << "'\n";
    return ExitUsage;
  }

  std::string ConnErr;
  std::optional<serve::Client> C =
      serve::Client::connect(Opts.RemoteHost, Opts.RemotePort, ConnErr);
  if (!C) {
    Err << "bec: " << ConnErr << "\n";
    return ExitBadInput;
  }
  if (DT && DT->armed())
    C->setTrace({DT->TraceId, DT->RootSpanId});
  serve::Reply R =
      Method == "campaign/run"
          ? C->callStreaming(Method, Params,
                             [&](const JsonValue &P) { printProgress(P, Err); })
          : C->call(Method, Params);
  if (DT && DT->armed() && Method != "shutdown") {
    C->setTrace({});
    collectRemoteSpans(*C, DT->TraceId, DT->Spans);
  }
  if (!R.Ok) {
    reportReplyError(R, AsmPath, Err);
    return ExitBadInput;
  }
  if (Sub)
    return consumeSubcommandReply(R, Opts, /*WithEmit=*/false, Out, Err);
  Out << R.Result.toJson() << "\n";
  return ExitSuccess;
}

/// The subcommand's name, for the root trace span ("bec:analyze").
const char *commandName(Command C) {
  switch (C) {
  case Command::Analyze:
    return "analyze";
  case Command::Campaign:
    return "campaign";
  case Command::Schedule:
    return "schedule";
  case Command::Harden:
    return "harden";
  case Command::Report:
    return "report";
  case Command::Fuzz:
    return "fuzz";
  case Command::Serve:
    return "serve";
  case Command::Gateway:
    return "gateway";
  case Command::Client:
    return "client";
  case Command::Stats:
    return "stats";
  }
  return "bec";
}

/// Everything after argument parsing: subcommand dispatch. Split out so
/// runDriver can scope the root trace span around exactly this.
int runParsed(const DriverOptions &Opts, DistTrace *DT, std::ostream &Out,
              std::ostream &Err) {
  if (Opts.Cmd == Command::Serve)
    return runServe(Opts, Out, Err);
  if (Opts.Cmd == Command::Gateway)
    return runGateway(Opts, Out, Err);
  if (Opts.Cmd == Command::Client)
    return runClient(Opts, DT, Out, Err);
  if (Opts.Cmd == Command::Fuzz)
    return runFuzzCommand(Opts, Out, Err);
  // stats handles --remote itself (it is the one subcommand whose remote
  // form is not a mirrored server method call over targets).
  if (Opts.Cmd == Command::Stats)
    return runStats(Opts, Out, Err);
  if (Opts.Remote)
    return runRemote(Opts, DT, Out, Err);

  AnalysisSession S;
  if (int Status = collectTargets(Opts, S, Err))
    return Status;
  if (!Opts.EmitPath.empty() && S.numTargets() != 1) {
    Err << "bec: --emit requires exactly one selected target\n";
    return ExitUsage;
  }
  if (!Opts.CheckpointPath.empty() && S.numTargets() != 1) {
    // One checkpoint file describes one campaign.
    Err << "bec: --checkpoint requires exactly one selected target\n";
    return ExitUsage;
  }
  if (!Opts.ProfilePath.empty() && S.numTargets() != 1) {
    // Likewise: one profile document describes one engine run.
    Err << "bec: --profile requires exactly one selected target\n";
    return ExitUsage;
  }

  std::vector<std::string> Names = targetNames(S);
  bool Json = Opts.Format == OutputFormat::Json;
  ThreadPool Pool(ThreadPool::clampJobs(Opts.Jobs));
  int Status = ExitSuccess;

  switch (Opts.Cmd) {
  case Command::Analyze: {
    auto Results = S.evaluateAll<AnalyzeQuery>({}, Pool);
    Out << (Json ? renderAnalyzeJson(Names, Results)
                 : renderAnalyzeText(Names, Results));
    Status = reportErrors(S, Results, Err);
    break;
  }
  case Command::Campaign: {
    CampaignCmdQuery::Options Base;
    Base.Plan = Opts.Plan;
    Base.MaxCycles = Opts.MaxCycles;
    Base.SampleSize = Opts.SampleSize;
    Base.SampleSeed = Opts.SampleSeed;
    Base.PrefixCheckpoint = Opts.PrefixCheckpoint;
    Base.CheckpointEveryK = Opts.CheckpointEveryK;
    Base.Exec.Threads = ThreadPool::clampJobs(Opts.CampaignThreads);
    Base.Exec.ShardSize = Opts.ShardSize;
    Base.Exec.CheckpointPath = Opts.CheckpointPath;
    Base.Exec.Resume = Opts.Resume;
    Base.Exec.CollectProfile = !Opts.ProfilePath.empty();
    // Per-target options (identical fingerprints, so the cache shape
    // matches evaluateAll): only the progress callback differs, needing
    // the target's name.
    std::vector<std::shared_ptr<const CampaignCmdResult>> Results(
        S.numTargets());
    std::mutex ProgressMutex;
    for (size_t I = 0; I < S.numTargets(); ++I)
      Pool.submit([&, I] {
        CampaignCmdQuery::Options O = Base;
        if (Opts.Progress) {
          std::string Target = S.name(I);
          O.Exec.OnProgress = throttledProgress(
              [&Err, &ProgressMutex, Target](const CampaignProgress &P) {
                std::lock_guard<std::mutex> Lock(ProgressMutex);
                Err << progressLine(Target, P.ShardsDone, P.TotalShards,
                                    P.RunsDone, P.TotalRuns, P.ExecutedRuns,
                                    P.ElapsedSeconds, P.Steals,
                                    P.SnapshotRebuilds);
              });
        }
        Results[I] =
            S.get<CampaignCmdQuery>(static_cast<AnalysisSession::TargetId>(I),
                                    O);
      });
    Pool.wait();
    Out << (Json ? renderCampaignJson(Names, Results, Opts.Plan)
                 : renderCampaignText(Names, Results, Opts.Plan));
    Status = reportErrors(S, Results, Err);
    if (Status == ExitSuccess && Opts.Resume)
      Err << "bec: campaign: resumed " << Results[0]->Campaign.ResumedShards
          << " of " << Results[0]->Campaign.Shards << " shards from '"
          << Opts.CheckpointPath << "'\n";
    if (Status == ExitSuccess && !Opts.ProfilePath.empty()) {
      std::ofstream PF(Opts.ProfilePath, std::ios::binary);
      if (PF)
        PF << renderCampaignProfileJson(Results[0]->Campaign.Profile);
      if (!PF) {
        Err << "bec: cannot write profile file '" << Opts.ProfilePath
            << "'\n";
        Status = ExitBadInput;
      }
    }
    break;
  }
  case Command::Schedule: {
    auto Results = S.evaluateAll<ScheduleCmdQuery>({}, Pool);
    Out << (Json ? renderScheduleJson(Names, Results)
                 : renderScheduleText(Names, Results));
    Status = reportErrors(S, Results, Err);
    if (Status == ExitSuccess && !Opts.EmitPath.empty()) {
      size_t Policy = Opts.EmitPolicy == SchedulePolicy::SourceOrder ? 0
                      : Opts.EmitPolicy == SchedulePolicy::BestReliability
                          ? 1
                          : 2;
      Status = emitAssembly(Results[0]->PolicyAsm[Policy], Opts, Err);
    }
    break;
  }
  case Command::Harden: {
    HardenCmdQuery::Options HO;
    HO.Budgets = Opts.Budgets;
    auto Results = S.evaluateAll<HardenCmdQuery>(HO, Pool);
    Out << (Json ? renderHardenJson(Names, Results, Opts.Budgets)
                 : renderHardenText(Names, Results, Opts.Budgets));
    Status = reportErrors(S, Results, Err);
    if (Status == ExitSuccess)
      for (size_t I = 0; I < Results.size(); ++I)
        for (const HardenPoint &P : Results[I]->Points)
          if (!P.Check.ok()) {
            Err << "bec: " << S.name(I)
                << ": hardened program failed validation\n";
            Status = ExitUnsound;
          }
    if (Status == ExitSuccess && !Opts.EmitPath.empty())
      Status = emitAssembly(Results[0]->Points[0].Harden.HP.Prog.toString(),
                            Opts, Err);
    break;
  }
  case Command::Report: {
    auto Results = S.evaluateAll<ReportCmdQuery>({Opts.MaxCycles}, Pool);
    Out << (Json ? renderReportJson(Names, Results)
                 : renderReportText(Names, Results));
    Status = reportErrors(S, Results, Err);
    if (Status == ExitSuccess)
      for (const auto &R : Results)
        if (!R->Validation.sound())
          Status = ExitUnsound;
    break;
  }
  case Command::Fuzz:
  case Command::Serve:
  case Command::Gateway:
  case Command::Client:
  case Command::Stats:
    break; // Dispatched before target loading.
  }
  return Status;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

int bec::tool::runDriver(const std::vector<std::string> &Args,
                         std::ostream &Out, std::ostream &Err) {
  DriverOptions Opts;
  int ParseStatus = parseArgs(Args, Opts, Out, Err);
  if (ParseStatus == -1)
    return ExitSuccess; // --help / --list-workloads.
  if (ParseStatus != ExitSuccess)
    return ParseStatus;

  // --trace-out against a server arms distributed tracing: a fresh
  // 128-bit trace id plus the local root span's id travel in every
  // request envelope, and the servers' spans come back via trace/dump.
  DistTrace DT;
  if (!Opts.TraceOutPath.empty() &&
      (Opts.Remote || Opts.Cmd == Command::Client)) {
    DT.TraceId = obs::newTraceId128();
    DT.RootSpanId = obs::newSpanId64();
  }
  if (!Opts.TraceOutPath.empty()) {
    obs::traceBegin();
    // Remote spans carry wall-clock starts; this is the base that maps
    // them onto the local trace clock (which starts at 0 here).
    DT.WallBaseUs = wallNowUs();
  }
  int Status;
  {
    obs::Span Root(obs::traceActive()
                       ? std::string("bec:") + commandName(Opts.Cmd)
                       : std::string());
    if (DT.armed() && obs::traceActive()) {
      Root.argStr("trace_id", DT.TraceId);
      Root.argStr("span_id", DT.RootSpanId);
    }
    Status = runParsed(Opts, &DT, Out, Err);
  }
  if (!Opts.TraceOutPath.empty()) {
    std::string Doc = obs::traceEnd();
    spliceRemoteSpans(Doc, DT);
    std::ofstream TraceFile(Opts.TraceOutPath, std::ios::binary);
    bool Wrote = static_cast<bool>(TraceFile);
    if (Wrote) {
      TraceFile << Doc;
      TraceFile.flush();
      Wrote = static_cast<bool>(TraceFile);
    }
    if (!Wrote) {
      Err << "bec: cannot write trace file '" << Opts.TraceOutPath << "'\n";
      if (Status == ExitSuccess)
        Status = ExitBadInput;
    }
  }
  return Status;
}
