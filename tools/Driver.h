//===- tools/Driver.h - The `bec` pipeline driver --------------------------===//
///
/// \file
/// Library entry point of the `bec` command-line tool, factored out of the
/// binary so tests can invoke every subcommand in-process. The driver is a
/// thin shell over the api/Api.h AnalysisSession: argument parsing here,
/// pipelines and caching behind the session's subcommand queries,
/// rendering as tables or via the shared api/Serialize.h JSON emitter:
///
///   bec analyze  [targets] [--jobs N]      fault-space metrics table
///   bec campaign [targets] [--plan KIND]   execute a fault-injection plan
///   bec schedule [targets] [--emit FILE]   vulnerability-aware scheduling
///   bec harden   [targets] [--budget P]    selective hardening Pareto
///                [--sweep A,B,..]          points + closed-loop checks
///   bec report   [targets]                 metrics + campaign + validation
///
/// Targets are `--workload NAME` (repeatable, case-insensitive), `--asm
/// FILE.s`, or `--all` (the default). Independent targets are evaluated
/// through Session::evaluateAll on a pool sized by `--jobs`. Every
/// subcommand supports `--format=json` for machine-readable output.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_TOOLS_DRIVER_H
#define BEC_TOOLS_DRIVER_H

#include <iosfwd>
#include <string>
#include <vector>

namespace bec {
namespace tool {

/// Exit codes of the driver (stable interface; asserted by DriverTest).
enum ExitCode : int {
  ExitSuccess = 0,  ///< Everything ran and validated.
  ExitUsage = 1,    ///< Bad command line; usage was printed to Err.
  ExitBadInput = 2, ///< A target failed to assemble / load / run.
  ExitUnsound = 3,  ///< `report` found a validation violation.
};

/// Runs the `bec` CLI on \p Args (argv without the program name), writing
/// human output to \p Out and diagnostics to \p Err. Returns an ExitCode.
int runDriver(const std::vector<std::string> &Args, std::ostream &Out,
              std::ostream &Err);

} // namespace tool
} // namespace bec

#endif // BEC_TOOLS_DRIVER_H
