//===- tests/FatesTest.cpp - Intra-instruction rule unit tests -------------===//
///
/// \file
/// Direct unit tests of Algorithm 3's per-opcode fate rules against
/// hand-computed expectations, including the operand-aliasing corner
/// cases (x == y) where the paper's rules would be unsound if applied
/// naively.
///
//===----------------------------------------------------------------------===//

#include "core/Fates.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

constexpr unsigned W = 8;
constexpr Reg X = 5, Y = 6, Z = 7; // t0, t1, t2

class FatesTest : public ::testing::Test {
protected:
  FatesTest() {
    for (auto &K : State)
      K = KnownBits::top(W);
  }

  InstrFates fatesOf(const Instruction &I) {
    return computeFates(I, State, W);
  }

  RegState State;
};

TEST_F(FatesTest, MvForwardsEveryBit) {
  InstrFates F = fatesOf({Opcode::MV, Z, X, 0, 0, NoTarget, 0});
  for (unsigned B = 0; B < W; ++B) {
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::ToOutput);
    EXPECT_EQ(F.fate(X, B).Arg, B);
  }
}

TEST_F(FatesTest, XorForwardsBothOperands) {
  InstrFates F = fatesOf({Opcode::XOR, Z, X, Y, 0, NoTarget, 0});
  for (unsigned B = 0; B < W; ++B) {
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::ToOutput);
    EXPECT_EQ(F.fate(Y, B).Kind, FateKind::ToOutput);
  }
}

TEST_F(FatesTest, XorWithItselfMasks) {
  // z = x ^ x == 0 for any x; a single storage flip corrupts both
  // operand reads and still yields zero.
  InstrFates F = fatesOf({Opcode::XOR, Z, X, X, 0, NoTarget, 0});
  for (unsigned B = 0; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::Masked);
}

TEST_F(FatesTest, AndWithItselfIsMove) {
  InstrFates F = fatesOf({Opcode::AND, Z, X, X, 0, NoTarget, 0});
  for (unsigned B = 0; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::ToOutput);
}

TEST_F(FatesTest, AndiMasksZeroImmBitsForwardsOneImmBits) {
  InstrFates F = fatesOf({Opcode::ANDI, Z, X, 0, 0b0011, NoTarget, 0});
  EXPECT_EQ(F.fate(X, 0).Kind, FateKind::ToOutput);
  EXPECT_EQ(F.fate(X, 1).Kind, FateKind::ToOutput);
  for (unsigned B = 2; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::Masked) << B;
}

TEST_F(FatesTest, OriIsTheDualOfAndi) {
  InstrFates F = fatesOf({Opcode::ORI, Z, X, 0, 0b0011, NoTarget, 0});
  EXPECT_EQ(F.fate(X, 0).Kind, FateKind::Masked);
  EXPECT_EQ(F.fate(X, 1).Kind, FateKind::Masked);
  for (unsigned B = 2; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::ToOutput) << B;
}

TEST_F(FatesTest, AndWithUnknownOperandConcludesNothing) {
  InstrFates F = fatesOf({Opcode::AND, Z, X, Y, 0, NoTarget, 0});
  for (unsigned B = 0; B < W; ++B) {
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::None);
    EXPECT_EQ(F.fate(Y, B).Kind, FateKind::None);
  }
}

TEST_F(FatesTest, AndUsesKnownBitsOfTheOtherOperand) {
  State[Y] = KnownBits::constant(0b11110000, W);
  InstrFates F = fatesOf({Opcode::AND, Z, X, Y, 0, NoTarget, 0});
  for (unsigned B = 0; B < 4; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::Masked) << B;
  for (unsigned B = 4; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::ToOutput) << B;
  // And for y itself: x is unknown, so nothing can be concluded.
  for (unsigned B = 0; B < W; ++B)
    EXPECT_EQ(F.fate(Y, B).Kind, FateKind::None) << B;
}

TEST_F(FatesTest, ShiftLeftByConstant) {
  InstrFates F = fatesOf({Opcode::SLLI, Z, X, 0, 3, NoTarget, 0});
  for (unsigned B = 0; B < W - 3; ++B) {
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::ToOutput) << B;
    EXPECT_EQ(F.fate(X, B).Arg, B + 3) << B;
  }
  for (unsigned B = W - 3; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::Masked) << B;
}

TEST_F(FatesTest, ShiftRightLogicalByConstant) {
  InstrFates F = fatesOf({Opcode::SRLI, Z, X, 0, 2, NoTarget, 0});
  EXPECT_EQ(F.fate(X, 0).Kind, FateKind::Masked);
  EXPECT_EQ(F.fate(X, 1).Kind, FateKind::Masked);
  for (unsigned B = 2; B < W; ++B) {
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::ToOutput) << B;
    EXPECT_EQ(F.fate(X, B).Arg, B - 2) << B;
  }
}

TEST_F(FatesTest, ArithmeticShiftKeepsSignBitUnmapped) {
  InstrFates F = fatesOf({Opcode::SRAI, Z, X, 0, 2, NoTarget, 0});
  // The sign bit is replicated into several result bits: no single
  // output-bit equivalent.
  EXPECT_EQ(F.fate(X, W - 1).Kind, FateKind::None);
  EXPECT_EQ(F.fate(X, 3).Kind, FateKind::ToOutput);
  EXPECT_EQ(F.fate(X, 3).Arg, 1u);
}

TEST_F(FatesTest, VariableShiftUsesMinimumAmount) {
  // y in [4, 7] (two low bits unknown, bit2 known one): bits above
  // W - 4 are shifted out for any feasible amount.
  State[Y] = KnownBits::constant(0b100, W);
  State[Y].setBit(0, BitValue::Top);
  State[Y].setBit(1, BitValue::Top);
  InstrFates F = fatesOf({Opcode::SLL, Z, X, Y, 0, NoTarget, 0});
  for (unsigned B = W - 4; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::Masked) << B;
  // Lower bits: the amount is not constant, so no ToOutput mapping.
  EXPECT_EQ(F.fate(X, 0).Kind, FateKind::None);
}

TEST_F(FatesTest, WritesToX0TurnPropagationIntoMasking) {
  InstrFates F = fatesOf({Opcode::MV, RegZero, X, 0, 0, NoTarget, 0});
  for (unsigned B = 0; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::Masked) << B;
}

TEST_F(FatesTest, BranchOnKnownZeroBitsCoalesces) {
  // beq x, x0 with k(x) = 0000 000x: flipping any known-zero bit forces
  // "not taken"; the unknown bit concludes nothing.
  State[X] = KnownBits::constant(0, W);
  State[X].setBit(0, BitValue::Top);
  InstrFates F = fatesOf({Opcode::BEQ, 0, X, RegZero, 0, 1, 0});
  EXPECT_EQ(F.fate(X, 0).Kind, FateKind::None);
  for (unsigned B = 1; B < W; ++B) {
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::EvalClass) << B;
    EXPECT_EQ(F.fate(X, B).Arg, 0u) << B; // forced "condition false"
  }
}

TEST_F(FatesTest, BranchFlipWithUnchangedOutcomeIsMasked) {
  // blt x, y with x known 0000_0000 and y known 0111_1111: x < y on
  // every single-bit flip of x except the sign bit.
  State[X] = KnownBits::constant(0, W);
  State[Y] = KnownBits::constant(0x7f, W);
  InstrFates F = fatesOf({Opcode::BLT, 0, X, Y, 0, 1, 0});
  for (unsigned B = 0; B < W - 1; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::Masked) << B;
  // Flipping the sign bit makes x negative: still x < y, also masked.
  EXPECT_EQ(F.fate(X, W - 1).Kind, FateKind::Masked);
  // Flipping y's low bits keeps x < y; flipping y's sign makes y
  // negative and flips the branch.
  EXPECT_EQ(F.fate(Y, 0).Kind, FateKind::Masked);
  EXPECT_EQ(F.fate(Y, W - 1).Kind, FateKind::EvalClass);
}

TEST_F(FatesTest, CompareRegisterWithItselfMasksEverything) {
  InstrFates F = fatesOf({Opcode::BEQ, 0, X, X, 0, 1, 0});
  for (unsigned B = 0; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::Masked) << B;
}

TEST_F(FatesTest, SltiuOnMaskedValueMatchesMotivatingExample) {
  // The seqz of the motivating example: k(x) = 0...0x, sltiu z, x, 1.
  State[X] = KnownBits::constant(0, W);
  State[X].setBit(0, BitValue::Top);
  InstrFates F = fatesOf({Opcode::SLTIU, Z, X, 0, 1, NoTarget, 0});
  EXPECT_EQ(F.fate(X, 0).Kind, FateKind::None);
  for (unsigned B = 1; B < W; ++B) {
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::EvalClass) << B;
    EXPECT_EQ(F.fate(X, B).Arg, 0u) << B;
  }
}

TEST_F(FatesTest, AddHasNoRuleUnlessAnOperandIsZero) {
  InstrFates F = fatesOf({Opcode::ADD, Z, X, Y, 0, NoTarget, 0});
  for (unsigned B = 0; B < W; ++B)
    EXPECT_EQ(F.fate(X, B).Kind, FateKind::None);
  State[Y] = KnownBits::constant(0, W);
  InstrFates F2 = fatesOf({Opcode::ADD, Z, X, Y, 0, NoTarget, 0});
  for (unsigned B = 0; B < W; ++B)
    EXPECT_EQ(F2.fate(X, B).Kind, FateKind::ToOutput) << B;
}

TEST_F(FatesTest, AblationFlagsDisableRuleFamilies) {
  FateOptions NoBitwise;
  NoBitwise.BitwiseRules = false;
  InstrFates F =
      computeFates({Opcode::MV, Z, X, 0, 0, NoTarget, 0}, State, W, NoBitwise);
  EXPECT_EQ(F.fate(X, 0).Kind, FateKind::None);

  FateOptions NoEval;
  NoEval.EvalRules = false;
  State[X] = KnownBits::constant(0, W);
  InstrFates F2 =
      computeFates({Opcode::BEQ, 0, X, Y, 0, 1, 0}, State, W, NoEval);
  EXPECT_EQ(F2.fate(X, 1).Kind, FateKind::None);
}

} // namespace
