//===- tests/DriverTest.cpp - In-process tests of the `bec` CLI -----------===//

#include "Driver.h"

#include "core/BECAnalysis.h"
#include "core/Metrics.h"
#include "sim/Interpreter.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace bec;
using bec::tool::runDriver;

namespace {

/// Runs the driver in-process and captures stdout/stderr text.
struct DriverRun {
  int Status;
  std::string Out;
  std::string Err;
};

DriverRun run(std::vector<std::string> Args) {
  std::ostringstream Out, Err;
  int Status = runDriver(Args, Out, Err);
  return {Status, Out.str(), Err.str()};
}

TEST(Driver, AnalyzeBitcountMatchesDirectPipeline) {
  DriverRun R = run({"analyze", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("bitcount"), std::string::npos);
  EXPECT_NE(R.Out.find("Fault space"), std::string::npos);
  EXPECT_NE(R.Out.find("Masked"), std::string::npos);

  // The table must carry the same numbers the library computes directly.
  Program Prog = loadWorkload(*findWorkload("bitcount"));
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  FaultInjectionCounts C = countFaultInjectionRuns(A, Golden.Executed);
  EXPECT_NE(R.Out.find(Table::withSeparators(C.TotalFaultSpace)),
            std::string::npos);
  EXPECT_NE(R.Out.find(Table::withSeparators(C.BitLevelRuns)),
            std::string::npos);
  EXPECT_NE(R.Out.find(Table::withSeparators(
                computeVulnerability(A, Golden.Executed))),
            std::string::npos);
}

TEST(Driver, AnalyzeIsCaseInsensitiveOnWorkloadNames) {
  DriverRun R = run({"analyze", "--workload", "crc32"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("CRC32"), std::string::npos);
}

TEST(Driver, AnalyzeAllWorkloadsWithJobs) {
  DriverRun R = run({"analyze", "--all", "--jobs", "4"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  // One row per bundled workload, in registry order.
  size_t Pos = 0;
  for (const Workload &W : allWorkloads()) {
    size_t Found = R.Out.find(W.Name, Pos);
    EXPECT_NE(Found, std::string::npos) << "missing row for " << W.Name;
    Pos = Found;
  }
}

TEST(Driver, CampaignBitcountBitLevelPlan) {
  DriverRun R = run({"campaign", "--workload", "bitcount", "--plan", "bit"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("bit-level"), std::string::npos);
  EXPECT_NE(R.Out.find("Runs"), std::string::npos);
  EXPECT_NE(R.Out.find("SDC"), std::string::npos);
}

TEST(Driver, ScheduleBitcountReportsAllPolicies) {
  DriverRun R = run({"schedule", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("Source vuln"), std::string::npos);
  EXPECT_NE(R.Out.find("Best vuln"), std::string::npos);
  EXPECT_NE(R.Out.find("Worst vuln"), std::string::npos);
}

TEST(Driver, ReportBitcountIsSound) {
  DriverRun R = run({"report", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("sound"), std::string::npos);
  EXPECT_EQ(R.Out.find("UNSOUND"), std::string::npos);
}

TEST(Driver, AnalyzeExternalAsmFile) {
  // Round-trip: dump a bundled workload to disk, analyze it as a file.
  std::string Path = testing::TempDir() + "/driver_bitcount.s";
  {
    std::ofstream OutFile(Path);
    OutFile << loadWorkload(*findWorkload("bitcount")).toString();
  }
  DriverRun R = run({"analyze", "--asm", Path});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find(Path), std::string::npos);
}

TEST(Driver, UsageErrors) {
  EXPECT_EQ(run({}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"frobnicate"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--workload"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--bogus-flag"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--emit", "x.s"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--jobs", "many"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"campaign", "--max-cycles", "10O"}).Status, tool::ExitUsage);
  // --emit needs exactly one target; the default selection is all of them.
  EXPECT_EQ(run({"schedule", "--emit", "x.s"}).Status, tool::ExitUsage);

  DriverRun Unknown = run({"analyze", "--workload", "nonesuch"});
  EXPECT_EQ(Unknown.Status, tool::ExitBadInput);
  EXPECT_NE(Unknown.Err.find("nonesuch"), std::string::npos);

  EXPECT_EQ(run({"analyze", "--asm", "/nonexistent/x.s"}).Status,
            tool::ExitBadInput);
}

TEST(Driver, DuplicateTargetSelectionsCollapse) {
  DriverRun R = run({"analyze", "--workload", "bitcount", "--workload",
                     "BITCOUNT", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  size_t First = R.Out.find("bitcount");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(R.Out.find("bitcount", First + 1), std::string::npos)
      << "duplicate selections must produce one row:\n"
      << R.Out;
}

TEST(Driver, ScheduleEmitWritesParseableAssembly) {
  std::string Path = testing::TempDir() + "/driver_sched.s";
  DriverRun R =
      run({"schedule", "--workload", "bitcount", "--emit", Path});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  DriverRun Re = run({"analyze", "--asm", Path});
  EXPECT_EQ(Re.Status, tool::ExitSuccess) << Re.Err;
}

TEST(Driver, HardenReportsValidatedParetoPoints) {
  DriverRun R = run({"harden", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("Residual vuln"), std::string::npos);
  EXPECT_NE(R.Out.find("ok"), std::string::npos);
  EXPECT_EQ(R.Out.find("FAIL"), std::string::npos) << R.Out;
}

TEST(Driver, HardenSweepEmitsOneRowPerBudget) {
  DriverRun R =
      run({"harden", "--workload", "crc32", "--sweep", "0,10"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("0.00%"), std::string::npos);
  EXPECT_NE(R.Out.find("10.00%"), std::string::npos);
  // Two data rows: header + separator + 2 rows.
  EXPECT_EQ(std::count(R.Out.begin(), R.Out.end(), '\n'), 4);
}

TEST(Driver, HardenEmitWritesParseableAssembly) {
  std::string Path = testing::TempDir() + "/driver_hardened.s";
  DriverRun R = run({"harden", "--workload", "bitcount", "--emit", Path});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  DriverRun Re = run({"analyze", "--asm", Path});
  EXPECT_EQ(Re.Status, tool::ExitSuccess) << Re.Err;
}

TEST(Driver, JsonOutputIsWellFormedAndComplete) {
  // Every subcommand emits through the shared api/Serialize.h serializer.
  for (const char *Cmd :
       {"analyze", "campaign", "schedule", "harden", "report"}) {
    DriverRun R =
        run({Cmd, "--workload", "bitcount", "--format", "json"});
    EXPECT_EQ(R.Status, tool::ExitSuccess) << Cmd << ": " << R.Err;
    ASSERT_FALSE(R.Out.empty());
    EXPECT_EQ(R.Out.front(), '{') << Cmd;
    EXPECT_EQ(R.Out[R.Out.size() - 2], '}') << Cmd; // Trailing newline.
    EXPECT_NE(R.Out.find("\"command\":\"" + std::string(Cmd) + "\""),
              std::string::npos);
    EXPECT_NE(R.Out.find("\"name\":\"bitcount\""), std::string::npos);
  }
  DriverRun A = run({"analyze", "--workload", "bitcount", "--format",
                     "json"});
  EXPECT_NE(A.Out.find("\"vulnerability\":"), std::string::npos);
  DriverRun C = run({"campaign", "--workload", "bitcount", "--format",
                     "json"});
  EXPECT_NE(C.Out.find("\"plan\":\"bit-level\""), std::string::npos);
  EXPECT_NE(C.Out.find("\"effects\":"), std::string::npos);
  DriverRun Sch = run({"schedule", "--workload", "bitcount", "--format",
                       "json"});
  EXPECT_NE(Sch.Out.find("\"source_vulnerability\":"), std::string::npos);
  EXPECT_NE(Sch.Out.find("\"best_vs_source\":"), std::string::npos);
  DriverRun H = run({"harden", "--workload", "bitcount", "--format",
                     "json"});
  EXPECT_NE(H.Out.find("\"residual_vulnerability\":"), std::string::npos);
  EXPECT_NE(H.Out.find("\"ok\":true"), std::string::npos);
  DriverRun Rep = run({"report", "--workload", "bitcount", "--format",
                       "json"});
  EXPECT_EQ(Rep.Status, tool::ExitSuccess) << Rep.Err;
  EXPECT_NE(Rep.Out.find("\"sound\":true"), std::string::npos);
}

TEST(Driver, HardenAndFormatUsageErrors) {
  EXPECT_EQ(run({"harden", "--budget", "nope"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--budget", "-3"}).Status, tool::ExitUsage);
  // strtod accepts these spellings; the budget gate must not.
  EXPECT_EQ(run({"harden", "--budget", "nan"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--budget", "inf"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--sweep", "5,x"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--format", "yaml"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--sweep", "5,10", "--emit", "x.s"}).Status,
            tool::ExitUsage);
}

TEST(Driver, HelpAndListWorkloads) {
  DriverRun Help = run({"--help"});
  EXPECT_EQ(Help.Status, tool::ExitSuccess);
  EXPECT_NE(Help.Out.find("usage: bec"), std::string::npos);

  DriverRun List = run({"analyze", "--list-workloads"});
  EXPECT_EQ(List.Status, tool::ExitSuccess);
  for (const Workload &W : allWorkloads())
    EXPECT_NE(List.Out.find(W.Name), std::string::npos);
}

} // namespace
