//===- tests/DriverTest.cpp - In-process tests of the `bec` CLI -----------===//

#include "Driver.h"

#include "core/BECAnalysis.h"
#include "core/Metrics.h"
#include "sim/Interpreter.h"
#include "support/JsonParse.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace bec;
using bec::tool::runDriver;

namespace {

/// Runs the driver in-process and captures stdout/stderr text.
struct DriverRun {
  int Status;
  std::string Out;
  std::string Err;
};

DriverRun run(std::vector<std::string> Args) {
  std::ostringstream Out, Err;
  int Status = runDriver(Args, Out, Err);
  return {Status, Out.str(), Err.str()};
}

TEST(Driver, AnalyzeBitcountMatchesDirectPipeline) {
  DriverRun R = run({"analyze", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("bitcount"), std::string::npos);
  EXPECT_NE(R.Out.find("Fault space"), std::string::npos);
  EXPECT_NE(R.Out.find("Masked"), std::string::npos);

  // The table must carry the same numbers the library computes directly.
  Program Prog = loadWorkload(*findWorkload("bitcount"));
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  FaultInjectionCounts C = countFaultInjectionRuns(A, Golden.Executed);
  EXPECT_NE(R.Out.find(Table::withSeparators(C.TotalFaultSpace)),
            std::string::npos);
  EXPECT_NE(R.Out.find(Table::withSeparators(C.BitLevelRuns)),
            std::string::npos);
  EXPECT_NE(R.Out.find(Table::withSeparators(
                computeVulnerability(A, Golden.Executed))),
            std::string::npos);
}

TEST(Driver, AnalyzeIsCaseInsensitiveOnWorkloadNames) {
  DriverRun R = run({"analyze", "--workload", "crc32"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("CRC32"), std::string::npos);
}

TEST(Driver, AnalyzeAllWorkloadsWithJobs) {
  DriverRun R = run({"analyze", "--all", "--jobs", "4"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  // One row per bundled workload, in registry order.
  size_t Pos = 0;
  for (const Workload &W : allWorkloads()) {
    size_t Found = R.Out.find(W.Name, Pos);
    EXPECT_NE(Found, std::string::npos) << "missing row for " << W.Name;
    Pos = Found;
  }
}

TEST(Driver, CampaignBitcountBitLevelPlan) {
  DriverRun R = run({"campaign", "--workload", "bitcount", "--plan", "bit"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("bit-level"), std::string::npos);
  EXPECT_NE(R.Out.find("Runs"), std::string::npos);
  EXPECT_NE(R.Out.find("SDC"), std::string::npos);
  // The per-class breakdown: rate columns next to the raw counts.
  EXPECT_NE(R.Out.find("SDC rate"), std::string::npos);
  EXPECT_NE(R.Out.find("Trap rate"), std::string::npos);
}

/// The campaign's wall-clock column is the one measured (not computed)
/// value; mask it before comparing two runs' reports.
std::string maskCampaignSeconds(std::string S) {
  size_t Pos = 0;
  while ((Pos = S.find_first_of("0123456789", Pos)) != std::string::npos) {
    size_t End = S.find_first_not_of("0123456789.", Pos);
    size_t LineEnd = S.find('\n', Pos);
    std::string Tok = S.substr(Pos, (End == std::string::npos ? S.size()
                                                              : End) - Pos);
    // A x.yz token at end of line is the Seconds cell.
    if (End == LineEnd && Tok.find('.') != std::string::npos) {
      S.replace(Pos, Tok.size(), "#");
      Pos += 1;
    } else {
      Pos = End == std::string::npos ? S.size() : End;
    }
  }
  return S;
}

TEST(Driver, CampaignCheckpointResumeReportIsByteIdentical) {
  std::string Path = testing::TempDir() + "/driver_campaign_ck.jsonl";
  std::remove(Path.c_str());
  std::vector<std::string> Base = {"campaign",     "--workload",
                                   "bitcount",     "--max-cycles",
                                   "120",          "--checkpoint",
                                   Path};
  DriverRun Full = run(Base);
  EXPECT_EQ(Full.Status, tool::ExitSuccess) << Full.Err;

  std::vector<std::string> ResumeCmd = Base;
  ResumeCmd.push_back("--resume");
  DriverRun Resumed = run(ResumeCmd);
  EXPECT_EQ(Resumed.Status, tool::ExitSuccess) << Resumed.Err;
  EXPECT_EQ(maskCampaignSeconds(Full.Out), maskCampaignSeconds(Resumed.Out));
  EXPECT_NE(Resumed.Err.find("resumed"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Driver, CampaignSampledReportsConfidenceIntervals) {
  DriverRun R = run({"campaign", "--workload", "bitcount", "--max-cycles",
                     "120", "--sample", "300", "--seed", "9"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("sampled 300 of"), std::string::npos);
  EXPECT_NE(R.Out.find("95% CI"), std::string::npos);

  DriverRun J = run({"campaign", "--workload", "bitcount", "--max-cycles",
                     "120", "--sample", "300", "--seed", "9", "--format",
                     "json"});
  EXPECT_EQ(J.Status, tool::ExitSuccess) << J.Err;
  EXPECT_NE(J.Out.find("\"sample\":"), std::string::npos);
  EXPECT_NE(J.Out.find("\"ci95\":"), std::string::npos);
  EXPECT_NE(J.Out.find("\"rates\":"), std::string::npos);
}

TEST(Driver, CampaignProgressNarratesShards) {
  DriverRun R = run({"campaign", "--workload", "bitcount", "--max-cycles",
                     "120", "--threads", "2", "--progress"});
  EXPECT_EQ(R.Status, tool::ExitSuccess);
  EXPECT_NE(R.Err.find("bec: campaign: bitcount:"), std::string::npos);
  EXPECT_NE(R.Err.find("shards"), std::string::npos);
}

TEST(Driver, CampaignEngineUsageErrors) {
  // Campaign-engine flags belong to campaign (or client campaign calls).
  EXPECT_EQ(run({"analyze", "--sample", "10"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"report", "--progress"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--checkpoint", "x.jsonl"}).Status,
            tool::ExitUsage);
  EXPECT_EQ(run({"campaign", "--sample", "many"}).Status, tool::ExitUsage);
  // Engine flags on a non-campaign client method would silently run a
  // different request than asked.
  EXPECT_EQ(run({"client", "analyze", "bitcount", "--threads", "2"}).Status,
            tool::ExitUsage);
  EXPECT_EQ(run({"campaign", "--shard-size", "0"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"campaign", "--resume"}).Status, tool::ExitUsage);
  // One checkpoint file describes one campaign.
  EXPECT_EQ(run({"campaign", "--all", "--checkpoint", "x.jsonl"}).Status,
            tool::ExitUsage);
  // Checkpoints are local state; the server cannot write them.
  EXPECT_EQ(run({"campaign", "--workload", "bitcount", "--checkpoint",
                 "x.jsonl", "--remote", "127.0.0.1:1"})
                .Status,
            tool::ExitUsage);
}

TEST(Driver, ScheduleBitcountReportsAllPolicies) {
  DriverRun R = run({"schedule", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("Source vuln"), std::string::npos);
  EXPECT_NE(R.Out.find("Best vuln"), std::string::npos);
  EXPECT_NE(R.Out.find("Worst vuln"), std::string::npos);
}

TEST(Driver, ReportBitcountIsSound) {
  DriverRun R = run({"report", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("sound"), std::string::npos);
  EXPECT_EQ(R.Out.find("UNSOUND"), std::string::npos);
}

TEST(Driver, AnalyzeExternalAsmFile) {
  // Round-trip: dump a bundled workload to disk, analyze it as a file.
  std::string Path = testing::TempDir() + "/driver_bitcount.s";
  {
    std::ofstream OutFile(Path);
    OutFile << loadWorkload(*findWorkload("bitcount")).toString();
  }
  DriverRun R = run({"analyze", "--asm", Path});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find(Path), std::string::npos);
}

TEST(Driver, UsageErrors) {
  EXPECT_EQ(run({}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"frobnicate"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--workload"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--bogus-flag"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--emit", "x.s"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--jobs", "many"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"campaign", "--max-cycles", "10O"}).Status, tool::ExitUsage);
  // --emit needs exactly one target; the default selection is all of them.
  EXPECT_EQ(run({"schedule", "--emit", "x.s"}).Status, tool::ExitUsage);

  DriverRun Unknown = run({"analyze", "--workload", "nonesuch"});
  EXPECT_EQ(Unknown.Status, tool::ExitBadInput);
  EXPECT_NE(Unknown.Err.find("nonesuch"), std::string::npos);

  EXPECT_EQ(run({"analyze", "--asm", "/nonexistent/x.s"}).Status,
            tool::ExitBadInput);
}

/// Reads a file into a string (empty when missing).
std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

TEST(Driver, TraceOutWritesABalancedChromeTraceAndSameReport) {
  std::string Path = testing::TempDir() + "/driver_trace.json";
  std::remove(Path.c_str());

  DriverRun Plain = run({"analyze", "--workload", "bitcount"});
  ASSERT_EQ(Plain.Status, tool::ExitSuccess) << Plain.Err;
  DriverRun Traced =
      run({"analyze", "--workload", "bitcount", "--trace-out=" + Path});
  ASSERT_EQ(Traced.Status, tool::ExitSuccess) << Traced.Err;
  // Tracing never changes the printed report.
  EXPECT_EQ(Plain.Out, Traced.Out);

  std::string Doc = slurp(Path);
  ASSERT_FALSE(Doc.empty());
  std::string JsonErr;
  std::optional<JsonValue> V = parseJson(Doc, &JsonErr);
  ASSERT_TRUE(V.has_value()) << JsonErr;
  const std::vector<JsonValue> *Events = V->member("traceEvents")->asArray();
  ASSERT_NE(Events, nullptr);
  ASSERT_FALSE(Events->empty());

  // Balanced, properly nested B/E per thread; the root span wraps the
  // subcommand; session queries appear under deterministic names.
  std::map<uint64_t, std::vector<std::string>> Stacks;
  std::set<std::string> Names;
  for (const JsonValue &E : *Events) {
    const std::string &Ph = *E.memberString("ph");
    uint64_t Tid = *E.memberU64("tid");
    const std::string &Name = *E.memberString("name");
    if (Ph == "B") {
      Stacks[Tid].push_back(Name);
      Names.insert(Name);
    } else if (Ph == "E") {
      ASSERT_FALSE(Stacks[Tid].empty()) << Name;
      EXPECT_EQ(Stacks[Tid].back(), Name);
      Stacks[Tid].pop_back();
    }
  }
  for (const auto &[Tid, Stack] : Stacks)
    EXPECT_TRUE(Stack.empty()) << "unbalanced spans on tid " << Tid;
  EXPECT_TRUE(Names.count("bec:analyze"));
  EXPECT_TRUE(Names.count("query:cmd.analyze"));

  // Span names are deterministic run to run (timestamps are not).
  std::string Path2 = testing::TempDir() + "/driver_trace2.json";
  std::remove(Path2.c_str());
  DriverRun Again =
      run({"analyze", "--workload", "bitcount", "--trace-out", Path2});
  ASSERT_EQ(Again.Status, tool::ExitSuccess) << Again.Err;
  std::optional<JsonValue> V2 = parseJson(slurp(Path2));
  ASSERT_TRUE(V2.has_value());
  std::set<std::string> Names2;
  for (const JsonValue &E : *V2->member("traceEvents")->asArray())
    if (*E.memberString("ph") == "B")
      Names2.insert(*E.memberString("name"));
  EXPECT_EQ(Names, Names2);

  std::remove(Path.c_str());
  std::remove(Path2.c_str());
}

TEST(Driver, TraceOutCoversTheEngineWorkers) {
  std::string Path = testing::TempDir() + "/driver_trace_engine.json";
  std::remove(Path.c_str());
  DriverRun R = run({"campaign", "--workload", "bitcount", "--max-cycles",
                     "120", "--trace-out", Path});
  ASSERT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  std::optional<JsonValue> V = parseJson(slurp(Path));
  ASSERT_TRUE(V.has_value());
  // Per-worker spans carry the scaling story: runs, steals, snapshot
  // rebuilds and idle time as closing args.
  bool SawWorker = false, SawShard = false;
  for (const JsonValue &E : *V->member("traceEvents")->asArray()) {
    const std::string &Name = *E.memberString("name");
    SawShard |= Name == "fi.shard";
    if (Name.rfind("fi.worker-", 0) != 0 || *E.memberString("ph") != "E")
      continue;
    SawWorker = true;
    const JsonValue *Args = E.member("args");
    ASSERT_NE(Args, nullptr);
    EXPECT_NE(Args->member("runs"), nullptr);
    EXPECT_NE(Args->member("steals"), nullptr);
    EXPECT_NE(Args->member("snapshot_rebuilds"), nullptr);
    EXPECT_NE(Args->member("idle_us"), nullptr);
  }
  EXPECT_TRUE(SawWorker);
  EXPECT_TRUE(SawShard);
  std::remove(Path.c_str());
}

TEST(Driver, StatsSubcommandAndObservabilityUsageGates) {
  // Local stats: always exits 0; after the driver runs above, this
  // process's registry has session metrics to print.
  ASSERT_EQ(run({"analyze", "--workload", "bitcount"}).Status,
            tool::ExitSuccess);
  DriverRun Local = run({"stats"});
  EXPECT_EQ(Local.Status, tool::ExitSuccess) << Local.Err;
  EXPECT_NE(Local.Out.find("session.query.miss"), std::string::npos);

  // --metrics switches to the Prometheus exposition.
  DriverRun Prom = run({"stats", "--metrics"});
  EXPECT_EQ(Prom.Status, tool::ExitSuccess) << Prom.Err;
  EXPECT_NE(Prom.Out.find("# TYPE bec_session_query_miss_total counter"),
            std::string::npos);

  // The observability flags are gated to the subcommands they modify.
  EXPECT_EQ(run({"analyze", "--watch", "5"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--metrics"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"stats", "--watch"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"stats", "--watch", "0"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"stats", "--workload", "bitcount"}).Status,
            tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--trace-out"}).Status, tool::ExitUsage);
  // Boolean flags refuse --flag=value.
  EXPECT_EQ(run({"stats", "--metrics=yes"}).Status, tool::ExitUsage);
  // Unwritable trace path: the subcommand runs, the trace write fails.
  EXPECT_EQ(run({"analyze", "--workload", "bitcount",
                 "--trace-out=/nonexistent/dir/t.json"})
                .Status,
            tool::ExitBadInput);
}

TEST(Driver, DuplicateTargetSelectionsCollapse) {
  DriverRun R = run({"analyze", "--workload", "bitcount", "--workload",
                     "BITCOUNT", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  size_t First = R.Out.find("bitcount");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(R.Out.find("bitcount", First + 1), std::string::npos)
      << "duplicate selections must produce one row:\n"
      << R.Out;
}

TEST(Driver, ScheduleEmitWritesParseableAssembly) {
  std::string Path = testing::TempDir() + "/driver_sched.s";
  DriverRun R =
      run({"schedule", "--workload", "bitcount", "--emit", Path});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  DriverRun Re = run({"analyze", "--asm", Path});
  EXPECT_EQ(Re.Status, tool::ExitSuccess) << Re.Err;
}

TEST(Driver, HardenReportsValidatedParetoPoints) {
  DriverRun R = run({"harden", "--workload", "bitcount"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("Residual vuln"), std::string::npos);
  EXPECT_NE(R.Out.find("ok"), std::string::npos);
  EXPECT_EQ(R.Out.find("FAIL"), std::string::npos) << R.Out;
}

TEST(Driver, HardenSweepEmitsOneRowPerBudget) {
  DriverRun R =
      run({"harden", "--workload", "crc32", "--sweep", "0,10"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("0.00%"), std::string::npos);
  EXPECT_NE(R.Out.find("10.00%"), std::string::npos);
  // Two data rows: header + separator + 2 rows.
  EXPECT_EQ(std::count(R.Out.begin(), R.Out.end(), '\n'), 4);
}

TEST(Driver, HardenEmitWritesParseableAssembly) {
  std::string Path = testing::TempDir() + "/driver_hardened.s";
  DriverRun R = run({"harden", "--workload", "bitcount", "--emit", Path});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  DriverRun Re = run({"analyze", "--asm", Path});
  EXPECT_EQ(Re.Status, tool::ExitSuccess) << Re.Err;
}

TEST(Driver, JsonOutputIsWellFormedAndComplete) {
  // Every subcommand emits through the shared api/Serialize.h serializer.
  for (const char *Cmd :
       {"analyze", "campaign", "schedule", "harden", "report"}) {
    DriverRun R =
        run({Cmd, "--workload", "bitcount", "--format", "json"});
    EXPECT_EQ(R.Status, tool::ExitSuccess) << Cmd << ": " << R.Err;
    ASSERT_FALSE(R.Out.empty());
    EXPECT_EQ(R.Out.front(), '{') << Cmd;
    EXPECT_EQ(R.Out[R.Out.size() - 2], '}') << Cmd; // Trailing newline.
    EXPECT_NE(R.Out.find("\"command\":\"" + std::string(Cmd) + "\""),
              std::string::npos);
    EXPECT_NE(R.Out.find("\"name\":\"bitcount\""), std::string::npos);
  }
  DriverRun A = run({"analyze", "--workload", "bitcount", "--format",
                     "json"});
  EXPECT_NE(A.Out.find("\"vulnerability\":"), std::string::npos);
  DriverRun C = run({"campaign", "--workload", "bitcount", "--format",
                     "json"});
  EXPECT_NE(C.Out.find("\"plan\":\"bit-level\""), std::string::npos);
  EXPECT_NE(C.Out.find("\"effects\":"), std::string::npos);
  DriverRun Sch = run({"schedule", "--workload", "bitcount", "--format",
                       "json"});
  EXPECT_NE(Sch.Out.find("\"source_vulnerability\":"), std::string::npos);
  EXPECT_NE(Sch.Out.find("\"best_vs_source\":"), std::string::npos);
  DriverRun H = run({"harden", "--workload", "bitcount", "--format",
                     "json"});
  EXPECT_NE(H.Out.find("\"residual_vulnerability\":"), std::string::npos);
  EXPECT_NE(H.Out.find("\"ok\":true"), std::string::npos);
  DriverRun Rep = run({"report", "--workload", "bitcount", "--format",
                       "json"});
  EXPECT_EQ(Rep.Status, tool::ExitSuccess) << Rep.Err;
  EXPECT_NE(Rep.Out.find("\"sound\":true"), std::string::npos);
}

TEST(Driver, HardenAndFormatUsageErrors) {
  EXPECT_EQ(run({"harden", "--budget", "nope"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--budget", "-3"}).Status, tool::ExitUsage);
  // strtod accepts these spellings; the budget gate must not.
  EXPECT_EQ(run({"harden", "--budget", "nan"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--budget", "inf"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--sweep", "5,x"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"analyze", "--format", "yaml"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--sweep", "5,10", "--emit", "x.s"}).Status,
            tool::ExitUsage);
}

TEST(Driver, FuzzReportIsDeterministicAndClean) {
  std::vector<std::string> Args = {"fuzz", "--count", "4", "--seed", "3",
                                   "--max-cycles", "24"};
  DriverRun A = run(Args);
  EXPECT_EQ(A.Status, tool::ExitSuccess) << A.Err;
  EXPECT_NE(A.Out.find("Fuzz corpus: seed 3, 4 programs"),
            std::string::npos);
  EXPECT_NE(A.Out.find("Mismatches"), std::string::npos);
  EXPECT_NE(A.Out.find("Idiom coverage"), std::string::npos);

  // Same seed, more threads: byte-identical modulo the Seconds cell.
  std::vector<std::string> Threaded = Args;
  Threaded.insert(Threaded.end(), {"--threads", "4"});
  DriverRun B = run(Threaded);
  EXPECT_EQ(B.Status, tool::ExitSuccess) << B.Err;
  EXPECT_EQ(maskCampaignSeconds(A.Out), maskCampaignSeconds(B.Out));
}

TEST(Driver, FuzzJsonReportsTheCampaign) {
  DriverRun R = run({"fuzz", "--count", "3", "--seed", "3", "--max-cycles",
                     "24", "--format", "json"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("\"fuzz\":{"), std::string::npos);
  EXPECT_NE(R.Out.find("\"programs\":3"), std::string::npos);
  EXPECT_NE(R.Out.find("\"mismatches\":[]"), std::string::npos);
}

TEST(Driver, FuzzCheckpointResumeReportIsByteIdentical) {
  std::string Path = testing::TempDir() + "/driver_fuzz_ck.jsonl";
  std::remove(Path.c_str());
  std::vector<std::string> Base = {"fuzz", "--count", "4", "--seed", "3",
                                   "--max-cycles", "24", "--checkpoint",
                                   Path};
  DriverRun Full = run(Base);
  EXPECT_EQ(Full.Status, tool::ExitSuccess) << Full.Err;

  std::vector<std::string> ResumeCmd = Base;
  ResumeCmd.push_back("--resume");
  DriverRun Resumed = run(ResumeCmd);
  EXPECT_EQ(Resumed.Status, tool::ExitSuccess) << Resumed.Err;
  EXPECT_EQ(maskCampaignSeconds(Full.Out), maskCampaignSeconds(Resumed.Out));
  EXPECT_NE(Resumed.Err.find("resumed 4 of 4"), std::string::npos)
      << Resumed.Err;
  std::remove(Path.c_str());
}

TEST(Driver, FuzzBudgetBoundsTheCorpus) {
  DriverRun R = run({"fuzz", "--count", "8", "--seed", "3", "--max-cycles",
                     "24", "--budget", "30000"});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Out.find("beyond --budget"), std::string::npos);
}

TEST(Driver, FuzzUsageErrors) {
  // The fuzzer takes no targets and runs locally.
  EXPECT_EQ(run({"fuzz", "--workload", "bitcount"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"fuzz", "--all"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"fuzz", "--remote", "h:1"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"fuzz", "--count", "0"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"fuzz", "--budget", "5.5"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"fuzz", "--sample", "5"}).Status, tool::ExitUsage);
  // Fuzz-only flags stay fuzz-only.
  EXPECT_EQ(run({"analyze", "--count", "3"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"campaign", "--bank", "d"}).Status, tool::ExitUsage);
  EXPECT_EQ(run({"harden", "--emit-corpus", "d"}).Status, tool::ExitUsage);
}

TEST(Driver, HelpAndListWorkloads) {
  DriverRun Help = run({"--help"});
  EXPECT_EQ(Help.Status, tool::ExitSuccess);
  EXPECT_NE(Help.Out.find("usage: bec"), std::string::npos);

  DriverRun List = run({"analyze", "--list-workloads"});
  EXPECT_EQ(List.Status, tool::ExitSuccess);
  for (const Workload &W : allWorkloads())
    EXPECT_NE(List.Out.find(W.Name), std::string::npos);
}

} // namespace
