//===- tests/MotivatingExampleTest.cpp - Paper Fig. 1/2 golden numbers ----===//
///
/// \file
/// End-to-end reproduction of the paper's motivating example (Section III,
/// Figs. 1 and 2): the leap-year-inspired counting loop on a 4-bit
/// architecture. The paper reports, for the original instruction order:
///   * 288 fault-injection runs at value level (inject-on-read),
///   * 225 runs after BEC pruning (footnote: 4+4+7x(4+16+2+1+4+3+1)),
///   * a 21.8 % saving,
///   * 681 live fault sites (footnote: 3x4 + 7x95 + 4),
/// and for the rescheduled order of Fig. 2c: 576 live fault sites
/// (a 15.4 % reduction) with unchanged run counts for the loop body shape.
///
//===----------------------------------------------------------------------===//

#include "core/BECAnalysis.h"
#include "core/Metrics.h"
#include "ir/AsmParser.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

// v0 -> a0, v1 -> a1, v2 -> a2, v3 -> a3.
const char *MotivatingAsm = R"(
.width 4
main:
  li   a0, 0          # p0: v0 = 0
  li   a1, 7          # p1: v1 = 7
loop:
  andi a2, a1, 1      # p2: v2 = v1 & 1
  andi a3, a1, 3      # p3: v3 = v1 & 3
  addi a1, a1, -1     # p4: v1 = v1 - 1
  seqz a2, a2         # p5: v2 = (v2 == 0)
  snez a3, a3         # p6: v3 = (v3 != 0)
  and  a2, a2, a3     # p7: v2 = v2 & v3
  add  a0, a0, a2     # p8: v0 = v0 + v2
  bnez a1, loop       # p9
  ret                 # p10: returns v0
)";

// Fig. 2c: the vulnerability-aware schedule of the same loop.
const char *RescheduledAsm = R"(
.width 4
main:
  li   a0, 0          # p0
  li   a1, 7          # p1
loop:
  andi a2, a1, 1      # p2
  seqz a2, a2         # p5'
  andi a3, a1, 3      # p3
  snez a3, a3         # p6
  and  a2, a2, a3     # p7
  add  a0, a0, a2     # p8
  addi a1, a1, -1     # p4'
  bnez a1, loop       # p9
  ret                 # p10
)";

class MotivatingExampleTest : public ::testing::Test {
protected:
  static Trace traceOf(const Program &Prog) {
    Trace T = simulate(Prog);
    EXPECT_EQ(T.End, Outcome::Finished);
    return T;
  }
};

TEST_F(MotivatingExampleTest, ProgramComputesLeapYearCount) {
  Program Prog = parseAsmOrDie(MotivatingAsm, "motivating");
  Trace T = traceOf(Prog);
  // Years 7..1 that are even but not multiples of four: {6, 2} -> 2.
  ASSERT_TRUE(T.HasReturnValue);
  EXPECT_EQ(T.ReturnValue, 2u);
  // 2 prologue + 7 iterations x 8 + ret.
  EXPECT_EQ(T.Cycles, 2u + 7u * 8u + 1u);
}

TEST_F(MotivatingExampleTest, ValueLevelRunsMatchPaper) {
  Program Prog = parseAsmOrDie(MotivatingAsm, "motivating");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace T = traceOf(Prog);
  FaultInjectionCounts Counts = countFaultInjectionRuns(A, T.Executed);
  // Footnote dagger: 4 + 4 + 7 x (4 + 4x4 + 3x4 + 2x4) = 288.
  EXPECT_EQ(Counts.ValueLevelRuns, 288u);
}

TEST_F(MotivatingExampleTest, BitLevelRunsMatchPaper) {
  Program Prog = parseAsmOrDie(MotivatingAsm, "motivating");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace T = traceOf(Prog);
  FaultInjectionCounts Counts = countFaultInjectionRuns(A, T.Executed);
  // Footnote double-dagger: 4 + 4 + 7 x (4 + 16 + 2 + 1 + 4 + 3 + 1) = 225.
  EXPECT_EQ(Counts.BitLevelRuns, 225u);
  // Saving of 21.8 % (1 - 225/288).
  EXPECT_NEAR(Counts.prunedFraction(), 0.21875, 1e-9);
  // Consistency: value = bit + masked + inferrable.
  EXPECT_EQ(Counts.ValueLevelRuns,
            Counts.BitLevelRuns + Counts.MaskedBits + Counts.InferrableBits);
}

TEST_F(MotivatingExampleTest, VulnerabilityMatchesPaper) {
  Program Prog = parseAsmOrDie(MotivatingAsm, "motivating");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace T = traceOf(Prog);
  // Footnote double-dagger-dagger: 3x4 + 7x95 + 4 = 681 live fault sites.
  EXPECT_EQ(computeVulnerability(A, T.Executed), 681u);
}

TEST_F(MotivatingExampleTest, RescheduledProgramIsEquivalent) {
  Program Orig = parseAsmOrDie(MotivatingAsm, "motivating");
  Program Sched = parseAsmOrDie(RescheduledAsm, "rescheduled");
  Trace TO = traceOf(Orig), TS = traceOf(Sched);
  EXPECT_EQ(TO.ReturnValue, TS.ReturnValue);
  EXPECT_EQ(TO.Cycles, TS.Cycles);
}

TEST_F(MotivatingExampleTest, ReschedulingReducesVulnerabilityBy15Percent) {
  Program Sched = parseAsmOrDie(RescheduledAsm, "rescheduled");
  BECAnalysis A = BECAnalysis::run(Sched);
  Trace T = traceOf(Sched);
  uint64_t Vuln = computeVulnerability(A, T.Executed);
  // Fig. 2 caption: 576 live fault sites, a 15.4 % reduction (1-576/681).
  EXPECT_EQ(Vuln, 576u);
  EXPECT_NEAR(1.0 - 576.0 / 681.0, 0.1542, 1e-3);
}

TEST_F(MotivatingExampleTest, ReschedulingKeepsRunCounts) {
  // Section III-B: "the number of instructions to be executed and the
  // number of fault injection runs required remain unchanged".
  Program Orig = parseAsmOrDie(MotivatingAsm, "motivating");
  Program Sched = parseAsmOrDie(RescheduledAsm, "rescheduled");
  BECAnalysis AO = BECAnalysis::run(Orig), AS = BECAnalysis::run(Sched);
  Trace TO = traceOf(Orig), TS = traceOf(Sched);
  FaultInjectionCounts CO = countFaultInjectionRuns(AO, TO.Executed);
  FaultInjectionCounts CS = countFaultInjectionRuns(AS, TS.Executed);
  EXPECT_EQ(CO.ValueLevelRuns, CS.ValueLevelRuns);
  EXPECT_EQ(CO.BitLevelRuns, CS.BitLevelRuns);
}

TEST_F(MotivatingExampleTest, MaskedSitesMatchFig2) {
  Program Prog = parseAsmOrDie(MotivatingAsm, "motivating");
  BECAnalysis A = BECAnalysis::run(Prog);
  // Fault sites (p5, v2^1..3) are dead: masked by the and at p7.
  for (unsigned B = 1; B < 4; ++B)
    EXPECT_EQ(A.classOf(5, 12, B), 0u) << "bit " << B; // a2 = x12
  // (p5, v2^0) is live.
  EXPECT_NE(A.classOf(5, 12, 0), 0u);
  // (p2, v2^1..3) are equivalent to each other but not masked.
  std::optional<uint32_t> C1 = A.classOf(2, 12, 1);
  ASSERT_TRUE(C1.has_value());
  EXPECT_NE(*C1, 0u);
  EXPECT_EQ(A.classOf(2, 12, 2), C1);
  EXPECT_EQ(A.classOf(2, 12, 3), C1);
  EXPECT_NE(A.classOf(2, 12, 0), C1);
}

} // namespace
