# fuzz seed 0xae84379630af89ee
.width 8
main:
  li t0, 20
  li t1, 75
  li t2, 77
  li t3, 46
  li t4, 30
  li t6, 118
  li s2, 116
  li s3, 57
  mv t2, t4
  mul t3, t6, s2
  mulhu t3, s3, s2
  divu s3, s2, t1
  andi t2, t0, 1
  xor s3, s3, t3
  sra t2, t4, t0
  or s2, t0, s2
  li s1, 2
loop0:
  xor t2, t2, t0
  add t2, t2, t0
  addi s1, s1, -1
  bnez s1, loop0
  bnez t0, skip1
  add t6, t0, t3
skip1:
  out t4
  out t2
  mv a0, t0
  ret
