# fuzz seed 0x910a2dec89025cc1
.width 32
main:
  li t0, 169
  li t1, 81
  li t2, 204
  li t3, 29
  li t4, 4
  li t6, 27
  li s2, 168
  li s3, 13
  bnez s3, skip0
  xor s3, t0, t1
  xor t3, s2, t4
  add t1, t6, t1
skip0:
  blt t6, t4, skip1
  xor t4, s3, t1
skip1:
  li s1, 2
loop2:
  slli t6, t6, 1
  addi t6, t6, 19
  xor t6, t6, s2
  addi s1, s1, -1
  bnez s1, loop2
  out t2
  out s2
  mv a0, t4
  ret
