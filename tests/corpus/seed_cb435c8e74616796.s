# fuzz seed 0xcb435c8e74616796
.width 16
main:
  li t0, 30
  li t1, 159
  li t2, 189
  li t3, 54
  li t4, 120
  li t6, 206
  li s2, 157
  li s3, 109
  div s2, t6, t6
  mv s2, s2
  xor t3, t2, t3
  addi s3, t6, 229
  rem t4, t6, t0
  xori t4, t6, 147
  xori t6, t1, 69
  mulhu t2, t2, s3
  add t4, s3, t0
  mul t6, t3, t1
  addi t2, t6, 37
  or t2, t3, s2
  sltu t3, s2, t6
  xori t3, t2, 66
  andi t6, t2, 22
  neg s2, t1
  andi t6, s3, 61
  srli t6, t4, 12
  neg s3, s2
  out s2
  out s3
  mv a0, t0
  ret
