# fuzz seed 0xe099ec6cd7363ca5
.width 8
main:
  li t0, 79
  li t1, 88
  li t2, 107
  li t3, 12
  li t4, 78
  li t6, 66
  li s2, 39
  li s3, 104
  li s1, 4
loop0:
  add t2, t2, t6
  add t2, t2, s3
  addi s1, s1, -1
  bnez s1, loop0
  li s1, 5
loop1:
  addi s2, s2, -9
  xor s2, s2, t6
  addi s1, s1, -1
  bnez s1, loop1
  li s1, 2
loop2:
  slli s3, s3, 1
  xor s3, s3, t2
  add s3, s3, s3
  addi s1, s1, -1
  bnez s1, loop2
  out t3
  out t0
  mv a0, t4
  ret
