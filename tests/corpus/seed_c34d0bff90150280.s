# fuzz seed 0xc34d0bff90150280
.width 8
main:
  li t0, 9
  li t1, 29
  li t2, 73
  li t3, 104
  li t4, 117
  li t6, 12
  li s2, 68
  li s3, 11
  or t1, t3, t6
  and t6, t0, t1
  slt t6, t1, t2
  rem t0, s3, s2
  divu t2, t2, t4
  mv s2, t0
  bnez t1, skip0
  addi s2, t4, 85
  addi t2, t1, 52
skip0:
  mv t1, t1
  mv t6, t3
  or s2, t6, s3
  add t3, t1, t0
  out t1
  out t3
  mv a0, t0
  ret
