# fuzz seed 0xd0bad0da572baaf1
.width 32
main:
  li t0, 30
  li t1, 46
  li t2, 26
  li t3, 236
  li t4, 183
  li t6, 74
  li s2, 117
  li s3, 251
  blez t3, skip0
  add s2, t3, t6
skip0:
  li s1, 5
loop1:
  xor t1, t1, s2
  slli t1, t1, 1
  addi s1, s1, -1
  bnez s1, loop1
  seqz s2, t1
  sltiu t0, t2, 186
  or t0, t4, s2
  out s3
  out s3
  mv a0, t1
  ret
