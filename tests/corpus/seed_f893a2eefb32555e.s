# fuzz seed 0xf893a2eefb32555e
.width 8
main:
  li t0, 20
  li t1, 44
  li t2, 21
  li t3, 20
  li t4, 42
  li t6, 124
  li s2, 102
  li s3, 17
  li s1, 3
loop0:
  addi t4, t4, 33
  xor t4, t4, t0
  add t4, t4, t3
  addi s1, s1, -1
  bnez s1, loop0
  li s1, 3
loop1:
  addi t6, t6, 108
  addi t6, t6, 10
  addi t6, t6, 58
  addi t6, t6, 26
  addi s1, s1, -1
  bnez s1, loop1
  bltu s3, t2, skip2
  add s3, t0, s3
  addi t0, t1, 108
  add t2, s2, t6
skip2:
  out t6
  out t4
  mv a0, t0
  ret
