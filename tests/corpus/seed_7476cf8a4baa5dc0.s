# fuzz seed 0x7476cf8a4baa5dc0
.width 8
main:
  li t0, 104
  li t1, 2
  li t2, 43
  li t3, 15
  li t4, 42
  li t6, 101
  li s2, 56
  li s3, 41
  or t3, t4, s2
  add t1, s3, t1
  ori t0, s3, 70
  remu t2, t6, t1
  mv t3, t6
  sub s2, t0, s2
  li s1, 2
loop0:
  addi t4, t4, -71
  add t4, t4, t1
  xor t4, t4, t4
  addi s1, s1, -1
  bnez s1, loop0
  blez t0, skip1
  add t2, s3, t0
skip1:
  snez t0, t6
  slti t0, s3, 53
  or t0, s3, t6
  and s3, s2, s3
  not t1, s3
  andi t1, s2, 83
  not t0, t2
  out t2
  out t0
  mv a0, s2
  ret
