# fuzz seed 0x6f9b6dae6f4c57a8
.width 4
main:
  li t0, 6
  li t1, 2
  li t2, 2
  li t3, 1
  li t4, 2
  li t6, 2
  li s2, 4
  li s3, 3
  bgtz t6, skip0
  add t3, t3, s3
  xor t6, t1, t6
  xor t4, t2, t6
skip0:
  slt t1, t0, s3
  and t4, s2, t2
  or t1, t2, t1
  slti s3, t3, 1
  li s1, 3
loop1:
  add s2, s2, t2
  slli s2, s2, 1
  slli s2, s2, 1
  slli s2, s2, 1
  addi s1, s1, -1
  bnez s1, loop1
  out t2
  out t0
  mv a0, t1
  ret
