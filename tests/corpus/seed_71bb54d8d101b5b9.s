# fuzz seed 0x71bb54d8d101b5b9
.width 8
main:
  li t0, 68
  li t1, 15
  li t2, 52
  li t3, 116
  li t4, 102
  li t6, 107
  li s2, 125
  li s3, 6
  sll t3, t1, t6
  or t2, s2, t3
  xori t1, t4, 44
  andi t1, t0, 43
  andi t6, t6, 52
  andi t6, t1, 120
  or t0, t3, t3
  snez t6, t3
  out s3
  out t2
  mv a0, t0
  ret
