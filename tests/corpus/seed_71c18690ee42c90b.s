# fuzz seed 0x71c18690ee42c90b
.width 4
main:
  li t0, 2
  li t1, 7
  li t2, 6
  li t3, 4
  li t4, 5
  li t6, 5
  li s2, 0
  li s3, 7
  bne t1, t2, skip0
  addi t4, s3, 3
  addi t1, t0, 3
  add t2, t3, t4
skip0:
  li s1, 4
loop1:
  addi t2, t2, 7
  xor t2, t2, s3
  addi s1, s1, -1
  bnez s1, loop1
  srai s3, t1, 0
  and s2, t6, s3
  not t6, t4
  not t1, t1
  sltiu t1, s2, 7
  and t6, t2, t2
  slt s3, t4, t0
  and t4, t4, t6
  out s2
  out t6
  mv a0, t0
  ret
