# fuzz seed 0x9afcd44d14cf8bfe
.width 16
main:
  li t0, 233
  li t1, 29
  li t2, 250
  li t3, 255
  li t4, 128
  li t6, 7
  li s2, 255
  li s3, 185
  li s1, 3
loop0:
  add t6, t6, t0
  xor t6, t6, t1
  addi s1, s1, -1
  bnez s1, loop0
  li s1, 2
loop1:
  add t3, t3, t2
  add t3, t3, t3
  addi s1, s1, -1
  bnez s1, loop1
  sub s3, t0, t6
  remu s2, s2, s3
  and s3, t3, t4
  bgtz t6, skip2
  addi t6, t3, 14
skip2:
  li s1, 4
loop3:
  addi t6, t6, 23
  slli t6, t6, 1
  slli t6, t6, 1
  add t6, t6, s3
  addi s1, s1, -1
  bnez s1, loop3
  out t4
  out t6
  mv a0, t6
  ret
