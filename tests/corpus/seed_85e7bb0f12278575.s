# fuzz seed 0x85e7bb0f12278575
.width 32
main:
  li t0, 180
  li t1, 112
  li t2, 26
  li t3, 188
  li t4, 45
  li t6, 167
  li s2, 96
  li s3, 220
  li s1, 2
loop0:
  add s2, s2, s3
  addi s2, s2, 211
  slli s2, s2, 1
  add s2, s2, t6
  addi s1, s1, -1
  bnez s1, loop0
  slti t2, t4, 155
  sltu s3, t2, s2
  slt t3, t3, t6
  or t3, t6, t2
  snez s2, t3
  or t0, t2, t0
  sltu s2, t0, t0
  sltu t3, t6, t6
  out t3
  out t4
  mv a0, t6
  ret
