# fuzz seed 0x6775dc7701564f61
.width 32
.data
buf:
  .word 38690
  .word 56888
  .word 60760
  .word 26621
  .word 6499
  .word 27867
  .word 41435
  .word 8770
.text
main:
  li t0, 43
  li t1, 120
  li t2, 213
  li t3, 253
  li t4, 137
  li t6, 9
  li s2, 228
  li s3, 214
  la t5, buf
  xor t4, t6, s3
  srai t2, t4, 16
  andi t0, t3, 63
  not t0, t4
  li s1, 3
loop0:
  xor t3, t3, t2
  xor t3, t3, s2
  addi s1, s1, -1
  bnez s1, loop0
  out t2
  out t3
  mv a0, t4
  ret
