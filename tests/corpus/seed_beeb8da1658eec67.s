# fuzz seed 0xbeeb8da1658eec67
.width 8
main:
  li t0, 59
  li t1, 83
  li t2, 103
  li t3, 93
  li t4, 50
  li t6, 87
  li s2, 91
  li s3, 61
  bnez t0, skip0
  addi t6, s3, 93
  addi t3, t6, 103
skip0:
  blez t2, skip1
  addi t6, t6, -74
skip1:
  sltiu s3, t0, 112
  sltu t3, s3, t6
  xori t1, t0, 53
  andi t3, s3, 58
  xor t1, s2, t2
  out s3
  out t4
  mv a0, s2
  ret
