# fuzz seed 0xe263183773ef6508
.width 32
.data
buf:
  .word 14469
  .word 56879
  .word 11964
  .word 7053
  .word 784
  .word 25747
  .word 61229
  .word 3127
.text
main:
  li t0, 63
  li t1, 162
  li t2, 19
  li t3, 32
  li t4, 46
  li t6, 230
  li s2, 101
  li s3, 194
  la t5, buf
  li s1, 2
loop0:
  add s2, s2, s2
  add s2, s2, s2
  addi s1, s1, -1
  bnez s1, loop0
  andi s2, t6, 245
  remu t2, t3, s2
  and t2, t0, t2
  mv s2, s2
  andi s2, t2, 232
  divu t0, t4, t0
  divu s3, t6, t3
  ori t1, s2, -220
  and t0, t3, t0
  xor t4, t4, t1
  xori t0, t2, 183
  xor s2, t1, t1
  mv t1, t6
  mulhu t1, t3, s3
  out t0
  out s3
  mv a0, t4
  ret
