# fuzz seed 0x87b341d690d7a28a
.width 16
main:
  li t0, 129
  li t1, 220
  li t2, 150
  li t3, 77
  li t4, 61
  li t6, 254
  li s2, 100
  li s3, 180
  remu t6, t3, s2
  sub t0, t2, t1
  mv s2, t3
  slt s3, t3, s3
  snez t0, t6
  snez t2, t3
  and s2, t6, s2
  sll t3, t6, s2
  not t4, t0
  and s3, t2, t4
  srai t1, s3, 4
  ori t3, t2, 9
  div t6, t1, t2
  addi t0, t2, 44
  andi t0, s2, 179
  out t3
  out t4
  mv a0, s2
  ret
