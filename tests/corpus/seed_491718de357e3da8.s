# fuzz seed 0x491718de357e3da8
.width 4
main:
  li t0, 6
  li t1, 4
  li t2, 3
  li t3, 0
  li t4, 6
  li t6, 6
  li s2, 3
  li s3, 1
  sltu t3, t1, t4
  sltu t2, t4, t6
  slt t6, s2, t4
  not t4, s3
  neg s2, t0
  xori s2, s2, 7
  xori t0, t2, 7
  slti t0, s2, 1
  or s2, t3, t2
  sltu t2, t2, s2
  or t1, t6, t2
  li s1, 3
loop0:
  slli t6, t6, 1
  xor t6, t6, t4
  addi s1, s1, -1
  bnez s1, loop0
  out t3
  out s2
  mv a0, t3
  ret
