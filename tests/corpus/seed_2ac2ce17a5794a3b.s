# fuzz seed 0x2ac2ce17a5794a3b
.width 8
main:
  li t0, 3
  li t1, 106
  li t2, 15
  li t3, 116
  li t4, 107
  li t6, 59
  li s2, 94
  li s3, 37
  mv s2, t6
  add t1, s2, s3
  remu t2, s2, t3
  xori t1, t2, 117
  mul s2, t3, t1
  mv t6, t2
  add t1, t4, s2
  ori s3, t1, 26
  or t6, t0, t4
  xori t3, t4, 90
  out t4
  out t3
  mv a0, t1
  ret
