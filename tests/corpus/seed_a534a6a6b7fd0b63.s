# fuzz seed 0xa534a6a6b7fd0b63
.width 8
main:
  li t0, 85
  li t1, 113
  li t2, 116
  li t3, 69
  li t4, 78
  li t6, 7
  li s2, 15
  li s3, 7
  sltiu t6, t2, 28
  sltu t1, s2, t0
  sltu t1, s2, s3
  snez t3, t1
  and t0, t1, t0
  xori s2, t6, 54
  or s2, t1, t3
  bltu t4, t1, skip0
  addi s2, t6, 68
  addi t2, t1, -34
skip0:
  slti t1, t6, 66
  slti t6, t2, 23
  sltiu t0, t6, 111
  out s3
  out t4
  mv a0, t3
  ret
