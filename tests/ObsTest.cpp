//===- tests/ObsTest.cpp - Observability layer unit tests ------------------===//
//
// Covers the obs metrics registry (exact totals under concurrency, the
// shared histogram geometry and quantiles, the runtime kill switch), the
// Prometheus text renderer, and the span tracer's Chrome trace_event
// output. Everything here is also exercised end-to-end by DriverTest
// (--trace-out) and ServeTest (stats/metrics methods); this file owns
// the precise-semantics checks.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Prometheus.h"
#include "obs/SpanRing.h"
#include "obs/Trace.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace bec;

#ifndef BEC_OBS_DISABLED

namespace {

TEST(Metrics, CountersGaugesHistogramsRoundTrip) {
  obs::resetMetrics();
  static const obs::Counter C("obstest.basic.counter");
  static const obs::Gauge G("obstest.basic.gauge");
  static const obs::Histogram H("obstest.basic.us");
  C.add();
  C.add(41);
  G.add(5);
  G.add(-2);
  H.observeUs(3);
  H.observeUs(100);

  obs::MetricsSnapshot S = obs::snapshotMetrics();
  const obs::MetricValue *MC = S.find("obstest.basic.counter");
  ASSERT_NE(MC, nullptr);
  EXPECT_EQ(MC->Kind, obs::MetricKind::Counter);
  EXPECT_EQ(MC->Value, 42u);

  const obs::MetricValue *MG = S.find("obstest.basic.gauge");
  ASSERT_NE(MG, nullptr);
  EXPECT_EQ(MG->Kind, obs::MetricKind::Gauge);
  EXPECT_EQ(MG->GaugeValue, 3);

  const obs::MetricValue *MH = S.find("obstest.basic.us");
  ASSERT_NE(MH, nullptr);
  EXPECT_EQ(MH->Kind, obs::MetricKind::Histogram);
  EXPECT_EQ(MH->Hist.Count, 2u);
  EXPECT_EQ(MH->Hist.SumUs, 103u);
  EXPECT_EQ(S.find("obstest.no.such.metric"), nullptr);

  // Gauge::set overrides the accumulated level.
  G.set(-7);
  EXPECT_EQ(obs::snapshotMetrics().find("obstest.basic.gauge")->GaugeValue,
            -7);
}

TEST(Metrics, ReRegisteringANameYieldsTheSameMetric) {
  obs::resetMetrics();
  obs::Counter A("obstest.dedup.counter");
  obs::Counter B("obstest.dedup.counter");
  A.add(2);
  B.add(3);
  obs::MetricsSnapshot S = obs::snapshotMetrics();
  EXPECT_EQ(S.find("obstest.dedup.counter")->Value, 5u);
  // One entry, not two.
  unsigned Seen = 0;
  for (const obs::MetricValue &M : S.Metrics)
    Seen += M.Name == "obstest.dedup.counter";
  EXPECT_EQ(Seen, 1u);
}

// The exactness contract: after writer threads join, totals equal the
// sum of every add() exactly — increments from exited threads fold into
// the retired accumulator, live shards are merged on snapshot. Run under
// ThreadSanitizer this is also the no-data-races proof for the hot path.
TEST(Metrics, TotalsAreExactAcrossThreads) {
  obs::resetMetrics();
  static const obs::Counter C("obstest.mt.counter");
  static const obs::Histogram H("obstest.mt.us");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([] {
      for (uint64_t I = 0; I < PerThread; ++I) {
        C.add();
        H.observeUs(I & 1023);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  obs::MetricsSnapshot S = obs::snapshotMetrics();
  EXPECT_EQ(S.find("obstest.mt.counter")->Value, Threads * PerThread);
  const obs::HistogramData &Hist = S.find("obstest.mt.us")->Hist;
  EXPECT_EQ(Hist.Count, Threads * PerThread);
  uint64_t BucketSum = 0;
  for (uint64_t B : Hist.Buckets)
    BucketSum += B;
  EXPECT_EQ(BucketSum, Hist.Count);
}

TEST(Metrics, HistogramGeometryAndQuantiles) {
  // Powers of two, then +Inf.
  EXPECT_EQ(obs::histogramBucketBound(0), 1u);
  EXPECT_EQ(obs::histogramBucketBound(1), 2u);
  EXPECT_EQ(obs::histogramBucketBound(10), 1024u);
  EXPECT_EQ(obs::histogramBucketBound(obs::NumHistogramBuckets - 2),
            1u << 20);
  EXPECT_EQ(obs::histogramBucketBound(obs::NumHistogramBuckets - 1),
            ~uint64_t(0));

  obs::resetMetrics();
  static const obs::Histogram H("obstest.quant.us");
  // 98 fast observations and 2 slow ones: p50 in the 8us bucket, p99 in
  // the 1024us bucket.
  for (int I = 0; I < 98; ++I)
    H.observeUs(7);
  H.observeUs(1000);
  H.observeUs(1000);
  const obs::HistogramData Hist =
      obs::snapshotMetrics().find("obstest.quant.us")->Hist;
  EXPECT_EQ(Hist.quantileUs(0.50), 8u);
  EXPECT_EQ(Hist.quantileUs(0.98), 8u);
  EXPECT_EQ(Hist.quantileUs(0.99), 1024u);
  EXPECT_EQ(Hist.quantileUs(1.0), 1024u);
  EXPECT_NEAR(Hist.meanUs(), (98.0 * 7 + 2000) / 100.0, 1e-9);

  // An empty histogram has no quantiles; +Inf observations saturate.
  obs::HistogramData Empty;
  EXPECT_EQ(Empty.quantileUs(0.5), 0u);
  obs::HistogramData Inf;
  Inf.Count = 1;
  Inf.Buckets[obs::NumHistogramBuckets - 1] = 1;
  EXPECT_EQ(Inf.quantileUs(0.5), 2u * (1u << 20));
}

TEST(Metrics, RuntimeKillSwitchDropsWrites) {
  obs::resetMetrics();
  static const obs::Counter C("obstest.kill.counter");
  C.add(5);
  ASSERT_TRUE(obs::metricsEnabled());
  obs::setMetricsEnabled(false);
  C.add(1000);
  obs::setMetricsEnabled(true);
  C.add(2);
  EXPECT_EQ(obs::snapshotMetrics().find("obstest.kill.counter")->Value, 7u);
}

//===----------------------------------------------------------------------===//
// Prometheus rendering
//===----------------------------------------------------------------------===//

// The renderer takes a plain snapshot struct, so grammar tests can build
// deterministic inputs by hand instead of going through the registry.
obs::MetricsSnapshot makeSnapshot() {
  obs::MetricsSnapshot S;
  obs::MetricValue C;
  C.Name = "engine.runs";
  C.Kind = obs::MetricKind::Counter;
  C.Value = 12;
  S.Metrics.push_back(C);
  obs::MetricValue G;
  G.Name = "serve.queue.depth";
  G.Kind = obs::MetricKind::Gauge;
  G.GaugeValue = -3;
  S.Metrics.push_back(G);
  obs::MetricValue H;
  H.Name = "serve.method.us{method=\"analyze\"}";
  H.Kind = obs::MetricKind::Histogram;
  H.Hist.Buckets[0] = 2; // <= 1us
  H.Hist.Buckets[3] = 1; // <= 8us
  H.Hist.Count = 3;
  H.Hist.SumUs = 9;
  S.Metrics.push_back(H);
  return S;
}

TEST(Prometheus, RendersTheTextExposition) {
  std::string Text = obs::renderPrometheus(makeSnapshot());
  // Counters get the _total suffix and a TYPE line.
  EXPECT_NE(Text.find("# TYPE bec_engine_runs_total counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("\nbec_engine_runs_total 12\n"), std::string::npos);
  // Gauges render signed values.
  EXPECT_NE(Text.find("# TYPE bec_serve_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(Text.find("\nbec_serve_queue_depth -3\n"), std::string::npos);
  // Histograms: cumulative buckets, labels merged with le=, sum + count.
  EXPECT_NE(Text.find("# TYPE bec_serve_method_us histogram\n"),
            std::string::npos);
  EXPECT_NE(
      Text.find("bec_serve_method_us_bucket{method=\"analyze\",le=\"1\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      Text.find("bec_serve_method_us_bucket{method=\"analyze\",le=\"8\"} 3\n"),
      std::string::npos);
  EXPECT_NE(Text.find(
                "bec_serve_method_us_bucket{method=\"analyze\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("bec_serve_method_us_sum{method=\"analyze\"} 9\n"),
            std::string::npos);
  EXPECT_NE(Text.find("bec_serve_method_us_count{method=\"analyze\"} 3\n"),
            std::string::npos);
}

TEST(Prometheus, EveryLineMatchesTheExpositionGrammar) {
  std::string Text = obs::renderPrometheus(makeSnapshot());
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.back(), '\n');
  size_t Pos = 0;
  std::map<std::string, unsigned> TypeLines;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ASSERT_FALSE(Line.empty());
    if (Line[0] == '#') {
      // "# TYPE <name> <kind>"
      ASSERT_EQ(Line.rfind("# TYPE ", 0), 0u) << Line;
      std::string Rest = Line.substr(7);
      size_t Sp = Rest.find(' ');
      ASSERT_NE(Sp, std::string::npos) << Line;
      std::string Kind = Rest.substr(Sp + 1);
      EXPECT_TRUE(Kind == "counter" || Kind == "gauge" || Kind == "histogram")
          << Line;
      ++TypeLines[Rest.substr(0, Sp)];
      continue;
    }
    // "<name>[{labels}] <value>": name charset, balanced braces, numeric
    // value.
    size_t Sp = Line.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << Line;
    std::string Name = Line.substr(0, Sp);
    std::string Val = Line.substr(Sp + 1);
    size_t Brace = Name.find('{');
    std::string Bare = Name.substr(0, Brace);
    EXPECT_EQ(Bare.rfind("bec_", 0), 0u) << Line;
    for (char Ch : Bare)
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_')
          << Line;
    if (Brace != std::string::npos)
      EXPECT_EQ(Name.back(), '}') << Line;
    ASSERT_FALSE(Val.empty()) << Line;
    size_t Digits = Val[0] == '-' ? 1 : 0;
    for (size_t I = Digits; I < Val.size(); ++I)
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(Val[I])) ||
                  Val[I] == '.')
          << Line;
  }
  // Exactly one TYPE line per family.
  for (const auto &[Family, N] : TypeLines)
    EXPECT_EQ(N, 1u) << Family;
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(Trace, EmitsBalancedChromeTraceEvents) {
  obs::traceBegin();
  obs::setTraceThreadName("obstest-main");
  {
    obs::Span Outer("outer", {{"shard", 3}});
    Outer.arg("runs", 100);
    obs::Span Inner("inner");
    std::thread([] {
      obs::Span Worker("worker-span");
      (void)Worker;
    }).join();
  }
  std::string Doc = obs::traceEnd();

  std::string Err;
  std::optional<JsonValue> V = parseJson(Doc, &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  EXPECT_EQ(*V->memberString("displayTimeUnit"), "ms");
  const std::vector<JsonValue> *Events = V->member("traceEvents")->asArray();
  ASSERT_NE(Events, nullptr);

  // Balanced, properly nested B/E per thread; E repeats the span name.
  std::map<uint64_t, std::vector<std::string>> Stacks;
  std::map<std::string, unsigned> Begins;
  bool SawThreadName = false;
  for (const JsonValue &E : *Events) {
    const std::string &Ph = *E.memberString("ph");
    const std::string &Name = *E.memberString("name");
    uint64_t Tid = *E.memberU64("tid");
    EXPECT_EQ(*E.memberU64("pid"), 1u);
    if (Ph == "B") {
      Stacks[Tid].push_back(Name);
      ++Begins[Name];
    } else if (Ph == "E") {
      ASSERT_FALSE(Stacks[Tid].empty());
      EXPECT_EQ(Stacks[Tid].back(), Name);
      Stacks[Tid].pop_back();
    } else {
      EXPECT_EQ(Ph, "M");
      SawThreadName = true;
    }
  }
  for (const auto &[Tid, Stack] : Stacks)
    EXPECT_TRUE(Stack.empty()) << "unbalanced spans on tid " << Tid;
  EXPECT_EQ(Begins["outer"], 1u);
  EXPECT_EQ(Begins["inner"], 1u);
  EXPECT_EQ(Begins["worker-span"], 1u);
  EXPECT_TRUE(SawThreadName);

  // Args land on the events: "shard" on outer's B, "runs" on its E.
  bool SawShard = false, SawRuns = false;
  for (const JsonValue &E : *Events) {
    if (*E.memberString("name") != "outer")
      continue;
    if (const JsonValue *Args = E.member("args")) {
      if (const JsonValue *S = Args->member("shard"))
        SawShard |= S->asU64() == 3u;
      if (const JsonValue *R = Args->member("runs"))
        SawRuns |= R->asU64() == 100u;
    }
  }
  EXPECT_TRUE(SawShard);
  EXPECT_TRUE(SawRuns);
}

TEST(Trace, InactiveTracerRecordsNothing) {
  // No traceBegin: spans are inert (and traceActive gates dynamic names).
  ASSERT_FALSE(obs::traceActive());
  {
    obs::Span S("never-recorded");
    (void)S;
  }
  obs::traceBegin();
  EXPECT_TRUE(obs::traceActive());
  std::string Doc = obs::traceEnd();
  EXPECT_FALSE(obs::traceActive());
  std::optional<JsonValue> V = parseJson(Doc);
  ASSERT_TRUE(V.has_value());
  for (const JsonValue &E : *V->member("traceEvents")->asArray())
    EXPECT_NE(*E.memberString("name"), "never-recorded");
}

TEST(Trace, SpansFromABandonedTraceStayOutOfTheNext) {
  obs::traceBegin();
  obs::Span *Stale = new obs::Span("stale-span");
  // Re-arming invalidates the generation: the stale span's E must not
  // leak into the new trace (nor crash).
  obs::traceBegin();
  delete Stale;
  std::string Doc = obs::traceEnd();
  std::optional<JsonValue> V = parseJson(Doc);
  ASSERT_TRUE(V.has_value());
  for (const JsonValue &E : *V->member("traceEvents")->asArray())
    EXPECT_NE(*E.memberString("name"), "stale-span");
}

//===----------------------------------------------------------------------===//
// Structured logging (obs/Log.h)
//===----------------------------------------------------------------------===//

/// Redirects the logger into a temp file for one test and reads complete
/// lines back. Restores the stderr sink, the Off level, the jsonl format
/// and the default rate limit on scope exit, so no later test inherits
/// an armed logger.
struct LogCapture {
  std::string Path;

  LogCapture() : Path(testing::TempDir() + "/obstest_log.txt") {
    std::remove(Path.c_str());
    std::string Err;
    EXPECT_TRUE(obs::openLogFile(Path, Err)) << Err;
  }
  ~LogCapture() {
    obs::closeLogFile();
    obs::setLogLevel(obs::LogLevel::Off);
    obs::setLogFormat(obs::LogFormat::Jsonl);
    obs::setLogRateLimit(200);
    std::remove(Path.c_str());
  }

  std::vector<std::string> lines() const {
    std::ifstream In(Path);
    std::vector<std::string> Out;
    std::string Line;
    while (std::getline(In, Line))
      Out.push_back(Line);
    return Out;
  }
};

TEST(Log, LevelAndFormatParseRoundTrip) {
  for (obs::LogLevel L : {obs::LogLevel::Debug, obs::LogLevel::Info,
                          obs::LogLevel::Warn, obs::LogLevel::Error,
                          obs::LogLevel::Off})
    EXPECT_EQ(obs::parseLogLevel(obs::logLevelName(L)), L);
  EXPECT_FALSE(obs::parseLogLevel("verbose").has_value());
  EXPECT_FALSE(obs::parseLogLevel("INFO").has_value());
  EXPECT_EQ(obs::parseLogFormat("jsonl"), obs::LogFormat::Jsonl);
  EXPECT_EQ(obs::parseLogFormat("logfmt"), obs::LogFormat::Logfmt);
  EXPECT_FALSE(obs::parseLogFormat("xml").has_value());
}

TEST(Log, JsonlLinesParseAndCarryTypedFields) {
  LogCapture Cap;
  obs::setLogLevel(obs::LogLevel::Info);
  obs::log(obs::LogLevel::Warn, "obstest.jsonl",
           {{"u", uint64_t(7)},
            {"i", -2},
            {"b", true},
            {"s", "quote\" back\\slash"}});
  obs::log(obs::LogLevel::Debug, "obstest.jsonl.hidden"); // Below level.
  std::vector<std::string> Lines = Cap.lines();
  ASSERT_EQ(Lines.size(), 1u);
  std::optional<JsonValue> V = parseJson(Lines[0]);
  ASSERT_TRUE(V.has_value()) << Lines[0];
  EXPECT_GT(V->memberU64("ts_us").value_or(0), 0u);
  EXPECT_EQ(*V->memberString("level"), "warn");
  EXPECT_EQ(*V->memberString("event"), "obstest.jsonl");
  EXPECT_EQ(V->memberU64("u"), 7u);
  EXPECT_EQ(V->member("i")->asI64(), -2);
  EXPECT_EQ(V->member("b")->asBool(), true);
  EXPECT_EQ(*V->memberString("s"), "quote\" back\\slash");
}

TEST(Log, LogfmtLinesAreSpaceSeparatedPairs) {
  LogCapture Cap;
  obs::setLogFormat(obs::LogFormat::Logfmt);
  obs::setLogLevel(obs::LogLevel::Debug);
  obs::log(obs::LogLevel::Info, "obstest.logfmt",
           {{"conn", uint64_t(4)}, {"msg", "two words"}});
  std::vector<std::string> Lines = Cap.lines();
  ASSERT_EQ(Lines.size(), 1u);
  const std::string &L = Lines[0];
  EXPECT_EQ(L.rfind("ts_us=", 0), 0u) << L;
  EXPECT_NE(L.find(" level=info"), std::string::npos) << L;
  EXPECT_NE(L.find(" event=obstest.logfmt"), std::string::npos) << L;
  EXPECT_NE(L.find(" conn=4"), std::string::npos) << L;
  // Values with spaces are quoted so the line splits unambiguously.
  EXPECT_NE(L.find(" msg=\"two words\""), std::string::npos) << L;
}

TEST(Log, LevelGatesEmissionAndLogEnabledAgrees) {
  LogCapture Cap;
  obs::setLogLevel(obs::LogLevel::Warn);
  EXPECT_FALSE(obs::logEnabled(obs::LogLevel::Debug));
  EXPECT_FALSE(obs::logEnabled(obs::LogLevel::Info));
  EXPECT_TRUE(obs::logEnabled(obs::LogLevel::Warn));
  EXPECT_TRUE(obs::logEnabled(obs::LogLevel::Error));
  obs::log(obs::LogLevel::Info, "obstest.gated.below");
  obs::log(obs::LogLevel::Error, "obstest.gated.above");
  obs::setLogLevel(obs::LogLevel::Off);
  obs::log(obs::LogLevel::Error, "obstest.gated.off");
  std::vector<std::string> Lines = Cap.lines();
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_NE(Lines[0].find("obstest.gated.above"), std::string::npos);
}

TEST(Log, RateLimitCapsPerEventAndReportsSuppressed) {
  LogCapture Cap;
  obs::setLogLevel(obs::LogLevel::Info);
  obs::setLogRateLimit(3);
  for (int I = 0; I < 10; ++I)
    obs::log(obs::LogLevel::Info, "obstest.flood", {{"i", I}});
  // The cap is per event name: a different event is not throttled by
  // the flood.
  obs::log(obs::LogLevel::Info, "obstest.calm");
  std::vector<std::string> Lines = Cap.lines();
  ASSERT_EQ(Lines.size(), 4u);
  // The suppressed count surfaces on the event's next emitted line,
  // which needs the one-second window to roll over.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  obs::log(obs::LogLevel::Info, "obstest.flood", {{"i", 10}});
  Lines = Cap.lines();
  ASSERT_EQ(Lines.size(), 5u);
  std::optional<JsonValue> V = parseJson(Lines.back());
  ASSERT_TRUE(V.has_value()) << Lines.back();
  EXPECT_EQ(V->memberU64("suppressed"), 7u);
}

TEST(Log, RequestScopeTagsLinesAndInnerScopeInheritsConn) {
  LogCapture Cap;
  obs::setLogLevel(obs::LogLevel::Info);
  {
    // The transport's scope knows the connection but not the method...
    obs::LogRequestScope Transport(7, "", "");
    {
      // ...the service's scope knows method and trace id but passes
      // conn 0, inheriting the transport's connection id.
      obs::LogRequestScope Service(0, "analyze",
                                   "0123456789abcdef0123456789abcdef");
      obs::log(obs::LogLevel::Info, "obstest.scope.inner");
    }
    obs::log(obs::LogLevel::Info, "obstest.scope.outer");
  }
  obs::log(obs::LogLevel::Info, "obstest.scope.bare");
  std::vector<std::string> Lines = Cap.lines();
  ASSERT_EQ(Lines.size(), 3u);
  std::optional<JsonValue> Inner = parseJson(Lines[0]);
  ASSERT_TRUE(Inner.has_value());
  EXPECT_EQ(Inner->memberU64("conn"), 7u);
  EXPECT_EQ(*Inner->memberString("method"), "analyze");
  EXPECT_EQ(*Inner->memberString("trace_id"),
            "0123456789abcdef0123456789abcdef");
  std::optional<JsonValue> Outer = parseJson(Lines[1]);
  ASSERT_TRUE(Outer.has_value());
  EXPECT_EQ(Outer->memberU64("conn"), 7u);
  EXPECT_EQ(Outer->member("method"), nullptr); // Empty = omitted.
  EXPECT_EQ(Outer->member("trace_id"), nullptr);
  std::optional<JsonValue> Bare = parseJson(Lines[2]);
  ASSERT_TRUE(Bare.has_value());
  EXPECT_EQ(Bare->member("conn"), nullptr); // No ambient scope.
}

//===----------------------------------------------------------------------===//
// Span ring (obs/SpanRing.h)
//===----------------------------------------------------------------------===//

bool isLowerHex(const std::string &S) {
  for (char C : S)
    if (!std::isdigit(static_cast<unsigned char>(C)) && (C < 'a' || C > 'f'))
      return false;
  return !S.empty();
}

TEST(SpanRing, FreshIdsAreWellFormedAndDistinct) {
  std::string T1 = obs::newTraceId128(), T2 = obs::newTraceId128();
  EXPECT_EQ(T1.size(), 32u);
  EXPECT_TRUE(isLowerHex(T1)) << T1;
  EXPECT_NE(T1, T2);
  std::string S1 = obs::newSpanId64(), S2 = obs::newSpanId64();
  EXPECT_EQ(S1.size(), 16u);
  EXPECT_TRUE(isLowerHex(S1)) << S1;
  EXPECT_NE(S1, S2);
}

TEST(SpanRing, RecordSnapshotFilterAndClear) {
  obs::spanRingClear();
  obs::RingSpan A;
  A.TraceId = obs::newTraceId128();
  A.SpanId = obs::newSpanId64();
  A.Name = "serve.analyze";
  A.StartUs = 100;
  A.DurUs = 5;
  obs::RingSpan B = A;
  B.TraceId = obs::newTraceId128();
  B.SpanId = obs::newSpanId64();
  B.Name = "serve.counts";
  obs::spanRingRecord(A);
  obs::spanRingRecord(B);
  EXPECT_EQ(obs::spanRingSnapshot().size(), 2u);
  std::vector<obs::RingSpan> Mine = obs::spanRingSnapshot(A.TraceId);
  ASSERT_EQ(Mine.size(), 1u);
  EXPECT_EQ(Mine[0].SpanId, A.SpanId);
  EXPECT_EQ(Mine[0].Name, "serve.analyze");
  EXPECT_TRUE(
      obs::spanRingSnapshot("00000000000000000000000000000000").empty());
  obs::spanRingClear();
  EXPECT_TRUE(obs::spanRingSnapshot().empty());
}

TEST(SpanRing, ScopeRecordsOnDestructionAndStaysInertUntraced) {
  obs::spanRingClear();
  {
    obs::RingSpanScope Inert("", "", "serve.untraced");
    EXPECT_FALSE(Inert.active());
  }
  EXPECT_TRUE(obs::spanRingSnapshot().empty());

  std::string TraceId = obs::newTraceId128();
  std::string Parent = obs::newSpanId64();
  std::string SpanId;
  {
    obs::RingSpanScope Scope(TraceId, Parent, "serve.traced");
    EXPECT_TRUE(Scope.active());
    SpanId = Scope.spanId();
    EXPECT_EQ(SpanId.size(), 16u);
    Scope.arg("runs", uint64_t(5));
    Scope.arg("mode", std::string_view("say \"hi\""));
    EXPECT_TRUE(obs::spanRingSnapshot(TraceId).empty())
        << "span recorded before the scope closed";
  }
  std::vector<obs::RingSpan> Spans = obs::spanRingSnapshot(TraceId);
  ASSERT_EQ(Spans.size(), 1u);
  const obs::RingSpan &S = Spans[0];
  EXPECT_EQ(S.SpanId, SpanId);
  EXPECT_EQ(S.ParentSpan, Parent);
  EXPECT_EQ(S.Name, "serve.traced");
  EXPECT_GT(S.StartUs, 0u); // Wall clock, epoch microseconds.

  // The rendered trace/dump wire object parses, carries the identity,
  // and nests the args as a real JSON object (escaping included).
  std::optional<JsonValue> V = parseJson(obs::renderRingSpanJson(S, "becd"));
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V->memberString("name"), "serve.traced");
  EXPECT_EQ(*V->memberString("trace_id"), TraceId);
  EXPECT_EQ(*V->memberString("span_id"), SpanId);
  EXPECT_EQ(*V->memberString("parent_span"), Parent);
  EXPECT_EQ(*V->memberString("process"), "becd");
  EXPECT_EQ(V->memberU64("start_us"), S.StartUs);
  const JsonValue *Args = V->member("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->memberU64("runs"), 5u);
  EXPECT_EQ(*Args->memberString("mode"), "say \"hi\"");
  obs::spanRingClear();
}

} // namespace

#else // BEC_OBS_DISABLED

// In a disabled build the surface compiles to no-ops; assert exactly that.
TEST(ObsDisabled, SurfaceIsInert) {
  obs::Counter C("x");
  C.add(5);
  EXPECT_TRUE(obs::snapshotMetrics().Metrics.empty());
  EXPECT_FALSE(obs::traceActive());
}

#endif // BEC_OBS_DISABLED
