//===- tests/SimulatorTest.cpp - ISA semantics of the interpreter ----------===//
///
/// \file
/// Per-opcode semantics (including the RISC-V division edge cases and
/// shift-amount masking), memory/trap behaviour, fault-injection
/// mechanics, and the trace model.
///
//===----------------------------------------------------------------------===//

#include "ir/AsmParser.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

/// Runs a snippet that leaves its result in a0 and returns it.
static uint64_t evalSnippet(const std::string &Body) {
  Program Prog = parseAsmOrDie("main:\n" + Body + "\n  ret\n", "snippet");
  Trace T = simulate(Prog);
  EXPECT_EQ(T.End, Outcome::Finished);
  EXPECT_TRUE(T.HasReturnValue);
  return T.ReturnValue;
}

TEST(SimulatorAlu, BasicArithmetic) {
  EXPECT_EQ(evalSnippet("  li t0, 40\n  addi a0, t0, 2"), 42u);
  EXPECT_EQ(evalSnippet("  li t0, 5\n  li t1, 7\n  mul a0, t0, t1"), 35u);
  EXPECT_EQ(evalSnippet("  li t0, 5\n  li t1, 7\n  sub a0, t0, t1"),
            0xfffffffeu);
  EXPECT_EQ(evalSnippet("  li t0, 0xf0\n  andi a0, t0, 0x3c"), 0x30u);
  EXPECT_EQ(evalSnippet("  li t0, 0xf0\n  ori a0, t0, 0x0f"), 0xffu);
  EXPECT_EQ(evalSnippet("  li t0, 0xff\n  xori a0, t0, 0x0f"), 0xf0u);
}

TEST(SimulatorAlu, ShiftsMaskTheAmount) {
  // RV32 uses only the low five bits of the shift amount.
  EXPECT_EQ(evalSnippet("  li t0, 1\n  li t1, 33\n  sll a0, t0, t1"), 2u);
  EXPECT_EQ(evalSnippet("  li t0, 0x80000000\n  li t1, 31\n  srl a0, t0, t1"),
            1u);
  EXPECT_EQ(evalSnippet("  li t0, 0x80000000\n  srai a0, t0, 31"),
            0xffffffffu);
}

TEST(SimulatorAlu, SetLessThan) {
  EXPECT_EQ(evalSnippet("  li t0, -1\n  li t1, 1\n  slt a0, t0, t1"), 1u);
  EXPECT_EQ(evalSnippet("  li t0, -1\n  li t1, 1\n  sltu a0, t0, t1"), 0u);
  EXPECT_EQ(evalSnippet("  li t0, 0\n  seqz a0, t0"), 1u);
  EXPECT_EQ(evalSnippet("  li t0, 9\n  snez a0, t0"), 1u);
  EXPECT_EQ(evalSnippet("  li t0, 3\n  slti a0, t0, 4"), 1u);
  EXPECT_EQ(evalSnippet("  li t0, -3\n  sltiu a0, t0, 4"), 0u);
}

TEST(SimulatorAlu, RiscvDivisionEdgeCases) {
  // Division by zero: quotient all-ones, remainder = dividend; no trap.
  EXPECT_EQ(evalSnippet("  li t0, 17\n  li t1, 0\n  divu a0, t0, t1"),
            0xffffffffu);
  EXPECT_EQ(evalSnippet("  li t0, 17\n  li t1, 0\n  remu a0, t0, t1"), 17u);
  EXPECT_EQ(evalSnippet("  li t0, -17\n  li t1, 0\n  div a0, t0, t1"),
            0xffffffffu);
  EXPECT_EQ(evalSnippet("  li t0, -17\n  li t1, 0\n  rem a0, t0, t1"),
            static_cast<uint32_t>(-17));
  // Signed overflow.
  EXPECT_EQ(evalSnippet("  li t0, 0x80000000\n  li t1, -1\n  div a0, t0, t1"),
            0x80000000u);
  EXPECT_EQ(evalSnippet("  li t0, 0x80000000\n  li t1, -1\n  rem a0, t0, t1"),
            0u);
  EXPECT_EQ(evalSnippet("  li t0, -7\n  li t1, 2\n  div a0, t0, t1"),
            static_cast<uint32_t>(-3)); // truncation toward zero
  EXPECT_EQ(evalSnippet("  li t0, -7\n  li t1, 2\n  rem a0, t0, t1"),
            static_cast<uint32_t>(-1));
}

TEST(SimulatorAlu, X0IsHardwiredToZero) {
  EXPECT_EQ(evalSnippet("  li zero, 55\n  mv a0, zero"), 0u);
  EXPECT_EQ(evalSnippet("  addi x0, x0, 1\n  addi a0, x0, 0"), 0u);
}

TEST(SimulatorMemory, LoadStoreRoundTrip) {
  const char *Src = R"(
.data
buf:
  .zero 16
.text
main:
  la   t0, buf
  li   t1, 0x12345678
  sw   t1, 0(t0)
  lw   a0, 0(t0)
  lbu  t2, 1(t0)      # little endian: byte 1 is 0x56
  out  t2
  lhu  t3, 2(t0)      # halfword 1 is 0x1234
  out  t3
  lb   t4, 3(t0)      # sign-extended 0x12 stays 0x12
  out  t4
  ret
)";
  Program Prog = parseAsmOrDie(Src, "mem");
  Trace T = simulate(Prog);
  EXPECT_EQ(T.ReturnValue, 0x12345678u);
  std::vector<uint64_t> Outs = T.outputValues();
  ASSERT_EQ(Outs.size(), 3u);
  EXPECT_EQ(Outs[0], 0x56u);
  EXPECT_EQ(Outs[1], 0x1234u);
  EXPECT_EQ(Outs[2], 0x12u);
}

TEST(SimulatorMemory, SignExtendingLoads) {
  const char *Src = R"(
.data
buf:
  .byte 0x80, 0xff
.text
main:
  la  t0, buf
  lb  a0, 0(t0)
  ret
)";
  Program Prog = parseAsmOrDie(Src, "mem");
  EXPECT_EQ(simulate(Prog).ReturnValue, 0xffffff80u);
}

TEST(SimulatorMemory, OutOfBoundsTraps) {
  const char *Src = R"(
main:
  li  t0, 0x7ffffff0
  lw  a0, 0(t0)
  ret
)";
  Program Prog = parseAsmOrDie(Src, "trap");
  Trace T = simulate(Prog);
  EXPECT_EQ(T.End, Outcome::Trap);
  EXPECT_FALSE(T.HasReturnValue);
}

TEST(SimulatorMemory, MisalignedAccessTraps) {
  const char *Src = R"(
main:
  li  t0, 0x1001
  lw  a0, 0(t0)
  ret
)";
  Program Prog = parseAsmOrDie(Src, "trap");
  EXPECT_EQ(simulate(Prog).End, Outcome::Trap);
}

TEST(SimulatorControl, BranchesAndLoops) {
  const char *Src = R"(
main:
  li  t0, 10
  li  a0, 0
loop:
  add a0, a0, t0
  addi t0, t0, -1
  bgtz t0, loop
  ret
)";
  Program Prog = parseAsmOrDie(Src, "sum");
  EXPECT_EQ(simulate(Prog).ReturnValue, 55u);
}

TEST(SimulatorControl, CycleBudgetHangs) {
  const char *Src = R"(
main:
loop:
  j loop
)";
  Program Prog = parseAsmOrDie(Src, "hang");
  RunOptions Opts;
  Opts.MaxCycles = 100;
  Trace T = simulate(Prog, Opts);
  EXPECT_EQ(T.End, Outcome::Hang);
  EXPECT_EQ(T.Cycles, 100u);
}

TEST(SimulatorInjection, FlipChangesOneBit) {
  const char *Src = R"(
main:
  li  a0, 0
  nop
  nop
  ret
)";
  Program Prog = parseAsmOrDie(Src, "inj");
  // Flip bit 3 of a0 after the first instruction: returns 8.
  Trace T = simulateWithInjection(Prog, {1, 10, 3});
  EXPECT_EQ(T.ReturnValue, 8u);
  // Same flip before `li` is overwritten: masked.
  Trace T2 = simulateWithInjection(Prog, {0, 10, 3});
  EXPECT_EQ(T2.ReturnValue, 0u);
  EXPECT_EQ(T2.TraceHash, simulate(Prog).TraceHash);
}

TEST(SimulatorInjection, X0InjectionIsANop) {
  const char *Src = R"(
main:
  li  a0, 7
  ret
)";
  Program Prog = parseAsmOrDie(Src, "inj");
  Trace Golden = simulate(Prog);
  Trace T = simulateWithInjection(Prog, {0, RegZero, 5});
  EXPECT_EQ(T.TraceHash, Golden.TraceHash);
}

TEST(SimulatorTrace, HashDistinguishesControlFlow) {
  const char *Src = R"(
main:
  li  t0, 1
  beqz t0, alt
  li  a0, 10
  ret
alt:
  li  a0, 20
  ret
)";
  Program Prog = parseAsmOrDie(Src, "cf");
  Trace Golden = simulate(Prog);
  // Flipping t0's LSB after the li flips the branch: different trace AND
  // different observable (return value).
  Trace Faulty = simulateWithInjection(Prog, {1, 5, 0});
  EXPECT_NE(Faulty.TraceHash, Golden.TraceHash);
  EXPECT_NE(Faulty.ObservableHash, Golden.ObservableHash);
  EXPECT_EQ(Faulty.ReturnValue, 20u);
}

TEST(SimulatorTrace, NarrowWidthMachines) {
  const char *Src = R"(
.width 4
main:
  li  t0, 7
  addi t0, t0, 12     # 19 mod 16 = 3
  mv  a0, t0
  ret
)";
  Program Prog = parseAsmOrDie(Src, "w4");
  EXPECT_EQ(simulate(Prog).ReturnValue, 3u);
}

} // namespace
