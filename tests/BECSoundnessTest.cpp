//===- tests/BECSoundnessTest.cpp - Randomized soundness fuzzing -----------===//
///
/// \file
/// The strongest property test in the suite: generates random loopy ALU
/// programs, runs the full BEC analysis, then performs an exhaustive
/// per-segment fault-injection campaign and checks every prediction
/// against ground truth (the paper's Section V methodology):
///
///   * sites classified masked must reproduce the golden trace,
///   * sites in one equivalence class must produce identical traces,
///   * cross-segment (ToOutput) merges must link identical traces,
///
/// across random widths, opcodes, and control flow. Any unsound
/// classification fails the test with the offending program attached.
///
//===----------------------------------------------------------------------===//

#include "fi/Validation.h"
#include "fuzz/Generator.h"
#include "ir/AsmParser.h"
#include "sim/Interpreter.h"
#include "support/Xoshiro.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

/// Generates a random halting program: a handful of constants, a bounded
/// counting loop whose body is a random mix of ALU operations and an
/// optional skip branch, and observable outputs.
static std::string randomProgram(Xoshiro256 &Rng, unsigned Width) {
  const char *Pool[] = {"t0", "t1", "t2", "t3", "t4", "t5",
                        "t6", "s2", "s3", "s4", "s5"};
  constexpr unsigned PoolSize = sizeof(Pool) / sizeof(Pool[0]);
  auto Reg = [&] { return Pool[Rng.below(PoolSize)]; };
  int64_t MaxImm = static_cast<int64_t>(lowBitMask(Width) >> 1);
  auto Imm = [&] { return std::to_string(Rng.range(-MaxImm - 1, MaxImm)); };
  auto ShiftImm = [&] { return std::to_string(Rng.below(Width)); };

  std::string Src = ".width " + std::to_string(Width) + "\nmain:\n";
  // Seed some registers with constants, leave others machine-initialized.
  unsigned Seeds = 3 + static_cast<unsigned>(Rng.below(4));
  for (unsigned I = 0; I < Seeds; ++I)
    Src += std::string("  li ") + Reg() + ", " + Imm() + "\n";
  unsigned Iters = 2 + static_cast<unsigned>(Rng.below(4));
  Src += "  li s1, " + std::to_string(Iters) + "\n";
  Src += "loop:\n";

  unsigned BodyLen = 6 + static_cast<unsigned>(Rng.below(12));
  bool InSkip = false;
  unsigned SkipId = 0;
  for (unsigned I = 0; I < BodyLen; ++I) {
    if (!InSkip && Rng.chance(1, 6)) {
      Src += std::string("  beqz ") + Reg() + ", skip" +
             std::to_string(SkipId) + "\n";
      InSkip = true;
    }
    switch (Rng.below(16)) {
    case 0:
      Src += std::string("  add ") + Reg() + ", " + Reg() + ", " + Reg() +
             "\n";
      break;
    case 1:
      Src += std::string("  sub ") + Reg() + ", " + Reg() + ", " + Reg() +
             "\n";
      break;
    case 2:
      Src += std::string("  and ") + Reg() + ", " + Reg() + ", " + Reg() +
             "\n";
      break;
    case 3:
      Src += std::string("  or ") + Reg() + ", " + Reg() + ", " + Reg() +
             "\n";
      break;
    case 4:
      Src += std::string("  xor ") + Reg() + ", " + Reg() + ", " + Reg() +
             "\n";
      break;
    case 5:
      Src += std::string("  mv ") + Reg() + ", " + Reg() + "\n";
      break;
    case 6:
      Src += std::string("  andi ") + Reg() + ", " + Reg() + ", " + Imm() +
             "\n";
      break;
    case 7:
      Src += std::string("  ori ") + Reg() + ", " + Reg() + ", " + Imm() +
             "\n";
      break;
    case 8:
      Src += std::string("  xori ") + Reg() + ", " + Reg() + ", " + Imm() +
             "\n";
      break;
    case 9:
      Src += std::string("  addi ") + Reg() + ", " + Reg() + ", " + Imm() +
             "\n";
      break;
    case 10:
      Src += std::string("  slli ") + Reg() + ", " + Reg() + ", " +
             ShiftImm() + "\n";
      break;
    case 11:
      Src += std::string("  srli ") + Reg() + ", " + Reg() + ", " +
             ShiftImm() + "\n";
      break;
    case 12:
      Src += std::string("  srai ") + Reg() + ", " + Reg() + ", " +
             ShiftImm() + "\n";
      break;
    case 13:
      Src += std::string("  sltiu ") + Reg() + ", " + Reg() + ", " + Imm() +
             "\n";
      break;
    case 14:
      Src += std::string("  slt ") + Reg() + ", " + Reg() + ", " + Reg() +
             "\n";
      break;
    case 15:
      Src += std::string("  seqz ") + Reg() + ", " + Reg() + "\n";
      break;
    }
    if (InSkip && Rng.chance(1, 3)) {
      Src += "skip" + std::to_string(SkipId++) + ":\n";
      InSkip = false;
    }
  }
  if (InSkip)
    Src += "skip" + std::to_string(SkipId++) + ":\n";
  Src += "  addi s1, s1, -1\n  bnez s1, loop\n";
  Src += std::string("  out ") + Reg() + "\n";
  Src += std::string("  out ") + Reg() + "\n";
  Src += "  mv a0, " + std::string(Reg()) + "\n  ret\n";
  return Src;
}

class BECSoundnessFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(BECSoundnessFuzz, RandomProgramsValidateSound) {
  Xoshiro256 Rng(0xbec00000ull + GetParam());
  unsigned Widths[] = {4, 8, 16, 32};
  unsigned Width = Widths[GetParam() % 4];
  std::string Src = randomProgram(Rng, Width);
  AsmParseResult Parsed = parseAsm(Src, "fuzz");
  ASSERT_TRUE(Parsed.succeeded()) << Parsed.diagText() << "\n" << Src;

  Program &Prog = *Parsed.Prog;
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  ASSERT_EQ(Golden.End, Outcome::Finished) << Src;

  ValidationResult R = validateAnalysis(A, Golden);
  EXPECT_EQ(R.UnsoundPairs, 0u) << Src;
  EXPECT_EQ(R.MaskedViolations, 0u) << Src;
  EXPECT_EQ(R.CrossViolations, 0u) << Src;
  EXPECT_GT(R.RunsExecuted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, BECSoundnessFuzz,
                         ::testing::Range<unsigned>(0, 48));

/// The same soundness property over the `bec fuzz` generator's richer
/// idiom menu (memory mixes, compare chains, multiple loops — shapes the
/// local randomProgram above never emits). A seeded sample of 50
/// programs; the validation window is bounded so the exhaustive ground
/// truth stays cheap per program.
class GeneratedCorpusSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(GeneratedCorpusSoundness, ValidatesSound) {
  fuzz::GeneratedProgram G =
      fuzz::generateProgram(fuzz::programSeed(0xbec5eed5ull, GetParam()));
  ASSERT_TRUE(G.Error.empty()) << G.Error << "\n" << G.Asm;

  BECAnalysis A = BECAnalysis::run(G.Prog);
  Trace Golden = simulate(G.Prog);
  ASSERT_EQ(Golden.End, Outcome::Finished) << G.Asm;

  ValidationResult R = validateAnalysis(A, Golden, /*MaxCycles=*/48);
  EXPECT_EQ(R.UnsoundPairs, 0u) << G.Asm;
  EXPECT_EQ(R.MaskedViolations, 0u) << G.Asm;
  EXPECT_EQ(R.CrossViolations, 0u) << G.Asm;
  EXPECT_GT(R.RunsExecuted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, GeneratedCorpusSoundness,
                         ::testing::Range<unsigned>(0, 50));

} // namespace
