//===- tests/CampaignTest.cpp - Campaign planning and execution ------------===//

#include "core/Metrics.h"
#include "fi/Campaign.h"
#include "fi/CampaignPlan.h"
#include "fi/Checkpoint.h"
#include "fi/Engine.h"
#include "fi/Validation.h"
#include "ir/AsmParser.h"
#include "sim/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>

using namespace bec;

namespace {

static const char *SmallLoop = R"(
main:
  li  t0, 6
  li  a0, 0
loop:
  andi t1, t0, 3
  add  a0, a0, t1
  addi t0, t0, -1
  bnez t0, loop
  out  a0
  ret
)";

TEST(CampaignPlan, ExhaustiveCoversEverySite) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::vector<PlannedRun> Plan =
      planCampaign(A, Golden, PlanKind::Exhaustive);
  EXPECT_EQ(Plan.size(), Golden.Cycles * NumRegs * Prog.Width);
}

TEST(CampaignPlan, PlanSizesMatchTheMetricCounts) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  FaultInjectionCounts C = countFaultInjectionRuns(A, Golden.Executed);
  std::vector<PlannedRun> Value =
      planCampaign(A, Golden, PlanKind::ValueLevel);
  EXPECT_EQ(Value.size(), C.ValueLevelRuns);
  std::vector<PlannedRun> Bit = planCampaign(A, Golden, PlanKind::BitLevel);
  // The plan does not deduplicate across segments (each dynamic segment
  // probes its classes), so it can only be >= the fully-deduplicated
  // metric count and <= the value-level count.
  EXPECT_GE(Bit.size(), C.BitLevelRuns);
  EXPECT_LE(Bit.size(), Value.size());
}

TEST(CampaignRun, GoldenReplayIsMasked) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  // Injecting into x0 anywhere is architecturally impossible -> masked.
  std::vector<PlannedRun> Plan;
  for (uint64_t C = 0; C < Golden.Cycles; ++C)
    Plan.push_back({C, RegZero, 7, 0, -1});
  CampaignResult R = runCampaign(Prog, Golden, std::move(Plan));
  EXPECT_EQ(R.EffectCounts[static_cast<unsigned>(FaultEffect::Masked)],
            R.Runs);
}

TEST(CampaignRun, ClassifiesSilentDataCorruption) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  (void)A;
  Trace Golden = simulate(Prog);
  // Flip a0's LSB right before the out: guaranteed SDC.
  std::vector<PlannedRun> Plan = {
      {Golden.Cycles - 2, RegA0, 0, 0, -1},
  };
  CampaignResult R = runCampaign(Prog, Golden, std::move(Plan));
  EXPECT_EQ(R.EffectCounts[static_cast<unsigned>(FaultEffect::SDC)], 1u);
}

TEST(CampaignRun, MaskedPlusLiveEqualsRuns) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::vector<PlannedRun> Plan =
      planCampaign(A, Golden, PlanKind::ValueLevel);
  CampaignResult R = runCampaign(Prog, Golden, std::move(Plan));
  uint64_t Sum = 0;
  for (uint64_t Count : R.EffectCounts)
    Sum += Count;
  EXPECT_EQ(Sum, R.Runs);
  EXPECT_EQ(R.TraceHashes.size(), R.Runs);
}

TEST(CampaignRun, BecPrunedRunsAreSubsetEquivalent) {
  // Every run the BEC plan skips is either masked (class s0: trace equals
  // golden) or duplicates a kept run's class. Verified per segment by the
  // validator; here we check the aggregate: the value-level campaign's
  // distinct trace set equals the BEC campaign's distinct trace set plus
  // golden-identical traces.
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  CampaignResult Value = runCampaign(
      Prog, Golden, planCampaign(A, Golden, PlanKind::ValueLevel));
  CampaignResult Bit =
      runCampaign(Prog, Golden, planCampaign(A, Golden, PlanKind::BitLevel));
  std::set<uint64_t> ValueTraces(Value.TraceHashes.begin(),
                                 Value.TraceHashes.end());
  std::set<uint64_t> BitTraces(Bit.TraceHashes.begin(),
                               Bit.TraceHashes.end());
  BitTraces.insert(Golden.TraceHash);
  EXPECT_EQ(ValueTraces.size(), BitTraces.size())
      << "pruning must not lose any distinguishable fault effect";
}

TEST(Validation, SmallLoopIsSound) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  ValidationResult R = validateAnalysis(A, Golden);
  EXPECT_TRUE(R.sound());
  EXPECT_GT(R.SoundPrecisePairs, 0u);
  EXPECT_GT(R.MaskedChecked, 0u);
}

TEST(Validation, MotivatingExampleIsSound) {
  const char *Motivating = R"(
.width 4
main:
  li   a0, 0
  li   a1, 7
loop:
  andi a2, a1, 1
  andi a3, a1, 3
  addi a1, a1, -1
  seqz a2, a2
  snez a3, a3
  and  a2, a2, a3
  add  a0, a0, a2
  bnez a1, loop
  ret
)";
  Program Prog = parseAsmOrDie(Motivating, "motivating");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  ValidationResult R = validateAnalysis(A, Golden);
  EXPECT_TRUE(R.sound());
  EXPECT_EQ(R.UnsoundPairs, 0u);
}

TEST(Validation, XorChainCrossSegmentLinks) {
  // xor propagates faults to its output unconditionally; the input
  // segment's class merges with the output segment's class, producing a
  // cross-segment link the validator checks against trace ground truth.
  const char *Src = R"(
main:
  li  t0, 6
  li  t1, 3
  xor t2, t0, t1
  xor t3, t2, t1
  out t3
  ret
)";
  Program Prog = parseAsmOrDie(Src, "xorchain");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  ValidationResult R = validateAnalysis(A, Golden);
  EXPECT_TRUE(R.sound());
  EXPECT_GT(R.CrossChecked, 0u);
  EXPECT_EQ(R.CrossViolations, 0u);
}

//===----------------------------------------------------------------------===//
// The sharded engine (fi/Engine.h)
//===----------------------------------------------------------------------===//

/// Everything deterministic about a result (all but Seconds).
void expectSameResult(const CampaignResult &A, const CampaignResult &B) {
  EXPECT_EQ(A.Runs, B.Runs);
  EXPECT_EQ(A.EffectCounts, B.EffectCounts);
  EXPECT_EQ(A.DistinctTraces, B.DistinctTraces);
  EXPECT_EQ(A.ArchiveBytes, B.ArchiveBytes);
  EXPECT_EQ(A.Effects, B.Effects);
  EXPECT_EQ(A.TraceHashes, B.TraceHashes);
}

TEST(CampaignEngine, ShardedMatchesSerialAtEveryThreadCount) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  CampaignResult Serial = runCampaign(
      Prog, Golden, planCampaign(A, Golden, PlanKind::ValueLevel));

  PlanOptions PO;
  PO.Kind = PlanKind::ValueLevel;
  CampaignPlan Plan = CampaignPlan::build(A, Golden, PO);
  for (unsigned Threads : {1u, 2u, 7u}) {
    CampaignExecOptions Exec;
    Exec.Threads = Threads;
    Exec.ShardSize = 8; // Many shards: exercise stealing.
    CampaignResult R = runCampaign(Prog, Golden, Plan, Exec);
    EXPECT_TRUE(R.Error.empty()) << R.Error;
    EXPECT_FALSE(R.Interrupted);
    expectSameResult(Serial, R);
  }
}

TEST(CampaignEngine, UnsortedPlanExecutesBySortedOrderSlotsByPlanOrder) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::vector<PlannedRun> Forward =
      planCampaign(A, Golden, PlanKind::ValueLevel);
  std::vector<PlannedRun> Reversed(Forward.rbegin(), Forward.rend());
  CampaignResult F = runCampaign(Prog, Golden, Forward);
  CampaignResult R = runCampaign(Prog, Golden, Reversed);
  ASSERT_EQ(F.Runs, R.Runs);
  // Slot i of the reversed result is slot N-1-i of the forward one.
  for (size_t I = 0; I < Forward.size(); ++I) {
    EXPECT_EQ(R.Effects[I], F.Effects[Forward.size() - 1 - I]);
    EXPECT_EQ(R.TraceHashes[I], F.TraceHashes[Forward.size() - 1 - I]);
  }
  EXPECT_EQ(F.EffectCounts, R.EffectCounts);
}

/// Interrupt a checkpointed campaign after K shards, resume it (with a
/// different thread count), and require the final result bit-identical
/// to the uninterrupted baseline.
void checkInterruptResume(const Program &Prog, const Trace &Golden,
                          const CampaignPlan &Plan, uint64_t StopAfter,
                          const CampaignResult &Baseline) {
  std::string Path = testing::TempDir() + "/campaign_resume_" +
                     std::to_string(StopAfter) + ".jsonl";
  std::remove(Path.c_str());

  // One thread for the interrupted phase: the stop is then checked
  // before every dispatch, so *exactly* StopAfter shards complete (a
  // second worker's in-flight shard could otherwise finish the whole
  // campaign when stopping one short of the end).
  CampaignExecOptions Partial;
  Partial.Threads = 1;
  Partial.ShardSize = 16;
  Partial.CheckpointPath = Path;
  Partial.StopAfterShards = StopAfter;
  CampaignResult Interrupted = runCampaign(Prog, Golden, Plan, Partial);
  ASSERT_TRUE(Interrupted.Error.empty()) << Interrupted.Error;
  ASSERT_TRUE(Interrupted.Interrupted);
  EXPECT_LT(Interrupted.Runs, Baseline.Runs);
  // The aggregate of the completed shards is consistent on its own.
  uint64_t Sum = 0;
  for (uint64_t C : Interrupted.EffectCounts)
    Sum += C;
  EXPECT_EQ(Sum, Interrupted.Runs);

  CampaignExecOptions ResumeExec;
  ResumeExec.Threads = 3; // Any thread count may resume any checkpoint.
  ResumeExec.ShardSize = 16;
  ResumeExec.CheckpointPath = Path;
  ResumeExec.Resume = true;
  CampaignResult Resumed = runCampaign(Prog, Golden, Plan, ResumeExec);
  ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
  EXPECT_FALSE(Resumed.Interrupted);
  EXPECT_GT(Resumed.ResumedShards, 0u);
  EXPECT_LT(Resumed.ResumedShards, Resumed.Shards);
  expectSameResult(Baseline, Resumed);
  std::remove(Path.c_str());
}

TEST(CampaignEngine, InterruptAndResumeIsBitIdentical) {
  const Workload *W = findWorkload("bitcount");
  ASSERT_NE(W, nullptr);
  Program Prog = loadWorkload(*W);
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  PlanOptions PO;
  PO.Kind = PlanKind::BitLevel;
  PO.MaxCycles = 120;
  CampaignPlan Plan = CampaignPlan::build(A, Golden, PO);
  // The default plan executes with prefix checkpointing: the resume
  // battery below exercises restore-from-snapshot across interrupts.
  ASSERT_TRUE(Plan.prefixCheckpoint());
  uint64_t Shards = (Plan.runs().size() + 15) / 16;
  ASSERT_GT(Shards, 4u);

  CampaignExecOptions Full;
  Full.ShardSize = 16;
  CampaignResult Baseline = runCampaign(Prog, Golden, Plan, Full);
  ASSERT_TRUE(Baseline.Error.empty()) << Baseline.Error;
  EXPECT_GT(Baseline.CheckpointsCreated, 0u);

  // Kill after the first shard, around the middle, and one short of the
  // end: resume must reconstruct the identical report every time.
  for (uint64_t StopAfter : {uint64_t(1), Shards / 2, Shards - 1})
    checkInterruptResume(Prog, Golden, Plan, StopAfter, Baseline);

  // Same battery with checkpointing off: resume correctness must not
  // depend on the execution strategy (and both strategies must agree).
  PlanOptions OffPO = PO;
  OffPO.PrefixCheckpoint = false;
  CampaignPlan OffPlan = CampaignPlan::build(A, Golden, OffPO);
  ASSERT_FALSE(OffPlan.prefixCheckpoint());
  CampaignResult OffBaseline = runCampaign(Prog, Golden, OffPlan, Full);
  ASSERT_TRUE(OffBaseline.Error.empty()) << OffBaseline.Error;
  expectSameResult(Baseline, OffBaseline);
  for (uint64_t StopAfter : {uint64_t(1), Shards / 2, Shards - 1})
    checkInterruptResume(Prog, Golden, OffPlan, StopAfter, OffBaseline);
}

TEST(CampaignEngine, ResumeRejectsCheckpointOfDifferentPlacementPeriod) {
  // The resolved checkpoint period is part of the plan fingerprint: a
  // shard file written under K=7 placement must not resume a K=64
  // campaign (the shard stream is the same, but silently switching
  // placement would defeat the fingerprint's plan-identity promise).
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::string Path = testing::TempDir() + "/campaign_placement.jsonl";
  std::remove(Path.c_str());

  PlanOptions Dense;
  Dense.Kind = PlanKind::ValueLevel;
  Dense.CheckpointEveryK = 7;
  CampaignPlan DensePlan = CampaignPlan::build(A, Golden, Dense);
  CampaignExecOptions Exec;
  Exec.CheckpointPath = Path;
  ASSERT_TRUE(runCampaign(Prog, Golden, DensePlan, Exec).Error.empty());

  PlanOptions Sparse = Dense;
  Sparse.CheckpointEveryK = 64;
  CampaignPlan SparsePlan = CampaignPlan::build(A, Golden, Sparse);
  EXPECT_NE(DensePlan.fingerprint(), SparsePlan.fingerprint());
  Exec.Resume = true;
  CampaignResult R = runCampaign(Prog, Golden, SparsePlan, Exec);
  EXPECT_NE(R.Error.find("different campaign plan"), std::string::npos)
      << R.Error;
  std::remove(Path.c_str());
}

TEST(CampaignEngine, ResumeRejectsCheckpointOfDifferentPlan) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::string Path = testing::TempDir() + "/campaign_foreign.jsonl";
  std::remove(Path.c_str());

  PlanOptions ValueOpts;
  ValueOpts.Kind = PlanKind::ValueLevel;
  CampaignPlan Value = CampaignPlan::build(A, Golden, ValueOpts);
  CampaignExecOptions Exec;
  Exec.CheckpointPath = Path;
  ASSERT_TRUE(runCampaign(Prog, Golden, Value, Exec).Error.empty());

  PlanOptions BitOpts;
  BitOpts.Kind = PlanKind::BitLevel;
  CampaignPlan Bit = CampaignPlan::build(A, Golden, BitOpts);
  Exec.Resume = true;
  CampaignResult R = runCampaign(Prog, Golden, Bit, Exec);
  EXPECT_NE(R.Error.find("different campaign plan"), std::string::npos)
      << R.Error;
  std::remove(Path.c_str());
}

TEST(CampaignEngine, TornTrailingCheckpointRecordIsIgnored) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  PlanOptions PO;
  PO.Kind = PlanKind::ValueLevel;
  CampaignPlan Plan = CampaignPlan::build(A, Golden, PO);
  CampaignResult Baseline = runCampaign(Prog, Golden, Plan, {});

  std::string Path = testing::TempDir() + "/campaign_torn.jsonl";
  std::remove(Path.c_str());
  CampaignExecOptions Exec;
  Exec.ShardSize = 8;
  Exec.CheckpointPath = Path;
  Exec.StopAfterShards = 2;
  ASSERT_TRUE(runCampaign(Prog, Golden, Plan, Exec).Error.empty());
  {
    // What a kill mid-write leaves behind: a half record, no newline.
    std::ofstream Torn(Path, std::ios::app);
    Torn << "{\"shard\":3,\"effects\":[0,1";
  }
  CampaignExecOptions ResumeExec;
  ResumeExec.ShardSize = 8;
  ResumeExec.CheckpointPath = Path;
  ResumeExec.Resume = true;
  CampaignResult Resumed = runCampaign(Prog, Golden, Plan, ResumeExec);
  ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
  EXPECT_FALSE(Resumed.Interrupted);
  expectSameResult(Baseline, Resumed);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Stratified sampling (fi/CampaignPlan.h)
//===----------------------------------------------------------------------===//

TEST(CampaignPlan, StratifiedSampleIsDeterministicSortedAndSized) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  PlanOptions PO;
  PO.Kind = PlanKind::ValueLevel;
  PO.SampleSize = 40;
  PO.SampleSeed = 7;
  CampaignPlan S1 = CampaignPlan::build(A, Golden, PO);
  CampaignPlan S2 = CampaignPlan::build(A, Golden, PO);
  ASSERT_EQ(S1.runs().size(), 40u);
  EXPECT_GT(S1.populationRuns(), 40u);
  EXPECT_EQ(S1.fingerprint(), S2.fingerprint());
  for (size_t I = 0; I < S1.runs().size(); ++I) {
    EXPECT_EQ(S1.runs()[I].AfterCycle, S2.runs()[I].AfterCycle);
    EXPECT_EQ(S1.runs()[I].R, S2.runs()[I].R);
    EXPECT_EQ(S1.runs()[I].Bit, S2.runs()[I].Bit);
    if (I)
      EXPECT_LE(S1.runs()[I - 1].AfterCycle, S1.runs()[I].AfterCycle);
  }
  PO.SampleSeed = 8;
  CampaignPlan S3 = CampaignPlan::build(A, Golden, PO);
  EXPECT_NE(S1.fingerprint(), S3.fingerprint());
}

TEST(CampaignPlan, FingerprintSeparatesKindWindowAndSeed) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  PlanOptions Base;
  Base.Kind = PlanKind::ValueLevel;
  uint64_t FP = CampaignPlan::build(A, Golden, Base).fingerprint();
  PlanOptions Bit = Base;
  Bit.Kind = PlanKind::BitLevel;
  EXPECT_NE(FP, CampaignPlan::build(A, Golden, Bit).fingerprint());
  PlanOptions Window = Base;
  Window.MaxCycles = 5;
  EXPECT_NE(FP, CampaignPlan::build(A, Golden, Window).fingerprint());
  // Checkpoint placement is fingerprint-covered too: off, the auto
  // period, and an explicit period all key differently (unless the
  // explicit period happens to equal the resolved auto one).
  PlanOptions NoCk = Base;
  NoCk.PrefixCheckpoint = false;
  EXPECT_NE(FP, CampaignPlan::build(A, Golden, NoCk).fingerprint());
  PlanOptions Every3 = Base;
  Every3.CheckpointEveryK = 3;
  EXPECT_NE(FP, CampaignPlan::build(A, Golden, Every3).fingerprint());
}

TEST(CampaignPlan, CheckpointPlacementCoversTheTraceAndAutoTunes) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  PlanOptions PO;
  PO.Kind = PlanKind::ValueLevel;
  PO.CheckpointEveryK = 4;
  CampaignPlan Plan = CampaignPlan::build(A, Golden, PO);
  ASSERT_TRUE(Plan.prefixCheckpoint());
  EXPECT_EQ(Plan.checkpointPeriod(), 4u);
  // Snapshots start at cycle 0, stride by the period, and stay strictly
  // inside the golden run (a snapshot at the final cycle would capture
  // a finished machine no fork can continue from).
  ASSERT_FALSE(Plan.checkpointCycles().empty());
  EXPECT_EQ(Plan.checkpointCycles().front(), 0u);
  for (size_t I = 0; I < Plan.checkpointCycles().size(); ++I) {
    EXPECT_EQ(Plan.checkpointCycles()[I], I * 4);
    EXPECT_LT(Plan.checkpointCycles()[I], Golden.Cycles);
  }
  // Liveness masks ride along for the engine's reconvergence test.
  EXPECT_EQ(Plan.liveInMasks().size(), Prog.size());

  // The auto-tuned period: ~16 cycles for dense plans, stretched so
  // sparse plans never carry more checkpoints than runs, floored so
  // long traces stay under 4096 snapshots, and never zero.
  EXPECT_EQ(autoCheckpointPeriod(1000, 1000), 16u);
  EXPECT_EQ(autoCheckpointPeriod(32000, 10), 3200u);
  EXPECT_EQ(autoCheckpointPeriod(uint64_t(1) << 20, uint64_t(1) << 20),
            256u);
  EXPECT_EQ(autoCheckpointPeriod(0, 0), 1u);

  // Off means off: no period, no placement, no masks.
  PlanOptions Off = PO;
  Off.PrefixCheckpoint = false;
  CampaignPlan OffPlan = CampaignPlan::build(A, Golden, Off);
  EXPECT_FALSE(OffPlan.prefixCheckpoint());
  EXPECT_EQ(OffPlan.checkpointPeriod(), 0u);
  EXPECT_TRUE(OffPlan.checkpointCycles().empty());
  EXPECT_TRUE(OffPlan.liveInMasks().empty());
}

TEST(CampaignPlan, WilsonIntervalBehavesAtBoundaries) {
  RateInterval Zero = wilsonInterval(0, 100);
  EXPECT_EQ(Zero.Lo, 0.0);
  EXPECT_GT(Zero.Hi, 0.0);
  EXPECT_LT(Zero.Hi, 0.05);
  RateInterval One = wilsonInterval(100, 100);
  EXPECT_EQ(One.Hi, 1.0);
  EXPECT_GT(One.Lo, 0.95);
  RateInterval Half = wilsonInterval(50, 100);
  EXPECT_LT(Half.Lo, 0.5);
  EXPECT_GT(Half.Hi, 0.5);
  RateInterval Empty = wilsonInterval(0, 0);
  EXPECT_EQ(Empty.Lo, 0.0);
  EXPECT_EQ(Empty.Hi, 0.0);
}

TEST(CampaignSampling, CIBoundsContainExhaustiveRateOnAllWorkloads) {
  // The engine's statistical contract: on every bundled workload, the
  // 95% Wilson intervals of a stratified sample contain the rate an
  // exhaustive execution of the same enumerated fault space measures.
  // (Deterministic: fixed seed, fixed plans. Stratification plus
  // without-replacement draws make the real coverage comfortably above
  // the nominal 95%.)
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);

    PlanOptions FullOpts;
    FullOpts.Kind = PlanKind::ValueLevel;
    FullOpts.MaxCycles = 120;
    CampaignPlan Full = CampaignPlan::build(A, Golden, FullOpts);
    CampaignResult Exhaustive = runCampaign(Prog, Golden, Full, {});
    ASSERT_TRUE(Exhaustive.Error.empty());
    ASSERT_GT(Exhaustive.Runs, 800u) << W.Name;

    PlanOptions SampleOpts = FullOpts;
    SampleOpts.SampleSize = 800;
    SampleOpts.SampleSeed = 1;
    CampaignPlan Sampled = CampaignPlan::build(A, Golden, SampleOpts);
    CampaignResult R = runCampaign(Prog, Golden, Sampled, {});
    ASSERT_TRUE(R.Error.empty());
    ASSERT_TRUE(R.Sample.has_value()) << W.Name;
    EXPECT_EQ(R.Sample->PopulationRuns, Exhaustive.Runs) << W.Name;

    for (FaultEffect E : {FaultEffect::SDC, FaultEffect::Trap}) {
      double TrueRate = double(Exhaustive.EffectCounts[size_t(E)]) /
                        double(Exhaustive.Runs);
      const RateInterval &CI = R.Sample->CI[size_t(E)];
      EXPECT_LE(CI.Lo, TrueRate)
          << W.Name << " " << faultEffectName(E) << " sample rate "
          << R.Sample->Rate[size_t(E)];
      EXPECT_GE(CI.Hi, TrueRate)
          << W.Name << " " << faultEffectName(E) << " sample rate "
          << R.Sample->Rate[size_t(E)];
    }
  }
}

TEST(CampaignRun, PrunedVerdictsEqualExhaustivePerRepresentative) {
  // Every representative the BEC plan keeps must classify exactly as the
  // exhaustive run at the same (cycle, reg, bit) site: pruning changes
  // campaign cost, never a verdict.
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::vector<PlannedRun> ExPlan =
      planCampaign(A, Golden, PlanKind::Exhaustive);
  CampaignResult Ex = runCampaign(Prog, Golden, ExPlan);
  std::map<uint64_t, FaultEffect> BySite;
  for (size_t I = 0; I < ExPlan.size(); ++I)
    BySite[(ExPlan[I].AfterCycle << 16) | (uint64_t(ExPlan[I].R) << 8) |
           ExPlan[I].Bit] = Ex.Effects[I];

  std::vector<PlannedRun> BitPlan =
      planCampaign(A, Golden, PlanKind::BitLevel, Golden.Cycles - 1);
  ASSERT_FALSE(BitPlan.empty());
  CampaignResult Bit = runCampaign(Prog, Golden, BitPlan);
  for (size_t I = 0; I < BitPlan.size(); ++I) {
    uint64_t Key = (BitPlan[I].AfterCycle << 16) |
                   (uint64_t(BitPlan[I].R) << 8) | BitPlan[I].Bit;
    auto It = BySite.find(Key);
    ASSERT_NE(It, BySite.end());
    EXPECT_EQ(It->second, Bit.Effects[I]) << "site " << Key;
  }
}

} // namespace
