//===- tests/CampaignTest.cpp - Campaign planning and execution ------------===//

#include "core/Metrics.h"
#include "fi/Campaign.h"
#include "fi/Validation.h"
#include "ir/AsmParser.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

static const char *SmallLoop = R"(
main:
  li  t0, 6
  li  a0, 0
loop:
  andi t1, t0, 3
  add  a0, a0, t1
  addi t0, t0, -1
  bnez t0, loop
  out  a0
  ret
)";

TEST(CampaignPlan, ExhaustiveCoversEverySite) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::vector<PlannedRun> Plan =
      planCampaign(A, Golden, PlanKind::Exhaustive);
  EXPECT_EQ(Plan.size(), Golden.Cycles * NumRegs * Prog.Width);
}

TEST(CampaignPlan, PlanSizesMatchTheMetricCounts) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  FaultInjectionCounts C = countFaultInjectionRuns(A, Golden.Executed);
  std::vector<PlannedRun> Value =
      planCampaign(A, Golden, PlanKind::ValueLevel);
  EXPECT_EQ(Value.size(), C.ValueLevelRuns);
  std::vector<PlannedRun> Bit = planCampaign(A, Golden, PlanKind::BitLevel);
  // The plan does not deduplicate across segments (each dynamic segment
  // probes its classes), so it can only be >= the fully-deduplicated
  // metric count and <= the value-level count.
  EXPECT_GE(Bit.size(), C.BitLevelRuns);
  EXPECT_LE(Bit.size(), Value.size());
}

TEST(CampaignRun, GoldenReplayIsMasked) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  // Injecting into x0 anywhere is architecturally impossible -> masked.
  std::vector<PlannedRun> Plan;
  for (uint64_t C = 0; C < Golden.Cycles; ++C)
    Plan.push_back({C, RegZero, 7, 0, -1});
  CampaignResult R = runCampaign(Prog, Golden, std::move(Plan));
  EXPECT_EQ(R.EffectCounts[static_cast<unsigned>(FaultEffect::Masked)],
            R.Runs);
}

TEST(CampaignRun, ClassifiesSilentDataCorruption) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  (void)A;
  Trace Golden = simulate(Prog);
  // Flip a0's LSB right before the out: guaranteed SDC.
  std::vector<PlannedRun> Plan = {
      {Golden.Cycles - 2, RegA0, 0, 0, -1},
  };
  CampaignResult R = runCampaign(Prog, Golden, std::move(Plan));
  EXPECT_EQ(R.EffectCounts[static_cast<unsigned>(FaultEffect::SDC)], 1u);
}

TEST(CampaignRun, MaskedPlusLiveEqualsRuns) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  std::vector<PlannedRun> Plan =
      planCampaign(A, Golden, PlanKind::ValueLevel);
  CampaignResult R = runCampaign(Prog, Golden, std::move(Plan));
  uint64_t Sum = 0;
  for (uint64_t Count : R.EffectCounts)
    Sum += Count;
  EXPECT_EQ(Sum, R.Runs);
  EXPECT_EQ(R.TraceHashes.size(), R.Runs);
}

TEST(CampaignRun, BecPrunedRunsAreSubsetEquivalent) {
  // Every run the BEC plan skips is either masked (class s0: trace equals
  // golden) or duplicates a kept run's class. Verified per segment by the
  // validator; here we check the aggregate: the value-level campaign's
  // distinct trace set equals the BEC campaign's distinct trace set plus
  // golden-identical traces.
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  CampaignResult Value = runCampaign(
      Prog, Golden, planCampaign(A, Golden, PlanKind::ValueLevel));
  CampaignResult Bit =
      runCampaign(Prog, Golden, planCampaign(A, Golden, PlanKind::BitLevel));
  std::set<uint64_t> ValueTraces(Value.TraceHashes.begin(),
                                 Value.TraceHashes.end());
  std::set<uint64_t> BitTraces(Bit.TraceHashes.begin(),
                               Bit.TraceHashes.end());
  BitTraces.insert(Golden.TraceHash);
  EXPECT_EQ(ValueTraces.size(), BitTraces.size())
      << "pruning must not lose any distinguishable fault effect";
}

TEST(Validation, SmallLoopIsSound) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  ValidationResult R = validateAnalysis(A, Golden);
  EXPECT_TRUE(R.sound());
  EXPECT_GT(R.SoundPrecisePairs, 0u);
  EXPECT_GT(R.MaskedChecked, 0u);
}

TEST(Validation, MotivatingExampleIsSound) {
  const char *Motivating = R"(
.width 4
main:
  li   a0, 0
  li   a1, 7
loop:
  andi a2, a1, 1
  andi a3, a1, 3
  addi a1, a1, -1
  seqz a2, a2
  snez a3, a3
  and  a2, a2, a3
  add  a0, a0, a2
  bnez a1, loop
  ret
)";
  Program Prog = parseAsmOrDie(Motivating, "motivating");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  ValidationResult R = validateAnalysis(A, Golden);
  EXPECT_TRUE(R.sound());
  EXPECT_EQ(R.UnsoundPairs, 0u);
}

TEST(Validation, XorChainCrossSegmentLinks) {
  // xor propagates faults to its output unconditionally; the input
  // segment's class merges with the output segment's class, producing a
  // cross-segment link the validator checks against trace ground truth.
  const char *Src = R"(
main:
  li  t0, 6
  li  t1, 3
  xor t2, t0, t1
  xor t3, t2, t1
  out t3
  ret
)";
  Program Prog = parseAsmOrDie(Src, "xorchain");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  ValidationResult R = validateAnalysis(A, Golden);
  EXPECT_TRUE(R.sound());
  EXPECT_GT(R.CrossChecked, 0u);
  EXPECT_EQ(R.CrossViolations, 0u);
}

} // namespace
