//===- tests/SupportTest.cpp - Support library unit tests ------------------===//

#include "support/BitUtils.h"
#include "support/Json.h"
#include "support/JsonParse.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/UnionFind.h"
#include "support/Xoshiro.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>

using namespace bec;

namespace {

TEST(BitUtils, MasksAndTruncation) {
  EXPECT_EQ(lowBitMask(1), 1u);
  EXPECT_EQ(lowBitMask(4), 0xfu);
  EXPECT_EQ(lowBitMask(32), 0xffffffffu);
  EXPECT_EQ(lowBitMask(64), ~uint64_t(0));
  EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
}

TEST(BitUtils, SignExtension) {
  EXPECT_EQ(signExtend(0b1000, 4), -8);
  EXPECT_EQ(signExtend(0b0111, 4), 7);
  EXPECT_EQ(signExtend(0xffffffff, 32), -1);
  EXPECT_EQ(signExtend(0x7fffffff, 32), 0x7fffffff);
  EXPECT_EQ(signExtend(~uint64_t(0), 64), -1);
  EXPECT_TRUE(isNegative(0b1000, 4));
  EXPECT_FALSE(isNegative(0b0111, 4));
}

TEST(BitUtils, FlipBit) {
  EXPECT_EQ(flipBit(0b1010, 0, 4), 0b1011u);
  EXPECT_EQ(flipBit(0b1010, 3, 4), 0b0010u);
}

TEST(UnionFind, MinimumIdRepresentatives) {
  UnionFind UF(8);
  EXPECT_EQ(UF.numClasses(), 8u);
  EXPECT_TRUE(UF.unite(5, 3));
  EXPECT_EQ(UF.find(5), 3u);
  EXPECT_TRUE(UF.unite(3, 7));
  EXPECT_EQ(UF.find(7), 3u);
  // Class 0 always stays its own representative.
  EXPECT_TRUE(UF.unite(7, 0));
  EXPECT_EQ(UF.find(5), 0u);
  EXPECT_EQ(UF.find(0), 0u);
  EXPECT_EQ(UF.numClasses(), 5u);
  // Re-uniting is a no-op.
  EXPECT_FALSE(UF.unite(5, 7));
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_FALSE(UF.connected(1, 2));
}

TEST(UnionFind, RepresentativeIsOrderIndependent) {
  UnionFind A(6), B(6);
  A.unite(1, 4);
  A.unite(4, 2);
  B.unite(4, 2);
  B.unite(2, 1);
  for (uint32_t I = 0; I < 6; ++I)
    EXPECT_EQ(A.find(I), B.find(I)) << I;
}

TEST(Xoshiro, DeterministicAndBounded) {
  Xoshiro256 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Xoshiro256 C(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(C.below(10), 10u);
    int64_t R = C.range(-5, 5);
    EXPECT_GE(R, -5);
    EXPECT_LE(R, 5);
  }
}

TEST(Xoshiro, SeedsProduceIndependentStreams) {
  // splitmix64 seeding must give full-entropy state even for degenerate
  // seeds, and distinct seeds must give distinct streams.
  Xoshiro256 Zero(0), One(1);
  std::set<uint64_t> FirstDraws;
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    Xoshiro256 G(Seed);
    FirstDraws.insert(G.next());
  }
  EXPECT_EQ(FirstDraws.size(), 64u);
  unsigned Equal = 0;
  for (int I = 0; I < 64; ++I)
    Equal += Zero.next() == One.next();
  EXPECT_LT(Equal, 4u);
}

TEST(Xoshiro, ChanceMatchesProbabilityRoughly) {
  Xoshiro256 G(2024);
  unsigned Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += G.chance(1, 4);
  // 1/4 within a generous tolerance; the sequence is deterministic, so
  // this cannot flake.
  EXPECT_GT(Hits, 2200u);
  EXPECT_LT(Hits, 2800u);
}

TEST(ThreadPool, InlineModeRunsOnCallerWithoutThreads) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.size(), 0u);
  std::thread::id Caller = std::this_thread::get_id();
  bool Ran = false;
  Pool.submit([&] {
    Ran = true;
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
  EXPECT_TRUE(Ran); // Inline pools execute at submission time.
  Pool.wait();
}

TEST(ThreadPool, ExecutesEveryTaskExactlyOnce) {
  constexpr unsigned NumTasks = 2000;
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::vector<std::atomic<unsigned>> Runs(NumTasks);
  for (unsigned I = 0; I < NumTasks; ++I)
    Pool.submit([&Runs, I] { Runs[I].fetch_add(1); });
  Pool.wait();
  for (unsigned I = 0; I < NumTasks; ++I)
    EXPECT_EQ(Runs[I].load(), 1u) << "task " << I;
}

TEST(ThreadPool, ConcurrencyStressAggregatesCorrectly) {
  // Many tiny tasks racing on a shared accumulator through an atomic;
  // the pool must neither lose nor duplicate work across several
  // wait/reuse rounds.
  ThreadPool Pool(8);
  std::atomic<uint64_t> Sum{0};
  uint64_t Expected = 0;
  for (unsigned Round = 0; Round < 5; ++Round) {
    for (uint64_t I = 1; I <= 500; ++I) {
      Pool.submit([&Sum, I] { Sum.fetch_add(I); });
      Expected += I;
    }
    Pool.wait(); // wait() must be reusable between bursts.
    EXPECT_EQ(Sum.load(), Expected) << "round " << Round;
  }
}

TEST(ThreadPool, RunSubmitsAndDrains) {
  ThreadPool Pool(3);
  std::atomic<unsigned> Count{0};
  std::vector<std::function<void()>> Tasks;
  for (unsigned I = 0; I < 100; ++I)
    Tasks.push_back([&Count] { Count.fetch_add(1); });
  Pool.run(std::move(Tasks));
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPool, ClampJobsBounds) {
  unsigned HW = std::thread::hardware_concurrency();
  if (HW == 0)
    HW = 1;
  EXPECT_EQ(ThreadPool::clampJobs(0), HW);
  EXPECT_EQ(ThreadPool::clampJobs(1), 1u);
  EXPECT_LE(ThreadPool::clampJobs(1u << 20), HW);
}

TEST(ThreadPool, DestructionDrainsPendingTasks) {
  std::atomic<unsigned> Count{0};
  {
    ThreadPool Pool(2);
    for (unsigned I = 0; I < 64; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    Pool.wait();
  } // Destructor joins the workers.
  EXPECT_EQ(Count.load(), 64u);
}

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter W;
  W.beginObject();
  W.key("name").value("a\"b\\c\nd");
  W.key("count").value(uint64_t(42));
  W.key("ok").value(true);
  W.key("ratio").value(0.25);
  W.key("items").beginArray().value(uint64_t(1)).value(uint64_t(2)).endArray();
  W.key("empty").beginObject().endObject();
  W.endObject();
  EXPECT_EQ(W.take(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":42,\"ok\":true,"
            "\"ratio\":0.25,\"items\":[1,2],\"empty\":{}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  // JSON has no NaN/Infinity literals; the writer must degrade to null
  // (and the result must stay parseable) rather than emit "nan"/"inf".
  JsonWriter W;
  W.beginObject();
  W.key("nan").value(std::nan(""));
  W.key("inf").value(std::numeric_limits<double>::infinity());
  W.key("ninf").value(-std::numeric_limits<double>::infinity());
  W.key("fine").value(1.5);
  W.endObject();
  std::string Doc = W.take();
  EXPECT_EQ(Doc, "{\"nan\":null,\"inf\":null,\"ninf\":null,\"fine\":1.5}");
  std::optional<JsonValue> V = parseJson(Doc);
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(V->member("nan")->isNull());
  EXPECT_EQ(V->member("fine")->asDouble(), 1.5);
}

TEST(TableRender, AlignsAndSeparates) {
  EXPECT_EQ(Table::withSeparators(0), "0");
  EXPECT_EQ(Table::withSeparators(999), "999");
  EXPECT_EQ(Table::withSeparators(1000), "1 000");
  EXPECT_EQ(Table::withSeparators(2819904), "2 819 904");
  EXPECT_EQ(Table::percent(0.3004), "30.04%");

  Table T({"name", "count"});
  T.row().cell("alpha").cell(uint64_t(12));
  T.row().cell("b").cell(uint64_t(1234));
  std::string Out = T.render();
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("1 234"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
}

TEST(JsonParse, ParsesTheFullValueGrammar) {
  std::string Err;
  std::optional<JsonValue> V = parseJson(
      R"({"s":"a\"b\u0041\n","n":-42,"d":2.5,"big":1e3,"t":true,)"
      R"("nul":null,"arr":[1,[2]],"obj":{"k":"v"}})",
      &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  EXPECT_EQ(*V->memberString("s"), "a\"bA\n");
  EXPECT_EQ(V->member("n")->asI64(), -42);
  EXPECT_EQ(V->member("d")->asDouble(), 2.5);
  EXPECT_EQ(V->member("big")->asDouble(), 1000.0);
  EXPECT_EQ(V->member("big")->asI64(), std::nullopt); // Not an int literal.
  EXPECT_EQ(V->member("t")->asBool(), true);
  EXPECT_TRUE(V->member("nul")->isNull());
  const std::vector<JsonValue> *Arr = V->member("arr")->asArray();
  ASSERT_NE(Arr, nullptr);
  EXPECT_EQ((*Arr)[0].asU64(), 1u);
  EXPECT_EQ((*(*Arr)[1].asArray())[0].asU64(), 2u);
  EXPECT_EQ(*V->member("obj")->memberString("k"), "v");
  EXPECT_EQ(V->member("missing"), nullptr);
  EXPECT_EQ(V->member("n")->asU64(), std::nullopt); // Negative.
}

TEST(JsonParse, RoundTripsThroughTheWriter) {
  const char *Doc =
      "{\"a\":[1,2.5,\"x\"],\"b\":{\"c\":true,\"d\":null},\"e\":-7}";
  std::optional<JsonValue> V = parseJson(Doc);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->toJson(), Doc);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  const char *Bad[] = {
      "",           "{",       "[1,",       "{\"a\"}",   "{\"a\":}",
      "{a:1}",      "[1 2]",   "tru",       "01x",       "1.2.3",
      "\"unterminated", "\"bad\\q\"", "{\"a\":1}extra", "\"\\u12\"",
      "\"\\ud800\"", // Unpaired surrogate.
  };
  for (const char *Doc : Bad) {
    std::string Err;
    EXPECT_FALSE(parseJson(Doc, &Err).has_value()) << Doc;
    EXPECT_FALSE(Err.empty()) << Doc;
  }
  // The depth guard refuses pathological nesting instead of overflowing.
  std::string Deep(1000, '[');
  Deep += std::string(1000, ']');
  EXPECT_FALSE(parseJson(Deep).has_value());
}

TEST(JsonParse, KeepsIntegerPrecision) {
  std::optional<JsonValue> V =
      parseJson("{\"id\":9007199254740993,\"neg\":-9007199254740993}");
  ASSERT_TRUE(V.has_value());
  // 2^53 + 1 survives exactly (a double would round it).
  EXPECT_EQ(V->memberU64("id"), 9007199254740993ull);
  EXPECT_EQ(V->member("neg")->asI64(), -9007199254740993ll);
}

} // namespace
