//===- tests/SupportTest.cpp - Support library unit tests ------------------===//

#include "support/BitUtils.h"
#include "support/Table.h"
#include "support/UnionFind.h"
#include "support/Xoshiro.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

TEST(BitUtils, MasksAndTruncation) {
  EXPECT_EQ(lowBitMask(1), 1u);
  EXPECT_EQ(lowBitMask(4), 0xfu);
  EXPECT_EQ(lowBitMask(32), 0xffffffffu);
  EXPECT_EQ(lowBitMask(64), ~uint64_t(0));
  EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
}

TEST(BitUtils, SignExtension) {
  EXPECT_EQ(signExtend(0b1000, 4), -8);
  EXPECT_EQ(signExtend(0b0111, 4), 7);
  EXPECT_EQ(signExtend(0xffffffff, 32), -1);
  EXPECT_EQ(signExtend(0x7fffffff, 32), 0x7fffffff);
  EXPECT_EQ(signExtend(~uint64_t(0), 64), -1);
  EXPECT_TRUE(isNegative(0b1000, 4));
  EXPECT_FALSE(isNegative(0b0111, 4));
}

TEST(BitUtils, FlipBit) {
  EXPECT_EQ(flipBit(0b1010, 0, 4), 0b1011u);
  EXPECT_EQ(flipBit(0b1010, 3, 4), 0b0010u);
}

TEST(UnionFind, MinimumIdRepresentatives) {
  UnionFind UF(8);
  EXPECT_EQ(UF.numClasses(), 8u);
  EXPECT_TRUE(UF.unite(5, 3));
  EXPECT_EQ(UF.find(5), 3u);
  EXPECT_TRUE(UF.unite(3, 7));
  EXPECT_EQ(UF.find(7), 3u);
  // Class 0 always stays its own representative.
  EXPECT_TRUE(UF.unite(7, 0));
  EXPECT_EQ(UF.find(5), 0u);
  EXPECT_EQ(UF.find(0), 0u);
  EXPECT_EQ(UF.numClasses(), 5u);
  // Re-uniting is a no-op.
  EXPECT_FALSE(UF.unite(5, 7));
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_FALSE(UF.connected(1, 2));
}

TEST(UnionFind, RepresentativeIsOrderIndependent) {
  UnionFind A(6), B(6);
  A.unite(1, 4);
  A.unite(4, 2);
  B.unite(4, 2);
  B.unite(2, 1);
  for (uint32_t I = 0; I < 6; ++I)
    EXPECT_EQ(A.find(I), B.find(I)) << I;
}

TEST(Xoshiro, DeterministicAndBounded) {
  Xoshiro256 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Xoshiro256 C(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(C.below(10), 10u);
    int64_t R = C.range(-5, 5);
    EXPECT_GE(R, -5);
    EXPECT_LE(R, 5);
  }
}

TEST(TableRender, AlignsAndSeparates) {
  EXPECT_EQ(Table::withSeparators(0), "0");
  EXPECT_EQ(Table::withSeparators(999), "999");
  EXPECT_EQ(Table::withSeparators(1000), "1 000");
  EXPECT_EQ(Table::withSeparators(2819904), "2 819 904");
  EXPECT_EQ(Table::percent(0.3004), "30.04%");

  Table T({"name", "count"});
  T.row().cell("alpha").cell(uint64_t(12));
  T.row().cell("b").cell(uint64_t(1234));
  std::string Out = T.render();
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("1 234"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
}

} // namespace
