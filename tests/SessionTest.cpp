//===- tests/SessionTest.cpp - AnalysisSession caching semantics ----------===//
//
// The api/ contract under test:
//  * same-epoch queries return the identical cached object;
//  * an IR mutation invalidates exactly the dependent analyses (other
//    targets and non-dependent results keep their cached objects);
//  * explicit invalidation drops a result and its transitive dependents,
//    nothing else;
//  * content addressing: equal programs share shards, identity mutations
//    revalidate, results outlive session/target lifecycle events;
//  * untrusted classOf queries return nullopt instead of aborting;
//  * cold (Caching=false) and warm sessions produce identical results for
//    all five subcommand pipelines on every bundled workload — caching
//    can never change an answer, only when it is computed.
//
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "ir/AsmParser.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <regex>
#include <thread>

using namespace bec;

namespace {

const char *const TinyAsm = R"(
main:
  li   s0, 5
  li   s1, 3
  add  s2, s0, s1
  out  s2
  mv   a0, s2
  ret
)";

Program tinyProgram() { return parseAsmOrDie(TinyAsm, "tiny"); }

TEST(Session, SameEpochQueriesReturnIdenticalObject) {
  AnalysisSession S;
  auto T = S.addWorkload("bitcount");
  ASSERT_TRUE(T.has_value());

  auto A1 = S.get<BECQuery>(*T);
  auto A2 = S.get<BECQuery>(*T);
  EXPECT_EQ(A1.get(), A2.get());

  auto R1 = S.get<AnalyzeQuery>(*T);
  auto R2 = S.get<AnalyzeQuery>(*T);
  EXPECT_EQ(R1.get(), R2.get());

  SessionStats St = S.stats();
  EXPECT_GT(St.Hits, 0u);
  EXPECT_GT(St.Misses, 0u);
}

TEST(Session, WorkloadLookupIsCaseInsensitive) {
  AnalysisSession S;
  auto T = S.addWorkload("crc32");
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(S.name(*T), "CRC32");
  EXPECT_FALSE(S.addWorkload("nonesuch").has_value());
}

TEST(Session, MutationInvalidatesExactlyDependents) {
  AnalysisSession S;
  AnalysisSession::TargetId T0 = S.addProgram("tiny", tinyProgram());
  auto T1 = S.addWorkload("bitcount");
  ASSERT_TRUE(T1.has_value());

  auto Trace0 = S.get<TraceQuery>(T0);
  auto Bec0 = S.get<BECQuery>(T0);
  auto Trace1 = S.get<TraceQuery>(*T1);
  auto Bec1 = S.get<BECQuery>(*T1);
  EXPECT_EQ(S.epoch(T0), 0u);

  // li s0, 5 -> li s0, 7: a semantic change.
  std::vector<std::string> Errors =
      S.mutate(T0, [](Program &P) { P.Instrs[0].Imm = 7; });
  EXPECT_TRUE(Errors.empty());
  EXPECT_EQ(S.epoch(T0), 1u);

  // The mutated target recomputes, and the new results reflect the new IR.
  auto TraceMut = S.get<TraceQuery>(T0);
  auto BecMut = S.get<BECQuery>(T0);
  EXPECT_NE(TraceMut.get(), Trace0.get());
  EXPECT_NE(BecMut.get(), Bec0.get());
  EXPECT_EQ(Trace0->outputValues()[0], 8u);
  EXPECT_EQ(TraceMut->outputValues()[0], 10u);

  // The other target's results are exactly untouched.
  EXPECT_EQ(S.get<TraceQuery>(*T1).get(), Trace1.get());
  EXPECT_EQ(S.get<BECQuery>(*T1).get(), Bec1.get());
}

TEST(Session, IdentityMutationRevalidatesCachedResults) {
  AnalysisSession S;
  AnalysisSession::TargetId T = S.addProgram("tiny", tinyProgram());
  auto Bec = S.get<BECQuery>(T);

  // Epoch bumps, but the content is unchanged, so the target re-attaches
  // to its shard and every cached result revalidates.
  EXPECT_TRUE(S.mutate(T, [](Program &) {}).empty());
  EXPECT_EQ(S.epoch(T), 1u);
  EXPECT_EQ(S.get<BECQuery>(T).get(), Bec.get());

  // A round-trip mutation (change, then change back) revalidates too.
  EXPECT_TRUE(S.mutate(T, [](Program &P) { P.Instrs[0].Imm = 9; }).empty());
  EXPECT_TRUE(S.mutate(T, [](Program &P) { P.Instrs[0].Imm = 5; }).empty());
  EXPECT_EQ(S.get<BECQuery>(T).get(), Bec.get());
}

TEST(Session, MutationVerifierErrorsLeaveTargetUnchanged) {
  AnalysisSession S;
  AnalysisSession::TargetId T = S.addProgram("tiny", tinyProgram());
  auto Bec = S.get<BECQuery>(T);

  std::vector<std::string> Errors = S.mutate(T, [](Program &P) {
    P.Instrs.pop_back(); // Control now falls off the end.
  });
  EXPECT_FALSE(Errors.empty());
  EXPECT_EQ(S.epoch(T), 0u);
  EXPECT_EQ(S.get<BECQuery>(T).get(), Bec.get());
}

TEST(Session, ExplicitInvalidationDropsOnlyTransitiveDependents) {
  AnalysisSession S;
  AnalysisSession::TargetId T = S.addProgram("tiny", tinyProgram());

  auto Live = S.get<LivenessQuery>(T);
  auto Bec = S.get<BECQuery>(T);
  auto Tr = S.get<TraceQuery>(T);
  auto Counts = S.get<CountsQuery>(T);

  // Counts was computed from BEC + Trace; BEC from Liveness (not Trace).
  S.invalidate<TraceQuery>(T);
  auto Tr2 = S.get<TraceQuery>(T);
  auto Counts2 = S.get<CountsQuery>(T);
  EXPECT_NE(Tr2.get(), Tr.get());
  EXPECT_NE(Counts2.get(), Counts.get());
  EXPECT_EQ(S.get<BECQuery>(T).get(), Bec.get());
  EXPECT_EQ(S.get<LivenessQuery>(T).get(), Live.get());

  // Invalidating a sub-analysis takes the BEC result (and its dependents)
  // with it but leaves the trace alone.
  S.invalidate<LivenessQuery>(T);
  EXPECT_NE(S.get<BECQuery>(T).get(), Bec.get());
  EXPECT_EQ(S.get<TraceQuery>(T).get(), Tr2.get());
}

TEST(Session, EqualContentSharesOneShard) {
  AnalysisSession S;
  AnalysisSession::TargetId T0 = S.addProgram("a", tinyProgram());
  AnalysisSession::TargetId T1 = S.addProgram("b", tinyProgram());
  EXPECT_EQ(S.cached(T0).get(), S.cached(T1).get());
  EXPECT_EQ(S.get<BECQuery>(T0).get(), S.get<BECQuery>(T1).get());
  // Names differ even though the analysis cache is shared.
  EXPECT_EQ(S.name(T0), "a");
  EXPECT_EQ(S.name(T1), "b");
}

TEST(Session, ResultsOutliveSessionAndTargets) {
  std::shared_ptr<const BECAnalysis> A;
  {
    AnalysisSession S;
    AnalysisSession::TargetId T = S.addProgram("tiny", tinyProgram());
    A = S.get<BECQuery>(T);
  }
  // The result keeps its shard (and the Program it points into) alive.
  EXPECT_EQ(A->program().Name, "tiny");
  EXPECT_GT(A->space().numAccessPoints(), 0u);
}

TEST(Session, UntrustedClassOfQueriesReturnNullopt) {
  AnalysisSession S;
  AnalysisSession::TargetId T = S.addProgram("tiny", tinyProgram());
  std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(T);
  unsigned W = A->program().Width;

  EXPECT_FALSE(A->classOf(1u << 20, 0, 0).has_value());  // P out of range.
  EXPECT_FALSE(A->classOf(0, 255, 0).has_value());       // No such register.
  EXPECT_FALSE(A->classOf(0, 8, W).has_value());         // Bit out of range.
  EXPECT_FALSE(A->classOf(0, 10, 0).has_value());        // Reg not accessed.
  // A valid query still answers.
  EXPECT_TRUE(A->classOf(0, 8, 0).has_value()); // li s0: x8 write.
}

TEST(Session, ZeroShardCapIsSafe) {
  AnalysisSession::Config C;
  C.MaxInternedShards = 0; // Every shard is evicted from the index at once.
  AnalysisSession S(C);
  AnalysisSession::TargetId T = S.addProgram("tiny", tinyProgram());
  EXPECT_GT(*S.get<VulnQuery>(T), 0u);
  // No dedup possible, but everything still works.
  AnalysisSession::TargetId T2 = S.addProgram("tiny2", tinyProgram());
  EXPECT_NE(S.cached(T).get(), S.cached(T2).get());
  EXPECT_EQ(*S.get<VulnQuery>(T2), *S.get<VulnQuery>(T));
}

TEST(Session, HardenOnNonFinishingProgramDoesNotAbort) {
  // Misaligned load: the golden run traps on cycle one.
  const char *TrapAsm = R"(
main:
  lw  t0, 2(zero)
  ret
)";
  AnalysisSession S;
  AnalysisSession::TargetId T =
      S.addProgram("trapper", parseAsmOrDie(TrapAsm, "trapper"));
  ASSERT_EQ(S.get<TraceQuery>(T)->End, Outcome::Trap);

  // The primitive query answers with a no-op result whose check fails —
  // never an assert/abort on untrusted input.
  std::shared_ptr<const HardenPoint> P = S.get<HardenQuery>(T, {});
  EXPECT_TRUE(P->Harden.HP.Sites.empty());
  EXPECT_FALSE(P->Check.ok());

  // The subcommand queries carry the error instead.
  EXPECT_FALSE(S.get<HardenCmdQuery>(T, {})->Error.empty());
  EXPECT_FALSE(S.get<AnalyzeQuery>(T)->Error.empty());
}

TEST(Session, EvaluateAllMatchesSequentialGets) {
  AnalysisSession S;
  S.addAllWorkloads();
  ThreadPool Pool(4);
  auto Parallel = S.evaluateAll<AnalyzeQuery>({}, Pool);
  ASSERT_EQ(Parallel.size(), S.numTargets());
  for (size_t I = 0; I < S.numTargets(); ++I) {
    auto Direct = S.get<AnalyzeQuery>(static_cast<uint32_t>(I));
    EXPECT_EQ(Direct.get(), Parallel[I].get()) << S.name(I);
    EXPECT_TRUE(Direct->Error.empty()) << S.name(I);
  }
}

TEST(Session, HardenSessionMatchesClassicEntryPoint) {
  Program Prog = loadWorkload(*findWorkload("bitcount"));
  HardenOptions Opts;
  Opts.BudgetPercent = 10.0;
  HardenResult Classic = hardenProgram(Prog, Opts);

  AnalysisSession S;
  auto T = S.addWorkload("bitcount");
  ASSERT_TRUE(T.has_value());
  std::shared_ptr<const HardenPoint> P = S.get<HardenQuery>(*T, Opts);

  EXPECT_EQ(P->Harden.ResidualVuln, Classic.ResidualVuln);
  EXPECT_EQ(P->Harden.BaselineVuln, Classic.BaselineVuln);
  EXPECT_EQ(P->Harden.HardenedCycles, Classic.HardenedCycles);
  EXPECT_EQ(P->Harden.HP.Sites.size(), Classic.HP.Sites.size());
  EXPECT_EQ(P->Harden.HP.Prog.toString(), Classic.HP.Prog.toString());
  EXPECT_TRUE(P->Check.ok());
}

//===----------------------------------------------------------------------===//
// Driver equivalence: cold vs. warm across all subcommands and workloads
//===----------------------------------------------------------------------===//

/// Campaign wall-clock seconds are nondeterministic; mask them before
/// comparing serialized results.
std::string maskSeconds(std::string S) {
  static const std::regex SecondsRe("\"seconds\":[^,}]+");
  return std::regex_replace(S, SecondsRe, "\"seconds\":0");
}

/// Bounded windows keep the exhaustive parts of the test quick (the
/// validation campaign is the expensive one: every register bit of every
/// segment in the window).
constexpr uint64_t CampaignMaxCycles = 300;
constexpr uint64_t ReportMaxCycles = 120;

template <class Q>
std::pair<std::string, std::string>
renderBoth(const typename Q::Options &Opts,
           const std::function<std::string(
               const AnalysisSession &,
               const std::vector<std::shared_ptr<const typename Q::Result>> &)>
               &Render) {
  auto RunOne = [&](bool Caching) {
    AnalysisSession::Config C;
    C.Caching = Caching;
    AnalysisSession S(C);
    S.addAllWorkloads();
    ThreadPool Pool(2);
    auto Results = S.evaluateAll<Q>(Opts, Pool);
    return maskSeconds(Render(S, Results));
  };
  return {RunOne(false), RunOne(true)};
}

std::vector<std::string> allNames() {
  std::vector<std::string> Names;
  for (const Workload &W : allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

TEST(SessionEquivalence, AnalyzeColdEqualsWarm) {
  auto [Cold, Warm] = renderBoth<AnalyzeQuery>(
      {}, [](const AnalysisSession &, const auto &Rs) {
        return renderAnalyzeJson(allNames(), Rs);
      });
  EXPECT_EQ(Cold, Warm);
  EXPECT_NE(Cold.find("\"vulnerability\":"), std::string::npos);
}

TEST(SessionEquivalence, CampaignColdEqualsWarm) {
  CampaignCmdQuery::Options O;
  O.Plan = PlanKind::BitLevel;
  O.MaxCycles = CampaignMaxCycles;
  auto [Cold, Warm] = renderBoth<CampaignCmdQuery>(
      O, [&](const AnalysisSession &, const auto &Rs) {
        return renderCampaignJson(allNames(), Rs, PlanKind::BitLevel);
      });
  EXPECT_EQ(Cold, Warm);
  EXPECT_NE(Cold.find("\"plan\":\"bit-level\""), std::string::npos);
}

TEST(SessionEquivalence, ScheduleColdEqualsWarm) {
  auto [Cold, Warm] = renderBoth<ScheduleCmdQuery>(
      {}, [](const AnalysisSession &, const auto &Rs) {
        return renderScheduleJson(allNames(), Rs);
      });
  EXPECT_EQ(Cold, Warm);
  EXPECT_NE(Cold.find("\"best_vulnerability\":"), std::string::npos);
}

TEST(SessionEquivalence, HardenColdEqualsWarm) {
  HardenCmdQuery::Options O;
  O.Budgets = {10.0};
  std::vector<double> Budgets = O.Budgets;
  auto [Cold, Warm] = renderBoth<HardenCmdQuery>(
      O, [&](const AnalysisSession &, const auto &Rs) {
        return renderHardenJson(allNames(), Rs, Budgets);
      });
  EXPECT_EQ(Cold, Warm);
  EXPECT_NE(Cold.find("\"residual_vulnerability\":"), std::string::npos);
  EXPECT_EQ(Cold.find("\"ok\":false"), std::string::npos);
}

TEST(SessionEquivalence, ReportColdEqualsWarm) {
  ReportCmdQuery::Options O;
  O.MaxCycles = ReportMaxCycles;
  auto [Cold, Warm] = renderBoth<ReportCmdQuery>(
      O, [](const AnalysisSession &, const auto &Rs) {
        return renderReportJson(allNames(), Rs);
      });
  EXPECT_EQ(Cold, Warm);
  EXPECT_NE(Cold.find("\"sound\":true"), std::string::npos);
  EXPECT_EQ(Cold.find("\"sound\":false"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Concurrent session sharing (the becd pool's load pattern)
//===----------------------------------------------------------------------===//

// N threads hammer one session with a mixed query workload over shared
// shards — the exact pattern the becd server's connection handlers
// produce. Every concurrent answer must be bit-identical to a serial
// session's, and each (shard, query) pair must be computed exactly once
// (same-epoch queries return the identical cached object).
TEST(SessionConcurrency, MixedQueriesMatchSerialExecution) {
  const char *Names[] = {"bitcount", "crc32", "sha", "dijkstra"};
  constexpr int NumThreads = 8, Rounds = 3;
  constexpr uint64_t MaxCycles = 200;

  // Serial reference, fresh session.
  struct Expected {
    uint64_t Vuln;
    uint64_t BitLevelRuns;
    uint64_t CampaignRuns;
    std::string AnalyzeRow;
  };
  std::map<std::string, Expected> Reference;
  {
    AnalysisSession Serial;
    for (const char *Name : Names) {
      auto T = Serial.addWorkload(Name);
      ASSERT_TRUE(T.has_value()) << Name;
      Expected E;
      E.Vuln = *Serial.get<VulnQuery>(*T);
      E.BitLevelRuns = Serial.get<CountsQuery>(*T)->BitLevelRuns;
      E.CampaignRuns =
          Serial.get<CampaignQuery>(*T, {PlanKind::BitLevel, MaxCycles})->Runs;
      E.AnalyzeRow = renderCountsJson(Serial.name(*T),
                                      *Serial.get<AnalyzeQuery>(*T));
      Reference[Name] = E;
    }
  }

  AnalysisSession Shared;
  std::vector<CachedProgramPtr> Shards;
  for (const char *Name : Names)
    Shards.push_back(Shared.intern(loadWorkload(*findWorkloadAnyCase(Name))));

  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R < Rounds; ++R)
        for (int W = 0; W < 4; ++W) {
          // Stagger the order per thread so computations genuinely race.
          size_t Pick = size_t((W + T + R) % 4);
          const CachedProgramPtr &P = Shards[Pick];
          const Expected &E = Reference[Names[Pick]];
          bool Ok =
              *Shared.get<VulnQuery>(P) == E.Vuln &&
              Shared.get<CountsQuery>(P)->BitLevelRuns == E.BitLevelRuns &&
              Shared
                      .get<CampaignQuery>(P, {PlanKind::BitLevel, MaxCycles})
                      ->Runs == E.CampaignRuns &&
              renderCountsJson(findWorkloadAnyCase(Names[Pick])->Name,
                               *Shared.get<AnalyzeQuery>(P)) == E.AnalyzeRow;
          if (!Ok)
            ++Mismatches;
        }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);

  // Compute-once: every get() past the first per (shard, query) was a
  // cache hit, and all threads saw the identical result objects.
  SessionStats St = Shared.stats();
  EXPECT_GT(St.Hits, 0u);
  for (size_t I = 0; I < Shards.size(); ++I) {
    auto A = Shared.get<VulnQuery>(Shards[I]);
    auto B = Shared.get<VulnQuery>(Shards[I]);
    EXPECT_EQ(A.get(), B.get());
  }
  // Misses are bounded by the distinct (shard, query) pairs the threads
  // could request (4 shards x 4 top-level queries plus their nested
  // sub-analyses), independent of thread and round count.
  EXPECT_LE(St.Misses, 4u * 10u);
}

} // namespace
