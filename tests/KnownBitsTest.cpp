//===- tests/KnownBitsTest.cpp - Abstract domain unit + property tests ----===//
///
/// \file
/// Unit tests for the four-valued bit lattice (Fig. 3) and property-based
/// soundness tests for every abstract transfer function: for random
/// abstract operands and every concretization pair, the concrete result
/// must be contained in the abstract result.
///
//===----------------------------------------------------------------------===//

#include "analysis/KnownBits.h"
#include "support/Xoshiro.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

using namespace bec;

namespace {

TEST(BitValueLattice, MeetMatchesFig3b) {
  using BV = BitValue;
  // Bottom is the identity.
  EXPECT_EQ(meetBits(BV::Bottom, BV::Zero), BV::Zero);
  EXPECT_EQ(meetBits(BV::One, BV::Bottom), BV::One);
  EXPECT_EQ(meetBits(BV::Bottom, BV::Bottom), BV::Bottom);
  // Conflicting known values rise to Top.
  EXPECT_EQ(meetBits(BV::Zero, BV::One), BV::Top);
  EXPECT_EQ(meetBits(BV::One, BV::Zero), BV::Top);
  // Idempotent on equal values.
  EXPECT_EQ(meetBits(BV::Zero, BV::Zero), BV::Zero);
  EXPECT_EQ(meetBits(BV::One, BV::One), BV::One);
  // Top absorbs.
  EXPECT_EQ(meetBits(BV::Top, BV::Zero), BV::Top);
  EXPECT_EQ(meetBits(BV::Bottom, BV::Top), BV::Top);
}

TEST(BitValueLattice, MeetIsCommutativeAndAssociative) {
  const BitValue All[4] = {BitValue::Bottom, BitValue::Zero, BitValue::One,
                           BitValue::Top};
  for (BitValue A : All)
    for (BitValue B : All) {
      EXPECT_EQ(meetBits(A, B), meetBits(B, A));
      for (BitValue C : All)
        EXPECT_EQ(meetBits(meetBits(A, B), C), meetBits(A, meetBits(B, C)));
    }
}

TEST(BitValueLattice, Fig3cAndTable) {
  using BV = BitValue;
  EXPECT_EQ(fig3And(BV::Zero, BV::Top), BV::Zero);
  EXPECT_EQ(fig3And(BV::Top, BV::Zero), BV::Zero);
  EXPECT_EQ(fig3And(BV::One, BV::One), BV::One);
  EXPECT_EQ(fig3And(BV::One, BV::Top), BV::Top);
  EXPECT_EQ(fig3And(BV::Bottom, BV::Top), BV::Top);
  EXPECT_EQ(fig3And(BV::Bottom, BV::Zero), BV::Bottom);
}

TEST(KnownBits, ConstantsRoundTrip) {
  for (unsigned W : {2u, 4u, 7u, 32u, 64u}) {
    KnownBits K = KnownBits::constant(0x5a5a5a5a5a5a5a5aull, W);
    EXPECT_TRUE(K.isConstant());
    EXPECT_EQ(K.constValue(), truncate(0x5a5a5a5a5a5a5a5aull, W));
    EXPECT_TRUE(K.contains(K.constValue()));
    EXPECT_FALSE(K.contains(K.constValue() ^ 1));
  }
}

TEST(KnownBits, MeetLosesNoSoundness) {
  KnownBits A = KnownBits::constant(0b1010, 4);
  KnownBits B = KnownBits::constant(0b1100, 4);
  KnownBits M = KnownBits::meet(A, B);
  EXPECT_TRUE(M.contains(0b1010));
  EXPECT_TRUE(M.contains(0b1100));
  // Agreeing bits stay known: bit3 = 1, bit0 = 0.
  EXPECT_EQ(M.bit(3), BitValue::One);
  EXPECT_EQ(M.bit(0), BitValue::Zero);
  EXPECT_EQ(M.bit(1), BitValue::Top);
  EXPECT_EQ(M.bit(2), BitValue::Top);
}

TEST(KnownBits, MeetWithBottomIsIdentity) {
  KnownBits A = KnownBits::constant(0b0110, 4);
  KnownBits B = KnownBits::bottom(4);
  EXPECT_EQ(KnownBits::meet(A, B), A);
  EXPECT_EQ(KnownBits::meet(B, A), A);
}

TEST(KnownBits, RangeQueries) {
  KnownBits K = KnownBits::top(4);
  K.setBit(3, BitValue::One); // 1xxx: [8, 15] unsigned, [-8, -1] signed
  EXPECT_EQ(K.umin(), 8u);
  EXPECT_EQ(K.umax(), 15u);
  EXPECT_EQ(K.smin(), -8);
  EXPECT_EQ(K.smax(), -1);
}

TEST(KnownBits, ToStringMatchesPaperNotation) {
  KnownBits K = KnownBits::constant(0, 4);
  K.setBit(0, BitValue::Top);
  EXPECT_EQ(K.toString(), "0 0 0 x"); // the paper's 000x boxes
}

// --- Property-based soundness: abstract ops contain concrete results ----

/// Draws a random abstract value of width \p W together with one of its
/// concretizations.
static std::pair<KnownBits, uint64_t> randomAbstract(Xoshiro256 &Rng,
                                                     unsigned W) {
  KnownBits K = KnownBits::top(W);
  uint64_t Concrete = 0;
  for (unsigned B = 0; B < W; ++B) {
    switch (Rng.below(3)) {
    case 0:
      K.setBit(B, BitValue::Zero);
      break;
    case 1:
      K.setBit(B, BitValue::One);
      Concrete |= uint64_t(1) << B;
      break;
    default: // Top: concrete bit chosen freely.
      if (Rng.chance(1, 2))
        Concrete |= uint64_t(1) << B;
      break;
    }
  }
  return {K, Concrete};
}

struct BinOpCase {
  const char *Name;
  std::function<KnownBits(const KnownBits &, const KnownBits &)> Abstract;
  std::function<uint64_t(uint64_t, uint64_t, unsigned)> Concrete;
};

class BinOpSoundness : public ::testing::TestWithParam<size_t> {
public:
  static const std::vector<BinOpCase> &cases() {
    static const std::vector<BinOpCase> Cases = {
        {"and", &KnownBits::and_,
         [](uint64_t A, uint64_t B, unsigned W) { return truncate(A & B, W); }},
        {"or", &KnownBits::or_,
         [](uint64_t A, uint64_t B, unsigned W) { return truncate(A | B, W); }},
        {"xor", &KnownBits::xor_,
         [](uint64_t A, uint64_t B, unsigned W) { return truncate(A ^ B, W); }},
        {"add", &KnownBits::add,
         [](uint64_t A, uint64_t B, unsigned W) { return truncate(A + B, W); }},
        {"sub", &KnownBits::sub,
         [](uint64_t A, uint64_t B, unsigned W) { return truncate(A - B, W); }},
        {"mul", &KnownBits::mul,
         [](uint64_t A, uint64_t B, unsigned W) { return truncate(A * B, W); }},
        {"shl", &KnownBits::shl,
         [](uint64_t A, uint64_t B, unsigned W) {
           unsigned Amt = (W & (W - 1)) == 0 ? B & (W - 1) : B % W;
           return truncate(A << Amt, W);
         }},
        {"lshr", &KnownBits::lshr,
         [](uint64_t A, uint64_t B, unsigned W) {
           unsigned Amt = (W & (W - 1)) == 0 ? B & (W - 1) : B % W;
           return truncate(truncate(A, W) >> Amt, W);
         }},
        {"ashr", &KnownBits::ashr,
         [](uint64_t A, uint64_t B, unsigned W) {
           unsigned Amt = (W & (W - 1)) == 0 ? B & (W - 1) : B % W;
           return truncate(static_cast<uint64_t>(signExtend(A, W) >>
                                                 static_cast<int64_t>(Amt)),
                           W);
         }},
        {"divu", &KnownBits::divu,
         [](uint64_t A, uint64_t B, unsigned W) {
           return B == 0 ? allOnesValue(W) : truncate(A, W) / truncate(B, W);
         }},
        {"remu", &KnownBits::remu,
         [](uint64_t A, uint64_t B, unsigned W) {
           return B == 0 ? truncate(A, W) : truncate(A, W) % truncate(B, W);
         }},
    };
    return Cases;
  }
};

TEST_P(BinOpSoundness, AbstractContainsConcrete) {
  const BinOpCase &Case = cases()[GetParam()];
  Xoshiro256 Rng(0xbec5eed + GetParam());
  for (unsigned W : {4u, 8u, 32u}) {
    for (int Trial = 0; Trial < 4000; ++Trial) {
      auto [KA, A] = randomAbstract(Rng, W);
      auto [KB, B] = randomAbstract(Rng, W);
      KnownBits KR = Case.Abstract(KA, KB);
      uint64_t R = Case.Concrete(A, B, W);
      ASSERT_TRUE(KR.contains(R))
          << Case.Name << " width " << W << ": abstract "
          << KA.toString() << " op " << KB.toString() << " = "
          << KR.toString() << " does not contain concrete " << R;
    }
  }
}

static std::string binOpName(const ::testing::TestParamInfo<size_t> &Info) {
  return BinOpSoundness::cases()[Info.param].Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BinOpSoundness,
    ::testing::Range<size_t>(0, BinOpSoundness::cases().size()), binOpName);

TEST(KnownBitsComparisons, SoundOnRandomValues) {
  Xoshiro256 Rng(77);
  for (unsigned W : {4u, 32u}) {
    for (int Trial = 0; Trial < 5000; ++Trial) {
      auto [KA, A] = randomAbstract(Rng, W);
      auto [KB, B] = randomAbstract(Rng, W);
      BitValue Eq = KnownBits::cmpEq(KA, KB);
      if (Eq != BitValue::Top)
        EXPECT_EQ(Eq == BitValue::One, A == B);
      BitValue Ult = KnownBits::cmpUlt(KA, KB);
      if (Ult != BitValue::Top)
        EXPECT_EQ(Ult == BitValue::One, A < B);
      BitValue Slt = KnownBits::cmpSlt(KA, KB);
      if (Slt != BitValue::Top)
        EXPECT_EQ(Slt == BitValue::One, signExtend(A, W) < signExtend(B, W));
    }
  }
}

TEST(KnownBitsComparisons, ExactOnConstants) {
  for (unsigned A = 0; A < 16; ++A)
    for (unsigned B = 0; B < 16; ++B) {
      KnownBits KA = KnownBits::constant(A, 4);
      KnownBits KB = KnownBits::constant(B, 4);
      EXPECT_EQ(KnownBits::cmpEq(KA, KB),
                A == B ? BitValue::One : BitValue::Zero);
      EXPECT_EQ(KnownBits::cmpUlt(KA, KB),
                A < B ? BitValue::One : BitValue::Zero);
      EXPECT_EQ(KnownBits::cmpSlt(KA, KB),
                signExtend(A, 4) < signExtend(B, 4) ? BitValue::One
                                                    : BitValue::Zero);
    }
}

TEST(KnownBitsShifts, ConstantShiftsAreExact) {
  for (unsigned V = 0; V < 16; ++V)
    for (unsigned Amt = 0; Amt < 4; ++Amt) {
      KnownBits K = KnownBits::constant(V, 4);
      EXPECT_EQ(KnownBits::shlConst(K, Amt).constValue(),
                truncate(V << Amt, 4));
      EXPECT_EQ(KnownBits::lshrConst(K, Amt).constValue(), V >> Amt);
      EXPECT_EQ(
          KnownBits::ashrConst(K, Amt).constValue(),
          truncate(static_cast<uint64_t>(signExtend(V, 4) >>
                                         static_cast<int64_t>(Amt)),
                   4));
    }
}

TEST(KnownBitsDivision, RiscvDivideByZeroSemantics) {
  KnownBits A = KnownBits::constant(37, 8);
  KnownBits Zero = KnownBits::constant(0, 8);
  EXPECT_EQ(KnownBits::divu(A, Zero).constValue(), 255u); // all ones
  EXPECT_EQ(KnownBits::remu(A, Zero).constValue(), 37u);  // dividend
  EXPECT_EQ(KnownBits::div(A, Zero).constValue(), 255u);
  EXPECT_EQ(KnownBits::rem(A, Zero).constValue(), 37u);
  // Signed overflow: INT_MIN / -1.
  KnownBits Min = KnownBits::constant(0x80, 8);
  KnownBits MinusOne = KnownBits::constant(0xff, 8);
  EXPECT_EQ(KnownBits::div(Min, MinusOne).constValue(), 0x80u);
  EXPECT_EQ(KnownBits::rem(Min, MinusOne).constValue(), 0u);
}

} // namespace
