//===- tests/WorkloadsTest.cpp - Benchmark correctness vs. references -----===//
///
/// \file
/// Every workload must assemble, run to completion, and reproduce its C++
/// reference model's output stream bit-exactly. CRC32, AES and SHA
/// additionally hit published test vectors, which pins down both the
/// assembly programs and the simulator's ISA semantics.
///
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

class WorkloadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadTest, MatchesReferenceModel) {
  const Workload &W = allWorkloads()[GetParam()];
  Program Prog = loadWorkload(W);
  Trace T = simulate(Prog);
  ASSERT_EQ(T.End, Outcome::Finished) << W.Name;
  std::vector<uint64_t> Outputs = T.outputValues();
  ASSERT_EQ(Outputs.size(), W.ExpectedOutputs.size()) << W.Name;
  for (size_t I = 0; I < Outputs.size(); ++I)
    EXPECT_EQ(Outputs[I], W.ExpectedOutputs[I] & lowBitMask(Prog.Width))
        << W.Name << " output " << I;
  if (W.CheckReturn) {
    ASSERT_TRUE(T.HasReturnValue) << W.Name;
    EXPECT_EQ(T.ReturnValue, W.ExpectedReturn & lowBitMask(Prog.Width))
        << W.Name;
  }
}

TEST_P(WorkloadTest, TraceIsDeterministic) {
  const Workload &W = allWorkloads()[GetParam()];
  Program Prog = loadWorkload(W);
  Trace A = simulate(Prog), B = simulate(Prog);
  EXPECT_EQ(A.TraceHash, B.TraceHash) << W.Name;
  EXPECT_EQ(A.ObservableHash, B.ObservableHash) << W.Name;
  EXPECT_EQ(A.Cycles, B.Cycles) << W.Name;
}

std::string workloadName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string Name = allWorkloads()[Info.param].Name;
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadTest,
                         ::testing::Range<size_t>(0, 8), workloadName);

TEST(WorkloadVectors, Crc32StandardCheckValue) {
  // CRC-32 of "123456789" is the ubiquitous check value 0xCBF43926.
  EXPECT_EQ(ref::crc32()[0], 0xCBF43926u);
}

TEST(WorkloadVectors, AesFips197Vector) {
  // FIPS-197 Appendix C: AES-128(000102..0f, 00112233..ff).
  std::vector<uint64_t> Ct = ref::aes();
  EXPECT_EQ(Ct[0], 0x69c4e0d8u);
  EXPECT_EQ(Ct[1], 0x6a7b0430u);
  EXPECT_EQ(Ct[2], 0xd8cdb780u);
  EXPECT_EQ(Ct[3], 0x70b4c55au);
}

TEST(WorkloadVectors, ShaAbcVector) {
  // FIPS-180-1: SHA-1("abc") = a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d.
  std::vector<uint64_t> Digest = ref::sha();
  EXPECT_EQ(Digest[0], 0xa9993e36u);
  EXPECT_EQ(Digest[1], 0x4706816au);
  EXPECT_EQ(Digest[2], 0xba3e2571u);
  EXPECT_EQ(Digest[3], 0x7850c26cu);
  EXPECT_EQ(Digest[4], 0x9cd0d89du);
}

TEST(WorkloadVectors, RsaRoundTripsWithPrivateExponent) {
  // d = e^-1 mod phi(n) for p=251, q=211, e=65537; decrypting the
  // first ciphertext with d must recover the message.
  constexpr uint64_t N = 251ull * 211ull;
  constexpr uint64_t Phi = 250ull * 210ull;
  // Extended Euclid for d.
  int64_t T = 0, NewT = 1;
  int64_t R = static_cast<int64_t>(Phi), NewR = 65537;
  while (NewR != 0) {
    int64_t Q = R / NewR;
    std::swap(T, NewT);
    NewT -= Q * T;
    std::swap(R, NewR);
    NewR -= Q * R;
  }
  ASSERT_EQ(R, 1) << "e and phi(n) must be coprime";
  uint64_t D = static_cast<uint64_t>(T < 0 ? T + static_cast<int64_t>(Phi) : T);
  auto ModMul = [&](uint64_t A, uint64_t B) {
    return (A * B) % N; // fits: N < 2^26 so A*B < 2^52.
  };
  auto ModExp = [&](uint64_t Base, uint64_t Exp) {
    uint64_t Result = 1;
    while (Exp) {
      if (Exp & 1)
        Result = ModMul(Result, Base);
      Base = ModMul(Base, Base);
      Exp >>= 1;
    }
    return Result;
  };
  uint64_t C = ref::rsa()[0];
  EXPECT_EQ(ModExp(C, D), 42424242 % N);
}

} // namespace
