//===- tests/CheckpointEquivalenceTest.cpp - Prefix-checkpoint equivalence -===//
//
// The equivalence obligations of prefix-checkpointed campaign execution
// (PlanOptions::PrefixCheckpoint, `bec campaign --prefix-checkpoint`):
// forking an injected run from a golden snapshot must be indistinguishable
// from replaying it from cycle zero, for every fault site, workload and
// checkpoint placement. Two layers of evidence:
//
//  * interpreter-level: fork-from-snapshot and from-zero replay produce
//    bit-identical traces AND bit-identical final machine states (the
//    serialized MachineState bytes), which is stronger than agreeing on
//    the verdict — it implies the same classification against any golden;
//  * engine-level: the full executor's per-run verdicts, trace hashes and
//    aggregates are byte-identical across `off` and every placement
//    period K, at one thread and under work stealing.
//
//===----------------------------------------------------------------------===//

#include "fi/Campaign.h"
#include "fi/CampaignPlan.h"
#include "fi/Engine.h"
#include "ir/AsmParser.h"
#include "sim/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace bec;

namespace {

static const char *SmallLoop = R"(
main:
  li  t0, 6
  li  a0, 0
loop:
  andi t1, t0, 3
  add  a0, a0, t1
  addi t0, t0, -1
  bnez t0, loop
  out  a0
  ret
)";

/// Hash-only run options: snapshots require Record == false. The hang
/// budget mirrors the engine's (Golden.Cycles * 16 + 4096) so hanging
/// faults classify after the same bounded replay on both paths instead
/// of burning the 4M-cycle default.
RunOptions hashOnly(uint64_t GoldenCycles) {
  RunOptions O;
  O.Record = false;
  O.MaxCycles = GoldenCycles * 16 + 4096;
  return O;
}

/// One injected execution, reduced to everything comparable: the trace
/// summary plus the final machine state (captured before takeTrace so
/// both paths absorb the outcome identically afterwards).
struct InjectedRun {
  MachineState Final;
  Trace T;
};

/// From-zero reference: a fresh interpreter replays the whole prefix.
InjectedRun runFromZero(const Program &Prog, const RunOptions &RO,
                        uint64_t AfterCycle, Reg R, uint8_t Bit) {
  Interpreter I(Prog, RO);
  I.runToCycle(AfterCycle);
  I.machine().flipRegBit(R, Bit);
  I.run();
  InjectedRun Out;
  Out.Final = I.snapshot();
  Out.T = I.takeTrace();
  return Out;
}

/// Golden snapshots every \p K cycles (the engine's checkpoint table).
std::vector<MachineState> buildTable(const Program &Prog,
                                     const RunOptions &RO, uint64_t K) {
  std::vector<MachineState> Table;
  Interpreter Golden(Prog, RO);
  for (uint64_t C = 0;; C += K) {
    Golden.runToCycle(C);
    if (Golden.done() || Golden.cycle() != C)
      break;
    Table.push_back(Golden.snapshot());
  }
  return Table;
}

/// Fork path: restore the nearest checkpoint at or before the injection
/// cycle, catch up, flip, run.
InjectedRun runFromCheckpoint(const Program &Prog, const RunOptions &RO,
                              const std::vector<MachineState> &Table,
                              uint64_t AfterCycle, Reg R, uint8_t Bit) {
  size_t Nearest = 0;
  for (size_t I = 0; I < Table.size(); ++I)
    if (Table[I].CycleCount <= AfterCycle)
      Nearest = I;
  Interpreter I(Prog, RO);
  I.restore(Table[Nearest]);
  I.runToCycle(AfterCycle);
  I.machine().flipRegBit(R, Bit);
  I.run();
  InjectedRun Out;
  Out.Final = I.snapshot();
  Out.T = I.takeTrace();
  return Out;
}

/// Bit-identity of two injected executions: trace summary and the final
/// serialized machine state.
void expectSameExecution(const InjectedRun &Zero, const InjectedRun &Fork,
                         const std::string &What) {
  EXPECT_EQ(Zero.T.TraceHash, Fork.T.TraceHash) << What;
  EXPECT_EQ(Zero.T.ObservableHash, Fork.T.ObservableHash) << What;
  EXPECT_EQ(Zero.T.End, Fork.T.End) << What;
  EXPECT_EQ(Zero.T.Cycles, Fork.T.Cycles) << What;
  EXPECT_EQ(Zero.T.ReturnValue, Fork.T.ReturnValue) << What;
  EXPECT_EQ(Zero.T.HasReturnValue, Fork.T.HasReturnValue) << What;
  EXPECT_TRUE(Zero.Final == Fork.Final) << What;
  EXPECT_EQ(Zero.Final.serialize(), Fork.Final.serialize()) << What;
}

/// Everything deterministic about an engine result (all but Seconds and
/// the execution telemetry).
void expectSameResult(const CampaignResult &A, const CampaignResult &B) {
  EXPECT_EQ(A.Runs, B.Runs);
  EXPECT_EQ(A.EffectCounts, B.EffectCounts);
  EXPECT_EQ(A.DistinctTraces, B.DistinctTraces);
  EXPECT_EQ(A.ArchiveBytes, B.ArchiveBytes);
  EXPECT_EQ(A.Effects, B.Effects);
  EXPECT_EQ(A.TraceHashes, B.TraceHashes);
}

//===----------------------------------------------------------------------===//
// MachineState serialization
//===----------------------------------------------------------------------===//

TEST(MachineStateSerde, RoundTripIsExactAndMalformedBuffersAreRejected) {
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  Trace Golden = simulate(Prog);
  RunOptions RO = hashOnly(Golden.Cycles);
  Interpreter I(Prog, RO);
  I.runToCycle(9);
  MachineState S = I.snapshot();
  std::vector<uint8_t> Bytes = S.serialize();
  EXPECT_EQ(Bytes.size(), S.byteSize());

  std::optional<MachineState> Back =
      MachineState::deserialize(Bytes.data(), Bytes.size());
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(S == *Back);

  // Restoring the round-tripped state continues to the same trace as the
  // uninterrupted run.
  Interpreter Uninterrupted(Prog, RO);
  Uninterrupted.run();
  Interpreter Resumed(Prog, RO);
  Resumed.restore(*Back);
  Resumed.run();
  Trace A = Uninterrupted.takeTrace();
  Trace B = Resumed.takeTrace();
  EXPECT_EQ(A.TraceHash, B.TraceHash);
  EXPECT_EQ(A.Cycles, B.Cycles);

  // Truncation at any fixed-header boundary and a corrupted tag are
  // rejected, not misparsed.
  for (size_t Cut : {size_t(0), size_t(7), size_t(8), Bytes.size() - 1})
    EXPECT_FALSE(MachineState::deserialize(Bytes.data(), Cut).has_value());
  std::vector<uint8_t> Bad = Bytes;
  Bad[0] ^= 0xff;
  EXPECT_FALSE(MachineState::deserialize(Bad.data(), Bad.size()).has_value());
}

//===----------------------------------------------------------------------===//
// Interpreter-level battery: every pruned fault site, all workloads
//===----------------------------------------------------------------------===//

TEST(CheckpointEquivalence, ForkFromCheckpointMatchesFromZeroOnAllWorkloads) {
  // Every site of the BEC-pruned (bit-level) plan over the first 96
  // golden cycles of all eight workloads, forked from a K=7 table. The
  // window bounds the battery's runtime; it still exercises checkpoints
  // strictly before, exactly at (cycles divisible by 7), and far beyond
  // the last injection cycle. Suffixes always run to completion.
  uint64_t ExactlyAtInjection = 0;
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);
    ASSERT_EQ(Golden.End, Outcome::Finished) << W.Name;
    std::vector<PlannedRun> Sites =
        planCampaign(A, Golden, PlanKind::BitLevel, /*MaxCycles=*/96);
    ASSERT_FALSE(Sites.empty()) << W.Name;
    RunOptions RO = hashOnly(Golden.Cycles);
    std::vector<MachineState> Table = buildTable(Prog, RO, /*K=*/7);
    ASSERT_FALSE(Table.empty()) << W.Name;
    for (const PlannedRun &Run : Sites) {
      InjectedRun Zero =
          runFromZero(Prog, RO, Run.AfterCycle, Run.R, Run.Bit);
      InjectedRun Fork =
          runFromCheckpoint(Prog, RO, Table, Run.AfterCycle, Run.R, Run.Bit);
      expectSameExecution(Zero, Fork,
                          W.Name + " cycle " + std::to_string(Run.AfterCycle) +
                              " r" + std::to_string(Run.R) + " bit " +
                              std::to_string(Run.Bit));
      if (Run.AfterCycle % 7 == 0)
        ++ExactlyAtInjection;
    }
  }
  // The placement edge case must actually have been exercised.
  EXPECT_GT(ExactlyAtInjection, 0u);
}

TEST(CheckpointEquivalence, CheckpointExactlyAtInjectionCycle) {
  // K=1 places a snapshot at every golden cycle, so every fork restores a
  // checkpoint exactly at its injection cycle (zero catch-up replay).
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  Trace Golden = simulate(Prog);
  RunOptions RO = hashOnly(Golden.Cycles);
  std::vector<MachineState> Table = buildTable(Prog, RO, /*K=*/1);
  ASSERT_EQ(Table.size(), Golden.Cycles);
  for (uint64_t C = 0; C < Golden.Cycles; ++C) {
    EXPECT_EQ(Table[C].CycleCount, C);
    for (Reg R = 0; R < NumRegs; ++R)
      for (uint8_t Bit : {uint8_t(0), uint8_t(Prog.Width - 1)})
        expectSameExecution(runFromZero(Prog, RO, C, R, Bit),
                            runFromCheckpoint(Prog, RO, Table, C, R, Bit),
                            "cycle " + std::to_string(C));
  }
}

TEST(CheckpointEquivalence, InjectionAtCycleZeroForksFromTheZeroSnapshot) {
  // Cycle-0 injections fork from the table's mandatory zeroth snapshot:
  // the restore happens before a single instruction has executed.
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  Trace Golden = simulate(Prog);
  RunOptions RO = hashOnly(Golden.Cycles);
  std::vector<MachineState> Table = buildTable(Prog, RO, /*K=*/64);
  ASSERT_FALSE(Table.empty());
  ASSERT_EQ(Table[0].CycleCount, 0u);
  for (Reg R = 0; R < NumRegs; ++R)
    for (uint8_t Bit = 0; Bit < Prog.Width; ++Bit)
      expectSameExecution(runFromZero(Prog, RO, 0, R, Bit),
                          runFromCheckpoint(Prog, RO, Table, 0, R, Bit),
                          "r" + std::to_string(R));
}

//===----------------------------------------------------------------------===//
// Engine-level: placement sweep, all workloads
//===----------------------------------------------------------------------===//

TEST(CheckpointEquivalence, EngineSweepOverPlacementPeriodsIsBitIdentical) {
  // For every workload, the pruned campaign's result must be
  // byte-identical across `off` and K in {1, 7, 64, trace_len} — the
  // dense, default-ish, sparse, and single-snapshot placements — and
  // each placement must key its own plan fingerprint.
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);

    PlanOptions Off;
    Off.Kind = PlanKind::BitLevel;
    Off.MaxCycles = 32;
    Off.PrefixCheckpoint = false;
    CampaignPlan OffPlan = CampaignPlan::build(A, Golden, Off);
    EXPECT_FALSE(OffPlan.prefixCheckpoint());
    CampaignResult Baseline = runCampaign(Prog, Golden, OffPlan);
    ASSERT_TRUE(Baseline.Error.empty()) << Baseline.Error;
    EXPECT_EQ(Baseline.CheckpointsCreated, 0u);
    EXPECT_EQ(Baseline.SplicedRuns, 0u);

    std::set<uint64_t> Periods = {1, 7, 64, Golden.Cycles};
    std::set<uint64_t> Fingerprints = {OffPlan.fingerprint()};
    for (uint64_t K : Periods) {
      PlanOptions PO = Off;
      PO.PrefixCheckpoint = true;
      PO.CheckpointEveryK = K;
      CampaignPlan Plan = CampaignPlan::build(A, Golden, PO);
      ASSERT_TRUE(Plan.prefixCheckpoint()) << W.Name;
      EXPECT_EQ(Plan.checkpointPeriod(), K);
      Fingerprints.insert(Plan.fingerprint());

      CampaignResult R = runCampaign(Prog, Golden, Plan);
      ASSERT_TRUE(R.Error.empty()) << R.Error;
      EXPECT_GT(R.CheckpointsCreated, 0u) << W.Name;
      if (K == Golden.Cycles)
        EXPECT_EQ(R.CheckpointsCreated, 1u) << W.Name;
      expectSameResult(Baseline, R);

      // Placement must also not leak into the result under stealing
      // (once per workload; the serial legs above cover every period).
      if (K == 7) {
        CampaignExecOptions Exec;
        Exec.Threads = 3;
        Exec.ShardSize = 8;
        CampaignResult Threaded = runCampaign(Prog, Golden, Plan, Exec);
        ASSERT_TRUE(Threaded.Error.empty()) << Threaded.Error;
        expectSameResult(Baseline, Threaded);
      }
    }
    // Every distinct period keys its own plan fingerprint, and off keys
    // yet another.
    EXPECT_EQ(Fingerprints.size(), Periods.size() + 1) << W.Name;
  }
}

TEST(CheckpointEquivalence, AutoPlacementMatchesOffOnEveryPlanKind) {
  // The default (auto-tuned K) across all three plan kinds on the
  // motivating small program; this is the configuration every `bec
  // campaign` invocation runs with unless --prefix-checkpoint says
  // otherwise.
  Program Prog = parseAsmOrDie(SmallLoop, "loop");
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  for (PlanKind Kind :
       {PlanKind::Exhaustive, PlanKind::ValueLevel, PlanKind::BitLevel}) {
    PlanOptions On;
    On.Kind = Kind;
    PlanOptions Off = On;
    Off.PrefixCheckpoint = false;
    CampaignResult ROn =
        runCampaign(Prog, Golden, CampaignPlan::build(A, Golden, On));
    CampaignResult ROff =
        runCampaign(Prog, Golden, CampaignPlan::build(A, Golden, Off));
    ASSERT_TRUE(ROn.Error.empty()) << ROn.Error;
    ASSERT_TRUE(ROff.Error.empty()) << ROff.Error;
    expectSameResult(ROff, ROn);
    EXPECT_GT(ROn.CheckpointsCreated, 0u);
  }
}

//===----------------------------------------------------------------------===//
// The speedup obligation (deterministic form)
//===----------------------------------------------------------------------===//

TEST(CheckpointEquivalence, PrefixCheckpointingCutsSimulatedWorkAtLeast5x) {
  // The acceptance bar: exhaustive bitcount, one thread, prefix
  // checkpointing on vs off — identical verdicts, at least 5x less
  // simulation. Asserted on SimulatedCycles (total interpreter steps),
  // which at one thread is deterministic, unlike wall clock on a loaded
  // CI host; bench_CampaignScale asserts the wall-clock form.
  const Workload *W = findWorkload("bitcount");
  ASSERT_NE(W, nullptr);
  Program Prog = loadWorkload(*W);
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);

  PlanOptions On;
  On.Kind = PlanKind::Exhaustive;
  On.MaxCycles = 24;
  PlanOptions Off = On;
  Off.PrefixCheckpoint = false;

  CampaignExecOptions Exec;
  Exec.Threads = 1;
  CampaignResult ROn =
      runCampaign(Prog, Golden, CampaignPlan::build(A, Golden, On), Exec);
  CampaignResult ROff =
      runCampaign(Prog, Golden, CampaignPlan::build(A, Golden, Off), Exec);
  ASSERT_TRUE(ROn.Error.empty()) << ROn.Error;
  ASSERT_TRUE(ROff.Error.empty()) << ROff.Error;

  expectSameResult(ROff, ROn);
  EXPECT_GT(ROn.CheckpointsCreated, 0u);
  EXPECT_GT(ROn.CheckpointBytes, 0u);
  EXPECT_GE(ROn.CheckpointRestores, 1u);
  EXPECT_GT(ROn.SplicedRuns, 0u);
  ASSERT_GT(ROff.SimulatedCycles, 0u);
  EXPECT_LE(ROn.SimulatedCycles * 5, ROff.SimulatedCycles)
      << "prefix checkpointing must cut simulated work at least 5x "
      << "(on: " << ROn.SimulatedCycles << ", off: " << ROff.SimulatedCycles
      << ")";
}

} // namespace
