//===- tests/FuzzTest.cpp - Generator, oracle, minimizer, fuzz campaign ---===//
///
/// \file
/// The fuzz subsystem's own contract tests: generator determinism and
/// shape diversity, oracle sensitivity (a corrupted verdict must be
/// caught), ddmin 1-minimality, and the campaign-level invariants — the
/// aggregate report is a pure function of seed + options regardless of
/// thread count, interruption, resume, or budget.
///
//===----------------------------------------------------------------------===//

#include "core/BECAnalysis.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"
#include "ir/AsmParser.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace bec;
using namespace bec::fuzz;

namespace {

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, ProgramSeedsAreDistinct) {
  std::set<uint64_t> Seeds;
  for (uint64_t I = 0; I < 256; ++I)
    Seeds.insert(programSeed(1, I));
  EXPECT_EQ(Seeds.size(), 256u);
  // Different corpus seeds derive different program seeds.
  EXPECT_NE(programSeed(1, 0), programSeed(2, 0));
  // Pure function: no hidden state between calls.
  EXPECT_EQ(programSeed(7, 42), programSeed(7, 42));
}

TEST(FuzzGenerator, SameSeedIsByteIdentical) {
  for (uint64_t Seed : {1ull, 99ull, 0xdeadbeefull}) {
    GeneratedProgram A = generateProgram(Seed);
    GeneratedProgram B = generateProgram(Seed);
    EXPECT_EQ(A.Asm, B.Asm);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.OpcodeCount, B.OpcodeCount);
    EXPECT_EQ(A.IdiomCount, B.IdiomCount);
  }
}

TEST(FuzzGenerator, DistinctSeedsAreDistinctPrograms) {
  std::set<std::string> Asms;
  for (uint64_t I = 0; I < 32; ++I)
    Asms.insert(generateProgram(programSeed(3, I)).Asm);
  EXPECT_EQ(Asms.size(), 32u);
}

TEST(FuzzGenerator, GeneratedProgramsAreLegalAndTerminate) {
  for (uint64_t I = 0; I < 50; ++I) {
    GeneratedProgram G = generateProgram(programSeed(11, I));
    ASSERT_TRUE(G.Error.empty()) << G.Error << "\n" << G.Asm;
    Trace Golden = simulate(G.Prog);
    EXPECT_EQ(Golden.End, Outcome::Finished) << G.Asm;
    EXPECT_TRUE(Golden.HasReturnValue) << G.Asm;
  }
}

TEST(FuzzGenerator, CorpusCoversAllIdiomsAndWidths) {
  std::array<uint64_t, NumIdioms> Idioms{};
  std::set<unsigned> Widths;
  for (uint64_t I = 0; I < 64; ++I) {
    GeneratedProgram G = generateProgram(programSeed(5, I));
    ASSERT_TRUE(G.Error.empty()) << G.Error;
    Widths.insert(G.Prog.Width);
    for (unsigned K = 0; K < NumIdioms; ++K)
      Idioms[K] += G.IdiomCount[K];
  }
  for (unsigned K = 0; K < NumIdioms; ++K)
    EXPECT_GT(Idioms[K], 0u) << "idiom never generated: "
                             << idiomName(Idiom(K));
  EXPECT_EQ(Widths, (std::set<unsigned>{4, 8, 16, 32}));
}

TEST(FuzzGenerator, OptionsRestrictShape) {
  GeneratorOptions O;
  O.AllowMemory = false;
  O.AllowMulDiv = false;
  O.Widths = {8};
  for (uint64_t I = 0; I < 16; ++I) {
    GeneratedProgram G = generateProgram(programSeed(13, I), O);
    ASSERT_TRUE(G.Error.empty()) << G.Error;
    EXPECT_EQ(G.Prog.Width, 8u);
    EXPECT_EQ(G.IdiomCount[unsigned(Idiom::MemoryMix)], 0u);
    EXPECT_EQ(G.OpcodeCount[size_t(Opcode::MUL)], 0u);
    EXPECT_EQ(G.OpcodeCount[size_t(Opcode::DIVU)], 0u);
  }
}

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

TEST(FuzzOracles, CleanOnGeneratedPrograms) {
  OracleOptions O;
  O.MaxCycles = 24;
  for (uint64_t I = 0; I < 5; ++I) {
    GeneratedProgram G = generateProgram(programSeed(17, I));
    ASSERT_TRUE(G.Error.empty()) << G.Error;
    OracleReport R = runOracles(G.Prog, O);
    EXPECT_TRUE(R.ok()) << G.Asm << "\nfirst mismatch: ["
                        << (R.Mismatches.empty() ? ""
                                                 : R.Mismatches[0].Oracle)
                        << "] "
                        << (R.Mismatches.empty() ? ""
                                                 : R.Mismatches[0].Detail);
    EXPECT_GT(R.ExhaustiveRuns, 0u);
    EXPECT_GT(R.PrunedRuns, 0u);
    // Pruning must actually prune, or the differential check is vacuous.
    EXPECT_LT(R.PrunedRuns, R.ExhaustiveRuns);
  }
}

TEST(FuzzOracles, CompareVerdictsCatchesACorruptedEffect) {
  GeneratedProgram G = generateProgram(programSeed(19, 0));
  ASSERT_TRUE(G.Error.empty()) << G.Error;
  Trace Golden = simulate(G.Prog);
  ASSERT_EQ(Golden.End, Outcome::Finished);
  uint64_t Limit = std::min<uint64_t>(24, Golden.Cycles);
  ASSERT_GT(Limit, 1u);
  BECAnalysis A = BECAnalysis::run(G.Prog);
  std::vector<PlannedRun> ExPlan =
      planCampaign(A, Golden, PlanKind::Exhaustive, Limit);
  CampaignResult Ex = runCampaign(G.Prog, Golden, ExPlan);
  std::vector<PlannedRun> BitPlan =
      planCampaign(A, Golden, PlanKind::BitLevel, Limit - 1);
  CampaignResult Bit = runCampaign(G.Prog, Golden, BitPlan);
  ASSERT_FALSE(Bit.Effects.empty());

  std::vector<OracleMismatch> Mismatches;
  EXPECT_EQ(compareVerdicts(ExPlan, Ex.Effects, BitPlan, Bit.Effects,
                            Mismatches),
            0u);

  // Flip one pruned verdict: the comparison must notice exactly it.
  std::vector<FaultEffect> Corrupt = Bit.Effects;
  Corrupt[0] = Corrupt[0] == FaultEffect::SDC ? FaultEffect::Masked
                                              : FaultEffect::SDC;
  EXPECT_EQ(compareVerdicts(ExPlan, Ex.Effects, BitPlan, Corrupt, Mismatches),
            1u);
  ASSERT_EQ(Mismatches.size(), 1u);
  EXPECT_EQ(Mismatches[0].Oracle, "verdict");

  // A pruned site outside exhaustive coverage is flagged as such.
  std::vector<PlannedRun> Outside = {BitPlan[0]};
  Outside[0].AfterCycle = Limit + 100;
  std::vector<FaultEffect> OutsideEffects = {FaultEffect::Masked};
  Mismatches.clear();
  EXPECT_EQ(compareVerdicts(ExPlan, Ex.Effects, Outside, OutsideEffects,
                            Mismatches),
            1u);
  EXPECT_NE(Mismatches[0].Detail.find("outside exhaustive coverage"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(FuzzMinimizer, ShrinksToOneMinimalReproducer) {
  // The "failure" is simply containing an XOR: the minimizer should strip
  // everything except the xor line and whatever keeps the program legal.
  std::string Asm = ".width 8\n"
                    "main:\n"
                    "  li t0, 1\n"
                    "  li t1, 2\n"
                    "  add t2, t0, t1\n"
                    "  xor t3, t2, t0\n"
                    "  sub t4, t3, t1\n"
                    "  out t4\n"
                    "  mv a0, t4\n"
                    "  ret\n";
  auto Fails = [](const Program &P) {
    for (const Instruction &I : P.Instrs)
      if (I.Op == Opcode::XOR)
        return true;
    return false;
  };
  ASSERT_TRUE(Fails(parseAsmOrDie(Asm, "seed")));

  MinimizeResult R = minimizeProgram(Asm, "min", Fails);
  EXPECT_TRUE(R.OneMinimal);
  EXPECT_LT(R.LinesAfter, R.LinesBefore);
  // The survivors are the xor and the ret keeping it verifier-legal.
  EXPECT_LE(R.LinesAfter, 3u);
  AsmParseResult Min = parseAsm(R.Asm, "min");
  ASSERT_TRUE(Min.succeeded()) << R.Asm;
  EXPECT_TRUE(Fails(*Min.Prog)) << R.Asm;
}

TEST(FuzzMinimizer, BudgetExhaustionStillReturnsAReproducer) {
  GeneratedProgram G = generateProgram(programSeed(23, 1));
  ASSERT_TRUE(G.Error.empty());
  auto Fails = [](const Program &P) { return !P.Instrs.empty(); };
  MinimizeOptions O;
  O.MaxTests = 3;
  MinimizeResult R = minimizeProgram(G.Asm, "min", Fails, O);
  EXPECT_LE(R.Tests, 3u);
  AsmParseResult Min = parseAsm(R.Asm, "min");
  ASSERT_TRUE(Min.succeeded()) << R.Asm;
  EXPECT_TRUE(Fails(*Min.Prog));
}

//===----------------------------------------------------------------------===//
// The fuzz campaign
//===----------------------------------------------------------------------===//

/// Small, fast campaign options shared by the invariance tests.
FuzzOptions smallCampaign() {
  FuzzOptions O;
  O.Seed = 5;
  O.Count = 6;
  O.Oracle.MaxCycles = 16;
  return O;
}

/// The fields that must be invariant under threads/interruption/resume.
void expectSameAggregates(const FuzzResult &A, const FuzzResult &B) {
  EXPECT_EQ(A.Programs, B.Programs);
  EXPECT_EQ(A.ExhaustiveRuns, B.ExhaustiveRuns);
  EXPECT_EQ(A.PrunedRuns, B.PrunedRuns);
  EXPECT_EQ(A.PrunedEffects, B.PrunedEffects);
  EXPECT_EQ(A.OpcodeCount, B.OpcodeCount);
  EXPECT_EQ(A.IdiomCount, B.IdiomCount);
  EXPECT_EQ(A.Mismatches.size(), B.Mismatches.size());
}

TEST(FuzzCampaign, ReportIsThreadCountInvariant) {
  FuzzOptions O = smallCampaign();
  O.Threads = 1;
  FuzzResult Serial = runFuzz(O);
  ASSERT_TRUE(Serial.Error.empty()) << Serial.Error;
  EXPECT_TRUE(Serial.Mismatches.empty());
  EXPECT_EQ(Serial.Programs, 6u);
  EXPECT_EQ(Serial.Executed, 6u);

  O.Threads = 4;
  FuzzResult Parallel = runFuzz(O);
  ASSERT_TRUE(Parallel.Error.empty()) << Parallel.Error;
  expectSameAggregates(Serial, Parallel);
}

TEST(FuzzCampaign, InterruptAndResumeMatchesStraightRun) {
  std::string Path = testing::TempDir() + "/fuzz_resume_ck.jsonl";
  std::remove(Path.c_str());

  FuzzOptions O = smallCampaign();
  FuzzResult Straight = runFuzz(O);
  ASSERT_TRUE(Straight.Error.empty()) << Straight.Error;

  O.CheckpointPath = Path;
  O.StopAfterPrograms = 2;
  FuzzResult Partial = runFuzz(O);
  ASSERT_TRUE(Partial.Error.empty()) << Partial.Error;
  EXPECT_TRUE(Partial.Interrupted);
  EXPECT_EQ(Partial.Executed, 2u);

  O.StopAfterPrograms = 0;
  O.Resume = true;
  FuzzResult Resumed = runFuzz(O);
  ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
  EXPECT_FALSE(Resumed.Interrupted);
  EXPECT_EQ(Resumed.Resumed, 2u);
  EXPECT_EQ(Resumed.Executed, 4u);
  expectSameAggregates(Straight, Resumed);
  std::remove(Path.c_str());
}

TEST(FuzzCampaign, ResumeRejectsACheckpointOfDifferentOptions) {
  std::string Path = testing::TempDir() + "/fuzz_fp_ck.jsonl";
  std::remove(Path.c_str());

  FuzzOptions O = smallCampaign();
  O.Count = 2;
  O.CheckpointPath = Path;
  FuzzResult First = runFuzz(O);
  ASSERT_TRUE(First.Error.empty()) << First.Error;

  O.Seed = 6; // different corpus, same checkpoint file
  O.Resume = true;
  FuzzResult Clash = runFuzz(O);
  EXPECT_FALSE(Clash.Error.empty());
  EXPECT_NE(Clash.Error.find("fingerprint"), std::string::npos)
      << Clash.Error;
  std::remove(Path.c_str());
}

TEST(FuzzCampaign, BudgetSelectsADeterministicPrefix) {
  FuzzOptions O = smallCampaign();
  FuzzResult Full = runFuzz(O);
  ASSERT_TRUE(Full.Error.empty()) << Full.Error;
  ASSERT_EQ(Full.Programs, 6u);
  ASSERT_GT(Full.ExhaustiveRuns, 0u);

  // A budget below the full corpus cost keeps a proper prefix...
  O.Budget = Full.ExhaustiveRuns - 1;
  FuzzResult Capped = runFuzz(O);
  ASSERT_TRUE(Capped.Error.empty()) << Capped.Error;
  EXPECT_LT(Capped.Programs, Full.Programs);
  EXPECT_EQ(Capped.Programs + Capped.SkippedByBudget, 6u);
  EXPECT_LE(Capped.ExhaustiveRuns, O.Budget);

  // ...a tiny budget still runs at least one program...
  O.Budget = 1;
  FuzzResult Tiny = runFuzz(O);
  ASSERT_TRUE(Tiny.Error.empty()) << Tiny.Error;
  EXPECT_EQ(Tiny.Programs, 1u);

  // ...and a generous one changes nothing.
  O.Budget = Full.ExhaustiveRuns;
  FuzzResult Loose = runFuzz(O);
  ASSERT_TRUE(Loose.Error.empty()) << Loose.Error;
  expectSameAggregates(Full, Loose);
}

TEST(FuzzCampaign, EmitCorpusWritesOneLegalFilePerProgram) {
  std::string Dir = testing::TempDir() + "/fuzz_emit_corpus";
  std::filesystem::remove_all(Dir);

  FuzzOptions O = smallCampaign();
  O.Count = 4;
  ASSERT_EQ(emitCorpus(O, Dir), "");

  std::vector<std::filesystem::path> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    Files.push_back(Entry.path());
  EXPECT_EQ(Files.size(), 4u);
  for (const std::filesystem::path &P : Files) {
    EXPECT_EQ(P.extension(), ".s");
    std::ifstream In(P);
    std::stringstream Buf;
    Buf << In.rdbuf();
    AsmParseResult Res = parseAsm(Buf.str(), P.filename().string());
    EXPECT_TRUE(Res.succeeded()) << P << "\n" << Res.diagText();
  }

  // Re-emitting is idempotent: same file set, same bytes.
  std::vector<std::string> Before;
  for (const std::filesystem::path &P : Files) {
    std::ifstream In(P);
    std::stringstream Buf;
    Buf << In.rdbuf();
    Before.push_back(Buf.str());
  }
  ASSERT_EQ(emitCorpus(O, Dir), "");
  for (size_t I = 0; I < Files.size(); ++I) {
    std::ifstream In(Files[I]);
    std::stringstream Buf;
    Buf << In.rdbuf();
    EXPECT_EQ(Buf.str(), Before[I]);
  }
  std::filesystem::remove_all(Dir);
}

} // namespace
