//===- tests/ServeTest.cpp - becd protocol, service, server, client -------===//
//
// The serve/ contract under test:
//  * framing: malformed frames are rejected with typed error codes and do
//    not kill the connection; well-formed frames round-trip;
//  * handshake: incompatible protocol revisions / API majors are refused
//    client-side;
//  * loopback mode: the full method table over an in-process Service is
//    deterministic and byte-identical to the local driver;
//  * sockets: real TCP round-trips, concurrent clients sharing one
//    session pool (bit-identical to serial execution, cross-client cache
//    hits visible in stats), graceful shutdown unblocking idle clients;
//  * driver integration: `bec --version`, `bec serve`/`bec client`, and
//    `--remote` offload producing byte-identical subcommand output.
//
//===----------------------------------------------------------------------===//

#include "api/Api.h"
#include "obs/Log.h"
#include "obs/SpanRing.h"
#include "serve/Client.h"
#include "serve/Service.h"
#include "support/JsonParse.h"

#include "Driver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace bec;
using namespace bec::serve;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

struct DriverRun {
  int Status;
  std::string Out;
  std::string Err;
};

DriverRun runLocal(std::vector<std::string> Args) {
  std::ostringstream Out, Err;
  int Status = tool::runDriver(Args, Out, Err);
  return {Status, Out.str(), Err.str()};
}

/// Masks the campaign's wall-clock column/field: it is nondeterministic
/// between any two runs (local vs. local included), and is the one
/// rendered value that is measured rather than computed.
std::string maskSeconds(std::string S) {
  S = std::regex_replace(S, std::regex("\"seconds\":[-+0-9.eE]+"),
                         "\"seconds\":#");
  // The column is right-aligned: absorb the padding too, or differing
  // digit counts (fast vs. sanitizer-slow runs) shift the spaces.
  S = std::regex_replace(S, std::regex(" +[0-9]+\\.[0-9]{2}\n"), " #\n");
  return S;
}

/// A live TCP server on an ephemeral port, torn down on scope exit.
struct ServerFixture {
  Service Svc;
  Server Srv;
  std::thread Runner;

  explicit ServerFixture(unsigned Jobs = 4)
      : Srv(Svc, [&] {
          Server::Options O;
          O.Port = 0;
          O.Jobs = Jobs;
          return O;
        }()) {
    std::string Err;
    if (!Srv.start(Err))
      ADD_FAILURE() << "server start failed: " << Err;
    Runner = std::thread([this] { Srv.run(); });
  }

  ~ServerFixture() {
    Srv.requestStop();
    Runner.join();
  }

  std::string remoteFlag() const {
    return "127.0.0.1:" + std::to_string(Srv.port());
  }

  Client connect() {
    std::string Err;
    std::optional<Client> C = Client::connect("127.0.0.1", Srv.port(), Err);
    if (!C)
      throw std::runtime_error("connect failed: " + Err);
    return std::move(*C);
  }
};

/// Error code of a raw frame pushed through a loopback service.
ErrorCode frameError(Service &Svc, std::string_view Frame) {
  std::string Line = Svc.handleFrame(Frame);
  std::string Err;
  std::optional<Response> R = parseResponseFrame(Line, Err);
  EXPECT_TRUE(R.has_value()) << Err;
  EXPECT_TRUE(R && R->IsError) << Line;
  return R ? R->Code : ErrorCode::InternalError;
}

//===----------------------------------------------------------------------===//
// Protocol framing
//===----------------------------------------------------------------------===//

TEST(Protocol, RejectsMalformedFramesWithTypedCodes) {
  Service Svc;
  EXPECT_EQ(frameError(Svc, "this is not json"), ErrorCode::ParseError);
  EXPECT_EQ(frameError(Svc, "{\"id\":1,\"method\":\"x\""),
            ErrorCode::ParseError);
  EXPECT_EQ(frameError(Svc, "[1,2,3]"), ErrorCode::InvalidRequest);
  EXPECT_EQ(frameError(Svc, "42"), ErrorCode::InvalidRequest);
  EXPECT_EQ(frameError(Svc, "{\"method\":\"version\"}"),
            ErrorCode::InvalidRequest);
  EXPECT_EQ(frameError(Svc, "{\"id\":-3,\"method\":\"version\"}"),
            ErrorCode::InvalidRequest);
  EXPECT_EQ(frameError(Svc, "{\"id\":1}"), ErrorCode::InvalidRequest);
  EXPECT_EQ(frameError(Svc, "{\"id\":1,\"method\":\"version\",\"params\":7}"),
            ErrorCode::InvalidParams);
  EXPECT_EQ(frameError(Svc, "{\"id\":1,\"method\":\"frobnicate\"}"),
            ErrorCode::MethodNotFound);
  // Malformed frames count as errors but leave the service usable.
  std::string Line = Svc.handleFrame("{\"id\":9,\"method\":\"version\"}");
  std::string Err;
  std::optional<Response> R = parseResponseFrame(Line, Err);
  ASSERT_TRUE(R.has_value()) << Err;
  EXPECT_FALSE(R->IsError);
  EXPECT_EQ(R->Id, 9u);
}

TEST(Protocol, RequestAndResponseFramesRoundTrip) {
  std::string Frame = makeRequestFrame(7, "analyze",
                                       "{\"targets\":[\"bitcount\"]}");
  EXPECT_EQ(Frame.back(), '\n');
  ParsedFrame P = parseRequestFrame(
      std::string_view(Frame).substr(0, Frame.size() - 1));
  ASSERT_TRUE(P.Req.has_value()) << P.Message;
  EXPECT_EQ(P.Req->Id, 7u);
  EXPECT_EQ(P.Req->Method, "analyze");
  const std::vector<JsonValue> *Targets =
      P.Req->Params.member("targets")->asArray();
  ASSERT_NE(Targets, nullptr);
  EXPECT_EQ(*(*Targets)[0].asString(), "bitcount");

  std::string Result = makeResultFrame(7, "{\"ok\":true}");
  std::string Err;
  std::optional<Response> R = parseResponseFrame(
      std::string_view(Result).substr(0, Result.size() - 1), Err);
  ASSERT_TRUE(R.has_value()) << Err;
  EXPECT_FALSE(R->IsError);
  EXPECT_EQ(R->Result.member("ok")->asBool(), true);

  std::string Error =
      makeErrorFrame(9, ErrorCode::BadTarget, "nope", "{\"k\":1}");
  R = parseResponseFrame(std::string_view(Error).substr(0, Error.size() - 1),
                         Err);
  ASSERT_TRUE(R.has_value()) << Err;
  EXPECT_TRUE(R->IsError);
  EXPECT_EQ(R->Code, ErrorCode::BadTarget);
  EXPECT_EQ(R->ErrorName, "bad_target");
  EXPECT_EQ(R->Message, "nope");
  EXPECT_EQ(R->ErrorData.memberU64("k"), 1u);
}

TEST(Protocol, HandshakeCompatibility) {
  std::optional<Handshake> H = parseHandshakeFrame(makeHandshakeFrame());
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->Server, "becd");
  EXPECT_EQ(H->Protocol, ProtocolVersion);
  EXPECT_TRUE(handshakeIncompatibility(*H).empty());

  Handshake Wrong = *H;
  Wrong.Protocol = ProtocolVersion + 1;
  EXPECT_NE(handshakeIncompatibility(Wrong), "");
  Wrong = *H;
  Wrong.ApiVersion = "999.0.0";
  EXPECT_NE(handshakeIncompatibility(Wrong), "");
  Wrong = *H;
  Wrong.Server = "httpd";
  EXPECT_NE(handshakeIncompatibility(Wrong), "");
}

//===----------------------------------------------------------------------===//
// Loopback service
//===----------------------------------------------------------------------===//

TEST(Loopback, VersionMethod) {
  Service Svc;
  Client C = Client::loopback(Svc);
  Reply R = C.call("version");
  ASSERT_TRUE(R.Ok) << R.Message;
  EXPECT_EQ(*R.Result.memberString("api"), BEC_API_VERSION_STRING);
  EXPECT_EQ(R.Result.memberU64("protocol"), uint64_t(ProtocolVersion));
  EXPECT_NE(R.Result.memberString("build_type"), nullptr);
}

TEST(Loopback, AnalyzeMatchesLocalDriverTextAndJson) {
  Service Svc;
  Client C = Client::loopback(Svc);
  for (const char *Format : {"text", "json"}) {
    Reply R = C.call("analyze", std::string("{\"targets\":[\"bitcount\"],"
                                            "\"format\":\"") +
                                    Format + "\"}");
    ASSERT_TRUE(R.Ok) << R.Message;
    DriverRun Local = runLocal({"analyze", "--workload", "bitcount",
                                "--format", Format});
    EXPECT_EQ(*R.Result.memberString("output"), Local.Out) << Format;
    EXPECT_EQ(int(*R.Result.memberU64("exit")), Local.Status);
  }
}

TEST(Loopback, JobsParamNeverChangesOutputBytes) {
  Service Svc;
  Client C = Client::loopback(Svc);
  Reply Serial = C.call("analyze", "{\"format\":\"json\"}");
  Reply Parallel = C.call("analyze", "{\"format\":\"json\",\"jobs\":4}");
  ASSERT_TRUE(Serial.Ok) << Serial.Message;
  ASSERT_TRUE(Parallel.Ok) << Parallel.Message;
  EXPECT_EQ(*Serial.Result.memberString("output"),
            *Parallel.Result.memberString("output"));
  EXPECT_EQ(C.call("analyze", "{\"jobs\":\"many\"}").Code,
            ErrorCode::InvalidParams);
}

TEST(Loopback, CountsIsStructured) {
  Service Svc;
  Client C = Client::loopback(Svc);
  Reply R = C.call("counts", "{\"target\":\"crc32\"}");
  ASSERT_TRUE(R.Ok) << R.Message;
  EXPECT_EQ(*R.Result.memberString("name"), "CRC32"); // Canonical casing.
  EXPECT_GT(*R.Result.memberU64("fault_space"), 0u);
  EXPECT_GT(*R.Result.memberU64("vulnerability"), 0u);

  Reply Bad = C.call("counts", "{\"target\":\"nonesuch\"}");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.Code, ErrorCode::BadTarget);
}

TEST(Loopback, InternReportsStructuredLineAndColumn) {
  Service Svc;
  Client C = Client::loopback(Svc);

  // Column 3 = the mnemonic, line 2 of the source text.
  Reply Bad = C.call(
      "intern", "{\"name\":\"bad.s\",\"asm\":\"main:\\n  frobnicate t9\\n\"}");
  ASSERT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.Code, ErrorCode::BadAsm);
  const std::vector<JsonValue> *Diags =
      Bad.ErrorData.member("diags")->asArray();
  ASSERT_NE(Diags, nullptr);
  ASSERT_FALSE(Diags->empty());
  EXPECT_EQ((*Diags)[0].memberU64("line"), 2u);
  EXPECT_EQ((*Diags)[0].memberU64("col"), 3u);
  EXPECT_NE(Diags->front().memberString("message")->find("unknown mnemonic"),
            std::string::npos);

  // Good source interns and is analyzable under its name.
  Reply Good = C.call(
      "intern",
      "{\"name\":\"tiny.s\",\"asm\":\"main:\\n  li a0, 1\\n  out a0\\n  ret\\n\"}");
  ASSERT_TRUE(Good.Ok) << Good.Message;
  EXPECT_EQ(*Good.Result.memberU64("instrs"), 3u);
  EXPECT_FALSE(Good.Result.memberString("content_key")->empty());

  Reply An = C.call("analyze", "{\"targets\":[\"tiny.s\"]}");
  ASSERT_TRUE(An.Ok) << An.Message;
  EXPECT_NE(An.Result.memberString("output")->find("tiny.s"),
            std::string::npos);

  // Names must not shadow bundled workloads.
  Reply Shadow =
      C.call("intern", "{\"name\":\"BitCount\",\"asm\":\"main:\\n  ret\\n\"}");
  EXPECT_FALSE(Shadow.Ok);
  EXPECT_EQ(Shadow.Code, ErrorCode::InvalidParams);
}

TEST(Loopback, StatsSeeCrossClientCacheHits) {
  Service Svc;
  Client A = Client::loopback(Svc);
  Client B = Client::loopback(Svc);

  ASSERT_TRUE(A.call("analyze", "{\"targets\":[\"bitcount\"]}").Ok);
  Reply S1 = A.call("stats");
  ASSERT_TRUE(S1.Ok);
  uint64_t Misses1 = *S1.Result.member("session")->memberU64("misses");

  // The second client's identical request is served from the pool: no
  // new misses, new hits.
  ASSERT_TRUE(B.call("analyze", "{\"targets\":[\"bitcount\"]}").Ok);
  Reply S2 = B.call("stats");
  ASSERT_TRUE(S2.Ok);
  EXPECT_EQ(*S2.Result.member("session")->memberU64("misses"), Misses1);
  EXPECT_GT(*S2.Result.member("session")->memberU64("hits"), 0u);
  EXPECT_EQ(*S2.Result.member("session")->memberU64("shards"), 1u);
  EXPECT_GE(*S2.Result.memberU64("requests"), 4u);
}

TEST(Loopback, StatsExposesLatencyHistogramsAndHitRate) {
  Service Svc;
  Client C = Client::loopback(Svc);
  ASSERT_TRUE(C.call("analyze", "{\"targets\":[\"bitcount\"]}").Ok);
  ASSERT_TRUE(C.call("analyze", "{\"targets\":[\"bitcount\"]}").Ok);

  Reply S1 = C.call("stats");
  ASSERT_TRUE(S1.Ok);
  // Per-method latency: count, p50 <= p99, a finite mean. (The obs
  // registry is process-global, so counts here are >= this service's own
  // request counts and only ever grow.)
  const JsonValue *Latency = S1.Result.member("latency");
  ASSERT_NE(Latency, nullptr);
  const JsonValue *An = Latency->member("analyze");
  ASSERT_NE(An, nullptr);
  uint64_t Count1 = *An->memberU64("count");
  EXPECT_GE(Count1, 2u);
  EXPECT_LE(*An->memberU64("p50_us"), *An->memberU64("p99_us"));
  EXPECT_GE(*An->member("mean_us")->asDouble(), 0.0);

  // The session block carries the derived hit rate once hits+misses > 0.
  const JsonValue *Session = S1.Result.member("session");
  ASSERT_NE(Session, nullptr);
  const JsonValue *Rate = Session->member("hit_rate");
  ASSERT_NE(Rate, nullptr);
  EXPECT_GE(*Rate->asDouble(), 0.0);
  EXPECT_LE(*Rate->asDouble(), 1.0);

  // Gauges are live levels; inflight counts this very stats request.
  const JsonValue *Gauges = S1.Result.member("gauges");
  ASSERT_NE(Gauges, nullptr);
  EXPECT_GE(*Gauges->member("serve.requests.inflight")->asI64(), 0);

  // Histogram counts are monotone across requests.
  ASSERT_TRUE(C.call("analyze", "{\"targets\":[\"bitcount\"]}").Ok);
  Reply S2 = C.call("stats");
  ASSERT_TRUE(S2.Ok);
  EXPECT_GE(*S2.Result.member("latency")->member("analyze")->memberU64(
                "count"),
            Count1 + 1);
}

TEST(Loopback, MetricsMethodRendersPrometheusExposition) {
  Service Svc;
  Client C = Client::loopback(Svc);
  ASSERT_TRUE(C.call("analyze", "{\"targets\":[\"bitcount\"]}").Ok);
  Reply R = C.call("metrics");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(*R.Result.memberString("content_type"),
            "text/plain; version=0.0.4");
  const std::string *Text = R.Result.memberString("text");
  ASSERT_NE(Text, nullptr);
  EXPECT_NE(Text->find("# TYPE bec_serve_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(Text->find("bec_serve_method_us_bucket{method=\"analyze\","),
            std::string::npos);

  // Every line is "# TYPE name kind" or "name[{labels}] value", and
  // cumulative le= buckets never decrease within a family.
  std::istringstream In(*Text);
  std::string Line;
  std::map<std::string, uint64_t> LastBucket; // family+labels -> count
  while (std::getline(In, Line)) {
    ASSERT_FALSE(Line.empty());
    if (Line.rfind("# TYPE ", 0) == 0)
      continue;
    ASSERT_EQ(Line[0] == '#', false) << Line;
    size_t Sp = Line.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << Line;
    std::string Name = Line.substr(0, Sp);
    ASSERT_EQ(Name.rfind("bec_", 0), 0u) << Line;
    size_t Le = Name.find("le=\"");
    if (Le == std::string::npos)
      continue;
    uint64_t Count = std::stoull(Line.substr(Sp + 1));
    std::string Series = Name.substr(0, Le); // family + leading labels
    auto It = LastBucket.find(Series);
    if (It != LastBucket.end()) {
      EXPECT_GE(Count, It->second) << Line;
    }
    LastBucket[Series] = Count;
  }
  EXPECT_FALSE(LastBucket.empty());
}

TEST(Loopback, BadParamsAndUnknownTargets) {
  Service Svc;
  Client C = Client::loopback(Svc);
  EXPECT_EQ(C.call("analyze", "{\"targets\":\"bitcount\"}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("analyze", "{\"targets\":[7]}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("analyze", "{\"format\":\"xml\"}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("analyze", "{\"targets\":[\"nonesuch\"]}").Code,
            ErrorCode::BadTarget);
  EXPECT_EQ(C.call("campaign", "{\"plan\":\"quantum\"}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("harden", "{\"budgets\":[]}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("harden", "{\"budgets\":[-1]}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("intern", "{\"name\":\"x\"}").Code,
            ErrorCode::InvalidParams);
}

//===----------------------------------------------------------------------===//
// campaign/run: the streaming method
//===----------------------------------------------------------------------===//

TEST(Protocol, ProgressFrameRoundTrips) {
  std::string Frame = makeProgressFrame(7, "{\"shards_done\":3}");
  ASSERT_FALSE(Frame.empty());
  EXPECT_EQ(Frame.back(), '\n');
  std::optional<ProgressFrame> P =
      parseProgressFrame(std::string_view(Frame).substr(0, Frame.size() - 1));
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Id, 7u);
  EXPECT_EQ(P->Progress.memberU64("shards_done"), 3u);
  // Response frames are not progress frames and vice versa.
  EXPECT_FALSE(parseProgressFrame("{\"id\":7,\"result\":{}}").has_value());
  std::string Err;
  EXPECT_FALSE(
      parseResponseFrame("{\"id\":7,\"progress\":{}}", Err).has_value());
}

TEST(Loopback, CampaignRunStreamsProgressAndMatchesCampaign) {
  Service Svc;
  Client C = Client::loopback(Svc);
  const char *Params =
      "{\"targets\":[\"bitcount\"],\"max_cycles\":300,\"progress\":true}";

  std::vector<uint64_t> ShardsSeen;
  uint64_t TotalShards = 0;
  Reply Streamed = C.callStreaming(
      "campaign/run", Params, [&](const JsonValue &P) {
        ASSERT_EQ(*P.memberString("target"), "bitcount");
        ShardsSeen.push_back(P.memberU64("shards_done").value_or(0));
        TotalShards = P.memberU64("shards").value_or(0);
        EXPECT_LE(ShardsSeen.back(), TotalShards);
      });
  ASSERT_TRUE(Streamed.Ok) << Streamed.Message;
  ASSERT_GE(ShardsSeen.size(), 2u);
  for (size_t I = 1; I < ShardsSeen.size(); ++I)
    EXPECT_LT(ShardsSeen[I - 1], ShardsSeen[I]);
  // The last progress frame reports completion.
  EXPECT_EQ(ShardsSeen.back(), TotalShards);

  // The unary sibling returns the same document (its Seconds may vary).
  Reply Unary =
      C.call("campaign", "{\"targets\":[\"bitcount\"],\"max_cycles\":300}");
  ASSERT_TRUE(Unary.Ok);
  EXPECT_EQ(maskSeconds(*Streamed.Result.memberString("output")),
            maskSeconds(*Unary.Result.memberString("output")));
  EXPECT_EQ(Streamed.Result.memberU64("exit"), Unary.Result.memberU64("exit"));
}

TEST(Loopback, CampaignRunWithoutProgressSendsNoFrames) {
  Service Svc;
  Client C = Client::loopback(Svc);
  size_t Frames = 0;
  Reply R = C.callStreaming(
      "campaign/run", "{\"targets\":[\"bitcount\"],\"max_cycles\":200}",
      [&](const JsonValue &) { ++Frames; });
  ASSERT_TRUE(R.Ok) << R.Message;
  EXPECT_EQ(Frames, 0u);
}

TEST(Loopback, CampaignSamplingParamsValidatedAndServed) {
  Service Svc;
  Client C = Client::loopback(Svc);
  EXPECT_EQ(C.call("campaign", "{\"sample\":\"many\"}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("campaign", "{\"seed\":-1}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("campaign/run", "{\"threads\":\"x\"}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("campaign/run", "{\"progress\":3}").Code,
            ErrorCode::InvalidParams);
  Reply R = C.call("campaign/run",
                   "{\"targets\":[\"bitcount\"],\"max_cycles\":200,"
                   "\"sample\":250,\"seed\":5,\"format\":\"json\"}");
  ASSERT_TRUE(R.Ok) << R.Message;
  const std::string *Out = R.Result.memberString("output");
  ASSERT_NE(Out, nullptr);
  EXPECT_NE(Out->find("\"sample\":"), std::string::npos);
  EXPECT_NE(Out->find("\"population\":"), std::string::npos);
}

TEST(DriverServe, RemoteCampaignProgressStreamsOverTcp) {
  ServerFixture F;
  DriverRun R = runLocal({"campaign", "--workload", "bitcount",
                          "--max-cycles", "300", "--progress", "--remote",
                          F.remoteFlag()});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;
  EXPECT_NE(R.Err.find("bec: campaign: bitcount:"), std::string::npos);
  EXPECT_NE(R.Err.find("shards"), std::string::npos);
  // The report itself matches the local run (Seconds masked), progress
  // notwithstanding.
  DriverRun Local = runLocal(
      {"campaign", "--workload", "bitcount", "--max-cycles", "300"});
  EXPECT_EQ(maskSeconds(R.Out), maskSeconds(Local.Out));
}

//===----------------------------------------------------------------------===//
// Distributed tracing and logging control
//===----------------------------------------------------------------------===//

TEST(Protocol, TraceContextRoundTripsAndMalformedIsTolerated) {
  // A valid envelope `trace` member parses into the request...
  ParsedFrame P = parseRequestFrame(
      "{\"id\":5,\"method\":\"version\",\"trace\":"
      "{\"trace_id\":\"a1\",\"parent_span\":\"b2\"}}");
  ASSERT_TRUE(P.Req.has_value()) << P.Message;
  EXPECT_EQ(P.Req->Trace.TraceId, "a1");
  EXPECT_EQ(P.Req->Trace.ParentSpan, "b2");
  EXPECT_TRUE(P.Req->Trace.valid());

  // ...and the client-side builder emits the same shape.
  std::string Frame = makeRequestFrame(6, "version", "", {"a1", "b2"});
  EXPECT_NE(
      Frame.find("\"trace\":{\"trace_id\":\"a1\",\"parent_span\":\"b2\"}"),
      std::string::npos)
      << Frame;

  // Tracing is best-effort metadata: a malformed `trace` member never
  // fails the request, it just runs untraced.
  obs::spanRingClear();
  Service Svc;
  for (const char *Raw :
       {"{\"id\":1,\"method\":\"version\",\"trace\":7}",
        "{\"id\":2,\"method\":\"version\",\"trace\":\"abc\"}",
        "{\"id\":3,\"method\":\"version\",\"trace\":{}}",
        "{\"id\":4,\"method\":\"version\",\"trace\":{\"trace_id\":9}}"}) {
    std::string Line = Svc.handleFrame(Raw);
    std::string Err;
    std::optional<Response> R = parseResponseFrame(Line, Err);
    ASSERT_TRUE(R.has_value()) << Err;
    EXPECT_FALSE(R->IsError) << Raw;
  }
  EXPECT_TRUE(obs::spanRingSnapshot().empty())
      << "malformed contexts must not record ring spans";
}

TEST(Loopback, TracedRequestLandsInSpanRingAndTraceDump) {
  obs::spanRingClear();
  Service Svc;
  Client C = Client::loopback(Svc);
  std::string TraceId = obs::newTraceId128();
  C.setTrace({TraceId, "123456789abcdef0"});
  ASSERT_TRUE(C.call("analyze", "{\"targets\":[\"bitcount\"]}").Ok);
  C.setTrace({});
  // Untraced traffic (this call included) stays out of the ring.
  ASSERT_TRUE(C.call("version").Ok);

  Reply Dump = C.call("trace/dump", "{\"trace_id\":\"" + TraceId + "\"}");
  ASSERT_TRUE(Dump.Ok) << Dump.Message;
  EXPECT_FALSE(Dump.Result.memberString("process")->empty());
  const std::vector<JsonValue> *Spans =
      Dump.Result.member("spans")->asArray();
  ASSERT_NE(Spans, nullptr);
  ASSERT_EQ(Spans->size(), 1u);
  const JsonValue &Sp = (*Spans)[0];
  EXPECT_EQ(*Sp.memberString("name"), "serve.analyze");
  EXPECT_EQ(*Sp.memberString("trace_id"), TraceId);
  EXPECT_EQ(*Sp.memberString("parent_span"), "123456789abcdef0");
  EXPECT_EQ(Sp.memberString("span_id")->size(), 16u);
  EXPECT_GT(Sp.memberU64("start_us").value_or(0), 0u);

  // Filtering by a foreign trace id returns nothing; a non-string
  // filter is a typed params error.
  Reply Other = C.call("trace/dump",
                       "{\"trace_id\":\"00000000000000000000000000000000\"}");
  ASSERT_TRUE(Other.Ok);
  EXPECT_TRUE(Other.Result.member("spans")->asArray()->empty());
  EXPECT_EQ(C.call("trace/dump", "{\"trace_id\":7}").Code,
            ErrorCode::InvalidParams);
  obs::spanRingClear();
}

TEST(Loopback, LogLevelMethodGetsAndSetsTheRuntimeLevel) {
  Service Svc;
  Client C = Client::loopback(Svc);
  // The rejected sets below log serve.request.error at warn; keep the
  // test's own stderr clean.
  std::string Sink = testing::TempDir() + "/serve_loglevel_log.txt";
  std::string LogErr;
  ASSERT_TRUE(obs::openLogFile(Sink, LogErr)) << LogErr;
  obs::setLogLevel(obs::LogLevel::Off);
  Reply Get = C.call("log/level");
  ASSERT_TRUE(Get.Ok) << Get.Message;
  EXPECT_EQ(*Get.Result.memberString("level"), "off");
  Reply Set = C.call("log/level", "{\"level\":\"warn\"}");
  ASSERT_TRUE(Set.Ok) << Set.Message;
  EXPECT_EQ(*Set.Result.memberString("level"), "warn");
  EXPECT_EQ(obs::logLevel(), obs::LogLevel::Warn);
  EXPECT_EQ(C.call("log/level", "{\"level\":\"loud\"}").Code,
            ErrorCode::InvalidParams);
  EXPECT_EQ(C.call("log/level", "{\"level\":7}").Code,
            ErrorCode::InvalidParams);
  // The rejected sets left the level untouched.
  EXPECT_EQ(obs::logLevel(), obs::LogLevel::Warn);
  obs::setLogLevel(obs::LogLevel::Off);
  obs::closeLogFile();
  std::remove(Sink.c_str());
}

TEST(DriverServe, RemoteTraceOutStitchesOneDistributedTimeline) {
  obs::spanRingClear();
  ServerFixture F;
  std::string Path = testing::TempDir() + "/serve_trace.json";
  std::remove(Path.c_str());
  DriverRun R = runLocal({"analyze", "--workload", "bitcount", "--remote",
                          F.remoteFlag(), "--trace-out=" + Path});
  EXPECT_EQ(R.Status, tool::ExitSuccess) << R.Err;

  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::optional<JsonValue> V = parseJson(Buf.str());
  ASSERT_TRUE(V.has_value()) << Buf.str();
  const std::vector<JsonValue> *Events = V->member("traceEvents")->asArray();
  ASSERT_NE(Events, nullptr);

  std::set<std::string> TraceIds;
  std::set<uint64_t> SpanPids;
  size_t Begins = 0, Ends = 0;
  bool ServerProcessNamed = false;
  for (const JsonValue &E : *Events) {
    const std::string *Ph = E.memberString("ph");
    ASSERT_NE(Ph, nullptr);
    uint64_t Pid = E.memberU64("pid").value_or(1);
    if (*Ph == "M" && Pid != 1)
      ServerProcessNamed = true;
    if (*Ph == "B")
      ++Begins;
    if (*Ph == "E")
      ++Ends;
    if (*Ph == "B" || *Ph == "E" || *Ph == "X")
      SpanPids.insert(Pid);
    if (const JsonValue *Args = E.member("args"))
      if (const std::string *Tid = Args->memberString("trace_id"))
        TraceIds.insert(*Tid);
  }
  // One trace id stitches every hop; the server's spans sit on their
  // own synthetic process lane next to the client's pid 1.
  EXPECT_EQ(TraceIds.size(), 1u);
  EXPECT_EQ(Begins, Ends) << "unbalanced B/E pairs";
  EXPECT_TRUE(SpanPids.count(1)) << "client-local events missing";
  EXPECT_GE(SpanPids.size(), 2u) << "no remote spans were stitched";
  EXPECT_TRUE(ServerProcessNamed) << "missing process_name metadata";

  // Tracing never changes the report itself.
  DriverRun Plain = runLocal({"analyze", "--workload", "bitcount", "--remote",
                              F.remoteFlag()});
  EXPECT_EQ(R.Out, Plain.Out);
  std::remove(Path.c_str());
  obs::spanRingClear();
}

TEST(Loopback, ShutdownRefusesFurtherRequests) {
  Service Svc;
  Client C = Client::loopback(Svc);
  EXPECT_FALSE(Svc.isShuttingDown());
  Reply R = C.call("shutdown");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Result.member("ok")->asBool(), true);
  EXPECT_TRUE(Svc.isShuttingDown());
  Reply After = C.call("version");
  EXPECT_FALSE(After.Ok);
  EXPECT_EQ(After.Code, ErrorCode::ShuttingDown);
}

//===----------------------------------------------------------------------===//
// TCP server
//===----------------------------------------------------------------------===//

TEST(SocketServer, RoundTripAndGracefulShutdown) {
  ServerFixture F;
  Client C = F.connect();
  EXPECT_EQ(C.serverHandshake().ApiVersion, BEC_API_VERSION_STRING);

  Reply V = C.call("version");
  ASSERT_TRUE(V.Ok) << V.Message;
  Reply An = C.call("analyze", "{\"targets\":[\"bitcount\"]}");
  ASSERT_TRUE(An.Ok) << An.Message;

  // An idle second client must be unblocked by another client's shutdown.
  Client Idle = F.connect();
  Reply Sd = C.call("shutdown");
  ASSERT_TRUE(Sd.Ok) << Sd.Message;
  F.Runner.join(); // run() returns on its own after the drain.
  F.Runner = std::thread([] {});
  Reply AfterShutdown = Idle.call("version");
  EXPECT_FALSE(AfterShutdown.Ok);
  EXPECT_EQ(AfterShutdown.Code, ErrorCode::TransportError);
}

TEST(SocketServer, MalformedFrameKeepsConnectionAlive) {
  ServerFixture F;
  std::string Err;
  std::optional<Socket> Conn = connectTo("127.0.0.1", F.Srv.port(), Err);
  ASSERT_TRUE(Conn.has_value()) << Err;
  std::string Line;
  ASSERT_EQ(Conn->recvLine(Line, MaxFrameBytes, Err),
            Socket::RecvStatus::Line); // Handshake.

  ASSERT_TRUE(Conn->sendAll("garbage\n", Err));
  ASSERT_EQ(Conn->recvLine(Line, MaxFrameBytes, Err),
            Socket::RecvStatus::Line);
  EXPECT_NE(Line.find("parse_error"), std::string::npos);

  // Same connection still serves valid requests.
  ASSERT_TRUE(Conn->sendAll("{\"id\":5,\"method\":\"version\"}\n", Err));
  ASSERT_EQ(Conn->recvLine(Line, MaxFrameBytes, Err),
            Socket::RecvStatus::Line);
  EXPECT_NE(Line.find("\"id\":5"), std::string::npos);
  EXPECT_NE(Line.find("result"), std::string::npos);
}

TEST(SocketServer, ConcurrentClientsAreBitIdenticalToSerial) {
  // Serial reference: one loopback service, one client.
  Service Reference;
  Client Ref = Client::loopback(Reference);
  const char *Workloads[] = {"bitcount", "crc32", "sha", "dijkstra"};
  std::map<std::string, std::string> Expected;
  for (const char *W : Workloads) {
    Reply R = Ref.call("analyze", std::string("{\"targets\":[\"") + W +
                                      "\"],\"format\":\"json\"}");
    ASSERT_TRUE(R.Ok) << R.Message;
    Expected[W] = *R.Result.memberString("output");
  }

  ServerFixture F(/*Jobs=*/4);
  constexpr int NumClients = 4, Rounds = 3;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumClients; ++T)
    Threads.emplace_back([&, T] {
      Client C = F.connect();
      for (int R = 0; R < Rounds; ++R)
        for (int W = 0; W < 4; ++W) {
          // Stagger the per-client order so rounds genuinely interleave.
          const char *Name = Workloads[(W + T) % 4];
          Reply Rep = C.call("analyze", std::string("{\"targets\":[\"") +
                                            Name +
                                            "\"],\"format\":\"json\"}");
          if (!Rep.Ok || *Rep.Result.memberString("output") != Expected[Name])
            ++Failures;
        }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  // All four contents were computed at most once; the rest were hits.
  Client C = F.connect();
  Reply St = C.call("stats");
  ASSERT_TRUE(St.Ok);
  EXPECT_EQ(*St.Result.member("session")->memberU64("shards"), 4u);
  EXPECT_GT(*St.Result.member("session")->memberU64("hits"), 0u);
}

//===----------------------------------------------------------------------===//
// Driver integration
//===----------------------------------------------------------------------===//

TEST(DriverServe, VersionFlagAndSubcommand) {
  for (const char *Spelling : {"--version", "version"}) {
    DriverRun R = runLocal({Spelling});
    EXPECT_EQ(R.Status, tool::ExitSuccess);
    EXPECT_NE(R.Out.find("bec " BEC_API_VERSION_STRING), std::string::npos);
    EXPECT_NE(R.Out.find("protocol"), std::string::npos);
  }
}

TEST(DriverServe, RemoteSubcommandsAreByteIdentical) {
  ServerFixture F;
  const std::string Remote = F.remoteFlag();

  // analyze / campaign / harden over every bundled workload (the
  // campaign window is truncated to keep sanitizer runs fast; both sides
  // see the same truncation).
  std::vector<std::vector<std::string>> Commands = {
      {"analyze", "--all"},
      {"analyze", "--all", "--format", "json"},
      {"campaign", "--all", "--max-cycles", "300"},
      {"harden", "--all"},
      {"schedule", "--workload", "bitcount", "--format", "json"},
      {"report", "--workload", "bitcount", "--max-cycles", "300"},
  };
  for (const std::vector<std::string> &Cmd : Commands) {
    DriverRun Local = runLocal(Cmd);
    std::vector<std::string> RemoteCmd = Cmd;
    RemoteCmd.push_back("--remote");
    RemoteCmd.push_back(Remote);
    DriverRun Rem = runLocal(RemoteCmd);
    EXPECT_EQ(Rem.Status, Local.Status) << Cmd[0];
    // Campaign and report outputs carry a measured wall-clock value;
    // everything else must match to the byte.
    bool Timed = Cmd[0] == "campaign" || Cmd[0] == "report";
    EXPECT_EQ(Timed ? maskSeconds(Rem.Out) : Rem.Out,
              Timed ? maskSeconds(Local.Out) : Local.Out)
        << Cmd[0];
    EXPECT_EQ(Rem.Err, Local.Err) << Cmd[0];
  }
}

TEST(DriverServe, ClientSubcommandMatchesLocal) {
  ServerFixture F;
  DriverRun Local = runLocal({"analyze", "--workload", "bitcount"});
  DriverRun Rem = runLocal(
      {"client", "analyze", "bitcount", "--remote", F.remoteFlag()});
  EXPECT_EQ(Rem.Status, Local.Status);
  EXPECT_EQ(Rem.Out, Local.Out);

  DriverRun Counts =
      runLocal({"client", "counts", "bitcount", "--remote", F.remoteFlag()});
  EXPECT_EQ(Counts.Status, tool::ExitSuccess) << Counts.Err;
  EXPECT_NE(Counts.Out.find("\"name\":\"bitcount\""), std::string::npos);

  DriverRun Unknown =
      runLocal({"client", "bogus", "--remote", F.remoteFlag()});
  EXPECT_EQ(Unknown.Status, tool::ExitUsage);
}

TEST(DriverServe, RemoteAsmFileMatchesLocal) {
  // Dump a workload to disk and analyze it as an external file.
  std::string Path = testing::TempDir() + "/serve_crc32.s";
  {
    std::ofstream OutFile(Path);
    OutFile << loadWorkload(*findWorkloadAnyCase("crc32")).toString();
  }
  ServerFixture F;
  DriverRun Local = runLocal({"analyze", "--asm", Path});
  DriverRun Rem =
      runLocal({"analyze", "--asm", Path, "--remote", F.remoteFlag()});
  EXPECT_EQ(Rem.Status, Local.Status);
  EXPECT_EQ(Rem.Out, Local.Out);
  EXPECT_EQ(Rem.Err, Local.Err);

  // A broken file produces the local diagnostic shape, with line/col.
  std::string BadPath = testing::TempDir() + "/serve_bad.s";
  {
    std::ofstream OutFile(BadPath);
    OutFile << "main:\n  frobnicate t0\n  ret\n";
  }
  DriverRun LocalBad = runLocal({"analyze", "--asm", BadPath});
  DriverRun RemBad =
      runLocal({"analyze", "--asm", BadPath, "--remote", F.remoteFlag()});
  EXPECT_EQ(RemBad.Status, LocalBad.Status);
  EXPECT_EQ(RemBad.Err, LocalBad.Err);
  EXPECT_NE(RemBad.Err.find("line 2, col 3"), std::string::npos);
}

TEST(DriverServe, ServeCommandEndToEnd) {
  std::string PortFile = testing::TempDir() + "/becd_port.txt";
  std::remove(PortFile.c_str());
  std::ostringstream ServeOut, ServeErr;
  std::thread ServerThread([&] {
    tool::runDriver({"serve", "--port", "0", "--port-file", PortFile},
                    ServeOut, ServeErr);
  });

  // Wait for the port file (write-then-rename makes reads atomic).
  std::string Port;
  for (int Tries = 0; Tries < 400 && Port.empty(); ++Tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    std::ifstream In(PortFile);
    std::getline(In, Port);
  }
  ASSERT_FALSE(Port.empty()) << ServeErr.str();

  const std::string Remote = "127.0.0.1:" + Port;
  DriverRun Local = runLocal({"harden", "--workload", "bitcount"});
  DriverRun Rem = runLocal(
      {"harden", "--workload", "bitcount", "--remote", Remote});
  EXPECT_EQ(Rem.Status, Local.Status);
  EXPECT_EQ(Rem.Out, Local.Out);

  DriverRun Stats = runLocal({"client", "stats", "--remote", Remote});
  EXPECT_EQ(Stats.Status, tool::ExitSuccess) << Stats.Err;
  EXPECT_NE(Stats.Out.find("\"session\""), std::string::npos);

  DriverRun Shutdown = runLocal({"client", "shutdown", "--remote", Remote});
  EXPECT_EQ(Shutdown.Status, tool::ExitSuccess) << Shutdown.Err;
  ServerThread.join();
  EXPECT_NE(ServeOut.str().find("becd listening on 127.0.0.1:" + Port),
            std::string::npos);
  EXPECT_NE(ServeOut.str().find("becd: shut down"), std::string::npos);
  std::remove(PortFile.c_str());
}

} // namespace
