//===- tests/AsmParserTest.cpp - Assembler and verifier tests --------------===//

#include "api/AnalysisSession.h"
#include "fuzz/Generator.h"
#include "ir/AsmParser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

TEST(AsmParser, ParsesEveryOperandFormat) {
  const char *Src = R"(
.data
tab:
  .word 1, 2, 3
.text
main:
  li   t0, -5
  lui  t1, 0x12345
  mv   t2, t0
  add  t3, t0, t1
  addi t4, t0, 100
  beq  t0, t1, main
  j    main
  lw   t5, 4(t0)
  sw   t5, -4(t0)
  out  t5
  nop
  halt
)";
  AsmParseResult R = parseAsm(Src);
  ASSERT_TRUE(R.succeeded()) << R.diagText();
  EXPECT_EQ(R.Prog->size(), 12u);
  EXPECT_EQ(R.Prog->instr(0).Op, Opcode::LI);
  EXPECT_EQ(R.Prog->instr(0).Imm, -5);
  EXPECT_EQ(R.Prog->instr(5).Target, 0);
  EXPECT_EQ(R.Prog->instr(8).Imm, -4);
}

TEST(AsmParser, LowersPseudoInstructions) {
  const char *Src = R"(
main:
  seqz t0, t1
  snez t0, t1
  not  t0, t1
  neg  t0, t1
  beqz t0, main
  bnez t0, main
  bltz t0, main
  bgez t0, main
  blez t0, main
  bgtz t0, main
  ble  t0, t1, main
  bgt  t0, t1, main
  bleu t0, t1, main
  bgtu t0, t1, main
  halt
)";
  AsmParseResult R = parseAsm(Src);
  ASSERT_TRUE(R.succeeded()) << R.diagText();
  const Program &P = *R.Prog;
  EXPECT_EQ(P.instr(0).Op, Opcode::SLTIU); // seqz -> sltiu rd, rs, 1
  EXPECT_EQ(P.instr(0).Imm, 1);
  EXPECT_EQ(P.instr(1).Op, Opcode::SLTU); // snez -> sltu rd, x0, rs
  EXPECT_EQ(P.instr(1).Rs1, RegZero);
  EXPECT_EQ(P.instr(2).Op, Opcode::XORI); // not -> xori rd, rs, -1
  EXPECT_EQ(P.instr(2).Imm, -1);
  EXPECT_EQ(P.instr(3).Op, Opcode::SUB); // neg -> sub rd, x0, rs
  EXPECT_EQ(P.instr(4).Op, Opcode::BEQ);
  EXPECT_EQ(P.instr(10).Op, Opcode::BGE); // ble a,b -> bge b,a
  EXPECT_EQ(P.instr(10).Rs1, *parseRegName("t1"));
  EXPECT_EQ(P.instr(10).Rs2, *parseRegName("t0"));
  EXPECT_EQ(P.instr(11).Op, Opcode::BLT); // bgt a,b -> blt b,a
}

TEST(AsmParser, ResolvesDataLabels) {
  const char *Src = R"(
.data
first:
  .word 7
second:
  .byte 1
  .align 4
third:
  .zero 8
.text
main:
  la a0, second
  la a1, third
  ret
)";
  AsmParseResult R = parseAsm(Src);
  ASSERT_TRUE(R.succeeded()) << R.diagText();
  EXPECT_EQ(R.Prog->instr(0).Imm,
            static_cast<int64_t>(R.Prog->DataBase + 4));
  EXPECT_EQ(R.Prog->instr(1).Imm,
            static_cast<int64_t>(R.Prog->DataBase + 8)); // aligned past byte
  EXPECT_EQ(R.Prog->Data.size(), 16u);
}

TEST(AsmParser, RegisterAliases) {
  EXPECT_EQ(parseRegName("zero"), parseRegName("x0"));
  EXPECT_EQ(parseRegName("fp"), parseRegName("s0"));
  EXPECT_EQ(parseRegName("fp"), parseRegName("x8"));
  EXPECT_EQ(parseRegName("t6"), parseRegName("x31"));
  EXPECT_FALSE(parseRegName("x32").has_value());
  EXPECT_FALSE(parseRegName("q7").has_value());
  EXPECT_FALSE(parseRegName("x01").has_value());
}

TEST(AsmParser, ReportsUnknownMnemonic) {
  // Structured position, not just message text: line 2, and the mnemonic
  // starts at column 3 ("  frobnicate").
  AsmParseResult R = parseAsm("main:\n  frobnicate t0, t1\n  ret\n");
  ASSERT_FALSE(R.succeeded());
  ASSERT_GE(R.Diags.size(), 1u); // Unconsumed operands add a second diag.
  EXPECT_NE(R.Diags[0].Message.find("unknown mnemonic"), std::string::npos);
  EXPECT_EQ(R.Diags[0].Line, 2u);
  EXPECT_EQ(R.Diags[0].Col, 3u);
  EXPECT_NE(R.diagText().find("line 2, col 3"), std::string::npos);
}

TEST(AsmParser, ReportsUnknownLabel) {
  AsmParseResult R = parseAsm("main:\n  j nowhere\n");
  ASSERT_FALSE(R.succeeded());
  ASSERT_EQ(R.Diags.size(), 1u);
  EXPECT_NE(R.Diags[0].Message.find("unknown label 'nowhere'"),
            std::string::npos);
  EXPECT_EQ(R.Diags[0].Line, 2u);
  EXPECT_EQ(R.Diags[0].Col, 5u); // "  j nowhere": the label operand.
}

TEST(AsmParser, ReportsDuplicateLabel) {
  AsmParseResult R = parseAsm("main:\nmain:\n  ret\n");
  ASSERT_FALSE(R.succeeded());
  ASSERT_EQ(R.Diags.size(), 1u);
  EXPECT_NE(R.Diags[0].Message.find("redefinition"), std::string::npos);
  EXPECT_EQ(R.Diags[0].Line, 2u);
  EXPECT_EQ(R.Diags[0].Col, 1u);
}

TEST(AsmParser, CollectsMultipleErrors) {
  AsmParseResult R = parseAsm("main:\n  bogus\n  also_bogus\n  ret\n");
  ASSERT_FALSE(R.succeeded());
  ASSERT_GE(R.Diags.size(), 2u);
  EXPECT_EQ(R.Diags[0].Line, 2u);
  EXPECT_EQ(R.Diags[1].Line, 3u);
}

TEST(AsmParser, DiagnosticColumnsPointAtTheOffendingToken) {
  struct Case {
    const char *Src;
    uint32_t Line, Col;
    const char *MessagePart;
  };
  const Case Cases[] = {
      // "  add t0, t1" missing the second source: col after the operands.
      {"main:\n  add t0, t1\n  ret\n", 2, 13, "expected ','"},
      // "  li t0," with no immediate: the cursor past the comma.
      {"main:\n  li t0,\n  ret\n", 2, 9, "expected immediate"},
      // Bad register name: the token itself.
      {"main:\n  mv q9, t0\n  ret\n", 2, 6, "expected register"},
      // Trailing garbage after a complete instruction.
      {"main:\n  ret extra\n", 2, 7, "trailing characters"},
      // Directive value out of range: the value token.
      {".width 99\nmain:\n  ret\n", 1, 8, ".width must be"},
      // Unknown directive: the directive token.
      {".frob 1\nmain:\n  ret\n", 1, 1, "unknown directive"},
  };
  for (const Case &C : Cases) {
    AsmParseResult R = parseAsm(C.Src);
    ASSERT_FALSE(R.succeeded()) << C.Src;
    ASSERT_FALSE(R.Diags.empty()) << C.Src;
    EXPECT_EQ(R.Diags[0].Line, C.Line) << C.Src;
    EXPECT_EQ(R.Diags[0].Col, C.Col) << C.Src;
    EXPECT_NE(R.Diags[0].Message.find(C.MessagePart), std::string::npos)
        << C.Src << " -> " << R.Diags[0].Message;
  }
}

TEST(AsmParser, VerifierDiagnosticsCarryNoPosition) {
  // Program-level verifier findings are whole-program, not token-level.
  AsmParseResult R = parseAsm("main:\n  li t0, 1\n");
  ASSERT_FALSE(R.succeeded());
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags[0].Col, 0u);
  EXPECT_EQ(R.diagText().find("col"), std::string::npos);
}

TEST(Verifier, RejectsFallthroughOffTheEnd) {
  AsmParseResult R = parseAsm("main:\n  li t0, 1\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.diagText().find("falls off the end"), std::string::npos);
}

TEST(Verifier, RejectsOversizedShiftImmediate) {
  AsmParseResult R = parseAsm("main:\n  slli t0, t0, 32\n  ret\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.diagText().find("shift amount"), std::string::npos);
}

TEST(Verifier, RejectsMemoryOpsOnNarrowMachines) {
  AsmParseResult R = parseAsm(".width 4\nmain:\n  lw t0, 0(t1)\n  ret\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.diagText().find("32-bit register width"), std::string::npos);
}

TEST(Verifier, RejectsImmediateOutsideWidth) {
  AsmParseResult R = parseAsm(".width 4\nmain:\n  li t0, 300\n  ret\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.diagText().find("immediate"), std::string::npos);
}

TEST(AsmPrinter, RoundTripsThroughTheParser) {
  const char *Src = R"(
main:
  li   t0, 10
  li   a0, 0
loop:
  add  a0, a0, t0
  addi t0, t0, -1
  bnez t0, loop
  out  a0
  ret
)";
  Program First = parseAsmOrDie(Src, "rt");
  std::string Printed = First.toString();
  AsmParseResult Again = parseAsm(Printed, "rt2");
  ASSERT_TRUE(Again.succeeded()) << Again.diagText() << "\n" << Printed;
  ASSERT_EQ(Again.Prog->size(), First.size());
  for (uint32_t P = 0; P < First.size(); ++P) {
    EXPECT_EQ(Again.Prog->instr(P).Op, First.instr(P).Op) << P;
    EXPECT_EQ(Again.Prog->instr(P).Imm, First.instr(P).Imm) << P;
    EXPECT_EQ(Again.Prog->instr(P).Target, First.instr(P).Target) << P;
  }
}

/// The enforcing property behind the fuzzer's round-trip oracle: for any
/// verifier-legal program, parse(print(P)) is structurally identical to P
/// — same semantic content key, and the printer is idempotent over the
/// trip. Exercised across the generator's whole idiom menu (.data images,
/// non-zero entry points, loops, every operand format).
TEST(AsmPrinter, RoundTripIsStructurallyExactOnGeneratedPrograms) {
  for (uint64_t I = 0; I < 40; ++I) {
    fuzz::GeneratedProgram G =
        fuzz::generateProgram(fuzz::programSeed(0xa5171ull, I));
    ASSERT_TRUE(G.Error.empty()) << G.Error << "\n" << G.Asm;

    std::string Printed = G.Prog.toString();
    AsmParseResult Again = parseAsm(Printed, G.Prog.Name);
    ASSERT_TRUE(Again.succeeded()) << Again.diagText() << "\n" << Printed;

    const Program &Re = *Again.Prog;
    EXPECT_EQ(AnalysisSession::contentKeyOf(Re),
              AnalysisSession::contentKeyOf(G.Prog))
        << Printed;
    EXPECT_EQ(Re.Width, G.Prog.Width);
    EXPECT_EQ(Re.Entry, G.Prog.Entry);
    EXPECT_EQ(Re.MemSize, G.Prog.MemSize);
    EXPECT_EQ(Re.DataBase, G.Prog.DataBase);
    EXPECT_EQ(Re.Data, G.Prog.Data);
    ASSERT_EQ(Re.size(), G.Prog.size());
    for (uint32_t P = 0; P < Re.size(); ++P) {
      EXPECT_EQ(Re.instr(P).Op, G.Prog.instr(P).Op) << P;
      EXPECT_EQ(Re.instr(P).Rd, G.Prog.instr(P).Rd) << P;
      EXPECT_EQ(Re.instr(P).Rs1, G.Prog.instr(P).Rs1) << P;
      EXPECT_EQ(Re.instr(P).Rs2, G.Prog.instr(P).Rs2) << P;
      EXPECT_EQ(Re.instr(P).Imm, G.Prog.instr(P).Imm) << P;
      EXPECT_EQ(Re.instr(P).Target, G.Prog.instr(P).Target) << P;
    }
    // Printing the re-parsed program reproduces the first print exactly.
    EXPECT_EQ(Re.toString(), Printed);
  }
}

/// A non-default memory size and a mid-program entry point survive the
/// round trip (both were silently dropped by earlier printers).
TEST(AsmPrinter, RoundTripsMemsizeAndEntry) {
  const char *Src = R"(
.width 32
.memsize 4096
  nop
main:
  li a0, 7
  out a0
  ret
)";
  Program First = parseAsmOrDie(Src, "entry");
  ASSERT_EQ(First.Entry, 1u);
  Program Again = parseAsmOrDie(First.toString(), "entry");
  EXPECT_EQ(Again.Entry, 1u);
  EXPECT_EQ(Again.MemSize, 4096u);
  EXPECT_EQ(Again.toString(), First.toString());
}

TEST(ProgramCfg, BlocksAndEdges) {
  const char *Src = R"(
main:
  li t0, 3
loop:
  addi t0, t0, -1
  bnez t0, loop
  ret
)";
  Program Prog = parseAsmOrDie(Src, "cfg");
  ASSERT_EQ(Prog.blocks().size(), 3u);
  // Block 1 (the loop) has itself and block 0 as predecessors.
  const BasicBlock &Loop = Prog.blocks()[1];
  EXPECT_EQ(Loop.First, 1u);
  EXPECT_EQ(Loop.Last, 2u);
  ASSERT_EQ(Loop.Succs.size(), 2u);
  // Fallthrough edge first, then the taken edge.
  EXPECT_EQ(Loop.Succs[0], 2u);
  EXPECT_EQ(Loop.Succs[1], 1u);
  for (uint32_t P = 0; P < Prog.size(); ++P)
    EXPECT_TRUE(Prog.isReachable(P));
}

} // namespace
