//===- tests/CorpusTest.cpp - Replay the committed fuzz corpus ------------===//
///
/// \file
/// Replays every program in tests/corpus/ through the full differential
/// oracle stack (fuzz/Oracles.h). The corpus is the generator's seeded
/// output frozen into the tree (regenerate with `bec fuzz --emit-corpus
/// tests/corpus`), plus any minimized reproducers banked from past fuzzing
/// runs — so a regression that breaks pruning soundness, the printer
/// round trip, the engine, hardening, or session caching on any committed
/// program fails here with the program named.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"
#include "ir/AsmParser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace bec;
using namespace bec::fuzz;

namespace {

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(BEC_CORPUS_DIR))
    if (Entry.path().extension() == ".s")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, AllOraclesAgree) {
  std::filesystem::path Path =
      std::filesystem::path(BEC_CORPUS_DIR) / GetParam();
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "cannot open " << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();

  AsmParseResult Res = parseAsm(Buf.str(), GetParam());
  ASSERT_TRUE(Res.succeeded()) << Path << "\n" << Res.diagText();

  OracleReport R = runOracles(*Res.Prog);
  for (const OracleMismatch &M : R.Mismatches)
    ADD_FAILURE() << GetParam() << ": [" << M.Oracle << "] " << M.Detail;
  EXPECT_GT(R.ExhaustiveRuns, 0u);
}

std::vector<std::string> corpusNames() {
  std::vector<std::string> Names;
  for (const std::filesystem::path &P : corpusFiles())
    Names.push_back(P.filename().string());
  return Names;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusReplay, ::testing::ValuesIn(corpusNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      // Test names must be identifiers: strip the extension, keep the
      // seed hex.
      std::string Name = Info.param;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(Corpus, IsCommittedAndNonTrivial) {
  // The seeded corpus in the tree: at least 20 programs (the committed
  // generator output) and every file named for its seed or reproducer.
  std::vector<std::filesystem::path> Files = corpusFiles();
  EXPECT_GE(Files.size(), 20u);
  for (const std::filesystem::path &P : Files) {
    std::string Stem = P.stem().string();
    EXPECT_TRUE(Stem.rfind("seed_", 0) == 0 || Stem.rfind("repro_", 0) == 0)
        << P;
  }
}

} // namespace
