//===- tests/HardenTest.cpp - Selective hardening subsystem tests ---------===//
///
/// \file
/// End-to-end and unit coverage of src/harden/: the vulnerability ranking
/// decomposition, the three protection transforms, the budgeted selector,
/// and — the subsystem's contract — that `bec harden` style hardening of
/// every bundled workload at a 10% budget yields a verifier-clean program
/// with bit-identical observable output and strictly lower residual
/// vulnerability, with every fault-injection probe into a protected
/// window detected.
///
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"
#include "harden/Harden.h"
#include "harden/VulnerabilityRank.h"
#include "ir/AsmParser.h"
#include "ir/Verifier.h"
#include "sim/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

//===----------------------------------------------------------------------===//
// VulnerabilityRank
//===----------------------------------------------------------------------===//

TEST(VulnerabilityRankTest, DecomposesVulnerabilityExactly) {
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);
    VulnerabilityRank Rank = VulnerabilityRank::run(A, Golden.Executed);
    EXPECT_EQ(Rank.total(), computeVulnerability(A, Golden.Executed))
        << W.Name;
    // Per-register and per-instruction attributions are both complete
    // decompositions of the same total.
    uint64_t RegSum = 0, InstrSum = 0;
    for (Reg R = 0; R < NumRegs; ++R)
      RegSum += Rank.regScore(R);
    for (uint32_t P = 0; P < Prog.size(); ++P)
      InstrSum += Rank.instrScore(P);
    EXPECT_EQ(RegSum, Rank.total()) << W.Name;
    EXPECT_EQ(InstrSum, Rank.total()) << W.Name;
  }
}

TEST(VulnerabilityRankTest, RankedDefsAreSortedByScore) {
  Program Prog = loadWorkload(*findWorkload("bitcount"));
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  VulnerabilityRank Rank = VulnerabilityRank::run(A, Golden.Executed);
  std::vector<uint32_t> Order = Rank.rankedDefs();
  ASSERT_FALSE(Order.empty());
  for (size_t I = 1; I < Order.size(); ++I)
    EXPECT_GE(Rank.defScore(Order[I - 1]), Rank.defScore(Order[I]));
}

//===----------------------------------------------------------------------===//
// IR transform utility
//===----------------------------------------------------------------------===//

TEST(InsertInstructionsTest, RemapsTargetsAndEntry) {
  Program Prog = parseAsmOrDie(R"(
.width 32
main:
  li t0, 3
loop:
  addi t0, t0, -1
  bne t0, zero, loop
  ret
)",
                               "insert-test");
  ASSERT_TRUE(verifyProgram(Prog).empty());
  Trace Before = simulate(Prog);

  // Insert a NOP before the loop header (index 1): the back edge must
  // follow it onto the inserted instruction.
  Instruction Nop;
  Nop.Op = Opcode::NOP;
  Prog.insertInstructions(1, {&Nop, 1});
  Prog.buildCFG();
  ASSERT_TRUE(verifyProgram(Prog).empty());
  EXPECT_EQ(Prog.instr(1).Op, Opcode::NOP);
  EXPECT_EQ(Prog.instr(3).Op, Opcode::BNE);
  // Branch to old index 1 now lands on the NOP at index 1 (runs the
  // inserted code first).
  EXPECT_EQ(Prog.instr(3).Target, 1);

  Trace After = simulate(Prog);
  EXPECT_EQ(After.End, Outcome::Finished);
  EXPECT_EQ(After.ObservableHash, Before.ObservableHash);
  // 3 loop iterations execute the NOP 3 times.
  EXPECT_EQ(After.Cycles, Before.Cycles + 3);

  // Entry shifts when the insertion happens before it.
  Program Entry = parseAsmOrDie(R"(
.width 32
main:
  li a0, 7
  ret
)",
                                "entry-test");
  Entry.insertInstructions(0, {&Nop, 1});
  Entry.buildCFG();
  Trace T = simulate(Entry);
  EXPECT_EQ(T.ReturnValue, 7u);
}

//===----------------------------------------------------------------------===//
// Window duplication
//===----------------------------------------------------------------------===//

const char *StraightLineAsm = R"(
.width 32
main:
  li t0, 5
  li t1, 7
  add t2, t0, t1
  li t3, 1
  li t4, 2
  add t5, t2, t3
  out t5
  mv a0, t5
  ret
)";

TEST(DuplicationTest, WindowedCheckDetectsEveryInWindowFlip) {
  HardenedProgram HP;
  HP.Prog = parseAsmOrDie(StraightLineAsm, "straight");
  Trace Golden = simulate(HP.Prog);

  BECAnalysis A = BECAnalysis::run(HP.Prog);
  VulnerabilityRank Rank = VulnerabilityRank::run(A, Golden.Executed);
  std::vector<uint64_t> DefScore(HP.Prog.size());
  for (uint32_t P = 0; P < HP.Prog.size(); ++P)
    DefScore[P] = Rank.defScore(P);
  std::vector<DupCandidate> Cands = findDupCandidates(HP, DefScore);
  // Find the candidate protecting the `add t2` def at index 2.
  const DupCandidate *C = nullptr;
  for (const DupCandidate &Cand : Cands)
    if (Cand.Def == 2)
      C = &Cand;
  ASSERT_NE(C, nullptr);
  applyDuplication(HP, *C);

  ASSERT_TRUE(verifyProgram(HP.Prog).empty());
  ASSERT_EQ(HP.Sites.size(), 1u);
  const ProtectedSite &S = HP.Sites[0];
  EXPECT_EQ(S.Kind, ProtectKind::Duplicate);
  EXPECT_EQ(HP.Prog.instr(S.DupIdx).Op, Opcode::ADD);
  EXPECT_EQ(HP.Prog.instr(S.DupIdx).Rd, S.Shadow);
  EXPECT_EQ(HP.Prog.instr(S.CheckIdx).Op, Opcode::BNE);

  // Fault-free behaviour is bit-identical.
  Trace Hardened = simulate(HP.Prog);
  EXPECT_EQ(Hardened.End, Outcome::Finished);
  EXPECT_EQ(Hardened.ObservableHash, Golden.ObservableHash);

  // Every bit flip of t2 (and of the shadow) anywhere inside the window
  // must end in the detector's trap.
  uint64_t DefCycle = 0;
  for (uint64_t Cyc = 0; Cyc < Hardened.Executed.size(); ++Cyc)
    if (Hardened.Executed[Cyc] == S.DefIdx)
      DefCycle = Cyc;
  uint64_t CheckCycle = DefCycle;
  for (uint64_t Cyc = DefCycle; Cyc < Hardened.Executed.size(); ++Cyc)
    if (Hardened.Executed[Cyc] == S.CheckIdx) {
      CheckCycle = Cyc;
      break;
    }
  ASSERT_GT(CheckCycle, DefCycle);
  for (uint64_t Cyc = DefCycle + 1; Cyc <= CheckCycle; ++Cyc)
    for (unsigned Bit = 0; Bit < HP.Prog.Width; Bit += 7) {
      Trace T = simulateWithInjection(HP.Prog, {Cyc, S.Orig, Bit});
      EXPECT_EQ(T.End, Outcome::Trap)
          << "cycle " << Cyc << " bit " << Bit << " escaped the check";
    }
  Trace ShadowFlip =
      simulateWithInjection(HP.Prog, {DefCycle + 1, S.Shadow, 3});
  EXPECT_EQ(ShadowFlip.End, Outcome::Trap);
}

//===----------------------------------------------------------------------===//
// Register-granular duplication
//===----------------------------------------------------------------------===//

const char *AccumulatorLoopAsm = R"(
.width 32
main:
  li s0, 0
  li t0, 10
loop:
  add s0, s0, t0
  addi t0, t0, -1
  bne t0, zero, loop
  out s0
  mv a0, s0
  ret
)";

TEST(DuplicationTest, RegisterShadowChainCarriesFaultFreeValue) {
  HardenedProgram HP;
  HP.Prog = parseAsmOrDie(AccumulatorLoopAsm, "accumulator");
  Trace Golden = simulate(HP.Prog);
  ASSERT_EQ(Golden.ReturnValue, 55u); // 10 + 9 + ... + 1.

  applyRegisterDuplication(HP, {/*R=*/8 /*s0*/, 1});
  ASSERT_TRUE(verifyProgram(HP.Prog).empty());
  ASSERT_EQ(HP.Sites.size(), 1u);
  const ProtectedSite &S = HP.Sites[0];
  EXPECT_EQ(S.Kind, ProtectKind::DuplicateReg);
  EXPECT_EQ(S.Orig, 8);

  Trace Hardened = simulate(HP.Prog);
  EXPECT_EQ(Hardened.End, Outcome::Finished);
  EXPECT_EQ(Hardened.ObservableHash, Golden.ObservableHash);
  EXPECT_EQ(Hardened.ReturnValue, 55u);

  // The chain def `add s0, s0, t0` must have a shadow recompute reading
  // the shadow, not s0 (otherwise a corrupted s0 would poison the shadow
  // and the check would pass).
  bool FoundChainDup = false;
  for (uint32_t P = 0; P < HP.Prog.size(); ++P) {
    const Instruction &I = HP.Prog.instr(P);
    if (I.Op == Opcode::ADD && I.Rd == S.Shadow) {
      FoundChainDup = true;
      EXPECT_EQ(I.Rs1, S.Shadow);
      EXPECT_NE(I.Rs2, S.Orig);
    }
  }
  EXPECT_TRUE(FoundChainDup);

  // Flips of the accumulator at every point of the run are detected or
  // provably masked (identical architectural trace) — except the one
  // residual cycle per checked use where the flip lands between the check
  // and the consuming read. The residual-vulnerability metric counts
  // exactly those cycles as uncovered.
  unsigned Detected = 0, Silent = 0;
  for (uint64_t Cyc = 1; Cyc < Hardened.Cycles; ++Cyc) {
    Trace T = simulateWithInjection(HP.Prog, {Cyc, S.Orig, 13});
    if (T.End == Outcome::Trap)
      ++Detected;
    else if (T.TraceHash != Hardened.TraceHash)
      ++Silent;
  }
  EXPECT_GT(Detected, 0u);
  // `out s0` escapes end in the later check's trap; only the final
  // `mv a0, s0` consumption gap can corrupt silently.
  EXPECT_LE(Silent, 1u);
}

//===----------------------------------------------------------------------===//
// Live-range narrowing
//===----------------------------------------------------------------------===//

TEST(NarrowingTest, SinkingShortensTheSegmentAndPreservesSemantics) {
  // The def of a0 sinks past four unrelated instructions toward its first
  // reader. Its sources t0/t1 are read again *after* that reader, so
  // their live ranges do not grow and the move is a strict win.
  const char *Asm = R"(
.width 32
main:
  li t0, 41
  li t1, 1
  add a0, t0, t1
  li t2, 2
  li t3, 3
  out t2
  out t3
  out a0
  out t0
  out t1
  ret
)";
  HardenedProgram HP;
  HP.Prog = parseAsmOrDie(Asm, "sinkable");
  Trace Golden = simulate(HP.Prog);
  BECAnalysis A = BECAnalysis::run(HP.Prog);
  VulnerabilityRank Rank = VulnerabilityRank::run(A, Golden.Executed);
  std::vector<uint64_t> DefScore(HP.Prog.size());
  for (uint32_t P = 0; P < HP.Prog.size(); ++P)
    DefScore[P] = Rank.defScore(P);

  std::vector<SinkCandidate> Cands = findSinkCandidates(HP, DefScore);
  // `li t0, 41` (index 0) is a block leader and must not be offered; the
  // def of a0 (index 2) can sink down to its reader at index 7.
  const SinkCandidate *C = nullptr;
  for (const SinkCandidate &Cand : Cands) {
    EXPECT_NE(Cand.From, 0u);
    if (Cand.From == 2)
      C = &Cand;
  }
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->To, 7u); // First reader: `out a0`.

  uint64_t Before = computeVulnerability(A, Golden.Executed);
  applySinking(HP, *C);
  ASSERT_TRUE(verifyProgram(HP.Prog).empty());
  EXPECT_EQ(HP.Prog.instr(6).Op, Opcode::ADD); // Landed at To - 1.
  Trace After = simulate(HP.Prog);
  EXPECT_EQ(After.ObservableHash, Golden.ObservableHash);
  EXPECT_EQ(After.Cycles, Golden.Cycles);
  BECAnalysis A2 = BECAnalysis::run(HP.Prog);
  uint64_t AfterVuln = computeVulnerability(A2, After.Executed);
  EXPECT_LT(AfterVuln, Before);
}

//===----------------------------------------------------------------------===//
// Residual vulnerability
//===----------------------------------------------------------------------===//

TEST(ResidualVulnerabilityTest, EqualsPlainMetricWithoutSites) {
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    HardenedProgram HP;
    HP.Prog = Prog;
    BECAnalysis A = BECAnalysis::run(Prog);
    Trace Golden = simulate(Prog);
    EXPECT_EQ(computeResidualVulnerability(A, Golden.Executed, HP),
              computeVulnerability(A, Golden.Executed))
        << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// The subsystem contract: all eight workloads at a 10% budget
//===----------------------------------------------------------------------===//

TEST(HardenTest, AllWorkloadsAtTenPercentBudget) {
  for (const Workload &W : allWorkloads()) {
    Program Prog = loadWorkload(W);
    Trace Golden = simulate(Prog);

    HardenOptions Opts;
    Opts.BudgetPercent = 10.0;
    HardenResult R = hardenProgram(Prog, Opts);

    // The hardened program passes the IR verifier.
    EXPECT_TRUE(verifyProgram(R.HP.Prog).empty()) << W.Name;

    // Bit-identical workload output under the interpreter.
    Trace Hardened = simulate(R.HP.Prog);
    EXPECT_EQ(Hardened.End, Outcome::Finished) << W.Name;
    EXPECT_EQ(Hardened.ObservableHash, Golden.ObservableHash) << W.Name;
    EXPECT_EQ(Hardened.outputValues(), Golden.outputValues()) << W.Name;
    EXPECT_EQ(Hardened.ReturnValue, Golden.ReturnValue) << W.Name;

    // Strictly lower live-fault-site vulnerability, within budget.
    EXPECT_LT(R.ResidualVuln, R.BaselineVuln) << W.Name;
    EXPECT_LE(R.costPercent(), 10.0) << W.Name;
    EXPECT_GT(R.NumDuplicated + R.NumNarrowed, 0u) << W.Name;

    // Closed loop: re-analysis agrees and every fault-injection probe
    // into a protected window is caught.
    BECAnalysis A = BECAnalysis::run(R.HP.Prog);
    EXPECT_EQ(computeResidualVulnerability(A, Hardened.Executed, R.HP),
              R.ResidualVuln)
        << W.Name;
    HardenValidation V = validateHardening(R, Prog);
    EXPECT_TRUE(V.ok()) << W.Name << ": " << V.DetectionsCaught << "/"
                        << V.DetectionProbes << " probes caught";
    EXPECT_GT(V.DetectionProbes, 0u) << W.Name;
  }
}

TEST(HardenTest, ZeroBudgetAddsNoDynamicInstructions) {
  for (const char *Name : {"bitcount", "CRC32"}) {
    Program Prog = loadWorkload(*findWorkload(Name));
    HardenOptions Opts;
    Opts.BudgetPercent = 0.0;
    HardenResult R = hardenProgram(Prog, Opts);
    EXPECT_EQ(R.HardenedCycles, R.BaselineCycles) << Name;
    EXPECT_EQ(R.NumDuplicated, 0u) << Name;
    HardenValidation V = validateHardening(R, Prog);
    EXPECT_TRUE(V.ok()) << Name;
  }
}

TEST(HardenTest, LargerBudgetsNeverHurt) {
  Program Prog = loadWorkload(*findWorkload("CRC32"));
  uint64_t Prev = UINT64_MAX;
  for (double Budget : {2.0, 5.0, 10.0, 20.0}) {
    HardenOptions Opts;
    Opts.BudgetPercent = Budget;
    HardenResult R = hardenProgram(Prog, Opts);
    EXPECT_LE(R.costPercent(), Budget);
    if (Prev != UINT64_MAX)
      EXPECT_LE(R.ResidualVuln, Prev) << "budget " << Budget;
    Prev = R.ResidualVuln;
  }
}

TEST(HardenTest, NarrowWidthProgramsUseAHaltDetector) {
  // The paper's 4-bit motivating example is register-only: the detector
  // cannot use the misaligned-load trap and falls back to a halt.
  const char *MotivatingAsm = R"(
.width 4
main:
  li   a0, 0
  li   a1, 7
loop:
  andi a2, a1, 1
  andi a3, a1, 3
  addi a1, a1, -1
  seqz a2, a2
  snez a3, a3
  and  a2, a2, a3
  add  a0, a0, a2
  bnez a1, loop
  ret
)";
  Program Prog = parseAsmOrDie(MotivatingAsm, "motivating");
  Trace Golden = simulate(Prog);
  HardenOptions Opts;
  Opts.BudgetPercent = 20.0;
  HardenResult R = hardenProgram(Prog, Opts);
  EXPECT_LT(R.ResidualVuln, R.BaselineVuln);
  Trace Hardened = simulate(R.HP.Prog);
  EXPECT_EQ(Hardened.ObservableHash, Golden.ObservableHash);
  EXPECT_EQ(Hardened.ReturnValue, 2u);
  ASSERT_GE(R.HP.DetectorIdx, 0);
  for (uint32_t P = static_cast<uint32_t>(R.HP.DetectorIdx);
       P < R.HP.Prog.size(); ++P)
    EXPECT_NE(R.HP.Prog.instr(P).Op, Opcode::LW);
  HardenValidation V = validateHardening(R, Prog);
  EXPECT_TRUE(V.ok());
}

} // namespace
