//===- tests/NetTest.cpp - event-loop serving core and gateway ------------===//
//
// The net/ contract under test:
//  * framing: frames split across arbitrarily small reads reassemble;
//    pipelined requests answer in order; oversized frames are rejected
//    with a typed parse error and the connection closes after the flush;
//  * flow: a slow reader only stalls its own connection (the loop
//    buffers and finishes the writes); a half-closed peer still receives
//    every response for the requests it sent, then EOF;
//  * backpressure: admission control answers error 105 `overloaded` when
//    the worker queue is full, and error 106 `draining` for requests
//    caught by a graceful drain — on the legacy thread-per-connection
//    server too;
//  * equivalence: responses through the event-loop server are
//    byte-identical to the loopback Service;
//  * gateway: the consistent-hash ring is deterministic and mostly
//    stable under backend addition; forwarding fails over with intern
//    replay byte-identically; drain/undrain steer routing; `stats`
//    aggregates every backend.
//
//===----------------------------------------------------------------------===//

#include "net/EventLoop.h"
#include "net/Gateway.h"
#include "obs/Log.h"
#include "obs/SpanRing.h"
#include "serve/Client.h"
#include "serve/Service.h"
#include "serve/Socket.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <sys/socket.h>
#include <thread>

using namespace bec;
using namespace bec::net;
using serve::ErrorCode;

namespace {

/// A live event-loop server on an ephemeral port, torn down on scope
/// exit. The handler defaults to a loopback Service.
struct LoopFixture {
  serve::Service Svc;
  EventServer Srv;
  std::thread Runner;

  explicit LoopFixture(EventServer::Options O = {})
      : Srv(
            [this](std::string_view Line, const FrameSink &Sink) {
              return Svc.handleFrameStreaming(Line, Sink);
            },
            serve::makeHandshakeFrame(), [&O] {
              O.Port = 0;
              return O;
            }()) {
    Srv.setDrainCheck([this] { return Svc.isShuttingDown(); });
    startAndRun();
  }

  /// A custom handler (no Service behind it).
  LoopFixture(FrameHandler Handler, EventServer::Options O)
      : Srv(std::move(Handler), serve::makeHandshakeFrame(), [&O] {
          O.Port = 0;
          return O;
        }()) {
    startAndRun();
  }

  void startAndRun() {
    std::string Err;
    if (!Srv.start(Err))
      ADD_FAILURE() << "event server start failed: " << Err;
    Runner = std::thread([this] { Srv.run(); });
  }

  ~LoopFixture() {
    Srv.requestStop();
    if (Runner.joinable())
      Runner.join();
  }

  /// A raw connected socket past the handshake frame.
  serve::Socket connectRaw() {
    std::string Err;
    std::optional<serve::Socket> S =
        serve::connectTo("127.0.0.1", Srv.port(), Err);
    if (!S)
      throw std::runtime_error("connect failed: " + Err);
    std::string Line;
    if (S->recvLine(Line, serve::MaxFrameBytes, Err) !=
        serve::Socket::RecvStatus::Line)
      throw std::runtime_error("no handshake: " + Err);
    return std::move(*S);
  }
};

/// Reads one response frame and parses it.
serve::Response recvResponse(serve::Socket &S) {
  std::string Line, Err;
  EXPECT_EQ(S.recvLine(Line, serve::MaxFrameBytes, Err),
            serve::Socket::RecvStatus::Line)
      << Err;
  std::optional<serve::Response> R = serve::parseResponseFrame(Line, Err);
  EXPECT_TRUE(R.has_value()) << Err << ": " << Line;
  return R ? *R : serve::Response{};
}

/// A gate the blocking-handler tests use to hold a request in flight.
struct Gate {
  std::mutex Mu;
  std::condition_variable Cv;
  bool Open = false;
  std::atomic<unsigned> Entered{0};

  void release() {
    std::lock_guard<std::mutex> Lock(Mu);
    Open = true;
    Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Open; });
  }
  bool awaitEntered(unsigned N) {
    for (int I = 0; I < 200; ++I) {
      if (Entered.load() >= N)
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(EventLoop, ReassemblesFramesSplitAcrossReads) {
  LoopFixture F;
  serve::Socket S = F.connectRaw();
  std::string Frame = serve::makeRequestFrame(3, "version", "");
  // Dribble the frame byte by byte; every send is a separate read on the
  // loop side (loopback delivers promptly, and the loop must buffer
  // partial lines indefinitely).
  std::string Err;
  for (char C : Frame) {
    ASSERT_TRUE(S.sendAll(std::string_view(&C, 1), Err)) << Err;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  serve::Response R = recvResponse(S);
  EXPECT_FALSE(R.IsError);
  EXPECT_EQ(R.Id, 3u);
}

TEST(EventLoop, PipelinedRequestsAnswerInOrder) {
  LoopFixture F;
  serve::Socket S = F.connectRaw();
  std::string Batch;
  for (uint64_t Id = 1; Id <= 20; ++Id)
    Batch += serve::makeRequestFrame(Id, "version", "");
  std::string Err;
  ASSERT_TRUE(S.sendAll(Batch, Err)) << Err;
  for (uint64_t Id = 1; Id <= 20; ++Id) {
    serve::Response R = recvResponse(S);
    EXPECT_FALSE(R.IsError);
    EXPECT_EQ(R.Id, Id) << "responses out of order";
  }
}

TEST(EventLoop, RejectsOversizedFrameAndCloses) {
  LoopFixture F;
  serve::Socket S = F.connectRaw();
  // More bytes than MaxFrameBytes with no newline: the server must
  // answer a typed parse error rather than buffer without bound.
  std::string Chunk(1 << 20, 'x');
  std::string Err;
  for (size_t Sent = 0; Sent <= serve::MaxFrameBytes; Sent += Chunk.size())
    ASSERT_TRUE(S.sendAll(Chunk, Err)) << Err;
  serve::Response R = recvResponse(S);
  EXPECT_TRUE(R.IsError);
  EXPECT_EQ(R.Code, ErrorCode::ParseError);
  // The server closes the connection; with our unread garbage still in
  // its buffers the close may surface as RST rather than orderly EOF.
  std::string Line;
  serve::Socket::RecvStatus St = S.recvLine(Line, serve::MaxFrameBytes, Err);
  EXPECT_TRUE(St == serve::Socket::RecvStatus::Eof ||
              St == serve::Socket::RecvStatus::Error);
}

TEST(EventLoop, SlowReaderOnlyStallsItself) {
  // A handler with a fat response: 16 pipelined requests produce ~4 MB,
  // far past the loopback socket buffers, forcing the loop through its
  // EAGAIN partial-write path while the client deliberately reads
  // nothing.
  const std::string Payload(256 * 1024, 'y');
  EventServer::Options O;
  O.Workers = 2;
  LoopFixture F(
      [&](std::string_view Line, const FrameSink &) {
        serve::ParsedFrame P = serve::parseRequestFrame(Line);
        return serve::makeResultFrame(P.Req ? P.Req->Id : 0,
                                      "\"" + Payload + "\"");
      },
      O);
  serve::Socket Slow = F.connectRaw();
  std::string Batch;
  for (uint64_t Id = 1; Id <= 16; ++Id)
    Batch += serve::makeRequestFrame(Id, "anything", "");
  std::string Err;
  ASSERT_TRUE(Slow.sendAll(Batch, Err)) << Err;
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // A second connection is not head-of-line blocked by the slow reader.
  serve::Socket Other = F.connectRaw();
  ASSERT_TRUE(Other.sendAll(serve::makeRequestFrame(99, "x", ""), Err));
  EXPECT_EQ(recvResponse(Other).Id, 99u);

  for (uint64_t Id = 1; Id <= 16; ++Id) {
    std::string Line;
    ASSERT_EQ(Slow.recvLine(Line, serve::MaxFrameBytes, Err),
              serve::Socket::RecvStatus::Line)
        << Err;
    std::optional<serve::Response> R = serve::parseResponseFrame(Line, Err);
    ASSERT_TRUE(R.has_value()) << Err;
    EXPECT_EQ(R->Id, Id);
    EXPECT_EQ(*R->Result.asString(), Payload) << "garbled frame";
  }
}

TEST(EventLoop, HalfClosedPeerStillGetsItsResponses) {
  LoopFixture F;
  serve::Socket S = F.connectRaw();
  std::string Batch;
  for (uint64_t Id = 1; Id <= 3; ++Id)
    Batch += serve::makeRequestFrame(Id, "version", "");
  std::string Err;
  ASSERT_TRUE(S.sendAll(Batch, Err)) << Err;
  // Half-close: we are done writing, but the responses must still come.
  ASSERT_EQ(::shutdown(S.fd(), SHUT_WR), 0);
  for (uint64_t Id = 1; Id <= 3; ++Id)
    EXPECT_EQ(recvResponse(S).Id, Id);
  std::string Line;
  EXPECT_EQ(S.recvLine(Line, serve::MaxFrameBytes, Err),
            serve::Socket::RecvStatus::Eof);
}

//===----------------------------------------------------------------------===//
// Typed backpressure
//===----------------------------------------------------------------------===//

TEST(EventLoop, OverloadAnswersError105) {
  Gate G;
  EventServer::Options O;
  O.Workers = 1;
  O.QueueDepth = 1; // Admission cap: 2 in flight across the server.
  LoopFixture F(
      [&](std::string_view Line, const FrameSink &) {
        ++G.Entered;
        G.wait();
        serve::ParsedFrame P = serve::parseRequestFrame(Line);
        return serve::makeResultFrame(P.Req ? P.Req->Id : 0, "\"done\"");
      },
      O);
  std::string Err;
  serve::Socket C1 = F.connectRaw();
  ASSERT_TRUE(C1.sendAll(serve::makeRequestFrame(1, "block", ""), Err));
  ASSERT_TRUE(G.awaitEntered(1)) << "first request never dispatched";
  serve::Socket C2 = F.connectRaw();
  ASSERT_TRUE(C2.sendAll(serve::makeRequestFrame(2, "block", ""), Err));
  // C2's request occupies the one queue slot; give the loop a moment to
  // dispatch it before the request that must be refused.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  serve::Socket C3 = F.connectRaw();
  ASSERT_TRUE(C3.sendAll(serve::makeRequestFrame(3, "block", ""), Err));
  serve::Response Rejected = recvResponse(C3);
  EXPECT_TRUE(Rejected.IsError);
  EXPECT_EQ(Rejected.Code, ErrorCode::Overloaded);
  EXPECT_EQ(Rejected.ErrorName, "overloaded");
  EXPECT_EQ(Rejected.Id, 3u);

  G.release();
  EXPECT_FALSE(recvResponse(C1).IsError);
  EXPECT_FALSE(recvResponse(C2).IsError);
}

TEST(EventLoop, DrainRejectsQueuedRequestsWithError106) {
  Gate G;
  EventServer::Options O;
  O.Workers = 1;
  LoopFixture F(
      [&](std::string_view Line, const FrameSink &) {
        ++G.Entered;
        G.wait();
        serve::ParsedFrame P = serve::parseRequestFrame(Line);
        return serve::makeResultFrame(P.Req ? P.Req->Id : 0, "\"done\"");
      },
      O);
  serve::Socket S = F.connectRaw();
  std::string Batch;
  for (uint64_t Id = 1; Id <= 3; ++Id)
    Batch += serve::makeRequestFrame(Id, "block", "");
  std::string Err;
  ASSERT_TRUE(S.sendAll(Batch, Err)) << Err;
  // Request 1 is in the handler; 2 and 3 sit in the connection backlog
  // (per-connection serial execution).
  ASSERT_TRUE(G.awaitEntered(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  F.Srv.requestStop(); // Begin the drain; the backlog must be refused.
  G.release();

  std::map<uint64_t, serve::Response> ById;
  for (int I = 0; I < 3; ++I) {
    serve::Response R = recvResponse(S);
    ById[R.Id] = R;
  }
  ASSERT_EQ(ById.size(), 3u);
  EXPECT_FALSE(ById[1].IsError) << "in-flight request must finish";
  EXPECT_TRUE(ById[2].IsError);
  EXPECT_EQ(ById[2].Code, ErrorCode::Draining);
  EXPECT_EQ(ById[2].ErrorName, "draining");
  EXPECT_TRUE(ById[3].IsError);
  EXPECT_EQ(ById[3].Code, ErrorCode::Draining);
  std::string Line;
  EXPECT_EQ(S.recvLine(Line, serve::MaxFrameBytes, Err),
            serve::Socket::RecvStatus::Eof);
}

TEST(EventLoop, ShutdownMethodDrainsTheServer) {
  LoopFixture F;
  serve::Socket S = F.connectRaw();
  std::string Err;
  ASSERT_TRUE(S.sendAll(serve::makeRequestFrame(1, "shutdown", ""), Err));
  serve::Response R = recvResponse(S);
  EXPECT_FALSE(R.IsError);
  std::string Line;
  EXPECT_EQ(S.recvLine(Line, serve::MaxFrameBytes, Err),
            serve::Socket::RecvStatus::Eof);
  F.Runner.join(); // run() must return on its own.
}

TEST(LegacyServer, SaturatedPoolAnswersError105) {
  serve::Service Svc;
  serve::Server::Options O;
  O.Port = 0;
  O.Jobs = 2; // connectionJobs floor is 2: two handlers.
  O.MaxQueued = 0;
  serve::Server Srv(Svc, O);
  std::string Err;
  ASSERT_TRUE(Srv.start(Err)) << Err;
  std::thread Runner([&] { Srv.run(); });

  auto RawConnect = [&] {
    std::optional<serve::Socket> S =
        serve::connectTo("127.0.0.1", Srv.port(), Err);
    EXPECT_TRUE(S.has_value()) << Err;
    std::string Line;
    EXPECT_EQ(S->recvLine(Line, serve::MaxFrameBytes, Err),
              serve::Socket::RecvStatus::Line);
    return std::move(*S);
  };
  {
    // Two idle connections occupy both handlers...
    serve::Socket C1 = RawConnect();
    serve::Socket C2 = RawConnect();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    // ...so the third is answered `overloaded` and closed instead of
    // waiting forever.
    serve::Socket C3 = RawConnect();
    ASSERT_TRUE(C3.sendAll(serve::makeRequestFrame(7, "version", ""), Err));
    serve::Response R = recvResponse(C3);
    EXPECT_TRUE(R.IsError);
    EXPECT_EQ(R.Code, ErrorCode::Overloaded);
    EXPECT_EQ(R.Id, 7u);
    std::string Line;
    EXPECT_EQ(C3.recvLine(Line, serve::MaxFrameBytes, Err),
              serve::Socket::RecvStatus::Eof);
  }
  Srv.requestStop();
  Runner.join();
}

//===----------------------------------------------------------------------===//
// Equivalence with the loopback Service
//===----------------------------------------------------------------------===//

TEST(EventLoop, ResponsesAreByteIdenticalToLoopback) {
  LoopFixture F;
  serve::Service Loopback;
  serve::Socket S = F.connectRaw();
  const char *Frames[] = {
      "{\"id\":1,\"method\":\"version\"}",
      "{\"id\":2,\"method\":\"analyze\",\"params\":{\"targets\":[\"bitcount\"]}}",
      "{\"id\":3,\"method\":\"counts\",\"params\":{\"target\":\"crc32\"}}",
      "{\"id\":4,\"method\":\"nope\"}",
      "{\"id\":5,\"method\":\"counts\",\"params\":{\"target\":\"missing\"}}",
  };
  std::string Err;
  for (const char *Frame : Frames) {
    ASSERT_TRUE(S.sendAll(std::string(Frame) + "\n", Err)) << Err;
    std::string Line;
    ASSERT_EQ(S.recvLine(Line, serve::MaxFrameBytes, Err),
              serve::Socket::RecvStatus::Line)
        << Err;
    EXPECT_EQ(Line + "\n", Loopback.handleFrame(Frame)) << Frame;
  }
}

//===----------------------------------------------------------------------===//
// Gateway
//===----------------------------------------------------------------------===//

TEST(Gateway, RingIsDeterministicAcrossInstances) {
  Gateway::Options O;
  // Nothing listens on these ports; the ring does not care.
  O.Backends = {"127.0.0.1:9", "127.0.0.1:10", "127.0.0.1:11"};
  O.HealthIntervalMs = 60000;
  Gateway A(O), B(O);
  std::string Err;
  ASSERT_TRUE(A.start(Err)) << Err;
  ASSERT_TRUE(B.start(Err)) << Err;
  for (int I = 0; I < 100; ++I) {
    std::string Key = "program-" + std::to_string(I);
    EXPECT_EQ(A.backendIndexFor(Key), B.backendIndexFor(Key));
  }
}

TEST(Gateway, AddingABackendRemapsOnlyAFractionOfKeys) {
  Gateway::Options Two;
  Two.Backends = {"127.0.0.1:9", "127.0.0.1:10"};
  Two.HealthIntervalMs = 60000;
  Gateway::Options Three = Two;
  Three.Backends.push_back("127.0.0.1:11");
  Gateway A(Two), B(Three);
  std::string Err;
  ASSERT_TRUE(A.start(Err)) << Err;
  ASSERT_TRUE(B.start(Err)) << Err;
  const int Keys = 400;
  int Moved = 0;
  std::set<size_t> Used;
  for (int I = 0; I < Keys; ++I) {
    std::string Key = "program-" + std::to_string(I);
    size_t From = A.backendIndexFor(Key);
    size_t To = B.backendIndexFor(Key);
    Used.insert(To);
    // The shared backends keep their indices (same Options order), so a
    // key moved iff its assignment changed.
    if (From != To) {
      EXPECT_EQ(To, 2u) << "keys may only move to the new backend";
      ++Moved;
    }
  }
  EXPECT_EQ(Used.size(), 3u) << "new backend got no keys";
  // Ideal is 1/3; consistent hashing with 64 vnodes lands near it. A
  // naive mod-N rehash would move ~2/3.
  EXPECT_GT(Moved, Keys / 10);
  EXPECT_LT(Moved, Keys / 2);
}

TEST(Gateway, RejectsMalformedBackends) {
  std::string Err;
  {
    Gateway GW(Gateway::Options{});
    EXPECT_FALSE(GW.start(Err));
  }
  {
    Gateway::Options O;
    O.Backends = {"no-port-here"};
    Gateway GW(O);
    EXPECT_FALSE(GW.start(Err));
    EXPECT_NE(Err.find("no-port-here"), std::string::npos);
  }
}

/// Two live becd backends on the event loop plus a gateway driven
/// in-process through its FrameHandler (what the wire would call).
struct GatewayFixture {
  LoopFixture B1, B2;
  Gateway GW;

  GatewayFixture()
      : GW([this] {
          Gateway::Options O;
          O.Backends = {"127.0.0.1:" + std::to_string(B1.Srv.port()),
                        "127.0.0.1:" + std::to_string(B2.Srv.port())};
          // Long interval: tests control health by killing backends and
          // observing failover, not the prober.
          O.HealthIntervalMs = 60000;
          return O;
        }()) {
    std::string Err;
    if (!GW.start(Err))
      ADD_FAILURE() << "gateway start failed: " << Err;
  }

  /// One request/response through the gateway (progress frames dropped).
  std::string call(const std::string &Frame) {
    return GW.handleFrame(
        std::string_view(Frame).substr(0, Frame.size() - 1),
        [](const std::string &) {});
  }
};

const char *InternAsm = ".width 8\n"
                        "main:\n"
                        "  li t0, 3\n"
                        "  li t1, 106\n"
                        "  add t2, t0, t1\n"
                        "  halt\n";

std::string internParams(std::string_view Name) {
  JsonWriter W;
  W.beginObject();
  W.key("name").value(Name);
  W.key("asm").value(InternAsm);
  W.endObject();
  return W.take();
}

TEST(Gateway, FailoverReplaysInternsByteIdentically) {
  GatewayFixture F;
  std::string R = F.call(serve::makeRequestFrame(1, "intern",
                                                 internParams("prog")));
  ASSERT_NE(R.find("\"result\""), std::string::npos) << R;

  std::string CountsFrame =
      serve::makeRequestFrame(2, "counts", "{\"target\":\"prog\"}");
  std::string Before = F.call(CountsFrame);
  ASSERT_NE(Before.find("\"result\""), std::string::npos) << Before;

  // Kill the backend that owns "prog" (drain its loop: new connects are
  // refused, pooled gateway connections die mid-call).
  LoopFixture &Owner = F.GW.backendIndexFor("prog") == 0 ? F.B1 : F.B2;
  Owner.Srv.requestStop();
  Owner.Runner.join();

  // The retry lands on the surviving backend, which never saw the
  // intern: the journal replay must make the response byte-identical.
  std::string After = F.call(CountsFrame);
  EXPECT_EQ(Before, After);

  std::string Backends =
      F.call(serve::makeRequestFrame(3, "gateway/backends", ""));
  EXPECT_NE(Backends.find("\"failovers\":1"), std::string::npos) << Backends;
  EXPECT_NE(Backends.find("\"healthy\":false"), std::string::npos) << Backends;
}

TEST(Gateway, DrainSteersRoutingAndUndrainRestoresIt) {
  GatewayFixture F;
  ASSERT_NE(F.call(serve::makeRequestFrame(1, "intern",
                                           internParams("prog")))
                .find("\"result\""),
            std::string::npos);
  std::string CountsFrame =
      serve::makeRequestFrame(2, "counts", "{\"target\":\"prog\"}");
  std::string Before = F.call(CountsFrame);

  size_t OwnerIdx = F.GW.backendIndexFor("prog");
  std::string OwnerAddr =
      "127.0.0.1:" + std::to_string((OwnerIdx == 0 ? F.B1 : F.B2).Srv.port());
  std::string Drained = F.call(serve::makeRequestFrame(
      3, "gateway/drain", "{\"backend\":\"" + OwnerAddr + "\"}"));
  EXPECT_NE(Drained.find("\"draining\":true"), std::string::npos) << Drained;

  // Still answered — by the other backend — and byte-identical.
  EXPECT_EQ(F.call(CountsFrame), Before);
  std::string Backends =
      F.call(serve::makeRequestFrame(4, "gateway/backends", ""));
  EXPECT_NE(Backends.find("\"draining\":true"), std::string::npos);

  std::string Undrained = F.call(serve::makeRequestFrame(
      5, "gateway/undrain", "{\"backend\":\"" + OwnerAddr + "\"}"));
  EXPECT_NE(Undrained.find("\"draining\":false"), std::string::npos);
  EXPECT_EQ(F.call(CountsFrame), Before);

  std::string Unknown = F.call(serve::makeRequestFrame(
      6, "gateway/drain", "{\"backend\":\"127.0.0.1:1\"}"));
  EXPECT_NE(Unknown.find("\"error\""), std::string::npos);
}

TEST(Gateway, StatsAggregatesEveryBackend) {
  GatewayFixture F;
  // Touch both backends: two interns whose names land on... whichever;
  // either way `stats` must fan out and merge.
  F.call(serve::makeRequestFrame(1, "version", ""));
  std::string Stats = F.call(serve::makeRequestFrame(2, "stats", ""));
  std::string Err;
  std::optional<serve::Response> R = serve::parseResponseFrame(
      std::string_view(Stats).substr(0, Stats.size() - 1), Err);
  ASSERT_TRUE(R.has_value()) << Err;
  ASSERT_FALSE(R->IsError) << Stats;
  const JsonValue *G = R->Result.member("gateway");
  ASSERT_NE(G, nullptr) << Stats;
  const JsonValue *Backends = G->member("backends");
  ASSERT_NE(Backends, nullptr);
  ASSERT_NE(Backends->asArray(), nullptr);
  EXPECT_EQ(Backends->asArray()->size(), 2u);
  for (const JsonValue &B : *Backends->asArray())
    EXPECT_TRUE(B.member("healthy")->asBool().value_or(false));
  // The merged counter shape matches a single becd's stats reply.
  EXPECT_NE(R->Result.member("requests"), nullptr);
  EXPECT_NE(R->Result.member("session"), nullptr);
  EXPECT_NE(R->Result.member("latency"), nullptr);
}

TEST(Gateway, TracePropagatesToBackendsAndTraceDumpMergesTheTree) {
  obs::spanRingClear();
  GatewayFixture F;
  std::string TraceId = obs::newTraceId128();
  std::string RootSpan = obs::newSpanId64();
  std::string R = F.call(serve::makeRequestFrame(
      1, "counts", "{\"target\":\"bitcount\"}", {TraceId, RootSpan}));
  ASSERT_NE(R.find("\"result\""), std::string::npos) << R;

  std::string Dump = F.call(serve::makeRequestFrame(
      2, "trace/dump", "{\"trace_id\":\"" + TraceId + "\"}"));
  std::string Err;
  std::optional<serve::Response> Resp = serve::parseResponseFrame(
      std::string_view(Dump).substr(0, Dump.size() - 1), Err);
  ASSERT_TRUE(Resp.has_value()) << Err;
  ASSERT_FALSE(Resp->IsError) << Dump;
  const std::vector<JsonValue> *Spans =
      Resp->Result.member("spans")->asArray();
  ASSERT_NE(Spans, nullptr);

  // Everything in this process shares one ring and the gateway merge
  // re-reads it over the wire, so spans can appear under more than one
  // process label; match hops by span identity, not by count.
  std::map<std::string, const JsonValue *> ByName;
  for (const JsonValue &Sp : *Spans) {
    EXPECT_EQ(*Sp.memberString("trace_id"), TraceId);
    ByName[*Sp.memberString("name")] = &Sp;
  }
  ASSERT_TRUE(ByName.count("gateway.counts")) << Dump;
  ASSERT_TRUE(ByName.count("gateway.attempt")) << Dump;
  ASSERT_TRUE(ByName.count("serve.counts")) << Dump;
  const JsonValue *Hop = ByName["gateway.counts"];
  const JsonValue *Attempt = ByName["gateway.attempt"];
  const JsonValue *Backend = ByName["serve.counts"];
  // The tree: client root -> gateway hop -> attempt -> backend span.
  EXPECT_EQ(*Hop->memberString("parent_span"), RootSpan);
  EXPECT_EQ(*Attempt->memberString("parent_span"),
            *Hop->memberString("span_id"));
  EXPECT_EQ(*Backend->memberString("parent_span"),
            *Attempt->memberString("span_id"));
  // The attempt names its backend and outcome.
  const JsonValue *Args = Attempt->member("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_FALSE(Args->memberString("backend")->empty());
  EXPECT_EQ(*Args->memberString("outcome"), "ok");

  // An untraced request through the same gateway records nothing new.
  obs::spanRingClear();
  F.call(serve::makeRequestFrame(3, "counts", "{\"target\":\"bitcount\"}"));
  EXPECT_TRUE(obs::spanRingSnapshot().empty());
}

TEST(Gateway, MetricsMethodServesItsOwnExposition) {
  GatewayFixture F;
  // One forwarded request so the gateway counters are live.
  F.call(serve::makeRequestFrame(1, "version", ""));
  std::string Met = F.call(serve::makeRequestFrame(2, "metrics", ""));
  std::string Err;
  std::optional<serve::Response> R = serve::parseResponseFrame(
      std::string_view(Met).substr(0, Met.size() - 1), Err);
  ASSERT_TRUE(R.has_value()) << Err;
  ASSERT_FALSE(R->IsError) << Met;
  EXPECT_EQ(*R->Result.memberString("content_type"),
            "text/plain; version=0.0.4");
  const std::string *Text = R->Result.memberString("text");
  ASSERT_NE(Text, nullptr);
  // The gateway answers from its own process registry (it does not
  // forward): its request/forward counters and the event loop's
  // families are both present.
  EXPECT_NE(Text->find("# TYPE bec_gateway_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(Text->find("bec_gateway_forwarded_total"), std::string::npos);
  EXPECT_NE(Text->find("bec_net_loop_requests_total"), std::string::npos);
  // Same exposition grammar as becd: every line is a TYPE comment or
  // "name[{labels}] value" under the bec_ prefix.
  std::istringstream In(*Text);
  std::string Line;
  while (std::getline(In, Line)) {
    ASSERT_FALSE(Line.empty());
    if (Line.rfind("# TYPE ", 0) == 0)
      continue;
    size_t Sp = Line.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << Line;
    EXPECT_EQ(Line.rfind("bec_", 0), 0u) << Line;
  }
}

TEST(Gateway, LogLevelMethodIsHandledLocally) {
  GatewayFixture F;
  obs::setLogLevel(obs::LogLevel::Off);
  std::string Set = F.call(
      serve::makeRequestFrame(1, "log/level", "{\"level\":\"error\"}"));
  EXPECT_NE(Set.find("\"level\":\"error\""), std::string::npos) << Set;
  EXPECT_EQ(obs::logLevel(), obs::LogLevel::Error);
  std::string Bad = F.call(
      serve::makeRequestFrame(2, "log/level", "{\"level\":\"loud\"}"));
  EXPECT_NE(Bad.find("invalid_params"), std::string::npos) << Bad;
  EXPECT_EQ(obs::logLevel(), obs::LogLevel::Error);
  obs::setLogLevel(obs::LogLevel::Off);
}

TEST(Gateway, ShutdownDrainsTheGatewayNotTheBackends) {
  GatewayFixture F;
  std::string R = F.call(serve::makeRequestFrame(1, "shutdown", ""));
  EXPECT_NE(R.find("\"result\""), std::string::npos) << R;
  EXPECT_TRUE(F.GW.isDraining());
  // Requests after the drain began are refused with the typed code...
  std::string Refused = F.call(serve::makeRequestFrame(2, "version", ""));
  EXPECT_NE(Refused.find("\"shutting_down\""), std::string::npos) << Refused;
  // ...but the backends are still alive and serving.
  std::string Err;
  std::optional<serve::Client> C =
      serve::Client::connect("127.0.0.1", F.B1.Srv.port(), Err);
  ASSERT_TRUE(C.has_value()) << Err;
  EXPECT_TRUE(C->call("version").Ok);
}

} // namespace
