//===- tests/SchedulerTest.cpp - Dependence DAG and list scheduler ---------===//

#include "core/Metrics.h"
#include "ir/AsmParser.h"
#include "sched/ListScheduler.h"
#include "sim/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

TEST(BlockDAG, RegisterDependences) {
  Program P = parseAsmOrDie(R"(
main:
  li  t0, 1          # 0
  li  t1, 2          # 1
  add t2, t0, t1     # 2: RAW on 0 and 1
  li  t0, 3          # 3: WAR on 2, WAW on 0
  add a0, t2, t0     # 4
  ret                # 5
)",
                            "dag");
  BlockDAG DAG = buildBlockDAG(P, P.blocks()[0]);
  auto HasEdge = [&](uint32_t From, uint32_t To) {
    const auto &S = DAG.Succs[From];
    return std::find(S.begin(), S.end(), To) != S.end();
  };
  EXPECT_TRUE(HasEdge(0, 2)); // RAW
  EXPECT_TRUE(HasEdge(1, 2)); // RAW
  EXPECT_TRUE(HasEdge(2, 3)); // WAR: t0 read at 2, rewritten at 3
  EXPECT_TRUE(HasEdge(0, 3)); // WAW
  EXPECT_TRUE(HasEdge(3, 4)); // RAW
  EXPECT_TRUE(HasEdge(4, 5)); // terminator last
  EXPECT_FALSE(HasEdge(0, 1)); // independent
}

TEST(BlockDAG, MemoryAndSideEffectOrdering) {
  Program P = parseAsmOrDie(R"(
main:
  li  t0, 0x1000     # 0
  lw  t1, 0(t0)      # 1
  sw  t1, 4(t0)      # 2: store after load
  lw  t2, 8(t0)      # 3: load after store
  out t1             # 4: side effect after the store
  ret
)",
                            "mem");
  BlockDAG DAG = buildBlockDAG(P, P.blocks()[0]);
  auto HasEdge = [&](uint32_t From, uint32_t To) {
    const auto &S = DAG.Succs[From];
    return std::find(S.begin(), S.end(), To) != S.end();
  };
  EXPECT_TRUE(HasEdge(1, 2)); // load -> store
  EXPECT_TRUE(HasEdge(2, 3)); // store -> load
  EXPECT_TRUE(HasEdge(2, 4)); // side-effect chain
}

TEST(Scheduler, SourceOrderIsIdentity) {
  Program P = parseAsmOrDie(R"(
main:
  li  t0, 1
  li  t1, 2
  add a0, t0, t1
  ret
)",
                            "id");
  BECAnalysis A = BECAnalysis::run(P);
  Program S = scheduleProgram(A, SchedulePolicy::SourceOrder);
  ASSERT_EQ(S.size(), P.size());
  for (uint32_t I = 0; I < P.size(); ++I)
    EXPECT_EQ(S.instr(I).Op, P.instr(I).Op) << I;
}

class SchedulerWorkloadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SchedulerWorkloadTest, PreservesObservableBehaviour) {
  const Workload &W = allWorkloads()[GetParam()];
  Program Prog = loadWorkload(W);
  BECAnalysis A = BECAnalysis::run(Prog);
  Trace Golden = simulate(Prog);
  for (SchedulePolicy Policy :
       {SchedulePolicy::BestReliability, SchedulePolicy::WorstReliability,
        SchedulePolicy::SourceOrder}) {
    Program Sched = scheduleProgram(A, Policy);
    ASSERT_EQ(Sched.size(), Prog.size());
    Trace T = simulate(Sched);
    EXPECT_EQ(T.ObservableHash, Golden.ObservableHash) << W.Name;
    EXPECT_EQ(T.Cycles, Golden.Cycles)
        << W.Name << ": scheduling must not change the instruction count";
  }
}

TEST_P(SchedulerWorkloadTest, BestIsNoWorseThanWorst) {
  const Workload &W = allWorkloads()[GetParam()];
  Program Prog = loadWorkload(W);
  BECAnalysis A = BECAnalysis::run(Prog);
  Program Best = scheduleProgram(A, SchedulePolicy::BestReliability);
  Program Worst = scheduleProgram(A, SchedulePolicy::WorstReliability);
  BECAnalysis AB = BECAnalysis::run(Best);
  BECAnalysis AW = BECAnalysis::run(Worst);
  Trace TB = simulate(Best), TW = simulate(Worst);
  uint64_t VB = computeVulnerability(AB, TB.Executed);
  uint64_t VW = computeVulnerability(AW, TW.Executed);
  // The paper observed no degradation from the best-policy heuristic.
  EXPECT_LE(VB, VW) << W.Name;
}

static std::string schedName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string Name = allWorkloads()[Info.param].Name;
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SchedulerWorkloadTest,
                         ::testing::Range<size_t>(0, 8), schedName);

} // namespace
