//===- tests/AnalysisTest.cpp - Liveness, use/def, global bit values -------===//

#include "analysis/BitValueAnalysis.h"
#include "analysis/Liveness.h"
#include "analysis/UseDef.h"
#include "ir/AsmParser.h"

#include <gtest/gtest.h>

using namespace bec;

namespace {

Program prog(const char *Src) { return parseAsmOrDie(Src, "analysis"); }

TEST(Liveness, StraightLine) {
  Program P = prog(R"(
main:
  li  t0, 1
  li  t1, 2
  add a0, t0, t1
  ret
)");
  Liveness L = Liveness::run(P);
  Reg T0 = *parseRegName("t0"), T1 = *parseRegName("t1");
  EXPECT_TRUE(L.isLiveAfter(0, T0));
  EXPECT_TRUE(L.isLiveAfter(1, T1));
  EXPECT_FALSE(L.isLiveAfter(2, T0)); // consumed by the add
  EXPECT_TRUE(L.isLiveAfter(2, RegA0)); // read by ret
  EXPECT_FALSE(L.isLiveAfter(3, RegA0));
}

TEST(Liveness, LoopCarriedValuesStayLive) {
  Program P = prog(R"(
main:
  li  t0, 5
  li  a0, 0
loop:
  add a0, a0, t0
  addi t0, t0, -1
  bnez t0, loop
  ret
)");
  Liveness L = Liveness::run(P);
  Reg T0 = *parseRegName("t0");
  // t0 is live after the backedge branch (read next iteration).
  EXPECT_TRUE(L.isLiveAfter(4, T0));
  EXPECT_TRUE(L.isLiveAfter(4, RegA0));
}

TEST(Liveness, DeadWriteIsNotLive) {
  Program P = prog(R"(
main:
  li  t0, 5
  li  t0, 6
  mv  a0, t0
  ret
)");
  Liveness L = Liveness::run(P);
  Reg T0 = *parseRegName("t0");
  EXPECT_FALSE(L.isLiveAfter(0, T0)); // overwritten before any read
  EXPECT_TRUE(L.isLiveAfter(1, T0));
}

TEST(UseDef, ReadsDoNotKill) {
  Program P = prog(R"(
main:
  li  t0, 1          # p0
  add t1, t0, t0     # p1 reads t0
  add t2, t0, t1     # p2 reads t0 again
  li  t0, 9          # p3 kills t0
  add a0, t2, t0     # p4
  ret                # p5
)");
  UseDef U = UseDef::run(P);
  Reg T0 = *parseRegName("t0");
  // From p0, both reads are reachable without a kill.
  std::span<const uint32_t> Uses = U.uses(0, T0);
  ASSERT_EQ(Uses.size(), 2u);
  EXPECT_EQ(Uses[0], 1u);
  EXPECT_EQ(Uses[1], 2u);
  // From the kill at p3, only p4 reads.
  Uses = U.uses(3, T0);
  ASSERT_EQ(Uses.size(), 1u);
  EXPECT_EQ(Uses[0], 4u);
}

TEST(UseDef, LoopSelfUse) {
  Program P = prog(R"(
main:
  li  t0, 3
loop:
  addi t0, t0, -1   # p1 reads and kills t0
  bnez t0, loop     # p2 reads t0
  mv  a0, t0        # p3
  ret
)");
  UseDef U = UseDef::run(P);
  Reg T0 = *parseRegName("t0");
  // After the addi, readers without an intervening kill: the branch, the
  // next iteration's addi, and the final mv.
  std::span<const uint32_t> Uses = U.uses(1, T0);
  ASSERT_EQ(Uses.size(), 3u);
  EXPECT_EQ(Uses[0], 1u);
  EXPECT_EQ(Uses[1], 2u);
  EXPECT_EQ(Uses[2], 3u);
}

TEST(BitValues, ConstantsPropagateAcrossBlocks) {
  Program P = prog(R"(
main:
  li  t0, 12
  beqz t1, other
  addi t0, t0, 0
other:
  mv  a0, t0
  ret
)");
  BitValueAnalysis A = BitValueAnalysis::run(P);
  Reg T0 = *parseRegName("t0");
  // Both paths carry t0 = 12 into the join.
  EXPECT_TRUE(A.after(3, T0).isConstant());
  EXPECT_EQ(A.after(3, T0).constValue(), 12u);
}

TEST(BitValues, LoopInductionVariableRisesToTop) {
  Program P = prog(R"(
main:
  li  t0, 7
loop:
  addi t0, t0, -1
  bnez t0, loop
  mv  a0, t0
  ret
)");
  BitValueAnalysis A = BitValueAnalysis::run(P);
  Reg T0 = *parseRegName("t0");
  // Inside the loop the value must be unknown (it varies by iteration).
  EXPECT_FALSE(A.before(1, T0).isConstant());
  EXPECT_NE(A.before(1, T0).topMask(), 0u);
}

TEST(BitValues, AndiMasksHighBits) {
  Program P = prog(R"(
main:
loop:
  andi t1, t0, 1
  addi t0, t0, 1
  beqz t1, loop
  mv  a0, t1
  ret
)");
  BitValueAnalysis A = BitValueAnalysis::run(P);
  Reg T1 = *parseRegName("t1");
  // k(p0, t1) = 0...0x regardless of t0 (the paper's 000x pattern).
  const KnownBits &K = A.after(0, T1);
  EXPECT_EQ(K.bit(0), BitValue::Top);
  for (unsigned B = 1; B < 32; ++B)
    EXPECT_EQ(K.bit(B), BitValue::Zero) << B;
}

TEST(BitValues, SccpPrunesInfeasibleBranches) {
  Program P = prog(R"(
main:
  li  t0, 5
  beqz t0, dead      # never taken: t0 == 5
  li  a0, 1
  ret
dead:
  li  a0, 2
  ret
)");
  BitValueAnalysis A = BitValueAnalysis::run(P);
  EXPECT_TRUE(A.isExecutable(2));
  EXPECT_FALSE(A.isExecutable(4)) << "constant branch should prune the edge";
}

TEST(BitValues, X0ReadsAsZero) {
  Program P = prog(R"(
main:
  add a0, zero, zero
  ret
)");
  BitValueAnalysis A = BitValueAnalysis::run(P);
  EXPECT_TRUE(A.after(0, RegA0).isConstant());
  EXPECT_EQ(A.after(0, RegA0).constValue(), 0u);
}

TEST(BitValues, SltProducesBooleanShape) {
  Program P = prog(R"(
main:
  slt t2, t0, t1
  mv  a0, t2
  ret
)");
  BitValueAnalysis A = BitValueAnalysis::run(P);
  Reg T2 = *parseRegName("t2");
  const KnownBits &K = A.after(0, T2);
  for (unsigned B = 1; B < 32; ++B)
    EXPECT_EQ(K.bit(B), BitValue::Zero);
  EXPECT_EQ(K.bit(0), BitValue::Top);
}

} // namespace
