//===- workloads/Dijkstra.cpp - MiBench dijkstra ---------------------------===//
///
/// \file
/// Single-source shortest paths on an 8-node weighted digraph stored as an
/// adjacency matrix (0 = no edge), O(n^2) Dijkstra with linear min
/// selection, source node 0. Emits the eight final distances.
/// Control-flow heavy with little bit-level structure (the paper reports
/// only 0.40 % pruning for dijkstra).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Sources.h"

using namespace bec;

static const uint32_t Adj[8][8] = {
    {0, 14, 0, 4, 0, 0, 19, 0},  {0, 0, 7, 0, 0, 12, 0, 0},
    {0, 0, 0, 0, 3, 0, 0, 20},   {0, 5, 16, 0, 0, 0, 6, 0},
    {0, 0, 0, 2, 0, 9, 0, 11},   {8, 0, 0, 0, 0, 0, 0, 2},
    {0, 0, 0, 0, 5, 3, 0, 25},   {1, 0, 0, 0, 0, 0, 0, 0},
};

namespace {
const char *DijkstraAsm = R"(
# dijkstra: O(n^2) single-source shortest paths, 8 nodes, source 0.
.memsize 8192
.data
adj:
  .word 0, 14,  0,  4,  0,  0, 19,  0
  .word 0,  0,  7,  0,  0, 12,  0,  0
  .word 0,  0,  0,  0,  3,  0,  0, 20
  .word 0,  5, 16,  0,  0,  0,  6,  0
  .word 0,  0,  0,  2,  0,  9,  0, 11
  .word 8,  0,  0,  0,  0,  0,  0,  2
  .word 0,  0,  0,  0,  5,  3,  0, 25
  .word 1,  0,  0,  0,  0,  0,  0,  0
dist:
  .zero 32
visited:
  .zero 32
.text
main:
  li   s0, 8             # n
  li   s1, 99999         # INF
  # dist[i] = INF, dist[0] = 0
  la   s2, dist
  li   t0, 0
init_loop:
  slli t1, t0, 2
  add  t1, s2, t1
  sw   s1, 0(t1)
  addi t0, t0, 1
  blt  t0, s0, init_loop
  sw   zero, 0(s2)
  la   s3, visited
  la   s4, adj
  li   s5, 0             # outer counter
outer_loop:
  # select the unvisited node with minimal distance
  mv   t0, s1
  addi t0, t0, 1         # best = INF + 1
  li   t1, -1            # bestidx
  li   t2, 0             # i
select_loop:
  slli t3, t2, 2
  add  t4, s3, t3
  lw   t4, 0(t4)
  bnez t4, select_next
  add  t4, s2, t3
  lw   t4, 0(t4)
  bgeu t4, t0, select_next
  mv   t0, t4
  mv   t1, t2
select_next:
  addi t2, t2, 1
  blt  t2, s0, select_loop
  bltz t1, done          # all remaining nodes unreachable
  # mark visited
  slli t3, t1, 2
  add  t4, s3, t3
  li   t5, 1
  sw   t5, 0(t4)
  # relax outgoing edges: adj[bestidx][j]
  slli t3, t1, 5         # bestidx * 32 bytes per row
  add  t3, s4, t3
  li   t2, 0             # j
relax_loop:
  slli t4, t2, 2
  add  t5, t3, t4
  lw   t5, 0(t5)         # w
  beqz t5, relax_next
  add  t5, t5, t0        # nd = best + w
  add  t6, s2, t4
  lw   t4, 0(t6)
  bgeu t5, t4, relax_next
  sw   t5, 0(t6)
relax_next:
  addi t2, t2, 1
  blt  t2, s0, relax_loop
  addi s5, s5, 1
  blt  s5, s0, outer_loop
done:
  # emit the distance vector
  li   t0, 0
out_loop:
  slli t1, t0, 2
  add  t1, s2, t1
  lw   t2, 0(t1)
  out  t2
  addi t0, t0, 1
  blt  t0, s0, out_loop
  lw   a0, 28(s2)
  ret
)";
} // namespace

const char *bec::workloadDijkstraAsm() { return DijkstraAsm; }

std::vector<uint64_t> bec::ref::dijkstra() {
  constexpr uint32_t Inf = 99999;
  uint32_t Dist[8];
  bool Visited[8] = {};
  for (auto &D : Dist)
    D = Inf;
  Dist[0] = 0;
  for (int Round = 0; Round < 8; ++Round) {
    uint32_t Best = Inf + 1;
    int BestIdx = -1;
    for (int I = 0; I < 8; ++I)
      if (!Visited[I] && Dist[I] < Best) {
        Best = Dist[I];
        BestIdx = I;
      }
    if (BestIdx < 0)
      break;
    Visited[BestIdx] = true;
    for (int J = 0; J < 8; ++J) {
      uint32_t W = Adj[BestIdx][J];
      if (W && Best + W < Dist[J])
        Dist[J] = Best + W;
    }
  }
  return std::vector<uint64_t>(Dist, Dist + 8);
}
