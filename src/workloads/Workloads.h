//===- workloads/Workloads.h - The eight benchmark programs ---------------===//
///
/// \file
/// The benchmark suite of the paper's evaluation (Section VI): bitcount,
/// dijkstra, CRC32, adpcm_enc, adpcm_dec (MiBench) and AES, RSA, SHA
/// (FISSC-style security kernels), hand-written in the project's RISC-V
/// assembly dialect with embedded inputs. Every workload carries a C++
/// reference model; the simulated `out` stream must match it exactly
/// (AES, SHA and CRC32 additionally hit published test vectors).
///
/// Workload sizes are scaled so that exhaustive fault-injection campaigns
/// finish in seconds (the paper's originals took 0.5h..50h; Table I
/// reproduces the shape, not the absolute cost).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_WORKLOADS_WORKLOADS_H
#define BEC_WORKLOADS_WORKLOADS_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace bec {

/// One benchmark: assembly source plus its reference outputs.
struct Workload {
  std::string Name;
  const char *Asm;
  /// Expected `out` stream, computed by the C++ reference model.
  std::vector<uint64_t> ExpectedOutputs;
  /// Expected return value (a0 at ret); checked only when CheckReturn.
  uint64_t ExpectedReturn = 0;
  bool CheckReturn = false;
};

/// All eight benchmarks, in the paper's Table III column order.
const std::vector<Workload> &allWorkloads();

/// Finds a workload by name; returns nullptr if unknown.
const Workload *findWorkload(std::string_view Name);

/// Finds a workload by name, falling back to a case-insensitive match
/// (the CLI's and AnalysisSession's lookup); nullptr if unknown.
const Workload *findWorkloadAnyCase(std::string_view Name);

/// Assembles a workload (aborts on internal error: sources are known-good).
Program loadWorkload(const Workload &W);

/// Reference models (exposed for direct testing).
namespace ref {
std::vector<uint64_t> bitcount();
std::vector<uint64_t> dijkstra();
std::vector<uint64_t> crc32();
std::vector<uint64_t> adpcmEnc();
std::vector<uint64_t> adpcmDec();
std::vector<uint64_t> aes();
std::vector<uint64_t> rsa();
std::vector<uint64_t> sha();
} // namespace ref

} // namespace bec

#endif // BEC_WORKLOADS_WORKLOADS_H
