//===- workloads/Workloads.cpp - Benchmark registry ------------------------===//

#include "workloads/Workloads.h"

#include "ir/AsmParser.h"
#include "support/StringUtils.h"
#include "workloads/Sources.h"

using namespace bec;

static std::vector<Workload> buildRegistry() {
  std::vector<Workload> Registry;
  auto Add = [&](const char *Name, const char *Asm,
                 std::vector<uint64_t> Outputs, uint64_t Return,
                 bool CheckReturn = true) {
    Registry.push_back({Name, Asm, std::move(Outputs), Return, CheckReturn});
  };
  // Return values mirror the programs' final `mv a0, ...` conventions.
  // The adpcm return values are internal codec state (not part of the
  // reference interface); their out-streams are the checked signal.
  std::vector<uint64_t> Bc = ref::bitcount();
  Add("bitcount", workloadBitcountAsm(), Bc, Bc[0]);
  std::vector<uint64_t> Dj = ref::dijkstra();
  Add("dijkstra", workloadDijkstraAsm(), Dj, Dj[7]);
  std::vector<uint64_t> Crc = ref::crc32();
  Add("CRC32", workloadCrc32Asm(), Crc, (Crc[0] ^ Crc[1]) & 0xffffffffu);
  Add("adpcm_enc", workloadAdpcmEncAsm(), ref::adpcmEnc(), 0,
      /*CheckReturn=*/false);
  Add("adpcm_dec", workloadAdpcmDecAsm(), ref::adpcmDec(), 0,
      /*CheckReturn=*/false);
  std::vector<uint64_t> Aes = ref::aes();
  Add("AES", workloadAesAsm(), Aes, (Aes[0] >> 24) & 0xff);
  std::vector<uint64_t> Rsa = ref::rsa();
  uint64_t RsaSum = 0;
  for (uint64_t C : Rsa)
    RsaSum += C;
  Add("RSA", workloadRsaAsm(), Rsa, RsaSum & 0xffffffffu);
  std::vector<uint64_t> Sha = ref::sha();
  Add("SHA", workloadShaAsm(), Sha, Sha[0]);
  return Registry;
}

const std::vector<Workload> &bec::allWorkloads() {
  static const std::vector<Workload> Registry = buildRegistry();
  return Registry;
}

const Workload *bec::findWorkload(std::string_view Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

const Workload *bec::findWorkloadAnyCase(std::string_view Name) {
  if (const Workload *W = findWorkload(Name))
    return W;
  // Bundled names use mixed case (CRC32, AES, ...); accept any casing.
  std::string Want = toLowerAscii(Name);
  for (const Workload &W : allWorkloads())
    if (toLowerAscii(W.Name) == Want)
      return &W;
  return nullptr;
}

Program bec::loadWorkload(const Workload &W) {
  return parseAsmOrDie(W.Asm, W.Name);
}
