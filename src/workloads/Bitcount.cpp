//===- workloads/Bitcount.cpp - MiBench bitcount ---------------------------===//
///
/// \file
/// Counts the set bits of twelve words with three algorithms (shift-mask,
/// Kernighan, nibble table) and emits the three totals. Mirrors MiBench's
/// bitcount kernel structure (multiple counting strategies over a word
/// stream); rich in masked bits (andi 1 / andi 15 chains).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Sources.h"

using namespace bec;

static const uint32_t Inputs[12] = {
    0xdeadbeef, 0x00000000, 0xffffffff, 0x12345678, 0x0f0f0f0f, 0x80000001,
    0x7fffffff, 0xcafebabe, 0x00ff00ff, 0xa5a5a5a5, 0x00000001, 0x31415926,
};

namespace {
const char *BitcountAsm = R"(
# bitcount: three bit-counting strategies over a word stream.
.memsize 8192
.data
vals:
  .word 0xdeadbeef, 0x00000000, 0xffffffff, 0x12345678
  .word 0x0f0f0f0f, 0x80000001, 0x7fffffff, 0xcafebabe
  .word 0x00ff00ff, 0xa5a5a5a5, 0x00000001, 0x31415926
nibtab:
  .byte 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4
.text
main:
  la   s0, vals          # word pointer
  li   s1, 12            # words remaining
  li   s2, 0             # total, shift-mask method
  li   s3, 0             # total, Kernighan method
  li   s4, 0             # total, nibble-table method
  la   s5, nibtab
word_loop:
  lw   t0, 0(s0)
  # --- method 1: test and shift, bit by bit ---
  mv   t1, t0
  li   t2, 0
m1_loop:
  beqz t1, m1_done
  andi t3, t1, 1
  add  t2, t2, t3
  srli t1, t1, 1
  j    m1_loop
m1_done:
  add  s2, s2, t2
  # --- method 2: Kernighan's clear-lowest-set-bit ---
  mv   t1, t0
  li   t2, 0
m2_loop:
  beqz t1, m2_done
  addi t3, t1, -1
  and  t1, t1, t3
  addi t2, t2, 1
  j    m2_loop
m2_done:
  add  s3, s3, t2
  # --- method 3: nibble table lookup ---
  mv   t1, t0
  li   t2, 0
m3_loop:
  andi t3, t1, 15
  add  t4, s5, t3
  lbu  t4, 0(t4)
  add  t2, t2, t4
  srli t1, t1, 4
  bnez t1, m3_loop
m3_done:
  add  s4, s4, t2
  addi s0, s0, 4
  addi s1, s1, -1
  bnez s1, word_loop
  out  s2
  out  s3
  out  s4
  mv   a0, s2
  ret
)";
} // namespace

const char *bec::workloadBitcountAsm() { return BitcountAsm; }

std::vector<uint64_t> bec::ref::bitcount() {
  uint64_t Total = 0;
  for (uint32_t V : Inputs) {
    unsigned Count = 0;
    for (uint32_t X = V; X; X >>= 1)
      Count += X & 1;
    Total += Count;
  }
  // All three methods agree by construction.
  return {Total, Total, Total};
}
