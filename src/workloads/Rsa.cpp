//===- workloads/Rsa.cpp - FISSC-style RSA modular exponentiation ----------===//
///
/// \file
/// Textbook RSA encryption c = m^e mod n with e = 65537 = 2^16 + 1 over a
/// stream of 24 message blocks. Because the public exponent is a Fermat
/// number, the kernel is a pure square chain (sixteen modular squarings
/// and one final multiply) of mul/remu arithmetic with no per-bit
/// branching: almost every value is compile-time unknown and no
/// coalescing rule applies. This reproduces the paper's adversary case
/// ("the majority of its operations are arithmetic and thus challenging
/// for bit-value analysis"; 0.08 % pruning).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Sources.h"

using namespace bec;

// p = 251, q = 211 (prime): n = 52961 < 2^16, so a * b < 2^32 never
// overflows the 32-bit registers.
static constexpr uint64_t N = 251ull * 211ull;

static const uint32_t Messages[24] = {
    42424242, 19283746, 777,      52960,   1048576, 999999,
    314159,   27182818, 11111,    2222222, 333,     4444444,
    5555,     66666,    7777777,  888,     9999999, 1234321,
    43210,    505050,   60606060, 70707,   808,     90909090};

namespace {
const char *RsaAsm = R"(
# rsa: c_i = m_i^65537 mod n; sixteen modular squarings + one multiply
# per block (e = 2^16 + 1), mul/remu arithmetic only.
.memsize 8192
.data
msgs:
  .word 42424242, 19283746, 777, 52960, 1048576, 999999
  .word 314159, 27182818, 11111, 2222222, 333, 4444444
  .word 5555, 66666, 7777777, 888, 9999999, 1234321
  .word 43210, 505050, 60606060, 70707, 808, 90909090
.text
main:
  li   s0, 52961         # n
  la   s1, msgs
  li   s2, 24            # blocks remaining
  li   s7, 0             # additive ciphertext checksum
block_loop:
  lw   t0, 0(s1)
  remu t0, t0, s0        # m mod n
  mv   t2, t0            # keep m for the final multiply
  li   t1, 16            # squarings remaining
sq_loop:
  mul  t0, t0, t0        # base = base^2 mod n
  remu t0, t0, s0
  addi t1, t1, -1
  bnez t1, sq_loop
  mul  t0, t0, t2        # c = base * m mod n
  remu t0, t0, s0
  out  t0
  add  s7, s7, t0
  addi s1, s1, 4
  addi s2, s2, -1
  bnez s2, block_loop
  mv   a0, s7
  ret
)";
} // namespace

const char *bec::workloadRsaAsm() { return RsaAsm; }

std::vector<uint64_t> bec::ref::rsa() {
  std::vector<uint64_t> Out;
  for (uint32_t M : Messages) {
    uint64_t Base = M % N;
    uint64_t Saved = Base;
    for (int I = 0; I < 16; ++I)
      Base = (Base * Base) % N;
    Out.push_back((Base * Saved) % N);
  }
  return Out;
}
