//===- workloads/Adpcm.cpp - MiBench IMA ADPCM encoder and decoder ---------===//
///
/// \file
/// IMA/DVI ADPCM codec over a 24-sample PCM ramp: the encoder emits one
/// 4-bit code per sample, the decoder reconstructs samples from those
/// codes. Internally 4-bit codes are clamped from wider intermediates,
/// which is exactly the structure the paper credits for adpcm's high
/// masked-bit counts.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Sources.h"

#include <algorithm>

using namespace bec;

static const int16_t StepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

static const int8_t IndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                      -1, -1, -1, -1, 2, 4, 6, 8};

static const int16_t Samples[24] = {
    0,     120,   340,   720,   1300,  2100,  3200,  4700,
    6500,  8200,  9400,  9900,  9500,  8300,  6300,  3800,
    1200,  -1500, -4200, -6600, -8500, -9700, -9900, -9200};

/// Shared encoder model; returns the 4-bit codes.
static std::vector<uint8_t> encodeRef() {
  std::vector<uint8_t> Codes;
  int Valprev = 0, Index = 0;
  for (int16_t Sample : Samples) {
    int Step = StepTable[Index];
    int Diff = Sample - Valprev;
    int Sign = Diff < 0 ? 8 : 0;
    if (Sign)
      Diff = -Diff;
    int Delta = 0, Temp = Step;
    if (Diff >= Temp) {
      Delta = 4;
      Diff -= Temp;
    }
    Temp >>= 1;
    if (Diff >= Temp) {
      Delta |= 2;
      Diff -= Temp;
    }
    Temp >>= 1;
    if (Diff >= Temp)
      Delta |= 1;
    int Vpdiff = Step >> 3;
    if (Delta & 4)
      Vpdiff += Step;
    if (Delta & 2)
      Vpdiff += Step >> 1;
    if (Delta & 1)
      Vpdiff += Step >> 2;
    Valprev = Sign ? Valprev - Vpdiff : Valprev + Vpdiff;
    Valprev = std::clamp(Valprev, -32768, 32767);
    Delta |= Sign;
    Index += IndexTable[Delta];
    Index = std::clamp(Index, 0, 88);
    Codes.push_back(static_cast<uint8_t>(Delta));
  }
  return Codes;
}

/// Shared decoder model over the encoder's codes.
static std::vector<int32_t> decodeRef() {
  std::vector<int32_t> Out;
  int Valprev = 0, Index = 0;
  for (uint8_t Delta : encodeRef()) {
    int Step = StepTable[Index];
    Index += IndexTable[Delta];
    Index = std::clamp(Index, 0, 88);
    int Sign = Delta & 8;
    int Mag = Delta & 7;
    int Vpdiff = Step >> 3;
    if (Mag & 4)
      Vpdiff += Step;
    if (Mag & 2)
      Vpdiff += Step >> 1;
    if (Mag & 1)
      Vpdiff += Step >> 2;
    Valprev = Sign ? Valprev - Vpdiff : Valprev + Vpdiff;
    Valprev = std::clamp(Valprev, -32768, 32767);
    Out.push_back(Valprev);
  }
  return Out;
}

namespace {
// Shared .data block (step table, index table, samples).
#define ADPCM_DATA                                                            \
  ".memsize 8192\n"                                                          \
  ".data\n"                                                                  \
  "steptab:\n"                                                               \
  "  .word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17\n"                            \
  "  .word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45\n"                         \
  "  .word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118\n"                       \
  "  .word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307\n"               \
  "  .word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796\n"               \
  "  .word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066\n"       \
  "  .word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358\n"     \
  "  .word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, "        \
  "13899\n"                                                                  \
  "  .word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767\n"  \
  "indextab:\n"                                                              \
  "  .word -1, -1, -1, -1, 2, 4, 6, 8\n"                                     \
  "  .word -1, -1, -1, -1, 2, 4, 6, 8\n"                                     \
  "samples:\n"                                                               \
  "  .word 0, 120, 340, 720, 1300, 2100, 3200, 4700\n"                       \
  "  .word 6500, 8200, 9400, 9900, 9500, 8300, 6300, 3800\n"                 \
  "  .word 1200, -1500, -4200, -6600, -8500, -9700, -9900, -9200\n"          \
  "codes:\n"                                                                 \
  "  .zero 96\n"

const char *AdpcmEncAsm =
    ADPCM_DATA
    R"(.text
# adpcm_enc: IMA ADPCM encoder, one 4-bit code per PCM sample.
main:
  la   s0, samples
  la   s1, steptab
  la   s2, indextab
  la   s3, codes
  li   s4, 24            # samples remaining
  li   s5, 0             # valprev
  li   s6, 0             # index
enc_loop:
  lw   t0, 0(s0)         # sample
  slli t1, s6, 2
  add  t1, s1, t1
  lw   t2, 0(t1)         # step
  sub  t3, t0, s5        # diff
  li   t4, 0             # sign
  bgez t3, enc_pos
  li   t4, 8
  neg  t3, t3
enc_pos:
  li   t5, 0             # delta
  blt  t3, t2, enc_b2
  ori  t5, t5, 4
  sub  t3, t3, t2
enc_b2:
  srai t6, t2, 1
  blt  t3, t6, enc_b1
  ori  t5, t5, 2
  sub  t3, t3, t6
enc_b1:
  srai t6, t2, 2
  blt  t3, t6, enc_vp
  ori  t5, t5, 1
enc_vp:
  # vpdiff = step>>3 (+ step if bit2, + step>>1 if bit1, + step>>2 if bit0)
  srai t6, t2, 3
  andi t1, t5, 4
  beqz t1, enc_vp2
  add  t6, t6, t2
enc_vp2:
  andi t1, t5, 2
  beqz t1, enc_vp1
  srai t1, t2, 1
  add  t6, t6, t1
enc_vp1:
  andi t1, t5, 1
  beqz t1, enc_upd
  srai t1, t2, 2
  add  t6, t6, t1
enc_upd:
  beqz t4, enc_addv
  sub  s5, s5, t6
  j    enc_clampv
enc_addv:
  add  s5, s5, t6
enc_clampv:
  li   t1, 32767
  ble  s5, t1, enc_clamplo
  mv   s5, t1
enc_clamplo:
  li   t1, -32768
  bge  s5, t1, enc_index
  mv   s5, t1
enc_index:
  or   t5, t5, t4        # delta |= sign
  slli t1, t5, 2
  add  t1, s2, t1
  lw   t1, 0(t1)         # indextab[delta]
  add  s6, s6, t1
  bgez s6, enc_clampi
  li   s6, 0
enc_clampi:
  li   t1, 88
  ble  s6, t1, enc_store
  mv   s6, t1
enc_store:
  lbu  t1, 0(s3)         # keep the store byte-wide and visible
  sb   t5, 0(s3)
  out  t5
  addi s3, s3, 1
  addi s0, s0, 4
  addi s4, s4, -1
  bnez s4, enc_loop
  mv   a0, s5
  andi a0, a0, 0xffff
  ret
)";

const char *AdpcmDecAsm =
    ADPCM_DATA
    R"(.text
# adpcm_dec: IMA ADPCM decoder; first re-encodes the PCM input (exactly
# as adpcm_enc) to produce the code stream, then reconstructs samples.
main:
  la   s0, samples
  la   s1, steptab
  la   s2, indextab
  la   s3, codes
  li   s4, 24
  li   s5, 0
  li   s6, 0
renc_loop:
  lw   t0, 0(s0)
  slli t1, s6, 2
  add  t1, s1, t1
  lw   t2, 0(t1)
  sub  t3, t0, s5
  li   t4, 0
  bgez t3, renc_pos
  li   t4, 8
  neg  t3, t3
renc_pos:
  li   t5, 0
  blt  t3, t2, renc_b2
  ori  t5, t5, 4
  sub  t3, t3, t2
renc_b2:
  srai t6, t2, 1
  blt  t3, t6, renc_b1
  ori  t5, t5, 2
  sub  t3, t3, t6
renc_b1:
  srai t6, t2, 2
  blt  t3, t6, renc_vp
  ori  t5, t5, 1
renc_vp:
  srai t6, t2, 3
  andi t1, t5, 4
  beqz t1, renc_vp2
  add  t6, t6, t2
renc_vp2:
  andi t1, t5, 2
  beqz t1, renc_vp1
  srai t1, t2, 1
  add  t6, t6, t1
renc_vp1:
  andi t1, t5, 1
  beqz t1, renc_upd
  srai t1, t2, 2
  add  t6, t6, t1
renc_upd:
  beqz t4, renc_addv
  sub  s5, s5, t6
  j    renc_clampv
renc_addv:
  add  s5, s5, t6
renc_clampv:
  li   t1, 32767
  ble  s5, t1, renc_clamplo
  mv   s5, t1
renc_clamplo:
  li   t1, -32768
  bge  s5, t1, renc_index
  mv   s5, t1
renc_index:
  or   t5, t5, t4
  slli t1, t5, 2
  add  t1, s2, t1
  lw   t1, 0(t1)
  add  s6, s6, t1
  bgez s6, renc_clampi
  li   s6, 0
renc_clampi:
  li   t1, 88
  ble  s6, t1, renc_store
  mv   s6, t1
renc_store:
  sb   t5, 0(s3)
  addi s3, s3, 1
  addi s0, s0, 4
  addi s4, s4, -1
  bnez s4, renc_loop
  # --- decode the code stream ---
  la   s3, codes
  li   s4, 24
  li   s5, 0             # valprev
  li   s6, 0             # index
dec_loop:
  lbu  t5, 0(s3)         # delta
  slli t1, s6, 2
  add  t1, s1, t1
  lw   t2, 0(t1)         # step
  slli t1, t5, 2
  add  t1, s2, t1
  lw   t1, 0(t1)
  add  s6, s6, t1
  bgez s6, dec_clampi
  li   s6, 0
dec_clampi:
  li   t1, 88
  ble  s6, t1, dec_vp
  mv   s6, t1
dec_vp:
  andi t4, t5, 8         # sign
  andi t3, t5, 7         # magnitude
  srai t6, t2, 3
  andi t1, t3, 4
  beqz t1, dec_vp2
  add  t6, t6, t2
dec_vp2:
  andi t1, t3, 2
  beqz t1, dec_vp1
  srai t1, t2, 1
  add  t6, t6, t1
dec_vp1:
  andi t1, t3, 1
  beqz t1, dec_upd
  srai t1, t2, 2
  add  t6, t6, t1
dec_upd:
  beqz t4, dec_addv
  sub  s5, s5, t6
  j    dec_clampv
dec_addv:
  add  s5, s5, t6
dec_clampv:
  li   t1, 32767
  ble  s5, t1, dec_clamplo
  mv   s5, t1
dec_clamplo:
  li   t1, -32768
  bge  s5, t1, dec_emit
  mv   s5, t1
dec_emit:
  andi t1, s5, 0xffff    # emit as a clamped 16-bit pattern
  out  t1
  addi s3, s3, 1
  addi s4, s4, -1
  bnez s4, dec_loop
  mv   a0, s6
  ret
)";
} // namespace

const char *bec::workloadAdpcmEncAsm() { return AdpcmEncAsm; }
const char *bec::workloadAdpcmDecAsm() { return AdpcmDecAsm; }

std::vector<uint64_t> bec::ref::adpcmEnc() {
  std::vector<uint64_t> Out;
  for (uint8_t Code : encodeRef())
    Out.push_back(Code);
  return Out;
}

std::vector<uint64_t> bec::ref::adpcmDec() {
  std::vector<uint64_t> Out;
  for (int32_t Sample : decodeRef())
    Out.push_back(static_cast<uint32_t>(Sample) & 0xffff);
  return Out;
}
