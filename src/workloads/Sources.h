//===- workloads/Sources.h - Internal: per-benchmark assembly sources -----===//
///
/// \file
/// Private interface between the per-benchmark translation units and the
/// workload registry. Each benchmark exposes its assembly text through a
/// function (no global constructors, per the coding standards).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_WORKLOADS_SOURCES_H
#define BEC_WORKLOADS_SOURCES_H

namespace bec {

const char *workloadBitcountAsm();
const char *workloadDijkstraAsm();
const char *workloadCrc32Asm();
const char *workloadAdpcmEncAsm();
const char *workloadAdpcmDecAsm();
const char *workloadAesAsm();
const char *workloadRsaAsm();
const char *workloadShaAsm();

} // namespace bec

#endif // BEC_WORKLOADS_SOURCES_H
