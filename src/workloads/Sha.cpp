//===- workloads/Sha.cpp - MiBench SHA (SHA-1 compression) -----------------===//
///
/// \file
/// SHA-1 over the single padded block of the message "abc" (FIPS 180-1
/// test vector: digest a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d).
/// Rotate/xor heavy with a memory-resident message schedule.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Sources.h"

using namespace bec;

namespace {
const char *ShaAsm = R"(
# sha: SHA-1 compression of the padded "abc" block.
.memsize 8192
.data
msg:
  .word 0x61626380, 0, 0, 0, 0, 0, 0, 0
  .word 0, 0, 0, 0, 0, 0, 0, 0x00000018
sched:
  .zero 320              # w[0..79]
.text
main:
  # --- message schedule ---
  la   s0, msg
  la   s1, sched
  li   t0, 0             # t
copy_loop:
  slli t1, t0, 2
  add  t2, s0, t1
  lw   t3, 0(t2)
  add  t2, s1, t1
  sw   t3, 0(t2)
  addi t0, t0, 1
  slti t1, t0, 16
  bnez t1, copy_loop
expand_loop:
  slli t1, t0, 2
  add  t2, s1, t1
  lw   t3, -12(t2)       # w[t-3]
  lw   t4, -32(t2)       # w[t-8]
  xor  t3, t3, t4
  lw   t4, -56(t2)       # w[t-14]
  xor  t3, t3, t4
  lw   t4, -64(t2)       # w[t-16]
  xor  t3, t3, t4
  slli t4, t3, 1         # rotl(x, 1)
  srli t3, t3, 31
  or   t3, t3, t4
  sw   t3, 0(t2)
  addi t0, t0, 1
  slti t1, t0, 80
  bnez t1, expand_loop
  # --- compression ---
  li   s2, 0x67452301    # a
  li   s3, 0xEFCDAB89    # b
  li   s4, 0x98BADCFE    # c
  li   s5, 0x10325476    # d
  li   s6, 0xC3D2E1F0    # e
  li   t0, 0             # t
round_loop:
  # f and k by round quarter
  li   t1, 20
  blt  t0, t1, f_ch
  li   t1, 40
  blt  t0, t1, f_par1
  li   t1, 60
  blt  t0, t1, f_maj
  # t >= 60: parity, k = 0xCA62C1D6
  xor  t2, s3, s4
  xor  t2, t2, s5
  li   t3, 0xCA62C1D6
  j    f_done
f_ch:                    # (b & c) | (~b & d), k = 0x5A827999
  and  t2, s3, s4
  not  t3, s3
  and  t3, t3, s5
  or   t2, t2, t3
  li   t3, 0x5A827999
  j    f_done
f_par1:                  # b ^ c ^ d, k = 0x6ED9EBA1
  xor  t2, s3, s4
  xor  t2, t2, s5
  li   t3, 0x6ED9EBA1
  j    f_done
f_maj:                   # (b&c) | (b&d) | (c&d), k = 0x8F1BBCDC
  and  t2, s3, s4
  and  t4, s3, s5
  or   t2, t2, t4
  and  t4, s4, s5
  or   t2, t2, t4
  li   t3, 0x8F1BBCDC
f_done:
  # temp = rotl(a,5) + f + e + k + w[t]
  slli t4, s2, 5
  srli t5, s2, 27
  or   t4, t4, t5
  add  t4, t4, t2
  add  t4, t4, s6
  add  t4, t4, t3
  slli t5, t0, 2
  add  t5, s1, t5
  lw   t5, 0(t5)
  add  t4, t4, t5
  # e=d; d=c; c=rotl(b,30); b=a; a=temp
  mv   s6, s5
  mv   s5, s4
  slli t5, s3, 30
  srli s4, s3, 2
  or   s4, s4, t5
  mv   s3, s2
  mv   s2, t4
  addi t0, t0, 1
  slti t1, t0, 80
  bnez t1, round_loop
  # --- add initial state and emit the digest ---
  li   t0, 0x67452301
  add  s2, s2, t0
  li   t0, 0xEFCDAB89
  add  s3, s3, t0
  li   t0, 0x98BADCFE
  add  s4, s4, t0
  li   t0, 0x10325476
  add  s5, s5, t0
  li   t0, 0xC3D2E1F0
  add  s6, s6, t0
  out  s2
  out  s3
  out  s4
  out  s5
  out  s6
  mv   a0, s2
  ret
)";
} // namespace

const char *bec::workloadShaAsm() { return ShaAsm; }

std::vector<uint64_t> bec::ref::sha() {
  uint32_t W[80] = {0x61626380u};
  W[15] = 0x18;
  for (int T = 16; T < 80; ++T) {
    uint32_t X = W[T - 3] ^ W[T - 8] ^ W[T - 14] ^ W[T - 16];
    W[T] = (X << 1) | (X >> 31);
  }
  uint32_t A = 0x67452301u, B = 0xEFCDAB89u, C = 0x98BADCFEu,
           D = 0x10325476u, E = 0xC3D2E1F0u;
  for (int T = 0; T < 80; ++T) {
    uint32_t F, K;
    if (T < 20) {
      F = (B & C) | (~B & D);
      K = 0x5A827999u;
    } else if (T < 40) {
      F = B ^ C ^ D;
      K = 0x6ED9EBA1u;
    } else if (T < 60) {
      F = (B & C) | (B & D) | (C & D);
      K = 0x8F1BBCDCu;
    } else {
      F = B ^ C ^ D;
      K = 0xCA62C1D6u;
    }
    uint32_t Temp = ((A << 5) | (A >> 27)) + F + E + K + W[T];
    E = D;
    D = C;
    C = (B << 30) | (B >> 2);
    B = A;
    A = Temp;
  }
  return {A + 0x67452301u, B + 0xEFCDAB89u, C + 0x98BADCFEu,
          D + 0x10325476u, E + 0xC3D2E1F0u};
}
