//===- workloads/Crc32.cpp - MiBench CRC32 ---------------------------------===//
///
/// \file
/// Bitwise (table-free) CRC-32 over two messages: the standard check
/// string "123456789" (must yield 0xCBF43926) followed by a 24-byte
/// payload. Dominated by shift/xor/and with constants: the paper's
/// best-improving benchmark for vulnerability-aware scheduling.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Sources.h"

using namespace bec;

static const uint8_t Payload[24] = {
    0x42, 0x45, 0x43, 0x20, 0x62, 0x69, 0x74, 0x2d, 0x6c, 0x65, 0x76, 0x65,
    0x6c, 0x20, 0x61, 0x6e, 0x61, 0x6c, 0x79, 0x73, 0x69, 0x73, 0x21, 0x0a,
};

namespace {
const char *Crc32Asm = R"(
# crc32: bitwise CRC-32 (poly 0xEDB88320, reflected) over two messages.
.memsize 8192
.data
msg1:
  .byte 0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39
msg2:
  .byte 0x42, 0x45, 0x43, 0x20, 0x62, 0x69, 0x74, 0x2d
  .byte 0x6c, 0x65, 0x76, 0x65, 0x6c, 0x20, 0x61, 0x6e
  .byte 0x61, 0x6c, 0x79, 0x73, 0x69, 0x73, 0x21, 0x0a
.text
main:
  li   s4, 0xEDB88320    # reflected polynomial
  # --- message 1: the standard check string ---
  la   s0, msg1
  li   s1, 9
  li   s2, -1            # crc = 0xFFFFFFFF
crc1_byte:
  lbu  t0, 0(s0)
  xor  s2, s2, t0
  li   t1, 8
crc1_bit:
  andi t2, s2, 1
  srli s2, s2, 1
  beqz t2, crc1_nopoly
  xor  s2, s2, s4
crc1_nopoly:
  addi t1, t1, -1
  bnez t1, crc1_bit
  addi s0, s0, 1
  addi s1, s1, -1
  bnez s1, crc1_byte
  not  s2, s2
  out  s2                # 0xCBF43926
  # --- message 2: payload ---
  la   s0, msg2
  li   s1, 24
  li   s3, -1
crc2_byte:
  lbu  t0, 0(s0)
  xor  s3, s3, t0
  li   t1, 8
crc2_bit:
  andi t2, s3, 1
  srli s3, s3, 1
  beqz t2, crc2_nopoly
  xor  s3, s3, s4
crc2_nopoly:
  addi t1, t1, -1
  bnez t1, crc2_bit
  addi s0, s0, 1
  addi s1, s1, -1
  bnez s1, crc2_byte
  not  s3, s3
  out  s3
  xor  a0, s2, s3
  ret
)";
} // namespace

const char *bec::workloadCrc32Asm() { return Crc32Asm; }

static uint32_t crcOf(const uint8_t *Data, size_t Len) {
  uint32_t Crc = 0xffffffffu;
  for (size_t I = 0; I < Len; ++I) {
    Crc ^= Data[I];
    for (int B = 0; B < 8; ++B) {
      uint32_t Lsb = Crc & 1;
      Crc >>= 1;
      if (Lsb)
        Crc ^= 0xEDB88320u;
    }
  }
  return ~Crc;
}

std::vector<uint64_t> bec::ref::crc32() {
  const uint8_t Check[9] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  return {crcOf(Check, 9), crcOf(Payload, 24)};
}
