//===- serve/Service.h - The becd request router and TCP server -----------===//
///
/// \file
/// The becd analysis service in two layers:
///
///  * Service — the transport-independent request router. It owns the
///    server's one shared AnalysisSession (the "session pool"): every
///    client's programs are interned into the same content-addressed
///    cache, so two clients analyzing the same program — or the same
///    client asking twice — hit the same shard, and the warm hits show up
///    in the `stats` method. handleFrame() maps one request frame to one
///    response frame and is safe to call from any number of threads; it
///    is also the in-process "loopback" entry point used by deterministic
///    tests and by serve::Client::loopback.
///
///  * Server — blocking TCP acceptor fanning connections out on the
///    existing ThreadPool (one task per connection, requests within a
///    connection served in order). A `shutdown` request drains the server
///    gracefully: the listener and every idle connection are unblocked,
///    in-flight requests finish, run() returns.
///
/// Method table (params and result shapes in docs/serve.md):
///
///   version   server API/protocol/build identification
///   analyze | campaign | schedule | harden | report
///             the five `bec` subcommands over named targets, rendered
///             through api/Serialize.h — byte-identical to local output
///   campaign/run
///             the campaign subcommand as a *streaming* method: when its
///             params set "progress":true, per-shard progress frames are
///             emitted before the final (identical) result. The one
///             method that uses handleFrameStreaming's sink.
///   counts    one target's Table-III counts as a structured object
///   intern    assemble inline asm text and pool it under a client name
///   stats     server counters, per-method latency histograms (count /
///             p50 / p99 / mean), live gauges, and session cache
///             statistics including the hit rate
///   metrics   every obs-registry metric in the Prometheus text
///             exposition format (counters, gauges, full histograms) —
///             the daemon's scrape endpoint
///   trace/dump
///             spans this daemon recorded for requests that carried a
///             `trace` envelope context (obs/SpanRing.h), optionally
///             filtered by trace id — the collection half of
///             distributed tracing (`--trace-out` over `--remote`)
///   log/level get or set the structured-log level at runtime
///   shutdown  begin graceful shutdown
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SERVE_SERVICE_H
#define BEC_SERVE_SERVICE_H

#include "api/AnalysisSession.h"
#include "serve/Protocol.h"
#include "serve/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

namespace bec {
namespace serve {

/// Monotonic service counters (all requests since construction).
struct ServiceCounters {
  uint64_t Connections = 0;
  uint64_t Requests = 0;
  uint64_t Errors = 0;
  std::map<std::string, uint64_t> PerMethod;
};

/// The transport-independent request router; see the file comment.
class Service {
public:
  Service() = default;
  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// The greeting frame a transport must deliver before any response.
  std::string handshakeFrame() const { return makeHandshakeFrame(); }

  /// Maps one request frame to one response frame (both '\n'-terminated).
  /// Never throws; internal failures become error responses. Thread-safe.
  /// Streaming methods run but emit no intermediate frames.
  std::string handleFrame(std::string_view Line);

  /// Delivers a streaming method's intermediate frames ('\n'-terminated,
  /// in order, serialized by the service) to \p Sink.
  using FrameSink = std::function<void(const std::string &Frame)>;

  /// Like handleFrame, but a streaming method's progress frames go to
  /// \p Sink (may be null) before the final frame is returned. \p Sink
  /// may be invoked from worker threads, but never concurrently and
  /// never after handleFrameStreaming returns.
  std::string handleFrameStreaming(std::string_view Line,
                                   const FrameSink &Sink);

  /// True once a `shutdown` request has been accepted. Transports must
  /// stop reading and drain.
  bool isShuttingDown() const { return Shutdown.load(); }

  /// Transport bookkeeping for the `stats` method.
  void noteConnection() { ++Connections; }

  ServiceCounters counters() const;

  /// The shared session pool (exposed for tests and embedders).
  AnalysisSession &session() { return S; }

private:
  /// One method's outcome: a result payload or a typed error.
  struct Outcome {
    bool Failed = false;
    std::string ResultJson; ///< Serialized result value when !Failed.
    ErrorCode Code = ErrorCode::InternalError;
    std::string Message;
    std::string DataJson; ///< Optional structured error detail.
  };

  static Outcome fail(ErrorCode C, std::string Message,
                      std::string DataJson = {});

  /// A resolved target list: parallel canonical names and shards.
  struct Targets {
    std::vector<std::string> Names;
    std::vector<CachedProgramPtr> Progs;
  };

  Outcome dispatch(const Request &R, const FrameSink &Sink);
  /// Resolves params["targets"] (default: all bundled workloads),
  /// collapsing duplicates as the CLI does. False on unknown names, with
  /// \p Err filled.
  bool resolveTargets(const JsonValue &Params, Targets &Out, Outcome &Err);
  /// One name: interned program, bundled workload (any case), or null.
  CachedProgramPtr resolveOne(const std::string &Name,
                              std::string &Canonical);

  Outcome methodVersion();
  Outcome methodStats();
  Outcome methodMetrics();
  Outcome methodTraceDump(const JsonValue &Params);
  Outcome methodLogLevel(const JsonValue &Params);
  Outcome methodShutdown();
  Outcome methodIntern(const JsonValue &Params);
  Outcome methodCounts(const JsonValue &Params);
  Outcome methodAnalyze(const JsonValue &Params);
  /// One implementation serves both `campaign` (no sink) and
  /// `campaign/run` (progress frames for request \p Id through \p Sink).
  Outcome methodCampaign(const JsonValue &Params, uint64_t Id,
                         const FrameSink &Sink);
  Outcome methodSchedule(const JsonValue &Params);
  Outcome methodHarden(const JsonValue &Params);
  Outcome methodReport(const JsonValue &Params);

  AnalysisSession S;

  /// Guards NamedPrograms and the session's target-free interning of
  /// workloads (queries themselves are session-synchronized).
  std::mutex PoolMutex;
  /// Client-visible program names: interned programs plus lazily loaded
  /// bundled workloads (under their canonical names).
  std::map<std::string, CachedProgramPtr, std::less<>> NamedPrograms;

  std::atomic<bool> Shutdown{false};
  std::atomic<uint64_t> Connections{0};
  mutable std::mutex StatsMutex;
  uint64_t Requests = 0;
  uint64_t Errors = 0;
  std::map<std::string, uint64_t> PerMethod;
};

/// Blocking TCP server around a Service; see the file comment.
class Server {
public:
  struct Options {
    std::string Host = "127.0.0.1";
    uint16_t Port = DefaultPort; ///< 0 = ephemeral; see port().
    /// Concurrent connection handlers (thread-per-connection; floor 2,
    /// cap 64 — I/O-bound, deliberately not clamped to the core count).
    /// Further connections queue until a handler frees up.
    unsigned Jobs = 4;
    /// Admission control: with every handler busy, at most this many
    /// accepted connections may wait for one; the next connection gets
    /// its first request answered with error 105 `overloaded` and is
    /// closed (typed backpressure instead of an unbounded queue).
    unsigned MaxQueued = 128;
  };

  Server(Service &Svc, Options Opts);
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens. False with a diagnostic on failure.
  bool start(std::string &Err);

  /// The bound port (valid after start(); resolves Port=0 requests).
  uint16_t port() const { return Listener.boundPort(); }

  /// Accept loop; returns after graceful shutdown (a `shutdown` request
  /// or requestStop()) once every connection has drained.
  void run();

  /// Thread-safe external stop (tests, signal handlers).
  void requestStop();

private:
  void serveConnection(Socket &Conn);
  /// Deregisters and closes under the registry lock (so requestStop never
  /// touches a recycled descriptor).
  void closeConnection(Socket &Conn);
  /// Saturation path: answers the connection's first request with
  /// `overloaded` (inline on the acceptor, short read timeout) and
  /// closes it.
  void rejectOverloaded(Socket Conn);

  Service &Svc;
  Options Opts;
  ListenSocket Listener;
  ThreadPool Pool;
  std::atomic<bool> Stopping{false};
  std::atomic<unsigned> Active{0}; ///< Handlers serving a connection.
  std::atomic<unsigned> Queued{0}; ///< Accepted, waiting for a handler.
  std::mutex ConnMutex;
  std::set<int> OpenConns; ///< Live connection fds, for shutdown wakeup.
};

} // namespace serve
} // namespace bec

#endif // BEC_SERVE_SERVICE_H
