//===- serve/Socket.cpp - Blocking TCP sockets -----------------------------===//

#include "serve/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace bec;
using namespace bec::serve;

namespace {

std::string errnoString(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

/// Frames are small and latency-bound; never batch them behind Nagle.
void setNoDelay(int FD) {
  int One = 1;
  ::setsockopt(FD, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
}

} // namespace

//===----------------------------------------------------------------------===//
// Socket
//===----------------------------------------------------------------------===//

Socket::Socket(Socket &&O) noexcept : FD(O.FD), Buffer(std::move(O.Buffer)) {
  O.FD = -1;
}

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    FD = O.FD;
    Buffer = std::move(O.Buffer);
    O.FD = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
}

void Socket::unblock() {
  if (FD >= 0)
    ::shutdown(FD, SHUT_RDWR);
}

bool Socket::sendAll(std::string_view Data, std::string &Err) {
  while (!Data.empty()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    ssize_t N = ::send(FD, Data.data(), Data.size(), MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoString("send");
      return false;
    }
    Data.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

Socket::RecvStatus Socket::recvLine(std::string &Line, size_t MaxLen,
                                    std::string &Err) {
  for (;;) {
    size_t NL = Buffer.find('\n');
    if (NL != std::string::npos) {
      Line.assign(Buffer, 0, NL);
      Buffer.erase(0, NL + 1);
      return RecvStatus::Line;
    }
    if (Buffer.size() > MaxLen)
      return RecvStatus::TooLong;
    char Chunk[16384];
    ssize_t N = ::recv(FD, Chunk, sizeof Chunk, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoString("recv");
      return RecvStatus::Error;
    }
    if (N == 0)
      return RecvStatus::Eof;
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

//===----------------------------------------------------------------------===//
// ListenSocket
//===----------------------------------------------------------------------===//

ListenSocket::~ListenSocket() { close(); }

void ListenSocket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
}

ListenSocket::WaitStatus ListenSocket::waitReadable(int TimeoutMs) {
  pollfd PFD{FD, POLLIN, 0};
  for (;;) {
    int N = ::poll(&PFD, 1, TimeoutMs);
    if (N > 0)
      return (PFD.revents & (POLLERR | POLLNVAL)) ? WaitStatus::Error
                                                  : WaitStatus::Ready;
    if (N == 0)
      return WaitStatus::Timeout;
    if (errno != EINTR)
      return WaitStatus::Error;
  }
}

bool ListenSocket::listenOn(const std::string &Host, uint16_t RequestedPort,
                            std::string &Err) {
  close();
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(RequestedPort);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "invalid bind address '" + Host + "' (want an IPv4 literal)";
    return false;
  }

  FD = ::socket(AF_INET, SOCK_STREAM, 0);
  if (FD < 0) {
    Err = errnoString("socket");
    return false;
  }
  int One = 1;
  ::setsockopt(FD, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  if (::bind(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0) {
    Err = errnoString("bind");
    close();
    return false;
  }
  if (::listen(FD, 64) != 0) {
    Err = errnoString("listen");
    close();
    return false;
  }
  socklen_t Len = sizeof Addr;
  if (::getsockname(FD, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Err = errnoString("getsockname");
    close();
    return false;
  }
  Port = ntohs(Addr.sin_port);
  return true;
}

std::optional<Socket> ListenSocket::accept(std::string &Err) {
  for (;;) {
    int C = ::accept(FD, nullptr, nullptr);
    if (C >= 0) {
      setNoDelay(C);
      return Socket(C);
    }
    if (errno == EINTR)
      continue;
    Err = errnoString("accept");
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// connectTo
//===----------------------------------------------------------------------===//

std::optional<Socket> bec::serve::connectTo(const std::string &Host,
                                            uint16_t Port, std::string &Err) {
  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Infos = nullptr;
  std::string Service = std::to_string(Port);
  int GAI = ::getaddrinfo(Host.c_str(), Service.c_str(), &Hints, &Infos);
  if (GAI != 0) {
    Err = "cannot resolve '" + Host + "': " + ::gai_strerror(GAI);
    return std::nullopt;
  }

  std::string LastErr = "no addresses";
  for (addrinfo *AI = Infos; AI; AI = AI->ai_next) {
    int FD = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (FD < 0) {
      LastErr = errnoString("socket");
      continue;
    }
    if (::connect(FD, AI->ai_addr, AI->ai_addrlen) == 0) {
      ::freeaddrinfo(Infos);
      setNoDelay(FD);
      return Socket(FD);
    }
    LastErr = errnoString("connect");
    ::close(FD);
  }
  ::freeaddrinfo(Infos);
  Err = "cannot connect to " + Host + ":" + Service + " (" + LastErr + ")";
  return std::nullopt;
}
