//===- serve/Protocol.h - The becd wire protocol ---------------------------===//
///
/// \file
/// Framing and message types of the becd analysis service: a line-oriented
/// JSON-RPC dialect over any byte stream. One frame = one JSON document +
/// '\n'. Three frame shapes:
///
///   handshake  {"bec":"becd","api":"1.0.0","protocol":1}
///              — sent by the server immediately on connect, before any
///                request. Clients verify the protocol revision and the
///                API major version (both pinned to BEC_API_VERSION).
///   request    {"id":7,"method":"analyze","params":{...},
///               "trace":{"trace_id":"<32 hex>","parent_span":"<16 hex>"}}
///              — ids are client-chosen uint64s, echoed verbatim; params
///                is an optional object. `trace` is an optional
///                W3C-traceparent-shaped distributed-tracing context
///                (additive in revision 1: parsers ignore unknown
///                members, so old peers pass it through or drop it
///                harmlessly); a server that understands it records its
///                handling spans in the obs span ring for `trace/dump`
///                and propagates the context on any forward.
///   response   {"id":7,"result":...}
///              {"id":7,"error":{"code":-32600,"name":"invalid_request",
///                               "message":"...","data":...}}
///              — exactly one of result/error; data is optional
///                structured detail (e.g. assembler diagnostics).
///   progress   {"id":7,"progress":{...}}
///              — zero or more may precede the response of a *streaming*
///                method (currently only `campaign/run`, and only when
///                its params request progress), echoing the request id.
///                Additive in revision 1: a client never receives one
///                unless it asked a streaming method for it.
///
/// Error codes follow JSON-RPC 2.0 for protocol-level failures and use a
/// positive becd range for domain failures; see ErrorCode. The full
/// method table lives in serve/Service.h and docs/serve.md.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SERVE_PROTOCOL_H
#define BEC_SERVE_PROTOCOL_H

#include "support/JsonParse.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bec {
namespace serve {

/// Wire protocol revision; bumps only on incompatible framing changes
/// (the API payload shape is versioned by BEC_API_VERSION instead).
constexpr int ProtocolVersion = 1;

/// Default TCP port of `bec serve`.
constexpr uint16_t DefaultPort = 4690;

/// Hard cap on one frame in either direction: a peer that streams more
/// than this without a newline is cut off (DoS guard).
constexpr size_t MaxFrameBytes = 8u << 20;

/// Typed failure codes carried by error responses.
enum class ErrorCode : int {
  // Protocol-level (JSON-RPC 2.0 compatible).
  ParseError = -32700,     ///< Frame is not valid JSON.
  InvalidRequest = -32600, ///< Valid JSON, but not a request shape.
  MethodNotFound = -32601, ///< Unknown method name.
  InvalidParams = -32602,  ///< Params missing/mistyped for the method.
  InternalError = -32603,  ///< Server-side failure.
  // becd domain errors (positive range).
  VersionMismatch = 100, ///< Incompatible handshake (client-side).
  BadTarget = 101,       ///< Unknown workload or interned program name.
  BadAsm = 102,          ///< `intern` source failed to assemble.
  ShuttingDown = 103,    ///< Server is draining; request refused.
  TransportError = 104,  ///< Connection-level failure (client-side).
  Overloaded = 105,      ///< Admission control: worker queue full.
  Draining = 106,        ///< Connection draining; queued request refused.
  NoBackend = 107,       ///< Gateway: no healthy backend for the request.
};

/// Stable snake_case name of \p C (part of the wire format).
const char *errorCodeName(ErrorCode C);

/// Optional distributed-tracing context of a request (W3C-traceparent
/// shaped: 128-bit trace id + 64-bit parent span id, lowercase hex).
struct TraceContext {
  std::string TraceId;    ///< 32 hex chars; empty = no context.
  std::string ParentSpan; ///< 16 hex chars; may be empty at the root.

  bool valid() const { return !TraceId.empty(); }
};

/// One parsed request.
struct Request {
  uint64_t Id = 0;
  std::string Method;
  JsonValue Params; ///< Object, or null when the request sent none.
  TraceContext Trace; ///< Engaged (valid()) when the frame carried one.
};

/// Outcome of parsing one request frame: either a Request or a typed
/// error to send back (with the request id when one could be recovered).
struct ParsedFrame {
  std::optional<Request> Req;
  ErrorCode Code = ErrorCode::ParseError;
  std::string Message;
  std::optional<uint64_t> Id;
};

ParsedFrame parseRequestFrame(std::string_view Line);

/// One parsed response (client side).
struct Response {
  uint64_t Id = 0;
  bool IsError = false;
  JsonValue Result;             ///< Engaged when !IsError.
  ErrorCode Code = ErrorCode::InternalError;
  std::string ErrorName;
  std::string Message;
  JsonValue ErrorData; ///< Null unless the server attached detail.
};

/// nullopt (with a diagnostic) when \p Line is not a valid response frame.
std::optional<Response> parseResponseFrame(std::string_view Line,
                                           std::string &Err);

/// One parsed progress frame of a streaming method (client side).
struct ProgressFrame {
  uint64_t Id = 0;
  JsonValue Progress;
};

/// nullopt when \p Line is not a progress frame (it may still be a valid
/// response frame; callers probe progress first).
std::optional<ProgressFrame> parseProgressFrame(std::string_view Line);

// Frame builders. All return complete frames including the trailing
// newline. *Json arguments must already be serialized JSON values.
std::string makeRequestFrame(uint64_t Id, std::string_view Method,
                             std::string_view ParamsJson,
                             const TraceContext &Trace = {});
std::string makeResultFrame(uint64_t Id, std::string_view ResultJson);
std::string makeErrorFrame(std::optional<uint64_t> Id, ErrorCode C,
                           std::string_view Message,
                           std::string_view DataJson = {});
std::string makeProgressFrame(uint64_t Id, std::string_view ProgressJson);

/// The server's greeting.
struct Handshake {
  std::string Server;     ///< "becd".
  std::string ApiVersion; ///< BEC_API_VERSION_STRING of the server.
  int Protocol = 0;       ///< ProtocolVersion of the server.
};

std::string makeHandshakeFrame();
std::optional<Handshake> parseHandshakeFrame(std::string_view Line);

/// Empty when \p H is compatible with this build; otherwise the reason
/// (protocol revision or API major mismatch).
std::string handshakeIncompatibility(const Handshake &H);

} // namespace serve
} // namespace bec

#endif // BEC_SERVE_PROTOCOL_H
