//===- serve/Client.cpp - becd client --------------------------------------===//

#include "serve/Client.h"

#include "serve/Service.h"

#include <stdexcept>

using namespace bec;
using namespace bec::serve;

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

bool SocketTransport::greeting(std::string &Line, std::string &Err) {
  return Conn.recvLine(Line, MaxFrameBytes, Err) == Socket::RecvStatus::Line;
}

bool SocketTransport::exchange(
    const std::string &RequestFrame,
    const std::function<bool(std::string_view Line)> &OnFrame,
    std::string &Err) {
  if (!Conn.sendAll(RequestFrame, Err))
    return false;
  std::string Line;
  for (;;) {
    Socket::RecvStatus St = Conn.recvLine(Line, MaxFrameBytes, Err);
    if (St != Socket::RecvStatus::Line) {
      if (Err.empty())
        Err = St == Socket::RecvStatus::TooLong
                  ? "response frame too large"
                  : "connection closed by server";
      return false;
    }
    if (!OnFrame(Line))
      return true;
  }
}

bool LoopbackTransport::greeting(std::string &Line, std::string &Err) {
  (void)Err;
  Line = Svc.handshakeFrame();
  if (!Line.empty() && Line.back() == '\n')
    Line.pop_back();
  return true;
}

bool LoopbackTransport::exchange(
    const std::string &RequestFrame,
    const std::function<bool(std::string_view Line)> &OnFrame,
    std::string &Err) {
  (void)Err;
  // handleFrameStreaming takes the line without framing newline, like
  // the server's connection loop after recvLine.
  std::string_view Line = RequestFrame;
  if (!Line.empty() && Line.back() == '\n')
    Line.remove_suffix(1);
  std::vector<std::string> Intermediate;
  std::string Final = Svc.handleFrameStreaming(
      Line, [&](const std::string &Frame) { Intermediate.push_back(Frame); });
  auto StripNewline = [](std::string_view F) {
    if (!F.empty() && F.back() == '\n')
      F.remove_suffix(1);
    return F;
  };
  for (const std::string &Frame : Intermediate)
    if (!OnFrame(StripNewline(Frame)))
      return true;
  OnFrame(StripNewline(Final));
  return true;
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

std::string Reply::errorText() const {
  std::string Out = "server error " + std::to_string(int(Code)) + " (" +
                    (ErrorName.empty() ? errorCodeName(Code) : ErrorName) +
                    "): " + Message;
  return Out;
}

std::optional<Client> Client::over(std::unique_ptr<Transport> T,
                                   std::string &Err) {
  Client C;
  C.T = std::move(T);
  std::string Line;
  if (!C.T->greeting(Line, Err)) {
    if (Err.empty())
      Err = "no handshake from server";
    return std::nullopt;
  }
  std::optional<Handshake> HS = parseHandshakeFrame(Line);
  if (!HS) {
    Err = "invalid handshake frame from server";
    return std::nullopt;
  }
  std::string Why = handshakeIncompatibility(*HS);
  if (!Why.empty()) {
    Err = Why;
    return std::nullopt;
  }
  C.HS = std::move(*HS);
  return C;
}

std::optional<Client> Client::connect(const std::string &Host, uint16_t Port,
                                      std::string &Err) {
  std::optional<Socket> Conn = connectTo(Host, Port, Err);
  if (!Conn)
    return std::nullopt;
  return over(std::make_unique<SocketTransport>(std::move(*Conn)), Err);
}

Client Client::loopback(Service &Svc) {
  std::string Err;
  std::optional<Client> C =
      over(std::make_unique<LoopbackTransport>(Svc), Err);
  // A loopback handshake can only fail if this build disagrees with
  // itself; that is a programming error, not a runtime condition.
  if (!C)
    throw std::logic_error("loopback handshake failed: " + Err);
  return std::move(*C);
}

Reply Client::call(std::string_view Method, std::string_view ParamsJson) {
  return callStreaming(Method, ParamsJson, nullptr);
}

Reply Client::callStreaming(
    std::string_view Method, std::string_view ParamsJson,
    const std::function<void(const JsonValue &)> &OnProgress) {
  return forwardRaw(
      NextId++, Method, ParamsJson,
      [&](std::string_view Raw) {
        if (!OnProgress)
          return;
        if (std::optional<ProgressFrame> P = parseProgressFrame(Raw))
          OnProgress(P->Progress);
      },
      nullptr);
}

Reply Client::forwardRaw(
    uint64_t Id, std::string_view Method, std::string_view ParamsJson,
    const std::function<void(std::string_view RawFrame)> &OnProgressFrame,
    std::string *FinalFrame) {
  Reply R;
  std::string Frame = makeRequestFrame(Id, Method, ParamsJson, Trace);
  std::string Err, FrameErr;
  std::optional<Response> Resp;
  bool Transported = T->exchange(
      Frame,
      [&](std::string_view Line) {
        // Progress frames (matched by id) keep the exchange open; any
        // other frame is the final response.
        if (std::optional<ProgressFrame> P = parseProgressFrame(Line)) {
          if (P->Id == Id && OnProgressFrame)
            OnProgressFrame(Line);
          return true;
        }
        Resp = parseResponseFrame(Line, FrameErr);
        if (Resp && FinalFrame)
          *FinalFrame = Line;
        return false;
      },
      Err);
  if (!Transported) {
    R.Code = ErrorCode::TransportError;
    R.Message = Err;
    return R;
  }
  if (!Resp) {
    R.Code = ErrorCode::TransportError;
    R.Message = FrameErr.empty() ? "no response frame" : FrameErr;
    return R;
  }
  if (Resp->Id != Id) {
    R.Code = ErrorCode::TransportError;
    R.Message = "response id " + std::to_string(Resp->Id) +
                " does not match request id " + std::to_string(Id);
    return R;
  }
  if (Resp->IsError) {
    R.Code = Resp->Code;
    R.ErrorName = std::move(Resp->ErrorName);
    R.Message = std::move(Resp->Message);
    R.ErrorData = std::move(Resp->ErrorData);
    return R;
  }
  R.Ok = true;
  R.Result = std::move(Resp->Result);
  return R;
}
