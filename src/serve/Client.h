//===- serve/Client.h - becd client over TCP or in-process loopback -------===//
///
/// \file
/// The client half of the becd protocol. A Client drives request/response
/// round-trips over a Transport:
///
///  * SocketTransport — a real TCP connection (what `bec client` and the
///    driver's `--remote host:port` use);
///  * LoopbackTransport — calls a Service in-process, no sockets. Same
///    frames, same handshake validation, fully deterministic: the unit
///    tests' and embedders' way to exercise the protocol.
///
/// Connecting validates the server handshake against this build's
/// BEC_API_VERSION / ProtocolVersion before any request is sent.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SERVE_CLIENT_H
#define BEC_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "serve/Socket.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace bec {
namespace serve {

class Service;

/// One request/response channel. greeting() must be called (and checked)
/// once before the first exchange.
class Transport {
public:
  virtual ~Transport() = default;
  /// Receives the server's handshake frame (without trailing newline).
  virtual bool greeting(std::string &Line, std::string &Err) = 0;
  /// Sends one request frame, then delivers response lines (without
  /// trailing newline) to \p OnFrame until it returns false — the
  /// caller's signal that the final frame of the exchange arrived.
  /// Streaming methods deliver any progress frames first; unary methods
  /// deliver exactly one line.
  virtual bool
  exchange(const std::string &RequestFrame,
           const std::function<bool(std::string_view Line)> &OnFrame,
           std::string &Err) = 0;
};

/// Blocking TCP transport owning its socket.
class SocketTransport : public Transport {
public:
  explicit SocketTransport(Socket Conn) : Conn(std::move(Conn)) {}
  bool greeting(std::string &Line, std::string &Err) override;
  bool exchange(const std::string &RequestFrame,
                const std::function<bool(std::string_view Line)> &OnFrame,
                std::string &Err) override;

private:
  Socket Conn;
};

/// In-process transport calling Service::handleFrameStreaming directly.
/// Progress frames are buffered and replayed to OnFrame in emission
/// order before the final frame (the engine runs to completion inside
/// the call), preserving the wire ordering contract deterministically.
class LoopbackTransport : public Transport {
public:
  explicit LoopbackTransport(Service &Svc) : Svc(Svc) {}
  bool greeting(std::string &Line, std::string &Err) override;
  bool exchange(const std::string &RequestFrame,
                const std::function<bool(std::string_view Line)> &OnFrame,
                std::string &Err) override;

private:
  Service &Svc;
};

/// The outcome of one call: a parsed result or a typed error (which may
/// be server-sent or synthesized client-side for transport failures).
struct Reply {
  bool Ok = false;
  JsonValue Result;
  ErrorCode Code = ErrorCode::InternalError;
  std::string ErrorName;
  std::string Message;
  JsonValue ErrorData;

  /// Formats the error for a CLI diagnostic.
  std::string errorText() const;
};

class Client {
public:
  /// Connects over TCP and validates the handshake. nullopt with a
  /// diagnostic on connection or version failure.
  static std::optional<Client> connect(const std::string &Host, uint16_t Port,
                                       std::string &Err);

  /// In-process client over \p Svc (handshake validated the same way).
  static Client loopback(Service &Svc);

  /// Custom transport (tests injecting faults).
  static std::optional<Client> over(std::unique_ptr<Transport> T,
                                    std::string &Err);

  /// Calls \p Method. \p ParamsJson must be a serialized JSON object, or
  /// empty for no params.
  Reply call(std::string_view Method, std::string_view ParamsJson = {});

  /// Calls a streaming method: progress frames matching this request's
  /// id are handed to \p OnProgress (in order, before callStreaming
  /// returns), the final frame becomes the Reply. With a null callback
  /// progress frames are consumed silently, so a streaming method called
  /// through call() behaves exactly like its unary sibling.
  Reply callStreaming(std::string_view Method, std::string_view ParamsJson,
                      const std::function<void(const JsonValue &)> &OnProgress);

  /// The gateway's forwarding primitive: issues \p Method under the
  /// caller-chosen request \p Id and hands every received frame —
  /// progress frames and the final response, each without its trailing
  /// newline — to \p OnRawFrame verbatim, so a proxy that picked Id to
  /// match its downstream request can relay the exact upstream bytes.
  /// The parsed Reply is still returned for routing decisions: Ok,
  /// server error codes, or a synthesized TransportError (in which case
  /// no final frame was delivered and the caller may fail over).
  Reply forwardRaw(uint64_t Id, std::string_view Method,
                   std::string_view ParamsJson,
                   const std::function<void(std::string_view RawFrame)>
                       &OnProgressFrame,
                   std::string *FinalFrame);

  const Handshake &serverHandshake() const { return HS; }

  /// Arms distributed tracing: every subsequent frame this client sends
  /// carries \p Ctx in its `trace` envelope member (the driver sets it
  /// under `--trace-out`; the gateway sets it per forwarded request with
  /// its own span as the parent). A default-constructed context disarms.
  void setTrace(TraceContext Ctx) { Trace = std::move(Ctx); }
  const TraceContext &trace() const { return Trace; }

private:
  Client() = default;

  std::unique_ptr<Transport> T;
  Handshake HS;
  TraceContext Trace;
  uint64_t NextId = 1;
};

} // namespace serve
} // namespace bec

#endif // BEC_SERVE_CLIENT_H
