//===- serve/Socket.h - Blocking TCP sockets for the becd transport -------===//
///
/// \file
/// Thin RAII wrappers over POSIX stream sockets: a connected Socket with
/// buffered newline-delimited reads (the becd framing unit), a
/// ListenSocket that can bind ephemeral ports and be woken out of a
/// blocking accept(), and a name-resolving connectTo(). Blocking I/O
/// throughout — concurrency is the server's job (one connection per
/// ThreadPool task), not the transport's. No third-party dependencies.
///
/// Thread-safety: a Socket is owned by one thread at a time, with one
/// exception — unblock() may be called from another thread to force a
/// blocked recv/accept to return (the server's shutdown path).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SERVE_SOCKET_H
#define BEC_SERVE_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bec {
namespace serve {

/// A connected, blocking stream socket with buffered line reads.
class Socket {
public:
  Socket() = default;
  /// Takes ownership of \p FD (a connected socket).
  explicit Socket(int FD) : FD(FD) {}
  Socket(Socket &&O) noexcept;
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;
  ~Socket();

  bool valid() const { return FD >= 0; }
  int fd() const { return FD; }
  void close();
  /// Half-closes both directions without releasing the descriptor: a recv
  /// blocked on this socket (possibly in another thread) returns EOF.
  void unblock();

  /// Sends all of \p Data (retrying short writes). False on any error.
  bool sendAll(std::string_view Data, std::string &Err);

  enum class RecvStatus {
    Line,    ///< One line read; \p Line holds it without the newline.
    Eof,     ///< Orderly close with no buffered line.
    TooLong, ///< The peer sent more than \p MaxLen bytes without a newline.
    Error,   ///< Transport error; \p Err describes it.
  };

  /// Reads the next '\n'-terminated line. A final unterminated chunk
  /// before EOF is not delivered as a line (frames end in newline).
  RecvStatus recvLine(std::string &Line, size_t MaxLen, std::string &Err);

private:
  int FD = -1;
  std::string Buffer; ///< Read-ahead past the last returned line.
};

/// A listening TCP socket (IPv4).
class ListenSocket {
public:
  ListenSocket() = default;
  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;
  ~ListenSocket();

  /// Binds \p Host:\p Port (port 0 picks an ephemeral port; see
  /// boundPort()) and listens. False with a diagnostic on failure.
  bool listenOn(const std::string &Host, uint16_t Port, std::string &Err);

  /// The actually bound port (resolves port-0 requests).
  uint16_t boundPort() const { return Port; }

  /// The raw listening descriptor (for event loops that poll and accept
  /// it themselves; see net/EventLoop.h). -1 when not listening.
  int fd() const { return FD; }

  enum class WaitStatus { Ready, Timeout, Error };

  /// Polls for a pending connection for up to \p TimeoutMs. Acceptor
  /// loops interleave this with a stop-flag check: accept(2) on a
  /// listening socket cannot be woken portably from another thread.
  WaitStatus waitReadable(int TimeoutMs);

  /// Blocks for the next connection. nullopt on error.
  std::optional<Socket> accept(std::string &Err);
  void close();
  bool valid() const { return FD >= 0; }

private:
  int FD = -1;
  uint16_t Port = 0;
};

/// Resolves \p Host (numeric or named) and connects. nullopt with a
/// diagnostic on failure.
std::optional<Socket> connectTo(const std::string &Host, uint16_t Port,
                                std::string &Err);

} // namespace serve
} // namespace bec

#endif // BEC_SERVE_SOCKET_H
