//===- serve/Protocol.cpp - The becd wire protocol -------------------------===//

#include "serve/Protocol.h"

#include "api/Api.h"
#include "support/Json.h"

using namespace bec;
using namespace bec::serve;

const char *bec::serve::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::ParseError:
    return "parse_error";
  case ErrorCode::InvalidRequest:
    return "invalid_request";
  case ErrorCode::MethodNotFound:
    return "method_not_found";
  case ErrorCode::InvalidParams:
    return "invalid_params";
  case ErrorCode::InternalError:
    return "internal_error";
  case ErrorCode::VersionMismatch:
    return "version_mismatch";
  case ErrorCode::BadTarget:
    return "bad_target";
  case ErrorCode::BadAsm:
    return "bad_asm";
  case ErrorCode::ShuttingDown:
    return "shutting_down";
  case ErrorCode::TransportError:
    return "transport_error";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::Draining:
    return "draining";
  case ErrorCode::NoBackend:
    return "no_backend";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Request parsing
//===----------------------------------------------------------------------===//

ParsedFrame bec::serve::parseRequestFrame(std::string_view Line) {
  ParsedFrame Out;
  std::string ParseErr;
  std::optional<JsonValue> Doc = parseJson(Line, &ParseErr);
  if (!Doc) {
    Out.Code = ErrorCode::ParseError;
    Out.Message = "frame is not valid JSON (" + ParseErr + ")";
    return Out;
  }
  if (!Doc->isObject()) {
    Out.Code = ErrorCode::InvalidRequest;
    Out.Message = "request frame must be a JSON object";
    return Out;
  }
  // Recover the id first so even malformed requests echo it.
  std::optional<uint64_t> Id = Doc->memberU64("id");
  Out.Id = Id;
  if (!Id) {
    Out.Code = ErrorCode::InvalidRequest;
    Out.Message = "request needs an unsigned integer 'id'";
    return Out;
  }
  const std::string *Method = Doc->memberString("method");
  if (!Method || Method->empty()) {
    Out.Code = ErrorCode::InvalidRequest;
    Out.Message = "request needs a non-empty string 'method'";
    return Out;
  }
  const JsonValue *Params = Doc->member("params");
  if (Params && !Params->isObject() && !Params->isNull()) {
    Out.Code = ErrorCode::InvalidParams;
    Out.Message = "'params' must be an object when present";
    return Out;
  }

  Request R;
  R.Id = *Id;
  R.Method = *Method;
  if (Params)
    R.Params = *Params;
  // Optional distributed-tracing context. Tolerant by design: a missing
  // or malformed `trace` member never fails the request — tracing is
  // best-effort metadata, and an old client (or a non-object value from
  // a future revision) must keep working untraced.
  if (const JsonValue *Trace = Doc->member("trace"); Trace &&
      Trace->isObject()) {
    if (const std::string *TraceId = Trace->memberString("trace_id"))
      R.Trace.TraceId = *TraceId;
    if (const std::string *Parent = Trace->memberString("parent_span"))
      R.Trace.ParentSpan = *Parent;
  }
  Out.Req = std::move(R);
  return Out;
}

//===----------------------------------------------------------------------===//
// Response parsing
//===----------------------------------------------------------------------===//

std::optional<Response>
bec::serve::parseResponseFrame(std::string_view Line, std::string &Err) {
  std::string ParseErr;
  std::optional<JsonValue> Doc = parseJson(Line, &ParseErr);
  if (!Doc) {
    Err = "response is not valid JSON (" + ParseErr + ")";
    return std::nullopt;
  }
  if (!Doc->isObject()) {
    Err = "response frame must be a JSON object";
    return std::nullopt;
  }
  std::optional<uint64_t> Id = Doc->memberU64("id");
  if (!Id) {
    Err = "response has no unsigned integer 'id'";
    return std::nullopt;
  }
  Response R;
  R.Id = *Id;
  if (const JsonValue *E = Doc->member("error")) {
    if (!E->isObject()) {
      Err = "response 'error' must be an object";
      return std::nullopt;
    }
    R.IsError = true;
    if (const JsonValue *Code = E->member("code"))
      if (auto I = Code->asI64())
        R.Code = static_cast<ErrorCode>(*I);
    if (const std::string *Name = E->memberString("name"))
      R.ErrorName = *Name;
    if (const std::string *Message = E->memberString("message"))
      R.Message = *Message;
    if (const JsonValue *Data = E->member("data"))
      R.ErrorData = *Data;
    return R;
  }
  const JsonValue *Result = Doc->member("result");
  if (!Result) {
    Err = "response has neither 'result' nor 'error'";
    return std::nullopt;
  }
  R.Result = *Result;
  return R;
}

std::optional<ProgressFrame>
bec::serve::parseProgressFrame(std::string_view Line) {
  std::optional<JsonValue> Doc = parseJson(Line);
  if (!Doc || !Doc->isObject())
    return std::nullopt;
  std::optional<uint64_t> Id = Doc->memberU64("id");
  const JsonValue *Progress = Doc->member("progress");
  if (!Id || !Progress || !Progress->isObject())
    return std::nullopt;
  ProgressFrame P;
  P.Id = *Id;
  P.Progress = *Progress;
  return P;
}

//===----------------------------------------------------------------------===//
// Frame builders
//===----------------------------------------------------------------------===//

std::string bec::serve::makeRequestFrame(uint64_t Id, std::string_view Method,
                                         std::string_view ParamsJson,
                                         const TraceContext &Trace) {
  JsonWriter W;
  W.beginObject();
  W.key("id").value(Id);
  W.key("method").value(Method);
  W.endObject();
  std::string Out = W.take();
  if (!ParamsJson.empty()) {
    // Splice the pre-serialized params in before the closing brace.
    Out.pop_back();
    Out += ",\"params\":";
    Out += ParamsJson;
    Out += '}';
  }
  if (Trace.valid()) {
    JsonWriter TW;
    TW.beginObject();
    TW.key("trace_id").value(Trace.TraceId);
    if (!Trace.ParentSpan.empty())
      TW.key("parent_span").value(Trace.ParentSpan);
    TW.endObject();
    Out.pop_back();
    Out += ",\"trace\":";
    Out += TW.take();
    Out += '}';
  }
  Out += '\n';
  return Out;
}

std::string bec::serve::makeResultFrame(uint64_t Id,
                                        std::string_view ResultJson) {
  std::string Out = "{\"id\":" + std::to_string(Id) + ",\"result\":";
  Out += ResultJson.empty() ? std::string_view("null") : ResultJson;
  Out += "}\n";
  return Out;
}

std::string bec::serve::makeErrorFrame(std::optional<uint64_t> Id, ErrorCode C,
                                       std::string_view Message,
                                       std::string_view DataJson) {
  JsonWriter W;
  W.beginObject();
  if (Id)
    W.key("id").value(*Id);
  else
    W.key("id").value(uint64_t(0)); // Unrecoverable id: 0 by convention.
  W.key("error").beginObject();
  W.key("code").value(static_cast<int64_t>(C));
  W.key("name").value(errorCodeName(C));
  W.key("message").value(Message);
  W.endObject();
  W.endObject();
  std::string Out = W.take();
  if (!DataJson.empty()) {
    // Attach structured detail inside the error object.
    Out.pop_back(); // outer '}'
    Out.pop_back(); // error '}'
    Out += ",\"data\":";
    Out += DataJson;
    Out += "}}";
  }
  Out += '\n';
  return Out;
}

std::string bec::serve::makeProgressFrame(uint64_t Id,
                                          std::string_view ProgressJson) {
  std::string Out = "{\"id\":" + std::to_string(Id) + ",\"progress\":";
  Out += ProgressJson.empty() ? std::string_view("{}") : ProgressJson;
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Handshake
//===----------------------------------------------------------------------===//

std::string bec::serve::makeHandshakeFrame() {
  JsonWriter W;
  W.beginObject();
  W.key("bec").value("becd");
  W.key("api").value(BEC_API_VERSION_STRING);
  W.key("protocol").value(int64_t(ProtocolVersion));
  W.endObject();
  return W.take() + "\n";
}

std::optional<Handshake>
bec::serve::parseHandshakeFrame(std::string_view Line) {
  std::optional<JsonValue> Doc = parseJson(Line);
  if (!Doc || !Doc->isObject())
    return std::nullopt;
  const std::string *Server = Doc->memberString("bec");
  const std::string *Api = Doc->memberString("api");
  std::optional<uint64_t> Protocol = Doc->memberU64("protocol");
  if (!Server || !Api || !Protocol)
    return std::nullopt;
  Handshake H;
  H.Server = *Server;
  H.ApiVersion = *Api;
  H.Protocol = static_cast<int>(*Protocol);
  return H;
}

std::string bec::serve::handshakeIncompatibility(const Handshake &H) {
  if (H.Server != "becd")
    return "peer is not a becd server (got '" + H.Server + "')";
  if (H.Protocol != ProtocolVersion)
    return "protocol revision mismatch: server speaks " +
           std::to_string(H.Protocol) + ", this client speaks " +
           std::to_string(ProtocolVersion);
  // Same major API version = compatible payload shapes (semver).
  std::string Major = H.ApiVersion.substr(0, H.ApiVersion.find('.'));
  if (Major != std::to_string(BEC_API_VERSION_MAJOR))
    return "API major version mismatch: server is " + H.ApiVersion +
           ", this client is " BEC_API_VERSION_STRING;
  return {};
}
