//===- serve/Service.cpp - The becd request router and TCP server ---------===//

#include "serve/Service.h"

#include "api/Api.h"
#include "ir/AsmParser.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Prometheus.h"
#include "obs/SpanRing.h"
#include "obs/Trace.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <exception>
#include <sys/socket.h>
#include <thread>

using namespace bec;
using namespace bec::serve;

namespace {

// The service mirrors the driver's exit-code contract (tools/Driver.h)
// without depending on it: the wire result's "exit" field is what a local
// `bec <subcommand>` would have returned.
constexpr int ExitSuccess = 0;
constexpr int ExitBadInput = 2;
constexpr int ExitUnsound = 3;

std::string hexEncode(std::string_view Bytes) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(Bytes.size() * 2);
  for (unsigned char C : Bytes) {
    Out += Digits[C >> 4];
    Out += Digits[C & 0xF];
  }
  return Out;
}

/// The shared result shape of the five subcommand methods.
std::string commandResult(bool Json, const std::string &Output,
                          const std::string &Diag, int Exit,
                          const std::string &EmitAsm) {
  JsonWriter W;
  W.beginObject();
  W.key("format").value(Json ? "json" : "text");
  W.key("exit").value(int64_t(Exit));
  W.key("output").value(Output);
  if (!Diag.empty())
    W.key("diag").value(Diag);
  if (!EmitAsm.empty())
    W.key("emit").value(EmitAsm);
  W.endObject();
  return W.take();
}

/// Per-target error reporting, identical to the driver's epilogue.
template <class R>
int diagErrors(const std::vector<std::string> &Names,
               const std::vector<std::shared_ptr<const R>> &Results,
               std::string &Diag) {
  int Exit = ExitSuccess;
  for (size_t I = 0; I < Results.size(); ++I)
    if (!Results[I]->Error.empty()) {
      Diag += "bec: " + Names[I] + ": " + Results[I]->Error + "\n";
      Exit = ExitBadInput;
    }
  return Exit;
}

} // namespace

//===----------------------------------------------------------------------===//
// Service: frame handling
//===----------------------------------------------------------------------===//

Service::Outcome Service::fail(ErrorCode C, std::string Message,
                               std::string DataJson) {
  Outcome O;
  O.Failed = true;
  O.Code = C;
  O.Message = std::move(Message);
  O.DataJson = std::move(DataJson);
  return O;
}

namespace {

/// The served method names; PerMethod keys come only from this list, so
/// a client cycling through bogus names cannot grow the daemon's stats
/// map without bound.
bool isKnownMethod(const std::string &M) {
  static const char *const Known[] = {"version",  "stats",   "shutdown",
                                      "intern",   "counts",  "analyze",
                                      "campaign", "campaign/run",
                                      "schedule", "harden",  "report",
                                      "metrics",  "trace/dump", "log/level"};
  for (const char *K : Known)
    if (M == K)
      return true;
  return false;
}

/// The per-method latency histogram, keyed by sanitized method name (the
/// known list plus "unknown", so the metric family stays bounded like
/// PerMethod). Handles are cached: registration cost is paid once per
/// method, not per request.
const obs::Histogram &methodHistogram(const std::string &Method) {
  static std::mutex Mu;
  static std::map<std::string, obs::Histogram> Hists;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Hists.find(Method);
  if (It == Hists.end())
    It = Hists
             .emplace(Method, obs::Histogram("serve.method.us{method=\"" +
                                             Method + "\"}"))
             .first;
  return It->second; // Map node references are stable.
}

} // namespace

std::string Service::handleFrame(std::string_view Line) {
  return handleFrameStreaming(Line, nullptr);
}

std::string Service::handleFrameStreaming(std::string_view Line,
                                          const FrameSink &Sink) {
  static const obs::Counter CtrRequests("serve.requests");
  static const obs::Counter CtrErrors("serve.errors");
  static const obs::Gauge GaugeInflight("serve.requests.inflight");

  CtrRequests.add();
  GaugeInflight.add(1);
  ParsedFrame F = parseRequestFrame(Line);
  const std::string StatName =
      F.Req ? (isKnownMethod(F.Req->Method) ? F.Req->Method : "unknown")
            : "unknown";
  obs::ScopedTimerUs Timer(methodHistogram(StatName));
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Requests;
    if (F.Req)
      ++PerMethod[StatName];
  }
  if (!F.Req) {
    CtrErrors.add();
    GaugeInflight.add(-1);
    if (obs::logEnabled(obs::LogLevel::Warn))
      obs::log(obs::LogLevel::Warn, "serve.request.error",
               {{"code", int64_t(F.Code)},
                {"error", std::string_view(errorCodeName(F.Code))},
                {"message", F.Message}});
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Errors;
    return makeErrorFrame(F.Id, F.Code, F.Message);
  }

  const Request &R = *F.Req;
  obs::Span SpanHandle(obs::traceActive() ? "serve." + StatName
                                          : std::string());
  // Requests carrying a distributed-trace context get a ring span (for
  // the client's later trace/dump) and trace-id-tagged log lines; both
  // are inert for untraced traffic.
  obs::RingSpanScope RingSpan(R.Trace.TraceId, R.Trace.ParentSpan,
                              "serve." + StatName);
  obs::LogRequestScope LogScope(0, StatName, R.Trace.TraceId);
  Outcome O;
  if (Shutdown.load()) {
    O = fail(ErrorCode::ShuttingDown, "server is shutting down");
  } else {
    try {
      O = dispatch(R, Sink);
    } catch (const std::exception &E) {
      O = fail(ErrorCode::InternalError,
               std::string("method '") + R.Method + "' failed: " + E.what());
    } catch (...) {
      O = fail(ErrorCode::InternalError,
               std::string("method '") + R.Method + "' failed");
    }
  }
  if (O.Failed) {
    CtrErrors.add();
    if (obs::logEnabled(obs::LogLevel::Warn))
      obs::log(obs::LogLevel::Warn, "serve.request.error",
               {{"code", int64_t(O.Code)},
                {"error", std::string_view(errorCodeName(O.Code))},
                {"message", O.Message}});
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Errors;
  }
  GaugeInflight.add(-1);
  return O.Failed ? makeErrorFrame(R.Id, O.Code, O.Message, O.DataJson)
                  : makeResultFrame(R.Id, O.ResultJson);
}

Service::Outcome Service::dispatch(const Request &R, const FrameSink &Sink) {
  const JsonValue &P = R.Params;
  if (R.Method == "version")
    return methodVersion();
  if (R.Method == "stats")
    return methodStats();
  if (R.Method == "metrics")
    return methodMetrics();
  if (R.Method == "trace/dump")
    return methodTraceDump(P);
  if (R.Method == "log/level")
    return methodLogLevel(P);
  if (R.Method == "shutdown")
    return methodShutdown();
  if (R.Method == "intern")
    return methodIntern(P);
  if (R.Method == "counts")
    return methodCounts(P);
  if (R.Method == "analyze")
    return methodAnalyze(P);
  if (R.Method == "campaign")
    return methodCampaign(P, R.Id, /*Sink=*/nullptr);
  if (R.Method == "campaign/run")
    return methodCampaign(P, R.Id, Sink);
  if (R.Method == "schedule")
    return methodSchedule(P);
  if (R.Method == "harden")
    return methodHarden(P);
  if (R.Method == "report")
    return methodReport(P);
  return fail(ErrorCode::MethodNotFound,
              "unknown method '" + R.Method + "'");
}

ServiceCounters Service::counters() const {
  ServiceCounters C;
  C.Connections = Connections.load();
  std::lock_guard<std::mutex> Lock(StatsMutex);
  C.Requests = Requests;
  C.Errors = Errors;
  C.PerMethod = PerMethod;
  return C;
}

//===----------------------------------------------------------------------===//
// Target resolution (the shared session pool)
//===----------------------------------------------------------------------===//

CachedProgramPtr Service::resolveOne(const std::string &Name,
                                     std::string &Canonical) {
  if (const Workload *W = findWorkloadAnyCase(Name)) {
    Canonical = W->Name;
    std::lock_guard<std::mutex> Lock(PoolMutex);
    auto It = NamedPrograms.find(Canonical);
    if (It != NamedPrograms.end())
      return It->second;
    CachedProgramPtr Shard = S.intern(loadWorkload(*W));
    NamedPrograms.emplace(Canonical, Shard);
    return Shard;
  }
  std::lock_guard<std::mutex> Lock(PoolMutex);
  auto It = NamedPrograms.find(Name);
  if (It == NamedPrograms.end())
    return nullptr;
  Canonical = Name;
  return It->second;
}

bool Service::resolveTargets(const JsonValue &Params, Targets &Out,
                             Outcome &Err) {
  std::vector<std::string> Requested;
  if (const JsonValue *TV = Params.member("targets")) {
    if (!TV->isNull()) {
      const std::vector<JsonValue> *Arr = TV->asArray();
      if (!Arr) {
        Err = fail(ErrorCode::InvalidParams,
                   "'targets' must be an array of strings");
        return false;
      }
      for (const JsonValue &E : *Arr) {
        const std::string *Name = E.asString();
        if (!Name) {
          Err = fail(ErrorCode::InvalidParams,
                     "'targets' must be an array of strings");
          return false;
        }
        Requested.push_back(*Name);
      }
    }
  }
  if (Requested.empty())
    for (const Workload &W : allWorkloads())
      Requested.push_back(W.Name);

  for (const std::string &Name : Requested) {
    std::string Canonical;
    CachedProgramPtr Shard = resolveOne(Name, Canonical);
    if (!Shard) {
      Err = fail(ErrorCode::BadTarget,
                 "unknown target '" + Name +
                     "' (bundled workload or interned program name)");
      return false;
    }
    // Duplicate selections collapse, exactly as the CLI's target loading.
    bool Seen = false;
    for (const std::string &Existing : Out.Names)
      Seen |= Existing == Canonical;
    if (Seen)
      continue;
    Out.Names.push_back(std::move(Canonical));
    Out.Progs.push_back(std::move(Shard));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Method implementations
//===----------------------------------------------------------------------===//

namespace {

/// Parses the optional "format" param ("text" default | "json").
bool parseFormat(const JsonValue &Params, bool &Json, std::string &Err) {
  Json = false;
  const JsonValue *F = Params.member("format");
  if (!F)
    return true;
  const std::string *Sp = F->asString();
  if (Sp) {
    std::string K = toLowerAscii(*Sp);
    if (K == "json") {
      Json = true;
      return true;
    }
    if (K == "text")
      return true;
  }
  Err = "unknown 'format' (want text | json)";
  return false;
}

/// Parses the optional "jobs" param (per-request target parallelism,
/// mirroring the CLI's --jobs; 0 = hardware concurrency, default 1).
bool parseJobs(const JsonValue &Params, unsigned &Jobs, std::string &Err) {
  Jobs = 1;
  const JsonValue *J = Params.member("jobs");
  if (!J)
    return true;
  std::optional<uint64_t> N = J->asU64();
  if (!N || *N > 1u << 16) {
    Err = "'jobs' must be a small unsigned integer";
    return false;
  }
  Jobs = static_cast<unsigned>(*N);
  return true;
}

/// Runs query \p Q over every resolved target; results in target order.
/// Multi-target requests fan out on a per-request pool (CPU-bound, so
/// clamped to the core count like every analysis pool), matching what
/// the same command would do locally with --jobs.
template <class Q>
std::vector<std::shared_ptr<const typename Q::Result>>
evalOver(AnalysisSession &S, const std::vector<CachedProgramPtr> &Progs,
         const typename Q::Options &Opts = {}, unsigned Jobs = 1) {
  std::vector<std::shared_ptr<const typename Q::Result>> Results(
      Progs.size());
  ThreadPool Pool(Progs.size() > 1 ? ThreadPool::clampJobs(Jobs) : 1);
  for (size_t I = 0; I < Progs.size(); ++I)
    Pool.submit([&, I] { Results[I] = S.get<Q>(Progs[I], Opts); });
  Pool.wait();
  return Results;
}

} // namespace

Service::Outcome Service::methodVersion() {
  JsonWriter W;
  W.beginObject();
  W.key("bec").value("becd");
  W.key("api").value(BEC_API_VERSION_STRING);
  W.key("protocol").value(int64_t(ProtocolVersion));
  W.key("build_type").value(buildType());
  W.endObject();
  Outcome O;
  O.ResultJson = W.take();
  return O;
}

Service::Outcome Service::methodStats() {
  ServiceCounters C = counters();
  SessionStats SS = S.stats();
  size_t Programs;
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    Programs = NamedPrograms.size();
  }
  obs::MetricsSnapshot Snap = obs::snapshotMetrics();
  JsonWriter W;
  W.beginObject();
  W.key("connections").value(C.Connections);
  W.key("requests").value(C.Requests);
  W.key("errors").value(C.Errors);
  W.key("methods").beginObject();
  for (const auto &[Method, Count] : C.PerMethod)
    W.key(Method).value(Count);
  W.endObject();
  // Per-method latency distributions from the obs registry (empty object
  // under BEC_OBS_DISABLED). Purely additive next to "methods".
  W.key("latency").beginObject();
  for (const obs::MetricValue &M : Snap.Metrics) {
    constexpr std::string_view Prefix = "serve.method.us{method=\"";
    if (M.Kind != obs::MetricKind::Histogram ||
        M.Name.rfind(Prefix, 0) != 0 || M.Hist.Count == 0)
      continue;
    std::string Method =
        M.Name.substr(Prefix.size(), M.Name.size() - Prefix.size() - 2);
    W.key(Method).beginObject();
    W.key("count").value(M.Hist.Count);
    W.key("p50_us").value(M.Hist.quantileUs(0.50));
    W.key("p99_us").value(M.Hist.quantileUs(0.99));
    W.key("mean_us").value(M.Hist.meanUs());
    W.endObject();
  }
  W.endObject();
  W.key("gauges").beginObject();
  for (const obs::MetricValue &M : Snap.Metrics)
    if (M.Kind == obs::MetricKind::Gauge)
      W.key(M.Name).value(int64_t(M.GaugeValue));
  W.endObject();
  W.key("session").beginObject();
  W.key("hits").value(SS.Hits);
  W.key("misses").value(SS.Misses);
  // 0/0 renders as null (the writer maps non-finite doubles to null).
  W.key("hit_rate").value(double(SS.Hits) / double(SS.Hits + SS.Misses));
  W.key("interned").value(SS.Interned);
  W.key("shards").value(SS.Shards);
  W.endObject();
  W.key("programs").value(uint64_t(Programs));
  W.endObject();
  Outcome O;
  O.ResultJson = W.take();
  return O;
}

Service::Outcome Service::methodMetrics() {
  JsonWriter W;
  W.beginObject();
  W.key("content_type").value("text/plain; version=0.0.4");
  W.key("text").value(obs::renderPrometheus(obs::snapshotMetrics()));
  W.endObject();
  Outcome O;
  O.ResultJson = W.take();
  return O;
}

Service::Outcome Service::methodTraceDump(const JsonValue &Params) {
  std::string Filter;
  if (const JsonValue *TV = Params.member("trace_id")) {
    const std::string *Sp = TV->asString();
    if (!Sp)
      return fail(ErrorCode::InvalidParams,
                  "'trace_id' must be a string when present");
    Filter = *Sp;
  }
  std::string Process = obs::spanRingProcess();
  std::vector<obs::RingSpan> Spans = obs::spanRingSnapshot(Filter);
  std::string Out = "{\"process\":";
  {
    JsonWriter PW;
    PW.value(Process);
    Out += PW.take();
  }
  Out += ",\"spans\":[";
  for (size_t I = 0; I < Spans.size(); ++I) {
    if (I)
      Out += ',';
    Out += obs::renderRingSpanJson(Spans[I], Process);
  }
  Out += "]}";
  Outcome O;
  O.ResultJson = std::move(Out);
  return O;
}

Service::Outcome Service::methodLogLevel(const JsonValue &Params) {
  if (const JsonValue *LV = Params.member("level")) {
    const std::string *Sp = LV->asString();
    std::optional<obs::LogLevel> L =
        Sp ? obs::parseLogLevel(*Sp) : std::nullopt;
    if (!L)
      return fail(ErrorCode::InvalidParams,
                  "'level' must be one of debug | info | warn | error | off");
    obs::setLogLevel(*L);
    obs::log(obs::LogLevel::Info, "log.level.changed",
             {{"level", std::string_view(obs::logLevelName(*L))}});
  }
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(true);
  W.key("level").value(obs::logLevelName(obs::logLevel()));
  W.endObject();
  Outcome O;
  O.ResultJson = W.take();
  return O;
}

Service::Outcome Service::methodShutdown() {
  Shutdown.store(true);
  Outcome O;
  O.ResultJson = "{\"ok\":true}";
  return O;
}

Service::Outcome Service::methodIntern(const JsonValue &Params) {
  const std::string *Name = Params.memberString("name");
  const std::string *Asm = Params.memberString("asm");
  if (!Name || Name->empty() || !Asm)
    return fail(ErrorCode::InvalidParams,
                "'intern' needs string params 'name' and 'asm'");
  if (findWorkloadAnyCase(*Name))
    return fail(ErrorCode::InvalidParams,
                "'" + *Name + "' collides with a bundled workload name");

  AsmParseResult R = parseAsm(*Asm, *Name);
  if (!R.succeeded()) {
    // Structured diagnostics: the AsmParser's line/col survive the wire.
    JsonWriter D;
    D.beginObject();
    D.key("diags").beginArray();
    for (const AsmDiag &G : R.Diags) {
      D.beginObject();
      D.key("line").value(uint64_t(G.Line));
      D.key("col").value(uint64_t(G.Col));
      D.key("message").value(G.Message);
      D.endObject();
    }
    D.endArray();
    D.endObject();
    return fail(ErrorCode::BadAsm, "'" + *Name + "' failed to assemble",
                D.take());
  }

  CachedProgramPtr Shard;
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    Shard = S.intern(std::move(*R.Prog));
    NamedPrograms[*Name] = Shard; // Re-interning a name rebinds it.
  }
  JsonWriter W;
  W.beginObject();
  W.key("name").value(*Name);
  W.key("instrs").value(uint64_t(Shard->program().size()));
  W.key("content_key").value(hexEncode(Shard->contentKey()));
  W.endObject();
  Outcome O;
  O.ResultJson = W.take();
  return O;
}

Service::Outcome Service::methodCounts(const JsonValue &Params) {
  const std::string *Target = Params.memberString("target");
  if (!Target)
    return fail(ErrorCode::InvalidParams,
                "'counts' needs a string param 'target'");
  std::string Canonical;
  CachedProgramPtr Shard = resolveOne(*Target, Canonical);
  if (!Shard)
    return fail(ErrorCode::BadTarget, "unknown target '" + *Target + "'");
  std::shared_ptr<const AnalyzeResult> R = S.get<AnalyzeQuery>(Shard);
  Outcome O;
  O.ResultJson = renderCountsJson(Canonical, *R);
  return O;
}

Service::Outcome Service::methodAnalyze(const JsonValue &Params) {
  Targets T;
  Outcome Err;
  if (!resolveTargets(Params, T, Err))
    return Err;
  bool Json;
  std::string FmtErr;
  if (!parseFormat(Params, Json, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);
  unsigned Jobs;
  if (!parseJobs(Params, Jobs, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);

  auto Results = evalOver<AnalyzeQuery>(S, T.Progs, {}, Jobs);
  std::string Output = Json ? renderAnalyzeJson(T.Names, Results)
                            : renderAnalyzeText(T.Names, Results);
  std::string Diag;
  int Exit = diagErrors(T.Names, Results, Diag);
  Outcome O;
  O.ResultJson = commandResult(Json, Output, Diag, Exit, {});
  return O;
}

Service::Outcome Service::methodCampaign(const JsonValue &Params, uint64_t Id,
                                         const FrameSink &Sink) {
  Targets T;
  Outcome Err;
  if (!resolveTargets(Params, T, Err))
    return Err;
  bool Json;
  std::string FmtErr;
  if (!parseFormat(Params, Json, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);
  unsigned Jobs;
  if (!parseJobs(Params, Jobs, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);

  CampaignCmdQuery::Options Opts;
  if (const JsonValue *PV = Params.member("plan")) {
    const std::string *Sp = PV->asString();
    std::string K = Sp ? toLowerAscii(*Sp) : std::string();
    if (K == "exhaustive")
      Opts.Plan = PlanKind::Exhaustive;
    else if (K == "value")
      Opts.Plan = PlanKind::ValueLevel;
    else if (K == "bit")
      Opts.Plan = PlanKind::BitLevel;
    else
      return fail(ErrorCode::InvalidParams,
                  "unknown 'plan' (want exhaustive | value | bit)");
  }
  if (const JsonValue *MC = Params.member("max_cycles")) {
    std::optional<uint64_t> N = MC->asU64();
    if (!N)
      return fail(ErrorCode::InvalidParams,
                  "'max_cycles' must be an unsigned integer");
    Opts.MaxCycles = *N;
  }
  if (const JsonValue *SV = Params.member("sample")) {
    std::optional<uint64_t> N = SV->asU64();
    if (!N)
      return fail(ErrorCode::InvalidParams,
                  "'sample' must be an unsigned integer");
    Opts.SampleSize = *N;
  }
  if (const JsonValue *SV = Params.member("seed")) {
    std::optional<uint64_t> N = SV->asU64();
    if (!N)
      return fail(ErrorCode::InvalidParams,
                  "'seed' must be an unsigned integer");
    Opts.SampleSeed = *N;
  }
  if (const JsonValue *TV = Params.member("threads")) {
    std::optional<uint64_t> N = TV->asU64();
    if (!N || *N > 1u << 16)
      return fail(ErrorCode::InvalidParams,
                  "'threads' must be a small unsigned integer");
    // CPU-bound engine pool: clamp to the core count like every other
    // analysis pool (0 = hardware concurrency).
    Opts.Exec.Threads = ThreadPool::clampJobs(static_cast<unsigned>(*N));
  }
  if (const JsonValue *SV = Params.member("shard_size")) {
    std::optional<uint64_t> N = SV->asU64();
    if (!N || *N == 0)
      return fail(ErrorCode::InvalidParams,
                  "'shard_size' must be a positive integer");
    Opts.Exec.ShardSize = *N;
  }
  bool WantProgress = false;
  if (const JsonValue *PV = Params.member("progress")) {
    std::optional<bool> B = PV->asBool();
    if (!B)
      return fail(ErrorCode::InvalidParams, "'progress' must be a boolean");
    WantProgress = *B;
  }

  // Per-target evaluation (target order preserved) with an optional
  // progress stream. Campaign options differing only in Exec fingerprint
  // identically, so this shares cache entries with the plain `campaign`
  // method. Progress frames are serialized: transports see one frame at
  // a time, and none after the final result is returned.
  std::vector<std::shared_ptr<const CampaignCmdResult>> Results(
      T.Progs.size());
  std::mutex SinkMutex;
  ThreadPool Pool(T.Progs.size() > 1 ? ThreadPool::clampJobs(Jobs) : 1);
  for (size_t I = 0; I < T.Progs.size(); ++I)
    Pool.submit([&, I] {
      CampaignCmdQuery::Options O = Opts;
      if (WantProgress && Sink) {
        std::string Target = T.Names[I];
        O.Exec.OnProgress =
            throttledProgress([&, Target](const CampaignProgress &P) {
              JsonWriter W;
              W.beginObject();
              W.key("target").value(Target);
              W.key("shards_done").value(P.ShardsDone);
              W.key("shards").value(P.TotalShards);
              W.key("runs_done").value(P.RunsDone);
              W.key("runs").value(P.TotalRuns);
              // Engine telemetry (additive; absent in older servers):
              // executed runs + elapsed give throughput, steals/rebuilds
              // explain flat thread scaling.
              W.key("executed_runs").value(P.ExecutedRuns);
              W.key("elapsed_s").value(P.ElapsedSeconds);
              W.key("steals").value(P.Steals);
              W.key("snapshot_rebuilds").value(P.SnapshotRebuilds);
              W.endObject();
              std::lock_guard<std::mutex> Lock(SinkMutex);
              Sink(makeProgressFrame(Id, W.take()));
            });
      }
      Results[I] = S.get<CampaignCmdQuery>(T.Progs[I], O);
    });
  Pool.wait();

  std::string Output = Json ? renderCampaignJson(T.Names, Results, Opts.Plan)
                            : renderCampaignText(T.Names, Results, Opts.Plan);
  std::string Diag;
  int Exit = diagErrors(T.Names, Results, Diag);
  Outcome O;
  O.ResultJson = commandResult(Json, Output, Diag, Exit, {});
  return O;
}

Service::Outcome Service::methodSchedule(const JsonValue &Params) {
  Targets T;
  Outcome Err;
  if (!resolveTargets(Params, T, Err))
    return Err;
  bool Json;
  std::string FmtErr;
  if (!parseFormat(Params, Json, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);
  unsigned Jobs;
  if (!parseJobs(Params, Jobs, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);

  int EmitPolicy = -1; // 0 = source, 1 = best, 2 = worst.
  if (const JsonValue *E = Params.member("emit")) {
    const std::string *Sp = E->asString();
    std::string K = Sp ? toLowerAscii(*Sp) : std::string();
    if (K == "source")
      EmitPolicy = 0;
    else if (K == "best")
      EmitPolicy = 1;
    else if (K == "worst")
      EmitPolicy = 2;
    else
      return fail(ErrorCode::InvalidParams,
                  "unknown 'emit' policy (want source | best | worst)");
    if (T.Names.size() != 1)
      return fail(ErrorCode::InvalidParams,
                  "'emit' requires exactly one target");
  }

  auto Results = evalOver<ScheduleCmdQuery>(S, T.Progs, {}, Jobs);
  std::string Output = Json ? renderScheduleJson(T.Names, Results)
                            : renderScheduleText(T.Names, Results);
  std::string Diag;
  int Exit = diagErrors(T.Names, Results, Diag);
  std::string Emit;
  if (EmitPolicy >= 0 && Exit == ExitSuccess)
    Emit = Results[0]->PolicyAsm[EmitPolicy];
  Outcome O;
  O.ResultJson = commandResult(Json, Output, Diag, Exit, Emit);
  return O;
}

Service::Outcome Service::methodHarden(const JsonValue &Params) {
  Targets T;
  Outcome Err;
  if (!resolveTargets(Params, T, Err))
    return Err;
  bool Json;
  std::string FmtErr;
  if (!parseFormat(Params, Json, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);
  unsigned Jobs;
  if (!parseJobs(Params, Jobs, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);

  HardenCmdQuery::Options Opts;
  if (const JsonValue *BV = Params.member("budgets")) {
    const std::vector<JsonValue> *Arr = BV->asArray();
    if (!Arr || Arr->empty())
      return fail(ErrorCode::InvalidParams,
                  "'budgets' must be a non-empty array of numbers");
    Opts.Budgets.clear();
    for (const JsonValue &E : *Arr) {
      std::optional<double> B = E.asDouble();
      if (!B || !(*B >= 0))
        return fail(ErrorCode::InvalidParams,
                    "'budgets' entries must be non-negative numbers");
      Opts.Budgets.push_back(*B);
    }
  }
  bool EmitAsm = false;
  if (const JsonValue *E = Params.member("emit")) {
    std::optional<bool> B = E->asBool();
    if (!B)
      return fail(ErrorCode::InvalidParams, "'emit' must be a boolean");
    EmitAsm = *B;
    if (EmitAsm && (T.Names.size() != 1 || Opts.Budgets.size() != 1))
      return fail(ErrorCode::InvalidParams,
                  "'emit' requires exactly one target and one budget");
  }

  auto Results = evalOver<HardenCmdQuery>(S, T.Progs, Opts, Jobs);
  std::string Output = Json ? renderHardenJson(T.Names, Results, Opts.Budgets)
                            : renderHardenText(T.Names, Results, Opts.Budgets);
  std::string Diag;
  int Exit = diagErrors(T.Names, Results, Diag);
  if (Exit == ExitSuccess)
    for (size_t I = 0; I < Results.size(); ++I)
      for (const HardenPoint &P : Results[I]->Points)
        if (!P.Check.ok()) {
          Diag += "bec: " + T.Names[I] +
                  ": hardened program failed validation\n";
          Exit = ExitUnsound;
        }
  std::string Emit;
  if (EmitAsm && Exit == ExitSuccess)
    Emit = Results[0]->Points[0].Harden.HP.Prog.toString();
  Outcome O;
  O.ResultJson = commandResult(Json, Output, Diag, Exit, Emit);
  return O;
}

Service::Outcome Service::methodReport(const JsonValue &Params) {
  Targets T;
  Outcome Err;
  if (!resolveTargets(Params, T, Err))
    return Err;
  bool Json;
  std::string FmtErr;
  if (!parseFormat(Params, Json, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);
  unsigned Jobs;
  if (!parseJobs(Params, Jobs, FmtErr))
    return fail(ErrorCode::InvalidParams, FmtErr);

  ReportCmdQuery::Options Opts;
  if (const JsonValue *MC = Params.member("max_cycles")) {
    std::optional<uint64_t> N = MC->asU64();
    if (!N)
      return fail(ErrorCode::InvalidParams,
                  "'max_cycles' must be an unsigned integer");
    Opts.MaxCycles = *N;
  }

  auto Results = evalOver<ReportCmdQuery>(S, T.Progs, Opts, Jobs);
  std::string Output = Json ? renderReportJson(T.Names, Results)
                            : renderReportText(T.Names, Results);
  std::string Diag;
  int Exit = diagErrors(T.Names, Results, Diag);
  if (Exit == ExitSuccess)
    for (const auto &R : Results)
      if (!R->Validation.sound())
        Exit = ExitUnsound;
  Outcome O;
  O.ResultJson = commandResult(Json, Output, Diag, Exit, {});
  return O;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

// Connection handlers are I/O-bound (they mostly block in recv), so the
// pool is NOT clamped to the core count like CPU-bound --jobs pools: an
// inline pool would wedge the acceptor behind the first open connection.
// At least two handlers, at most a sane cap.
static unsigned connectionJobs(unsigned Requested) {
  if (Requested < 2)
    return 2;
  return Requested > 64 ? 64 : Requested;
}

Server::Server(Service &Svc, Options O)
    : Svc(Svc), Opts(std::move(O)), Pool(connectionJobs(Opts.Jobs)) {}

bool Server::start(std::string &Err) {
  return Listener.listenOn(Opts.Host, Opts.Port, Err);
}

void Server::run() {
  while (!Stopping.load()) {
    // accept(2) on a listening socket cannot be woken portably from
    // another thread; poll in short slices and re-check the stop flag.
    ListenSocket::WaitStatus WS = Listener.waitReadable(/*TimeoutMs=*/100);
    if (WS == ListenSocket::WaitStatus::Timeout)
      continue;
    if (WS == ListenSocket::WaitStatus::Error)
      break;
    std::string Err;
    std::optional<Socket> Conn = Listener.accept(Err);
    if (!Conn) {
      // Transient per-connection failures (ECONNABORTED from a client
      // resetting mid-handshake, EMFILE under fd pressure) must not take
      // the daemon down; back off briefly and keep accepting.
      if (Stopping.load())
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      if (Stopping.load())
        break; // Conn closes via its destructor.
      OpenConns.insert(Conn->fd());
    }
    Svc.noteConnection();
    static const obs::Gauge GaugeOpen("serve.connections.open");
    static const obs::Gauge GaugeQueued("serve.queue.depth");
    static const obs::Histogram QueueUs("serve.queue.us");
    static const obs::Counter RejOverload("serve.rejected.overload");
    if (Active.load() >= connectionJobs(Opts.Jobs) &&
        Queued.load() >= Opts.MaxQueued) {
      // Every handler is busy and the wait line is full: typed
      // backpressure instead of an unbounded queue (error table in
      // docs/serve.md).
      RejOverload.add();
      rejectOverloaded(std::move(*Conn));
      continue;
    }
    GaugeOpen.add(1);
    GaugeQueued.add(1);
    Queued.fetch_add(1);
    auto Accepted = std::chrono::steady_clock::now();
    auto Shared = std::make_shared<Socket>(std::move(*Conn));
    Pool.submit([this, Shared, Accepted] {
      // Time between accept and a handler picking the connection up: the
      // queue-wait clients see when all handler slots are busy.
      auto WaitUs = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - Accepted)
                        .count();
      QueueUs.observeUs(WaitUs < 0 ? 0 : uint64_t(WaitUs));
      GaugeQueued.add(-1);
      Queued.fetch_sub(1);
      Active.fetch_add(1);
      serveConnection(*Shared);
      Active.fetch_sub(1);
      GaugeOpen.add(-1);
    });
  }
  requestStop(); // Idempotent: unblocks any still-draining connections.
  Pool.wait();
  Listener.close();
}

void Server::requestStop() {
  std::lock_guard<std::mutex> Lock(ConnMutex);
  Stopping.store(true);
  // Wake every connection blocked in recv; handlers then drain and
  // close. Registered fds are guaranteed un-recycled (closeConnection
  // erases under this lock before closing).
  for (int FD : OpenConns)
    ::shutdown(FD, SHUT_RDWR);
}

void Server::closeConnection(Socket &Conn) {
  std::lock_guard<std::mutex> Lock(ConnMutex);
  OpenConns.erase(Conn.fd());
  Conn.close();
}

void Server::rejectOverloaded(Socket Conn) {
  // Runs inline on the acceptor: send the handshake, wait briefly for
  // the first request (so the client's call() sees a proper error
  // response with its request id, not a bare close), answer 105 and
  // close. The short timeout keeps a slow client from wedging accepts.
  struct timeval Tv;
  Tv.tv_sec = 2;
  Tv.tv_usec = 0;
  ::setsockopt(Conn.fd(), SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  std::string Err, Line;
  if (Conn.sendAll(Svc.handshakeFrame(), Err) &&
      Conn.recvLine(Line, MaxFrameBytes, Err) == Socket::RecvStatus::Line) {
    ParsedFrame P = parseRequestFrame(Line);
    std::optional<uint64_t> Id =
        P.Req ? std::optional<uint64_t>(P.Req->Id) : P.Id;
    Conn.sendAll(makeErrorFrame(Id, ErrorCode::Overloaded,
                                "server overloaded; all " +
                                    std::to_string(connectionJobs(Opts.Jobs)) +
                                    " handlers busy and queue full"),
                 Err);
  }
  closeConnection(Conn);
}

void Server::serveConnection(Socket &Conn) {
  std::string Err;
  if (!Conn.sendAll(Svc.handshakeFrame(), Err)) {
    closeConnection(Conn);
    return;
  }
  std::string Line;
  for (;;) {
    if (Stopping.load() || Svc.isShuttingDown())
      break;
    Socket::RecvStatus St = Conn.recvLine(Line, MaxFrameBytes, Err);
    if (St == Socket::RecvStatus::TooLong) {
      Conn.sendAll(makeErrorFrame(std::nullopt, ErrorCode::ParseError,
                                  "frame exceeds " +
                                      std::to_string(MaxFrameBytes) +
                                      " bytes"),
                   Err);
      break;
    }
    if (St != Socket::RecvStatus::Line)
      break; // EOF or transport error.
    // Streaming methods emit progress frames straight onto the wire as
    // the engine completes shards; the final frame follows them. The
    // service serializes sink calls, so writes never interleave.
    static const obs::Histogram WriteUs("serve.write.us");
    bool SendFailed = false;
    std::string Response =
        Svc.handleFrameStreaming(Line, [&](const std::string &Frame) {
          if (!SendFailed && !Conn.sendAll(Frame, Err))
            SendFailed = true;
        });
    bool Sent;
    {
      obs::ScopedTimerUs Timer(WriteUs);
      Sent = !SendFailed && Conn.sendAll(Response, Err);
    }
    if (!Sent)
      break;
    if (Svc.isShuttingDown()) {
      // This connection carried the shutdown request: begin the drain.
      requestStop();
      break;
    }
  }
  closeConnection(Conn);
}
