//===- core/FaultSpace.cpp - Fault sites and fault indices -----------------===//

#include "core/FaultSpace.h"

using namespace bec;

FaultSpace::FaultSpace(const Program &Prog) : Width(Prog.Width) {
  FirstOfInstr.reserve(Prog.size() + 1);
  for (uint32_t P = 0; P < Prog.size(); ++P) {
    FirstOfInstr.push_back(static_cast<uint32_t>(Points.size()));
    const Instruction &I = Prog.instr(P);
    Reg Reads[2];
    unsigned NumReads = I.readRegs(Reads);
    for (unsigned R = 0; R < NumReads; ++R)
      Points.push_back({P, Reads[R]});
    if (I.writesReg() && !I.reads(I.Rd))
      Points.push_back({P, I.Rd});
  }
  FirstOfInstr.push_back(static_cast<uint32_t>(Points.size()));
}
