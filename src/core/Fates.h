//===- core/Fates.h - Intra-instruction coalescing rules (Algorithm 3) ----===//
///
/// \file
/// For every instruction q and every bit of every register it reads, the
/// *fate* describes what a soft error present in that bit at the moment q
/// reads it does, according to the instruction's semantics applied to the
/// abstract bit values (the paper's Algorithm 3):
///
///   * Masked      -- the corruption cannot propagate through this use
///                    (e.g. `and` with a known-zero bit, a bit shifted out,
///                    a flip that provably leaves a comparison unchanged);
///   * ToOutput(j) -- the corruption is equivalent to a corruption of bit j
///                    of the destination register after q (mv, xor, or/and
///                    with known bits, constant shifts);
///   * EvalClass(k)-- a flip of this bit provably forces the comparison /
///                    branch outcome to the known value k; all bits of the
///                    same operand with equal k are mutually equivalent
///                    (the paper's eval() rule for slt and branches);
///   * None        -- nothing can be concluded.
///
/// These fates are the "placeholder" classes of the temporary relation R'
/// in Algorithm 2; the inter-instruction step turns them into merges of
/// real fault indices.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_CORE_FATES_H
#define BEC_CORE_FATES_H

#include "analysis/BitValueAnalysis.h"
#include "ir/Program.h"
#include "support/BitUtils.h"

#include <array>
#include <cstdint>

namespace bec {

enum class FateKind : uint8_t { None, Masked, ToOutput, EvalClass };

struct Fate {
  FateKind Kind = FateKind::None;
  /// ToOutput: destination bit index. EvalClass: forced outcome (0 or 1).
  uint8_t Arg = 0;
};

/// Fates of all read-register bits of one instruction.
class InstrFates {
public:
  /// Fate of bit \p Bit of read-register \p V (None if V is not read).
  Fate fate(Reg V, unsigned Bit) const {
    for (unsigned I = 0; I < NumOperands; ++I)
      if (Operands[I].R == V)
        return Operands[I].Bits[Bit];
    return {};
  }

  /// Mutable per-operand storage (filled by computeFates).
  struct OperandFates {
    Reg R = RegZero;
    std::array<Fate, MaxRegWidth> Bits{};
  };
  std::array<OperandFates, 2> Operands;
  unsigned NumOperands = 0;
};

/// Options controlling which rule families are active (for the ablation
/// study; everything on by default).
struct FateOptions {
  bool BitwiseRules = true; ///< mv/and/or/xor/shift rules.
  bool EvalRules = true;    ///< slt/branch eval() rules.
};

/// Computes the fates of instruction \p I given the abstract register
/// state \p In as read by the instruction.
InstrFates computeFates(const Instruction &I, const RegState &In,
                        unsigned Width, const FateOptions &Opts = {});

} // namespace bec

#endif // BEC_CORE_FATES_H
