//===- core/Metrics.h - Trace-based reliability metrics --------------------===//
///
/// \file
/// The quantities reported in the paper's evaluation, computed by walking
/// an execution trace with the static BEC classes:
///
///  * Table III: fault-injection runs at value level ("Live in values",
///    the inject-on-read baseline), at bit level ("Live in bits"), and the
///    masked/inferrable breakdown of the pruned runs;
///  * Table IV / Section III-B: the total fault space and the vulnerability
///    (number of live fault sites over the whole run).
///
/// The counting rules reproduce the paper's motivating-example figures
/// exactly (288/225 runs and 681/576 live sites; see tests).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_CORE_METRICS_H
#define BEC_CORE_METRICS_H

#include "core/BECAnalysis.h"

#include <span>

namespace bec {

/// Fault-injection campaign sizes for one execution trace.
struct FaultInjectionCounts {
  /// |cycles| x |registers| x width: every spatial/temporal fault site.
  uint64_t TotalFaultSpace = 0;
  /// Runs required by value-level inject-on-read analysis.
  uint64_t ValueLevelRuns = 0;
  /// Runs required after BEC pruning.
  uint64_t BitLevelRuns = 0;
  /// Runs pruned because the fault site is provably masked.
  uint64_t MaskedBits = 0;
  /// Runs pruned because the effect equals another run's effect.
  uint64_t InferrableBits = 0;

  double prunedFraction() const {
    if (ValueLevelRuns == 0)
      return 0.0;
    return 1.0 - static_cast<double>(BitLevelRuns) /
                     static_cast<double>(ValueLevelRuns);
  }
};

/// Counts fault-injection runs over the dynamic trace \p Executed
/// (instruction index per cycle, as produced by the simulator).
FaultInjectionCounts countFaultInjectionRuns(const BECAnalysis &A,
                                             std::span<const uint32_t> Executed);

/// The program's fault surface over the trace: the number of live fault
/// sites (non-masked bits of every register's governing segment) summed
/// over all executed instructions; the final halt contributes the live
/// bits of its observable read registers (Section III-B).
uint64_t computeVulnerability(const BECAnalysis &A,
                              std::span<const uint32_t> Executed);

} // namespace bec

#endif // BEC_CORE_METRICS_H
