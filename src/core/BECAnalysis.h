//===- core/BECAnalysis.h - Bit-level error coalescing (the paper's core) -===//
///
/// \file
/// The full BEC analysis of Section IV: (1) the global abstract bit-value
/// analysis, then (2) the iterative fault-index coalescing (Algorithm 2)
/// that partitions all fault indices into equivalence classes of identical
/// soft-error effect. Class 0 (s0) is the intact semantics: fault sites in
/// [s0] are masked.
///
/// Two refinements over the paper's pseudocode keep the relation sound
/// under reconvergent dataflow and loop-carried re-reads (see DESIGN.md):
/// non-s0 merges require a unique use site that consumes (kills) the
/// register, and masked merges additionally require the surviving segment
/// to be masked as well. Both are no-ops on all examples in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_CORE_BECANALYSIS_H
#define BEC_CORE_BECANALYSIS_H

#include "analysis/BitValueAnalysis.h"
#include "analysis/Liveness.h"
#include "analysis/UseDef.h"
#include "core/FaultSpace.h"
#include "core/Fates.h"
#include "support/UnionFind.h"

#include <memory>
#include <optional>

namespace bec {

/// Options for ablation studies; defaults reproduce the full analysis.
struct BECOptions {
  /// Intra-instruction rule families (Algorithm 3).
  FateOptions Fates;
  /// Inter-instruction coalescing (Algorithm 2 line 12). When off, only
  /// liveness-based masking (inject-on-read at bit width) remains.
  bool InterInstruction = true;
  /// Use the global bit-value analysis. When off, all register bits are
  /// treated as unknown (the "local KnownBits only" baseline).
  bool GlobalBitValues = true;
};

/// Result of the BEC analysis over one program.
class BECAnalysis {
public:
  /// Runs the analysis. The program must be verified with a built CFG, and
  /// must outlive this object.
  static BECAnalysis run(const Program &Prog, const BECOptions &Opts = {});

  /// Runs the coalescing on precomputed sub-analyses (which must have been
  /// produced from \p Prog). The api/AnalysisSession registry uses this to
  /// share cached Liveness/UseDef/BitValueAnalysis results instead of
  /// recomputing them per BECAnalysis.
  static BECAnalysis run(const Program &Prog, const BECOptions &Opts,
                         std::shared_ptr<const Liveness> Live,
                         std::shared_ptr<const UseDef> Uses,
                         std::shared_ptr<const BitValueAnalysis> BitValues);

  const Program &program() const { return *Prog; }
  const FaultSpace &space() const { return *Space; }
  const Liveness &liveness() const { return *Live; }
  const UseDef &useDef() const { return *Uses; }
  const BitValueAnalysis &bitValues() const { return *BitValues; }

  /// Representative of the equivalence class of fault index \p Idx.
  uint32_t classOf(uint32_t Idx) const { return Classes.find(Idx); }
  /// Representative of the class of s((P, V^Bit)), or nullopt if \p P is
  /// out of range, \p V is not a register, \p Bit is not a bit of the
  /// register file, or V is not accessed at P. Safe on untrusted query
  /// input: this is the library API's lookup and never aborts.
  std::optional<uint32_t> classOf(uint32_t P, Reg V, unsigned Bit) const {
    if (P >= Prog->size() || V >= NumRegs || Bit >= Space->width())
      return std::nullopt;
    int32_t Ap = Space->pointId(P, V);
    if (Ap < 0)
      return std::nullopt;
    return Classes.find(Space->faultIndex(static_cast<uint32_t>(Ap), Bit));
  }
  /// True if the fault site is masked (class of s0).
  bool isMasked(uint32_t Idx) const { return Classes.find(Idx) == 0; }

  /// Per-access-point summary used by the campaign planner and metrics.
  struct PointSummary {
    bool LiveAfter = false;  ///< Register live after the access point.
    uint64_t MaskedMask = 0; ///< Bits whose class is [s0].
    uint16_t NumProbes = 0;  ///< Distinct non-masked classes.
  };
  const PointSummary &summary(uint32_t Ap) const { return Summaries[Ap]; }

  /// Fates of instruction \p P (empty for instructions the bit-value
  /// analysis proved unreachable).
  const InstrFates &fates(uint32_t P) const { return Fates[P]; }

  /// Number of coalescing rounds until the fixed point.
  uint32_t iterations() const { return Iterations; }
  /// Total merges applied.
  uint32_t mergeCount() const { return Merges; }

private:
  const Program *Prog = nullptr;
  std::unique_ptr<FaultSpace> Space;
  /// Shared so a cached sub-analysis (api/AnalysisSession) can back any
  /// number of BECAnalysis results without being recomputed or copied.
  std::shared_ptr<const Liveness> Live;
  std::shared_ptr<const UseDef> Uses;
  std::shared_ptr<const BitValueAnalysis> BitValues;
  std::vector<InstrFates> Fates;
  UnionFind Classes;
  std::vector<PointSummary> Summaries;
  uint32_t Iterations = 0;
  uint32_t Merges = 0;
};

} // namespace bec

#endif // BEC_CORE_BECANALYSIS_H
