//===- core/Metrics.cpp - Trace-based reliability metrics ------------------===//

#include "core/Metrics.h"

#include "support/Debug.h"

#include <algorithm>

using namespace bec;

FaultInjectionCounts
bec::countFaultInjectionRuns(const BECAnalysis &A,
                             std::span<const uint32_t> Executed) {
  const Program &Prog = A.program();
  const FaultSpace &FS = A.space();
  unsigned W = Prog.Width;
  FaultInjectionCounts Counts;
  Counts.TotalFaultSpace =
      static_cast<uint64_t>(Executed.size()) * NumRegs * W;

  // Governing access point of each register's current dynamic segment.
  std::array<int32_t, NumRegs> Governor;
  Governor.fill(-1);

  std::vector<uint32_t> Reps; // scratch: distinct classes of a segment

  // A dynamic segment is accounted for when it *opens*: value-level
  // inject-on-read schedules `width` runs for every access of a register
  // that is (statically) live afterwards; BEC schedules one run per
  // distinct non-masked class, minus classes already covered by a run in
  // the segment that feeds this access (cross-segment inference).
  for (size_t C = 0; C < Executed.size(); ++C) {
    uint32_t P = Executed[C];
    const Instruction &I = Prog.instr(P);
    if (isHalt(I.Op))
      break; // The halt opens no segments.

    // Capture the read registers' governing segments before updating.
    Reg Reads[2];
    unsigned NumReads = I.readRegs(Reads);
    std::array<int32_t, 2> ReadAps = {-1, -1};
    for (unsigned R = 0; R < NumReads; ++R)
      ReadAps[R] = Governor[Reads[R]];

    auto [ApBegin, ApEnd] = FS.pointsOfInstr(P);
    for (uint32_t Ap = ApBegin; Ap < ApEnd; ++Ap) {
      Reg V = FS.point(Ap).R;
      Governor[V] = static_cast<int32_t>(Ap);
      const auto &Summary = A.summary(Ap);
      if (!Summary.LiveAfter)
        continue; // Dead segment: no injection at any analysis level.
      Counts.ValueLevelRuns += W;
      unsigned Masked = popCount(Summary.MaskedMask, W);
      Counts.MaskedBits += Masked;

      Reps.clear();
      for (unsigned B = 0; B < W; ++B)
        if (!(Summary.MaskedMask & (uint64_t(1) << B)))
          Reps.push_back(A.classOf(FS.faultIndex(Ap, B)));
      std::sort(Reps.begin(), Reps.end());
      Reps.erase(std::unique(Reps.begin(), Reps.end()), Reps.end());

      // Cross-segment inference applies to the destination register: an
      // input-segment fault with a ToOutput fate at this instruction is
      // the same physical effect as the corresponding output fault, and
      // if the analysis merged the two classes the input segment's run
      // (already scheduled when that segment opened) covers this class.
      uint64_t CoveredClasses = 0;
      if (I.writesReg() && V == I.Rd) {
        std::vector<uint32_t> Covered;
        const InstrFates &F = A.fates(P);
        for (unsigned R = 0; R < NumReads; ++R) {
          if (ReadAps[R] < 0)
            continue;
          uint32_t InAp = static_cast<uint32_t>(ReadAps[R]);
          for (unsigned B = 0; B < W; ++B) {
            Fate Ft = F.fate(Reads[R], B);
            if (Ft.Kind != FateKind::ToOutput)
              continue;
            uint32_t InRep = A.classOf(FS.faultIndex(InAp, B));
            if (InRep == 0)
              continue;
            // Merged classes mean the input-segment run (scheduled when
            // that segment opened) subsumes this output class.
            if (InRep == A.classOf(FS.faultIndex(Ap, Ft.Arg)))
              Covered.push_back(InRep);
          }
        }
        std::sort(Covered.begin(), Covered.end());
        Covered.erase(std::unique(Covered.begin(), Covered.end()),
                      Covered.end());
        for (uint32_t Rep : Covered)
          if (std::binary_search(Reps.begin(), Reps.end(), Rep))
            ++CoveredClasses;
      }

      uint64_t Probes = Reps.size() - CoveredClasses;
      Counts.BitLevelRuns += Probes;
      Counts.InferrableBits += W - Masked - Probes;
    }
  }
  return Counts;
}

uint64_t bec::computeVulnerability(const BECAnalysis &A,
                                   std::span<const uint32_t> Executed) {
  const Program &Prog = A.program();
  const FaultSpace &FS = A.space();
  unsigned W = Prog.Width;

  std::array<int32_t, NumRegs> Governor;
  Governor.fill(-1);
  std::array<unsigned, NumRegs> LiveBits{};
  uint64_t Running = 0;
  uint64_t Total = 0;

  for (size_t C = 0; C < Executed.size(); ++C) {
    uint32_t P = Executed[C];
    const Instruction &I = Prog.instr(P);
    if (isHalt(I.Op)) {
      // The observable read registers of the halt stay live at the final
      // program point (their value is the program's result).
      Reg Reads[2];
      unsigned NumReads = I.readRegs(Reads);
      for (unsigned R = 0; R < NumReads; ++R) {
        int32_t Ap = Governor[Reads[R]];
        if (Ap >= 0)
          Total +=
              W - popCount(A.summary(static_cast<uint32_t>(Ap)).MaskedMask, W);
      }
      break;
    }
    auto [ApBegin, ApEnd] = FS.pointsOfInstr(P);
    for (uint32_t Ap = ApBegin; Ap < ApEnd; ++Ap) {
      Reg V = FS.point(Ap).R;
      Governor[V] = static_cast<int32_t>(Ap);
      Running -= LiveBits[V];
      LiveBits[V] = W - popCount(A.summary(Ap).MaskedMask, W);
      Running += LiveBits[V];
    }
    Total += Running;
  }
  return Total;
}
