//===- core/FaultSpace.h - Fault sites and fault indices -------------------===//
///
/// \file
/// The fault space F = P x V of the paper, discretized at *access points*:
/// fault index s((p, v^i)) exists for every instruction p that reads or
/// writes register v, and labels a corruption of bit i of v in the segment
/// between p and the next access of v ("the effect of any faults that
/// occurred at a data point are the same until the program reaches the
/// program point that reads the data point", Section IV-B). Fault index 0
/// is the distinguished s0: the intact execution / masked faults.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_CORE_FAULTSPACE_H
#define BEC_CORE_FAULTSPACE_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace bec {

/// An access point: instruction \c Instr reads and/or writes register \c R.
struct AccessPoint {
  uint32_t Instr;
  Reg R;
};

/// Enumerates access points and maps (access point, bit) to fault indices.
class FaultSpace {
public:
  explicit FaultSpace(const Program &Prog);

  uint32_t numAccessPoints() const {
    return static_cast<uint32_t>(Points.size());
  }
  const AccessPoint &point(uint32_t Ap) const { return Points[Ap]; }

  /// Access-point id for (P, V), or -1 if V is not accessed at P.
  int32_t pointId(uint32_t P, Reg V) const {
    for (uint32_t Ap = FirstOfInstr[P]; Ap < FirstOfInstr[P + 1]; ++Ap)
      if (Points[Ap].R == V)
        return static_cast<int32_t>(Ap);
    return -1;
  }

  /// Access points of instruction \p P as an [begin, end) id range.
  std::pair<uint32_t, uint32_t> pointsOfInstr(uint32_t P) const {
    return {FirstOfInstr[P], FirstOfInstr[P + 1]};
  }

  /// Fault index of bit \p Bit at access point \p Ap (never 0).
  uint32_t faultIndex(uint32_t Ap, unsigned Bit) const {
    return 1 + Ap * Width + Bit;
  }
  /// Total number of fault indices including s0.
  uint32_t numFaultIndices() const {
    return 1 + numAccessPoints() * Width;
  }

  unsigned width() const { return Width; }

private:
  unsigned Width;
  std::vector<AccessPoint> Points;
  /// Points of instruction P occupy ids [FirstOfInstr[P], FirstOfInstr[P+1]).
  std::vector<uint32_t> FirstOfInstr;
};

} // namespace bec

#endif // BEC_CORE_FAULTSPACE_H
