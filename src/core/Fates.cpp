//===- core/Fates.cpp - Intra-instruction coalescing rules -----------------===//

#include "core/Fates.h"

#include "support/Debug.h"

using namespace bec;

namespace {

/// Builder for the fates of one instruction.
class FateBuilder {
public:
  FateBuilder(const Instruction &I, const RegState &In, unsigned Width,
              const FateOptions &Opts)
      : I(I), In(In), Width(Width), Opts(Opts) {}

  InstrFates build();

private:
  KnownBits operand(Reg V) const {
    if (V == RegZero)
      return KnownBits::constant(0, Width);
    return In[V];
  }
  KnownBits immediate() const {
    return KnownBits::constant(static_cast<uint64_t>(I.Imm), Width);
  }

  InstrFates::OperandFates &addOperand(Reg V) {
    assert(Result.NumOperands < 2 && "too many operands");
    auto &Op = Result.Operands[Result.NumOperands++];
    Op.R = V;
    return Op;
  }

  /// A fault is equivalent to an output fault only if the result is
  /// actually stored; writes to x0 are dropped, masking the fault.
  Fate toOutput(unsigned Bit) const {
    if (!I.writesReg())
      return {FateKind::Masked, 0};
    return {FateKind::ToOutput, static_cast<uint8_t>(Bit)};
  }

  void buildMoveLike(Reg Src);
  void buildBitwise(Reg X, const KnownBits &KX, Reg Y, const KnownBits &KY,
                    bool IsAnd, bool IsOr, bool IsXor);
  void buildShift(bool Left, bool Arithmetic);
  void buildCompare();
  void evalOperand(Reg V, const KnownBits &KV, const KnownBits &KOther,
                   bool VIsLhs);
  BitValue evalCmp(const KnownBits &A, const KnownBits &B) const;

  const Instruction &I;
  const RegState &In;
  unsigned Width;
  FateOptions Opts;
  InstrFates Result;
};

} // namespace

void FateBuilder::buildMoveLike(Reg Src) {
  if (Src == RegZero)
    return;
  auto &Op = addOperand(Src);
  for (unsigned B = 0; B < Width; ++B)
    Op.Bits[B] = toOutput(B);
}

void FateBuilder::buildBitwise(Reg X, const KnownBits &KX, Reg Y,
                               const KnownBits &KY, bool IsAnd, bool IsOr,
                               bool IsXor) {
  // z = x OP y. The fate of bit i of x depends on the known value of y's
  // bit i (lines 8-25 of Algorithm 3), and symmetrically.
  auto FateFor = [&](const KnownBits &KOther, unsigned B) -> Fate {
    if (IsXor)
      return toOutput(B); // xor propagates unconditionally (lines 5-7).
    BitValue Other = KOther.bit(B);
    if (IsAnd) {
      if (Other == BitValue::Zero)
        return {FateKind::Masked, 0};
      if (Other == BitValue::One)
        return toOutput(B);
      return {};
    }
    assert(IsOr && "bitwise fate on a non-bitwise opcode");
    if (Other == BitValue::One)
      return {FateKind::Masked, 0};
    if (Other == BitValue::Zero)
      return toOutput(B);
    return {};
  };

  if (X != RegZero && X == Y) {
    // Both operands are the same storage: a single flip corrupts both.
    //   and/or x,x == mv x;   xor x,x == 0 (any flip still yields 0).
    auto &Op = addOperand(X);
    for (unsigned B = 0; B < Width; ++B)
      Op.Bits[B] = IsXor ? Fate{FateKind::Masked, 0} : toOutput(B);
    return;
  }
  if (X != RegZero) {
    auto &Op = addOperand(X);
    for (unsigned B = 0; B < Width; ++B)
      Op.Bits[B] = FateFor(KY, B);
  }
  if (Y != RegZero) {
    auto &Op = addOperand(Y);
    for (unsigned B = 0; B < Width; ++B)
      Op.Bits[B] = FateFor(KX, B);
  }
}

void FateBuilder::buildShift(bool Left, bool Arithmetic) {
  // z = x << y or x >> y (lines 26-35 of Algorithm 3). Only the shifted
  // operand's bits coalesce; the amount operand gets no rule.
  Reg X = I.Rs1;
  if (X == RegZero)
    return;
  bool AmountIsReg = opcodeFormat(I.Op) == OpFormat::RegRegReg;
  if (AmountIsReg && I.Rs2 == X)
    return; // Shift by itself: a flip perturbs both operands; no rule.
  KnownBits KAmt = AmountIsReg ? operand(I.Rs2) : immediate();
  auto [MinAmt, MaxAmt] = KAmt.shiftAmountRange();
  bool Constant = MinAmt == MaxAmt;
  auto &Op = addOperand(X);
  for (unsigned B = 0; B < Width; ++B) {
    if (Left) {
      if (B + MinAmt >= Width)
        Op.Bits[B] = {FateKind::Masked, 0}; // Shifted out for any amount.
      else if (Constant)
        Op.Bits[B] = toOutput(B + MinAmt);
      continue;
    }
    // Right shifts: low bits fall out. For arithmetic shifts the sign bit
    // is replicated into several result bits, so it has no single-output
    // equivalent (kept None unless the shift amount is zero).
    if (B < MinAmt) {
      Op.Bits[B] = {FateKind::Masked, 0};
      continue;
    }
    if (!Constant)
      continue;
    if (Arithmetic && B == Width - 1 && MinAmt != 0)
      continue;
    Op.Bits[B] = toOutput(B - MinAmt);
  }
}

BitValue FateBuilder::evalCmp(const KnownBits &A, const KnownBits &B) const {
  switch (I.Op) {
  case Opcode::SLT:
  case Opcode::SLTI:
  case Opcode::BLT:
    return KnownBits::cmpSlt(A, B);
  case Opcode::BGE: {
    BitValue Lt = KnownBits::cmpSlt(A, B);
    if (Lt == BitValue::Zero)
      return BitValue::One;
    if (Lt == BitValue::One)
      return BitValue::Zero;
    return Lt;
  }
  case Opcode::SLTU:
  case Opcode::SLTIU:
  case Opcode::BLTU:
    return KnownBits::cmpUlt(A, B);
  case Opcode::BGEU: {
    BitValue Lt = KnownBits::cmpUlt(A, B);
    if (Lt == BitValue::Zero)
      return BitValue::One;
    if (Lt == BitValue::One)
      return BitValue::Zero;
    return Lt;
  }
  case Opcode::BEQ:
    return KnownBits::cmpEq(A, B);
  case Opcode::BNE: {
    BitValue Eq = KnownBits::cmpEq(A, B);
    if (Eq == BitValue::Zero)
      return BitValue::One;
    if (Eq == BitValue::One)
      return BitValue::Zero;
    return Eq;
  }
  default:
    bec_unreachable("evalCmp on a non-comparison");
  }
}

void FateBuilder::evalOperand(Reg V, const KnownBits &KV,
                              const KnownBits &KOther, bool VIsLhs) {
  if (V == RegZero)
    return;
  BitValue Orig = VIsLhs ? evalCmp(KV, KOther) : evalCmp(KOther, KV);
  auto &Op = addOperand(V);
  for (unsigned B = 0; B < Width; ++B) {
    BitValue Bit = KV.bit(B);
    if (Bit != BitValue::Zero && Bit != BitValue::One)
      continue; // Unknown bit: the flipped value is also unknown.
    KnownBits Flipped = KV;
    Flipped.setBit(B, Bit == BitValue::Zero ? BitValue::One : BitValue::Zero);
    BitValue Res = VIsLhs ? evalCmp(Flipped, KOther) : evalCmp(KOther, Flipped);
    if (Res != BitValue::Zero && Res != BitValue::One)
      continue;
    if (Res == Orig) {
      // The flip provably does not change the outcome of this use.
      Op.Bits[B] = {FateKind::Masked, 0};
      continue;
    }
    Op.Bits[B] = {FateKind::EvalClass,
                  static_cast<uint8_t>(Res == BitValue::One ? 1 : 0)};
  }
}

void FateBuilder::buildCompare() {
  bool HasImm = opcodeFormat(I.Op) == OpFormat::RegRegImm;
  Reg X = I.Rs1;
  Reg Y = HasImm ? RegZero : I.Rs2;
  if (!HasImm && X == Y && X != RegZero) {
    // beq x,x / slt x,x / ...: both operands read the same corrupted
    // storage, so any flip leaves the (in)equality intact -> masked.
    auto &Op = addOperand(X);
    for (unsigned B = 0; B < Width; ++B)
      Op.Bits[B] = {FateKind::Masked, 0};
    return;
  }
  KnownBits KX = operand(X);
  KnownBits KY = HasImm ? immediate() : operand(Y);
  evalOperand(X, KX, KY, /*VIsLhs=*/true);
  if (!HasImm)
    evalOperand(Y, KY, KX, /*VIsLhs=*/false);
}

InstrFates FateBuilder::build() {
  switch (I.Op) {
  case Opcode::MV:
    if (Opts.BitwiseRules)
      buildMoveLike(I.Rs1);
    break;
  case Opcode::AND:
    if (Opts.BitwiseRules)
      buildBitwise(I.Rs1, operand(I.Rs1), I.Rs2, operand(I.Rs2), true, false,
                   false);
    break;
  case Opcode::ANDI:
    if (Opts.BitwiseRules)
      buildBitwise(I.Rs1, operand(I.Rs1), RegZero, immediate(), true, false,
                   false);
    break;
  case Opcode::OR:
    if (Opts.BitwiseRules)
      buildBitwise(I.Rs1, operand(I.Rs1), I.Rs2, operand(I.Rs2), false, true,
                   false);
    break;
  case Opcode::ORI:
    if (Opts.BitwiseRules)
      buildBitwise(I.Rs1, operand(I.Rs1), RegZero, immediate(), false, true,
                   false);
    break;
  case Opcode::XOR:
    if (Opts.BitwiseRules)
      buildBitwise(I.Rs1, operand(I.Rs1), I.Rs2, operand(I.Rs2), false, false,
                   true);
    break;
  case Opcode::XORI:
    if (Opts.BitwiseRules)
      buildBitwise(I.Rs1, operand(I.Rs1), RegZero, immediate(), false, false,
                   true);
    break;
  case Opcode::SLLI:
  case Opcode::SLL:
    if (Opts.BitwiseRules)
      buildShift(/*Left=*/true, /*Arithmetic=*/false);
    break;
  case Opcode::SRLI:
  case Opcode::SRL:
    if (Opts.BitwiseRules)
      buildShift(/*Left=*/false, /*Arithmetic=*/false);
    break;
  case Opcode::SRAI:
  case Opcode::SRA:
    if (Opts.BitwiseRules)
      buildShift(/*Left=*/false, /*Arithmetic=*/true);
    break;
  case Opcode::ADD:
    // add with a provably zero operand degenerates to a move.
    if (Opts.BitwiseRules && I.Rs1 != I.Rs2) {
      KnownBits K1 = operand(I.Rs1), K2 = operand(I.Rs2);
      if (K2.isConstant() && K2.constValue() == 0)
        buildMoveLike(I.Rs1);
      else if (K1.isConstant() && K1.constValue() == 0)
        buildMoveLike(I.Rs2);
    }
    break;
  case Opcode::ADDI:
    if (Opts.BitwiseRules && I.Imm == 0)
      buildMoveLike(I.Rs1);
    break;
  case Opcode::SLT:
  case Opcode::SLTU:
  case Opcode::SLTI:
  case Opcode::SLTIU:
  case Opcode::BEQ:
  case Opcode::BNE:
  case Opcode::BLT:
  case Opcode::BGE:
  case Opcode::BLTU:
  case Opcode::BGEU:
    if (Opts.EvalRules)
      buildCompare();
    break;
  default:
    // li/lui, sub, mul/div family, memory, out/ret/halt/nop, j:
    // no intra-instruction rule (Algorithm 3 has none for these).
    break;
  }
  return Result;
}

InstrFates bec::computeFates(const Instruction &I, const RegState &In,
                             unsigned Width, const FateOptions &Opts) {
  FateBuilder Builder(I, In, Width, Opts);
  return Builder.build();
}
