//===- core/BECAnalysis.cpp - Iterative fault-index coalescing ------------===//

#include "core/BECAnalysis.h"

#include "support/Debug.h"

#include <algorithm>
#include <map>

using namespace bec;

BECAnalysis BECAnalysis::run(const Program &Prog, const BECOptions &Opts) {
  return run(Prog, Opts,
             std::make_shared<const Liveness>(Liveness::run(Prog)),
             std::make_shared<const UseDef>(UseDef::run(Prog)),
             std::make_shared<const BitValueAnalysis>(
                 BitValueAnalysis::run(Prog)));
}

BECAnalysis BECAnalysis::run(const Program &Prog, const BECOptions &Opts,
                             std::shared_ptr<const Liveness> Live,
                             std::shared_ptr<const UseDef> Uses,
                             std::shared_ptr<const BitValueAnalysis> BitValues) {
  BECAnalysis A;
  A.Prog = &Prog;
  A.Space = std::make_unique<FaultSpace>(Prog);
  A.Live = std::move(Live);
  A.Uses = std::move(Uses);
  A.BitValues = std::move(BitValues);

  const FaultSpace &FS = *A.Space;
  unsigned W = Prog.Width;
  A.Classes.reset(FS.numFaultIndices());

  // Precompute per-instruction fates. The abstract bit values are a fixed
  // point already, so fates do not change across coalescing rounds.
  A.Fates.resize(Prog.size());
  RegState AllTop;
  for (auto &KB : AllTop)
    KB = KnownBits::top(W);
  for (uint32_t P = 0; P < Prog.size(); ++P) {
    // Instructions the solver proved unreachable are never executed, so no
    // dynamic fault flows through them; empty fates (None) are sound.
    if (!A.BitValues->isExecutable(P))
      continue;
    RegState InState = AllTop;
    if (Opts.GlobalBitValues)
      for (Reg V = 0; V < NumRegs; ++V)
        InState[V] = A.BitValues->before(P, V);
    A.Fates[P] = computeFates(Prog.instr(P), InState, W, Opts.Fates);
  }

  // --- Initialization (Algorithm 2 lines 1-7) ---------------------------
  // Access points whose register is dead afterwards join s0.
  for (uint32_t Ap = 0; Ap < FS.numAccessPoints(); ++Ap) {
    const AccessPoint &Pt = FS.point(Ap);
    if (!A.Live->isLiveAfter(Pt.Instr, Pt.R))
      for (unsigned B = 0; B < W; ++B)
        A.Classes.unite(0, FS.faultIndex(Ap, B));
  }

  // --- Iterative coalescing (Algorithm 2 lines 8-12) --------------------
  // Per round, merges are collected against the frozen relation and
  // applied together (the paper's deferred temporary relation R').
  bool Changed = Opts.InterInstruction;
  while (Changed) {
    Changed = false;
    ++A.Iterations;
    std::vector<std::pair<uint32_t, uint32_t>> Pending;
    // Bridge groups for the eval rule: all fault sites whose flip forces
    // the same outcome of the same operand of the same instruction are
    // mutually equivalent. Key: (instr, operand reg, outcome).
    std::map<std::tuple<uint32_t, Reg, uint8_t>, uint32_t> Bridges;

    for (uint32_t Ap = 0; Ap < FS.numAccessPoints(); ++Ap) {
      const AccessPoint &Pt = FS.point(Ap);
      if (!A.Live->isLiveAfter(Pt.Instr, Pt.R))
        continue;
      std::span<const uint32_t> UseSites = A.Uses->uses(Pt.Instr, Pt.R);
      if (UseSites.empty())
        continue;

      for (unsigned B = 0; B < W; ++B) {
        uint32_t Idx = FS.faultIndex(Ap, B);
        if (A.Classes.find(Idx) == 0)
          continue;

        if (UseSites.size() == 1) {
          uint32_t Q = UseSites[0];
          const Instruction &QI = Prog.instr(Q);
          Fate F = A.Fates[Q].fate(Pt.R, B);
          // "Killed at Q": the corrupted register does not survive the
          // use, so the fault's entire effect flows through Q.
          bool Killed = (QI.writesReg() && QI.Rd == Pt.R) ||
                        !A.Live->isLiveAfter(Q, Pt.R);
          switch (F.Kind) {
          case FateKind::None:
            break;
          case FateKind::Masked: {
            if (Killed) {
              Pending.push_back({Idx, 0});
              break;
            }
            // The register survives: also require the post-Q segment to
            // be masked (monotone; resolved over rounds).
            int32_t QAp = FS.pointId(Q, Pt.R);
            assert(QAp >= 0 && "use site must access the register");
            if (A.Classes.find(
                    FS.faultIndex(static_cast<uint32_t>(QAp), B)) == 0)
              Pending.push_back({Idx, 0});
            break;
          }
          case FateKind::ToOutput: {
            if (!Killed)
              break;
            assert(QI.writesReg() && "ToOutput fate without a destination");
            int32_t OutAp = FS.pointId(Q, QI.Rd);
            assert(OutAp >= 0 && "destination access point missing");
            Pending.push_back(
                {Idx, FS.faultIndex(static_cast<uint32_t>(OutAp), F.Arg)});
            break;
          }
          case FateKind::EvalClass: {
            if (!Killed)
              break;
            auto Key = std::make_tuple(Q, Pt.R, F.Arg);
            auto [It, Inserted] = Bridges.emplace(Key, Idx);
            if (!Inserted)
              Pending.push_back({Idx, It->second});
            break;
          }
          }
          continue;
        }

        // Multiple use sites: Algorithm 2 line 12 merges only if every
        // use agrees; with the soundness guards the only agreeing target
        // is s0 (fault masked through every use and in every surviving
        // segment).
        bool AllMasked = true;
        for (uint32_t Q : UseSites) {
          Fate F = A.Fates[Q].fate(Pt.R, B);
          if (F.Kind != FateKind::Masked) {
            AllMasked = false;
            break;
          }
          const Instruction &QI = Prog.instr(Q);
          bool Killed = (QI.writesReg() && QI.Rd == Pt.R) ||
                        !A.Live->isLiveAfter(Q, Pt.R);
          if (Killed)
            continue;
          int32_t QAp = FS.pointId(Q, Pt.R);
          assert(QAp >= 0 && "use site must access the register");
          if (A.Classes.find(FS.faultIndex(static_cast<uint32_t>(QAp), B)) !=
              0) {
            AllMasked = false;
            break;
          }
        }
        if (AllMasked)
          Pending.push_back({Idx, 0});
      }
    }

    for (auto [X, Y] : Pending)
      if (A.Classes.unite(X, Y)) {
        Changed = true;
        ++A.Merges;
      }
  }

  // --- Summaries ---------------------------------------------------------
  A.Summaries.resize(FS.numAccessPoints());
  std::vector<uint32_t> Reps;
  for (uint32_t Ap = 0; Ap < FS.numAccessPoints(); ++Ap) {
    const AccessPoint &Pt = FS.point(Ap);
    PointSummary &S = A.Summaries[Ap];
    S.LiveAfter = A.Live->isLiveAfter(Pt.Instr, Pt.R);
    Reps.clear();
    for (unsigned B = 0; B < W; ++B) {
      uint32_t Rep = A.Classes.find(FS.faultIndex(Ap, B));
      if (Rep == 0)
        S.MaskedMask |= uint64_t(1) << B;
      else
        Reps.push_back(Rep);
    }
    std::sort(Reps.begin(), Reps.end());
    Reps.erase(std::unique(Reps.begin(), Reps.end()), Reps.end());
    S.NumProbes = static_cast<uint16_t>(Reps.size());
  }
  return A;
}
