//===- obs/Metrics.h - Lock-free sharded metrics registry -----------------===//
///
/// \file
/// The metrics half of the bec observability layer (obs/Trace.h is the
/// tracing half; docs/observability.md is the catalog). A process-global
/// registry of named counters, gauges and fixed-bucket latency
/// histograms, designed so instrumented hot paths stay hot:
///
///  * Counter / Histogram writes land in a per-thread shard of relaxed
///    `std::atomic<uint64_t>` cells — one relaxed fetch_add per count,
///    no locks, no false sharing between threads. Shards are merged
///    under the registry mutex only on snapshot (read side) and on
///    thread exit (the exiting thread folds its shard into a retired
///    accumulator, so totals stay exact across any thread lifecycle).
///  * Gauges are point-in-time values (connection counts, queue depth)
///    and live in single process-global atomics instead.
///  * Registration (name -> slot) happens once per call site via
///    function-local statics; after that, handles carry raw slot
///    indices and never touch the name map again.
///
/// Metric names use dotted lowercase ("engine.runs") and may carry one
/// embedded Prometheus-style label set: `serve.method.us{method="analyze"}`.
/// The renderer in obs/Prometheus.h splits on the brace.
///
/// Compile-time kill switch: building with -DBEC_OBS_DISABLED turns the
/// whole surface (metrics *and* tracing) into empty inlines. Runtime kill
/// switch: setMetricsEnabled(false), or the BEC_OBS_DISABLED environment
/// variable at process start; bench_ObsOverhead uses the runtime switch
/// to measure both sides in one binary.
///
/// Exactness contract: after the writing threads have joined (or any
/// other happens-before edge to the reader), snapshotMetrics() totals
/// equal the sum of all add()/observeUs() calls exactly — relaxed
/// ordering never loses increments, it only leaves in-flight ones
/// invisible to a concurrent reader.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_OBS_METRICS_H
#define BEC_OBS_METRICS_H

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bec {
namespace obs {

/// Shared histogram geometry: powers of two in microseconds, 1us..2^20us
/// (~1.05 s), plus a +Inf overflow bucket. One geometry for every
/// histogram keeps snapshots, quantiles and the Prometheus rendering
/// trivially mergeable.
inline constexpr unsigned NumHistogramBuckets = 22;

/// Upper bound of bucket \p B in microseconds (the last bucket is +Inf,
/// reported as UINT64_MAX).
uint64_t histogramBucketBound(unsigned B);

enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

/// A merged histogram: per-bucket counts (not cumulative), total count
/// and sum of observed microseconds.
struct HistogramData {
  std::array<uint64_t, NumHistogramBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t SumUs = 0;

  /// Upper bucket bound containing quantile \p Q (0 < Q <= 1), in
  /// microseconds; 0 when empty. Observations beyond the last finite
  /// bucket saturate at twice its bound.
  uint64_t quantileUs(double Q) const;
  double meanUs() const { return Count ? double(SumUs) / double(Count) : 0.0; }
};

/// One metric's merged value at snapshot time.
struct MetricValue {
  std::string Name;
  MetricKind Kind = MetricKind::Counter;
  uint64_t Value = 0;     ///< Counter total.
  int64_t GaugeValue = 0; ///< Gauge level.
  HistogramData Hist;     ///< Histogram kind only.
};

/// A consistent-enough view of every registered metric (registration
/// order). "Consistent enough": concurrent writers may add increments
/// while the snapshot walks the shards; totals never go backwards.
struct MetricsSnapshot {
  std::vector<MetricValue> Metrics;
  const MetricValue *find(std::string_view Name) const;
};

#ifndef BEC_OBS_DISABLED

namespace detail {
/// Slot index into the per-thread shards; ~0 = dead handle (registry
/// full), all operations no-op.
using Slot = uint32_t;
inline constexpr Slot DeadSlot = ~Slot(0);

Slot registerMetric(std::string_view Name, MetricKind Kind);
void counterAdd(Slot S, uint64_t N);
void gaugeAdd(Slot S, int64_t Delta);
void gaugeSet(Slot S, int64_t V);
void histogramObserve(Slot S, uint64_t Us);
bool enabled();
} // namespace detail

/// Monotonic counter handle. Cheap to copy; construct once per call site
/// (function-local static) so registration cost is paid once.
class Counter {
public:
  Counter() = default;
  explicit Counter(std::string_view Name)
      : S(detail::registerMetric(Name, MetricKind::Counter)) {}
  void add(uint64_t N = 1) const {
    if (detail::enabled())
      detail::counterAdd(S, N);
  }

private:
  detail::Slot S = detail::DeadSlot;
};

/// Point-in-time level (may go down). Backed by one global atomic.
class Gauge {
public:
  Gauge() = default;
  explicit Gauge(std::string_view Name)
      : S(detail::registerMetric(Name, MetricKind::Gauge)) {}
  void add(int64_t Delta) const {
    if (detail::enabled())
      detail::gaugeAdd(S, Delta);
  }
  void set(int64_t V) const {
    if (detail::enabled())
      detail::gaugeSet(S, V);
  }

private:
  detail::Slot S = detail::DeadSlot;
};

/// Fixed-bucket latency histogram (microseconds).
class Histogram {
public:
  Histogram() = default;
  explicit Histogram(std::string_view Name)
      : S(detail::registerMetric(Name, MetricKind::Histogram)) {}
  void observeUs(uint64_t Us) const {
    if (detail::enabled())
      detail::histogramObserve(S, Us);
  }

private:
  detail::Slot S = detail::DeadSlot;
};

/// RAII latency observation: observes the scope's wall time into \p H.
class ScopedTimerUs {
public:
  explicit ScopedTimerUs(const Histogram &H)
      : H(H), Start(std::chrono::steady_clock::now()) {}
  ScopedTimerUs(const ScopedTimerUs &) = delete;
  ScopedTimerUs &operator=(const ScopedTimerUs &) = delete;
  ~ScopedTimerUs() {
    auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    H.observeUs(Us < 0 ? 0 : uint64_t(Us));
  }

private:
  Histogram H;
  std::chrono::steady_clock::time_point Start;
};

/// Merged view over the retired accumulator and every live thread shard.
MetricsSnapshot snapshotMetrics();

/// Zeroes every counter/gauge/histogram cell (registrations and handles
/// stay valid). For tests and benchmarks only: concurrent writers may
/// re-add while the reset walks the shards.
void resetMetrics();

/// Runtime kill switch (also settable via the BEC_OBS_DISABLED
/// environment variable at process start). Disabled metrics cost one
/// relaxed atomic load per call site.
bool metricsEnabled();
void setMetricsEnabled(bool Enabled);

#else // BEC_OBS_DISABLED

class Counter {
public:
  Counter() = default;
  explicit Counter(std::string_view) {}
  void add(uint64_t = 1) const {}
};

class Gauge {
public:
  Gauge() = default;
  explicit Gauge(std::string_view) {}
  void add(int64_t) const {}
  void set(int64_t) const {}
};

class Histogram {
public:
  Histogram() = default;
  explicit Histogram(std::string_view) {}
  void observeUs(uint64_t) const {}
};

class ScopedTimerUs {
public:
  explicit ScopedTimerUs(const Histogram &) {}
  ScopedTimerUs(const ScopedTimerUs &) = delete;
  ScopedTimerUs &operator=(const ScopedTimerUs &) = delete;
};

inline MetricsSnapshot snapshotMetrics() { return {}; }
inline void resetMetrics() {}
inline bool metricsEnabled() { return false; }
inline void setMetricsEnabled(bool) {}

#endif // BEC_OBS_DISABLED

} // namespace obs
} // namespace bec

#endif // BEC_OBS_METRICS_H
