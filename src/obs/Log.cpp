//===- obs/Log.cpp - Leveled structured logging (JSONL / logfmt) ----------===//

#include "obs/Log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

using namespace bec;
using namespace bec::obs;

const char *bec::obs::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "off";
}

std::optional<LogLevel> bec::obs::parseLogLevel(std::string_view S) {
  if (S == "debug")
    return LogLevel::Debug;
  if (S == "info")
    return LogLevel::Info;
  if (S == "warn")
    return LogLevel::Warn;
  if (S == "error")
    return LogLevel::Error;
  if (S == "off")
    return LogLevel::Off;
  return std::nullopt;
}

std::optional<LogFormat> bec::obs::parseLogFormat(std::string_view S) {
  if (S == "jsonl")
    return LogFormat::Jsonl;
  if (S == "logfmt")
    return LogFormat::Logfmt;
  return std::nullopt;
}

#ifndef BEC_OBS_DISABLED

namespace {

/// Ambient per-thread request context, restored on scope exit so nested
/// scopes (gateway handling its own local method while forwarding) keep
/// the innermost context.
struct LogCtx {
  uint64_t Conn = 0;
  std::string Method;
  std::string TraceId;
  LogCtx *Prev = nullptr;
};

thread_local LogCtx *TLCtx = nullptr;

struct RateEntry {
  uint64_t WindowStartUs = 0;
  uint64_t Emitted = 0;
  uint64_t Suppressed = 0;
};

struct LogState {
  std::atomic<uint8_t> Level{uint8_t(LogLevel::Off)};
  std::atomic<uint8_t> Format{uint8_t(LogFormat::Jsonl)};
  std::atomic<uint64_t> RatePerSecond{200};

  std::mutex Mu;             ///< Guards Sink and Rates.
  std::FILE *Sink = nullptr; ///< nullptr = stderr.
  std::map<std::string, RateEntry, std::less<>> Rates;
};

LogState &state() {
  // Leaked: logging must stay usable during static teardown.
  static LogState *S = new LogState();
  return *S;
}

uint64_t wallNowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count());
}

void appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendDouble(std::string &Out, double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof Buf, "%.6g", V);
  Out += Buf;
}

/// JSONL: `"key":value`. Keys are static identifiers, never escaped.
void appendJsonField(std::string &Out, const char *Key, const LogVal &V) {
  Out += ",\"";
  Out += Key;
  Out += "\":";
  switch (V.K) {
  case LogVal::Kind::Str:
    Out += '"';
    appendJsonEscaped(Out, V.S);
    Out += '"';
    break;
  case LogVal::Kind::U64:
    Out += std::to_string(V.U);
    break;
  case LogVal::Kind::I64:
    Out += std::to_string(V.I);
    break;
  case LogVal::Kind::F64:
    appendDouble(Out, V.F);
    break;
  case LogVal::Kind::Bool:
    Out += V.B ? "true" : "false";
    break;
  }
}

/// logfmt: ` key=value`, quoting strings that need it.
void appendLogfmtField(std::string &Out, const char *Key, const LogVal &V) {
  Out += ' ';
  Out += Key;
  Out += '=';
  switch (V.K) {
  case LogVal::Kind::Str: {
    bool NeedQuote = V.S.empty();
    for (char C : V.S)
      NeedQuote |= C == ' ' || C == '"' || C == '=' || C == '\n';
    if (NeedQuote) {
      Out += '"';
      appendJsonEscaped(Out, V.S);
      Out += '"';
    } else {
      Out += V.S;
    }
    break;
  }
  case LogVal::Kind::U64:
    Out += std::to_string(V.U);
    break;
  case LogVal::Kind::I64:
    Out += std::to_string(V.I);
    break;
  case LogVal::Kind::F64:
    appendDouble(Out, V.F);
    break;
  case LogVal::Kind::Bool:
    Out += V.B ? "true" : "false";
    break;
  }
}

} // namespace

bool bec::obs::logEnabled(LogLevel L) {
  return uint8_t(L) >=
         state().Level.load(std::memory_order_relaxed);
}

LogLevel bec::obs::logLevel() {
  return LogLevel(state().Level.load(std::memory_order_relaxed));
}

void bec::obs::setLogLevel(LogLevel L) {
  state().Level.store(uint8_t(L), std::memory_order_relaxed);
}

void bec::obs::setLogFormat(LogFormat F) {
  state().Format.store(uint8_t(F), std::memory_order_relaxed);
}

LogFormat bec::obs::logFormat() {
  return LogFormat(state().Format.load(std::memory_order_relaxed));
}

bool bec::obs::openLogFile(const std::string &Path, std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "a");
  if (!F) {
    Err = "cannot open log file '" + Path + "'";
    return false;
  }
  LogState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Sink)
    std::fclose(S.Sink);
  S.Sink = F;
  return true;
}

void bec::obs::closeLogFile() {
  LogState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Sink)
    std::fclose(S.Sink);
  S.Sink = nullptr;
}

void bec::obs::setLogRateLimit(uint64_t PerSecond) {
  state().RatePerSecond.store(PerSecond, std::memory_order_relaxed);
}

void bec::obs::log(LogLevel L, std::string_view Event,
                   std::initializer_list<LogField> Fields) {
  if (L == LogLevel::Off || !logEnabled(L))
    return;
  LogState &S = state();
  uint64_t TsUs = wallNowUs();

  // Render into a reusable per-thread buffer before taking the sink
  // lock, so the critical section is one write + the rate-map touch.
  thread_local std::string Line;
  Line.clear();
  LogFormat F = logFormat();
  if (F == LogFormat::Jsonl) {
    Line += "{\"ts_us\":";
    Line += std::to_string(TsUs);
    Line += ",\"level\":\"";
    Line += logLevelName(L);
    Line += "\",\"event\":\"";
    appendJsonEscaped(Line, Event);
    Line += '"';
  } else {
    Line += "ts_us=";
    Line += std::to_string(TsUs);
    Line += " level=";
    Line += logLevelName(L);
    Line += " event=";
    Line += Event;
  }
  auto AppendField = [&](const char *Key, const LogVal &V) {
    if (F == LogFormat::Jsonl)
      appendJsonField(Line, Key, V);
    else
      appendLogfmtField(Line, Key, V);
  };
  for (const LogField &Fld : Fields)
    AppendField(Fld.Key, Fld.Val);
  if (const LogCtx *Ctx = TLCtx) {
    AppendField("conn", LogVal(Ctx->Conn));
    if (!Ctx->Method.empty())
      AppendField("method", LogVal(Ctx->Method));
    if (!Ctx->TraceId.empty())
      AppendField("trace_id", LogVal(Ctx->TraceId));
  }

  uint64_t Cap = S.RatePerSecond.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(S.Mu);
  uint64_t Suppressed = 0;
  if (Cap) {
    auto It = S.Rates.find(Event);
    if (It == S.Rates.end())
      It = S.Rates.emplace(std::string(Event), RateEntry{}).first;
    RateEntry &E = It->second;
    if (TsUs - E.WindowStartUs >= 1000000) {
      E.WindowStartUs = TsUs;
      E.Emitted = 0;
    }
    if (E.Emitted >= Cap) {
      ++E.Suppressed;
      return;
    }
    ++E.Emitted;
    Suppressed = E.Suppressed;
    E.Suppressed = 0;
  }
  if (Suppressed)
    AppendField("suppressed", LogVal(Suppressed));
  if (F == LogFormat::Jsonl)
    Line += '}';
  Line += '\n';
  std::FILE *Out = S.Sink ? S.Sink : stderr;
  std::fwrite(Line.data(), 1, Line.size(), Out);
  std::fflush(Out);
}

LogRequestScope::LogRequestScope(uint64_t ConnId, std::string_view Method,
                                 std::string_view TraceId) {
  auto *Ctx = new LogCtx();
  // Conn 0 = "not my layer": the Service's scope inherits the conn id
  // the transport's enclosing scope established.
  Ctx->Conn = ConnId ? ConnId : (TLCtx ? TLCtx->Conn : 0);
  Ctx->Method = std::string(Method);
  Ctx->TraceId = std::string(TraceId);
  Ctx->Prev = TLCtx;
  Prev = Ctx->Prev;
  TLCtx = Ctx;
}

LogRequestScope::~LogRequestScope() {
  LogCtx *Ctx = TLCtx;
  TLCtx = static_cast<LogCtx *>(Prev);
  delete Ctx;
}

#endif // BEC_OBS_DISABLED
