//===- obs/Prometheus.h - Text exposition of a metrics snapshot -----------===//
///
/// \file
/// Renders an obs::MetricsSnapshot in the Prometheus text exposition
/// format (version 0.0.4): `# TYPE` headers, `_total` counters, gauges,
/// and full `_bucket{le=...}`/`_sum`/`_count` histograms. Metric names
/// map `engine.runs` -> `bec_engine_runs_total`; a registry name's
/// embedded label set (`serve.method.us{method="analyze"}`) becomes the
/// line's label set. Families are sorted by name so the exposition is
/// deterministic given the same values — the becd `metrics` RPC returns
/// exactly this text, and the CI serve smoke validates every line of it.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_OBS_PROMETHEUS_H
#define BEC_OBS_PROMETHEUS_H

#include "obs/Metrics.h"

#include <string>

namespace bec {
namespace obs {

std::string renderPrometheus(const MetricsSnapshot &S);

} // namespace obs
} // namespace bec

#endif // BEC_OBS_PROMETHEUS_H
