//===- obs/SpanRing.h - Bounded ring of trace-context request spans -------===//
///
/// \file
/// Cross-process half of bec tracing. obs/Trace.h records a process's
/// *own* spans for `--trace-out`; this ring records spans a server
/// handled *on behalf of a remote trace* so the originating client can
/// later collect them with the `trace/dump` RPC and stitch one
/// distributed timeline (client -> gateway -> backend).
///
/// A span lands in the ring only when its request carried a `trace`
/// context in the JSON-RPC envelope (serve/Protocol.h), i.e. the cost
/// is zero for untraced traffic. The ring is bounded (default 4096
/// spans, oldest evicted first) so a daemon can keep it forever;
/// `trace/dump` optionally filters by trace id, which is how a client
/// picks its own spans out of a shared server.
///
/// Identity model (W3C-traceparent-shaped): a 128-bit trace id (32 hex
/// chars) names the whole distributed request; every hop's span gets a
/// fresh 64-bit span id (16 hex) and records its parent's span id, so
/// the stitched timeline is a tree — client root -> gateway span ->
/// backend span, with failover retries as siblings.
///
/// Timestamps are system-clock epoch microseconds (wall time): unlike
/// the steady in-process tracer clock, wall time is the only base the
/// stitching client can align across processes. Durations come from
/// the steady clock.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_OBS_SPANRING_H
#define BEC_OBS_SPANRING_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bec {
namespace obs {

/// One completed span held for trace/dump.
struct RingSpan {
  std::string TraceId;    ///< 32 lowercase hex chars.
  std::string SpanId;     ///< 16 lowercase hex chars, unique per span.
  std::string ParentSpan; ///< Parent's span id; empty at the trace root.
  std::string Name;       ///< "serve.analyze", "gateway.forward", ...
  std::string ArgsJson;   ///< Pre-rendered {"k":v,...}; empty = none.
  uint64_t StartUs = 0;   ///< Wall clock, epoch microseconds.
  uint64_t DurUs = 0;
  uint64_t Tid = 0; ///< Handling thread (viewer lane), process-local.
};

/// Fresh random ids (thread-safe).
std::string newTraceId128();
std::string newSpanId64();

/// Labels this process in dumped spans ("becd", "gateway"). The driver
/// sets it once at serve/gateway startup.
void setSpanRingProcess(std::string Name);
std::string spanRingProcess();

/// Appends one completed span, evicting the oldest past the capacity.
void spanRingRecord(RingSpan S);

/// Snapshot, oldest first; \p TraceIdFilter empty = everything.
std::vector<RingSpan> spanRingSnapshot(std::string_view TraceIdFilter = {});

/// Empties the ring (tests).
void spanRingClear();

/// Renders one span as the `trace/dump` wire object:
///   {"name":..,"trace_id":..,"span_id":..,"parent_span":..,
///    "start_us":N,"dur_us":N,"tid":N,"process":..[,"args":{..}]}
/// Shared by the daemon's trace/dump method and the gateway's merge of
/// backend dumps (which re-renders with the backend's process label).
std::string renderRingSpanJson(const RingSpan &S, std::string_view Process);

/// RAII recorder: construct with the request's trace context; on
/// destruction the span (wall start, steady duration) lands in the
/// ring. An empty \p TraceId makes it inert — the no-trace fast path.
class RingSpanScope {
public:
  RingSpanScope(std::string_view TraceId, std::string_view ParentSpan,
                std::string Name);
  RingSpanScope(const RingSpanScope &) = delete;
  RingSpanScope &operator=(const RingSpanScope &) = delete;
  ~RingSpanScope();

  bool active() const { return Active; }
  /// This span's id — what a forwarding hop passes downstream as the
  /// parent span id.
  const std::string &spanId() const { return S.SpanId; }

  /// Attaches a {"k":v} argument to the recorded span.
  void arg(const char *Key, uint64_t V);
  void arg(const char *Key, std::string_view V);

private:
  void appendArgKey(const char *Key);

  bool Active = false;
  RingSpan S;
  uint64_t SteadyStartUs = 0;
};

} // namespace obs
} // namespace bec

#endif // BEC_OBS_SPANRING_H
