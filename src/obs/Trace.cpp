//===- obs/Trace.cpp - Span tracer emitting Chrome trace_event JSON -------===//

#include "obs/Trace.h"

#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <vector>

using namespace bec;
using namespace bec::obs;

#ifndef BEC_OBS_DISABLED

namespace {

struct Event {
  std::string Name;
  std::string ArgsJson; ///< Pre-rendered {"k":v,...}; empty = no args.
  uint64_t TsUs = 0;
  uint32_t Tid = 0;
  char Phase = 'B'; ///< 'B' begin, 'E' end, 'M' metadata (thread_name).
};

struct EventBuf; // Forward.

struct TraceState {
  std::atomic<bool> Active{false};
  /// Bumped by every traceBegin(); spans opened under an older
  /// generation never emit into a newer trace.
  std::atomic<uint64_t> Generation{0};
  std::chrono::steady_clock::time_point Start;

  std::mutex Mu;
  std::vector<EventBuf *> Live;       ///< Buffers of live threads.
  std::vector<Event> Flushed;         ///< From exited threads, current gen.
  uint32_t NextTid = 0;               ///< Stable small viewer tids.
};

TraceState &state() {
  // Leaked like the metrics registry: exiting threads flush here during
  // process teardown.
  static TraceState *S = new TraceState();
  return *S;
}

/// Per-thread event buffer: appends are unsynchronized (only this
/// thread writes), harvest happens in traceEnd() after instrumented
/// work has joined, flush-on-exit happens under the state mutex.
struct EventBuf {
  std::vector<Event> Events;
  uint64_t Gen = 0;
  uint32_t Tid = 0;

  void ensureGen(TraceState &S) {
    uint64_t G = S.Generation.load(std::memory_order_acquire);
    if (Gen == G)
      return;
    Events.clear();
    Gen = G;
    std::lock_guard<std::mutex> Lock(S.Mu);
    Tid = S.NextTid++;
    bool Registered = false;
    for (EventBuf *Buf : S.Live)
      Registered |= Buf == this;
    if (!Registered)
      S.Live.push_back(this);
  }

  ~EventBuf() {
    TraceState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (Gen == S.Generation.load(std::memory_order_relaxed))
      for (Event &E : Events)
        S.Flushed.push_back(std::move(E));
    for (size_t I = 0; I < S.Live.size(); ++I)
      if (S.Live[I] == this) {
        S.Live.erase(S.Live.begin() + I);
        break;
      }
  }
};

thread_local EventBuf TLBuf;

uint64_t nowUs(const TraceState &S) {
  auto D = std::chrono::steady_clock::now() - S.Start;
  auto Us = std::chrono::duration_cast<std::chrono::microseconds>(D).count();
  return Us < 0 ? 0 : uint64_t(Us);
}

std::string renderArgs(std::initializer_list<SpanArg> Args) {
  std::string Out = "{";
  bool First = true;
  for (const SpanArg &A : Args) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += A.first; // Static keys, no escaping needed.
    Out += "\":";
    Out += std::to_string(A.second);
  }
  Out += '}';
  return Out;
}

void emit(Event E) {
  TraceState &S = state();
  TLBuf.ensureGen(S);
  E.Tid = TLBuf.Tid;
  TLBuf.Events.push_back(std::move(E));
}

} // namespace

bool bec::obs::traceActive() {
  return state().Active.load(std::memory_order_relaxed);
}

void bec::obs::traceBegin() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Flushed.clear();
  S.NextTid = 0;
  S.Start = std::chrono::steady_clock::now();
  S.Generation.fetch_add(1, std::memory_order_release);
  S.Active.store(true, std::memory_order_release);
}

std::string bec::obs::traceEnd() {
  TraceState &S = state();
  S.Active.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(S.Mu);
  uint64_t Gen = S.Generation.load(std::memory_order_relaxed);

  // JsonWriter cannot splice the pre-rendered args objects, so the
  // events array is assembled by hand (the writer still does every
  // string escape).
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto Append = [&](const Event &E) {
    if (!First)
      Out += ',';
    First = false;
    JsonWriter EW;
    EW.beginObject();
    EW.key("name").value(E.Name);
    EW.key("cat").value("bec");
    EW.key("ph").value(std::string_view(&E.Phase, 1));
    EW.key("ts").value(E.TsUs);
    EW.key("pid").value(uint64_t(1));
    EW.key("tid").value(uint64_t(E.Tid));
    EW.endObject();
    std::string Obj = EW.take();
    if (!E.ArgsJson.empty()) {
      Obj.pop_back(); // Strip '}' to splice the pre-rendered args.
      Obj += ",\"args\":";
      Obj += E.ArgsJson;
      Obj += '}';
    }
    Out += Obj;
  };
  for (const Event &E : S.Flushed)
    Append(E);
  for (const EventBuf *B : S.Live)
    if (B->Gen == Gen)
      for (const Event &E : B->Events)
        Append(E);
  Out += "]}\n";
  return Out;
}

bool bec::obs::writeTrace(const std::string &Path, std::string &Err) {
  std::string Json = traceEnd();
  std::ofstream OutFile(Path, std::ios::binary);
  if (!OutFile) {
    Err = "cannot write trace file '" + Path + "'";
    return false;
  }
  OutFile << Json;
  OutFile.flush();
  if (!OutFile) {
    Err = "failed writing trace file '" + Path + "'";
    return false;
  }
  return true;
}

void bec::obs::setTraceThreadName(const std::string &Name) {
  if (!traceActive())
    return;
  Event E;
  E.Name = "thread_name";
  E.Phase = 'M';
  JsonWriter W;
  W.beginObject();
  W.key("name").value(Name);
  W.endObject();
  E.ArgsJson = W.take();
  E.TsUs = 0;
  emit(std::move(E));
}

Span::Span(std::string SpanName) {
  if (SpanName.empty() || !traceActive())
    return;
  TraceState &S = state();
  Live = true;
  Gen = S.Generation.load(std::memory_order_acquire);
  Name = std::move(SpanName);
  Event E;
  E.Name = Name;
  E.Phase = 'B';
  E.TsUs = nowUs(S);
  emit(std::move(E));
}

Span::Span(std::string SpanName, std::initializer_list<SpanArg> Args) {
  if (SpanName.empty() || !traceActive())
    return;
  TraceState &S = state();
  Live = true;
  Gen = S.Generation.load(std::memory_order_acquire);
  Name = std::move(SpanName);
  Event E;
  E.Name = Name;
  E.Phase = 'B';
  E.TsUs = nowUs(S);
  E.ArgsJson = renderArgs(Args);
  emit(std::move(E));
}

void Span::arg(const char *Key, uint64_t V) {
  if (!Live)
    return;
  if (EndArgs.empty())
    EndArgs = "{";
  else {
    EndArgs.pop_back(); // '}' not yet appended; EndArgs ends with value.
    EndArgs += ',';
  }
  EndArgs += '"';
  EndArgs += Key;
  EndArgs += "\":";
  EndArgs += std::to_string(V);
  EndArgs += '}';
}

void Span::argStr(const char *Key, std::string_view V) {
  if (!Live)
    return;
  if (EndArgs.empty())
    EndArgs = "{";
  else {
    EndArgs.pop_back();
    EndArgs += ',';
  }
  EndArgs += '"';
  EndArgs += Key;
  EndArgs += "\":";
  JsonWriter W;
  W.value(V);
  EndArgs += W.take();
  EndArgs += '}';
}

Span::~Span() {
  if (!Live)
    return;
  TraceState &S = state();
  // A span closing after traceEnd() (or inside a newer trace) stays
  // silent: its B event is gone, an E would be unbalanced.
  if (Gen != S.Generation.load(std::memory_order_acquire) ||
      !S.Active.load(std::memory_order_relaxed))
    return;
  Event E;
  E.Name = std::move(Name); // E repeats the name; viewers match by stack.
  E.Phase = 'E';
  E.TsUs = nowUs(S);
  E.ArgsJson = std::move(EndArgs);
  emit(std::move(E));
}

#else // BEC_OBS_DISABLED

bool bec::obs::writeTrace(const std::string &Path, std::string &Err) {
  std::ofstream OutFile(Path, std::ios::binary);
  if (!OutFile) {
    Err = "cannot write trace file '" + Path + "'";
    return false;
  }
  OutFile << traceEnd();
  return true;
}

#endif // BEC_OBS_DISABLED
