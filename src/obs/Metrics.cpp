//===- obs/Metrics.cpp - Lock-free sharded metrics registry ---------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>

using namespace bec;
using namespace bec::obs;

//===----------------------------------------------------------------------===//
// Geometry helpers (available in both builds: snapshots parsed from a
// remote stats reply still need quantiles under BEC_OBS_DISABLED).
//===----------------------------------------------------------------------===//

uint64_t bec::obs::histogramBucketBound(unsigned B) {
  if (B + 1 >= NumHistogramBuckets)
    return ~uint64_t(0); // +Inf.
  return uint64_t(1) << B;
}

uint64_t HistogramData::quantileUs(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Rank of the quantile observation (1-based, ceil), then walk the
  // cumulative bucket counts.
  uint64_t Rank = uint64_t(std::ceil(Q * double(Count)));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Cum = 0;
  for (unsigned B = 0; B < NumHistogramBuckets; ++B) {
    Cum += Buckets[B];
    if (Cum >= Rank) {
      if (B + 1 >= NumHistogramBuckets)
        return histogramBucketBound(NumHistogramBuckets - 2) * 2; // Saturate.
      return histogramBucketBound(B);
    }
  }
  return histogramBucketBound(NumHistogramBuckets - 2) * 2;
}

const MetricValue *MetricsSnapshot::find(std::string_view Name) const {
  for (const MetricValue &M : Metrics)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

#ifndef BEC_OBS_DISABLED

//===----------------------------------------------------------------------===//
// Registry internals
//===----------------------------------------------------------------------===//

namespace {

/// Cell capacity of one per-thread shard. 4096 cells = 32 KiB per
/// writing thread; a histogram costs NumHistogramBuckets + 2 cells, so
/// this comfortably covers hundreds of metrics. Registrations past the
/// cap get a dead handle (silently no-op) rather than UB.
constexpr uint32_t MaxSlots = 4096;

struct Shard {
  std::array<std::atomic<uint64_t>, MaxSlots> Cells{};
};

struct MetricMeta {
  std::string Name;
  MetricKind Kind;
  uint32_t Slot;  ///< First cell (counters/histograms) or gauge index.
  uint32_t Cells; ///< Cell count (0 for gauges).
};

struct Registry {
  std::mutex Mu;
  std::vector<MetricMeta> Metrics; // Registration order.
  uint32_t NextSlot = 0;
  /// Sums of the shards of exited threads, index-parallel to cells.
  std::array<uint64_t, MaxSlots> Retired{};
  std::vector<Shard *> LiveShards;
  /// Gauges live here, not in shards: a level is global by nature.
  std::vector<std::unique_ptr<std::atomic<int64_t>>> Gauges;
  std::atomic<bool> Enabled{true};

  Registry() {
    if (const char *E = std::getenv("BEC_OBS_DISABLED"))
      if (E[0] && !(E[0] == '0' && E[1] == '\0'))
        Enabled.store(false, std::memory_order_relaxed);
  }
};

Registry &registry() {
  // Leaked on purpose: worker threads may fold their shards into the
  // retired accumulator during process teardown, after static
  // destructors would have run.
  static Registry *R = new Registry();
  return *R;
}

/// The calling thread's shard, registered with the registry on first
/// use and folded into Retired on thread exit.
struct ThreadShard {
  Shard *S = nullptr;

  Shard *get() {
    if (!S) {
      S = new Shard();
      Registry &R = registry();
      std::lock_guard<std::mutex> Lock(R.Mu);
      R.LiveShards.push_back(S);
    }
    return S;
  }

  ~ThreadShard() {
    if (!S)
      return;
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (uint32_t I = 0; I < MaxSlots; ++I)
      R.Retired[I] += S->Cells[I].load(std::memory_order_relaxed);
    R.LiveShards.erase(
        std::find(R.LiveShards.begin(), R.LiveShards.end(), S));
    delete S;
  }
};

thread_local ThreadShard TLS;

} // namespace

detail::Slot bec::obs::detail::registerMetric(std::string_view Name,
                                              MetricKind Kind) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (const MetricMeta &M : R.Metrics)
    if (M.Name == Name && M.Kind == Kind)
      return M.Slot;
  uint32_t Cells = Kind == MetricKind::Counter     ? 1
                   : Kind == MetricKind::Histogram ? NumHistogramBuckets + 2
                                                   : 0;
  MetricMeta Meta;
  Meta.Name = std::string(Name);
  Meta.Kind = Kind;
  Meta.Cells = Cells;
  if (Kind == MetricKind::Gauge) {
    Meta.Slot = uint32_t(R.Gauges.size());
    R.Gauges.push_back(std::make_unique<std::atomic<int64_t>>(0));
  } else {
    if (R.NextSlot + Cells > MaxSlots)
      return DeadSlot;
    Meta.Slot = R.NextSlot;
    R.NextSlot += Cells;
  }
  R.Metrics.push_back(std::move(Meta));
  return R.Metrics.back().Slot;
}

bool bec::obs::detail::enabled() {
  return registry().Enabled.load(std::memory_order_relaxed);
}

void bec::obs::detail::counterAdd(Slot S, uint64_t N) {
  if (S == DeadSlot)
    return;
  TLS.get()->Cells[S].fetch_add(N, std::memory_order_relaxed);
}

void bec::obs::detail::gaugeAdd(Slot S, int64_t Delta) {
  if (S == DeadSlot)
    return;
  Registry &R = registry();
  R.Gauges[S]->fetch_add(Delta, std::memory_order_relaxed);
}

void bec::obs::detail::gaugeSet(Slot S, int64_t V) {
  if (S == DeadSlot)
    return;
  Registry &R = registry();
  R.Gauges[S]->store(V, std::memory_order_relaxed);
}

void bec::obs::detail::histogramObserve(Slot S, uint64_t Us) {
  if (S == DeadSlot)
    return;
  // Bucket B covers (2^(B-1), 2^B] us; 0 and 1 land in bucket 0, values
  // beyond the last finite bound land in the +Inf bucket.
  unsigned B = Us <= 1 ? 0 : unsigned(std::bit_width(Us - 1));
  if (B >= NumHistogramBuckets - 1)
    B = NumHistogramBuckets - 1;
  Shard *Sh = TLS.get();
  Sh->Cells[S + B].fetch_add(1, std::memory_order_relaxed);
  Sh->Cells[S + NumHistogramBuckets].fetch_add(1, std::memory_order_relaxed);
  Sh->Cells[S + NumHistogramBuckets + 1].fetch_add(Us,
                                                   std::memory_order_relaxed);
}

MetricsSnapshot bec::obs::snapshotMetrics() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  // Merge retired + live cells once, then slice per metric.
  std::array<uint64_t, MaxSlots> Sum = R.Retired;
  for (const Shard *S : R.LiveShards)
    for (uint32_t I = 0; I < R.NextSlot; ++I)
      Sum[I] += S->Cells[I].load(std::memory_order_relaxed);

  MetricsSnapshot Snap;
  Snap.Metrics.reserve(R.Metrics.size());
  for (const MetricMeta &M : R.Metrics) {
    MetricValue V;
    V.Name = M.Name;
    V.Kind = M.Kind;
    switch (M.Kind) {
    case MetricKind::Counter:
      V.Value = M.Slot == detail::DeadSlot ? 0 : Sum[M.Slot];
      break;
    case MetricKind::Gauge:
      V.GaugeValue = R.Gauges[M.Slot]->load(std::memory_order_relaxed);
      break;
    case MetricKind::Histogram:
      if (M.Slot != detail::DeadSlot) {
        for (unsigned B = 0; B < NumHistogramBuckets; ++B)
          V.Hist.Buckets[B] = Sum[M.Slot + B];
        V.Hist.Count = Sum[M.Slot + NumHistogramBuckets];
        V.Hist.SumUs = Sum[M.Slot + NumHistogramBuckets + 1];
      }
      break;
    }
    Snap.Metrics.push_back(std::move(V));
  }
  return Snap;
}

void bec::obs::resetMetrics() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Retired.fill(0);
  for (Shard *S : R.LiveShards)
    for (uint32_t I = 0; I < MaxSlots; ++I)
      S->Cells[I].store(0, std::memory_order_relaxed);
  for (auto &G : R.Gauges)
    G->store(0, std::memory_order_relaxed);
}

bool bec::obs::metricsEnabled() { return detail::enabled(); }

void bec::obs::setMetricsEnabled(bool Enabled) {
  registry().Enabled.store(Enabled, std::memory_order_relaxed);
}

#endif // BEC_OBS_DISABLED
