//===- obs/Prometheus.cpp - Text exposition of a metrics snapshot ---------===//

#include "obs/Prometheus.h"

#include <algorithm>
#include <map>

using namespace bec;
using namespace bec::obs;

namespace {

/// "serve.method.us{method=\"analyze\"}" -> base "serve.method.us",
/// labels "method=\"analyze\"".
void splitName(const std::string &Name, std::string &Base,
               std::string &Labels) {
  size_t Brace = Name.find('{');
  if (Brace == std::string::npos) {
    Base = Name;
    Labels.clear();
    return;
  }
  Base = Name.substr(0, Brace);
  size_t End = Name.rfind('}');
  Labels = End != std::string::npos && End > Brace
               ? Name.substr(Brace + 1, End - Brace - 1)
               : std::string();
}

std::string promName(const std::string &Base) {
  std::string Out = "bec_";
  for (char C : Base)
    Out += (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                   (C >= '0' && C <= '9') || C == '_'
               ? C
               : '_';
  return Out;
}

std::string withLabels(const std::string &Name, const std::string &Labels,
                       const std::string &Extra = {}) {
  if (Labels.empty() && Extra.empty())
    return Name;
  std::string Out = Name + "{" + Labels;
  if (!Labels.empty() && !Extra.empty())
    Out += ',';
  Out += Extra;
  Out += '}';
  return Out;
}

const char *kindName(MetricKind K) {
  switch (K) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  return "untyped";
}

} // namespace

std::string bec::obs::renderPrometheus(const MetricsSnapshot &S) {
  // Group by family (prom name), keeping label variants together; sort
  // families for a deterministic exposition.
  struct Entry {
    std::string Labels;
    const MetricValue *M;
  };
  std::map<std::string, std::pair<MetricKind, std::vector<Entry>>> Families;
  for (const MetricValue &M : S.Metrics) {
    std::string Base, Labels;
    splitName(M.Name, Base, Labels);
    std::string P = promName(Base);
    if (M.Kind == MetricKind::Counter)
      P += "_total";
    auto &F = Families[P];
    F.first = M.Kind;
    F.second.push_back({Labels, &M});
  }

  std::string Out;
  for (auto &[Name, Family] : Families) {
    auto &[Kind, Entries] = Family;
    std::sort(Entries.begin(), Entries.end(),
              [](const Entry &A, const Entry &B) { return A.Labels < B.Labels; });
    Out += "# TYPE " + Name + " " + kindName(Kind) + "\n";
    for (const Entry &E : Entries) {
      switch (Kind) {
      case MetricKind::Counter:
        Out += withLabels(Name, E.Labels) + " " + std::to_string(E.M->Value) +
               "\n";
        break;
      case MetricKind::Gauge:
        Out += withLabels(Name, E.Labels) + " " +
               std::to_string(E.M->GaugeValue) + "\n";
        break;
      case MetricKind::Histogram: {
        uint64_t Cum = 0;
        for (unsigned B = 0; B < NumHistogramBuckets; ++B) {
          Cum += E.M->Hist.Buckets[B];
          std::string Le =
              B + 1 == NumHistogramBuckets
                  ? std::string("+Inf")
                  : std::to_string(histogramBucketBound(B));
          Out += withLabels(Name + "_bucket", E.Labels,
                            "le=\"" + Le + "\"") +
                 " " + std::to_string(Cum) + "\n";
        }
        Out += withLabels(Name + "_sum", E.Labels) + " " +
               std::to_string(E.M->Hist.SumUs) + "\n";
        Out += withLabels(Name + "_count", E.Labels) + " " +
               std::to_string(E.M->Hist.Count) + "\n";
        break;
      }
      }
    }
  }
  return Out;
}
