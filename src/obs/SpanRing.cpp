//===- obs/SpanRing.cpp - Bounded ring of trace-context request spans -----===//

#include "obs/SpanRing.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <random>

using namespace bec;
using namespace bec::obs;

namespace {

constexpr size_t RingCapacity = 4096;

struct RingState {
  std::mutex Mu;
  std::deque<RingSpan> Spans;
  std::string Process = "bec";
  std::atomic<uint64_t> NextTid{0};
};

RingState &state() {
  // Leaked like the other obs singletons: usable during teardown.
  static RingState *S = new RingState();
  return *S;
}

/// splitmix64 over a random-device-seeded counter: ids are unique per
/// process and unpredictable enough to never collide across the three
/// processes of one trace.
uint64_t nextRandom() {
  static std::atomic<uint64_t> Counter{[] {
    std::random_device RD;
    return (uint64_t(RD()) << 32) ^ RD();
  }()};
  uint64_t Z = Counter.fetch_add(0x9e3779b97f4a7c15, std::memory_order_relaxed)
               + 0x9e3779b97f4a7c15;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111eb;
  return Z ^ (Z >> 31);
}

std::string hex64(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    Out[I] = Digits[V & 15];
  return Out;
}

uint64_t wallNowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count());
}

uint64_t steadyNowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

thread_local uint64_t TLTid = ~uint64_t(0);

uint64_t ringTid() {
  if (TLTid == ~uint64_t(0))
    TLTid = state().NextTid.fetch_add(1, std::memory_order_relaxed);
  return TLTid;
}

} // namespace

std::string bec::obs::newTraceId128() {
  return hex64(nextRandom()) + hex64(nextRandom());
}

std::string bec::obs::newSpanId64() { return hex64(nextRandom()); }

void bec::obs::setSpanRingProcess(std::string Name) {
  RingState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Process = std::move(Name);
}

std::string bec::obs::spanRingProcess() {
  RingState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Process;
}

void bec::obs::spanRingRecord(RingSpan Sp) {
  RingState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Spans.size() >= RingCapacity)
    S.Spans.pop_front();
  S.Spans.push_back(std::move(Sp));
}

std::vector<RingSpan>
bec::obs::spanRingSnapshot(std::string_view TraceIdFilter) {
  RingState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  std::vector<RingSpan> Out;
  for (const RingSpan &Sp : S.Spans)
    if (TraceIdFilter.empty() || Sp.TraceId == TraceIdFilter)
      Out.push_back(Sp);
  return Out;
}

std::string bec::obs::renderRingSpanJson(const RingSpan &S,
                                         std::string_view Process) {
  auto AppendStr = [](std::string &Out, std::string_view V) {
    Out += '"';
    for (char C : V) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (uint8_t(C) < 0x20) {
        // Control characters cannot appear in valid ids/names; drop
        // them rather than emit invalid JSON.
        continue;
      }
      Out += C;
    }
    Out += '"';
  };
  std::string Out = "{\"name\":";
  AppendStr(Out, S.Name);
  Out += ",\"trace_id\":";
  AppendStr(Out, S.TraceId);
  Out += ",\"span_id\":";
  AppendStr(Out, S.SpanId);
  Out += ",\"parent_span\":";
  AppendStr(Out, S.ParentSpan);
  Out += ",\"start_us\":" + std::to_string(S.StartUs);
  Out += ",\"dur_us\":" + std::to_string(S.DurUs);
  Out += ",\"tid\":" + std::to_string(S.Tid);
  Out += ",\"process\":";
  AppendStr(Out, Process);
  if (!S.ArgsJson.empty()) {
    Out += ",\"args\":";
    Out += S.ArgsJson;
  }
  Out += '}';
  return Out;
}

void bec::obs::spanRingClear() {
  RingState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Spans.clear();
}

RingSpanScope::RingSpanScope(std::string_view TraceId,
                             std::string_view ParentSpan, std::string Name) {
  if (TraceId.empty())
    return;
  Active = true;
  S.TraceId = std::string(TraceId);
  S.SpanId = newSpanId64();
  S.ParentSpan = std::string(ParentSpan);
  S.Name = std::move(Name);
  S.StartUs = wallNowUs();
  S.Tid = ringTid();
  SteadyStartUs = steadyNowUs();
}

void RingSpanScope::appendArgKey(const char *Key) {
  if (S.ArgsJson.empty())
    S.ArgsJson = "{";
  else {
    S.ArgsJson.pop_back();
    S.ArgsJson += ',';
  }
  S.ArgsJson += '"';
  S.ArgsJson += Key; // Static keys, no escaping needed.
  S.ArgsJson += "\":";
}

void RingSpanScope::arg(const char *Key, uint64_t V) {
  if (!Active)
    return;
  appendArgKey(Key);
  S.ArgsJson += std::to_string(V);
  S.ArgsJson += '}';
}

void RingSpanScope::arg(const char *Key, std::string_view V) {
  if (!Active)
    return;
  appendArgKey(Key);
  S.ArgsJson += '"';
  for (char C : V) {
    if (C == '"' || C == '\\')
      S.ArgsJson += '\\';
    S.ArgsJson += C;
  }
  S.ArgsJson += "\"}";
}

RingSpanScope::~RingSpanScope() {
  if (!Active)
    return;
  uint64_t End = steadyNowUs();
  S.DurUs = End > SteadyStartUs ? End - SteadyStartUs : 0;
  spanRingRecord(std::move(S));
}
