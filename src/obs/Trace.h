//===- obs/Trace.h - Span tracer emitting Chrome trace_event JSON ---------===//
///
/// \file
/// The tracing half of the bec observability layer (obs/Metrics.h is the
/// metrics half). A process-global span tracer producing Chrome
/// trace_event JSON — the `{"traceEvents":[...]}` dialect that
/// chrome://tracing and Perfetto load directly. The driver's
/// `--trace-out=FILE` wraps any subcommand in traceBegin()/writeTrace();
/// instrumented layers create RAII Spans that cost one branch when no
/// trace is active.
///
/// Model:
///  * traceBegin() arms the tracer and starts the clock; Span
///    constructors emit "B" (begin) events and destructors the matching
///    "E", into per-thread buffers (no locks on the hot path).
///  * Spans carry deterministic names ("fi.shard", "query:cmd.analyze")
///    and optional small integer args; nondeterminism lives only in the
///    timestamps (microseconds since traceBegin, steady clock).
///  * setTraceThreadName() labels the calling thread in the viewer
///    (rendered as a thread_name metadata event).
///  * traceEnd()/writeTrace() disarm the tracer and render the JSON.
///    Contract: every span must be closed and instrumented work joined
///    before calling it (the driver traces the full subcommand, whose
///    pools are all scoped inside).
///
/// Under BEC_OBS_DISABLED everything compiles to no-ops and traceEnd()
/// renders an empty-but-valid trace.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_OBS_TRACE_H
#define BEC_OBS_TRACE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

namespace bec {
namespace obs {

/// One "k":v integer argument of a span.
using SpanArg = std::pair<const char *, uint64_t>;

#ifndef BEC_OBS_DISABLED

/// True while a trace is being collected. Instrumentation that must
/// build a dynamic span name checks this first so inactive runs never
/// pay the string construction.
bool traceActive();

/// Arms the tracer: clears previous events, restarts the clock. Nested
/// traces are not supported (second call re-arms).
void traceBegin();

/// Disarms the tracer and renders everything collected as a Chrome
/// trace_event JSON document. Requires all spans closed (see file
/// comment).
std::string traceEnd();

/// traceEnd() straight into \p Path. False with \p Err filled when the
/// file cannot be written.
bool writeTrace(const std::string &Path, std::string &Err);

/// Labels the calling thread in the trace viewer ("fi-worker-3").
void setTraceThreadName(const std::string &Name);

/// RAII span: emits B at construction and E at destruction when a trace
/// is active. An empty name makes the span inert, which is the idiom
/// for conditional dynamic names:
///   obs::Span S(obs::traceActive() ? "query:" + Key : std::string());
class Span {
public:
  Span() = default;
  explicit Span(std::string Name);
  Span(std::string Name, std::initializer_list<SpanArg> Args);
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span();

  /// Attaches an integer argument, emitted on the closing E event (the
  /// viewer merges B and E args). For values only known at scope end.
  void arg(const char *Key, uint64_t V);

  /// String variant (JSON-escaped); lets the driver stamp the trace id
  /// onto its root span for distributed-trace stitching.
  void argStr(const char *Key, std::string_view V);

private:
  bool Live = false;
  uint64_t Gen = 0;
  std::string Name;
  std::string EndArgs; ///< Pre-rendered {"k":v,...} for the E event.
};

#else // BEC_OBS_DISABLED

inline bool traceActive() { return false; }
inline void traceBegin() {}
inline std::string traceEnd() { return "{\"traceEvents\":[]}\n"; }
bool writeTrace(const std::string &Path, std::string &Err);
inline void setTraceThreadName(const std::string &) {}

class Span {
public:
  Span() = default;
  explicit Span(std::string) {}
  Span(std::string, std::initializer_list<SpanArg>) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  void arg(const char *, uint64_t) {}
  void argStr(const char *, std::string_view) {}
};

#endif // BEC_OBS_DISABLED

} // namespace obs
} // namespace bec

#endif // BEC_OBS_TRACE_H
