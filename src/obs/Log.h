//===- obs/Log.h - Leveled structured logging (JSONL / logfmt) ------------===//
///
/// \file
/// The logging third of the bec observability layer (obs/Metrics.h and
/// obs/Trace.h are the other two; docs/observability.md is the catalog).
/// A process-global, leveled, structured logger for the *notable-event*
/// path: connection accepts and closes, typed 105/106 rejections,
/// gateway health transitions and failovers, request errors. It is NOT
/// a printf replacement for the analysis hot path — nothing in the
/// per-run engine loop may log above Debug.
///
/// Shape: one complete line per event, machine-parseable.
///
///   JSONL  : {"ts_us":1723190400123456,"level":"warn","event":"net.overload",
///             "conn":7,"in_flight":260}
///   logfmt : ts_us=1723190400123456 level=warn event=net.overload conn=7
///            in_flight=260
///
/// Every line carries `ts_us` (system clock, epoch microseconds),
/// `level` and `event` (dotted lowercase, same naming rules as metric
/// names); further fields are per-site key/value pairs. When the
/// calling thread is inside a LogRequestScope, its request context
/// (`conn`, `method`, and — when the request carried a trace context —
/// `trace_id`) is appended automatically, which is what makes a log
/// line joinable against a distributed trace.
///
/// Cost model: a disabled level is one relaxed atomic load and a
/// branch. An emitted line renders into a reusable per-thread buffer
/// and is written under a mutex in ONE write call, so concurrent
/// writers never interleave partial lines (the CI log-grammar gate
/// parses every line). Per-event-name rate limiting (default 200
/// lines/event/second) keeps a flapping peer from turning the log
/// into the bottleneck; suppressed lines are counted and reported on
/// the next emitted line of that event as `suppressed=N`.
///
/// Under BEC_OBS_DISABLED the whole surface compiles to no-ops.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_OBS_LOG_H
#define BEC_OBS_LOG_H

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace bec {
namespace obs {

enum class LogLevel : uint8_t { Debug = 0, Info, Warn, Error, Off };
enum class LogFormat : uint8_t { Jsonl, Logfmt };

/// "debug" / "info" / "warn" / "error" / "off".
const char *logLevelName(LogLevel L);

/// Inverse of logLevelName (exact lowercase match); nullopt otherwise.
std::optional<LogLevel> parseLogLevel(std::string_view S);

/// "jsonl" / "logfmt"; nullopt otherwise.
std::optional<LogFormat> parseLogFormat(std::string_view S);

/// One typed field value. string_views must outlive the log() call
/// (they are rendered immediately).
struct LogVal {
  enum class Kind : uint8_t { Str, U64, I64, F64, Bool } K;
  std::string_view S;
  uint64_t U = 0;
  int64_t I = 0;
  double F = 0;
  bool B = false;

  LogVal(std::string_view V) : K(Kind::Str), S(V) {}
  LogVal(const char *V) : K(Kind::Str), S(V) {}
  LogVal(const std::string &V) : K(Kind::Str), S(V) {}
  LogVal(uint64_t V) : K(Kind::U64), U(V) {}
  LogVal(unsigned V) : K(Kind::U64), U(V) {}
  LogVal(int64_t V) : K(Kind::I64), I(V) {}
  LogVal(int V) : K(Kind::I64), I(V) {}
  LogVal(double V) : K(Kind::F64), F(V) {}
  LogVal(bool V) : K(Kind::Bool), B(V) {}
};

/// One "key":value field. Keys are static identifiers ([a-z0-9_.]);
/// they are rendered unescaped.
struct LogField {
  const char *Key;
  LogVal Val;
};

#ifndef BEC_OBS_DISABLED

/// True when \p L would be emitted at the current level. The cheap gate
/// for sites that build dynamic field values.
bool logEnabled(LogLevel L);

LogLevel logLevel();
void setLogLevel(LogLevel L);
void setLogFormat(LogFormat F);
LogFormat logFormat();

/// Redirects output from stderr to \p Path (append). False with \p Err
/// filled when the file cannot be opened; the previous sink is kept.
bool openLogFile(const std::string &Path, std::string &Err);

/// Restores the default stderr sink (tests).
void closeLogFile();

/// Emits one complete line: ts_us/level/event, \p Fields, then any
/// ambient LogRequestScope context. Rate-limited per event name.
void log(LogLevel L, std::string_view Event,
         std::initializer_list<LogField> Fields = {});

/// Caps per-event-name emission (lines per second); 0 = unlimited.
/// Default 200. For tests and unusual deployments.
void setLogRateLimit(uint64_t PerSecond);

/// RAII ambient request context: while alive on this thread, emitted
/// lines carry conn=<id> method=<m> and (when non-empty)
/// trace_id=<id>. Scopes do not nest (the inner one wins, the outer is
/// restored on destruction).
class LogRequestScope {
public:
  LogRequestScope(uint64_t ConnId, std::string_view Method,
                  std::string_view TraceId);
  LogRequestScope(const LogRequestScope &) = delete;
  LogRequestScope &operator=(const LogRequestScope &) = delete;
  ~LogRequestScope();

private:
  void *Prev;
};

#else // BEC_OBS_DISABLED

inline bool logEnabled(LogLevel) { return false; }
inline LogLevel logLevel() { return LogLevel::Off; }
inline void setLogLevel(LogLevel) {}
inline void setLogFormat(LogFormat) {}
inline LogFormat logFormat() { return LogFormat::Jsonl; }
inline bool openLogFile(const std::string &, std::string &) { return true; }
inline void closeLogFile() {}
inline void log(LogLevel, std::string_view,
                std::initializer_list<LogField> = {}) {}
inline void setLogRateLimit(uint64_t) {}

class LogRequestScope {
public:
  LogRequestScope(uint64_t, std::string_view, std::string_view) {}
  LogRequestScope(const LogRequestScope &) = delete;
  LogRequestScope &operator=(const LogRequestScope &) = delete;
};

#endif // BEC_OBS_DISABLED

} // namespace obs
} // namespace bec

#endif // BEC_OBS_LOG_H
