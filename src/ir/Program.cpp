//===- ir/Program.cpp - CFG construction and printing ---------------------===//

#include "ir/Program.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>

using namespace bec;

void Program::buildCFG() {
  uint32_t N = size();
  InstrSuccs.assign(N, {});
  InstrPreds.assign(N, {});
  BlockOf.assign(N, 0);
  Reachable.assign(N, false);
  BlockList.clear();
  if (N == 0)
    return;

  // Instruction-level edges.
  for (uint32_t P = 0; P < N; ++P) {
    const Instruction &I = Instrs[P];
    auto AddEdge = [&](uint32_t Succ) {
      assert(Succ < N && "branch target out of range");
      InstrSuccs[P].push_back(Succ);
      InstrPreds[Succ].push_back(P);
    };
    if (isHalt(I.Op))
      continue;
    if (I.Op == Opcode::J) {
      AddEdge(static_cast<uint32_t>(I.Target));
      continue;
    }
    if (isConditionalBranch(I.Op)) {
      // Fallthrough first, then the taken target (deterministic order).
      assert(P + 1 < N && "conditional branch falls off the program");
      AddEdge(P + 1);
      if (static_cast<uint32_t>(I.Target) != P + 1)
        AddEdge(static_cast<uint32_t>(I.Target));
      continue;
    }
    assert(P + 1 < N && "non-terminator falls off the program");
    AddEdge(P + 1);
  }

  // Reachability from the entry.
  std::vector<uint32_t> Worklist = {Entry};
  Reachable[Entry] = true;
  while (!Worklist.empty()) {
    uint32_t P = Worklist.back();
    Worklist.pop_back();
    for (uint32_t S : InstrSuccs[P])
      if (!Reachable[S]) {
        Reachable[S] = true;
        Worklist.push_back(S);
      }
  }

  // Leaders: entry, branch targets, and fallthroughs of terminators.
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  Leader[Entry] = true;
  for (uint32_t P = 0; P < N; ++P) {
    const Instruction &I = Instrs[P];
    if (I.Target != NoTarget)
      Leader[static_cast<uint32_t>(I.Target)] = true;
    if (isTerminator(I.Op) && P + 1 < N)
      Leader[P + 1] = true;
  }

  // Blocks and block edges.
  for (uint32_t P = 0; P < N; ++P) {
    if (Leader[P]) {
      BasicBlock BB;
      BB.First = P;
      BlockList.push_back(BB);
    }
    BlockOf[P] = static_cast<uint32_t>(BlockList.size()) - 1;
    BlockList.back().Last = P;
  }
  for (uint32_t B = 0; B < BlockList.size(); ++B) {
    for (uint32_t S : InstrSuccs[BlockList[B].Last]) {
      uint32_t SB = BlockOf[S];
      BlockList[B].Succs.push_back(SB);
      BlockList[SB].Preds.push_back(B);
    }
  }
}

void Program::insertInstructions(uint32_t At,
                                 std::span<const Instruction> New) {
  assert(At <= size() && "insertion point out of range");
  if (New.empty())
    return;
  uint32_t N = static_cast<uint32_t>(New.size());
  // Pre-existing control transfers to an index strictly after the
  // insertion point shift; transfers to At itself keep their index and
  // thus run the inserted code before the old instruction.
  for (Instruction &I : Instrs)
    if (I.Target != NoTarget && static_cast<uint32_t>(I.Target) > At)
      I.Target += static_cast<int32_t>(N);
  if (Entry > At)
    Entry += N;
  Instrs.insert(Instrs.begin() + At, New.begin(), New.end());
}

std::string Program::toString() const {
  std::string Out;
  Out += "# program: " + Name + "\n";
  Out += ".width " + std::to_string(Width) + "\n";
  if (MemSize != (uint64_t(1) << 16))
    Out += ".memsize " + std::to_string(MemSize) + "\n";
  if (!Data.empty()) {
    // The data image round-trips as raw bytes; symbolic data labels were
    // already resolved to absolute addresses at parse time.
    Out += ".data\n";
    for (size_t I = 0; I < Data.size(); ++I) {
      Out += I % 16 == 0 ? ".byte " : ",";
      Out += std::to_string(Data[I]);
      if ((I + 1) % 16 == 0 || I + 1 == Data.size())
        Out += "\n";
    }
    Out += ".text\n";
  }
  std::vector<bool> NeedsLabel(size(), false);
  for (const Instruction &I : Instrs)
    if (I.Target != NoTarget)
      NeedsLabel[static_cast<uint32_t>(I.Target)] = true;
  for (uint32_t P = 0; P < size(); ++P) {
    if (NeedsLabel[P])
      Out += ".L" + std::to_string(P) + ":\n";
    // `main:` pins the entry point; the parser defaults Entry to 0, so a
    // non-zero entry would otherwise be lost in the round trip.
    if (P == Entry)
      Out += "main:\n";
    std::string Label;
    if (Instrs[P].Target != NoTarget)
      Label = ".L" + std::to_string(Instrs[P].Target);
    Out += "  " + Instrs[P].toString(Label.empty() ? nullptr : Label.c_str()) +
           "\n";
  }
  return Out;
}
