//===- ir/Verifier.cpp - Structural well-formedness checks ----------------===//

#include "ir/Verifier.h"

#include "ir/Program.h"
#include "support/BitUtils.h"

using namespace bec;

std::vector<std::string> bec::verifyProgram(const Program &Prog) {
  std::vector<std::string> Errors;
  auto Error = [&](uint32_t P, const std::string &Message) {
    Errors.push_back("instruction " + std::to_string(P) + " (line " +
                     std::to_string(Prog.Instrs[P].Line) + "): " + Message);
  };

  if (Prog.empty()) {
    Errors.push_back("program is empty");
    return Errors;
  }
  if (Prog.Width < 2 || Prog.Width > MaxRegWidth) {
    Errors.push_back("register width " + std::to_string(Prog.Width) +
                     " is out of the supported range [2, 64]");
    return Errors;
  }
  if (Prog.Entry >= Prog.size())
    Errors.push_back("entry point is out of range");
  if (Prog.DataBase + Prog.Data.size() > Prog.MemSize)
    Errors.push_back("data image does not fit in memory");

  for (uint32_t P = 0; P < Prog.size(); ++P) {
    const Instruction &I = Prog.Instrs[P];
    if (!isTerminator(I.Op) && P + 1 >= Prog.size())
      Error(P, "control falls off the end of the program");
    if (isConditionalBranch(I.Op) && P + 1 >= Prog.size())
      Error(P, "conditional branch has no fallthrough");
    if ((isConditionalBranch(I.Op) || I.Op == Opcode::J)) {
      if (I.Target == NoTarget ||
          static_cast<uint32_t>(I.Target) >= Prog.size())
        Error(P, "branch target out of range");
    }
    switch (I.Op) {
    case Opcode::SLLI:
    case Opcode::SRLI:
    case Opcode::SRAI:
      if (I.Imm < 0 || I.Imm >= static_cast<int64_t>(Prog.Width))
        Error(P, "shift amount outside [0, width)");
      break;
    case Opcode::LUI:
      if (Prog.Width != 32)
        Error(P, "lui requires 32-bit register width");
      break;
    default:
      break;
    }
    if ((isLoad(I.Op) || isStore(I.Op)) && Prog.Width != 32)
      Error(P, "memory access requires 32-bit register width");
    // Immediates must be representable in the register width (signed or
    // unsigned interpretation). This IR is not an instruction encoder, so
    // the RV32I 12-bit limits are deliberately not enforced.
    if (opcodeFormat(I.Op) == OpFormat::RegImm ||
        opcodeFormat(I.Op) == OpFormat::RegRegImm) {
      int64_t Lo = -static_cast<int64_t>(signedMinValue(Prog.Width));
      int64_t Hi = static_cast<int64_t>(allOnesValue(Prog.Width));
      if (Prog.Width == 64) {
        Lo = INT64_MIN;
        Hi = INT64_MAX;
      }
      if (I.Imm < Lo || I.Imm > Hi)
        Error(P, "immediate does not fit in the register width");
    }
  }
  return Errors;
}
