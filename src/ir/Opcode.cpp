//===- ir/Opcode.cpp - Machine opcode properties --------------------------===//

#include "ir/Opcode.h"

#include "support/Debug.h"

#include <cassert>

using namespace bec;

namespace {
struct OpcodeInfo {
  std::string_view Name;
  OpFormat Format;
};
} // namespace

static constexpr OpcodeInfo Infos[NumOpcodes] = {
    {"li", OpFormat::RegImm},      {"lui", OpFormat::RegImm},
    {"mv", OpFormat::RegReg},      {"add", OpFormat::RegRegReg},
    {"sub", OpFormat::RegRegReg},  {"and", OpFormat::RegRegReg},
    {"or", OpFormat::RegRegReg},   {"xor", OpFormat::RegRegReg},
    {"sll", OpFormat::RegRegReg},  {"srl", OpFormat::RegRegReg},
    {"sra", OpFormat::RegRegReg},  {"slt", OpFormat::RegRegReg},
    {"sltu", OpFormat::RegRegReg}, {"addi", OpFormat::RegRegImm},
    {"andi", OpFormat::RegRegImm}, {"ori", OpFormat::RegRegImm},
    {"xori", OpFormat::RegRegImm}, {"slli", OpFormat::RegRegImm},
    {"srli", OpFormat::RegRegImm}, {"srai", OpFormat::RegRegImm},
    {"slti", OpFormat::RegRegImm}, {"sltiu", OpFormat::RegRegImm},
    {"mul", OpFormat::RegRegReg},  {"mulhu", OpFormat::RegRegReg},
    {"div", OpFormat::RegRegReg},  {"divu", OpFormat::RegRegReg},
    {"rem", OpFormat::RegRegReg},  {"remu", OpFormat::RegRegReg},
    {"beq", OpFormat::Branch},     {"bne", OpFormat::Branch},
    {"blt", OpFormat::Branch},     {"bge", OpFormat::Branch},
    {"bltu", OpFormat::Branch},    {"bgeu", OpFormat::Branch},
    {"j", OpFormat::Jump},         {"lw", OpFormat::Load},
    {"lh", OpFormat::Load},        {"lhu", OpFormat::Load},
    {"lb", OpFormat::Load},        {"lbu", OpFormat::Load},
    {"sw", OpFormat::Store},       {"sh", OpFormat::Store},
    {"sb", OpFormat::Store},       {"out", OpFormat::UnaryIn},
    {"ret", OpFormat::None},       {"halt", OpFormat::None},
    {"nop", OpFormat::None},
};

static_assert(Infos[static_cast<unsigned>(Opcode::NOP)].Name == "nop",
              "opcode info table out of sync with the Opcode enum");

std::string_view bec::opcodeName(Opcode Op) {
  return Infos[static_cast<unsigned>(Op)].Name;
}

std::optional<Opcode> bec::parseOpcodeName(std::string_view Name) {
  for (unsigned I = 0; I < NumOpcodes; ++I)
    if (Infos[I].Name == Name)
      return static_cast<Opcode>(I);
  return std::nullopt;
}

OpFormat bec::opcodeFormat(Opcode Op) {
  return Infos[static_cast<unsigned>(Op)].Format;
}

bool bec::isConditionalBranch(Opcode Op) {
  return opcodeFormat(Op) == OpFormat::Branch;
}

bool bec::isTerminator(Opcode Op) {
  return isConditionalBranch(Op) || Op == Opcode::J || isHalt(Op);
}

bool bec::isHalt(Opcode Op) { return Op == Opcode::RET || Op == Opcode::HALT; }

bool bec::isLoad(Opcode Op) { return opcodeFormat(Op) == OpFormat::Load; }

bool bec::isStore(Opcode Op) { return opcodeFormat(Op) == OpFormat::Store; }

bool bec::hasSideEffects(Opcode Op) {
  return isStore(Op) || Op == Opcode::OUT || isHalt(Op);
}

bool bec::isSetCompare(Opcode Op) {
  switch (Op) {
  case Opcode::SLT:
  case Opcode::SLTU:
  case Opcode::SLTI:
  case Opcode::SLTIU:
    return true;
  default:
    return false;
  }
}
