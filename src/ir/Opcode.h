//===- ir/Opcode.h - Machine opcode definitions ---------------------------===//
///
/// \file
/// Opcodes of the machine-level IR: the RV32I base integer ISA plus the M
/// extension's multiply/divide, and three pseudo-instructions that matter to
/// the analysis or the harness (`li`, `mv`, `out`). Assembler-level pseudos
/// (seqz/snez/beqz/not/neg/...) are lowered to these opcodes at parse time.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_IR_OPCODE_H
#define BEC_IR_OPCODE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace bec {

enum class Opcode : uint8_t {
  // Constants and moves.
  LI,   ///< rd = imm (pseudo; full-width immediate)
  LUI,  ///< rd = imm << 12
  MV,   ///< rd = rs1 (kept first-class: Algorithm 3 has a dedicated rule)
  // Register-register ALU.
  ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
  // Register-immediate ALU.
  ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU,
  // M extension.
  MUL, MULHU, DIV, DIVU, REM, REMU,
  // Control flow.
  BEQ, BNE, BLT, BGE, BLTU, BGEU, J,
  // Memory.
  LW, LH, LHU, LB, LBU, SW, SH, SB,
  // Harness.
  OUT,  ///< Emit rs1 to the observable output stream.
  RET,  ///< Halt; a0 is the observable return value.
  HALT, ///< Halt with no observable register.
  NOP,
};

inline constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::NOP) + 1;

/// Mnemonic of \p Op as printed/parsed.
std::string_view opcodeName(Opcode Op);

/// Parses a base (non-pseudo) mnemonic. Pseudo mnemonics are handled by the
/// assembler; this only recognizes the opcodes above.
std::optional<Opcode> parseOpcodeName(std::string_view Name);

/// Operand shape of an opcode, used by the parser, printer and verifier.
enum class OpFormat : uint8_t {
  RegImm,       ///< op rd, imm            (li, lui)
  RegReg,       ///< op rd, rs1            (mv)
  RegRegReg,    ///< op rd, rs1, rs2
  RegRegImm,    ///< op rd, rs1, imm
  Branch,       ///< op rs1, rs2, label
  Jump,         ///< op label
  Load,         ///< op rd, imm(rs1)
  Store,        ///< op rs2, imm(rs1)
  UnaryIn,      ///< op rs1                (out)
  None,         ///< op                    (ret, halt, nop)
};

OpFormat opcodeFormat(Opcode Op);

/// True for beq/bne/blt/bge/bltu/bgeu.
bool isConditionalBranch(Opcode Op);
/// True for instructions that end a basic block (branches, j, ret, halt).
bool isTerminator(Opcode Op);
/// True for ret/halt.
bool isHalt(Opcode Op);
/// True for loads.
bool isLoad(Opcode Op);
/// True for stores.
bool isStore(Opcode Op);
/// True for instructions with externally observable side effects
/// (stores, out, ret): the scheduler must preserve their relative order.
bool hasSideEffects(Opcode Op);
/// True for slt/slti/sltu/sltiu: comparison writes handled by the
/// eval-based coalescing rule.
bool isSetCompare(Opcode Op);

} // namespace bec

#endif // BEC_IR_OPCODE_H
