//===- ir/Instruction.h - Machine instruction -----------------------------===//
///
/// \file
/// A single machine instruction of the flat program representation. Each
/// instruction is a *program point* p of the paper's fault space F = P x V.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_IR_INSTRUCTION_H
#define BEC_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/Reg.h"

#include <cstdint>
#include <string>

namespace bec {

/// Sentinel for "no branch target".
inline constexpr int32_t NoTarget = -1;

/// One machine instruction. Operand roles by format:
///   RegImm:     Rd, Imm          RegReg:    Rd, Rs1
///   RegRegReg:  Rd, Rs1, Rs2     RegRegImm: Rd, Rs1, Imm
///   Branch:     Rs1, Rs2, Target Jump:      Target
///   Load:       Rd, Imm(Rs1)     Store:     Rs2 -> Imm(Rs1)
///   UnaryIn:    Rs1              None:      -
struct Instruction {
  Opcode Op = Opcode::NOP;
  Reg Rd = 0;
  Reg Rs1 = 0;
  Reg Rs2 = 0;
  int64_t Imm = 0;
  /// Branch/jump target as an instruction index, or NoTarget.
  int32_t Target = NoTarget;
  /// Source line in the assembly text (0 when built programmatically).
  uint32_t Line = 0;

  /// True if this instruction writes a register (excluding writes to x0,
  /// which are architectural no-ops but still *count* as a write for the
  /// data-flow model: they kill nothing and produce nothing).
  bool writesReg() const {
    switch (opcodeFormat(Op)) {
    case OpFormat::RegImm:
    case OpFormat::RegReg:
    case OpFormat::RegRegReg:
    case OpFormat::RegRegImm:
    case OpFormat::Load:
      return Rd != RegZero;
    default:
      return false;
    }
  }

  /// Number of distinct source registers read, filled into \p Out
  /// (deduplicated, x0 excluded since it holds no state). Returns count.
  unsigned readRegs(Reg Out[2]) const {
    // One spare slot: the RET append below can never overflow (RET has
    // format None), but the compiler cannot see that across the switch.
    Reg Tmp[3];
    unsigned N = 0;
    switch (opcodeFormat(Op)) {
    case OpFormat::RegImm:
    case OpFormat::Jump:
    case OpFormat::None:
      break;
    case OpFormat::RegReg:
    case OpFormat::RegRegImm:
    case OpFormat::UnaryIn:
      Tmp[N++] = Rs1;
      break;
    case OpFormat::RegRegReg:
    case OpFormat::Branch:
      Tmp[N++] = Rs1;
      Tmp[N++] = Rs2;
      break;
    case OpFormat::Load:
      Tmp[N++] = Rs1;
      break;
    case OpFormat::Store:
      Tmp[N++] = Rs1;
      Tmp[N++] = Rs2;
      break;
    }
    if (Op == Opcode::RET)
      Tmp[N++] = RegA0;
    unsigned Count = 0;
    for (unsigned I = 0; I < N; ++I) {
      if (Tmp[I] == RegZero)
        continue;
      if (Count == 1 && Out[0] == Tmp[I])
        continue;
      Out[Count++] = Tmp[I];
    }
    return Count;
  }

  /// True if this instruction reads register \p R.
  bool reads(Reg R) const {
    Reg Regs[2];
    unsigned N = readRegs(Regs);
    for (unsigned I = 0; I < N; ++I)
      if (Regs[I] == R)
        return true;
    return false;
  }

  /// Renders the instruction in assembly syntax. Branch targets are shown
  /// as `.L<index>` unless \p TargetLabel is provided.
  std::string toString(const char *TargetLabel = nullptr) const;
};

} // namespace bec

#endif // BEC_IR_INSTRUCTION_H
