//===- ir/Program.h - Flat machine program with CFG ------------------------===//
///
/// \file
/// A whole program in the machine-level IR: a flat instruction sequence
/// (the paper's set P of program points), labels, an initial data image,
/// and the derived control-flow graph (instruction-level successor /
/// predecessor edges plus basic-block structure used by the scheduler).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_IR_PROGRAM_H
#define BEC_IR_PROGRAM_H

#include "ir/Instruction.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bec {

/// A maximal straight-line region; the unit of instruction scheduling.
struct BasicBlock {
  uint32_t First = 0; ///< Index of the first instruction.
  uint32_t Last = 0;  ///< Index of the last instruction (inclusive).
  std::vector<uint32_t> Succs; ///< Successor block ids.
  std::vector<uint32_t> Preds; ///< Predecessor block ids.

  uint32_t size() const { return Last - First + 1; }
};

/// A flat machine program plus its CFG and memory image.
class Program {
public:
  std::string Name = "program";
  /// Register width in bits (32 for the benchmarks; 4 for the paper's
  /// motivating example).
  unsigned Width = 32;
  /// Size of the byte-addressable memory, in bytes.
  uint64_t MemSize = 1 << 16;
  /// Base address at which \c Data is loaded.
  uint64_t DataBase = 0x1000;
  /// Initial data image (loaded at DataBase before execution).
  std::vector<uint8_t> Data;
  /// Index of the entry instruction.
  uint32_t Entry = 0;

  std::vector<Instruction> Instrs;

  uint32_t size() const { return static_cast<uint32_t>(Instrs.size()); }
  bool empty() const { return Instrs.empty(); }
  const Instruction &instr(uint32_t P) const { return Instrs[P]; }

  /// Recomputes CFG edges and basic blocks. Must be called after any
  /// structural mutation and before running analyses.
  void buildCFG();

  /// Inserts \p New before the instruction currently at index \p At
  /// (\p At == size() appends). Branch targets and the entry point are
  /// remapped so that control transfers to the old instruction at \p At
  /// now execute the inserted code first; targets inside \p New are taken
  /// verbatim (the caller must express them in post-insertion indices).
  /// The CFG is invalidated; call buildCFG() after the last mutation.
  void insertInstructions(uint32_t At, std::span<const Instruction> New);

  /// Instruction-level successors of \p P (empty for halts).
  const std::vector<uint32_t> &succs(uint32_t P) const { return InstrSuccs[P]; }
  /// Instruction-level predecessors of \p P.
  const std::vector<uint32_t> &preds(uint32_t P) const { return InstrPreds[P]; }

  const std::vector<BasicBlock> &blocks() const { return BlockList; }
  /// Block id containing instruction \p P.
  uint32_t blockOf(uint32_t P) const { return BlockOf[P]; }

  /// Instructions reachable from the entry (unreachable code is skipped by
  /// the analyses and never executed by the simulator).
  bool isReachable(uint32_t P) const { return Reachable[P]; }

  /// Renders the whole program as assembly text (parseable round trip).
  std::string toString() const;

private:
  std::vector<std::vector<uint32_t>> InstrSuccs;
  std::vector<std::vector<uint32_t>> InstrPreds;
  std::vector<BasicBlock> BlockList;
  std::vector<uint32_t> BlockOf;
  std::vector<bool> Reachable;
};

} // namespace bec

#endif // BEC_IR_PROGRAM_H
