//===- ir/AsmParser.cpp - RISC-V subset assembler --------------------------===//

#include "ir/AsmParser.h"

#include "ir/Verifier.h"
#include "support/Debug.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <map>

using namespace bec;

namespace {

/// Cursor over one line of assembly.
class LineLexer {
public:
  LineLexer(std::string_view Text) : Text(Text) {}

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size() || Text[Pos] == '#' || Text[Pos] == ';';
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  /// 1-based column of the next token (after space skipping).
  uint32_t cursorCol() {
    skipSpace();
    return static_cast<uint32_t>(Pos) + 1;
  }

  /// 1-based column where the last ident()/number() token started.
  uint32_t lastTokenCol() const { return static_cast<uint32_t>(TokStart) + 1; }

  /// Reads an identifier-like token: [A-Za-z_.][A-Za-z0-9_.]*
  std::string_view ident() {
    skipSpace();
    size_t Start = Pos;
    TokStart = Start;
    auto IsIdent = [](char C) {
      return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
             C == '.';
    };
    while (Pos < Text.size() && IsIdent(Text[Pos]))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  /// Parses a (possibly negative, possibly hex) integer literal.
  bool number(int64_t &Out) {
    skipSpace();
    size_t Start = Pos;
    TokStart = Start;
    bool Negative = false;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+')) {
      Negative = Text[Pos] == '-';
      ++Pos;
    }
    uint64_t Value = 0;
    bool Any = false;
    if (Pos + 1 < Text.size() && Text[Pos] == '0' &&
        (Text[Pos + 1] == 'x' || Text[Pos + 1] == 'X')) {
      Pos += 2;
      while (Pos < Text.size() &&
             std::isxdigit(static_cast<unsigned char>(Text[Pos]))) {
        char C = Text[Pos];
        unsigned Digit = C <= '9' ? unsigned(C - '0')
                                  : unsigned(std::tolower(C) - 'a') + 10;
        Value = Value * 16 + Digit;
        Any = true;
        ++Pos;
      }
    } else {
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
        Value = Value * 10 + static_cast<unsigned>(Text[Pos] - '0');
        Any = true;
        ++Pos;
      }
    }
    if (!Any) {
      Pos = Start;
      return false;
    }
    Out = Negative ? -static_cast<int64_t>(Value) : static_cast<int64_t>(Value);
    return true;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  size_t TokStart = 0;
};

/// Assembler state over the whole translation unit.
class Assembler {
public:
  AsmParseResult run(std::string_view Source, std::string_view Name);

private:
  enum class Section { Text, Data };

  void parseLine(std::string_view LineText);
  void parseDirective(LineLexer &Lex, std::string_view Directive,
                      uint32_t DirectiveCol);
  void parseInstruction(LineLexer &Lex, std::string_view Mnemonic,
                        uint32_t MnemonicCol);
  void emit(Instruction I, std::string_view TargetLabel = {},
            uint32_t LabelCol = 0);

  bool expectReg(LineLexer &Lex, Reg &Out);
  bool expectImm(LineLexer &Lex, int64_t &Out);
  bool expectComma(LineLexer &Lex);
  std::string_view expectLabel(LineLexer &Lex);

  void error(uint32_t Col, std::string Message) {
    Diags.push_back({CurLine, Col, std::move(Message)});
  }

  Program Prog;
  std::vector<AsmDiag> Diags;
  Section CurSection = Section::Text;
  uint32_t CurLine = 0;
  std::map<std::string, uint32_t, std::less<>> TextLabels;
  std::map<std::string, uint64_t, std::less<>> DataLabels;
  /// (instruction index, label, position) fixups resolved after the last
  /// line.
  struct Fixup {
    uint32_t Instr;
    std::string Label;
    uint32_t Line;
    uint32_t Col;
    bool IsDataRef; ///< la/li referencing a data symbol via Imm.
  };
  std::vector<Fixup> Fixups;
};

} // namespace

bool Assembler::expectReg(LineLexer &Lex, Reg &Out) {
  std::string_view Tok = Lex.ident();
  if (auto R = parseRegName(Tok)) {
    Out = *R;
    return true;
  }
  error(Lex.lastTokenCol(), "expected register, found '" + std::string(Tok) + "'");
  return false;
}

bool Assembler::expectImm(LineLexer &Lex, int64_t &Out) {
  uint32_t Col = Lex.cursorCol();
  if (Lex.number(Out))
    return true;
  error(Col, "expected immediate");
  return false;
}

bool Assembler::expectComma(LineLexer &Lex) {
  uint32_t Col = Lex.cursorCol();
  if (Lex.consume(','))
    return true;
  error(Col, "expected ','");
  return false;
}

std::string_view Assembler::expectLabel(LineLexer &Lex) {
  uint32_t Col = Lex.cursorCol();
  std::string_view Tok = Lex.ident();
  if (Tok.empty())
    error(Col, "expected label");
  return Tok;
}

void Assembler::emit(Instruction I, std::string_view TargetLabel,
                     uint32_t LabelCol) {
  I.Line = CurLine;
  if (!TargetLabel.empty())
    Fixups.push_back(
        {Prog.size(), std::string(TargetLabel), CurLine, LabelCol, false});
  Prog.Instrs.push_back(I);
}

void Assembler::parseDirective(LineLexer &Lex, std::string_view Directive,
                               uint32_t DirectiveCol) {
  if (Directive == ".text") {
    CurSection = Section::Text;
    return;
  }
  if (Directive == ".data") {
    CurSection = Section::Data;
    return;
  }
  if (Directive == ".width") {
    int64_t W;
    if (expectImm(Lex, W)) {
      if (W < 2 || W > 64)
        error(Lex.lastTokenCol(), ".width must be between 2 and 64");
      else
        Prog.Width = static_cast<unsigned>(W);
    }
    return;
  }
  if (Directive == ".memsize") {
    int64_t S;
    if (expectImm(Lex, S)) {
      if (S < 16 || S > (1 << 26))
        error(Lex.lastTokenCol(), ".memsize out of supported range");
      else
        Prog.MemSize = static_cast<uint64_t>(S);
    }
    return;
  }
  if (Directive == ".align") {
    int64_t A;
    if (!expectImm(Lex, A))
      return;
    if (A <= 0 || (A & (A - 1)) != 0) {
      error(Lex.lastTokenCol(), ".align requires a power of two");
      return;
    }
    while (Prog.Data.size() % static_cast<size_t>(A) != 0)
      Prog.Data.push_back(0);
    return;
  }
  if (Directive == ".zero") {
    int64_t N;
    if (expectImm(Lex, N)) {
      if (N < 0 || N > (1 << 24)) {
        error(Lex.lastTokenCol(), ".zero size out of range");
        return;
      }
      Prog.Data.insert(Prog.Data.end(), static_cast<size_t>(N), 0);
    }
    return;
  }
  if (Directive == ".word" || Directive == ".half" || Directive == ".byte") {
    if (CurSection != Section::Data) {
      error(DirectiveCol, "data directive outside .data section");
      return;
    }
    unsigned Bytes = Directive == ".word" ? 4 : Directive == ".half" ? 2 : 1;
    do {
      int64_t Value;
      if (!expectImm(Lex, Value))
        return;
      for (unsigned B = 0; B < Bytes; ++B)
        Prog.Data.push_back(
            static_cast<uint8_t>((static_cast<uint64_t>(Value) >> (8 * B))));
    } while (Lex.consume(','));
    return;
  }
  error(DirectiveCol, "unknown directive '" + std::string(Directive) + "'");
}

void Assembler::parseInstruction(LineLexer &Lex, std::string_view Mnemonic,
                                 uint32_t MnemonicCol) {
  if (CurSection != Section::Text) {
    error(MnemonicCol, "instruction outside .text section");
    return;
  }
  Instruction I;
  Reg Rd, Rs1, Rs2;
  int64_t Imm;

  // Assembler pseudos, lowered to base opcodes.
  if (Mnemonic == "seqz") {
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectReg(Lex, Rs1))
      emit({Opcode::SLTIU, Rd, Rs1, 0, 1, NoTarget, 0});
    return;
  }
  if (Mnemonic == "snez") {
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectReg(Lex, Rs1))
      emit({Opcode::SLTU, Rd, RegZero, Rs1, 0, NoTarget, 0});
    return;
  }
  if (Mnemonic == "not") {
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectReg(Lex, Rs1))
      emit({Opcode::XORI, Rd, Rs1, 0, -1, NoTarget, 0});
    return;
  }
  if (Mnemonic == "neg") {
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectReg(Lex, Rs1))
      emit({Opcode::SUB, Rd, RegZero, Rs1, 0, NoTarget, 0});
    return;
  }
  if (Mnemonic == "beqz" || Mnemonic == "bnez" || Mnemonic == "bltz" ||
      Mnemonic == "bgez" || Mnemonic == "blez" || Mnemonic == "bgtz") {
    if (!expectReg(Lex, Rs1) || !expectComma(Lex))
      return;
    std::string_view Label = expectLabel(Lex);
    if (Label.empty())
      return;
    Opcode Op;
    Reg A = Rs1, B = RegZero;
    if (Mnemonic == "beqz")
      Op = Opcode::BEQ;
    else if (Mnemonic == "bnez")
      Op = Opcode::BNE;
    else if (Mnemonic == "bltz")
      Op = Opcode::BLT;
    else if (Mnemonic == "bgez")
      Op = Opcode::BGE;
    else if (Mnemonic == "blez") { // rs1 <= 0  <=>  0 >= rs1
      Op = Opcode::BGE;
      A = RegZero;
      B = Rs1;
    } else { // bgtz: rs1 > 0  <=>  0 < rs1
      Op = Opcode::BLT;
      A = RegZero;
      B = Rs1;
    }
    emit({Op, 0, A, B, 0, NoTarget, 0}, Label, Lex.lastTokenCol());
    return;
  }
  if (Mnemonic == "ble" || Mnemonic == "bgt" || Mnemonic == "bleu" ||
      Mnemonic == "bgtu") {
    if (!expectReg(Lex, Rs1) || !expectComma(Lex) || !expectReg(Lex, Rs2) ||
        !expectComma(Lex))
      return;
    std::string_view Label = expectLabel(Lex);
    if (Label.empty())
      return;
    // ble a,b  <=>  bge b,a   /  bgt a,b  <=>  blt b,a
    Opcode Op = (Mnemonic == "ble")    ? Opcode::BGE
                : (Mnemonic == "bgt")  ? Opcode::BLT
                : (Mnemonic == "bleu") ? Opcode::BGEU
                                       : Opcode::BLTU;
    emit({Op, 0, Rs2, Rs1, 0, NoTarget, 0}, Label, Lex.lastTokenCol());
    return;
  }
  if (Mnemonic == "la") {
    if (!expectReg(Lex, Rd) || !expectComma(Lex))
      return;
    std::string_view Label = expectLabel(Lex);
    if (Label.empty())
      return;
    emit({Opcode::LI, Rd, 0, 0, 0, NoTarget, 0});
    Fixups.push_back(
        {Prog.size() - 1, std::string(Label), CurLine, Lex.lastTokenCol(), true});
    return;
  }

  auto Op = parseOpcodeName(Mnemonic);
  if (!Op) {
    error(MnemonicCol, "unknown mnemonic '" + std::string(Mnemonic) + "'");
    return;
  }
  I.Op = *Op;
  switch (opcodeFormat(*Op)) {
  case OpFormat::RegImm:
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectImm(Lex, Imm))
      emit({*Op, Rd, 0, 0, Imm, NoTarget, 0});
    return;
  case OpFormat::RegReg:
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectReg(Lex, Rs1))
      emit({*Op, Rd, Rs1, 0, 0, NoTarget, 0});
    return;
  case OpFormat::RegRegReg:
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectReg(Lex, Rs1) &&
        expectComma(Lex) && expectReg(Lex, Rs2))
      emit({*Op, Rd, Rs1, Rs2, 0, NoTarget, 0});
    return;
  case OpFormat::RegRegImm:
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectReg(Lex, Rs1) &&
        expectComma(Lex) && expectImm(Lex, Imm))
      emit({*Op, Rd, Rs1, 0, Imm, NoTarget, 0});
    return;
  case OpFormat::Branch: {
    if (!expectReg(Lex, Rs1) || !expectComma(Lex) || !expectReg(Lex, Rs2) ||
        !expectComma(Lex))
      return;
    std::string_view Label = expectLabel(Lex);
    if (!Label.empty())
      emit({*Op, 0, Rs1, Rs2, 0, NoTarget, 0}, Label, Lex.lastTokenCol());
    return;
  }
  case OpFormat::Jump: {
    std::string_view Label = expectLabel(Lex);
    if (!Label.empty())
      emit({*Op, 0, 0, 0, 0, NoTarget, 0}, Label, Lex.lastTokenCol());
    return;
  }
  case OpFormat::Load:
    if (expectReg(Lex, Rd) && expectComma(Lex) && expectImm(Lex, Imm) &&
        Lex.consume('(') && expectReg(Lex, Rs1) && Lex.consume(')'))
      emit({*Op, Rd, Rs1, 0, Imm, NoTarget, 0});
    return;
  case OpFormat::Store:
    if (expectReg(Lex, Rs2) && expectComma(Lex) && expectImm(Lex, Imm) &&
        Lex.consume('(') && expectReg(Lex, Rs1) && Lex.consume(')'))
      emit({*Op, 0, Rs1, Rs2, Imm, NoTarget, 0});
    return;
  case OpFormat::UnaryIn:
    if (expectReg(Lex, Rs1))
      emit({*Op, 0, Rs1, 0, 0, NoTarget, 0});
    return;
  case OpFormat::None:
    emit({*Op, 0, 0, 0, 0, NoTarget, 0});
    return;
  }
  bec_unreachable("unhandled opcode format");
}

void Assembler::parseLine(std::string_view LineText) {
  LineLexer Lex(LineText);
  while (true) {
    if (Lex.atEnd())
      return;
    uint32_t TokCol = Lex.cursorCol();
    std::string_view Tok = Lex.ident();
    if (Tok.empty()) {
      error(TokCol, "syntax error");
      return;
    }
    // A leading '.' means a directive -- unless it is a label like ".L2:".
    if (Tok[0] == '.' && Lex.peek() != ':') {
      parseDirective(Lex, Tok, TokCol);
      if (!Lex.atEnd())
        error(Lex.cursorCol(), "trailing characters after directive");
      return;
    }
    if (Lex.consume(':')) {
      // A label; there may be another label or an instruction after it.
      if (CurSection == Section::Text) {
        if (!TextLabels.emplace(std::string(Tok), Prog.size()).second)
          error(TokCol, "redefinition of label '" + std::string(Tok) + "'");
      } else {
        if (!DataLabels
                 .emplace(std::string(Tok), Prog.DataBase + Prog.Data.size())
                 .second)
          error(TokCol, "redefinition of label '" + std::string(Tok) + "'");
      }
      continue;
    }
    parseInstruction(Lex, Tok, TokCol);
    if (!Lex.atEnd())
      error(Lex.cursorCol(), "trailing characters after instruction");
    return;
  }
}

AsmParseResult Assembler::run(std::string_view Source, std::string_view Name) {
  Prog.Name = std::string(Name);
  size_t Pos = 0;
  CurLine = 0;
  while (Pos <= Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Source.size();
    ++CurLine;
    parseLine(Source.substr(Pos, End - Pos));
    Pos = End + 1;
    if (End == Source.size())
      break;
  }

  // Resolve fixups.
  for (const Fixup &F : Fixups) {
    if (F.IsDataRef) {
      auto It = DataLabels.find(F.Label);
      if (It == DataLabels.end()) {
        Diags.push_back(
            {F.Line, F.Col, "unknown data label '" + F.Label + "'"});
        continue;
      }
      Prog.Instrs[F.Instr].Imm = static_cast<int64_t>(It->second);
      continue;
    }
    auto It = TextLabels.find(F.Label);
    if (It == TextLabels.end()) {
      Diags.push_back({F.Line, F.Col, "unknown label '" + F.Label + "'"});
      continue;
    }
    if (It->second >= Prog.size()) {
      Diags.push_back(
          {F.Line, F.Col, "label '" + F.Label + "' points past the end"});
      continue;
    }
    Prog.Instrs[F.Instr].Target = static_cast<int32_t>(It->second);
  }

  if (auto It = TextLabels.find("main"); It != TextLabels.end())
    Prog.Entry = It->second;

  if (Prog.empty())
    Diags.push_back({CurLine, 0, "program has no instructions"});

  if (!Diags.empty())
    return {std::nullopt, std::move(Diags)};

  std::vector<std::string> VerifyErrors = verifyProgram(Prog);
  for (std::string &E : VerifyErrors)
    Diags.push_back({0, 0, std::move(E)});
  if (!Diags.empty())
    return {std::nullopt, std::move(Diags)};
  Prog.buildCFG();
  return {std::move(Prog), {}};
}

AsmParseResult bec::parseAsm(std::string_view Source, std::string_view Name) {
  Assembler A;
  return A.run(Source, Name);
}

Program bec::parseAsmOrDie(std::string_view Source, std::string_view Name) {
  AsmParseResult Result = parseAsm(Source, Name);
  if (!Result.succeeded()) {
    std::fprintf(stderr, "assembly of '%.*s' failed:\n%s",
                 static_cast<int>(Name.size()), Name.data(),
                 Result.diagText().c_str());
    reportFatalError("parseAsmOrDie on invalid input");
  }
  return std::move(*Result.Prog);
}
