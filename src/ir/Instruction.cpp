//===- ir/Instruction.cpp - Instruction printing ---------------------------===//

#include "ir/Instruction.h"

#include "support/Debug.h"

#include <string>

using namespace bec;

std::string Instruction::toString(const char *TargetLabel) const {
  std::string Out(opcodeName(Op));
  auto R = [](Reg X) { return std::string(regName(X)); };
  std::string Label = TargetLabel
                          ? std::string(TargetLabel)
                          : (".L" + std::to_string(Target));
  switch (opcodeFormat(Op)) {
  case OpFormat::RegImm:
    Out += " " + R(Rd) + ", " + std::to_string(Imm);
    break;
  case OpFormat::RegReg:
    Out += " " + R(Rd) + ", " + R(Rs1);
    break;
  case OpFormat::RegRegReg:
    Out += " " + R(Rd) + ", " + R(Rs1) + ", " + R(Rs2);
    break;
  case OpFormat::RegRegImm:
    Out += " " + R(Rd) + ", " + R(Rs1) + ", " + std::to_string(Imm);
    break;
  case OpFormat::Branch:
    Out += " " + R(Rs1) + ", " + R(Rs2) + ", " + Label;
    break;
  case OpFormat::Jump:
    Out += " " + Label;
    break;
  case OpFormat::Load:
    Out += " " + R(Rd) + ", " + std::to_string(Imm) + "(" + R(Rs1) + ")";
    break;
  case OpFormat::Store:
    Out += " " + R(Rs2) + ", " + std::to_string(Imm) + "(" + R(Rs1) + ")";
    break;
  case OpFormat::UnaryIn:
    Out += " " + R(Rs1);
    break;
  case OpFormat::None:
    break;
  }
  return Out;
}
