//===- ir/Reg.cpp - RISC-V register names ---------------------------------===//

#include "ir/Reg.h"

#include <cassert>

using namespace bec;

static constexpr std::string_view AbiNames[NumRegs] = {
    "zero", "ra", "sp", "gp", "tp",  "t0",  "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5",  "a6",  "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

std::string_view bec::regName(Reg R) {
  assert(R < NumRegs && "invalid register");
  return AbiNames[R];
}

std::optional<Reg> bec::parseRegName(std::string_view Name) {
  for (unsigned I = 0; I < NumRegs; ++I)
    if (Name == AbiNames[I])
      return static_cast<Reg>(I);
  if (Name == "fp")
    return static_cast<Reg>(8);
  if (Name.size() >= 2 && Name.size() <= 3 && Name[0] == 'x') {
    unsigned Value = 0;
    for (char C : Name.substr(1)) {
      if (C < '0' || C > '9')
        return std::nullopt;
      Value = Value * 10 + static_cast<unsigned>(C - '0');
    }
    if (Name.size() == 3 && Name[1] == '0')
      return std::nullopt; // Reject "x01" style spellings.
    if (Value < NumRegs)
      return static_cast<Reg>(Value);
  }
  return std::nullopt;
}
