//===- ir/AsmParser.h - RISC-V subset assembler ---------------------------===//
///
/// \file
/// Parses the project's RISC-V assembly dialect into a Program. The dialect
/// covers the opcodes in ir/Opcode.h plus the usual assembler pseudos
/// (seqz, snez, beqz, bnez, blez, bgez, bltz, bgtz, ble, bgt, bleu, bgtu,
/// not, neg, la), `.data` directives (.word/.half/.byte/.zero/.align), and
/// the harness directives `.width`/`.memsize`.
///
/// Errors are recoverable and reported as structured diagnostics with line
/// and column numbers; parsing continues after an error so multiple
/// problems surface at once. Tools (the becd `intern` method in
/// particular) relay AsmDiag structurally instead of scraping toString().
///
//===----------------------------------------------------------------------===//

#ifndef BEC_IR_ASMPARSER_H
#define BEC_IR_ASMPARSER_H

#include "ir/Program.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bec {

/// One assembler diagnostic. Line and column are 1-based; Col 0 means the
/// diagnostic refers to the line (or program) as a whole rather than a
/// specific token — verifier diagnostics carry Line 0 too.
struct AsmDiag {
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Message;

  std::string toString() const {
    std::string Out = "line " + std::to_string(Line);
    if (Col != 0)
      Out += ", col " + std::to_string(Col);
    return Out + ": " + Message;
  }
};

/// Result of assembling a translation unit. On success \c Prog is engaged,
/// the CFG is built, and the verifier has accepted the program.
struct AsmParseResult {
  std::optional<Program> Prog;
  std::vector<AsmDiag> Diags;

  bool succeeded() const { return Prog.has_value(); }
  /// All diagnostics joined by newlines (for test assertions and tools).
  std::string diagText() const {
    std::string Out;
    for (const AsmDiag &D : Diags)
      Out += D.toString() + "\n";
    return Out;
  }
};

/// Assembles \p Source. \p Name is used for diagnostics and Program::Name.
AsmParseResult parseAsm(std::string_view Source,
                        std::string_view Name = "program");

/// Assembles \p Source and aborts with the diagnostics on failure. For
/// tests and the built-in workloads, whose sources are known-good.
Program parseAsmOrDie(std::string_view Source,
                      std::string_view Name = "program");

} // namespace bec

#endif // BEC_IR_ASMPARSER_H
