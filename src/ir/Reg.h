//===- ir/Reg.h - RISC-V register file model ------------------------------===//
///
/// \file
/// Registers of the RV32I register file. The BEC analysis and the fault
/// space are defined over these 32 architectural registers (the paper's set
/// V of data points); x0 is hardwired to zero, so faults on x0 are
/// impossible and its fault sites are permanently masked.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_IR_REG_H
#define BEC_IR_REG_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bec {

/// Architectural register number, 0..31.
using Reg = uint8_t;

/// Number of architectural registers (the spatial extent of the fault
/// space, |V| in the paper).
inline constexpr unsigned NumRegs = 32;

/// The hardwired zero register.
inline constexpr Reg RegZero = 0;
/// Return-value / first-argument register (read by `ret`).
inline constexpr Reg RegA0 = 10;

/// Returns the ABI name of \p R ("zero", "ra", "sp", "t0", "a0", ...).
std::string_view regName(Reg R);

/// Parses a register name: ABI names, "x0".."x31", and "fp".
/// Returns std::nullopt if \p Name is not a register.
std::optional<Reg> parseRegName(std::string_view Name);

} // namespace bec

#endif // BEC_IR_REG_H
