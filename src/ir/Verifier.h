//===- ir/Verifier.h - Structural well-formedness checks ------------------===//
///
/// \file
/// Validates a Program before it is analyzed or executed: control flow must
/// not fall off the end, branch targets must be in range, shift immediates
/// must be in [0, Width), and memory instructions require the full 32-bit
/// register width (narrow-width programs, e.g. the paper's 4-bit motivating
/// example, are register-only).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_IR_VERIFIER_H
#define BEC_IR_VERIFIER_H

#include <string>
#include <vector>

namespace bec {

class Program;

/// Returns a (possibly empty) list of human-readable errors. Does not
/// require the CFG to be built.
std::vector<std::string> verifyProgram(const Program &Prog);

} // namespace bec

#endif // BEC_IR_VERIFIER_H
