//===- net/Gateway.cpp - Consistent-hashing becd gateway ------------------===//

#include "net/Gateway.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Prometheus.h"
#include "obs/SpanRing.h"
#include "obs/Trace.h"
#include "support/Json.h"

#include <algorithm>
#include <cctype>
#include <chrono>

using namespace bec;
using namespace bec::net;
using serve::ErrorCode;

namespace {

/// FNV-1a 64-bit: stable across runs and platforms (the ring must be).
uint64_t fnv1a64(std::string_view S) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// The ring hash: FNV-1a finished with MurmurHash3's 64-bit avalanche.
/// Raw FNV of the short, near-identical strings involved here (vnode
/// labels, "program-N" names) clusters badly on the 64-bit circle — in
/// one measured 3-backend layout a backend owned 10% of the ring and
/// received 0 of 400 keys. The finalizer restores a uniform spread.
uint64_t ringHash(std::string_view S) {
  uint64_t H = fnv1a64(S);
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ull;
  H ^= H >> 33;
  return H;
}

std::string lowered(std::string_view S) {
  std::string Out(S);
  std::transform(Out.begin(), Out.end(), Out.begin(),
                 [](unsigned char C) { return char(std::tolower(C)); });
  return Out;
}

/// "host:port" -> (host, port). False on malformed input.
bool splitAddress(const std::string &Addr, std::string &Host,
                  uint16_t &Port) {
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Addr.size())
    return false;
  Host = Addr.substr(0, Colon);
  unsigned long P = 0;
  for (size_t I = Colon + 1; I < Addr.size(); ++I) {
    if (!std::isdigit(static_cast<unsigned char>(Addr[I])))
      return false;
    P = P * 10 + unsigned(Addr[I] - '0');
    if (P > 65535)
      return false;
  }
  if (P == 0)
    return false;
  Host = Addr.substr(0, Colon);
  Port = uint16_t(P);
  return true;
}

/// Per-backend forward-latency histograms, registered lazily by address
/// (the obs registry keys call sites by name; backends are dynamic).
const obs::Histogram &forwardHistogram(const std::string &Address) {
  static std::mutex Mu;
  static std::map<std::string, obs::Histogram> ByAddress;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = ByAddress.find(Address);
  if (It == ByAddress.end())
    It = ByAddress
             .emplace(Address, obs::Histogram("gateway.forward.us{backend=\"" +
                                              Address + "\"}"))
             .first;
  return It->second;
}

/// Shared between the initial synchronous probe pass and the periodic
/// checker (a function-local static in either would hide it from the
/// other).
const obs::Gauge &healthyGauge() {
  static const obs::Gauge G("gateway.backends.healthy");
  return G;
}

} // namespace

Gateway::Gateway(Options O) : Opts(std::move(O)) {
  if (Opts.VirtualNodes == 0)
    Opts.VirtualNodes = 1;
}

Gateway::~Gateway() { stop(); }

bool Gateway::start(std::string &Err) {
  if (Opts.Backends.empty()) {
    Err = "gateway requires at least one backend";
    return false;
  }
  for (const std::string &Addr : Opts.Backends) {
    auto B = std::make_unique<Backend>();
    B->Address = Addr;
    if (!splitAddress(Addr, B->Host, B->Port)) {
      Err = "malformed backend address '" + Addr + "' (want host:port)";
      return false;
    }
    for (const auto &Existing : Backends)
      if (Existing->Address == Addr) {
        Err = "duplicate backend address '" + Addr + "'";
        return false;
      }
    Backends.push_back(std::move(B));
  }
  for (size_t I = 0; I < Backends.size(); ++I)
    for (unsigned V = 0; V < Opts.VirtualNodes; ++V)
      Ring.emplace(ringHash(Backends[I]->Address + "#" + std::to_string(V)),
                   I);
  // One synchronous probe so routing works immediately, then the
  // periodic checker takes over.
  int64_t Healthy = 0;
  for (auto &B : Backends) {
    probe(*B);
    if (B->Healthy.load())
      ++Healthy;
  }
  healthyGauge().set(Healthy);
  HealthThread = std::thread([this] { healthCheckMain(); });
  return true;
}

void Gateway::stop() {
  {
    std::lock_guard<std::mutex> Lock(HealthMutex);
    if (HealthStop)
      return;
    HealthStop = true;
  }
  HealthCv.notify_all();
  if (HealthThread.joinable())
    HealthThread.join();
}

//===----------------------------------------------------------------------===//
// Routing
//===----------------------------------------------------------------------===//

size_t Gateway::backendIndexFor(std::string_view Key) const {
  auto It = Ring.lower_bound(ringHash(Key));
  if (It == Ring.end())
    It = Ring.begin();
  return It->second;
}

std::vector<size_t> Gateway::candidatesFor(std::string_view Key) const {
  std::vector<size_t> Order;
  std::vector<bool> Seen(Backends.size(), false);
  auto It = Ring.lower_bound(ringHash(Key));
  for (size_t Walked = 0; Walked < Ring.size() && Order.size() < Backends.size();
       ++Walked, ++It) {
    if (It == Ring.end())
      It = Ring.begin();
    if (!Seen[It->second]) {
      Seen[It->second] = true;
      Order.push_back(It->second);
    }
  }
  return Order;
}

std::string Gateway::routeKey(const serve::Request &R) {
  if (R.Method == "intern") {
    if (const std::string *N = R.Params.memberString("name"))
      return lowered(*N);
    return "";
  }
  if (R.Method == "counts") {
    if (const std::string *T = R.Params.memberString("target"))
      return lowered(*T);
    return "";
  }
  const JsonValue *Targets = R.Params.member("targets");
  const std::vector<JsonValue> *Arr = Targets ? Targets->asArray() : nullptr;
  if (!Arr || Arr->empty())
    return ""; // Default-targets requests share one stable key.
  std::string Key;
  for (const JsonValue &T : *Arr) {
    if (const std::string *S = T.asString()) {
      if (!Key.empty())
        Key += '\n';
      Key += lowered(*S);
    }
  }
  return Key;
}

//===----------------------------------------------------------------------===//
// Upstream connections and intern replay
//===----------------------------------------------------------------------===//

std::unique_ptr<serve::Client> Gateway::acquire(Backend &B, std::string &Err) {
  {
    std::lock_guard<std::mutex> Lock(B.PoolMutex);
    if (!B.Idle.empty()) {
      auto C = std::make_unique<serve::Client>(std::move(B.Idle.back()));
      B.Idle.pop_back();
      return C;
    }
  }
  std::optional<serve::Client> C = serve::Client::connect(B.Host, B.Port, Err);
  if (!C)
    return nullptr;
  return std::make_unique<serve::Client>(std::move(*C));
}

void Gateway::release(Backend &B, std::unique_ptr<serve::Client> C) {
  std::lock_guard<std::mutex> Lock(B.PoolMutex);
  if (B.Idle.size() < 8)
    B.Idle.push_back(std::move(*C));
}

void Gateway::markUnhealthy(Backend &B) {
  B.Healthy.store(false);
  std::lock_guard<std::mutex> Lock(B.PoolMutex);
  B.Idle.clear(); // Pooled connections to a dead backend are poison.
}

bool Gateway::replayInterns(Backend &B, serve::Client &C,
                            const serve::Request &R) {
  std::vector<std::string> Names;
  if (R.Method == "counts") {
    if (const std::string *T = R.Params.memberString("target"))
      Names.push_back(*T);
  } else if (R.Method != "intern") {
    const JsonValue *Targets = R.Params.member("targets");
    if (const std::vector<JsonValue> *Arr =
            Targets ? Targets->asArray() : nullptr)
      for (const JsonValue &T : *Arr)
        if (const std::string *S = T.asString())
          Names.push_back(*S);
  }
  for (const std::string &Name : Names) {
    std::string ParamsJson;
    uint64_t Gen = 0;
    {
      std::lock_guard<std::mutex> Lock(JournalMutex);
      auto It = Journal.find(Name);
      if (It == Journal.end())
        continue; // Bundled workload (or unknown): nothing to replay.
      ParamsJson = It->second.first;
      Gen = It->second.second;
    }
    {
      std::lock_guard<std::mutex> Lock(B.SentMutex);
      auto It = B.Sent.find(Name);
      if (It != B.Sent.end() && It->second == Gen)
        continue;
    }
    serve::Reply Rep = C.call("intern", ParamsJson);
    if (!Rep.Ok && Rep.Code == ErrorCode::TransportError)
      return false;
    if (Rep.Ok) {
      if (obs::logEnabled(obs::LogLevel::Info))
        obs::log(obs::LogLevel::Info, "gateway.intern.replay",
                 {{"backend", B.Address}, {"name", Name}});
      std::lock_guard<std::mutex> Lock(B.SentMutex);
      B.Sent[Name] = Gen;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

std::string Gateway::handleFrame(std::string_view Line,
                                 const FrameSink &Sink) {
  static const obs::Counter Requests("gateway.requests");
  serve::ParsedFrame P = serve::parseRequestFrame(Line);
  if (!P.Req)
    return serve::makeErrorFrame(P.Id, P.Code, P.Message);
  const serve::Request &R = *P.Req;
  Requests.add();
  obs::Span S(obs::traceActive() ? "gateway." + R.Method : std::string());
  // Adopt the request's distributed-trace context: this hop's span joins
  // the client's trace, and forwarded requests carry it as their parent.
  obs::RingSpanScope RingSpan(R.Trace.TraceId, R.Trace.ParentSpan,
                              "gateway." + R.Method);
  obs::LogRequestScope LogScope(0, R.Method, R.Trace.TraceId);
  if (Draining.load() && R.Method != "shutdown")
    return serve::makeErrorFrame(R.Id, ErrorCode::ShuttingDown,
                                 "gateway is shutting down");
  if (R.Method == "shutdown") {
    Draining.store(true);
    return serve::makeResultFrame(R.Id, "{\"ok\":true}");
  }
  if (R.Method == "metrics")
    return methodMetrics(R);
  if (R.Method == "stats")
    return methodStats(R);
  if (R.Method == "trace/dump")
    return methodTraceDump(R);
  if (R.Method == "log/level")
    return methodLogLevel(R);
  if (R.Method == "gateway/backends")
    return methodBackends(R);
  if (R.Method == "gateway/drain")
    return methodDrain(R, /*Drain=*/true);
  if (R.Method == "gateway/undrain")
    return methodDrain(R, /*Drain=*/false);
  std::string ParamsJson = R.Params.isNull() ? "" : R.Params.toJson();
  serve::TraceContext Downstream;
  if (RingSpan.active()) {
    Downstream.TraceId = R.Trace.TraceId;
    Downstream.ParentSpan = RingSpan.spanId();
  }
  return forward(R, ParamsJson, Downstream, Sink);
}

std::string Gateway::forward(const serve::Request &R,
                             const std::string &ParamsJson,
                             const serve::TraceContext &Downstream,
                             const FrameSink &Sink) {
  static const obs::Counter Failovers("gateway.failovers");
  static const obs::Counter Forwarded("gateway.forwarded");
  std::string Key = routeKey(R);
  auto NoteFailover = [&](Backend &B, const char *Why) {
    markUnhealthy(B);
    ++B.Failovers;
    Failovers.add();
    if (obs::logEnabled(obs::LogLevel::Warn))
      obs::log(obs::LogLevel::Warn, "gateway.failover",
               {{"backend", B.Address}, {"reason", Why}});
  };
  for (size_t Idx : candidatesFor(Key)) {
    Backend &B = *Backends[Idx];
    if (!B.Healthy.load() || B.AdminDrained.load())
      continue;
    // One ring span per attempt: failover retries show up as sibling
    // spans under the gateway's request span, each naming its backend.
    obs::RingSpanScope Attempt(Downstream.TraceId, Downstream.ParentSpan,
                               "gateway.attempt");
    Attempt.arg("backend", std::string_view(B.Address));
    std::string Err;
    std::unique_ptr<serve::Client> C = acquire(B, Err);
    if (!C) {
      Attempt.arg("outcome", "connect_failed");
      NoteFailover(B, "connect_failed");
      continue;
    }
    if (!replayInterns(B, *C, R)) {
      Attempt.arg("outcome", "replay_failed");
      NoteFailover(B, "replay_failed");
      continue;
    }
    // Forwarded frames carry the attempt span as parent, so each
    // backend's spans nest under the attempt that reached it.
    if (Attempt.active())
      C->setTrace({Downstream.TraceId, Attempt.spanId()});
    std::string FinalRaw;
    auto Start = std::chrono::steady_clock::now();
    serve::Reply Rep = C->forwardRaw(
        R.Id, R.Method, ParamsJson,
        [&](std::string_view Raw) {
          if (Sink)
            Sink(std::string(Raw) + "\n");
        },
        &FinalRaw);
    auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    forwardHistogram(B.Address).observeUs(Us < 0 ? 0 : uint64_t(Us));
    C->setTrace({}); // Pooled clients must not leak the context.
    if (FinalRaw.empty()) {
      // No final frame made it back: a transport-level failure. Every
      // becd method is idempotent, so retry on the ring's next backend.
      // (Progress frames already relayed may be re-streamed by the
      // retry; clients treat them as advisory.)
      Attempt.arg("outcome", "transport_error");
      NoteFailover(B, "transport_error");
      continue;
    }
    Attempt.arg("outcome", "ok");
    ++B.Forwarded;
    Forwarded.add();
    if (R.Method == "intern") {
      // Journal successful interns for replay-on-failover; a re-intern
      // bumps the generation so stale backends get the new content.
      const std::string *Name = R.Params.memberString("name");
      if (Rep.Ok && Name) {
        uint64_t Gen;
        {
          std::lock_guard<std::mutex> Lock(JournalMutex);
          Gen = ++JournalGen;
          Journal[*Name] = {ParamsJson, Gen};
        }
        std::lock_guard<std::mutex> Lock(B.SentMutex);
        B.Sent[*Name] = Gen;
      }
    }
    release(B, std::move(C));
    return FinalRaw + "\n";
  }
  if (obs::logEnabled(obs::LogLevel::Error))
    obs::log(obs::LogLevel::Error, "gateway.no_backend",
             {{"key", Key}});
  return serve::makeErrorFrame(R.Id, ErrorCode::NoBackend,
                               "no healthy backend for request");
}

//===----------------------------------------------------------------------===//
// Gateway-local methods
//===----------------------------------------------------------------------===//

std::string Gateway::methodMetrics(const serve::Request &R) {
  JsonWriter W;
  W.beginObject();
  W.key("content_type").value("text/plain; version=0.0.4");
  W.key("text").value(obs::renderPrometheus(obs::snapshotMetrics()));
  W.endObject();
  return serve::makeResultFrame(R.Id, W.take());
}

std::string Gateway::methodTraceDump(const serve::Request &R) {
  std::string Filter;
  if (const JsonValue *TV = R.Params.member("trace_id")) {
    const std::string *Sp = TV->asString();
    if (!Sp)
      return serve::makeErrorFrame(R.Id, ErrorCode::InvalidParams,
                                   "'trace_id' must be a string when present");
    Filter = *Sp;
  }
  std::string Process = obs::spanRingProcess();
  std::string Out = "{\"process\":";
  {
    JsonWriter PW;
    PW.value(Process);
    Out += PW.take();
  }
  Out += ",\"spans\":[";
  bool First = true;
  for (const obs::RingSpan &Sp : obs::spanRingSnapshot(Filter)) {
    if (!First)
      Out += ',';
    First = false;
    Out += obs::renderRingSpanJson(Sp, Process);
  }
  // Merge every healthy backend's dump. Backend spans are re-rendered
  // with the backend *address* as their process label: all backends
  // call themselves "becd", and the stitching client needs to tell
  // shards apart.
  std::string ParamsJson = R.Params.isNull() ? "" : R.Params.toJson();
  for (auto &B : Backends) {
    if (!B->Healthy.load())
      continue;
    std::string Err;
    std::unique_ptr<serve::Client> C = acquire(*B, Err);
    if (!C)
      continue;
    serve::Reply Rep = C->call("trace/dump", ParamsJson);
    if (!Rep.Ok) {
      if (Rep.Code == ErrorCode::TransportError)
        markUnhealthy(*B);
      continue;
    }
    if (const JsonValue *Spans = Rep.Result.member("spans"))
      if (const std::vector<JsonValue> *Arr = Spans->asArray())
        for (const JsonValue &SV : *Arr) {
          obs::RingSpan Sp;
          if (const std::string *S = SV.memberString("name"))
            Sp.Name = *S;
          if (const std::string *S = SV.memberString("trace_id"))
            Sp.TraceId = *S;
          if (const std::string *S = SV.memberString("span_id"))
            Sp.SpanId = *S;
          if (const std::string *S = SV.memberString("parent_span"))
            Sp.ParentSpan = *S;
          Sp.StartUs = SV.memberU64("start_us").value_or(0);
          Sp.DurUs = SV.memberU64("dur_us").value_or(0);
          Sp.Tid = SV.memberU64("tid").value_or(0);
          if (const JsonValue *Args = SV.member("args"))
            Sp.ArgsJson = Args->toJson();
          if (!First)
            Out += ',';
          First = false;
          Out += obs::renderRingSpanJson(Sp, B->Address);
        }
    release(*B, std::move(C));
  }
  Out += "]}";
  return serve::makeResultFrame(R.Id, Out);
}

std::string Gateway::methodLogLevel(const serve::Request &R) {
  if (const JsonValue *LV = R.Params.member("level")) {
    const std::string *Sp = LV->asString();
    std::optional<obs::LogLevel> L =
        Sp ? obs::parseLogLevel(*Sp) : std::nullopt;
    if (!L)
      return serve::makeErrorFrame(
          R.Id, ErrorCode::InvalidParams,
          "'level' must be one of debug | info | warn | error | off");
    obs::setLogLevel(*L);
    obs::log(obs::LogLevel::Info, "log.level.changed",
             {{"level", std::string_view(obs::logLevelName(*L))}});
  }
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(true);
  W.key("level").value(obs::logLevelName(obs::logLevel()));
  W.endObject();
  return serve::makeResultFrame(R.Id, W.take());
}

std::string Gateway::methodBackends(const serve::Request &R) {
  JsonWriter W;
  W.beginObject();
  W.key("backends").beginArray();
  for (const auto &B : Backends) {
    W.beginObject();
    W.key("address").value(B->Address);
    W.key("healthy").value(B->Healthy.load());
    W.key("draining").value(B->AdminDrained.load());
    W.key("forwarded").value(B->Forwarded.load());
    W.key("failovers").value(B->Failovers.load());
    W.endObject();
  }
  W.endArray();
  W.key("ring_keys").value(uint64_t(Ring.size()));
  W.key("virtual_nodes").value(uint64_t(Opts.VirtualNodes));
  W.endObject();
  return serve::makeResultFrame(R.Id, W.take());
}

std::string Gateway::methodDrain(const serve::Request &R, bool Drain) {
  const std::string *Addr = R.Params.memberString("backend");
  if (!Addr)
    return serve::makeErrorFrame(R.Id, ErrorCode::InvalidParams,
                                 "params.backend (host:port) is required");
  for (const auto &B : Backends) {
    if (B->Address != *Addr)
      continue;
    B->AdminDrained.store(Drain);
    JsonWriter W;
    W.beginObject();
    W.key("ok").value(true);
    W.key("backend").value(B->Address);
    W.key("draining").value(Drain);
    W.endObject();
    return serve::makeResultFrame(R.Id, W.take());
  }
  return serve::makeErrorFrame(R.Id, ErrorCode::InvalidParams,
                               "unknown backend '" + *Addr + "'");
}

std::string Gateway::methodStats(const serve::Request &R) {
  // Fan out to every healthy backend, then merge: summed counters, a
  // count-weighted latency mean with worst-case quantiles, summed
  // session cache stats — plus the per-backend health the gateway alone
  // can see.
  struct LatencyAgg {
    uint64_t Count = 0;
    double SumMeanWeighted = 0;
    uint64_t P50 = 0, P99 = 0;
  };
  uint64_t Connections = 0, Requests = 0, Errors = 0, Programs = 0;
  uint64_t Hits = 0, Misses = 0, Interned = 0, Shards = 0;
  std::map<std::string, uint64_t> Methods;
  std::map<std::string, LatencyAgg> Latency;
  std::vector<std::pair<const Backend *, bool>> Reached;

  for (const auto &B : Backends) {
    bool Got = false;
    if (B->Healthy.load()) {
      std::string Err;
      if (std::unique_ptr<serve::Client> C = acquire(*B, Err)) {
        serve::Reply Rep = C->call("stats");
        if (Rep.Ok) {
          Got = true;
          const JsonValue &V = Rep.Result;
          auto Sum = [&](const char *Key, uint64_t &Into) {
            if (std::optional<uint64_t> N = V.memberU64(Key))
              Into += *N;
          };
          Sum("connections", Connections);
          Sum("requests", Requests);
          Sum("errors", Errors);
          Sum("programs", Programs);
          if (const JsonValue *M = V.member("methods"))
            for (const auto &[Name, Count] : M->objectMembers())
              if (std::optional<uint64_t> N = Count.asU64())
                Methods[Name] += *N;
          if (const JsonValue *L = V.member("latency"))
            for (const auto &[Name, Snap] : L->objectMembers()) {
              LatencyAgg &A = Latency[Name];
              uint64_t N = Snap.memberU64("count").value_or(0);
              A.Count += N;
              if (const JsonValue *Mean = Snap.member("mean_us"))
                if (std::optional<double> D = Mean->asDouble())
                  A.SumMeanWeighted += *D * double(N);
              A.P50 = std::max(A.P50, Snap.memberU64("p50_us").value_or(0));
              A.P99 = std::max(A.P99, Snap.memberU64("p99_us").value_or(0));
            }
          if (const JsonValue *SS = V.member("session")) {
            auto SumS = [&](const char *Key, uint64_t &Into) {
              if (std::optional<uint64_t> N = SS->memberU64(Key))
                Into += *N;
            };
            SumS("hits", Hits);
            SumS("misses", Misses);
            SumS("interned", Interned);
            SumS("shards", Shards);
          }
          release(*B, std::move(C));
        } else if (Rep.Code == ErrorCode::TransportError) {
          markUnhealthy(*B);
        }
      } else {
        markUnhealthy(*B);
      }
    }
    Reached.push_back({B.get(), Got});
  }

  JsonWriter W;
  W.beginObject();
  W.key("gateway").beginObject();
  W.key("backends").beginArray();
  for (const auto &[B, Got] : Reached) {
    W.beginObject();
    W.key("address").value(B->Address);
    W.key("healthy").value(B->Healthy.load());
    W.key("draining").value(B->AdminDrained.load());
    W.key("forwarded").value(B->Forwarded.load());
    W.key("failovers").value(B->Failovers.load());
    W.key("stats_included").value(Got);
    W.endObject();
  }
  W.endArray();
  W.key("ring_keys").value(uint64_t(Ring.size()));
  W.endObject();
  W.key("connections").value(Connections);
  W.key("requests").value(Requests);
  W.key("errors").value(Errors);
  W.key("methods").beginObject();
  for (const auto &[Name, Count] : Methods)
    W.key(Name).value(Count);
  W.endObject();
  W.key("latency").beginObject();
  for (const auto &[Name, A] : Latency) {
    if (A.Count == 0)
      continue;
    W.key(Name).beginObject();
    W.key("count").value(A.Count);
    W.key("p50_us").value(A.P50);
    W.key("p99_us").value(A.P99);
    W.key("mean_us").value(A.SumMeanWeighted / double(A.Count));
    W.endObject();
  }
  W.endObject();
  W.key("gauges").beginObject();
  for (const obs::MetricValue &M : obs::snapshotMetrics().Metrics)
    if (M.Kind == obs::MetricKind::Gauge)
      W.key(M.Name).value(int64_t(M.GaugeValue));
  W.endObject();
  W.key("session").beginObject();
  W.key("hits").value(Hits);
  W.key("misses").value(Misses);
  W.key("hit_rate").value(double(Hits) / double(Hits + Misses));
  W.key("interned").value(Interned);
  W.key("shards").value(Shards);
  W.endObject();
  W.key("programs").value(Programs);
  W.endObject();
  return serve::makeResultFrame(R.Id, W.take());
}

//===----------------------------------------------------------------------===//
// Health checking
//===----------------------------------------------------------------------===//

void Gateway::probe(Backend &B) {
  std::string Err;
  bool Ok = false;
  if (std::optional<serve::Client> C =
          serve::Client::connect(B.Host, B.Port, Err))
    Ok = C->call("version").Ok;
  bool Was = B.Healthy.exchange(Ok);
  if (Ok != Was)
    obs::log(Ok ? obs::LogLevel::Info : obs::LogLevel::Warn,
             "gateway.backend.health",
             {{"backend", B.Address}, {"healthy", Ok}});
}

void Gateway::healthCheckMain() {
  obs::setTraceThreadName("gateway-health");
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(HealthMutex);
      HealthCv.wait_for(Lock,
                        std::chrono::milliseconds(Opts.HealthIntervalMs),
                        [&] { return HealthStop; });
      if (HealthStop)
        return;
    }
    int64_t Healthy = 0;
    for (auto &B : Backends) {
      probe(*B);
      if (B->Healthy.load())
        ++Healthy;
    }
    healthyGauge().set(Healthy);
  }
}
