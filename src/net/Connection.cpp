//===- net/Connection.cpp - Non-blocking buffered connection --------------===//

#include "net/Connection.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace bec;
using namespace bec::net;

namespace {

/// Per-readSome fairness cap: one hog connection cannot starve the loop.
constexpr size_t MaxReadPerEvent = 256u * 1024;

/// Compaction threshold for the consumed prefix of a buffer.
constexpr size_t CompactAt = 64u * 1024;

} // namespace

Connection::Connection(int FD, uint64_t Id) : FD(FD), Id(Id) {
  int Flags = ::fcntl(FD, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(FD, F_SETFL, Flags | O_NONBLOCK);
}

Connection::~Connection() { closeNow(); }

void Connection::closeNow() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
}

Connection::IoStatus Connection::readSome(std::string &Err) {
  char Tmp[16 * 1024];
  size_t Total = 0;
  for (;;) {
    ssize_t N = ::recv(FD, Tmp, sizeof(Tmp), 0);
    if (N > 0) {
      InBuf.append(Tmp, size_t(N));
      Total += size_t(N);
      if (Total >= MaxReadPerEvent)
        return IoStatus::Ok; // Level-triggered poll re-fires for the rest.
      continue;
    }
    if (N == 0)
      return IoStatus::Closed;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return IoStatus::Ok;
    if (errno == EINTR)
      continue;
    Err = std::string("recv: ") + std::strerror(errno);
    return IoStatus::Error;
  }
}

Connection::FrameStatus Connection::nextFrame(std::string &Line,
                                              size_t MaxLen) {
  size_t NL = InBuf.find('\n', InPos);
  if (NL == std::string::npos) {
    if (InBuf.size() - InPos > MaxLen)
      return FrameStatus::TooLong;
    if (InPos >= CompactAt) {
      InBuf.erase(0, InPos);
      InPos = 0;
    }
    return FrameStatus::None;
  }
  if (NL - InPos > MaxLen)
    return FrameStatus::TooLong;
  Line.assign(InBuf, InPos, NL - InPos);
  InPos = NL + 1;
  if (InPos == InBuf.size()) {
    InBuf.clear();
    InPos = 0;
  }
  return FrameStatus::Frame;
}

void Connection::queueWrite(std::string_view Data) { OutBuf.append(Data); }

Connection::IoStatus Connection::flushSome(std::string &Err) {
  while (OutPos < OutBuf.size()) {
    ssize_t N = ::send(FD, OutBuf.data() + OutPos, OutBuf.size() - OutPos,
                       MSG_NOSIGNAL);
    if (N > 0) {
      OutPos += size_t(N);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (OutPos >= CompactAt) {
        OutBuf.erase(0, OutPos);
        OutPos = 0;
      }
      return IoStatus::Ok;
    }
    if (errno == EINTR)
      continue;
    Err = std::string("send: ") + std::strerror(errno);
    return IoStatus::Error;
  }
  OutBuf.clear();
  OutPos = 0;
  return IoStatus::Ok;
}
