//===- net/EventLoop.h - poll()-based event-loop serving core -------------===//
///
/// \file
/// The event-loop half of the becd serving stack (docs/serve.md has the
/// architecture picture). EventServer replaces thread-per-connection with
/// one poll()-driven loop thread multiplexing every connection plus a
/// bounded worker pool executing requests, so:
///
///  * connection count is decoupled from thread count — thousands of
///    mostly-idle sockets cost file descriptors, not stacks;
///  * requests may be *pipelined*: a client can write N frames back to
///    back and read N responses in order. Within one connection requests
///    still execute serially (the wire contract), so streaming progress
///    frames never interleave; concurrency comes from connections;
///  * overload is *typed*, not a stall: when every worker is busy and the
///    admission queue is full, a would-be-dispatched request is answered
///    with error 105 `overloaded`; once a drain begins (a `shutdown`
///    request or requestStop()), queued-but-unstarted requests are
///    answered with error 106 `draining`, in-flight ones finish, output
///    buffers flush, and run() returns.
///
/// The request executor is a pluggable FrameHandler, which is how both
/// becd (serve::Service::handleFrameStreaming) and the gateway
/// (net::Gateway::handleFrame) share this core. Handlers run on worker
/// threads and must be thread-safe across connections; per-connection
/// serialization is the loop's job.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_NET_EVENTLOOP_H
#define BEC_NET_EVENTLOOP_H

#include "net/Connection.h"
#include "serve/Protocol.h"
#include "serve/Socket.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace bec {
namespace net {

/// Maps one request line (without its trailing newline) to the final
/// response frame ('\n'-terminated). Intermediate frames of streaming
/// methods go through the sink ('\n'-terminated, in order, never after
/// the handler returns). Called on worker threads.
using FrameSink = std::function<void(const std::string &Frame)>;
using FrameHandler =
    std::function<std::string(std::string_view Line, const FrameSink &Sink)>;

/// The poll()-based serving core; see the file comment.
class EventServer {
public:
  struct Options {
    std::string Host = "127.0.0.1";
    uint16_t Port = serve::DefaultPort; ///< 0 = ephemeral; see port().
    /// Worker threads executing requests. 0 = one per core (floor 1,
    /// cap 64). Unlike the legacy thread-per-connection pool this is a
    /// CPU-sizing knob: workers never block on the network.
    unsigned Workers = 0;
    /// Admission control: beyond `Workers` running requests, at most
    /// this many more may wait for a worker; the next request that
    /// would dispatch is answered `overloaded` instead.
    size_t QueueDepth = 256;
    /// Per-connection pipeline: parsed-but-undispatched frames held per
    /// connection before the loop stops reading from it (flow control
    /// via TCP backpressure, no error — the client simply blocks).
    size_t MaxPipeline = 64;
    /// Stop reading from a connection while more than this many
    /// response bytes are waiting for its slow reader.
    size_t WriteHighWater = 4u << 20;
    /// Accept cap; connections beyond it are closed immediately.
    size_t MaxConnections = 8192;
  };

  EventServer(FrameHandler Handler, std::string HandshakeFrame, Options O);
  EventServer(const EventServer &) = delete;
  EventServer &operator=(const EventServer &) = delete;
  ~EventServer();

  /// Polled on the loop thread after each completed request; returning
  /// true begins the drain. becd wires this to Service::isShuttingDown
  /// so a `shutdown` request drains the server exactly like the legacy
  /// path; the gateway wires its own flag.
  void setDrainCheck(std::function<bool()> Check) {
    DrainCheck = std::move(Check);
  }

  /// Called on the loop thread for every accepted connection; becd wires
  /// this to Service::noteConnection so the `stats` connection counter
  /// keeps counting under the event-loop engine.
  void setAcceptCallback(std::function<void()> Callback) {
    OnAccept = std::move(Callback);
  }

  /// Binds and listens; false with a diagnostic on failure.
  bool start(std::string &Err);

  /// The bound port (valid after start(); resolves Port=0 requests).
  uint16_t port() const { return Listener.boundPort(); }

  /// Runs the event loop on the calling thread until a drain completes.
  void run();

  /// Thread-safe external stop: begins a graceful drain.
  void requestStop();

private:
  struct Job {
    uint64_t ConnId = 0;
    std::string Line;
    std::chrono::steady_clock::time_point Enqueued;
  };
  struct Completion {
    uint64_t ConnId = 0;
    std::string Frame;
    bool Final = false;
  };

  void workerMain(unsigned Index);
  void postCompletion(uint64_t ConnId, std::string Frame, bool Final);
  void wakeLoop();

  // Loop-thread helpers.
  void acceptPending();
  void handleReadable(Connection &C);
  void handleParsedFrame(Connection &C, std::string Line);
  void pumpConnection(Connection &C);
  void rejectFrame(Connection &C, const std::string &Line,
                   serve::ErrorCode Code, std::string_view Message);
  void startDrain();
  void sweepClosable();
  void markDead(Connection &C);

  FrameHandler Handler;
  std::string HandshakeFrame;
  Options Opts;
  std::function<bool()> DrainCheck;
  std::function<void()> OnAccept;

  serve::ListenSocket Listener;
  int WakeRead = -1, WakeWrite = -1;
  uint64_t NextConnId = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> Conns;
  size_t InFlight = 0; ///< Dispatched, final frame not yet processed.
  bool Draining = false;
  std::atomic<bool> StopRequested{false};

  std::vector<std::thread> Workers;
  std::mutex JobMutex;
  std::condition_variable JobCv;
  std::deque<Job> Jobs;
  bool WorkersStop = false;

  std::mutex CompMutex;
  std::vector<Completion> Completions;
};

} // namespace net
} // namespace bec

#endif // BEC_NET_EVENTLOOP_H
