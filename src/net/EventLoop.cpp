//===- net/EventLoop.cpp - poll()-based event-loop serving core -----------===//

#include "net/EventLoop.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace bec;
using namespace bec::net;
using serve::ErrorCode;

namespace {

/// Worker sizing: CPU-bound request execution (handlers never block on
/// the network), so one per core, floor 1, sane cap.
unsigned workerCount(unsigned Requested) {
  if (Requested == 0) {
    Requested = std::thread::hardware_concurrency();
    if (Requested == 0)
      Requested = 1;
  }
  return Requested > 64 ? 64 : Requested;
}

void setNonBlocking(int FD) {
  int Flags = ::fcntl(FD, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(FD, F_SETFL, Flags | O_NONBLOCK);
}

/// How long a drain waits for slow readers to take their last bytes
/// before force-closing their connections.
constexpr auto DrainFlushGrace = std::chrono::seconds(5);

} // namespace

EventServer::EventServer(FrameHandler Handler, std::string HandshakeFrame,
                         Options O)
    : Handler(std::move(Handler)), HandshakeFrame(std::move(HandshakeFrame)),
      Opts(std::move(O)) {
  Opts.Workers = workerCount(Opts.Workers);
}

EventServer::~EventServer() {
  if (WakeRead >= 0)
    ::close(WakeRead);
  if (WakeWrite >= 0)
    ::close(WakeWrite);
}

bool EventServer::start(std::string &Err) {
  int Pipe[2];
  if (WakeRead < 0) {
    if (::pipe(Pipe) != 0) {
      Err = "pipe failed";
      return false;
    }
    WakeRead = Pipe[0];
    WakeWrite = Pipe[1];
    setNonBlocking(WakeRead);
    setNonBlocking(WakeWrite);
  }
  if (!Listener.listenOn(Opts.Host, Opts.Port, Err))
    return false;
  setNonBlocking(Listener.fd());
  return true;
}

void EventServer::requestStop() {
  StopRequested.store(true);
  wakeLoop();
}

void EventServer::wakeLoop() {
  char B = 1;
  // A full pipe already guarantees a pending wakeup.
  (void)!::write(WakeWrite, &B, 1);
}

void EventServer::postCompletion(uint64_t ConnId, std::string Frame,
                                 bool Final) {
  {
    std::lock_guard<std::mutex> Lock(CompMutex);
    Completions.push_back({ConnId, std::move(Frame), Final});
  }
  wakeLoop();
}

void EventServer::workerMain(unsigned Index) {
  obs::setTraceThreadName("net-worker-" + std::to_string(Index));
  static const obs::Histogram WaitUs("net.loop.dispatch.wait.us");
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(JobMutex);
      JobCv.wait(Lock, [&] { return WorkersStop || !Jobs.empty(); });
      if (Jobs.empty())
        return; // WorkersStop, queue drained.
      J = std::move(Jobs.front());
      Jobs.pop_front();
    }
    auto Wait = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - J.Enqueued)
                    .count();
    WaitUs.observeUs(Wait < 0 ? 0 : uint64_t(Wait));
    obs::Span S("net.request");
    S.arg("wait_us", Wait < 0 ? 0 : uint64_t(Wait));
    uint64_t ConnId = J.ConnId;
    // Establishes the conn id for every log line the handler emits (the
    // service layer's scope inherits it; see obs/Log.h).
    obs::LogRequestScope LogScope(ConnId, {}, {});
    std::string Final = Handler(J.Line, [&](const std::string &Frame) {
      postCompletion(ConnId, Frame, /*Final=*/false);
    });
    postCompletion(ConnId, std::move(Final), /*Final=*/true);
  }
}

void EventServer::rejectFrame(Connection &C, const std::string &Line,
                              ErrorCode Code, std::string_view Message) {
  // The id is recovered by a full parse; rejections are rare enough that
  // the loop-side parse cost does not matter.
  serve::ParsedFrame P = serve::parseRequestFrame(Line);
  std::optional<uint64_t> Id = P.Req ? std::optional<uint64_t>(P.Req->Id)
                                     : P.Id;
  C.queueWrite(serve::makeErrorFrame(Id, Code, Message));
  std::string Err;
  if (C.flushSome(Err) == Connection::IoStatus::Error)
    markDead(C);
}

void EventServer::handleParsedFrame(Connection &C, std::string Line) {
  static const obs::Counter Requests("net.loop.requests");
  static const obs::Counter RejDraining("net.loop.rejected.draining");
  static const obs::Histogram PipelineDepth("net.loop.pipeline.depth");
  if (Draining) {
    RejDraining.add();
    rejectFrame(C, Line, ErrorCode::Draining,
                "server is draining; request refused");
    return;
  }
  Requests.add();
  C.Backlog.push_back(std::move(Line));
  PipelineDepth.observeUs(C.Backlog.size());
  pumpConnection(C);
}

void EventServer::pumpConnection(Connection &C) {
  static const obs::Counter RejOverload("net.loop.rejected.overload");
  static const obs::Counter RejDraining("net.loop.rejected.draining");
  static const obs::Gauge QueueGauge("net.loop.queue.depth");
  while (!C.Busy && !C.Backlog.empty()) {
    std::string Line = std::move(C.Backlog.front());
    C.Backlog.pop_front();
    if (Draining) {
      RejDraining.add();
      rejectFrame(C, Line, ErrorCode::Draining,
                  "server is draining; request refused");
      if (C.Dead)
        return;
      continue;
    }
    if (InFlight >= size_t(Opts.Workers) + Opts.QueueDepth) {
      RejOverload.add();
      if (obs::logEnabled(obs::LogLevel::Warn))
        obs::log(obs::LogLevel::Warn, "net.overload",
                 {{"conn", C.id()}, {"inflight", uint64_t(InFlight)}});
      rejectFrame(C, Line, ErrorCode::Overloaded,
                  "server overloaded; worker queue full");
      if (C.Dead)
        return;
      continue;
    }
    ++InFlight;
    C.Busy = true;
    QueueGauge.set(int64_t(InFlight));
    {
      std::lock_guard<std::mutex> Lock(JobMutex);
      Jobs.push_back({C.id(), std::move(Line), std::chrono::steady_clock::now()});
    }
    JobCv.notify_one();
  }
}

void EventServer::handleReadable(Connection &C) {
  static const obs::Counter Oversized("net.loop.frames.oversized");
  std::string Err;
  Connection::IoStatus St = C.readSome(Err);
  if (St == Connection::IoStatus::Error) {
    markDead(C);
    return;
  }
  if (St == Connection::IoStatus::Closed)
    C.ReadClosed = true;
  std::string Line;
  for (;;) {
    Connection::FrameStatus FS = C.nextFrame(Line, serve::MaxFrameBytes);
    if (FS == Connection::FrameStatus::None)
      break;
    if (FS == Connection::FrameStatus::TooLong) {
      Oversized.add();
      if (obs::logEnabled(obs::LogLevel::Warn))
        obs::log(obs::LogLevel::Warn, "net.frame.oversized",
                 {{"conn", C.id()},
                  {"limit_bytes", uint64_t(serve::MaxFrameBytes)}});
      C.queueWrite(serve::makeErrorFrame(
          std::nullopt, ErrorCode::ParseError,
          "frame exceeds " + std::to_string(serve::MaxFrameBytes) +
              " bytes"));
      C.ReadClosed = true;
      C.CloseAfterFlush = true;
      std::string FlushErr;
      if (C.flushSome(FlushErr) == Connection::IoStatus::Error)
        markDead(C);
      return;
    }
    handleParsedFrame(C, std::move(Line));
    if (C.Dead)
      return;
    if (C.Backlog.size() >= Opts.MaxPipeline)
      break; // Flow control: leave the rest buffered, pause reads.
  }
}

void EventServer::startDrain() {
  static const obs::Counter RejDraining("net.loop.rejected.draining");
  if (Draining)
    return;
  Draining = true;
  obs::log(obs::LogLevel::Info, "net.drain.start",
           {{"open_conns", uint64_t(Conns.size())},
            {"inflight", uint64_t(InFlight)}});
  Listener.close();
  for (auto &[Id, C] : Conns) {
    if (C->Dead)
      continue;
    while (!C->Backlog.empty()) {
      std::string Line = std::move(C->Backlog.front());
      C->Backlog.pop_front();
      RejDraining.add();
      rejectFrame(*C, Line, ErrorCode::Draining,
                  "server is draining; request refused");
      if (C->Dead)
        break;
    }
  }
}

void EventServer::markDead(Connection &C) {
  // Never erases: callers may hold references up the stack. The entry is
  // reaped by sweepClosable(), or — while a worker still owns its
  // in-flight request — by that request's final completion.
  if (obs::logEnabled(obs::LogLevel::Debug))
    obs::log(obs::LogLevel::Debug, "net.conn.close", {{"conn", C.id()}});
  C.Dead = true;
  C.Backlog.clear();
  C.closeNow();
}

void EventServer::sweepClosable() {
  std::vector<uint64_t> Doomed;
  for (auto &[Id, C] : Conns) {
    if (C->Busy)
      continue;
    if (C->Dead) {
      Doomed.push_back(Id);
      continue;
    }
    if (!C->Backlog.empty() || C->wantsWrite())
      continue;
    if (C->CloseAfterFlush || C->ReadClosed || Draining) {
      // Graceful closes skip markDead(), so pair the accept line here.
      if (obs::logEnabled(obs::LogLevel::Debug))
        obs::log(obs::LogLevel::Debug, "net.conn.close", {{"conn", Id}});
      Doomed.push_back(Id);
    }
  }
  for (uint64_t Id : Doomed)
    Conns.erase(Id);
}

void EventServer::acceptPending() {
  static const obs::Counter Accepted("net.loop.accepted");
  for (;;) {
    if (Conns.size() >= Opts.MaxConnections)
      return; // Leave the rest in the kernel backlog (backpressure).
    int FD = ::accept4(Listener.fd(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (FD < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN, or a transient per-connection failure.
    }
    Accepted.add();
    if (OnAccept)
      OnAccept();
    uint64_t Id = NextConnId++;
    if (obs::logEnabled(obs::LogLevel::Debug))
      obs::log(obs::LogLevel::Debug, "net.conn.accept", {{"conn", Id}});
    auto C = std::make_unique<Connection>(FD, Id);
    C->queueWrite(HandshakeFrame);
    std::string Err;
    if (C->flushSome(Err) == Connection::IoStatus::Error)
      continue; // Destroyed with C.
    Conns.emplace(Id, std::move(C));
  }
}

void EventServer::run() {
  static const obs::Gauge OpenGauge("net.loop.connections");
  static const obs::Gauge QueueGauge("net.loop.queue.depth");
  for (unsigned I = 0; I < Opts.Workers; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });

  std::chrono::steady_clock::time_point DrainStartedAt{};
  std::vector<pollfd> Fds;
  std::vector<uint64_t> FdConn; // Parallel: owning conn id, 0 for none.
  for (;;) {
    Fds.clear();
    FdConn.clear();
    Fds.push_back({WakeRead, POLLIN, 0});
    FdConn.push_back(0);
    if (!Draining && Listener.valid()) {
      Fds.push_back({Listener.fd(), POLLIN, 0});
      FdConn.push_back(0);
    }
    for (auto &[Id, C] : Conns) {
      if (C->Dead)
        continue;
      short Ev = 0;
      if (!C->ReadClosed && !Draining && C->Backlog.size() < Opts.MaxPipeline &&
          C->pendingWriteBytes() < Opts.WriteHighWater)
        Ev |= POLLIN;
      if (C->wantsWrite())
        Ev |= POLLOUT;
      if (!Ev)
        continue; // Busy/paused: completions arrive via the wake pipe.
      Fds.push_back({C->fd(), Ev, 0});
      FdConn.push_back(Id);
    }

    int N = ::poll(Fds.data(), nfds_t(Fds.size()), Draining ? 100 : -1);
    if (N < 0 && errno != EINTR)
      break;

    if (Fds[0].revents & POLLIN) {
      char Buf[256];
      while (::read(WakeRead, Buf, sizeof(Buf)) > 0)
        ;
    }
    if (StopRequested.load())
      startDrain();

    // Worker completions: response/progress bytes back onto their
    // connections, in post order (per-connection FIFO by construction).
    std::vector<Completion> Batch;
    {
      std::lock_guard<std::mutex> Lock(CompMutex);
      Batch.swap(Completions);
    }
    for (Completion &Done : Batch) {
      auto It = Conns.find(Done.ConnId);
      if (It == Conns.end()) {
        if (Done.Final)
          --InFlight;
        continue;
      }
      Connection &C = *It->second;
      if (C.Dead) {
        if (Done.Final) {
          --InFlight;
          C.Busy = false;
        }
        continue;
      }
      C.queueWrite(Done.Frame);
      std::string Err;
      bool WriteFailed = C.flushSome(Err) == Connection::IoStatus::Error;
      if (Done.Final) {
        --InFlight;
        C.Busy = false;
        QueueGauge.set(int64_t(InFlight));
        if (!Draining && DrainCheck && DrainCheck())
          startDrain();
      }
      if (WriteFailed) {
        markDead(C);
        continue;
      }
      if (Done.Final)
        pumpConnection(C);
    }

    // I/O events. Completion processing above may have erased a
    // connection, so resolve ids against the live map.
    for (size_t I = 1; I < Fds.size(); ++I) {
      if (!Fds[I].revents)
        continue;
      if (FdConn[I] == 0) {
        acceptPending();
        continue;
      }
      auto It = Conns.find(FdConn[I]);
      if (It == Conns.end() || It->second->Dead)
        continue;
      Connection &C = *It->second;
      if (Fds[I].revents & (POLLIN | POLLERR | POLLHUP)) {
        handleReadable(C);
        It = Conns.find(FdConn[I]);
        if (It == Conns.end() || It->second->Dead)
          continue;
      }
      if (Fds[I].revents & POLLOUT) {
        std::string Err;
        if (C.flushSome(Err) == Connection::IoStatus::Error)
          markDead(C);
      }
    }

    sweepClosable();
    OpenGauge.set(int64_t(Conns.size()));

    if (Draining) {
      if (DrainStartedAt == std::chrono::steady_clock::time_point{})
        DrainStartedAt = std::chrono::steady_clock::now();
      else if (std::chrono::steady_clock::now() - DrainStartedAt >
               DrainFlushGrace) {
        // Slow readers forfeit their buffered responses.
        for (auto &[Id, C] : Conns)
          if (!C->Dead)
            markDead(*C);
        sweepClosable();
      }
      if (Conns.empty() && InFlight == 0)
        break;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(JobMutex);
    WorkersStop = true;
  }
  JobCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  Listener.close();
  OpenGauge.set(0);
}
