//===- net/Connection.h - Non-blocking buffered connection ----------------===//
///
/// \file
/// One client connection as the event loop sees it: a non-blocking socket
/// with buffered reads (split into newline-delimited frames on extraction)
/// and buffered writes (flushed as far as EAGAIN allows, resumed on
/// POLLOUT). Unlike serve/Socket.h's blocking Socket, a Connection never
/// blocks the calling thread — partial frames simply stay buffered until
/// the next readable event, and a slow reader's responses queue in OutBuf
/// until the kernel drains them.
///
/// A Connection is owned and driven exclusively by the event-loop thread;
/// worker threads never touch it (they post completed frames back to the
/// loop, which queues the bytes here). The public fields are the loop's
/// per-connection scheduling state: one dispatched request at a time
/// (Busy), parsed-but-undispatched frames (Backlog, the pipeline), and
/// the close/drain lifecycle flags.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_NET_CONNECTION_H
#define BEC_NET_CONNECTION_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace bec {
namespace net {

class Connection {
public:
  /// Takes ownership of \p FD (a connected stream socket) and switches it
  /// to non-blocking mode.
  Connection(int FD, uint64_t Id);
  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;
  ~Connection();

  int fd() const { return FD; }
  uint64_t id() const { return Id; }

  /// Closes the descriptor immediately (error paths; buffered state is
  /// discarded). Safe to call more than once.
  void closeNow();

  enum class IoStatus {
    Ok,     ///< Progress made, or nothing to do right now (EAGAIN).
    Closed, ///< Orderly EOF from the peer (read side only).
    Error,  ///< Transport failure; Err describes it.
  };

  /// Non-blocking read into the input buffer: consumes what the kernel
  /// has, up to a fairness cap per call. Closed reports the peer's EOF
  /// (already-buffered frames remain extractable).
  IoStatus readSome(std::string &Err);

  enum class FrameStatus {
    Frame,   ///< One complete frame extracted (without the newline).
    None,    ///< No complete frame buffered yet.
    TooLong, ///< Unterminated input exceeds \p MaxLen (DoS guard).
  };

  /// Extracts the next complete frame from the input buffer.
  FrameStatus nextFrame(std::string &Line, size_t MaxLen);

  /// Appends \p Data to the output buffer (flushed by flushSome()).
  void queueWrite(std::string_view Data);

  /// Writes as much buffered output as the kernel accepts. Ok with
  /// pendingWriteBytes() > 0 means the socket is full — poll for POLLOUT.
  IoStatus flushSome(std::string &Err);

  bool wantsWrite() const { return OutPos < OutBuf.size(); }
  size_t pendingWriteBytes() const { return OutBuf.size() - OutPos; }
  size_t bufferedReadBytes() const { return InBuf.size() - InPos; }

  // Event-loop scheduling state (loop thread only).
  bool ReadClosed = false;      ///< EOF seen, or reads permanently stopped.
  bool CloseAfterFlush = false; ///< Close once OutBuf drains.
  bool Busy = false;            ///< One request dispatched to a worker.
  bool Dead = false;            ///< Errored while Busy; reap on completion.
  std::deque<std::string> Backlog; ///< Parsed frames awaiting dispatch.

private:
  int FD = -1;
  uint64_t Id = 0;
  std::string InBuf;
  size_t InPos = 0; ///< Consumed prefix of InBuf.
  std::string OutBuf;
  size_t OutPos = 0; ///< Flushed prefix of OutBuf.
};

} // namespace net
} // namespace bec

#endif // BEC_NET_CONNECTION_H
