//===- net/Gateway.h - Consistent-hashing becd gateway --------------------===//
///
/// \file
/// `bec gateway`: horizontal scale-out for becd. The gateway speaks the
/// exact becd wire protocol to clients (same handshake, same frames — a
/// client cannot tell it from a single becd) and forwards each request to
/// one of N becd backends chosen by *consistent hashing* of the request's
/// program content key: the interned-program / workload name that a
/// request targets. Same name, same backend — so every backend's
/// content-addressed session cache holds its stable shard of the
/// program space, and adding a backend remaps only ~1/N of the keys.
///
/// Around that core:
///  * health checks — a `version` probe per backend every interval;
///    unhealthy backends are skipped by routing until a probe revives
///    them;
///  * draining — `gateway/drain` takes a backend out of routing without
///    killing it (and `gateway/undrain` puts it back);
///  * failover — transport failures mark the backend unhealthy and the
///    request retries on the ring's next backend (every becd method is
///    idempotent: analyses are pure functions of interned content);
///  * intern replay — `intern` params are journaled, and before any
///    request for an interned program is forwarded, backends that have
///    not seen that intern get it replayed, so failover and remapping
///    keep responses byte-identical;
///  * aggregation — `stats` fans out to every healthy backend and merges
///    (per-backend health plus summed counters and a merged latency
///    snapshot), `metrics` serves the gateway's own registry.
///
/// Forwarded exchanges use Client::forwardRaw with the downstream
/// request id, so response and progress frames are relayed byte-for-byte.
/// The gateway runs on the same net::EventServer core as becd; its
/// handleFrame is the FrameHandler (worker threads, blocking upstream
/// calls are fine there).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_NET_GATEWAY_H
#define BEC_NET_GATEWAY_H

#include "net/EventLoop.h"
#include "serve/Client.h"
#include "serve/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace bec {
namespace net {

class Gateway {
public:
  struct Options {
    /// Backend addresses, "host:port" each.
    std::vector<std::string> Backends;
    /// Virtual nodes per backend on the hash ring.
    unsigned VirtualNodes = 64;
    /// Health-probe cadence.
    unsigned HealthIntervalMs = 2000;
  };

  explicit Gateway(Options O);
  Gateway(const Gateway &) = delete;
  Gateway &operator=(const Gateway &) = delete;
  ~Gateway();

  /// Parses backend addresses, builds the ring, probes every backend
  /// once (so routing works immediately) and starts the health-check
  /// thread. False with a diagnostic on a malformed address.
  bool start(std::string &Err);

  /// Stops the health-check thread (idempotent; the destructor calls it).
  void stop();

  /// The becd handshake — clients cannot tell the gateway from a becd.
  std::string handshakeFrame() const { return serve::makeHandshakeFrame(); }

  /// The FrameHandler for the EventServer: maps one request line to the
  /// response frame, forwarding through the ring. Thread-safe.
  std::string handleFrame(std::string_view Line, const FrameSink &Sink);

  /// True once a `shutdown` request was accepted (wire to the event
  /// server's drain check). Shuts down the *gateway* only, never the
  /// backends.
  bool isDraining() const { return Draining.load(); }

  size_t backendCount() const { return Backends.size(); }

  /// The ring's backend index for \p Key (exposed for tests; routing
  /// also skips unhealthy/drained backends, which this does not).
  size_t backendIndexFor(std::string_view Key) const;

private:
  struct Backend {
    std::string Address;
    std::string Host;
    uint16_t Port = 0;
    std::atomic<bool> Healthy{false};
    std::atomic<bool> AdminDrained{false};
    std::atomic<uint64_t> Forwarded{0};
    std::atomic<uint64_t> Failovers{0};
    std::mutex PoolMutex;
    std::vector<serve::Client> Idle; ///< Pooled upstream connections.
    std::mutex SentMutex;
    /// Intern-journal generation this backend has seen, per name.
    std::map<std::string, uint64_t> Sent;
  };

  /// Distinct backend indices in ring-successor order for \p Key.
  std::vector<size_t> candidatesFor(std::string_view Key) const;
  /// The routing key of \p R: the single target/intern name when there
  /// is one, the joined target list otherwise ("" for default-targets).
  static std::string routeKey(const serve::Request &R);

  /// Pops a pooled upstream client or connects a fresh one.
  std::unique_ptr<serve::Client> acquire(Backend &B, std::string &Err);
  void release(Backend &B, std::unique_ptr<serve::Client> C);
  void markUnhealthy(Backend &B);

  /// Replays journaled interns this backend has not seen for every
  /// interned name \p R references. False when replay fails (backend
  /// marked unhealthy).
  bool replayInterns(Backend &B, serve::Client &C, const serve::Request &R);

  /// \p Downstream is the trace context forwarded requests carry (the
  /// gateway's own span as parent); invalid when the request was
  /// untraced.
  std::string forward(const serve::Request &R, const std::string &ParamsJson,
                      const serve::TraceContext &Downstream,
                      const FrameSink &Sink);
  std::string methodStats(const serve::Request &R);
  std::string methodMetrics(const serve::Request &R);
  /// Own ring spans plus every healthy backend's `trace/dump`, merged
  /// (backend spans re-labelled with the backend address so the client
  /// can tell shards apart).
  std::string methodTraceDump(const serve::Request &R);
  std::string methodLogLevel(const serve::Request &R);
  std::string methodBackends(const serve::Request &R);
  std::string methodDrain(const serve::Request &R, bool Drain);

  void healthCheckMain();
  void probe(Backend &B);

  Options Opts;
  std::vector<std::unique_ptr<Backend>> Backends;
  std::map<uint64_t, size_t> Ring; ///< hash -> backend index.

  std::mutex JournalMutex;
  uint64_t JournalGen = 0;
  /// Interned name -> (intern params JSON, journal generation).
  std::map<std::string, std::pair<std::string, uint64_t>, std::less<>>
      Journal;

  std::atomic<bool> Draining{false};
  std::thread HealthThread;
  std::mutex HealthMutex;
  std::condition_variable HealthCv;
  bool HealthStop = false;
};

} // namespace net
} // namespace bec

#endif // BEC_NET_GATEWAY_H
