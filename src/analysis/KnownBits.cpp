//===- analysis/KnownBits.cpp - Four-valued per-bit abstract domain -------===//

#include "analysis/KnownBits.h"

#include "support/Debug.h"

#include <algorithm>

using namespace bec;

BitValue bec::meetBits(BitValue A, BitValue B) {
  if (A == BitValue::Bottom)
    return B;
  if (B == BitValue::Bottom)
    return A;
  if (A == B)
    return A;
  return BitValue::Top;
}

BitValue bec::fig3And(BitValue A, BitValue B) {
  // Verbatim transcription of Fig. 3c.
  using BV = BitValue;
  static constexpr BV Table[4][4] = {
      /* A=Bottom */ {BV::Bottom, BV::Bottom, BV::Bottom, BV::Top},
      /* A=Zero   */ {BV::Bottom, BV::Zero, BV::Zero, BV::Zero},
      /* A=One    */ {BV::Bottom, BV::Zero, BV::One, BV::Top},
      /* A=Top    */ {BV::Top, BV::Zero, BV::Top, BV::Top},
  };
  return Table[static_cast<unsigned>(A)][static_cast<unsigned>(B)];
}

void KnownBits::setBit(unsigned I, BitValue V) {
  assert(I < Width && "bit index out of range");
  uint64_t M = uint64_t(1) << I;
  Zero &= ~M;
  One &= ~M;
  Init &= ~M;
  switch (V) {
  case BitValue::Bottom:
    break;
  case BitValue::Zero:
    Zero |= M;
    Init |= M;
    break;
  case BitValue::One:
    One |= M;
    Init |= M;
    break;
  case BitValue::Top:
    Init |= M;
    break;
  }
}

KnownBits KnownBits::meet(const KnownBits &A, const KnownBits &B) {
  assert(A.Width == B.Width && "width mismatch in meet");
  KnownBits R = bottom(A.Width);
  R.Init = A.Init | B.Init;
  // Where both sides are initialized, keep only agreeing known bits; where
  // only one side is initialized, Bottom is the identity (Fig. 3b).
  uint64_t Both = A.Init & B.Init;
  R.Zero = (A.Zero & B.Zero & Both) | (A.Zero & ~B.Init) | (B.Zero & ~A.Init);
  R.One = (A.One & B.One & Both) | (A.One & ~B.Init) | (B.One & ~A.Init);
  return R;
}

int64_t KnownBits::smin() const {
  // Pick the sign bit high if possible, all other unknown bits low.
  uint64_t V = One;
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  if (!(Zero & SignBit))
    V |= SignBit;
  return signExtend(V, Width);
}

int64_t KnownBits::smax() const {
  // Pick the sign bit low if possible, all other unknown bits high.
  uint64_t V = truncate(~Zero, Width);
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  if (!(One & SignBit))
    V &= ~SignBit;
  return signExtend(V, Width);
}

KnownBits KnownBits::and_(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  KnownBits R = top(A.Width);
  R.One = A.One & B.One;
  R.Zero = truncate(A.Zero | B.Zero, A.Width);
  return R;
}

KnownBits KnownBits::or_(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  KnownBits R = top(A.Width);
  R.One = A.One | B.One;
  R.Zero = A.Zero & B.Zero;
  return R;
}

KnownBits KnownBits::xor_(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  KnownBits R = top(A.Width);
  R.One = (A.One & B.Zero) | (A.Zero & B.One);
  R.Zero = (A.Zero & B.Zero) | (A.One & B.One);
  return R;
}

KnownBits KnownBits::not_(const KnownBits &A) {
  return xor_(A, constant(allOnesValue(A.Width), A.Width));
}

KnownBits KnownBits::add(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  KnownBits R = top(A.Width);
  R.Zero = R.One = 0;
  // Ripple over the bits, tracking the set of possible carries. This is an
  // over-approximation (carry correlations across bits are dropped), which
  // is sound: the result bit set only grows.
  bool CarryCan0 = true, CarryCan1 = false;
  for (unsigned I = 0; I < A.Width; ++I) {
    bool ACan0 = !testBit(A.One, I), ACan1 = !testBit(A.Zero, I);
    bool BCan0 = !testBit(B.One, I), BCan1 = !testBit(B.Zero, I);
    bool SumCan0 = false, SumCan1 = false;
    bool NextCan0 = false, NextCan1 = false;
    for (int AV = 0; AV <= 1; ++AV) {
      if ((AV ? !ACan1 : !ACan0))
        continue;
      for (int BV = 0; BV <= 1; ++BV) {
        if ((BV ? !BCan1 : !BCan0))
          continue;
        for (int CV = 0; CV <= 1; ++CV) {
          if ((CV ? !CarryCan1 : !CarryCan0))
            continue;
          int Sum = AV + BV + CV;
          (Sum & 1 ? SumCan1 : SumCan0) = true;
          (Sum >= 2 ? NextCan1 : NextCan0) = true;
        }
      }
    }
    if (SumCan1 && !SumCan0)
      R.One |= uint64_t(1) << I;
    if (SumCan0 && !SumCan1)
      R.Zero |= uint64_t(1) << I;
    CarryCan0 = NextCan0;
    CarryCan1 = NextCan1;
  }
  return R;
}

KnownBits KnownBits::sub(const KnownBits &A, const KnownBits &B) {
  // a - b == a + ~b + 1; fold the +1 into the carry by adding the
  // constant 1 first (exact since adding a constant keeps precision).
  KnownBits NotB = not_(B);
  KnownBits OnePlus = add(NotB, constant(1, B.Width));
  return add(A, OnePlus);
}

KnownBits KnownBits::shlConst(const KnownBits &A0, unsigned Amount) {
  KnownBits A = A0.normalized();
  assert(Amount < A.Width && "shift amount out of range");
  KnownBits R = top(A.Width);
  uint64_t M = lowBitMask(A.Width);
  R.One = (A.One << Amount) & M;
  // Low `Amount` bits are zero-filled.
  R.Zero = ((A.Zero << Amount) & M) | (Amount ? lowBitMask(Amount) : 0);
  return R;
}

KnownBits KnownBits::lshrConst(const KnownBits &A0, unsigned Amount) {
  KnownBits A = A0.normalized();
  assert(Amount < A.Width && "shift amount out of range");
  KnownBits R = top(A.Width);
  uint64_t M = lowBitMask(A.Width);
  uint64_t TruncA1 = A.One & M, TruncA0 = A.Zero & M;
  R.One = TruncA1 >> Amount;
  // High `Amount` bits are zero-filled.
  uint64_t HighZeros =
      Amount == 0 ? 0 : (lowBitMask(Amount) << (A.Width - Amount)) & M;
  R.Zero = (TruncA0 >> Amount) | HighZeros;
  return R;
}

KnownBits KnownBits::ashrConst(const KnownBits &A0, unsigned Amount) {
  KnownBits A = A0.normalized();
  assert(Amount < A.Width && "shift amount out of range");
  if (Amount == 0)
    return A;
  KnownBits R = lshrConst(A, Amount);
  // Replicate the sign bit if it is known; otherwise the high bits are Top.
  uint64_t M = lowBitMask(A.Width);
  uint64_t HighMask = (lowBitMask(Amount) << (A.Width - Amount)) & M;
  uint64_t SignBit = uint64_t(1) << (A.Width - 1);
  if (A.One & SignBit) {
    R.Zero &= ~HighMask;
    R.One |= HighMask;
  } else if (A.Zero & SignBit) {
    R.Zero |= HighMask;
    R.One &= ~HighMask;
  } else {
    R.Zero &= ~HighMask;
    R.One &= ~HighMask;
  }
  return R;
}

std::pair<unsigned, unsigned> KnownBits::shiftAmountRange() const {
  unsigned W = Width;
  if ((W & (W - 1)) == 0) {
    // Power-of-two width: the amount is the low log2(W) bits (RISC-V).
    unsigned LogW = static_cast<unsigned>(std::countr_zero(uint64_t(W)));
    uint64_t AmtMask = lowBitMask(LogW == 0 ? 1 : LogW);
    if (LogW == 0)
      return {0, 0};
    uint64_t Min = One & AmtMask;
    uint64_t Max = truncate(~Zero, Width) & AmtMask;
    return {static_cast<unsigned>(Min), static_cast<unsigned>(Max)};
  }
  // Non-power-of-two widths take the amount modulo Width; only constants
  // give useful bounds.
  if (isConstant())
    return {static_cast<unsigned>(constValue() % W),
            static_cast<unsigned>(constValue() % W)};
  return {0, W - 1};
}

KnownBits KnownBits::shl(const KnownBits &A, const KnownBits &B) {
  auto [Min, Max] = B.shiftAmountRange();
  if (Min == Max)
    return shlConst(A, Min);
  // Meet over all feasible amounts (W is small, this stays cheap).
  KnownBits R = bottom(A.Width);
  for (unsigned Amt = Min; Amt <= Max; ++Amt)
    R = meet(R, shlConst(A, Amt));
  return R;
}

KnownBits KnownBits::lshr(const KnownBits &A, const KnownBits &B) {
  auto [Min, Max] = B.shiftAmountRange();
  if (Min == Max)
    return lshrConst(A, Min);
  KnownBits R = bottom(A.Width);
  for (unsigned Amt = Min; Amt <= Max; ++Amt)
    R = meet(R, lshrConst(A, Amt));
  return R;
}

KnownBits KnownBits::ashr(const KnownBits &A, const KnownBits &B) {
  auto [Min, Max] = B.shiftAmountRange();
  if (Min == Max)
    return ashrConst(A, Min);
  KnownBits R = bottom(A.Width);
  for (unsigned Amt = Min; Amt <= Max; ++Amt)
    R = meet(R, ashrConst(A, Amt));
  return R;
}

KnownBits KnownBits::mul(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  if (A.isConstant() && B.isConstant())
    return constant(A.constValue() * B.constValue(), A.Width);
  if (A.isConstant() && A.constValue() == 0)
    return constant(0, A.Width);
  if (B.isConstant() && B.constValue() == 0)
    return constant(0, A.Width);
  // Trailing zeros of the product >= sum of the operands' trailing zeros.
  unsigned TzA = std::min<unsigned>(
      static_cast<unsigned>(std::countr_one(A.Zero)), A.Width);
  unsigned TzB = std::min<unsigned>(
      static_cast<unsigned>(std::countr_one(B.Zero)), B.Width);
  unsigned Tz = std::min(TzA + TzB, A.Width);
  KnownBits R = top(A.Width);
  R.Zero = Tz ? lowBitMask(Tz) : 0;
  return R;
}

KnownBits KnownBits::mulhu(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  if (A.isConstant() && B.isConstant() && A.Width <= 32)
    return constant((A.constValue() * B.constValue()) >> A.Width, A.Width);
  return top(A.Width);
}

KnownBits KnownBits::divu(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  if (A.isConstant() && B.isConstant()) {
    if (B.constValue() == 0)
      return constant(allOnesValue(A.Width), A.Width); // RISC-V: -1
    return constant(A.constValue() / B.constValue(), A.Width);
  }
  return top(A.Width);
}

KnownBits KnownBits::div(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  if (A.isConstant() && B.isConstant()) {
    int64_t AV = signExtend(A.constValue(), A.Width);
    int64_t BV = signExtend(B.constValue(), B.Width);
    if (BV == 0)
      return constant(allOnesValue(A.Width), A.Width);
    if (AV == signExtend(signedMinValue(A.Width), A.Width) && BV == -1)
      return constant(signedMinValue(A.Width), A.Width); // Overflow case.
    return constant(truncate(static_cast<uint64_t>(AV / BV), A.Width),
                    A.Width);
  }
  return top(A.Width);
}

KnownBits KnownBits::remu(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  if (A.isConstant() && B.isConstant()) {
    if (B.constValue() == 0)
      return A; // RISC-V: remainder is the dividend.
    return constant(A.constValue() % B.constValue(), A.Width);
  }
  return top(A.Width);
}

KnownBits KnownBits::rem(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  if (A.isConstant() && B.isConstant()) {
    int64_t AV = signExtend(A.constValue(), A.Width);
    int64_t BV = signExtend(B.constValue(), B.Width);
    if (BV == 0)
      return A;
    if (AV == signExtend(signedMinValue(A.Width), A.Width) && BV == -1)
      return constant(0, A.Width);
    return constant(truncate(static_cast<uint64_t>(AV % BV), A.Width),
                    A.Width);
  }
  return top(A.Width);
}

BitValue KnownBits::cmpEq(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  // A bit where one side is known zero and the other known one decides it.
  if ((A.Zero & B.One) || (A.One & B.Zero))
    return BitValue::Zero;
  if (A.isConstant() && B.isConstant())
    return BitValue::One;
  return BitValue::Top;
}

BitValue KnownBits::cmpUlt(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  if (A.umax() < B.umin())
    return BitValue::One;
  if (A.umin() >= B.umax())
    return BitValue::Zero;
  return BitValue::Top;
}

BitValue KnownBits::cmpSlt(const KnownBits &A0, const KnownBits &B0) {
  KnownBits A = A0.normalized(), B = B0.normalized();
  if (A.smax() < B.smin())
    return BitValue::One;
  if (A.smin() >= B.smax())
    return BitValue::Zero;
  return BitValue::Top;
}

KnownBits KnownBits::fromBool(BitValue B, unsigned Width) {
  KnownBits R = constant(0, Width);
  R.setBit(0, B == BitValue::Bottom ? BitValue::Top : B);
  return R;
}

std::string KnownBits::toString() const {
  std::string Out;
  for (unsigned I = Width; I-- > 0;) {
    switch (bit(I)) {
    case BitValue::Bottom:
      Out += '.';
      break;
    case BitValue::Zero:
      Out += '0';
      break;
    case BitValue::One:
      Out += '1';
      break;
    case BitValue::Top:
      Out += 'x';
      break;
    }
    if (I)
      Out += ' ';
  }
  return Out;
}
