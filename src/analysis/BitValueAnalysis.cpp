//===- analysis/BitValueAnalysis.cpp - Global bit-value analysis ----------===//

#include "analysis/BitValueAnalysis.h"

#include "support/Debug.h"

#include <deque>

using namespace bec;

/// Reads the abstract value of operand register \p V (x0 is constant 0).
static KnownBits readOperand(const RegState &S, Reg V, unsigned Width) {
  if (V == RegZero)
    return KnownBits::constant(0, Width);
  return S[V];
}

KnownBits BitValueAnalysis::evalResult(const Instruction &I, const RegState &S,
                                       unsigned Width) {
  auto Src1 = [&] { return readOperand(S, I.Rs1, Width); };
  auto Src2 = [&] { return readOperand(S, I.Rs2, Width); };
  auto Imm = [&] {
    return KnownBits::constant(static_cast<uint64_t>(I.Imm), Width);
  };
  using KB = KnownBits;
  switch (I.Op) {
  case Opcode::LI:
    return Imm();
  case Opcode::LUI:
    return KB::constant(static_cast<uint64_t>(I.Imm) << 12, Width);
  case Opcode::MV:
    return Src1();
  case Opcode::ADD:
    return KB::add(Src1(), Src2());
  case Opcode::SUB:
    return KB::sub(Src1(), Src2());
  case Opcode::AND:
    return KB::and_(Src1(), Src2());
  case Opcode::OR:
    return KB::or_(Src1(), Src2());
  case Opcode::XOR:
    return KB::xor_(Src1(), Src2());
  case Opcode::SLL:
    return KB::shl(Src1(), Src2());
  case Opcode::SRL:
    return KB::lshr(Src1(), Src2());
  case Opcode::SRA:
    return KB::ashr(Src1(), Src2());
  case Opcode::SLT:
    return KB::fromBool(KB::cmpSlt(Src1(), Src2()), Width);
  case Opcode::SLTU:
    return KB::fromBool(KB::cmpUlt(Src1(), Src2()), Width);
  case Opcode::ADDI:
    return KB::add(Src1(), Imm());
  case Opcode::ANDI:
    return KB::and_(Src1(), Imm());
  case Opcode::ORI:
    return KB::or_(Src1(), Imm());
  case Opcode::XORI:
    return KB::xor_(Src1(), Imm());
  case Opcode::SLLI:
    return KB::shlConst(Src1(), static_cast<unsigned>(I.Imm));
  case Opcode::SRLI:
    return KB::lshrConst(Src1(), static_cast<unsigned>(I.Imm));
  case Opcode::SRAI:
    return KB::ashrConst(Src1(), static_cast<unsigned>(I.Imm));
  case Opcode::SLTI:
    return KB::fromBool(KB::cmpSlt(Src1(), Imm()), Width);
  case Opcode::SLTIU:
    return KB::fromBool(KB::cmpUlt(Src1(), Imm()), Width);
  case Opcode::MUL:
    return KB::mul(Src1(), Src2());
  case Opcode::MULHU:
    return KB::mulhu(Src1(), Src2());
  case Opcode::DIV:
    return KB::div(Src1(), Src2());
  case Opcode::DIVU:
    return KB::divu(Src1(), Src2());
  case Opcode::REM:
    return KB::rem(Src1(), Src2());
  case Opcode::REMU:
    return KB::remu(Src1(), Src2());
  case Opcode::LW:
  case Opcode::LH:
  case Opcode::LHU:
  case Opcode::LB:
  case Opcode::LBU:
    // Memory is not modeled as a data point; loads produce Top. (LB/LH
    // could refine sign/zero-extension bits; kept Top for symmetry with
    // the paper's register-file scope.)
    return KB::top(Width);
  default:
    bec_unreachable("evalResult on an instruction with no destination");
  }
}

BitValue BitValueAnalysis::evalBranch(const Instruction &I, const RegState &S,
                                      unsigned Width) {
  KnownBits A = readOperand(S, I.Rs1, Width);
  KnownBits B = readOperand(S, I.Rs2, Width);
  switch (I.Op) {
  case Opcode::BEQ:
    return KnownBits::cmpEq(A, B);
  case Opcode::BNE: {
    BitValue Eq = KnownBits::cmpEq(A, B);
    if (Eq == BitValue::Zero)
      return BitValue::One;
    if (Eq == BitValue::One)
      return BitValue::Zero;
    return Eq;
  }
  case Opcode::BLT:
    return KnownBits::cmpSlt(A, B);
  case Opcode::BGE: {
    BitValue Lt = KnownBits::cmpSlt(A, B);
    if (Lt == BitValue::Zero)
      return BitValue::One;
    if (Lt == BitValue::One)
      return BitValue::Zero;
    return Lt;
  }
  case Opcode::BLTU:
    return KnownBits::cmpUlt(A, B);
  case Opcode::BGEU: {
    BitValue Lt = KnownBits::cmpUlt(A, B);
    if (Lt == BitValue::Zero)
      return BitValue::One;
    if (Lt == BitValue::One)
      return BitValue::Zero;
    return Lt;
  }
  default:
    bec_unreachable("evalBranch on a non-branch");
  }
}

BitValueAnalysis BitValueAnalysis::run(const Program &Prog) {
  uint32_t N = Prog.size();
  unsigned Width = Prog.Width;
  BitValueAnalysis Result;
  RegState BottomState;
  for (auto &KB : BottomState)
    KB = KnownBits::bottom(Width);
  Result.In.assign(N, BottomState);
  Result.Out.assign(N, BottomState);
  Result.Executable.assign(N, false);

  // Entry state: x0 is zero, everything else unknown (machine-initialized
  // contents are not assumed).
  RegState EntryState;
  EntryState[RegZero] = KnownBits::constant(0, Width);
  for (Reg V = 1; V < NumRegs; ++V)
    EntryState[V] = KnownBits::top(Width);

  // Executable-edge tracking, Wegman-Zadeck style. Edges are identified by
  // (pred, succ-slot) pairs; feasible target slots are recomputed from the
  // abstract branch condition each time the predecessor is processed.
  std::vector<std::vector<bool>> EdgeExec(N);
  for (uint32_t P = 0; P < N; ++P)
    EdgeExec[P].assign(Prog.succs(P).size(), false);

  std::deque<uint32_t> Worklist;
  std::vector<bool> OnWorklist(N, false);
  auto Enqueue = [&](uint32_t P) {
    if (!OnWorklist[P]) {
      OnWorklist[P] = true;
      Worklist.push_back(P);
    }
  };

  Result.Executable[Prog.Entry] = true;
  Enqueue(Prog.Entry);

  while (!Worklist.empty()) {
    uint32_t P = Worklist.front();
    Worklist.pop_front();
    OnWorklist[P] = false;

    // Meet over executable incoming edges; the entry additionally meets
    // the entry state.
    RegState NewIn = BottomState;
    bool AnyIn = false;
    if (P == Prog.Entry) {
      NewIn = EntryState;
      AnyIn = true;
    }
    for (uint32_t Pred : Prog.preds(P)) {
      const auto &Succs = Prog.succs(Pred);
      for (uint32_t Slot = 0; Slot < Succs.size(); ++Slot) {
        if (Succs[Slot] != P || !EdgeExec[Pred][Slot])
          continue;
        if (!AnyIn) {
          NewIn = Result.Out[Pred];
          AnyIn = true;
        } else {
          for (Reg V = 0; V < NumRegs; ++V)
            NewIn[V] = KnownBits::meet(NewIn[V], Result.Out[Pred][V]);
        }
      }
    }
    Result.In[P] = NewIn;

    // Transfer.
    const Instruction &I = Prog.instr(P);
    RegState NewOut = NewIn;
    if (I.writesReg())
      NewOut[I.Rd] = evalResult(I, NewIn, Width);
    bool OutChanged = NewOut != Result.Out[P];
    Result.Out[P] = NewOut;

    // Mark feasible outgoing edges.
    const auto &Succs = Prog.succs(P);
    bool TakenFeasible = true, FallFeasible = true;
    if (isConditionalBranch(I.Op)) {
      BitValue Cond = evalBranch(I, NewIn, Width);
      TakenFeasible = Cond != BitValue::Zero;
      FallFeasible = Cond != BitValue::One;
    }
    for (uint32_t Slot = 0; Slot < Succs.size(); ++Slot) {
      bool Feasible = true;
      if (isConditionalBranch(I.Op)) {
        // Slot 0 is the fallthrough, slot 1 the taken edge (unless the
        // target *is* the fallthrough, in which case there is one slot).
        Feasible = Succs.size() == 1 ||
                   (Slot == 0 ? FallFeasible : TakenFeasible);
      }
      if (!Feasible)
        continue;
      bool NewEdge = !EdgeExec[P][Slot];
      EdgeExec[P][Slot] = true;
      uint32_t S = Succs[Slot];
      if (NewEdge || OutChanged) {
        Result.Executable[S] = true;
        Enqueue(S);
      }
    }
  }
  return Result;
}
