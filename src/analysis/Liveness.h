//===- analysis/Liveness.h - Value-level register liveness ----------------===//
///
/// \file
/// Classic backward may-liveness at instruction granularity. This is the
/// value-level baseline the paper compares against (inject-on-read):
/// a register is live after p if some CFG path reaches a read before a
/// redefinition. The `ret` halt reads a0 (the observable return value).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_ANALYSIS_LIVENESS_H
#define BEC_ANALYSIS_LIVENESS_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace bec {

/// Result of the liveness analysis: a 32-bit register mask per instruction.
class Liveness {
public:
  /// Runs the analysis; the program's CFG must be built.
  static Liveness run(const Program &Prog);

  /// Registers live after \p P executes (bit v set = v live).
  uint32_t liveOutMask(uint32_t P) const { return LiveOut[P]; }
  /// Registers live before \p P executes.
  uint32_t liveInMask(uint32_t P) const { return LiveIn[P]; }

  bool isLiveAfter(uint32_t P, Reg V) const {
    return (LiveOut[P] >> V) & 1;
  }
  bool isLiveBefore(uint32_t P, Reg V) const { return (LiveIn[P] >> V) & 1; }

private:
  std::vector<uint32_t> LiveIn;
  std::vector<uint32_t> LiveOut;
};

} // namespace bec

#endif // BEC_ANALYSIS_LIVENESS_H
