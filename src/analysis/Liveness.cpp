//===- analysis/Liveness.cpp - Value-level register liveness --------------===//

#include "analysis/Liveness.h"

using namespace bec;

Liveness Liveness::run(const Program &Prog) {
  uint32_t N = Prog.size();
  Liveness Result;
  Result.LiveIn.assign(N, 0);
  Result.LiveOut.assign(N, 0);

  auto ReadMask = [&](uint32_t P) {
    Reg Regs[2];
    unsigned Count = Prog.instr(P).readRegs(Regs);
    uint32_t Mask = 0;
    for (unsigned I = 0; I < Count; ++I)
      Mask |= uint32_t(1) << Regs[I];
    return Mask;
  };
  auto WriteMask = [&](uint32_t P) {
    const Instruction &I = Prog.instr(P);
    return I.writesReg() ? uint32_t(1) << I.Rd : 0;
  };

  // Backward chaotic iteration in reverse program order until stable.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t P = N; P-- > 0;) {
      uint32_t Out = 0;
      for (uint32_t S : Prog.succs(P))
        Out |= Result.LiveIn[S];
      uint32_t In = ReadMask(P) | (Out & ~WriteMask(P));
      if (Out != Result.LiveOut[P] || In != Result.LiveIn[P]) {
        Result.LiveOut[P] = Out;
        Result.LiveIn[P] = In;
        Changed = true;
      }
    }
  }
  return Result;
}
