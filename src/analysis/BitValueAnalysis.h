//===- analysis/BitValueAnalysis.h - Global abstract bit-value analysis ---===//
///
/// \file
/// The paper's Section IV-A: a forward data-flow analysis that computes
/// k(p, v) — the abstract bit values of every register after every program
/// point — across the entire CFG (the global extension of LLVM KnownBits).
/// Following Wegman-Zadeck SC, the solver is optimistic: it starts from
/// Bottom, tracks executable edges, and only propagates along branch edges
/// that are feasible under the current abstract state. The result is the
/// maximal fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_ANALYSIS_BITVALUEANALYSIS_H
#define BEC_ANALYSIS_BITVALUEANALYSIS_H

#include "analysis/KnownBits.h"
#include "ir/Program.h"

#include <array>
#include <vector>

namespace bec {

/// Abstract machine state: one KnownBits per architectural register.
using RegState = std::array<KnownBits, NumRegs>;

/// Result of the global bit-value analysis.
class BitValueAnalysis {
public:
  /// Runs the analysis; the program's CFG must be built.
  static BitValueAnalysis run(const Program &Prog);

  /// k before p: the abstract value of \p V as read by \p P.
  const KnownBits &before(uint32_t P, Reg V) const { return In[P][V]; }
  /// k(p, v): the abstract value of \p V after \p P executes.
  const KnownBits &after(uint32_t P, Reg V) const { return Out[P][V]; }

  /// True if the solver found \p P executable (unreachable code under the
  /// abstract semantics is never executed concretely either).
  bool isExecutable(uint32_t P) const { return Executable[P]; }

  /// Computes the abstract result that \p P writes to its destination
  /// given input state \p S (exposed for the coalescing eval() rule and
  /// for tests).
  static KnownBits evalResult(const Instruction &I, const RegState &S,
                              unsigned Width);

  /// Abstract branch condition of conditional-branch \p I under \p S.
  static BitValue evalBranch(const Instruction &I, const RegState &S,
                             unsigned Width);

private:
  std::vector<RegState> In;
  std::vector<RegState> Out;
  std::vector<bool> Executable;
};

} // namespace bec

#endif // BEC_ANALYSIS_BITVALUEANALYSIS_H
