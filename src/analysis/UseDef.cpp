//===- analysis/UseDef.cpp - use(p,v) next-reader sets ---------------------===//

#include "analysis/UseDef.h"

#include <algorithm>

using namespace bec;

UseDef UseDef::run(const Program &Prog) {
  uint32_t N = Prog.size();
  UseDef Result;
  Result.NumInstrs = N;
  Result.Slices.assign(static_cast<size_t>(N) * NumRegs, {});

  // Per register: a backward reachability problem over bitsets indexed by
  // that register's reader instructions.
  for (Reg V = 1; V < NumRegs; ++V) {
    // Enumerate readers of V.
    std::vector<uint32_t> Readers;
    for (uint32_t P = 0; P < N; ++P)
      if (Prog.instr(P).reads(V))
        Readers.push_back(P);
    if (Readers.empty())
      continue;
    std::vector<int32_t> ReaderId(N, -1);
    for (uint32_t I = 0; I < Readers.size(); ++I)
      ReaderId[Readers[I]] = static_cast<int32_t>(I);

    size_t Words = (Readers.size() + 63) / 64;
    // In[p] = readers visible at entry of p; Out[p] = after p.
    std::vector<uint64_t> In(N * Words, 0), Out(N * Words, 0);

    auto Or = [&](std::vector<uint64_t> &Dst, size_t D,
                  const std::vector<uint64_t> &Src, size_t S) {
      bool Changed = false;
      for (size_t W = 0; W < Words; ++W) {
        uint64_t New = Dst[D * Words + W] | Src[S * Words + W];
        if (New != Dst[D * Words + W]) {
          Dst[D * Words + W] = New;
          Changed = true;
        }
      }
      return Changed;
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t P = N; P-- > 0;) {
        // Out = union of successors' In.
        for (uint32_t S : Prog.succs(P))
          Changed |= Or(Out, P, In, S);
        // In = {P if P reads V} + (Out unless P writes V).
        const Instruction &I = Prog.instr(P);
        bool Writes = I.writesReg() && I.Rd == V;
        if (ReaderId[P] >= 0) {
          size_t W = static_cast<size_t>(ReaderId[P]) / 64;
          uint64_t Bit = uint64_t(1) << (ReaderId[P] % 64);
          if (!(In[P * Words + W] & Bit)) {
            In[P * Words + W] |= Bit;
            Changed = true;
          }
        }
        if (!Writes)
          Changed |= Or(In, P, Out, P);
      }
    }

    // Materialize Out[p] for every instruction that accesses V.
    for (uint32_t P = 0; P < N; ++P) {
      const Instruction &I = Prog.instr(P);
      bool Accesses = I.reads(V) || (I.writesReg() && I.Rd == V);
      if (!Accesses)
        continue;
      Slice &S = Result.Slices[Index(P, V, N)];
      S.Offset = static_cast<uint32_t>(Result.Storage.size());
      for (uint32_t R = 0; R < Readers.size(); ++R)
        if (Out[P * Words + R / 64] & (uint64_t(1) << (R % 64)))
          Result.Storage.push_back(Readers[R]);
      S.Count = static_cast<uint32_t>(Result.Storage.size()) - S.Offset;
    }
  }
  return Result;
}
