//===- analysis/UseDef.h - use(p,v) next-reader sets -----------------------===//
///
/// \file
/// Computes the paper's use(p,v): the set of program points that read data
/// point v and are reachable from p without an intervening redefinition
/// (reads do not kill; a point that reads and writes v reads first). This
/// drives the inter-instruction coalescing step of Algorithm 2.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_ANALYSIS_USEDEF_H
#define BEC_ANALYSIS_USEDEF_H

#include "ir/Program.h"

#include <cstdint>
#include <span>
#include <vector>

namespace bec {

/// use(p,v) sets for every (instruction, register) pair of interest.
class UseDef {
public:
  /// Runs the analysis; the program's CFG must be built.
  static UseDef run(const Program &Prog);

  /// The set of instructions that read \p V, reachable from after \p P
  /// with no intervening write to \p V. Sorted ascending.
  std::span<const uint32_t> uses(uint32_t P, Reg V) const {
    const Slice &S = Slices[Index(P, V, NumInstrs)];
    return {Storage.data() + S.Offset, S.Count};
  }

private:
  static size_t Index(uint32_t P, Reg V, uint32_t N) {
    return static_cast<size_t>(V) * N + P;
  }

  struct Slice {
    uint32_t Offset = 0;
    uint32_t Count = 0;
  };
  uint32_t NumInstrs = 0;
  std::vector<Slice> Slices;
  std::vector<uint32_t> Storage;
};

} // namespace bec

#endif // BEC_ANALYSIS_USEDEF_H
