//===- analysis/KnownBits.h - Four-valued per-bit abstract domain ---------===//
///
/// \file
/// The abstract bit-value domain of the paper's Section IV-A (Fig. 3):
/// every bit of a data point is Bottom (undefined), Zero, One, or Top
/// (unknown/overdefined). A KnownBits value packs one such lattice element
/// per bit of a register of configurable width, and provides the abstract
/// transfer functions for every opcode of the IR, plus the range queries
/// (min/max) used by the coalescing rules of Algorithm 3.
///
/// The concept corresponds to LLVM's KnownBits and BPF's tnum, extended
/// with an explicit Bottom for the global (inter-block) analysis.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_ANALYSIS_KNOWNBITS_H
#define BEC_ANALYSIS_KNOWNBITS_H

#include "support/BitUtils.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace bec {

/// One element of the per-bit lattice of Fig. 3a.
enum class BitValue : uint8_t { Bottom, Zero, One, Top };

/// The meet operator of Fig. 3b (information can only rise toward Top;
/// Bottom is the identity).
BitValue meetBits(BitValue A, BitValue B);

/// The paper's literal abstract `and` table (Fig. 3c), including its
/// treatment of Bottom. The analysis itself uses the sound normalized
/// operators below (Bottom operands are promoted to Top); this function
/// exists so the Fig. 3 reproduction can print the table verbatim.
BitValue fig3And(BitValue A, BitValue B);

/// Abstract value of one register: a vector of BitValue of a given width.
///
/// Representation: bit i is
///   Bottom if Init[i] == 0,
///   Zero   if Zero[i] == 1,
///   One    if One[i] == 1,
///   Top    otherwise.
/// Invariants: Zero & One == 0, (Zero | One) <= Init, all masked to Width.
class KnownBits {
public:
  KnownBits() = default;

  /// All bits Bottom (no assignment seen yet).
  static KnownBits bottom(unsigned Width) { return KnownBits(0, 0, 0, Width); }
  /// All bits Top (unknown at compile time).
  static KnownBits top(unsigned Width) {
    uint64_t M = lowBitMask(Width);
    return KnownBits(0, 0, M, Width);
  }
  /// Exact constant.
  static KnownBits constant(uint64_t Value, unsigned Width) {
    uint64_t M = lowBitMask(Width);
    Value &= M;
    return KnownBits(~Value & M, Value, M, Width);
  }

  unsigned width() const { return Width; }
  uint64_t zeroMask() const { return Zero; }
  uint64_t oneMask() const { return One; }
  uint64_t initMask() const { return Init; }
  uint64_t topMask() const { return Init & ~(Zero | One); }

  BitValue bit(unsigned I) const {
    assert(I < Width && "bit index out of range");
    if (!testBit(Init, I))
      return BitValue::Bottom;
    if (testBit(Zero, I))
      return BitValue::Zero;
    if (testBit(One, I))
      return BitValue::One;
    return BitValue::Top;
  }

  void setBit(unsigned I, BitValue V);

  bool isBottom() const { return Init == 0; }
  /// True if every bit is exactly known (no Bottom, no Top).
  bool isConstant() const {
    return Init == lowBitMask(Width) && (Zero | One) == Init;
  }
  uint64_t constValue() const {
    assert(isConstant() && "value is not a compile-time constant");
    return One;
  }

  bool operator==(const KnownBits &O) const {
    return Width == O.Width && Zero == O.Zero && One == O.One &&
           Init == O.Init;
  }
  bool operator!=(const KnownBits &O) const { return !(*this == O); }

  /// Per-bit meet (Fig. 3b) of two values of equal width.
  static KnownBits meet(const KnownBits &A, const KnownBits &B);

  /// True if \p Value is a possible concretization of this abstract value
  /// (Bottom bits admit no concretization, i.e. return false if any bit is
  /// Bottom). Used by the soundness property tests.
  bool contains(uint64_t Value) const {
    if (Init != lowBitMask(Width))
      return false;
    Value &= lowBitMask(Width);
    return (Value & Zero) == 0 && (~Value & One) == 0;
  }

  /// Minimum/maximum possible value, unsigned interpretation. Bottom bits
  /// are treated like Top (any value), which is the sound choice for the
  /// coalescing rules (min over a superset).
  uint64_t umin() const { return One; }
  uint64_t umax() const { return truncate(~Zero, Width); }
  /// Minimum/maximum possible value, signed (sign-extended to int64_t).
  int64_t smin() const;
  int64_t smax() const;

  /// Abstract bitwise operations (normalized: Bottom behaves like Top so
  /// the result is sound for any runtime value).
  static KnownBits and_(const KnownBits &A, const KnownBits &B);
  static KnownBits or_(const KnownBits &A, const KnownBits &B);
  static KnownBits xor_(const KnownBits &A, const KnownBits &B);
  static KnownBits not_(const KnownBits &A);

  /// Abstract add/sub with per-bit carry tracking.
  static KnownBits add(const KnownBits &A, const KnownBits &B);
  static KnownBits sub(const KnownBits &A, const KnownBits &B);

  /// Shifts by a compile-time amount in [0, Width).
  static KnownBits shlConst(const KnownBits &A, unsigned Amount);
  static KnownBits lshrConst(const KnownBits &A, unsigned Amount);
  static KnownBits ashrConst(const KnownBits &A, unsigned Amount);

  /// Shifts by an abstract amount (exact when the effective amount is
  /// known; conservative otherwise).
  static KnownBits shl(const KnownBits &A, const KnownBits &B);
  static KnownBits lshr(const KnownBits &A, const KnownBits &B);
  static KnownBits ashr(const KnownBits &A, const KnownBits &B);

  /// Multiplication: exact for constants; otherwise tracks trailing zeros.
  static KnownBits mul(const KnownBits &A, const KnownBits &B);
  static KnownBits mulhu(const KnownBits &A, const KnownBits &B);
  /// RISC-V division/remainder (div-by-zero yields -1 / dividend).
  static KnownBits div(const KnownBits &A, const KnownBits &B);
  static KnownBits divu(const KnownBits &A, const KnownBits &B);
  static KnownBits rem(const KnownBits &A, const KnownBits &B);
  static KnownBits remu(const KnownBits &A, const KnownBits &B);

  /// Abstract comparisons; result is the abstract boolean.
  static BitValue cmpEq(const KnownBits &A, const KnownBits &B);
  static BitValue cmpUlt(const KnownBits &A, const KnownBits &B);
  static BitValue cmpSlt(const KnownBits &A, const KnownBits &B);

  /// Wraps an abstract boolean into a Width-bit value (upper bits zero).
  static KnownBits fromBool(BitValue B, unsigned Width);

  /// The effective shift amount range of this value when used as a shift
  /// operand: RISC-V masks the amount to log2(Width) bits for power-of-two
  /// widths. \returns {min, max}.
  std::pair<unsigned, unsigned> shiftAmountRange() const;

  /// Renders e.g. "0 0 x 1" MSB-first ('x' = Top, '.' = Bottom), matching
  /// the paper's box notation.
  std::string toString() const;

private:
  KnownBits(uint64_t Zero, uint64_t One, uint64_t Init, unsigned Width)
      : Zero(Zero), One(One), Init(Init), Width(Width) {}

  /// Promotes Bottom bits to Top (used on operator inputs).
  KnownBits normalized() const {
    KnownBits R = *this;
    R.Init = lowBitMask(Width);
    return R;
  }

  uint64_t Zero = 0;
  uint64_t One = 0;
  uint64_t Init = 0;
  unsigned Width = 32;
};

} // namespace bec

#endif // BEC_ANALYSIS_KNOWNBITS_H
