//===- sim/Machine.h - Architectural machine state -------------------------===//
///
/// \file
/// Register file and byte-addressable memory of the simulated machine.
/// Copyable by value: the campaign engine snapshots the machine at every
/// injection cycle, so each fault-injection run only re-executes the
/// suffix of the program.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SIM_MACHINE_H
#define BEC_SIM_MACHINE_H

#include "ir/Program.h"
#include "support/BitUtils.h"

#include <array>
#include <cstring>
#include <vector>

namespace bec {

/// Architectural state: 32 registers of Program::Width bits plus memory.
class Machine {
public:
  void reset(const Program &Prog) {
    Width = Prog.Width;
    Mask = lowBitMask(Width);
    Regs.fill(0);
    Mem.assign(Prog.MemSize, 0);
    if (!Prog.Data.empty())
      std::memcpy(Mem.data() + Prog.DataBase, Prog.Data.data(),
                  Prog.Data.size());
  }

  uint64_t reg(Reg R) const { return R == RegZero ? 0 : Regs[R]; }
  void setReg(Reg R, uint64_t Value) {
    if (R != RegZero)
      Regs[R] = Value & Mask;
  }

  /// Injects a single-event upset: flips bit \p Bit of register \p R.
  /// Flips on x0 are architecturally impossible and are ignored, matching
  /// the analysis (x0 fault sites are permanently masked).
  void flipRegBit(Reg R, unsigned Bit) {
    if (R != RegZero)
      Regs[R] = flipBit(Regs[R], Bit, Width);
  }

  /// Memory accessors; bounds/alignment are checked by the interpreter.
  uint64_t loadUnsigned(uint64_t Addr, unsigned Bytes) const {
    uint64_t Value = 0;
    for (unsigned I = 0; I < Bytes; ++I)
      Value |= uint64_t(Mem[Addr + I]) << (8 * I);
    return Value;
  }
  void store(uint64_t Addr, uint64_t Value, unsigned Bytes) {
    for (unsigned I = 0; I < Bytes; ++I)
      Mem[Addr + I] = static_cast<uint8_t>(Value >> (8 * I));
  }

  uint64_t memSize() const { return Mem.size(); }
  unsigned width() const { return Width; }
  uint64_t mask() const { return Mask; }

  /// Raw state views, for checkpoint serialization and state comparison.
  const std::array<uint64_t, NumRegs> &regs() const { return Regs; }
  const std::vector<uint8_t> &memory() const { return Mem; }

  /// Rebuilds the machine from serialized checkpoint parts (the inverse
  /// of regs()/memory(); Mask is derived from the width).
  void restoreParts(unsigned W, const std::array<uint64_t, NumRegs> &R,
                    std::vector<uint8_t> M) {
    Width = W;
    Mask = lowBitMask(W);
    Regs = R;
    Mem = std::move(M);
  }

  bool operator==(const Machine &O) const {
    return Width == O.Width && Regs == O.Regs && Mem == O.Mem;
  }
  bool operator!=(const Machine &O) const { return !(*this == O); }

private:
  unsigned Width = 32;
  uint64_t Mask = 0xffffffff;
  std::array<uint64_t, NumRegs> Regs{};
  std::vector<uint8_t> Mem;
};

} // namespace bec

#endif // BEC_SIM_MACHINE_H
