//===- sim/Interpreter.cpp - RISC-V functional simulator -------------------===//

#include "sim/Interpreter.h"

#include "support/Debug.h"

using namespace bec;

const char *bec::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Finished:
    return "finished";
  case Outcome::Trap:
    return "trap";
  case Outcome::Hang:
    return "hang";
  }
  bec_unreachable("invalid outcome");
}

Interpreter::Interpreter(const Program &Prog, RunOptions Opts)
    : Prog(&Prog), Opts(Opts), PC(Prog.Entry) {
  M.reset(Prog);
}

void Interpreter::finish(Outcome End) {
  Done = true;
  Result.End = End;
  FullHash.absorb(0x9e3700 + static_cast<uint64_t>(End));
}

Trace Interpreter::takeTrace() {
  assert(Done && "takeTrace before the run ended");
  Result.Cycles = CycleCount;
  // Outcome and return value enter both hashes at the end.
  ObsHash.absorb(static_cast<uint64_t>(Result.End));
  ObsHash.absorb(Result.HasReturnValue ? Result.ReturnValue + 1 : 0);
  FullHash.absorb(Result.HasReturnValue ? Result.ReturnValue + 1 : 0);
  Result.TraceHash = FullHash.value();
  Result.ObservableHash = ObsHash.value();
  return std::move(Result);
}

bool Interpreter::step() {
  if (Done)
    return false;
  if (CycleCount >= Opts.MaxCycles) {
    finish(Outcome::Hang);
    return false;
  }

  const Instruction &I = Prog->instr(PC);
  unsigned W = M.width();
  uint64_t Mask = M.mask();
  uint64_t A = M.reg(I.Rs1);
  uint64_t B = M.reg(I.Rs2);
  uint64_t Imm = static_cast<uint64_t>(I.Imm) & Mask;
  uint32_t NextPC = PC + 1;

  FullHash.absorb(PC);
  if (Opts.Record)
    Result.Executed.push_back(PC);

  auto ShiftAmount = [&](uint64_t V) -> unsigned {
    if ((W & (W - 1)) == 0)
      return static_cast<unsigned>(V & (W - 1));
    return static_cast<unsigned>(V % W);
  };
  auto SignedDiv = [&](uint64_t X, uint64_t Y) -> uint64_t {
    int64_t SX = signExtend(X, W), SY = signExtend(Y, W);
    if (SY == 0)
      return allOnesValue(W);
    if (X == signedMinValue(W) && SY == -1)
      return signedMinValue(W);
    return truncate(static_cast<uint64_t>(SX / SY), W);
  };
  auto SignedRem = [&](uint64_t X, uint64_t Y) -> uint64_t {
    int64_t SX = signExtend(X, W), SY = signExtend(Y, W);
    if (SY == 0)
      return X;
    if (X == signedMinValue(W) && SY == -1)
      return 0;
    return truncate(static_cast<uint64_t>(SX % SY), W);
  };
  auto MemAccess = [&](unsigned Bytes, bool IsStore, uint64_t &Addr) {
    Addr = (A + Imm) & Mask;
    if (Addr % Bytes != 0 || Addr + Bytes > M.memSize()) {
      finish(Outcome::Trap);
      return false;
    }
    (void)IsStore;
    return true;
  };
  auto RecordStore = [&](uint64_t Addr, uint64_t Value, unsigned Bytes) {
    FullHash.absorb(0x5700 + Addr);
    FullHash.absorb(Value);
    if (Opts.Record)
      Result.Events.push_back({TraceEvent::Kind::Store, Addr, Value,
                               static_cast<uint8_t>(Bytes)});
  };

  switch (I.Op) {
  case Opcode::LI:
    M.setReg(I.Rd, Imm);
    break;
  case Opcode::LUI:
    M.setReg(I.Rd, (static_cast<uint64_t>(I.Imm) << 12) & Mask);
    break;
  case Opcode::MV:
    M.setReg(I.Rd, A);
    break;
  case Opcode::ADD:
    M.setReg(I.Rd, A + B);
    break;
  case Opcode::SUB:
    M.setReg(I.Rd, A - B);
    break;
  case Opcode::AND:
    M.setReg(I.Rd, A & B);
    break;
  case Opcode::OR:
    M.setReg(I.Rd, A | B);
    break;
  case Opcode::XOR:
    M.setReg(I.Rd, A ^ B);
    break;
  case Opcode::SLL:
    M.setReg(I.Rd, A << ShiftAmount(B));
    break;
  case Opcode::SRL:
    M.setReg(I.Rd, truncate(A, W) >> ShiftAmount(B));
    break;
  case Opcode::SRA:
    M.setReg(I.Rd, static_cast<uint64_t>(signExtend(A, W) >>
                                         static_cast<int64_t>(ShiftAmount(B))));
    break;
  case Opcode::SLT:
    M.setReg(I.Rd, signExtend(A, W) < signExtend(B, W) ? 1 : 0);
    break;
  case Opcode::SLTU:
    M.setReg(I.Rd, A < B ? 1 : 0);
    break;
  case Opcode::ADDI:
    M.setReg(I.Rd, A + Imm);
    break;
  case Opcode::ANDI:
    M.setReg(I.Rd, A & Imm);
    break;
  case Opcode::ORI:
    M.setReg(I.Rd, A | Imm);
    break;
  case Opcode::XORI:
    M.setReg(I.Rd, A ^ Imm);
    break;
  case Opcode::SLLI:
    M.setReg(I.Rd, A << I.Imm);
    break;
  case Opcode::SRLI:
    M.setReg(I.Rd, truncate(A, W) >> I.Imm);
    break;
  case Opcode::SRAI:
    M.setReg(I.Rd, static_cast<uint64_t>(signExtend(A, W) >> I.Imm));
    break;
  case Opcode::SLTI:
    M.setReg(I.Rd, signExtend(A, W) < I.Imm ? 1 : 0);
    break;
  case Opcode::SLTIU:
    M.setReg(I.Rd, A < Imm ? 1 : 0);
    break;
  case Opcode::MUL:
    M.setReg(I.Rd, A * B);
    break;
  case Opcode::MULHU:
    if (W <= 32)
      M.setReg(I.Rd, (A * B) >> W);
    else
      M.setReg(I.Rd, static_cast<uint64_t>(
                         (static_cast<__uint128_t>(A) * B) >> W));
    break;
  case Opcode::DIV:
    M.setReg(I.Rd, SignedDiv(A, B));
    break;
  case Opcode::DIVU:
    M.setReg(I.Rd, B == 0 ? allOnesValue(W) : A / B);
    break;
  case Opcode::REM:
    M.setReg(I.Rd, SignedRem(A, B));
    break;
  case Opcode::REMU:
    M.setReg(I.Rd, B == 0 ? A : A % B);
    break;
  case Opcode::BEQ:
    if (A == B)
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BNE:
    if (A != B)
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BLT:
    if (signExtend(A, W) < signExtend(B, W))
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BGE:
    if (signExtend(A, W) >= signExtend(B, W))
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BLTU:
    if (A < B)
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BGEU:
    if (A >= B)
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::J:
    NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::LW: {
    uint64_t Addr;
    if (!MemAccess(4, false, Addr))
      return false;
    M.setReg(I.Rd, M.loadUnsigned(Addr, 4));
    break;
  }
  case Opcode::LH: {
    uint64_t Addr;
    if (!MemAccess(2, false, Addr))
      return false;
    M.setReg(I.Rd, truncate(
                       static_cast<uint64_t>(signExtend(
                           M.loadUnsigned(Addr, 2), 16)),
                       W));
    break;
  }
  case Opcode::LHU: {
    uint64_t Addr;
    if (!MemAccess(2, false, Addr))
      return false;
    M.setReg(I.Rd, M.loadUnsigned(Addr, 2));
    break;
  }
  case Opcode::LB: {
    uint64_t Addr;
    if (!MemAccess(1, false, Addr))
      return false;
    M.setReg(I.Rd, truncate(
                       static_cast<uint64_t>(signExtend(
                           M.loadUnsigned(Addr, 1), 8)),
                       W));
    break;
  }
  case Opcode::LBU: {
    uint64_t Addr;
    if (!MemAccess(1, false, Addr))
      return false;
    M.setReg(I.Rd, M.loadUnsigned(Addr, 1));
    break;
  }
  case Opcode::SW: {
    uint64_t Addr;
    if (!MemAccess(4, true, Addr))
      return false;
    M.store(Addr, B, 4);
    RecordStore(Addr, B & 0xffffffff, 4);
    break;
  }
  case Opcode::SH: {
    uint64_t Addr;
    if (!MemAccess(2, true, Addr))
      return false;
    M.store(Addr, B, 2);
    RecordStore(Addr, B & 0xffff, 2);
    break;
  }
  case Opcode::SB: {
    uint64_t Addr;
    if (!MemAccess(1, true, Addr))
      return false;
    M.store(Addr, B, 1);
    RecordStore(Addr, B & 0xff, 1);
    break;
  }
  case Opcode::OUT:
    FullHash.absorb(0xBEC0u + A);
    ObsHash.absorb(A);
    if (Opts.Record)
      Result.Events.push_back({TraceEvent::Kind::Out, 0, A, 0});
    break;
  case Opcode::RET:
    Result.ReturnValue = M.reg(RegA0);
    Result.HasReturnValue = true;
    ++CycleCount;
    finish(Outcome::Finished);
    return false;
  case Opcode::HALT:
    ++CycleCount;
    finish(Outcome::Finished);
    return false;
  case Opcode::NOP:
    break;
  }

  PC = NextPC;
  ++CycleCount;
  return true;
}

Trace bec::simulate(const Program &Prog, RunOptions Opts) {
  Interpreter Interp(Prog, Opts);
  Interp.run();
  return Interp.takeTrace();
}

Trace bec::simulateWithInjection(const Program &Prog, const Injection &Inj,
                                 RunOptions Opts) {
  Interpreter Interp(Prog, Opts);
  Interp.runToCycle(Inj.AfterCycle);
  Interp.machine().flipRegBit(Inj.R, Inj.Bit);
  Interp.run();
  return Interp.takeTrace();
}
