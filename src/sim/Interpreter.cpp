//===- sim/Interpreter.cpp - RISC-V functional simulator -------------------===//

#include "sim/Interpreter.h"

#include "support/Debug.h"

using namespace bec;

const char *bec::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Finished:
    return "finished";
  case Outcome::Trap:
    return "trap";
  case Outcome::Hang:
    return "hang";
  }
  bec_unreachable("invalid outcome");
}

Interpreter::Interpreter(const Program &Prog, RunOptions Opts)
    : Prog(&Prog), Opts(Opts), PC(Prog.Entry) {
  M.reset(Prog);
}

namespace {

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (unsigned I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint64_t getU64(const uint8_t *Data) {
  uint64_t V = 0;
  for (unsigned I = 0; I < 8; ++I)
    V |= uint64_t(Data[I]) << (8 * I);
  return V;
}

/// Format tag of the MachineState encoding; bump on layout changes.
constexpr uint64_t MachineStateTag = 0xbec0057a7e000001ull;

} // namespace

uint64_t MachineState::byteSize() const {
  // Tag, width, PC, cycle, flags, return value, two hash cursors, the
  // register file, the memory length, then the memory image.
  return 8 * 8 + NumRegs * 8 + 8 + M.memory().size();
}

std::vector<uint8_t> MachineState::serialize() const {
  std::vector<uint8_t> Out;
  Out.reserve(byteSize());
  putU64(Out, MachineStateTag);
  putU64(Out, M.width());
  putU64(Out, PC);
  putU64(Out, CycleCount);
  putU64(Out, (uint64_t(Done) << 0) | (uint64_t(HasReturnValue) << 1) |
                  (static_cast<uint64_t>(End) << 8));
  putU64(Out, ReturnValue);
  putU64(Out, FullHashState);
  putU64(Out, ObsHashState);
  for (uint64_t R : M.regs())
    putU64(Out, R);
  putU64(Out, M.memory().size());
  Out.insert(Out.end(), M.memory().begin(), M.memory().end());
  return Out;
}

std::optional<MachineState> MachineState::deserialize(const uint8_t *Data,
                                                      size_t Size) {
  constexpr size_t FixedBytes = 8 * 8 + NumRegs * 8 + 8;
  if (Size < FixedBytes || getU64(Data) != MachineStateTag)
    return std::nullopt;
  MachineState S;
  uint64_t Width = getU64(Data + 8);
  if (Width == 0 || Width > 64)
    return std::nullopt;
  S.PC = static_cast<uint32_t>(getU64(Data + 16));
  S.CycleCount = getU64(Data + 24);
  uint64_t Flags = getU64(Data + 32);
  S.Done = Flags & 1;
  S.HasReturnValue = (Flags >> 1) & 1;
  uint64_t EndByte = (Flags >> 8) & 0xff;
  if (EndByte > static_cast<uint64_t>(Outcome::Hang))
    return std::nullopt;
  S.End = static_cast<Outcome>(EndByte);
  S.ReturnValue = getU64(Data + 40);
  S.FullHashState = getU64(Data + 48);
  S.ObsHashState = getU64(Data + 56);
  std::array<uint64_t, NumRegs> Regs;
  for (unsigned R = 0; R < NumRegs; ++R)
    Regs[R] = getU64(Data + 64 + 8 * R);
  uint64_t MemSize = getU64(Data + 64 + 8 * NumRegs);
  if (Size != FixedBytes + MemSize)
    return std::nullopt;
  std::vector<uint8_t> Mem(Data + FixedBytes, Data + FixedBytes + MemSize);
  S.M.restoreParts(static_cast<unsigned>(Width), Regs, std::move(Mem));
  return S;
}

MachineState Interpreter::snapshot() const {
  assert(!Opts.Record && "snapshots cover hash-only runs; recorded "
                         "Executed/Events vectors are not part of the state");
  MachineState S;
  S.M = M;
  S.PC = PC;
  S.CycleCount = CycleCount;
  S.Done = Done;
  S.FullHashState = FullHash.value();
  S.ObsHashState = ObsHash.value();
  S.End = Result.End;
  S.ReturnValue = Result.ReturnValue;
  S.HasReturnValue = Result.HasReturnValue;
  return S;
}

void Interpreter::restore(const MachineState &S) {
  assert(!Opts.Record && "snapshots cover hash-only runs; recorded "
                         "Executed/Events vectors are not part of the state");
  M = S.M;
  PC = S.PC;
  CycleCount = S.CycleCount;
  Done = S.Done;
  Result = Trace{};
  Result.End = S.End;
  Result.ReturnValue = S.ReturnValue;
  Result.HasReturnValue = S.HasReturnValue;
  FullHash.restore(S.FullHashState);
  ObsHash.restore(S.ObsHashState);
}

void Interpreter::finish(Outcome End) {
  Done = true;
  Result.End = End;
  FullHash.absorb(0x9e3700 + static_cast<uint64_t>(End));
}

Trace Interpreter::takeTrace() {
  assert(Done && "takeTrace before the run ended");
  Result.Cycles = CycleCount;
  // Outcome and return value enter both hashes at the end.
  ObsHash.absorb(static_cast<uint64_t>(Result.End));
  ObsHash.absorb(Result.HasReturnValue ? Result.ReturnValue + 1 : 0);
  FullHash.absorb(Result.HasReturnValue ? Result.ReturnValue + 1 : 0);
  Result.TraceHash = FullHash.value();
  Result.ObservableHash = ObsHash.value();
  return std::move(Result);
}

bool Interpreter::step() {
  if (Done)
    return false;
  if (CycleCount >= Opts.MaxCycles) {
    finish(Outcome::Hang);
    return false;
  }

  const Instruction &I = Prog->instr(PC);
  unsigned W = M.width();
  uint64_t Mask = M.mask();
  uint64_t A = M.reg(I.Rs1);
  uint64_t B = M.reg(I.Rs2);
  uint64_t Imm = static_cast<uint64_t>(I.Imm) & Mask;
  uint32_t NextPC = PC + 1;

  FullHash.absorb(PC);
  if (Opts.Record)
    Result.Executed.push_back(PC);

  auto ShiftAmount = [&](uint64_t V) -> unsigned {
    if ((W & (W - 1)) == 0)
      return static_cast<unsigned>(V & (W - 1));
    return static_cast<unsigned>(V % W);
  };
  auto SignedDiv = [&](uint64_t X, uint64_t Y) -> uint64_t {
    int64_t SX = signExtend(X, W), SY = signExtend(Y, W);
    if (SY == 0)
      return allOnesValue(W);
    if (X == signedMinValue(W) && SY == -1)
      return signedMinValue(W);
    return truncate(static_cast<uint64_t>(SX / SY), W);
  };
  auto SignedRem = [&](uint64_t X, uint64_t Y) -> uint64_t {
    int64_t SX = signExtend(X, W), SY = signExtend(Y, W);
    if (SY == 0)
      return X;
    if (X == signedMinValue(W) && SY == -1)
      return 0;
    return truncate(static_cast<uint64_t>(SX % SY), W);
  };
  auto MemAccess = [&](unsigned Bytes, bool IsStore, uint64_t &Addr) {
    Addr = (A + Imm) & Mask;
    if (Addr % Bytes != 0 || Addr + Bytes > M.memSize()) {
      finish(Outcome::Trap);
      return false;
    }
    (void)IsStore;
    return true;
  };
  auto RecordStore = [&](uint64_t Addr, uint64_t Value, unsigned Bytes) {
    FullHash.absorb(0x5700 + Addr);
    FullHash.absorb(Value);
    if (Opts.Record)
      Result.Events.push_back({TraceEvent::Kind::Store, Addr, Value,
                               static_cast<uint8_t>(Bytes)});
  };

  switch (I.Op) {
  case Opcode::LI:
    M.setReg(I.Rd, Imm);
    break;
  case Opcode::LUI:
    M.setReg(I.Rd, (static_cast<uint64_t>(I.Imm) << 12) & Mask);
    break;
  case Opcode::MV:
    M.setReg(I.Rd, A);
    break;
  case Opcode::ADD:
    M.setReg(I.Rd, A + B);
    break;
  case Opcode::SUB:
    M.setReg(I.Rd, A - B);
    break;
  case Opcode::AND:
    M.setReg(I.Rd, A & B);
    break;
  case Opcode::OR:
    M.setReg(I.Rd, A | B);
    break;
  case Opcode::XOR:
    M.setReg(I.Rd, A ^ B);
    break;
  case Opcode::SLL:
    M.setReg(I.Rd, A << ShiftAmount(B));
    break;
  case Opcode::SRL:
    M.setReg(I.Rd, truncate(A, W) >> ShiftAmount(B));
    break;
  case Opcode::SRA:
    M.setReg(I.Rd, static_cast<uint64_t>(signExtend(A, W) >>
                                         static_cast<int64_t>(ShiftAmount(B))));
    break;
  case Opcode::SLT:
    M.setReg(I.Rd, signExtend(A, W) < signExtend(B, W) ? 1 : 0);
    break;
  case Opcode::SLTU:
    M.setReg(I.Rd, A < B ? 1 : 0);
    break;
  case Opcode::ADDI:
    M.setReg(I.Rd, A + Imm);
    break;
  case Opcode::ANDI:
    M.setReg(I.Rd, A & Imm);
    break;
  case Opcode::ORI:
    M.setReg(I.Rd, A | Imm);
    break;
  case Opcode::XORI:
    M.setReg(I.Rd, A ^ Imm);
    break;
  case Opcode::SLLI:
    M.setReg(I.Rd, A << I.Imm);
    break;
  case Opcode::SRLI:
    M.setReg(I.Rd, truncate(A, W) >> I.Imm);
    break;
  case Opcode::SRAI:
    M.setReg(I.Rd, static_cast<uint64_t>(signExtend(A, W) >> I.Imm));
    break;
  case Opcode::SLTI:
    M.setReg(I.Rd, signExtend(A, W) < I.Imm ? 1 : 0);
    break;
  case Opcode::SLTIU:
    M.setReg(I.Rd, A < Imm ? 1 : 0);
    break;
  case Opcode::MUL:
    M.setReg(I.Rd, A * B);
    break;
  case Opcode::MULHU:
    if (W <= 32)
      M.setReg(I.Rd, (A * B) >> W);
    else
      M.setReg(I.Rd, static_cast<uint64_t>(
                         (static_cast<__uint128_t>(A) * B) >> W));
    break;
  case Opcode::DIV:
    M.setReg(I.Rd, SignedDiv(A, B));
    break;
  case Opcode::DIVU:
    M.setReg(I.Rd, B == 0 ? allOnesValue(W) : A / B);
    break;
  case Opcode::REM:
    M.setReg(I.Rd, SignedRem(A, B));
    break;
  case Opcode::REMU:
    M.setReg(I.Rd, B == 0 ? A : A % B);
    break;
  case Opcode::BEQ:
    if (A == B)
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BNE:
    if (A != B)
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BLT:
    if (signExtend(A, W) < signExtend(B, W))
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BGE:
    if (signExtend(A, W) >= signExtend(B, W))
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BLTU:
    if (A < B)
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::BGEU:
    if (A >= B)
      NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::J:
    NextPC = static_cast<uint32_t>(I.Target);
    break;
  case Opcode::LW: {
    uint64_t Addr;
    if (!MemAccess(4, false, Addr))
      return false;
    M.setReg(I.Rd, M.loadUnsigned(Addr, 4));
    break;
  }
  case Opcode::LH: {
    uint64_t Addr;
    if (!MemAccess(2, false, Addr))
      return false;
    M.setReg(I.Rd, truncate(
                       static_cast<uint64_t>(signExtend(
                           M.loadUnsigned(Addr, 2), 16)),
                       W));
    break;
  }
  case Opcode::LHU: {
    uint64_t Addr;
    if (!MemAccess(2, false, Addr))
      return false;
    M.setReg(I.Rd, M.loadUnsigned(Addr, 2));
    break;
  }
  case Opcode::LB: {
    uint64_t Addr;
    if (!MemAccess(1, false, Addr))
      return false;
    M.setReg(I.Rd, truncate(
                       static_cast<uint64_t>(signExtend(
                           M.loadUnsigned(Addr, 1), 8)),
                       W));
    break;
  }
  case Opcode::LBU: {
    uint64_t Addr;
    if (!MemAccess(1, false, Addr))
      return false;
    M.setReg(I.Rd, M.loadUnsigned(Addr, 1));
    break;
  }
  case Opcode::SW: {
    uint64_t Addr;
    if (!MemAccess(4, true, Addr))
      return false;
    M.store(Addr, B, 4);
    RecordStore(Addr, B & 0xffffffff, 4);
    break;
  }
  case Opcode::SH: {
    uint64_t Addr;
    if (!MemAccess(2, true, Addr))
      return false;
    M.store(Addr, B, 2);
    RecordStore(Addr, B & 0xffff, 2);
    break;
  }
  case Opcode::SB: {
    uint64_t Addr;
    if (!MemAccess(1, true, Addr))
      return false;
    M.store(Addr, B, 1);
    RecordStore(Addr, B & 0xff, 1);
    break;
  }
  case Opcode::OUT:
    FullHash.absorb(0xBEC0u + A);
    ObsHash.absorb(A);
    if (Opts.Record)
      Result.Events.push_back({TraceEvent::Kind::Out, 0, A, 0});
    break;
  case Opcode::RET:
    Result.ReturnValue = M.reg(RegA0);
    Result.HasReturnValue = true;
    ++CycleCount;
    finish(Outcome::Finished);
    return false;
  case Opcode::HALT:
    ++CycleCount;
    finish(Outcome::Finished);
    return false;
  case Opcode::NOP:
    break;
  }

  PC = NextPC;
  ++CycleCount;
  return true;
}

Trace bec::simulate(const Program &Prog, RunOptions Opts) {
  Interpreter Interp(Prog, Opts);
  Interp.run();
  return Interp.takeTrace();
}

Trace bec::simulateWithInjection(const Program &Prog, const Injection &Inj,
                                 RunOptions Opts) {
  Interpreter Interp(Prog, Opts);
  Interp.runToCycle(Inj.AfterCycle);
  Interp.machine().flipRegBit(Inj.R, Inj.Bit);
  Interp.run();
  return Interp.takeTrace();
}
