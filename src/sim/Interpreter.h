//===- sim/Interpreter.h - RISC-V functional simulator ---------------------===//
///
/// \file
/// The stand-in for the paper's instrumented SPIKE ISA simulator: a
/// cycle-per-instruction functional interpreter that produces architectural
/// traces and supports single-event-upset injection at a (cycle, register,
/// bit) fault site. The interpreter object is copyable, which the campaign
/// engine uses to snapshot state at each injection cycle.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SIM_INTERPRETER_H
#define BEC_SIM_INTERPRETER_H

#include "sim/Machine.h"
#include "sim/Trace.h"

#include <limits>
#include <optional>

namespace bec {

/// Execution options for a single run.
struct RunOptions {
  /// Cycle budget; exceeded -> Outcome::Hang.
  uint64_t MaxCycles = 1 << 22;
  /// Record full Executed/Events vectors (hashes are always computed).
  bool Record = true;
};

/// Describes one fault-injection run: after `AfterCycle` instructions have
/// executed (0 = before the first instruction), flip `Bit` of `R`.
struct Injection {
  uint64_t AfterCycle = 0;
  Reg R = 0;
  unsigned Bit = 0;
};

/// A serializable architectural checkpoint of a run in flight: registers,
/// memory, PC, cycle and the trace cursor (the incremental full/observable
/// hash states plus the end-of-run fields). Restoring a state into a fresh
/// interpreter of the same program and options continues the run exactly
/// where the snapshot was taken — the campaign engine's prefix checkpoints
/// are a table of these, taken along the golden trace.
///
/// Recorded Executed/Events vectors are NOT part of the state; snapshots
/// are taken from hash-only runs (RunOptions::Record == false).
struct MachineState {
  Machine M;
  uint32_t PC = 0;
  uint64_t CycleCount = 0;
  bool Done = false;
  uint64_t FullHashState = 0;
  uint64_t ObsHashState = 0;
  /// End-of-run trace fields; meaningful only when Done.
  Outcome End = Outcome::Finished;
  uint64_t ReturnValue = 0;
  bool HasReturnValue = false;

  /// Byte-exact binary encoding (little-endian), and its inverse.
  /// deserialize returns nullopt on a malformed or truncated buffer.
  std::vector<uint8_t> serialize() const;
  static std::optional<MachineState> deserialize(const uint8_t *Data,
                                                 size_t Size);

  /// Size of serialize()'s encoding, without building it (the engine's
  /// fi.checkpoints.bytes accounting).
  uint64_t byteSize() const;

  bool operator==(const MachineState &O) const {
    return PC == O.PC && CycleCount == O.CycleCount && Done == O.Done &&
           FullHashState == O.FullHashState && ObsHashState == O.ObsHashState &&
           End == O.End && ReturnValue == O.ReturnValue &&
           HasReturnValue == O.HasReturnValue && M == O.M;
  }
  bool operator!=(const MachineState &O) const { return !(*this == O); }
};

/// Stepping interpreter over one program.
class Interpreter {
public:
  Interpreter(const Program &Prog, RunOptions Opts = {});

  /// Executes one instruction. Returns false once the run has ended
  /// (finished, trapped, or exhausted the budget).
  bool step();

  /// Runs until \p Cycle instructions have executed or the program ends.
  void runToCycle(uint64_t Cycle) {
    while (!Done && Cycle > CycleCount)
      step();
  }
  /// Runs to completion.
  void run() { runToCycle(std::numeric_limits<uint64_t>::max()); }

  bool done() const { return Done; }
  uint64_t cycle() const { return CycleCount; }
  uint32_t pc() const { return PC; }
  Machine &machine() { return M; }
  const Machine &machine() const { return M; }

  /// Incremental hash cursors of the run so far. Two runs of the same
  /// program whose cursors are equal at the same cycle have absorbed
  /// identical prefixes (modulo hash collision, the same approximation
  /// the campaign engine's trace comparison already makes).
  uint64_t fullHashState() const { return FullHash.value(); }
  uint64_t obsHashState() const { return ObsHash.value(); }

  /// Captures the complete architectural state of the run in flight.
  /// Only valid on hash-only runs (RunOptions::Record == false): recorded
  /// Executed/Events vectors are not part of the checkpoint.
  MachineState snapshot() const;

  /// Resumes from \p S as if this interpreter had executed the prefix
  /// that produced it. The program and options keep their constructed
  /// values and must match the snapshotting run's for the continuation
  /// to be meaningful.
  void restore(const MachineState &S);

  /// Finalizes and returns the trace (valid once done()).
  Trace takeTrace();

private:
  void finish(Outcome End);

  const Program *Prog;
  RunOptions Opts;
  Machine M;
  uint32_t PC;
  uint64_t CycleCount = 0;
  bool Done = false;
  Trace Result;
  TraceHasher FullHash;
  TraceHasher ObsHash;
};

/// Convenience wrapper: runs \p Prog to completion.
Trace simulate(const Program &Prog, RunOptions Opts = {});

/// Convenience wrapper: runs \p Prog with a single injected bit flip.
Trace simulateWithInjection(const Program &Prog, const Injection &Inj,
                            RunOptions Opts = {});

} // namespace bec

#endif // BEC_SIM_INTERPRETER_H
