//===- sim/Interpreter.h - RISC-V functional simulator ---------------------===//
///
/// \file
/// The stand-in for the paper's instrumented SPIKE ISA simulator: a
/// cycle-per-instruction functional interpreter that produces architectural
/// traces and supports single-event-upset injection at a (cycle, register,
/// bit) fault site. The interpreter object is copyable, which the campaign
/// engine uses to snapshot state at each injection cycle.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SIM_INTERPRETER_H
#define BEC_SIM_INTERPRETER_H

#include "sim/Machine.h"
#include "sim/Trace.h"

#include <limits>

namespace bec {

/// Execution options for a single run.
struct RunOptions {
  /// Cycle budget; exceeded -> Outcome::Hang.
  uint64_t MaxCycles = 1 << 22;
  /// Record full Executed/Events vectors (hashes are always computed).
  bool Record = true;
};

/// Describes one fault-injection run: after `AfterCycle` instructions have
/// executed (0 = before the first instruction), flip `Bit` of `R`.
struct Injection {
  uint64_t AfterCycle = 0;
  Reg R = 0;
  unsigned Bit = 0;
};

/// Stepping interpreter over one program.
class Interpreter {
public:
  Interpreter(const Program &Prog, RunOptions Opts = {});

  /// Executes one instruction. Returns false once the run has ended
  /// (finished, trapped, or exhausted the budget).
  bool step();

  /// Runs until \p Cycle instructions have executed or the program ends.
  void runToCycle(uint64_t Cycle) {
    while (!Done && Cycle > CycleCount)
      step();
  }
  /// Runs to completion.
  void run() { runToCycle(std::numeric_limits<uint64_t>::max()); }

  bool done() const { return Done; }
  uint64_t cycle() const { return CycleCount; }
  uint32_t pc() const { return PC; }
  Machine &machine() { return M; }
  const Machine &machine() const { return M; }

  /// Finalizes and returns the trace (valid once done()).
  Trace takeTrace();

private:
  void finish(Outcome End);

  const Program *Prog;
  RunOptions Opts;
  Machine M;
  uint32_t PC;
  uint64_t CycleCount = 0;
  bool Done = false;
  Trace Result;
  TraceHasher FullHash;
  TraceHasher ObsHash;
};

/// Convenience wrapper: runs \p Prog to completion.
Trace simulate(const Program &Prog, RunOptions Opts = {});

/// Convenience wrapper: runs \p Prog with a single injected bit flip.
Trace simulateWithInjection(const Program &Prog, const Injection &Inj,
                            RunOptions Opts = {});

} // namespace bec

#endif // BEC_SIM_INTERPRETER_H
