//===- sim/Trace.h - Architectural execution traces ------------------------===//
///
/// \file
/// Execution traces in the sense of the paper's validation section: "a
/// sequence of executed instructions, side effects caused by the
/// instructions executed such as memory accesses, and observable outcomes
/// of the program". Two fault-injection runs are equivalent iff their
/// traces are identical; the campaign engine compares traces by a rolling
/// 64-bit hash so that millions of runs need not be archived.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SIM_TRACE_H
#define BEC_SIM_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace bec {

/// How a run ended.
enum class Outcome : uint8_t {
  Finished, ///< Reached ret/halt.
  Trap,     ///< Memory fault (out of bounds or misaligned access).
  Hang,     ///< Exceeded the cycle budget.
};

const char *outcomeName(Outcome O);

/// One observable side effect.
struct TraceEvent {
  enum class Kind : uint8_t { Store, Out };
  Kind K;
  uint64_t Addr;  ///< Store address (0 for Out).
  uint64_t Value; ///< Stored/emitted value.
  uint8_t Size;   ///< Store size in bytes (0 for Out).
};

/// Incremental FNV-1a hasher used for both the full-trace hash and the
/// observable-output hash.
class TraceHasher {
public:
  void absorb(uint64_t Value) {
    for (unsigned I = 0; I < 8; ++I) {
      Hash ^= (Value >> (8 * I)) & 0xff;
      Hash *= 0x100000001b3ull;
    }
  }
  uint64_t value() const { return Hash; }

  /// Resets the hasher to a previously observed value() — the "trace
  /// cursor" piece of an interpreter checkpoint. Each absorbed byte maps
  /// the state injectively (xor, then multiply by an odd constant), so
  /// two runs that absorb the same suffix from restored-equal states end
  /// with equal hashes, and runs whose states ever differ never
  /// re-equalize under a common suffix.
  void restore(uint64_t State) { Hash = State; }

private:
  uint64_t Hash = 0xcbf29ce484222325ull;
};

/// A (possibly abbreviated) record of one program execution.
struct Trace {
  /// Executed instruction index per cycle (empty if recording was off).
  std::vector<uint32_t> Executed;
  /// Side effects in program order (empty if recording was off).
  std::vector<TraceEvent> Events;
  uint64_t Cycles = 0;
  uint64_t ReturnValue = 0;
  bool HasReturnValue = false;
  Outcome End = Outcome::Finished;

  /// Hash of the complete architectural trace (instructions + side effects
  /// + outcome). Equal hashes are treated as identical traces.
  uint64_t TraceHash = 0;
  /// Hash of the externally observable behaviour only (out-events,
  /// return value, outcome): used to classify SDC vs. benign.
  uint64_t ObservableHash = 0;

  /// Values emitted by `out` instructions (requires recording).
  std::vector<uint64_t> outputValues() const {
    std::vector<uint64_t> Result;
    for (const TraceEvent &E : Events)
      if (E.K == TraceEvent::Kind::Out)
        Result.push_back(E.Value);
    return Result;
  }

  /// Approximate archival size in bytes, as used by the Table I disk-space
  /// accounting (4 bytes per executed instruction, 18 per event).
  uint64_t approxByteSize() const {
    return Cycles * 4 + Events.size() * 18 + 16;
  }
};

} // namespace bec

#endif // BEC_SIM_TRACE_H
