//===- fi/Checkpoint.cpp - JSONL campaign checkpoints ---------------------===//

#include "fi/Checkpoint.h"

#include "support/Json.h"
#include "support/JsonParse.h"

#include <cstdio>
#include <cstdlib>

using namespace bec;

namespace {

constexpr int FormatVersion = 1;

std::string hex64(uint64_t V) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

/// Full-string hex decode of a 64-bit value; nullopt on garbage.
std::optional<uint64_t> parseHex64(const std::string &S) {
  if (S.empty() || S.size() > 16)
    return std::nullopt;
  char *End = nullptr;
  uint64_t V = std::strtoull(S.c_str(), &End, 16);
  if (End != S.c_str() + S.size())
    return std::nullopt;
  return V;
}

std::string headerLine(const CheckpointHeader &H) {
  JsonWriter W;
  W.beginObject();
  W.key("bec_campaign_checkpoint").value(int64_t(FormatVersion));
  W.key("plan_fingerprint").value(hex64(H.PlanFingerprint));
  W.key("runs").value(H.Runs);
  W.key("shards").value(H.Shards);
  W.key("shard_size").value(H.ShardSize);
  W.endObject();
  return W.take() + "\n";
}

/// Decodes one shard record line against \p Expect's geometry; nullopt
/// for anything malformed (a torn write) or inconsistent (wrong lengths).
std::optional<ShardRecord> parseShardLine(const JsonValue &V,
                                          const CheckpointHeader &Expect) {
  std::optional<uint64_t> Shard = V.memberU64("shard");
  if (!Shard || *Shard >= Expect.Shards)
    return std::nullopt;
  uint64_t Lo = *Shard * Expect.ShardSize;
  uint64_t Hi = std::min(Expect.Runs, Lo + Expect.ShardSize);
  uint64_t Want = Hi - Lo;

  const JsonValue *EffectsV = V.member("effects");
  const JsonValue *HashesV = V.member("hashes");
  const JsonValue *BytesV = V.member("bytes");
  const std::vector<JsonValue> *Effects = EffectsV ? EffectsV->asArray() : nullptr;
  const std::vector<JsonValue> *Hashes = HashesV ? HashesV->asArray() : nullptr;
  const std::vector<JsonValue> *Bytes = BytesV ? BytesV->asArray() : nullptr;
  if (!Effects || !Hashes || !Bytes || Effects->size() != Want ||
      Hashes->size() != Want || Bytes->size() != Want)
    return std::nullopt;

  ShardRecord R;
  R.Shard = *Shard;
  R.Effects.reserve(Want);
  R.Hashes.reserve(Want);
  R.Bytes.reserve(Want);
  for (uint64_t I = 0; I < Want; ++I) {
    std::optional<uint64_t> E = (*Effects)[I].asU64();
    if (!E || *E >= NumFaultEffects)
      return std::nullopt;
    const std::string *HS = (*Hashes)[I].asString();
    std::optional<uint64_t> H = HS ? parseHex64(*HS) : std::nullopt;
    std::optional<uint64_t> B = (*Bytes)[I].asU64();
    if (!H || !B)
      return std::nullopt;
    R.Effects.push_back(static_cast<FaultEffect>(*E));
    R.Hashes.push_back(*H);
    R.Bytes.push_back(*B);
  }
  return R;
}

} // namespace

bool CheckpointWriter::open(const std::string &P, const CheckpointHeader &H,
                            bool Append, std::string &Err) {
  Path = P;
  Out.open(P, Append ? (std::ios::out | std::ios::app)
                     : (std::ios::out | std::ios::trunc));
  if (!Out) {
    Err = "cannot open checkpoint '" + P + "' for writing";
    return false;
  }
  if (!Append) {
    Out << headerLine(H);
    Out.flush();
    if (!Out) {
      Err = "cannot write checkpoint header to '" + P + "'";
      return false;
    }
  }
  return true;
}

bool CheckpointWriter::writeShard(const ShardRecord &R, std::string &Err) {
  JsonWriter W;
  W.beginObject();
  W.key("shard").value(R.Shard);
  W.key("effects").beginArray();
  for (FaultEffect E : R.Effects)
    W.value(uint64_t(E));
  W.endArray();
  W.key("hashes").beginArray();
  for (uint64_t H : R.Hashes)
    W.value(hex64(H));
  W.endArray();
  W.key("bytes").beginArray();
  for (uint64_t B : R.Bytes)
    W.value(B);
  W.endArray();
  W.endObject();
  std::string Line = W.take() + "\n";

  std::lock_guard<std::mutex> Lock(Mutex);
  Out << Line;
  Out.flush();
  if (!Out) {
    Err = "cannot append shard record to checkpoint '" + Path + "'";
    return false;
  }
  return true;
}

bool bec::loadCheckpoint(const std::string &Path,
                         const CheckpointHeader &Expect,
                         std::vector<ShardRecord> &Records, std::string &Err) {
  std::ifstream In(Path);
  if (!In)
    return true; // Nothing to resume from: a fresh start.

  std::string Line;
  if (!std::getline(In, Line))
    return true; // Empty file: fresh start.

  std::optional<JsonValue> Header = parseJson(Line);
  if (!Header || !Header->isObject() ||
      Header->memberU64("bec_campaign_checkpoint") !=
          std::optional<uint64_t>(FormatVersion)) {
    Err = "'" + Path + "' is not a bec campaign checkpoint";
    return false;
  }
  const std::string *FP = Header->memberString("plan_fingerprint");
  std::optional<uint64_t> GotFP = FP ? parseHex64(*FP) : std::nullopt;
  if (GotFP != std::optional<uint64_t>(Expect.PlanFingerprint)) {
    Err = "checkpoint '" + Path +
          "' was written for a different campaign plan (fingerprint "
          "mismatch); delete it or drop --resume";
    return false;
  }
  if (Header->memberU64("runs") != std::optional<uint64_t>(Expect.Runs) ||
      Header->memberU64("shards") != std::optional<uint64_t>(Expect.Shards) ||
      Header->memberU64("shard_size") !=
          std::optional<uint64_t>(Expect.ShardSize)) {
    Err = "checkpoint '" + Path +
          "' was written with a different shard geometry; rerun with the "
          "original --shard-size or delete it";
    return false;
  }

  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> V = parseJson(Line);
    if (!V || !V->isObject())
      continue; // Torn trailing write.
    if (std::optional<ShardRecord> R = parseShardLine(*V, Expect))
      Records.push_back(std::move(*R));
  }
  return true;
}
