//===- fi/Validation.cpp - Empirical soundness validation ------------------===//

#include "fi/Validation.h"

#include "support/Debug.h"

#include <map>

using namespace bec;

ValidationResult bec::validateAnalysis(const BECAnalysis &A,
                                       const Trace &Golden,
                                       uint64_t MaxCycles) {
  const Program &Prog = A.program();
  const FaultSpace &FS = A.space();
  unsigned W = Prog.Width;
  uint64_t Limit = MaxCycles ? std::min<uint64_t>(MaxCycles, Golden.Cycles)
                             : Golden.Cycles;

  // --- Plan: every bit of every dynamic segment in the window, plus the
  // cross-segment links implied by ToOutput fates (as used by the metrics
  // and the pruned campaign plan).
  std::vector<PlannedRun> Plan;
  struct CrossLink {
    int64_t InSegment;
    int64_t OutSegment;
    uint32_t ClassRep;
  };
  std::vector<CrossLink> Links;

  std::array<int64_t, NumRegs> GovernorSeg;
  GovernorSeg.fill(-1);
  std::array<int32_t, NumRegs> GovernorAp;
  GovernorAp.fill(-1);
  int64_t NextSegment = 0;

  for (uint64_t C = 0; C < Limit; ++C) {
    uint32_t P = Golden.Executed[C];
    const Instruction &I = Prog.instr(P);
    if (isHalt(I.Op))
      break;
    Reg Reads[2];
    unsigned NumReads = I.readRegs(Reads);
    std::array<int64_t, 2> ReadSegs = {-1, -1};
    std::array<int32_t, 2> ReadAps = {-1, -1};
    for (unsigned R = 0; R < NumReads; ++R) {
      ReadSegs[R] = GovernorSeg[Reads[R]];
      ReadAps[R] = GovernorAp[Reads[R]];
    }

    auto [ApBegin, ApEnd] = FS.pointsOfInstr(P);
    for (uint32_t Ap = ApBegin; Ap < ApEnd; ++Ap) {
      Reg V = FS.point(Ap).R;
      int64_t Seg = NextSegment++;
      GovernorSeg[V] = Seg;
      GovernorAp[V] = static_cast<int32_t>(Ap);
      for (unsigned B = 0; B < W; ++B)
        Plan.push_back({C + 1, V, static_cast<uint8_t>(B),
                        A.classOf(FS.faultIndex(Ap, B)), Seg});
    }

    // Record the ToOutput links of this instruction (in-segment fault is
    // claimed equivalent to the out-segment fault when classes merged).
    if (I.writesReg()) {
      int32_t OutAp = FS.pointId(P, I.Rd);
      int64_t OutSeg = GovernorSeg[I.Rd];
      const InstrFates &F = A.fates(P);
      for (unsigned R = 0; R < NumReads; ++R) {
        if (ReadAps[R] < 0)
          continue;
        for (unsigned B = 0; B < W; ++B) {
          Fate Ft = F.fate(Reads[R], B);
          if (Ft.Kind != FateKind::ToOutput)
            continue;
          uint32_t InRep =
              A.classOf(FS.faultIndex(static_cast<uint32_t>(ReadAps[R]), B));
          uint32_t OutRep = A.classOf(
              FS.faultIndex(static_cast<uint32_t>(OutAp), Ft.Arg));
          if (InRep != 0 && InRep == OutRep)
            Links.push_back({ReadSegs[R], OutSeg, InRep});
        }
      }
    }
  }

  // --- Execute.
  CampaignResult Runs = runCampaign(Prog, Golden, Plan);

  // --- Classify.
  ValidationResult Result;
  Result.RunsExecuted = Runs.Runs;
  Result.SegmentsChecked = static_cast<uint64_t>(NextSegment);

  // Group plan entries by segment (entries are emitted contiguously).
  size_t K = 0;
  std::map<std::pair<int64_t, uint32_t>, uint64_t> RunHash;
  while (K < Plan.size()) {
    size_t Begin = K;
    int64_t Seg = Plan[K].Segment;
    while (K < Plan.size() && Plan[K].Segment == Seg)
      ++K;
    // Masked checks + pairwise Table II classification.
    for (size_t X = Begin; X < K; ++X) {
      RunHash[{Seg, Plan[X].ClassRep}] = Runs.TraceHashes[X];
      if (Plan[X].ClassRep == 0) {
        ++Result.MaskedChecked;
        if (Runs.TraceHashes[X] != Golden.TraceHash)
          ++Result.MaskedViolations;
      }
      for (size_t Y = X + 1; Y < K; ++Y) {
        bool SameClass = Plan[X].ClassRep == Plan[Y].ClassRep;
        bool SameTrace = Runs.TraceHashes[X] == Runs.TraceHashes[Y];
        if (SameClass && SameTrace)
          ++Result.SoundPrecisePairs;
        else if (!SameClass && SameTrace)
          ++Result.SoundImprecisePairs;
        else if (SameClass && !SameTrace)
          ++Result.UnsoundPairs;
        else
          ++Result.SoundPrecisePairs;
      }
    }
  }

  for (const CrossLink &L : Links) {
    auto In = RunHash.find({L.InSegment, L.ClassRep});
    auto Out = RunHash.find({L.OutSegment, L.ClassRep});
    if (In == RunHash.end() || Out == RunHash.end())
      continue;
    ++Result.CrossChecked;
    if (In->second != Out->second)
      ++Result.CrossViolations;
  }
  return Result;
}
