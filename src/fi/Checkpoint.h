//===- fi/Checkpoint.h - Resumable campaign checkpoints (JSONL) -----------===//
///
/// \file
/// Durable per-shard result batches for the campaign engine. A checkpoint
/// file is JSON Lines: one header record followed by one record per
/// completed shard, appended and flushed as shards finish, so a campaign
/// killed at any point loses at most the shards that were still in
/// flight. The format is documented in docs/campaigns.md:
///
///   {"bec_campaign_checkpoint":1,"plan_fingerprint":"<hex64>",
///    "runs":N,"shards":S,"shard_size":Z}
///   {"shard":3,"effects":[0,2,...],"hashes":["<hex64>",...],
///    "bytes":[120,96,...]}
///
/// Trace hashes are hex *strings* because they are full-range uint64
/// values and JSON number parsing is only int64-precise. Loading is
/// deliberately forgiving about damage a crash can cause — a torn final
/// line or a record with inconsistent array lengths is skipped — and
/// deliberately strict about identity: a header whose plan fingerprint or
/// shard geometry differs from the resuming campaign is an error, never a
/// silent partial reuse.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FI_CHECKPOINT_H
#define BEC_FI_CHECKPOINT_H

#include "fi/Campaign.h"

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace bec {

/// Identity of the campaign a checkpoint belongs to.
struct CheckpointHeader {
  uint64_t PlanFingerprint = 0; ///< CampaignPlan::fingerprint().
  uint64_t Runs = 0;            ///< Total planned runs.
  uint64_t Shards = 0;          ///< Total shards of the partition.
  uint64_t ShardSize = 0;       ///< Runs per shard (last may be short).
};

/// One completed shard's results, in execution order within the shard.
struct ShardRecord {
  uint64_t Shard = 0;
  std::vector<FaultEffect> Effects;
  std::vector<uint64_t> Hashes;
  std::vector<uint64_t> Bytes; ///< approxByteSize() per corrupted trace.
};

/// Append-only checkpoint writer; writeShard is thread-safe and flushes
/// each record so an interrupted campaign keeps every finished shard.
class CheckpointWriter {
public:
  /// Opens \p Path. Fresh campaigns truncate and write the header;
  /// resumed campaigns (\p Append) reopen for appending without touching
  /// existing records. False with a diagnostic on I/O failure.
  bool open(const std::string &Path, const CheckpointHeader &H, bool Append,
            std::string &Err);

  bool isOpen() const { return Out.is_open(); }

  /// Appends one shard record and flushes. Thread-safe.
  bool writeShard(const ShardRecord &R, std::string &Err);

private:
  std::mutex Mutex;
  std::ofstream Out;
  std::string Path;
};

/// Loads the checkpoint at \p Path: every well-formed shard record whose
/// geometry is consistent with \p Expect is appended to \p Records (in
/// file order; duplicates possible if a shard was re-run, last wins at
/// the caller). Returns false with \p Err when the file exists but its
/// header does not match \p Expect — never a silent partial reuse. A
/// missing file is NOT an error: it loads zero shards, so `--resume` is
/// idempotent from scratch. Torn or malformed trailing records are
/// skipped silently (they are what a crash leaves behind).
bool loadCheckpoint(const std::string &Path, const CheckpointHeader &Expect,
                    std::vector<ShardRecord> &Records, std::string &Err);

} // namespace bec

#endif // BEC_FI_CHECKPOINT_H
