//===- fi/Campaign.cpp - Campaign vocabulary and fault-space enumeration --===//
//
// Execution lives in fi/Engine.cpp (the sharded, resumable executor);
// sampling and fingerprints in fi/CampaignPlan.cpp. This file keeps the
// shared vocabulary and the three raw plan enumerations.
//
//===----------------------------------------------------------------------===//

#include "fi/Campaign.h"

#include "support/Debug.h"

#include <algorithm>

using namespace bec;

const char *bec::faultEffectName(FaultEffect E) {
  switch (E) {
  case FaultEffect::Masked:
    return "masked";
  case FaultEffect::Benign:
    return "benign";
  case FaultEffect::SDC:
    return "sdc";
  case FaultEffect::Trap:
    return "trap";
  case FaultEffect::Hang:
    return "hang";
  }
  bec_unreachable("invalid fault effect");
}

std::vector<PlannedRun> bec::planCampaign(const BECAnalysis &A,
                                          const Trace &Golden, PlanKind Kind,
                                          uint64_t MaxCycles) {
  const Program &Prog = A.program();
  const FaultSpace &FS = A.space();
  unsigned W = Prog.Width;
  uint64_t Limit = MaxCycles ? std::min<uint64_t>(MaxCycles, Golden.Cycles)
                             : Golden.Cycles;
  std::vector<PlannedRun> Plan;

  if (Kind == PlanKind::Exhaustive) {
    // Every bit of the register file before every executed instruction.
    for (uint64_t C = 0; C < Limit; ++C)
      for (Reg R = 0; R < NumRegs; ++R)
        for (unsigned B = 0; B < W; ++B)
          Plan.push_back({C, R, static_cast<uint8_t>(B), 0, -1});
    return Plan;
  }

  // Segment-based plans: walk the golden trace; a segment of register V
  // opens after the cycle that accesses V.
  int64_t SegmentId = 0;
  for (uint64_t C = 0; C < Limit; ++C) {
    uint32_t P = Golden.Executed[C];
    const Instruction &I = Prog.instr(P);
    if (isHalt(I.Op))
      break;
    auto [ApBegin, ApEnd] = FS.pointsOfInstr(P);
    for (uint32_t Ap = ApBegin; Ap < ApEnd; ++Ap) {
      const auto &Summary = A.summary(Ap);
      Reg V = FS.point(Ap).R;
      ++SegmentId;
      if (!Summary.LiveAfter)
        continue;
      if (Kind == PlanKind::ValueLevel) {
        for (unsigned B = 0; B < W; ++B)
          Plan.push_back({C + 1, V, static_cast<uint8_t>(B),
                          A.classOf(FS.faultIndex(Ap, B)), SegmentId});
        continue;
      }
      // BitLevel: one representative bit per non-masked class.
      uint64_t Seen = 0; // bit mask of already-planned bits via class
      for (unsigned B = 0; B < W; ++B) {
        if (Summary.MaskedMask & (uint64_t(1) << B))
          continue;
        uint32_t Rep = A.classOf(FS.faultIndex(Ap, B));
        bool Dup = false;
        for (unsigned B2 = 0; B2 < B; ++B2)
          if ((Seen >> B2) & 1) {
            if (A.classOf(FS.faultIndex(Ap, B2)) == Rep) {
              Dup = true;
              break;
            }
          }
        if (Dup)
          continue;
        Seen |= uint64_t(1) << B;
        Plan.push_back({C + 1, V, static_cast<uint8_t>(B), Rep, SegmentId});
      }
    }
  }
  return Plan;
}
