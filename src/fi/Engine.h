//===- fi/Engine.h - Sharded, work-stealing, resumable campaign executor --===//
///
/// \file
/// The execution half of the campaign engine. A CampaignPlan's run list is
/// partitioned into contiguous shards of nondecreasing injection cycle;
/// shards execute on a work-stealing scheduler (per-worker deques seeded
/// with contiguous blocks, idle workers steal from the tail of the
/// fullest victim) so each worker's interpreter snapshot almost always
/// advances monotonically through the golden trace and only a stolen
/// out-of-order shard pays a prefix re-simulation.
///
/// Completed shards stream to a JSONL checkpoint (fi/Checkpoint.h) as
/// they finish; a campaign interrupted at any shard boundary resumes with
/// `Resume = true` and produces a final result identical to an
/// uninterrupted run — per-run slots are addressed by plan order, so
/// neither thread count, nor steal order, nor the interrupt point can
/// change a byte of the report (only the measured Seconds).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FI_ENGINE_H
#define BEC_FI_ENGINE_H

#include "fi/Campaign.h"
#include "fi/CampaignPlan.h"

#include <functional>

namespace bec {

/// Execution progress at a shard boundary (what the server's
/// `campaign/run` streams and the CLI's `--progress` prints).
///
/// RunsDone counts resumed + executed runs (progress toward the plan);
/// ExecutedRuns only the runs executed by *this* invocation, which
/// together with ElapsedSeconds gives the true throughput and ETA.
/// Steals and SnapshotRebuilds say *why* scaling flattens: every steal
/// risks a snapshot rebuild, and every rebuild is a prefix
/// re-simulation of the golden trace.
struct CampaignProgress {
  uint64_t ShardsDone = 0;
  uint64_t TotalShards = 0;
  uint64_t RunsDone = 0;
  uint64_t TotalRuns = 0;
  uint64_t ExecutedRuns = 0;
  uint64_t Steals = 0;
  uint64_t SnapshotRebuilds = 0;
  double ElapsedSeconds = 0; ///< Monotonic, since this invocation began.
};

/// Execution-side knobs. None of them changes the computed result value
/// (which is a pure function of program + plan); they change how fast it
/// is computed and whether it survives interruption.
struct CampaignExecOptions {
  /// Worker threads of the work-stealing scheduler (<= 1 = inline).
  unsigned Threads = 1;
  /// Runs per shard; 0 picks a deterministic size from the plan alone
  /// (never from Threads, so checkpoints resume under any --threads).
  uint64_t ShardSize = 0;
  /// Stream per-shard result batches to this JSONL file ("" = none).
  std::string CheckpointPath;
  /// Load completed shards from CheckpointPath before executing; only
  /// the remainder runs. Incompatible checkpoints are an Error.
  bool Resume = false;
  /// Stop dispatching new shards once this many have completed in this
  /// invocation (0 = run to completion). The interruption hook used by
  /// tests and the resume smoke test; the result is then Interrupted.
  uint64_t StopAfterShards = 0;
  /// Called after every completed shard (any worker thread, serialized
  /// by the engine).
  std::function<void(const CampaignProgress &)> OnProgress;
  /// Collect the per-worker/per-shard phase breakdown into
  /// CampaignResult::Profile (`bec campaign --profile=FILE`). Phase
  /// timestamps are taken either way; this only controls whether the
  /// records are kept.
  bool CollectProfile = false;
};

/// Aggregate reading of a CampaignPhaseProfile: where the workers' wall
/// time went, how evenly the busy work spread, and a one-line verdict
/// naming the scaling bottleneck.
struct CampaignScalingDiagnosis {
  double RunFraction = 0;
  double RebuildFraction = 0;
  /// Portion of wall time restoring prefix checkpoints — informational
  /// (already counted inside RebuildFraction, so the four phase
  /// fractions above still partition the wall time).
  double RestoreFraction = 0;
  double StealFraction = 0;
  double IdleFraction = 0;
  /// Largest per-worker busy time (run+rebuild) over the mean: 1.0 =
  /// perfectly balanced.
  double BusyImbalance = 1.0;
  std::string DominantPhase; ///< "run" | "rebuild" | "steal" | "idle".
  std::string Verdict;       ///< Human-readable bottleneck diagnosis.
};

CampaignScalingDiagnosis
diagnoseCampaignScaling(const CampaignPhaseProfile &P);

/// The machine-readable profile document `--profile=FILE` writes and
/// bench_CampaignScale embeds: per-worker phase rows, per-shard records
/// and the diagnosis.
std::string renderCampaignProfileJson(const CampaignPhaseProfile &P);

/// Shared emission throttle of progress consumers (the CLI's --progress
/// and the server's campaign/run stream): report at most ~16 evenly
/// spaced updates plus the final one, so both surfaces narrate a
/// campaign identically.
inline bool progressDue(uint64_t LastReportedShards,
                        const CampaignProgress &P) {
  if (P.ShardsDone >= P.TotalShards)
    return true;
  uint64_t Step = P.TotalShards / 16;
  if (Step == 0)
    Step = 1;
  return P.ShardsDone >= LastReportedShards + Step;
}

/// Wraps \p Consumer in the progressDue cadence. The returned callable
/// is stateful (it remembers the last reported shard count): create one
/// per campaign and hand it to CampaignExecOptions::OnProgress.
std::function<void(const CampaignProgress &)>
throttledProgress(std::function<void(const CampaignProgress &)> Consumer);

/// The deterministic shard size the engine uses when \p Requested is 0:
/// a pure function of the plan size, so the same plan always partitions
/// the same way regardless of thread count.
uint64_t campaignShardSize(uint64_t PlanRuns, uint64_t Requested);

/// Executes \p Plan under \p Exec and classifies every run. On checkpoint
/// failure (unwritable path, incompatible resume) the result carries a
/// non-empty Error and nothing is executed.
CampaignResult runCampaign(const Program &Prog, const Trace &Golden,
                           const CampaignPlan &Plan,
                           const CampaignExecOptions &Exec = {});

} // namespace bec

#endif // BEC_FI_ENGINE_H
