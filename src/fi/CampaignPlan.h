//===- fi/CampaignPlan.h - Fault-space enumeration, pruning, sampling -----===//
///
/// \file
/// The planning half of the campaign engine: a CampaignPlan enumerates the
/// fault space of one analyzed program exactly once and carries everything
/// the executor (fi/Engine.h) and the checkpoint layer (fi/Checkpoint.h)
/// need to run it to completion across interruptions:
///
///   * the run list, in golden-trace order (nondecreasing injection
///     cycle), produced by one of the three PlanKind enumerations of
///     planCampaign() — exhaustive, value-level, or BEC bit-level;
///   * an optional stratified sample of that list (`SampleSize` runs
///     drawn without replacement from equal contiguous strata with a
///     seeded Xoshiro256, so a sample is a pure function of the plan and
///     the seed) for campaigns too large to execute in full, with Wilson
///     confidence intervals on the per-effect rates of the result;
///   * a 64-bit fingerprint over the options and the full run list, used
///     to reject checkpoints that were written for a different plan.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FI_CAMPAIGNPLAN_H
#define BEC_FI_CAMPAIGNPLAN_H

#include "fi/Campaign.h"

namespace bec {

/// What to enumerate and how much of it to keep.
struct PlanOptions {
  PlanKind Kind = PlanKind::BitLevel;
  /// Truncates the enumeration window to this many golden-trace cycles
  /// (0 = the whole trace).
  uint64_t MaxCycles = 0;
  /// When nonzero, keep only a stratified sample of this many runs.
  uint64_t SampleSize = 0;
  /// PRNG seed of the sample; same plan + same seed = same sample.
  uint64_t SampleSeed = 1;
  /// Prefix-checkpointed execution (`--prefix-checkpoint`): the engine
  /// snapshots the golden run every checkpointPeriod() cycles, forks
  /// each injected run from the nearest checkpoint and splices verdicts
  /// of runs that reconverge with the golden state. Never changes a
  /// report byte (the equivalence battery and the checkpoint fuzz
  /// oracle hold the two paths identical); off replays every suffix in
  /// full.
  bool PrefixCheckpoint = true;
  /// Cycles between golden checkpoints (`--prefix-checkpoint=K`);
  /// 0 = auto-tune from the trace length and the plan density
  /// (autoCheckpointPeriod). The resolved period is fingerprinted, so a
  /// resumed campaign cannot silently change placement.
  uint64_t CheckpointEveryK = 0;
};

/// The enumerated (and possibly sampled) fault space of one program.
class CampaignPlan {
public:
  /// Enumerates the fault space of \p A's program over \p Golden under
  /// \p O, sampling when requested.
  static CampaignPlan build(const BECAnalysis &A, const Trace &Golden,
                            const PlanOptions &O);

  /// The runs to execute, in nondecreasing injection-cycle order.
  const std::vector<PlannedRun> &runs() const { return Runs; }
  const PlanOptions &options() const { return Opts; }

  /// Size of the full enumeration before sampling (== runs().size()
  /// unless sampled()).
  uint64_t populationRuns() const { return Population; }

  /// True when the run list is a proper or improper sample of the
  /// population (SampleSize was requested).
  bool sampled() const { return Opts.SampleSize != 0; }

  /// Content hash of the options and the complete run list (plus the
  /// resolved checkpoint placement). Checkpoints record it; resuming
  /// under a different plan is rejected.
  uint64_t fingerprint() const { return Fingerprint; }

  /// True when the engine should execute this plan with prefix
  /// checkpoints (PlanOptions::PrefixCheckpoint and a non-empty trace).
  bool prefixCheckpoint() const { return CheckpointPeriod != 0; }
  /// Resolved cycles between golden checkpoints (0 = checkpointing off).
  uint64_t checkpointPeriod() const { return CheckpointPeriod; }
  /// Golden-trace cycles at which the engine snapshots, ascending,
  /// starting at 0; empty when checkpointing is off.
  const std::vector<uint64_t> &checkpointCycles() const {
    return CheckpointCycles;
  }
  /// Per-instruction live-in register masks (analysis/Liveness.h),
  /// carried so the engine can ignore dead registers when it tests a
  /// faulty state for reconvergence with the golden checkpoint: a
  /// register no path reads before redefining cannot affect the
  /// continuation. Empty when checkpointing is off.
  const std::vector<uint32_t> &liveInMasks() const { return LiveIn; }

private:
  PlanOptions Opts;
  uint64_t Population = 0;
  uint64_t Fingerprint = 0;
  uint64_t CheckpointPeriod = 0;
  std::vector<uint64_t> CheckpointCycles;
  std::vector<uint32_t> LiveIn;
  std::vector<PlannedRun> Runs;
};

/// The auto-tuned checkpoint period (PlanOptions::CheckpointEveryK == 0):
/// one snapshot per ~16 golden cycles, stretched so sparse plans never
/// carry more checkpoints than runs and long traces never exceed 4096
/// snapshots of memory.
uint64_t autoCheckpointPeriod(uint64_t TraceCycles, uint64_t PlanRuns);

/// 95% Wilson score interval for \p Successes out of \p Trials Bernoulli
/// trials. {0, 0} when Trials is zero. The Wilson interval (unlike the
/// normal approximation) behaves at the p=0 and p=1 boundaries, which
/// campaigns hit routinely (no traps observed in a window).
RateInterval wilsonInterval(uint64_t Successes, uint64_t Trials);

/// The per-effect rates and Wilson intervals of a finished sampled
/// campaign (\p Counts over \p Runs executed runs drawn from a population
/// of \p Population).
SampleSummary
summarizeSample(const std::array<uint64_t, NumFaultEffects> &Counts,
                uint64_t Runs, uint64_t Population, uint64_t Seed);

} // namespace bec

#endif // BEC_FI_CAMPAIGNPLAN_H
