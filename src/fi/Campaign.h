//===- fi/Campaign.h - Fault-injection campaign engine ---------------------===//
///
/// \file
/// Plans and executes fault-injection campaigns against the simulator,
/// reproducing the paper's methodology: each run re-executes the program
/// with a single-event upset at one (cycle, register, bit) fault site and
/// classifies the corrupted trace against the golden run. Three plans are
/// supported:
///
///   * Exhaustive  -- every bit of the register file at every cycle
///                    (the Table I baseline);
///   * ValueLevel  -- inject-on-read: width runs at every access of a
///                    live register (the "Live in values" baseline);
///   * BitLevel    -- the BEC-pruned plan: one run per non-masked
///                    equivalence class per dynamic segment ("Live in
///                    bits").
///
/// Runs are executed with per-cycle machine snapshots so each run costs
/// only the suffix of the program after its injection point.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FI_CAMPAIGN_H
#define BEC_FI_CAMPAIGN_H

#include "core/BECAnalysis.h"
#include "sim/Interpreter.h"

#include <vector>

namespace bec {

/// One planned fault-injection run.
struct PlannedRun {
  uint64_t AfterCycle; ///< Inject after this many executed instructions.
  Reg R;
  uint8_t Bit;
  /// Equivalence-class representative of the targeted fault site under
  /// the BEC analysis (0 = masked), for validation bookkeeping.
  uint32_t ClassRep;
  /// Dynamic segment id (index of the segment in trace order), or -1 for
  /// exhaustive runs between access points.
  int64_t Segment;
};

enum class PlanKind { Exhaustive, ValueLevel, BitLevel };

/// Builds the run list of \p Kind for \p Golden (the fault-free trace of
/// the analyzed program). \p MaxCycles limits exhaustive plans to a window
/// of the trace (0 = no limit).
std::vector<PlannedRun> planCampaign(const BECAnalysis &A, const Trace &Golden,
                                     PlanKind Kind, uint64_t MaxCycles = 0);

/// Outcome classification of one fault-injection run vs. the golden run.
enum class FaultEffect : uint8_t {
  Masked,  ///< Architectural trace identical to the golden run.
  Benign,  ///< Trace differs but observable output is identical.
  SDC,     ///< Silent data corruption: wrong output, normal termination.
  Trap,    ///< Memory trap.
  Hang,    ///< Cycle budget exceeded.
};
inline constexpr unsigned NumFaultEffects = 5;

const char *faultEffectName(FaultEffect E);

/// Aggregate result of an executed campaign.
struct CampaignResult {
  uint64_t Runs = 0;
  std::array<uint64_t, NumFaultEffects> EffectCounts{};
  /// Number of distinguishable traces (distinct hashes) and the bytes an
  /// archive of them would occupy (Table I's disk-space column).
  uint64_t DistinctTraces = 0;
  uint64_t ArchiveBytes = 0;
  /// Wall-clock seconds spent executing runs.
  double Seconds = 0;
  /// Per-run trace hashes, parallel to the plan (for validation).
  std::vector<uint64_t> TraceHashes;
  /// Per-run effects, parallel to the plan.
  std::vector<FaultEffect> Effects;
};

/// Executes \p Plan (sorted or unsorted) and classifies every run.
CampaignResult runCampaign(const Program &Prog, const Trace &Golden,
                           std::vector<PlannedRun> Plan);

} // namespace bec

#endif // BEC_FI_CAMPAIGN_H
