//===- fi/Campaign.h - Fault-injection campaign engine ---------------------===//
///
/// \file
/// Plans and executes fault-injection campaigns against the simulator,
/// reproducing the paper's methodology: each run re-executes the program
/// with a single-event upset at one (cycle, register, bit) fault site and
/// classifies the corrupted trace against the golden run. Three plans are
/// supported:
///
///   * Exhaustive  -- every bit of the register file at every cycle
///                    (the Table I baseline);
///   * ValueLevel  -- inject-on-read: width runs at every access of a
///                    live register (the "Live in values" baseline);
///   * BitLevel    -- the BEC-pruned plan: one run per non-masked
///                    equivalence class per dynamic segment ("Live in
///                    bits").
///
/// This header holds the shared vocabulary (PlannedRun, FaultEffect,
/// CampaignResult) plus the classic serial entry points. The scalable
/// engine is layered on top:
///
///   * fi/CampaignPlan.h — one-shot fault-space enumeration, stratified
///     sampling with Wilson confidence intervals, plan fingerprints;
///   * fi/Checkpoint.h   — JSONL per-shard result batches so campaigns
///     survive interruption;
///   * fi/Engine.h       — the sharded, work-stealing, resumable
///     executor (runCampaign over a CampaignPlan).
///
/// Runs are executed with per-cycle machine snapshots so each run costs
/// only the suffix of the program after its injection point.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FI_CAMPAIGN_H
#define BEC_FI_CAMPAIGN_H

#include "core/BECAnalysis.h"
#include "sim/Interpreter.h"

#include <array>
#include <optional>
#include <string>
#include <vector>

namespace bec {

/// One planned fault-injection run.
struct PlannedRun {
  uint64_t AfterCycle; ///< Inject after this many executed instructions.
  Reg R;
  uint8_t Bit;
  /// Equivalence-class representative of the targeted fault site under
  /// the BEC analysis (0 = masked), for validation bookkeeping.
  uint32_t ClassRep;
  /// Dynamic segment id (index of the segment in trace order), or -1 for
  /// exhaustive runs between access points.
  int64_t Segment;
};

enum class PlanKind { Exhaustive, ValueLevel, BitLevel };

/// Builds the run list of \p Kind for \p Golden (the fault-free trace of
/// the analyzed program). \p MaxCycles limits plans to a window of the
/// trace (0 = no limit). CampaignPlan::build is the richer front end
/// (sampling, fingerprints); this is the raw enumeration.
std::vector<PlannedRun> planCampaign(const BECAnalysis &A, const Trace &Golden,
                                     PlanKind Kind, uint64_t MaxCycles = 0);

/// Outcome classification of one fault-injection run vs. the golden run.
enum class FaultEffect : uint8_t {
  Masked,  ///< Architectural trace identical to the golden run.
  Benign,  ///< Trace differs but observable output is identical.
  SDC,     ///< Silent data corruption: wrong output, normal termination.
  Trap,    ///< Memory trap.
  Hang,    ///< Cycle budget exceeded.
};
inline constexpr unsigned NumFaultEffects = 5;

const char *faultEffectName(FaultEffect E);

/// A closed rate interval (95% Wilson score; see wilsonInterval).
struct RateInterval {
  double Lo = 0;
  double Hi = 0;
};

/// Statistics of a sampled campaign: the per-effect point estimates and
/// confidence intervals the sample supports about its population.
struct SampleSummary {
  uint64_t SampleRuns = 0;     ///< Runs actually executed.
  uint64_t PopulationRuns = 0; ///< Size of the enumerated fault space.
  uint64_t Seed = 0;           ///< The sample's PRNG seed.
  /// Per-effect observed rate in the sample (point estimate of the
  /// population rate), indexed by FaultEffect.
  std::array<double, NumFaultEffects> Rate{};
  /// Per-effect 95% Wilson interval around Rate.
  std::array<RateInterval, NumFaultEffects> CI{};
};

/// One worker's wall-time phase breakdown from a profiled engine run
/// (CampaignExecOptions::CollectProfile). The four phase buckets
/// partition the worker's wall time by construction: Idle is the
/// residual after run, rebuild and steal, so they always sum to Wall.
struct WorkerPhaseProfile {
  unsigned Worker = 0;
  uint64_t WallUs = 0;    ///< Worker loop entry to exit.
  uint64_t RunUs = 0;     ///< Executing planned runs (fork/flip/classify).
  uint64_t RebuildUs = 0; ///< Snapshot rebuilds incl. prefix catch-up.
  uint64_t StealUs = 0;   ///< In the scheduler: lock wait + victim scan.
  uint64_t IdleUs = 0;    ///< Wall - Run - Rebuild - Steal (clamped).
  /// Portion of RebuildUs spent restoring a golden prefix checkpoint
  /// (the rest is the remaining catch-up replay to the shard's first
  /// injection cycle).
  uint64_t RestoreUs = 0;
  uint64_t Runs = 0;
  uint64_t Shards = 0;
  uint64_t Steals = 0;
  uint64_t Rebuilds = 0;
  uint64_t Restores = 0; ///< Checkpoint restores (<= Rebuilds).
};

/// Where one shard's time went and who ran it.
struct ShardPhaseRecord {
  uint64_t Shard = 0;
  unsigned Worker = 0;
  uint64_t Runs = 0;
  bool Stolen = false;
  uint64_t RebuildUs = 0;
  uint64_t RunUs = 0;
  uint64_t RestoreUs = 0; ///< Portion of RebuildUs (see WorkerPhaseProfile).
};

/// The engine scaling profile: why N threads are (or are not) N times
/// faster. Collected only under CollectProfile; never serialized into
/// reports, so report bytes stay schedule-independent.
struct CampaignPhaseProfile {
  bool Collected = false;
  std::vector<WorkerPhaseProfile> Workers;
  std::vector<ShardPhaseRecord> Shards;
};

/// Aggregate result of an executed campaign.
struct CampaignResult {
  /// Non-empty when the engine could not run at all (unwritable or
  /// incompatible checkpoint); every other field is then unset.
  std::string Error;
  uint64_t Runs = 0;
  std::array<uint64_t, NumFaultEffects> EffectCounts{};
  /// Number of distinguishable traces (distinct hashes) and the bytes an
  /// archive of them would occupy (Table I's disk-space column).
  uint64_t DistinctTraces = 0;
  uint64_t ArchiveBytes = 0;
  /// Wall-clock seconds spent executing runs (this invocation only; a
  /// resumed campaign does not accumulate previous sessions).
  double Seconds = 0;
  /// Per-run trace hashes, parallel to the plan (for validation).
  std::vector<uint64_t> TraceHashes;
  /// Per-run effects, parallel to the plan.
  std::vector<FaultEffect> Effects;

  /// Shard accounting of the engine run (both zero for the classic
  /// serial entry point when the plan is empty).
  uint64_t Shards = 0;
  uint64_t ResumedShards = 0; ///< Shards replayed from a checkpoint.
  /// Scheduler telemetry: shards taken from another worker's deque, and
  /// interpreter snapshots rebuilt from cycle 0 (each one a prefix
  /// re-simulation — the scaling tax). Not rendered into reports, so
  /// report bytes stay schedule-independent.
  uint64_t Steals = 0;
  uint64_t SnapshotRebuilds = 0;
  /// Prefix-checkpoint telemetry (PlanOptions::PrefixCheckpoint): golden
  /// snapshots taken and their serialized size, walker restores from the
  /// table, and runs whose verdict was spliced from the golden
  /// continuation after their state reconverged at a checkpoint
  /// boundary. Like Steals, never rendered into reports.
  uint64_t CheckpointsCreated = 0;
  uint64_t CheckpointBytes = 0;
  uint64_t CheckpointRestores = 0;
  uint64_t SplicedRuns = 0;
  /// Total interpreter instructions stepped by this invocation (golden
  /// checkpoint pass + walker advances + injected forks): the
  /// deterministic work metric behind the prefix-checkpoint speedup
  /// asserts. Schedule-dependent across thread counts (rebuild replay
  /// varies with stealing), deterministic at one thread.
  uint64_t SimulatedCycles = 0;
  /// True when execution stopped before every shard completed (the
  /// StopAfterShards interruption hook); aggregate fields then cover the
  /// completed shards only and per-run slots of unfinished shards are
  /// unset.
  bool Interrupted = false;

  /// Engaged iff the executed plan was a sample of a larger population.
  std::optional<SampleSummary> Sample;

  /// Per-worker/per-shard phase breakdown; Collected only when the run
  /// asked for it (CampaignExecOptions::CollectProfile). Like the
  /// scheduler telemetry above, never rendered into reports.
  CampaignPhaseProfile Profile;
};

/// Executes \p Plan (sorted or unsorted) serially and classifies every
/// run. Equivalent to the engine at one thread with no checkpointing;
/// kept as the simple entry point for tests and small plans.
CampaignResult runCampaign(const Program &Prog, const Trace &Golden,
                           std::vector<PlannedRun> Plan);

} // namespace bec

#endif // BEC_FI_CAMPAIGN_H
