//===- fi/CampaignPlan.cpp - Enumeration, stratified sampling, Wilson CIs -===//

#include "fi/CampaignPlan.h"

#include "sim/Trace.h"
#include "support/Xoshiro.h"

#include <algorithm>
#include <cmath>

using namespace bec;

namespace {

/// Draws \p Want distinct indices from [Lo, Hi) by partial Fisher-Yates
/// over a scratch index vector, appending them to \p Out.
void sampleRange(uint64_t Lo, uint64_t Hi, uint64_t Want, Xoshiro256 &Rng,
                 std::vector<uint64_t> &Out) {
  uint64_t N = Hi - Lo;
  std::vector<uint64_t> Scratch(N);
  for (uint64_t I = 0; I < N; ++I)
    Scratch[I] = Lo + I;
  for (uint64_t I = 0; I < Want && I < N; ++I) {
    uint64_t J = I + Rng.below(N - I);
    std::swap(Scratch[I], Scratch[J]);
    Out.push_back(Scratch[I]);
  }
}

/// Stratified sample of \p Want indices out of [0, N): the plan is cut
/// into equal contiguous strata (execution phases of the golden trace,
/// since plans are in trace order) and each stratum contributes its
/// proportional share, allocated by largest remainder so the total is
/// exactly \p Want. Returned sorted, so the sampled plan stays in
/// nondecreasing injection-cycle order.
std::vector<uint64_t> stratifiedIndices(uint64_t N, uint64_t Want,
                                        uint64_t Seed) {
  std::vector<uint64_t> Picked;
  if (Want >= N) {
    Picked.resize(N);
    for (uint64_t I = 0; I < N; ++I)
      Picked[I] = I;
    return Picked;
  }
  uint64_t Strata = std::min<uint64_t>({16, Want, N});
  if (Strata == 0)
    return Picked;

  // Proportional allocation with largest remainder. Strata are the
  // near-equal chunks [K*N/Strata, (K+1)*N/Strata).
  struct Alloc {
    uint64_t Lo, Hi, Want;
    double Remainder;
    uint64_t Index;
  };
  std::vector<Alloc> Allocs(Strata);
  uint64_t Assigned = 0;
  for (uint64_t K = 0; K < Strata; ++K) {
    uint64_t Lo = K * N / Strata;
    uint64_t Hi = (K + 1) * N / Strata;
    double Exact = double(Want) * double(Hi - Lo) / double(N);
    uint64_t Floor = std::min<uint64_t>(uint64_t(Exact), Hi - Lo);
    Allocs[K] = {Lo, Hi, Floor, Exact - double(Floor), K};
    Assigned += Floor;
  }
  std::vector<Alloc *> ByRemainder;
  for (Alloc &A : Allocs)
    ByRemainder.push_back(&A);
  std::stable_sort(ByRemainder.begin(), ByRemainder.end(),
                   [](const Alloc *X, const Alloc *Y) {
                     if (X->Remainder != Y->Remainder)
                       return X->Remainder > Y->Remainder;
                     return X->Index < Y->Index;
                   });
  for (Alloc *A : ByRemainder) {
    if (Assigned >= Want)
      break;
    if (A->Want < A->Hi - A->Lo) {
      ++A->Want;
      ++Assigned;
    }
  }
  // Rounding can still leave a shortfall when some strata saturate; top
  // up wherever capacity remains (deterministic first-fit).
  for (Alloc &A : Allocs) {
    while (Assigned < Want && A.Want < A.Hi - A.Lo) {
      ++A.Want;
      ++Assigned;
    }
  }

  for (const Alloc &A : Allocs) {
    // Independent stream per stratum, derived from the seed: inserting
    // or resizing one stratum never reshuffles another's draw.
    Xoshiro256 Rng(Seed ^ (0x9e3779b97f4a7c15ull * (A.Index + 1)));
    sampleRange(A.Lo, A.Hi, A.Want, Rng, Picked);
  }
  std::sort(Picked.begin(), Picked.end());
  return Picked;
}

uint64_t fingerprintPlan(const PlanOptions &O, uint64_t Population,
                         uint64_t CheckpointPeriod,
                         const std::vector<PlannedRun> &Runs) {
  TraceHasher H;
  H.absorb(0xbecca111u); // Format tag.
  H.absorb(static_cast<uint64_t>(O.Kind));
  H.absorb(O.MaxCycles);
  H.absorb(O.SampleSize);
  H.absorb(O.SampleSize ? O.SampleSeed : 0);
  // The *resolved* checkpoint period (0 = off), not the request: a
  // checkpointed campaign resumed under different placement would
  // otherwise silently keep the recorded shards. The placement cycles
  // are a pure function of the period and the trace, so the period
  // covers them.
  H.absorb(0x70c0deu);
  H.absorb(CheckpointPeriod);
  H.absorb(Population);
  H.absorb(Runs.size());
  for (const PlannedRun &R : Runs) {
    H.absorb(R.AfterCycle);
    H.absorb((uint64_t(R.R) << 8) | R.Bit);
    H.absorb((uint64_t(R.ClassRep) << 32) ^ uint64_t(R.Segment));
  }
  return H.value();
}

} // namespace

uint64_t bec::autoCheckpointPeriod(uint64_t TraceCycles, uint64_t PlanRuns) {
  if (TraceCycles == 0)
    return 1;
  // Dense plans (the common case): a snapshot per ~16 cycles keeps the
  // post-injection walk to the next convergence test short. Sparse
  // plans get no more checkpoints than runs; very long traces cap the
  // table at 4096 snapshots of memory.
  uint64_t K = 16;
  if (PlanRuns && PlanRuns * K < TraceCycles)
    K = (TraceCycles + PlanRuns - 1) / PlanRuns;
  uint64_t MemFloor = (TraceCycles + 4095) / 4096;
  return std::max<uint64_t>({uint64_t(1), K, MemFloor});
}

CampaignPlan CampaignPlan::build(const BECAnalysis &A, const Trace &Golden,
                                 const PlanOptions &O) {
  CampaignPlan P;
  P.Opts = O;
  P.Runs = planCampaign(A, Golden, O.Kind, O.MaxCycles);
  P.Population = P.Runs.size();
  if (O.SampleSize != 0 && O.SampleSize < P.Runs.size()) {
    std::vector<uint64_t> Keep =
        stratifiedIndices(P.Runs.size(), O.SampleSize, O.SampleSeed);
    std::vector<PlannedRun> Sampled;
    Sampled.reserve(Keep.size());
    for (uint64_t I : Keep)
      Sampled.push_back(P.Runs[I]);
    P.Runs = std::move(Sampled);
  }
  if (O.PrefixCheckpoint && Golden.Cycles != 0 && !P.Runs.empty()) {
    P.CheckpointPeriod = O.CheckpointEveryK
                             ? O.CheckpointEveryK
                             : autoCheckpointPeriod(Golden.Cycles,
                                                    P.Runs.size());
    // Placement stays strictly inside the golden run: a snapshot at the
    // final cycle would capture a finished machine no fork can continue
    // from.
    for (uint64_t C = 0; C < Golden.Cycles; C += P.CheckpointPeriod)
      P.CheckpointCycles.push_back(C);
    const Liveness &L = A.liveness();
    P.LiveIn.resize(A.program().size());
    for (uint32_t PC = 0; PC < A.program().size(); ++PC)
      P.LiveIn[PC] = L.liveInMask(PC);
  }
  P.Fingerprint =
      fingerprintPlan(P.Opts, P.Population, P.CheckpointPeriod, P.Runs);
  return P;
}

RateInterval bec::wilsonInterval(uint64_t Successes, uint64_t Trials) {
  if (Trials == 0)
    return {};
  constexpr double Z = 1.959963984540054; // 97.5th normal percentile.
  double N = double(Trials);
  double P = double(Successes) / N;
  double Z2 = Z * Z;
  double Denom = 1.0 + Z2 / N;
  double Center = (P + Z2 / (2.0 * N)) / Denom;
  double Half =
      (Z / Denom) * std::sqrt(P * (1.0 - P) / N + Z2 / (4.0 * N * N));
  RateInterval R;
  // Exact at the boundaries (k=0 provably includes rate 0, k=n rate 1);
  // the algebra otherwise leaves float dust like 1e-18 there.
  R.Lo = Successes == 0 ? 0.0 : std::max(0.0, Center - Half);
  R.Hi = Successes == Trials ? 1.0 : std::min(1.0, Center + Half);
  return R;
}

SampleSummary
bec::summarizeSample(const std::array<uint64_t, NumFaultEffects> &Counts,
                     uint64_t Runs, uint64_t Population, uint64_t Seed) {
  SampleSummary S;
  S.SampleRuns = Runs;
  S.PopulationRuns = Population;
  S.Seed = Seed;
  for (unsigned E = 0; E < NumFaultEffects; ++E) {
    S.Rate[E] = Runs ? double(Counts[E]) / double(Runs) : 0.0;
    S.CI[E] = wilsonInterval(Counts[E], Runs);
  }
  return S;
}
